package elsc_test

import (
	"fmt"

	"elsc"
)

// ExampleNewMachine runs the paper's headline benchmark on a tiny
// configuration and prints deterministic results.
func ExampleNewMachine() {
	m := elsc.NewMachine(elsc.MachineConfig{
		CPUs:      1,
		Scheduler: elsc.ELSC,
		Seed:      42,
	})
	res := m.RunVolanoMark(elsc.VolanoConfig{
		Rooms:           1,
		UsersPerRoom:    4,
		MessagesPerUser: 3,
	})
	fmt.Printf("threads: %d\n", res.Threads)
	fmt.Printf("deliveries: %d\n", res.Deliveries)
	// Output:
	// threads: 16
	// deliveries: 48
}

// ExampleMachine_Spawn shows a custom task program: compute, sleep,
// repeat, exit.
func ExampleMachine_Spawn() {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 1, Seed: 1})
	rounds := 0
	t := m.Spawn("worker", nil, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		if rounds >= 2 {
			return elsc.Exit{}
		}
		rounds++
		return elsc.Compute{Cycles: 1000}
	}))
	m.RunUntilAllExit()
	fmt.Printf("exited: %v, user cycles: %d\n", t.Exited(), t.UserCycles())
	// Output:
	// exited: true, user cycles: 2000
}

// ExampleMachine_RunVolanoMark compares the stock and ELSC schedulers on
// the same workload and seed: the deliveries match, the scheduler effort
// does not.
func ExampleMachine_RunVolanoMark() {
	cfg := elsc.VolanoConfig{Rooms: 1, UsersPerRoom: 4, MessagesPerUser: 5}
	for _, kind := range []elsc.SchedulerKind{elsc.Vanilla, elsc.ELSC} {
		m := elsc.NewMachine(elsc.MachineConfig{CPUs: 1, Scheduler: kind, Seed: 9})
		res := m.RunVolanoMark(cfg)
		fmt.Printf("%s delivered %d\n", kind, res.Deliveries)
	}
	// Output:
	// reg delivered 80
	// elsc delivered 80
}

// ExampleNewQueue demonstrates blocking IPC between two custom tasks.
func ExampleNewQueue() {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 1, Seed: 1})
	q := elsc.NewQueue("pipe", 2)

	sent := 0
	m.Spawn("producer", nil, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		if sent >= 3 {
			return elsc.Exit{}
		}
		sent++
		return q.Send(500, elsc.Msg{Seq: sent})
	}))

	var got elsc.Msg
	sum := 0
	recvd := 0
	m.Spawn("consumer", nil, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		sum += got.Seq
		if recvd >= 3 {
			return elsc.Exit{}
		}
		recvd++
		return q.Recv(500, &got)
	}))
	m.RunUntilAllExit()
	fmt.Printf("sum of received seqs: %d\n", sum)
	// Output:
	// sum of received seqs: 6
}
