package elsc

import (
	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/cfs"
	"elsc/internal/sched/elsc"
	"elsc/internal/sched/heapsched"
	"elsc/internal/sched/mq"
	"elsc/internal/sched/o1"
	"elsc/internal/sched/vanilla"
	"elsc/internal/task"
)

// SchedulerKind selects the scheduling policy for a Machine.
type SchedulerKind string

// The available policies.
const (
	// Vanilla is the stock Linux 2.3.99-pre4 scheduler — the paper's
	// baseline ("reg" in its figures): a single unsorted run queue
	// scanned in full on every schedule().
	Vanilla SchedulerKind = "reg"
	// ELSC is the paper's contribution: a run queue kept sorted by
	// static goodness in a table of 30 lists.
	ELSC SchedulerKind = "elsc"
	// Heap is the future-work alternative (§8) that keeps per-processor
	// max-heaps of static goodness.
	Heap SchedulerKind = "heap"
	// MultiQueue is the future-work alternative (§8) with one run queue
	// and one lock per processor — the direction Linux later took.
	MultiQueue SchedulerKind = "mq"
	// O1 is the historical endpoint of that direction: the Linux 2.5
	// O(1) scheduler — per-CPU active/expired priority arrays with a
	// find-first-set bitmap, quantum recharge on array swap, and
	// pull-based load balancing.
	O1 SchedulerKind = "o1"
	// CFS is the design that replaced O(1) in Linux 2.6.23: a
	// weighted-vruntime fair scheduler — static priority maps to a
	// geometric weight table, per-CPU queues order tasks by virtual
	// runtime, and sleepers get a bounded min_vruntime clamp instead of
	// an estimator bonus.
	CFS SchedulerKind = "cfs"
)

// CostModel re-exports the simulator's cycle-cost model for tuning.
type CostModel = sched.CostModel

// DefaultCostModel returns the calibrated 400 MHz Pentium II-class model.
func DefaultCostModel() CostModel { return sched.DefaultCostModel() }

// ELSCConfig re-exports the ELSC knobs (table size, search limit, UP
// shortcut) for ablation studies.
type ELSCConfig = elsc.Config

// O1Config re-exports the O(1) scheduler's knobs for ablation studies:
// the balancing set (topology blindness, cross-domain imbalance
// threshold and batch size, expired starvation limit) and the
// interactivity set (InteractivityOff, InteractiveDelta,
// GranularityTicks, WakeIdleOff — the sleep_avg bonus machinery and
// SD_WAKE_IDLE wake placement).
type O1Config = o1.Config

// Topology re-exports the cache-domain layout type.
type Topology = sched.Topology

// MachineConfig describes the simulated machine.
type MachineConfig struct {
	// CPUs is the processor count (default 1).
	CPUs int
	// SMP selects an SMP kernel build. The paper's "UP" is CPUs=1 with
	// SMP false; "1P" is CPUs=1 with SMP true.
	SMP bool
	// CacheDomains groups the CPUs into that many NUMA-style cache
	// domains (contiguous, as even as possible). 0 or 1 leaves the
	// machine flat: no dispatch is ever cross-domain. A migration that
	// crosses a domain pays the cost model's CrossDomainRefillMax
	// instead of CacheRefillMax, and domain-aware policies (O1) keep
	// load balancing inside a domain when they can.
	CacheDomains int
	// Scheduler picks the policy (default ELSC).
	Scheduler SchedulerKind
	// ELSC optionally tunes the ELSC policy; ignored for other kinds.
	ELSC *ELSCConfig
	// O1 optionally tunes the O(1) policy; ignored for other kinds.
	O1 *O1Config
	// Seed drives all randomness (default 1).
	Seed int64
	// MaxSeconds bounds virtual run time (default 3000 virtual seconds).
	MaxSeconds uint64
	// Cost overrides the default cost model.
	Cost *CostModel
	// UniformSpawnCounter disables fork-style quantum inheritance; see
	// the kernel documentation. Tests use it; realistic runs should not.
	UniformSpawnCounter bool
	// Watchdog, when non-nil, arms the starvation/lockup watchdog: a
	// periodic sweep that reports runnable tasks starved past a
	// threshold, tasks lost from every run queue, and online CPUs whose
	// timer chain died. Zero-value thresholds select the defaults.
	Watchdog *WatchdogConfig
}

// Machine is a simulated multiprocessor ready to run tasks or workloads.
// Workloads run either through the registry (RunWorkload with any name
// from Workloads()) or through the per-workload methods (RunVolanoMark,
// RunDatabase, ...) when the benchmark's full Config is needed.
type Machine struct {
	m *kernel.Machine
}

// NewMachine builds and boots a machine.
func NewMachine(cfg MachineConfig) *Machine {
	if cfg.CPUs == 0 {
		cfg.CPUs = 1
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = ELSC
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxSeconds == 0 {
		cfg.MaxSeconds = 3000
	}
	factory := factoryFor(cfg.Scheduler, cfg.ELSC, cfg.O1)
	var topo *sched.Topology
	if cfg.CacheDomains > 1 {
		topo = sched.UniformTopology(cfg.CPUs, cfg.CacheDomains)
	}
	m := kernel.NewMachine(kernel.Config{
		CPUs:                cfg.CPUs,
		SMP:                 cfg.SMP,
		Topology:            topo,
		Seed:                cfg.Seed,
		NewScheduler:        factory,
		Cost:                cfg.Cost,
		MaxCycles:           cfg.MaxSeconds * kernel.DefaultHz,
		UniformSpawnCounter: cfg.UniformSpawnCounter,
		Watchdog:            cfg.Watchdog,
	})
	return &Machine{m: m}
}

func factoryFor(kind SchedulerKind, ecfg *ELSCConfig, ocfg *O1Config) kernel.SchedulerFactory {
	switch kind {
	case Vanilla:
		return func(env *sched.Env) sched.Scheduler { return vanilla.New(env) }
	case ELSC:
		return func(env *sched.Env) sched.Scheduler {
			if ecfg != nil {
				return elsc.NewWithConfig(env, *ecfg)
			}
			return elsc.New(env)
		}
	case Heap:
		return func(env *sched.Env) sched.Scheduler { return heapsched.New(env) }
	case MultiQueue:
		return func(env *sched.Env) sched.Scheduler { return mq.New(env) }
	case O1:
		return func(env *sched.Env) sched.Scheduler {
			if ocfg != nil {
				return o1.NewWithConfig(env, *ocfg)
			}
			return o1.New(env)
		}
	case CFS:
		return func(env *sched.Env) sched.Scheduler { return cfs.New(env) }
	default:
		panic("elsc: unknown scheduler kind " + string(kind))
	}
}

// Kernel exposes the underlying simulator for advanced use (custom
// workloads, IPC construction, engine events).
func (m *Machine) Kernel() *kernel.Machine { return m.m }

// Spawn creates a task executing prog in address space mm (nil for a
// kernel thread) and makes it runnable.
func (m *Machine) Spawn(name string, mm *AddressSpace, prog Program) *Task {
	return &Task{p: m.m.Spawn(name, mm, prog)}
}

// SpawnRT creates a real-time (SCHED_FIFO or SCHED_RR) task.
func (m *Machine) SpawnRT(name string, policy RTPolicy, rtprio int, prog Program) *Task {
	return &Task{p: m.m.SpawnRT(name, task.Policy(policy), rtprio, prog)}
}

// NewAddressSpace allocates an mm that tasks can share; the scheduler's
// one-point goodness bonus applies between tasks of the same space.
func (m *Machine) NewAddressSpace(name string) *AddressSpace {
	return m.m.NewMM(name)
}

// Run drives the simulation until stop returns true, no work remains, or
// the MaxSeconds horizon passes. A nil stop runs until idle/horizon.
func (m *Machine) Run(stop func() bool) {
	m.m.Run(stop)
}

// RunUntilAllExit runs until every spawned task has exited.
func (m *Machine) RunUntilAllExit() {
	m.m.Run(func() bool { return m.m.Alive() == 0 })
}

// Seconds returns elapsed virtual time in seconds.
func (m *Machine) Seconds() float64 { return m.m.Seconds() }

// Stats returns the machine-wide scheduler statistics (the paper's
// instrumentation).
func (m *Machine) Stats() *Stats { return m.m.Stats() }

// ProcStat renders the statistics as a /proc-style text block, as the
// paper exposed its counters through the proc filesystem.
func (m *Machine) ProcStat() string { return m.m.Stats().Registry().Render() }

// SchedulerName reports the active policy's label ("reg", "elsc", ...).
func (m *Machine) SchedulerName() string { return m.m.Scheduler().Name() }

// SwitchPolicy hot-swaps the running machine onto a different scheduling
// policy: every queued task is drained out of the current scheduler with
// its priority, counters, sleep_avg, and affinity intact, a fresh policy
// is constructed, and the set is imported atomically in virtual time. No
// task is lost, duplicated, or rewound; blocked and running tasks are
// unaffected beyond bookkeeping normalization. Returns the number of
// tasks handed over. Call it between Run calls or from an engine event —
// never from inside a syscall effect. Optional per-policy configs follow
// the same rules as MachineConfig (nil means defaults).
func (m *Machine) SwitchPolicy(kind SchedulerKind) int {
	return m.SwitchPolicyConfigured(kind, nil, nil)
}

// SwitchPolicyConfigured is SwitchPolicy with explicit ELSC/O1 tuning for
// the successor policy (each may be nil; ignored for other kinds).
func (m *Machine) SwitchPolicyConfigured(kind SchedulerKind, ecfg *ELSCConfig, ocfg *O1Config) int {
	return m.m.SwitchPolicy(factoryFor(kind, ecfg, ocfg))
}

// Hotplug errors, for callers that script transitions.
var (
	// ErrCPUOffline: the target CPU is already offline.
	ErrCPUOffline = kernel.ErrCPUOffline
	// ErrCPUOnline: the target CPU is already online.
	ErrCPUOnline = kernel.ErrCPUOnline
	// ErrLastCPU: refusing to offline the only online CPU.
	ErrLastCPU = kernel.ErrLastCPU
)

// OfflineCPU hot-unplugs a processor mid-run: its running task is
// preempted and re-queued, its private queues are drained to the
// survivors, in-flight IPIs are re-routed, and tasks affined solely to it
// fall back to running anywhere (Linux cpuset semantics). The last online
// CPU cannot be removed. Call it between Run calls or from an engine
// event, like SwitchPolicy.
func (m *Machine) OfflineCPU(id int) error { return m.m.OfflineCPU(id) }

// OnlineCPU brings an offlined processor back: its timer chain re-arms,
// it participates in placement again, and tasks whose affinity was
// widened by its removal are re-pinned to their original masks.
func (m *Machine) OnlineCPU(id int) error { return m.m.OnlineCPU(id) }

// CPUIsOnline reports whether processor id is currently hot-plugged in.
func (m *Machine) CPUIsOnline(id int) bool { return m.m.CPUIsOnline(id) }

// OnlineCount returns how many processors are currently online.
func (m *Machine) OnlineCount() int { return m.m.OnlineCount() }

// Task wraps a spawned task.
type Task struct {
	p *kernel.Proc
}

// Exited reports whether the task has terminated.
func (t *Task) Exited() bool { return t.p.Exited() }

// Name returns the task's name.
func (t *Task) Name() string { return t.p.Task.Name }

// UserCycles returns CPU cycles of task-level work executed.
func (t *Task) UserCycles() uint64 { return t.p.Task.UserCycles }

// SystemCycles returns CPU cycles of kernel work charged to the task.
func (t *Task) SystemCycles() uint64 { return t.p.Task.SystemCycles }

// Migrations returns how many times the task was dispatched on a CPU other
// than its previous one.
func (t *Task) Migrations() uint64 { return t.p.Task.Migrations }

// SetPriority adjusts the task's static priority (1..40, default 20).
func (m *Machine) SetPriority(t *Task, prio int) { m.m.SetPriority(t.p, prio) }

// SetAffinity pins the task to the CPUs in mask (bit i allows CPU i; zero
// allows all) — the kernel's cpus_allowed.
func (m *Machine) SetAffinity(t *Task, mask uint64) { m.m.SetAffinity(t.p, mask) }

// SetPolicy is sched_setscheduler: move the task between SCHED_OTHER
// (policy Other) and the real-time classes at run time.
func (m *Machine) SetPolicy(t *Task, policy RTPolicy, rtprio int) {
	m.m.SetPolicy(t.p, task.Policy(policy), rtprio)
}

// Other demotes a task back to the timesharing class via SetPolicy.
const Other = RTPolicy(task.Other)

// PS renders a ps/top-style table of every task in the system.
func (m *Machine) PS() string { return m.m.PS() }

// RTPolicy selects the real-time class for SpawnRT.
type RTPolicy task.Policy

// Real-time policies.
const (
	FIFO = RTPolicy(task.FIFO) // SCHED_FIFO: runs until it blocks or yields
	RR   = RTPolicy(task.RR)   // SCHED_RR: round robin among equals
)
