// Package elsc is a full reproduction of "Scalable Linux Scheduling"
// (Stephen Molloy and Peter Honeyman, CITI Technical Report 01-7 /
// FREENIX 2001): the ELSC table-based scheduler, the stock Linux
// 2.3.99-pre4 scheduler it improves on, and a deterministic discrete-event
// kernel simulator to run them in — per-CPU dispatch, timer ticks and
// quanta, wait queues with wake-up preemption, the global run-queue
// spinlock, and a cache-affinity cost model.
//
// The package exposes three layers:
//
//   - Machine: build a simulated SMP machine with a chosen scheduler, spawn
//     tasks with programmed behavior, run, and read /proc-style statistics.
//   - Workloads: VolanoMark (the paper's stress benchmark), a kernel
//     compile (its light-load control), and an Apache-style web server
//     (its future-work question).
//   - Experiments: regenerate every table and figure from the paper's
//     evaluation section.
//
// # Quick start
//
//	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 4, SMP: true, Scheduler: elsc.ELSC})
//	res := m.RunVolanoMark(elsc.VolanoConfig{Rooms: 10})
//	fmt.Printf("%.0f messages/second\n", res.Throughput)
//	fmt.Println(m.Stats().Summary())
//
// Determinism: a machine's Seed fixes every random draw; the same
// configuration reproduces a run cycle-for-cycle.
package elsc
