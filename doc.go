// Package elsc is a full reproduction of "Scalable Linux Scheduling"
// (Stephen Molloy and Peter Honeyman, CITI Technical Report 01-7 /
// FREENIX 2001): the ELSC table-based scheduler, the stock Linux
// 2.3.99-pre4 scheduler it improves on, and a deterministic discrete-event
// kernel simulator to run them in — per-CPU dispatch, timer ticks and
// quanta, wait queues with wake-up preemption, the global run-queue
// spinlock, and a cache-affinity cost model.
//
// Five scheduling policies are drop-in replacements for one another
// behind the same run-queue interface (the paper's design goal 1):
//
//   - Vanilla ("reg"): the stock 2.3.99-pre4 single-queue O(n) scan.
//   - ELSC ("elsc"): the paper's sorted 30-list table.
//   - Heap ("heap"): the §8 future-work per-processor max-heaps.
//   - MultiQueue ("mq"): the §8 future-work per-CPU queues and locks.
//   - O1 ("o1"): the Linux 2.5 O(1) design that lineage led to — per-CPU
//     active/expired priority arrays with a find-first-set bitmap,
//     quantum recharge on array swap, and pull-based load balancing.
//
// All five are held to a shared contract by the conformance suite in
// internal/sched/conformance: no task lost or duplicated, affinity masks
// respected, real-time tasks always preempt SCHED_OTHER, and the
// move_first/move_last tie-break semantics.
//
// The package exposes three layers:
//
//   - Machine: build a simulated SMP machine with a chosen scheduler, spawn
//     tasks with programmed behavior, run, and read /proc-style statistics.
//   - Workloads: a registry of six named workloads runnable on any
//     machine (see below).
//   - Experiments: regenerate every table and figure from the paper's
//     evaluation section, plus lock-contention, NUMA, and policy x
//     workload matrix studies on machines past the paper's hardware
//     (8 to 64 CPUs, flat or cache-domained).
//
// # The workload registry
//
// Workloads are unified behind one interface, mirroring the policy
// registry: each registered workload builds on any machine from uniform
// sizing knobs (WorkloadParams) and reports a common WorkloadResult —
// throughput in a workload-declared unit, a completion flag, and ordered
// per-workload extras. Six are registered:
//
//   - "volano": the VolanoMark chat benchmark (the paper's stress test).
//   - "kbuild": the make -j4 kernel compile (its light-load control).
//   - "webserver": the §8 Apache-style future-work question.
//   - "latency": steady wake-to-dispatch probes under hog load.
//   - "db": a syscall-heavy OLTP server — short bursts, shared lock
//     stripes, a serialized buffer pool and write-ahead log, background
//     checkpoint writers. Kernel crossings dominate compute, so
//     run-queue placement decides throughput.
//   - "wakestorm": synchronized mass wake-ups of a parked herd,
//     measuring wakeup-to-run tail latency (p50/p99/max) per storm.
//
// Machine.RunWorkload(name, params) runs any of them by name; the
// per-workload methods (RunVolanoMark, RunDatabase, RunWakeStorm, ...)
// take each benchmark's full Config instead. cmd/sweep's matrix
// experiment races every policy against every workload on a chosen set
// of machine specs and records each cell in BENCH_sweep.json.
//
// # Topology and cache domains
//
// Machines past the paper's hardware can declare a NUMA-style topology
// (MachineConfig.CacheDomains, or kernel.Config.Topology): CPUs are
// grouped into cache domains, contiguous blocks sharing a last-level
// cache. The cost model then distinguishes three tiers of migration:
// staying on the last CPU (pollution-scaled refill), moving inside the
// domain (CacheRefillMax), and crossing domains (CrossDomainRefillMax,
// plus a sustained RemoteAccessPct execution penalty until the task's
// pages rehome after RehomeCycles of foreign execution — first-touch
// memory with AutoNUMA-style page migration).
//
// The O(1) scheduler is topology-aware, mirroring the 2.5→2.6
// sched_domains evolution: idle steal exhausts in-domain victims before
// crossing, a cross-domain steal requires a real imbalance rather than a
// lone queued task, the periodic balancer demands a doubled imbalance
// threshold across domains and then pulls a batch to amortize the
// interconnect refill, and a starvation guard force-swaps the arrays
// when the expired array has waited too long. O1Config exposes the knobs
// (TopologyBlind is the ablation baseline); the experiments package
// regenerates the numa table and the domain-awareness ablation.
//
// # Interactivity
//
// The O(1) scheduler also carries the 2.5 kernel's sleep_avg estimator.
// The kernel credits a task's sleep_avg while it blocks and drains it
// while it runs (clamped at CostModel.MaxSleepAvg); o1 maps the ratio
// onto a ±5-level dynamic-priority bonus in its bitmap arrays, uses it
// for wake-up preemption (TASK_PREEMPTS_CURR), requeues interactive
// tasks into the active array on quantum expiry (bounded by the
// starvation clock), tick-preempts when a strictly better level waits,
// and round-robins same-level interactive tasks every GranularityTicks.
// The kernel wake path adds SD_WAKE_IDLE placement: a syscall-context
// wake prefers an idle CPU in the task's own cache domain, then the
// waker's. O1Config exposes InteractivityOff, InteractiveDelta,
// GranularityTicks, and WakeIdleOff; Stats counts WakeIdlePlacements and
// TimesliceRotations, and the cross-policy latency invariant suite in
// internal/sched/conformance holds every policy to a bounded
// wakeup-to-run worst case.
//
// # CPU hotplug and the watchdog
//
// Processors hot-unplug and re-plug mid-run (Machine.OfflineCPU /
// OnlineCPU): the dying CPU's running task is preempted and re-queued,
// its private queues drain through the Scheduler.DrainCPU hook, its
// preallocated tick/dispatch events park, in-flight IPIs re-route to a
// survivor, and tasks affined solely to it widen to run anywhere (Linux
// cpuset fallback) until their CPU returns and the saved mask re-pins.
// The last online CPU refuses to go down. An opt-in starvation/lockup
// watchdog (MachineConfig.Watchdog) sweeps periodically — allocation
// free, like the rest of the event path — and reports starved runnable
// tasks (threshold scaled by the policy's latency capability and the
// run-queue depth), tasks lost from every queue, and online CPUs whose
// timer chain died, each at its virtual timestamp. The scenario fuzzer
// arms it everywhere and injects hotplug storms; the machine-level
// conformance matrix drives scripted storms over every policy on 8P and
// 32P-NUMA shapes.
//
// # The event engine
//
// Everything above runs on internal/sim, a discrete-event engine built
// so the simulator's own hot path honors the paper's thesis about hot
// paths: O(1) where it can be, allocation-free in steady state. The
// pending set is a hand-rolled indexed 4-ary min-heap keyed on
// (time, sequence) with the keys stored inline in the heap slots — no
// interface boxing, no pointer chasing while sifting. Fired events are
// recycled through a freelist, and the kernel layer arms its recurring
// events (timer ticks, reschedule IPIs, context-switch completions) as
// caller-owned objects re-armed in place with prebound callbacks, so a
// steady-state schedule→dispatch cycle performs zero allocations
// (asserted by testing.AllocsPerRun in the engine suite). Cancellation
// is O(1) and lazy: a cancelled event is marked dead and skipped (then
// recycled) when it reaches the heap root, instead of being dug out of
// the middle of the array. Determinism is untouched — events fire in
// exact (time, scheduling-order) sequence, so a seed still reproduces
// every run byte-for-byte; only the wall-clock per event changed.
//
// Because every simulation is single-threaded and deterministic,
// independent experiment cells (policy x workload x machine) run on a
// worker pool: cmd/sweep's -parallel N flag (default GOMAXPROCS) fans
// the matrix out and reassembles results in input order. Host wall-clock
// per cell is recorded in BENCH_wallclock.json alongside the
// virtual-time results in BENCH_sweep.json, so harness-speed regressions
// are tracked across PRs the same way scheduler regressions are.
//
// # Quick start
//
//	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 4, SMP: true, Scheduler: elsc.ELSC})
//	res := m.RunVolanoMark(elsc.VolanoConfig{Rooms: 10})
//	fmt.Printf("%.0f messages/second\n", res.Throughput)
//	fmt.Println(m.Stats().Summary())
//
// Determinism: a machine's Seed fixes every random draw; the same
// configuration reproduces a run cycle-for-cycle.
package elsc
