// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6), plus the §8 future-work comparisons, the ablations,
// and pure-algorithm microbenchmarks of schedule() itself.
//
// Macro benchmarks run a scaled-down simulation per iteration and report
// the paper's metric through b.ReportMetric; cmd/sweep runs the same
// experiments at full paper scale. Shapes — who wins, by how much, where
// the crossover falls — are the reproduction target, not absolute numbers.
package elsc_test

import (
	"fmt"
	"testing"

	"elsc/internal/experiments"
	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/sched/o1"
	"elsc/internal/sched/vanilla"
	"elsc/internal/sim"
	"elsc/internal/task"
	"elsc/internal/workload"
	"elsc/internal/workload/kbuild"
	"elsc/internal/workload/volano"
	"elsc/internal/workload/webserver"
)

// benchScale is the per-iteration workload size for macro benchmarks.
func benchScale() experiments.Scale {
	return experiments.Scale{Messages: 10, Seed: 42, HorizonSeconds: 600}
}

// BenchmarkTable2_KernelCompile regenerates Table 2: light-load compile
// times under each scheduler on UP and 2P. Metric: virtual seconds to
// finish the build (lower is better; the paper's claim is near-equality).
func BenchmarkTable2_KernelCompile(b *testing.B) {
	cfg := kbuild.Config{Units: 48, MeanCompile: 40_000_000}
	for _, label := range []string{"UP", "2P"} {
		for _, policy := range []string{experiments.Reg, experiments.ELSC} {
			b.Run(fmt.Sprintf("%s/%s", policy, label), func(b *testing.B) {
				var secs float64
				for i := 0; i < b.N; i++ {
					r := experiments.RunKBuild(experiments.SpecByLabel(label), policy, cfg, benchScale())
					secs = r.Result.Seconds
				}
				b.ReportMetric(secs, "virt-sec")
			})
		}
	}
}

// benchVolano runs one VolanoMark cell per iteration and reports the
// requested metrics.
func benchVolano(b *testing.B, policy, label string, rooms int, report func(b *testing.B, r experiments.VolanoRun)) {
	b.Helper()
	var last experiments.VolanoRun
	for i := 0; i < b.N; i++ {
		last = experiments.RunVolano(experiments.SpecByLabel(label), policy, rooms, benchScale())
	}
	report(b, last)
}

// BenchmarkFig2_RecalcEntries regenerates Figure 2: recalculation-loop
// entries per run (log-scale contrast between schedulers).
func BenchmarkFig2_RecalcEntries(b *testing.B) {
	for _, label := range []string{"UP", "4P"} {
		for _, policy := range []string{experiments.Reg, experiments.ELSC} {
			b.Run(fmt.Sprintf("%s/%s", policy, label), func(b *testing.B) {
				benchVolano(b, policy, label, 5, func(b *testing.B, r experiments.VolanoRun) {
					b.ReportMetric(float64(r.Stats.Recalcs), "recalcs")
				})
			})
		}
	}
}

// BenchmarkFig3_Throughput regenerates Figure 3: message throughput by
// room count. The reg series should fall with rooms; elsc should not.
func BenchmarkFig3_Throughput(b *testing.B) {
	for _, label := range []string{"UP", "1P", "4P"} {
		for _, rooms := range []int{5, 20} {
			for _, policy := range []string{experiments.Reg, experiments.ELSC} {
				b.Run(fmt.Sprintf("%s/%s/rooms%d", policy, label, rooms), func(b *testing.B) {
					benchVolano(b, policy, label, rooms, func(b *testing.B, r experiments.VolanoRun) {
						b.ReportMetric(r.Result.Throughput, "msgs/sec")
					})
				})
			}
		}
	}
}

// BenchmarkFig4_ScalingFactor regenerates Figure 4: 20-room/5-room
// throughput ratio (1.0 = perfect scaling with thread count).
func BenchmarkFig4_ScalingFactor(b *testing.B) {
	for _, label := range []string{"UP", "4P"} {
		for _, policy := range []string{experiments.Reg, experiments.ELSC} {
			b.Run(fmt.Sprintf("%s/%s", policy, label), func(b *testing.B) {
				var factor float64
				for i := 0; i < b.N; i++ {
					lo := experiments.RunVolano(experiments.SpecByLabel(label), policy, 5, benchScale())
					hi := experiments.RunVolano(experiments.SpecByLabel(label), policy, 20, benchScale())
					factor = hi.Result.Throughput / lo.Result.Throughput
				}
				b.ReportMetric(factor, "scaling")
			})
		}
	}
}

// BenchmarkFig5_ScheduleCost regenerates Figure 5: cycles per schedule()
// and tasks examined per call.
func BenchmarkFig5_ScheduleCost(b *testing.B) {
	for _, label := range []string{"UP", "4P"} {
		for _, policy := range []string{experiments.Reg, experiments.ELSC} {
			b.Run(fmt.Sprintf("%s/%s", policy, label), func(b *testing.B) {
				benchVolano(b, policy, label, 10, func(b *testing.B, r experiments.VolanoRun) {
					b.ReportMetric(r.Stats.CyclesPerSchedule(), "cyc/sched")
					b.ReportMetric(r.Stats.ExaminedPerSchedule(), "examined")
				})
			})
		}
	}
}

// BenchmarkFig6_CallsAndMigrations regenerates Figure 6: schedule() call
// totals and tasks dispatched on a new processor (10-room runs).
func BenchmarkFig6_CallsAndMigrations(b *testing.B) {
	for _, label := range []string{"UP", "2P", "4P"} {
		for _, policy := range []string{experiments.Reg, experiments.ELSC} {
			b.Run(fmt.Sprintf("%s/%s", policy, label), func(b *testing.B) {
				benchVolano(b, policy, label, 10, func(b *testing.B, r experiments.VolanoRun) {
					b.ReportMetric(float64(r.Stats.SchedCalls), "sched-calls")
					b.ReportMetric(float64(r.Stats.Migrations), "migrations")
				})
			})
		}
	}
}

// BenchmarkProfile_SchedulerShare regenerates the §4 kernel-profile claim:
// the stock scheduler burns 37-55% of kernel time under VolanoMark.
func BenchmarkProfile_SchedulerShare(b *testing.B) {
	for _, policy := range []string{experiments.Reg, experiments.ELSC} {
		b.Run(policy, func(b *testing.B) {
			benchVolano(b, policy, "UP", 20, func(b *testing.B, r experiments.VolanoRun) {
				b.ReportMetric(100*r.Stats.SchedulerShareOfKernel(), "sched-%kernel")
			})
		})
	}
}

// BenchmarkAlt_FutureWorkSchedulers compares the §8 alternative designs
// on the 4P stress configuration.
func BenchmarkAlt_FutureWorkSchedulers(b *testing.B) {
	for _, policy := range experiments.Policies {
		b.Run(policy, func(b *testing.B) {
			benchVolano(b, policy, "4P", 10, func(b *testing.B, r experiments.VolanoRun) {
				b.ReportMetric(r.Result.Throughput, "msgs/sec")
				b.ReportMetric(r.Stats.CyclesPerSchedule(), "cyc/sched")
			})
		})
	}
}

// BenchmarkLockWait_8CPU measures run-queue lock spin per schedule() on an
// eight-processor VolanoMark run — the scaling question past the paper's
// hardware. The per-CPU-lock policies (mq, o1) should sit an order of
// magnitude below the global-lock ones.
func BenchmarkLockWait_8CPU(b *testing.B) {
	for _, policy := range experiments.Policies {
		b.Run(policy, func(b *testing.B) {
			benchVolano(b, policy, "8P", 10, func(b *testing.B, r experiments.VolanoRun) {
				spin := 0.0
				if r.Stats.SchedCalls > 0 {
					spin = float64(r.Stats.SpinCycles) / float64(r.Stats.SchedCalls)
				}
				b.ReportMetric(spin, "spin-cyc/sched")
				b.ReportMetric(r.Result.Throughput, "msgs/sec")
			})
		})
	}
}

// BenchmarkLockWait_Scale extends the lock-wait headline to 16 and 32
// processors: the global-lock policies' spin grows with every doubling,
// while the per-CPU-lock policies stay near zero.
func BenchmarkLockWait_Scale(b *testing.B) {
	for _, label := range []string{"16P", "32P"} {
		for _, policy := range experiments.Policies {
			b.Run(fmt.Sprintf("%s/%s", policy, label), func(b *testing.B) {
				benchVolano(b, policy, label, 10, func(b *testing.B, r experiments.VolanoRun) {
					spin := 0.0
					if r.Stats.SchedCalls > 0 {
						spin = float64(r.Stats.SpinCycles) / float64(r.Stats.SchedCalls)
					}
					b.ReportMetric(spin, "spin-cyc/sched")
					b.ReportMetric(r.Result.Throughput, "msgs/sec")
				})
			})
		}
	}
}

// BenchmarkNUMA_DomainAwareness races domain-aware o1 against its
// topology-blind ablation on the 32P-NUMA spec at marginal load, the
// regime where the steal path runs constantly. Metrics: throughput and
// cross-domain migrations — the acceptance pair for the NUMA work.
func BenchmarkNUMA_DomainAwareness(b *testing.B) {
	spec := experiments.SpecByLabel("32P-NUMA")
	for _, blind := range []bool{false, true} {
		name := "domain-aware"
		if blind {
			name = "topology-blind"
		}
		b.Run(name, func(b *testing.B) {
			var r experiments.VolanoRun
			for i := 0; i < b.N; i++ {
				r = experiments.RunO1Topology(spec, blind, 3, benchScale())
			}
			b.ReportMetric(r.Result.Throughput, "msgs/sec")
			b.ReportMetric(float64(r.Stats.CrossDomainMigrations), "cross-dom")
			b.ReportMetric(float64(r.Stats.RemoteCycles)/1e6, "remote-Mcyc")
		})
	}
}

// BenchmarkNUMA_Policies reports every policy's throughput on the
// 32P-NUMA machine with the scalable network stack — the 32-processor
// successor to the 8P lock-wait table.
func BenchmarkNUMA_Policies(b *testing.B) {
	spec := experiments.SpecByLabel("32P-NUMA")
	for _, policy := range experiments.Policies {
		b.Run(policy, func(b *testing.B) {
			var r experiments.VolanoRun
			for i := 0; i < b.N; i++ {
				r = experiments.RunVolanoConfig(spec, policy, volano.Config{
					Rooms: 10, MessagesPerUser: benchScale().Messages,
					Costs: volano.ScalableStackCosts(),
				}, benchScale())
			}
			b.ReportMetric(r.Result.Throughput, "msgs/sec")
			b.ReportMetric(float64(r.Stats.CrossDomainMigrations), "cross-dom")
		})
	}
}

// BenchmarkFutureWork_Webserver regenerates the §8 Apache question:
// throughput and latency under each scheduler.
func BenchmarkFutureWork_Webserver(b *testing.B) {
	cfg := webserver.Config{Workers: 32, Requests: 4000}
	for _, policy := range []string{experiments.Reg, experiments.ELSC} {
		b.Run(policy, func(b *testing.B) {
			var r experiments.WebRun
			for i := 0; i < b.N; i++ {
				r = experiments.RunWeb(experiments.SpecByLabel("2P"), policy, cfg, benchScale())
			}
			b.ReportMetric(r.Result.Throughput, "req/sec")
			b.ReportMetric(r.Result.MeanLatMS, "mean-lat-ms")
			b.ReportMetric(r.Result.MaxLatMS, "max-lat-ms")
		})
	}
}

// BenchmarkAblation_SearchLimit sweeps ELSC's per-list examination cap
// around the paper's ncpu/2+5 choice.
func BenchmarkAblation_SearchLimit(b *testing.B) {
	for _, limit := range []int{1, 7, 40} {
		b.Run(fmt.Sprintf("limit%d", limit), func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				m := kernel.NewMachine(kernel.Config{
					CPUs: 4, SMP: true, Seed: 42,
					NewScheduler: func(env *sched.Env) sched.Scheduler {
						return elsc.NewWithConfig(env, elsc.Config{SearchLimit: limit})
					},
					MaxCycles: 600 * kernel.DefaultHz,
				})
				res := volano.Build(m, volano.Config{Rooms: 10, MessagesPerUser: 10}).Run()
				thr = res.Throughput
			}
			b.ReportMetric(thr, "msgs/sec")
		})
	}
}

// BenchmarkAblation_UPShortcut measures the uniprocessor mm-match early
// exit (§5.2), the mechanism behind ELSC's Table 2 edge on UP.
func BenchmarkAblation_UPShortcut(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				m := kernel.NewMachine(kernel.Config{
					CPUs: 1, SMP: false, Seed: 42,
					NewScheduler: func(env *sched.Env) sched.Scheduler {
						return elsc.NewWithConfig(env, elsc.Config{DisableUPShortcut: disable})
					},
					MaxCycles: 600 * kernel.DefaultHz,
				})
				res := volano.Build(m, volano.Config{Rooms: 5, MessagesPerUser: 10}).Run()
				thr = res.Throughput
			}
			b.ReportMetric(thr, "msgs/sec")
		})
	}
}

// BenchmarkMicro_Schedule measures one schedule() decision in isolation on
// a prepopulated run queue — the pure O(n) scan versus the table lookup
// versus the O(1) bitmap pick, in real nanoseconds and simulated cycles.
func BenchmarkMicro_Schedule(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		for _, policy := range []string{"reg", "elsc", "o1"} {
			b.Run(fmt.Sprintf("%s/tasks%d", policy, n), func(b *testing.B) {
				env := sched.NewEnv(1, false, func() int { return n })
				var s sched.Scheduler
				switch policy {
				case "reg":
					s = vanilla.New(env)
				case "elsc":
					s = elsc.New(env)
				default:
					s = o1.New(env)
				}
				rng := sim.NewRNG(1)
				tasks := make([]*task.Task, n)
				for i := range tasks {
					t := task.New(i+1, "t", nil, env.Epoch)
					t.Priority = 1 + rng.Intn(40)
					t.SetCounter(env.Epoch, 1+rng.Intn(2*t.Priority))
					tasks[i] = t
					s.AddToRunqueue(t)
				}
				idle := task.New(-1, "idle", nil, nil)
				idle.IsIdle = true

				var cycles uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := s.Schedule(0, idle)
					cycles += res.Cycles
					if res.Next != nil {
						// Put it back so the queue size is stable.
						next := res.Next
						s.DelFromRunqueue(next)
						s.AddToRunqueue(next)
					}
				}
				b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
			})
		}
	}
}

// BenchmarkMicro_RunqueueOps measures add/del churn, where ELSC pays its
// table-indexing overhead.
func BenchmarkMicro_RunqueueOps(b *testing.B) {
	for _, policy := range []string{"reg", "elsc", "o1"} {
		b.Run(policy, func(b *testing.B) {
			env := sched.NewEnv(1, false, func() int { return 256 })
			var s sched.Scheduler
			switch policy {
			case "reg":
				s = vanilla.New(env)
			case "elsc":
				s = elsc.New(env)
			default:
				s = o1.New(env)
			}
			tasks := make([]*task.Task, 256)
			for i := range tasks {
				tasks[i] = task.New(i+1, "t", nil, env.Epoch)
				s.AddToRunqueue(tasks[i])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := tasks[i%len(tasks)]
				s.DelFromRunqueue(t)
				s.AddToRunqueue(t)
			}
		})
	}
}

// benchWorkloadScale sizes one registry-workload cell per iteration.
func benchWorkloadScale() experiments.Scale {
	return experiments.Scale{Messages: 10, Seed: 42, HorizonSeconds: 600, Quick: true}
}

// BenchmarkWorkload_DB races every policy on the syscall-heavy OLTP
// workload at 8 CPUs. Metrics: transaction throughput and p99 commit
// latency — the regime where wake/dispatch cost, not compute, decides.
func BenchmarkWorkload_DB(b *testing.B) {
	for _, policy := range experiments.Policies {
		b.Run(policy, func(b *testing.B) {
			var last experiments.WorkloadRun
			for i := 0; i < b.N; i++ {
				last = experiments.RunWorkloadCell(
					experiments.SpecByLabel("8P"), policy, workload.DB, benchWorkloadScale())
			}
			b.ReportMetric(last.Result.Throughput, "txns/s")
			if p99, ok := last.Result.Extra("p99_txn_us"); ok {
				b.ReportMetric(p99, "p99-us")
			}
		})
	}
}

// BenchmarkWorkload_WakeStorm races every policy on the mass-wakeup
// workload on the 32P-NUMA spec. Metric: p99 wakeup-to-run latency — the
// tail the last herd member pays.
func BenchmarkWorkload_WakeStorm(b *testing.B) {
	for _, policy := range experiments.Policies {
		b.Run(policy, func(b *testing.B) {
			var last experiments.WorkloadRun
			for i := 0; i < b.N; i++ {
				last = experiments.RunWorkloadCell(
					experiments.SpecByLabel("32P-NUMA"), policy, workload.WakeStorm, benchWorkloadScale())
			}
			if p99, ok := last.Result.Extra("p99_us"); ok {
				b.ReportMetric(p99, "p99-us")
			}
			b.ReportMetric(last.Result.Throughput, "wakes/s")
		})
	}
}
