package elsc_test

import (
	"encoding/json"
	"os"
	"testing"
)

// benchWallclockSchema mirrors cmd/sweep's BENCH_wallclock.json output.
// Where BENCH_sweep.json tracks virtual-time results (byte-identical for
// a seed), this file tracks the harness's own speed: host wall-clock per
// matrix cell. The committed copy keeps the trajectory visible across
// PRs; CI regenerates one with a -parallel 2 one-cell sweep and re-runs
// this test against it.
type benchWallclockSchema struct {
	Experiment   string  `json:"experiment"`
	Seed         int64   `json:"seed"`
	Parallel     int     `json:"parallel"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	TotalSeconds float64 `json:"total_seconds"`
	Cells        []struct {
		Workload string  `json:"workload"`
		Policy   string  `json:"policy"`
		Spec     string  `json:"spec"`
		WallMS   float64 `json:"wall_ms"`
		Events   *uint64 `json:"events"` // pointer so a stale file fails loudly
	} `json:"cells"`
}

func TestBenchWallclockJSONSchema(t *testing.T) {
	raw, err := os.ReadFile("BENCH_wallclock.json")
	if err != nil {
		t.Fatalf("reading BENCH_wallclock.json: %v (regenerate with: go run ./cmd/sweep -quick -exp matrix -json)", err)
	}
	var got benchWallclockSchema
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("BENCH_wallclock.json does not parse: %v", err)
	}
	if got.Experiment == "" {
		t.Fatal("BENCH_wallclock.json missing experiment")
	}
	if got.Parallel < 1 || got.GoMaxProcs < 1 {
		t.Fatalf("parallel=%d gomaxprocs=%d, want >= 1", got.Parallel, got.GoMaxProcs)
	}
	if got.TotalSeconds <= 0 {
		t.Fatalf("total_seconds = %v, want > 0", got.TotalSeconds)
	}
	if len(got.Cells) == 0 {
		t.Fatal("BENCH_wallclock.json has no cells; run sweep with -exp matrix (or all) and -json")
	}
	for _, c := range got.Cells {
		if c.Workload == "" || c.Policy == "" || c.Spec == "" {
			t.Fatalf("cell missing identity fields: %+v", c)
		}
		if c.WallMS <= 0 {
			t.Fatalf("cell %s-%s-%s has non-positive wall_ms", c.Workload, c.Policy, c.Spec)
		}
		if c.Events == nil || *c.Events == 0 {
			t.Fatalf("cell %s-%s-%s missing events count; regenerate the file", c.Workload, c.Policy, c.Spec)
		}
	}
}
