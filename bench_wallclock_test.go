package elsc_test

import (
	"encoding/json"
	"os"
	"testing"
)

// benchWallclockSchema mirrors cmd/sweep's BENCH_wallclock.json output.
// Where BENCH_sweep.json tracks virtual-time results (byte-identical for
// a seed), this file tracks the harness's own speed: host wall-clock per
// matrix cell, the wheel/heap split of each cell's event traffic, and —
// when the scaling experiment ran — the measured parallel-speedup rungs.
// The committed copy keeps the trajectory visible across PRs; CI
// regenerates one with its one-cell sweeps (worker-pool and tickless
// digest checks) and re-runs this test against it.
type benchWallclockSchema struct {
	Experiment      string  `json:"experiment"`
	Seed            int64   `json:"seed"`
	Parallel        int     `json:"parallel"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	TotalSeconds    float64 `json:"total_seconds"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
	Scaling         []struct {
		Parallel   int     `json:"parallel"`
		Seconds    float64 `json:"seconds"`
		Events     uint64  `json:"events"`
		Speedup    float64 `json:"speedup"`
		NsPerEvent float64 `json:"ns_per_event"`
	} `json:"scaling"`
	Cells []struct {
		Workload     string  `json:"workload"`
		Policy       string  `json:"policy"`
		Spec         string  `json:"spec"`
		WallMS       float64 `json:"wall_ms"`
		Events       *uint64 `json:"events"` // pointers so a stale file fails loudly
		EventsWheel  *uint64 `json:"events_wheel"`
		EventsHeap   *uint64 `json:"events_heap"`
		TicksSkipped *uint64 `json:"ticks_skipped"`
	} `json:"cells"`
}

func TestBenchWallclockJSONSchema(t *testing.T) {
	raw, err := os.ReadFile("BENCH_wallclock.json")
	if err != nil {
		t.Fatalf("reading BENCH_wallclock.json: %v (regenerate with: go run ./cmd/sweep -quick -exp all -json)", err)
	}
	var got benchWallclockSchema
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("BENCH_wallclock.json does not parse: %v", err)
	}
	if got.Experiment == "" {
		t.Fatal("BENCH_wallclock.json missing experiment")
	}
	if got.Parallel < 1 || got.GoMaxProcs < 1 {
		t.Fatalf("parallel=%d gomaxprocs=%d, want >= 1", got.Parallel, got.GoMaxProcs)
	}
	if got.TotalSeconds <= 0 {
		t.Fatalf("total_seconds = %v, want > 0", got.TotalSeconds)
	}
	if len(got.Cells) == 0 {
		t.Fatal("BENCH_wallclock.json has no cells; run sweep with -exp matrix (or all) and -json")
	}
	anyWheel, anySkipped := false, false
	for _, c := range got.Cells {
		if c.Workload == "" || c.Policy == "" || c.Spec == "" {
			t.Fatalf("cell missing identity fields: %+v", c)
		}
		if c.WallMS <= 0 {
			t.Fatalf("cell %s-%s-%s has non-positive wall_ms", c.Workload, c.Policy, c.Spec)
		}
		if c.Events == nil || *c.Events == 0 {
			t.Fatalf("cell %s-%s-%s missing events count; regenerate the file", c.Workload, c.Policy, c.Spec)
		}
		if c.EventsWheel == nil || c.EventsHeap == nil {
			t.Fatalf("cell %s-%s-%s missing events_wheel/events_heap split; regenerate the file",
				c.Workload, c.Policy, c.Spec)
		}
		if *c.EventsWheel+*c.EventsHeap != *c.Events {
			t.Fatalf("cell %s-%s-%s: events_wheel %d + events_heap %d != events %d",
				c.Workload, c.Policy, c.Spec, *c.EventsWheel, *c.EventsHeap, *c.Events)
		}
		if *c.EventsWheel > 0 {
			anyWheel = true
		}
		if c.TicksSkipped == nil {
			t.Fatalf("cell %s-%s-%s missing ticks_skipped; regenerate the file",
				c.Workload, c.Policy, c.Spec)
		}
		if *c.TicksSkipped > 0 {
			anySkipped = true
		}
	}
	if !anyWheel {
		t.Fatal("no cell dispatched any event from the timer wheel; the fast path is dead")
	}
	if !anySkipped {
		t.Fatal("no cell skipped an idle tick; NO_HZ tickless idle is not engaging")
	}

	// The scaling block is present whenever the scaling experiment ran —
	// which includes -exp all, the mode that generates the committed
	// file. A matrix-only regeneration (as CI's one-cell sweep does)
	// legitimately omits it.
	scalingRan := got.Experiment == "all" || got.Experiment == "scaling"
	if scalingRan && len(got.Scaling) == 0 {
		t.Fatalf("experiment %q must record scaling rungs; regenerate the file", got.Experiment)
	}
	if len(got.Scaling) > 0 {
		if got.ParallelSpeedup <= 0 {
			t.Fatalf("parallel_speedup = %v with %d scaling rungs, want > 0",
				got.ParallelSpeedup, len(got.Scaling))
		}
		if got.Scaling[0].Parallel != 1 || got.Scaling[0].Speedup != 1.0 {
			t.Fatalf("first scaling rung %+v, want serial baseline (parallel=1, speedup=1)", got.Scaling[0])
		}
		for i, l := range got.Scaling {
			if l.Parallel < 1 || l.Seconds <= 0 || l.Events == 0 || l.Speedup <= 0 || l.NsPerEvent <= 0 {
				t.Fatalf("scaling rung %d unpopulated: %+v", i, l)
			}
			if i > 0 && l.Parallel <= got.Scaling[i-1].Parallel {
				t.Fatalf("scaling rungs not ascending: %+v", got.Scaling)
			}
			if l.Events != got.Scaling[0].Events {
				t.Fatalf("rung %d dispatched %d events, serial dispatched %d — determinism broke",
					l.Parallel, l.Events, got.Scaling[0].Events)
			}
		}
		if got.ParallelSpeedup != got.Scaling[len(got.Scaling)-1].Speedup {
			t.Fatal("parallel_speedup does not match the top scaling rung")
		}
	}
}
