package elsc_test

import (
	"fmt"
	"testing"

	"elsc"
	"elsc/internal/experiments"
)

// TestCrossSchedulerSmoke runs a short VolanoMark on 1, 2, 4 and 8
// processors under every scheduler and checks that messages flow and no
// room starves (every expected delivery arrives before the horizon). It
// exists to catch wiring mistakes when a future scheduler is registered:
// a policy that loses tasks, deadlocks a queue, or mishandles affinity
// fails here before any figure is regenerated.
func TestCrossSchedulerSmoke(t *testing.T) {
	const (
		rooms    = 2
		users    = 4
		messages = 2
	)
	want := uint64(rooms * users * users * messages)
	// Scheduler kind strings are the policy names of the experiments
	// registry, so iterating it keeps this smoke test — like the
	// conformance and determinism suites — in lockstep with the lineup.
	for _, policy := range experiments.Policies {
		kind := elsc.SchedulerKind(policy)
		for _, cpus := range []int{1, 2, 4, 8} {
			kind, cpus := kind, cpus
			t.Run(fmt.Sprintf("%s/%dcpu", kind, cpus), func(t *testing.T) {
				t.Parallel()
				m := elsc.NewMachine(elsc.MachineConfig{
					CPUs:       cpus,
					SMP:        cpus > 1,
					Scheduler:  kind,
					Seed:       5,
					MaxSeconds: 600,
				})
				res := m.RunVolanoMark(elsc.VolanoConfig{
					Rooms: rooms, UsersPerRoom: users, MessagesPerUser: messages,
				})
				if res.Throughput <= 0 {
					t.Fatalf("throughput = %v, want > 0", res.Throughput)
				}
				if res.Deliveries != want {
					t.Fatalf("deliveries = %d, want %d (a room starved before the horizon)",
						res.Deliveries, want)
				}
				if name := m.SchedulerName(); name != string(kind) {
					t.Fatalf("scheduler name = %q, want %q", name, kind)
				}
			})
		}
	}
}

// TestCrossSchedulerSmokeNUMA repeats the smoke bar on a 32-processor
// machine with four cache domains, through the public CacheDomains knob:
// every policy must still deliver every message when migrations can cross
// an interconnect.
func TestCrossSchedulerSmokeNUMA(t *testing.T) {
	const (
		rooms    = 2
		users    = 4
		messages = 2
	)
	want := uint64(rooms * users * users * messages)
	for _, policy := range experiments.Policies {
		kind := elsc.SchedulerKind(policy)
		t.Run(fmt.Sprintf("%s/32cpu-4dom", kind), func(t *testing.T) {
			t.Parallel()
			m := elsc.NewMachine(elsc.MachineConfig{
				CPUs:         32,
				SMP:          true,
				CacheDomains: 4,
				Scheduler:    kind,
				Seed:         5,
				MaxSeconds:   600,
			})
			res := m.RunVolanoMark(elsc.VolanoConfig{
				Rooms: rooms, UsersPerRoom: users, MessagesPerUser: messages,
			})
			if res.Deliveries != want {
				t.Fatalf("deliveries = %d, want %d (a room starved on the NUMA machine)",
					res.Deliveries, want)
			}
		})
	}
}
