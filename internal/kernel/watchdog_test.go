package kernel

import (
	"strings"
	"testing"

	"elsc/internal/sched"
	"elsc/internal/sim"
)

func watchedMachine(t *testing.T, cpus int, f SchedulerFactory, wd WatchdogConfig, sink *[]WatchdogViolation) *Machine {
	t.Helper()
	wd.OnViolation = func(v WatchdogViolation) { *sink = append(*sink, v) }
	return NewMachine(Config{
		CPUs: cpus, SMP: cpus > 1, Seed: 42, NewScheduler: f,
		MaxCycles: 600 * DefaultHz,
		Watchdog:  &wd,
	})
}

// TestWatchdogCleanRunIsQuiet: a healthy oversubscribed run under the
// default thresholds produces zero violations, and the armed watchdog's
// counters render (as zeros) in the stats registry.
func TestWatchdogCleanRunIsQuiet(t *testing.T) {
	var got []WatchdogViolation
	m := watchedMachine(t, 2, elscFactory,
		WatchdogConfig{PeriodCycles: DefaultTickCycles}, &got)
	for i := 0; i < 6; i++ {
		m.Spawn("w", nil, computeLoop(100, 400_000))
	}
	m.Run(func() bool { return m.Alive() == 0 })
	if len(got) != 0 {
		t.Fatalf("clean run flagged %d violations, first: %s", len(got), got[0])
	}
	if !m.WatchdogEnabled() {
		t.Fatal("WatchdogEnabled false on an armed machine")
	}
	out := m.Stats().Registry().Render()
	for _, line := range []string{"watchdog_starvations 0", "watchdog_lost_wakeups 0", "watchdog_cpu_stalls 0"} {
		if !strings.Contains(out, line) {
			t.Fatalf("registry missing %q:\n%s", line, out)
		}
	}
}

// TestWatchdogUnarmedRendersNothing: without arming, no watchdog lines
// appear — pre-watchdog registry output is byte-compatible.
func TestWatchdogUnarmedRendersNothing(t *testing.T) {
	m := newMachine(t, 1, elscFactory)
	p := m.Spawn("w", nil, computeLoop(3, 100_000))
	m.Run(func() bool { return p.Exited() })
	if m.WatchdogEnabled() {
		t.Fatal("watchdog armed without a config")
	}
	if strings.Contains(m.Stats().Registry().Render(), "watchdog_") {
		t.Fatal("watchdog counters rendered on an unarmed machine")
	}
}

// TestWatchdogFlagsStarvation: with a microscopic threshold, a queued
// task waiting out another's full quantum crosses the bar at the first
// sweep — the violation carries the task and its measured wait.
func TestWatchdogFlagsStarvation(t *testing.T) {
	var got []WatchdogViolation
	m := watchedMachine(t, 1, vanillaFactory,
		WatchdogConfig{PeriodCycles: DefaultTickCycles, StarveQuanta: 0.001}, &got)
	m.Spawn("hog", nil, computeLoop(100, DefaultTickCycles))
	m.Spawn("waiter", nil, computeLoop(100, DefaultTickCycles))
	m.Run(func() bool { return len(got) > 0 || m.Alive() == 0 })
	if len(got) == 0 {
		t.Fatal("no starvation flagged under a microscopic threshold")
	}
	v := got[0]
	if v.Kind != WatchdogStarvation {
		t.Fatalf("first violation: %s, want starvation", v)
	}
	if v.P == nil || v.Waited == 0 {
		t.Fatalf("violation missing task or wait: %s", v)
	}
	if m.Stats().WatchdogStarvations == 0 {
		t.Fatal("starvation counter not bumped")
	}
	if !strings.Contains(v.String(), "starvation") {
		t.Fatalf("violation renders as %q", v.String())
	}
}

// TestWatchdogFlagsLostWakeup: a runnable task that is neither queued nor
// on a CPU (simulated by dropping it from the run queue behind the
// kernel's back) is flagged at the next sweep.
func TestWatchdogFlagsLostWakeup(t *testing.T) {
	var got []WatchdogViolation
	m := watchedMachine(t, 2, elscFactory,
		WatchdogConfig{PeriodCycles: DefaultTickCycles}, &got)
	for i := 0; i < 5; i++ {
		m.Spawn("w", nil, computeLoop(200, 400_000))
	}
	var target sim.Time
	stop := func() bool { return m.Now() >= target }
	target = m.Now() + sim.Time(DefaultTickCycles/2)
	m.Run(stop)

	var lost *Proc
	for _, p := range m.procs {
		if !p.exited && p.Task.Runnable() && !p.Task.HasCPU && m.sched.OnRunqueue(p.Task) {
			lost = p
			break
		}
	}
	if lost == nil {
		t.Fatal("no queued task to lose")
	}
	m.sched.DelFromRunqueue(lost.Task)

	m.Run(func() bool { return len(got) > 0 })
	if len(got) == 0 || got[0].Kind != WatchdogLostWakeup {
		t.Fatalf("violations %v, want a lost-wakeup", got)
	}
	if got[0].P != lost {
		t.Fatalf("flagged %v, lost %v", got[0].P.Task, lost.Task)
	}
	if m.Stats().WatchdogLostWakeups == 0 {
		t.Fatal("lost-wakeup counter not bumped")
	}

	// Repair and finish: the machine must still be able to run the task
	// to completion once it is found again.
	sched.ResetQueueState(lost.Task)
	m.sched.AddToRunqueue(lost.Task)
	m.Run(func() bool { return m.Alive() == 0 })
	if !lost.Exited() {
		t.Fatal("repaired task never finished")
	}
}

// TestWatchdogFlagsCPUStall: an online CPU whose timer chain died (forced
// here by resurrecting an offlined CPU behind OnlineCPU's back) is
// reported as stalled, once.
func TestWatchdogFlagsCPUStall(t *testing.T) {
	var got []WatchdogViolation
	m := watchedMachine(t, 2, elscFactory,
		WatchdogConfig{PeriodCycles: DefaultTickCycles}, &got)
	m.Spawn("hog", nil, computeLoop(400, 100_000))
	if err := m.OfflineCPU(1); err != nil {
		t.Fatal(err)
	}
	var target sim.Time
	stop := func() bool { return m.Now() >= target }
	target = m.Now() + sim.Time(3*DefaultTickCycles)
	m.Run(stop)
	if m.cpus[1].tickEv.Pending() {
		t.Fatal("tick chain should have parked while offline")
	}
	// The bug under test: a CPU marked online whose tick chain is dead.
	// OnlineCPU would re-arm it, so flip the bit directly.
	m.cpus[1].online = true
	m.env.SetCPUOnline(1, true)

	m.Run(func() bool { return len(got) > 0 || m.Alive() == 0 })
	if len(got) == 0 || got[0].Kind != WatchdogCPUStall {
		t.Fatalf("violations %v, want a cpu-stall", got)
	}
	if got[0].CPU != 1 {
		t.Fatalf("stall reported on cpu%d, want 1", got[0].CPU)
	}
	if m.Stats().WatchdogCPUStalls != 1 {
		t.Fatalf("stall counter = %d, want exactly 1 (once per episode)",
			m.Stats().WatchdogCPUStalls)
	}
}

// TestWatchdogSweepAllocFree: the periodic sweep over a loaded machine
// is part of the zero-allocation event path — whole swept tick periods
// touch the allocator zero times.
func TestWatchdogSweepAllocFree(t *testing.T) {
	var got []WatchdogViolation
	m := watchedMachine(t, 2, elscFactory,
		WatchdogConfig{PeriodCycles: DefaultTickCycles}, &got)
	for i := 0; i < 8; i++ {
		m.Spawn("hog", nil, preboundHog(1_000_000, 2*DefaultTickCycles))
	}
	var target sim.Time
	stop := func() bool { return m.Now() >= target }
	target = m.Now() + sim.Time(20*DefaultTickCycles)
	m.Run(stop)

	runPeriod := func() {
		target = m.Now() + sim.Time(DefaultTickCycles)
		m.Run(stop)
	}
	allocs := testing.AllocsPerRun(10, runPeriod)
	if allocs != 0 {
		t.Fatalf("swept tick period allocates %.1f objects, want 0", allocs)
	}
	if m.Alive() == 0 {
		t.Fatal("workload drained mid-measurement; sweeps ran over an empty machine")
	}
	if len(got) != 0 {
		t.Fatalf("healthy machine flagged: %s", got[0])
	}
}
