package kernel

import (
	"fmt"
	"strings"
)

// CPUStat is one processor's time breakdown, mpstat-style.
type CPUStat struct {
	CPU            int
	WorkCycles     uint64 // task work executed (user + syscall segments)
	IdleCycles     uint64 // time with nothing to run
	Dispatches     uint64 // context switches completed here
	Online         bool   // currently hot-plugged in
	Offlines       uint64 // hot-unplug transitions
	OfflineCycles  uint64 // time spent offline
	TicklessCycles uint64 // idle time with the timer chain parked (NO_HZ)
}

// Utilization returns the busy fraction over the elapsed time.
func (c CPUStat) Utilization(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(c.WorkCycles) / float64(elapsed)
}

// CPUStats returns the per-processor breakdown. Idle time for a currently
// idle CPU is accounted up to the present instant.
func (m *Machine) CPUStats() []CPUStat {
	out := make([]CPUStat, len(m.cpus))
	for i, c := range m.cpus {
		idle := c.idleAccum
		if c.isIdle() {
			idle += uint64(m.eng.Now() - c.idleFrom)
		}
		offline := c.offlineAccum
		if !c.online {
			offline += uint64(m.eng.Now() - c.offlineFrom)
		}
		tickless := c.ticklessAccum
		if c.online && c.tickParked {
			tickless += uint64(m.eng.Now() - c.ticklessFrom)
		}
		out[i] = CPUStat{
			CPU:            i,
			WorkCycles:     c.work,
			IdleCycles:     idle,
			Dispatches:     c.dispatches,
			Online:         c.online,
			Offlines:       c.offlines,
			OfflineCycles:  offline,
			TicklessCycles: tickless,
		}
	}
	return out
}

// MPStat renders the per-CPU table. The hotplug and tickless columns
// appear only on runs that exercised them (some CPU went offline, some
// chain parked), so prior output is unchanged.
func (m *Machine) MPStat() string {
	elapsed := uint64(m.eng.Now())
	stats := m.CPUStats()
	hotplug, tickless := false, false
	for _, s := range stats {
		if s.Offlines > 0 {
			hotplug = true
		}
		if s.TicklessCycles > 0 {
			tickless = true
		}
	}
	var b strings.Builder
	switch {
	case hotplug && tickless:
		fmt.Fprintf(&b, "%4s %14s %14s %10s %7s %6s %14s %14s\n",
			"CPU", "WORK", "IDLE", "DISPATCH", "UTIL", "STATE", "OFFLINE", "TICKLESS")
		for _, s := range stats {
			fmt.Fprintf(&b, "%4d %14d %14d %10d %6.1f%% %6s %14d %14d\n",
				s.CPU, s.WorkCycles, s.IdleCycles, s.Dispatches,
				100*s.Utilization(elapsed), onOff(s.Online), s.OfflineCycles, s.TicklessCycles)
		}
	case hotplug:
		fmt.Fprintf(&b, "%4s %14s %14s %10s %7s %6s %14s\n",
			"CPU", "WORK", "IDLE", "DISPATCH", "UTIL", "STATE", "OFFLINE")
		for _, s := range stats {
			fmt.Fprintf(&b, "%4d %14d %14d %10d %6.1f%% %6s %14d\n",
				s.CPU, s.WorkCycles, s.IdleCycles, s.Dispatches,
				100*s.Utilization(elapsed), onOff(s.Online), s.OfflineCycles)
		}
	case tickless:
		fmt.Fprintf(&b, "%4s %14s %14s %10s %7s %14s\n",
			"CPU", "WORK", "IDLE", "DISPATCH", "UTIL", "TICKLESS")
		for _, s := range stats {
			fmt.Fprintf(&b, "%4d %14d %14d %10d %6.1f%% %14d\n",
				s.CPU, s.WorkCycles, s.IdleCycles, s.Dispatches,
				100*s.Utilization(elapsed), s.TicklessCycles)
		}
	default:
		fmt.Fprintf(&b, "%4s %14s %14s %10s %7s\n", "CPU", "WORK", "IDLE", "DISPATCH", "UTIL")
		for _, s := range stats {
			fmt.Fprintf(&b, "%4d %14d %14d %10d %6.1f%%\n",
				s.CPU, s.WorkCycles, s.IdleCycles, s.Dispatches, 100*s.Utilization(elapsed))
		}
	}
	return b.String()
}

// onOff renders a CPU's hotplug state.
func onOff(online bool) string {
	if online {
		return "on"
	}
	return "off"
}
