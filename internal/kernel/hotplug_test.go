package kernel

import (
	"testing"

	"elsc/internal/sim"
)

func TestHotplugRefusals(t *testing.T) {
	m := newMachine(t, 2, vanillaFactory)
	if err := m.OnlineCPU(0); err != ErrCPUOnline {
		t.Fatalf("onlining an online CPU: err = %v, want ErrCPUOnline", err)
	}
	if err := m.OfflineCPU(1); err != nil {
		t.Fatalf("first offline: %v", err)
	}
	if err := m.OfflineCPU(1); err != ErrCPUOffline {
		t.Fatalf("double offline: err = %v, want ErrCPUOffline", err)
	}
	if err := m.OfflineCPU(0); err != ErrLastCPU {
		t.Fatalf("offlining the last CPU: err = %v, want ErrLastCPU", err)
	}
	if m.OnlineCount() != 1 || m.CPUIsOnline(1) {
		t.Fatalf("online count = %d, cpu1 online = %v", m.OnlineCount(), m.CPUIsOnline(1))
	}
	if err := m.OnlineCPU(1); err != nil {
		t.Fatalf("bringing cpu1 back: %v", err)
	}
	if m.OnlineCount() != 2 {
		t.Fatalf("online count = %d after online, want 2", m.OnlineCount())
	}
	if s := m.Stats(); s.CPUOfflines != 1 || s.CPUOnlines != 1 {
		t.Fatalf("transition counters = %d/%d, want 1/1", s.CPUOfflines, s.CPUOnlines)
	}
}

// TestOfflineRehomesRunningTask: offlining a CPU mid-run preempts its
// task, re-queues it, and the survivor finishes everything; nothing runs
// on the dead CPU afterwards.
func TestOfflineRehomesRunningTask(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 2, f)
		a := m.Spawn("a", nil, computeLoop(50, 100_000))
		b := m.Spawn("b", nil, computeLoop(50, 100_000))
		m.Run(func() bool { return m.cpus[0].current != nil && m.cpus[1].current != nil })
		victim := m.cpus[1].current
		if victim == nil {
			t.Fatal("cpu1 runs nothing with two runnable hogs")
		}
		if err := m.OfflineCPU(1); err != nil {
			t.Fatal(err)
		}
		if victim.Task.HasCPU {
			t.Fatal("victim still marked running after its CPU went offline")
		}
		if !m.sched.OnRunqueue(victim.Task) {
			t.Fatal("preempted victim not re-queued")
		}
		m.Run(func() bool { return m.Alive() == 0 })
		if !a.Exited() || !b.Exited() {
			t.Fatal("tasks did not finish on the surviving CPU")
		}
		if a.Task.Processor != 0 || b.Task.Processor != 0 {
			t.Fatalf("tasks last ran on CPUs %d/%d; only CPU 0 was online",
				a.Task.Processor, b.Task.Processor)
		}
	})
}

// TestWakeRacingOfflineCPUIsNotLost is the IPI re-route regression test:
// a wake-idle IPI already in flight to a CPU that goes offline before it
// lands must be re-routed to a surviving CPU, not dropped — the woken
// task still runs.
func TestWakeRacingOfflineCPUIsNotLost(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 2, f)
		phase := 0
		sleeper := m.Spawn("sleeper", nil, ProgramFunc(func(p *Proc) Action {
			phase++
			switch phase {
			case 1:
				return Sleep{Cycles: 5 * DefaultTickCycles}
			case 2:
				return Compute{Cycles: 100_000}
			default:
				return Exit{}
			}
		}))
		m.Run(func() bool { return !sleeper.Task.Runnable() })
		// The machine is fully idle; the sleep-expiry wake will kick an
		// idle CPU with an ipiLatency-delayed IPI. Stop the instant the
		// wake fires, while that IPI is still in flight.
		m.Run(func() bool { return sleeper.Task.Runnable() })
		target := -1
		for _, c := range m.cpus {
			if c.ipiEv.Pending() {
				target = c.id
			}
		}
		if target == -1 {
			t.Fatal("no wake IPI in flight after the wake fired")
		}
		if err := m.OfflineCPU(target); err != nil {
			t.Fatal(err)
		}
		m.Run(func() bool { return m.Alive() == 0 })
		if !sleeper.Exited() {
			t.Fatalf("woken task lost: wake IPI to offlined cpu%d was dropped", target)
		}
		if sleeper.Task.Processor == target {
			t.Fatalf("sleeper ran on cpu%d after it went offline", target)
		}
	})
}

// TestOfflineParksTickAndOnlineRearms: an offline CPU's timer chain dies
// at its next firing (the preallocated event is parked, never cancelled).
// Under tickless idle OnlineCPU does not blindly restart it: with no work
// pending the CPU comes back with the chain still parked on a fresh grid
// anchor, and the first dispatch re-arms it. With -tickless=off OnlineCPU
// re-arms immediately, the pre-NO_HZ behavior.
func TestOfflineParksTickAndOnlineRearms(t *testing.T) {
	m := newMachine(t, 2, elscFactory)
	hog := m.Spawn("hog", nil, computeLoop(400, 100_000))
	if err := m.OfflineCPU(1); err != nil {
		t.Fatal(err)
	}
	var target sim.Time
	stop := func() bool { return m.Now() >= target }
	target = m.Now() + sim.Time(3*DefaultTickCycles)
	m.Run(stop)
	c := m.cpus[1]
	if c.tickEv.Pending() {
		t.Fatal("tick chain still armed three periods after offline")
	}
	if !c.tickParked || c.tickNext != 0 {
		t.Fatalf("offline chain parked=%v anchor=%d, want parked with no anchor",
			c.tickParked, c.tickNext)
	}
	if err := m.OnlineCPU(1); err != nil {
		t.Fatal(err)
	}
	// The hog is running on cpu0 and nothing is queued: the returning CPU
	// is idle, so its chain stays parked — but healthy, with a grid
	// anchor one period out for ensureTick to resume from.
	onlineAt := m.Now()
	if c.tickEv.Pending() {
		t.Fatal("tick chain armed at online with no work pending")
	}
	if !c.tickParked || c.tickNext != onlineAt+sim.Time(DefaultTickCycles) {
		t.Fatalf("online idle chain parked=%v anchor=%d, want parked at online+period=%d",
			c.tickParked, c.tickNext, onlineAt+sim.Time(DefaultTickCycles))
	}
	m.Run(func() bool { return hog.Exited() })
	if !hog.Exited() {
		t.Fatal("workload did not survive the offline/online cycle")
	}
}

// TestOfflineTicklessOffRearmsAtOnline pins the ablation contract: with
// TicklessOff the online path restores the always-on chain immediately,
// exactly as before NO_HZ.
func TestOfflineTicklessOffRearmsAtOnline(t *testing.T) {
	m := NewMachine(Config{CPUs: 2, SMP: true, Seed: 1, NewScheduler: elscFactory,
		TicklessOff: true, MaxCycles: 600 * DefaultHz})
	m.Spawn("hog", nil, computeLoop(400, 100_000))
	if err := m.OfflineCPU(1); err != nil {
		t.Fatal(err)
	}
	target := m.Now() + sim.Time(3*DefaultTickCycles)
	m.Run(func() bool { return m.Now() >= target })
	if m.cpus[1].tickEv.Pending() {
		t.Fatal("tick chain still armed three periods after offline")
	}
	if err := m.OnlineCPU(1); err != nil {
		t.Fatal(err)
	}
	if !m.cpus[1].tickEv.Pending() {
		t.Fatal("tick chain not re-armed at online with tickless off")
	}
}

// TestOfflineIdleParkedCPU: hot-unplugging a CPU whose chain is already
// parked by tickless idle (not by an offline firing) closes the tickless
// stretch and keeps the park healthy across the offline window — online
// with no work stays parked on a fresh anchor, and the first real
// dispatch re-arms the chain.
func TestOfflineIdleParkedCPU(t *testing.T) {
	m := newMachine(t, 2, elscFactory)
	hog := m.Spawn("hog", nil, computeLoop(2000, 100_000))
	c := m.cpus[1]
	// Let cpu1 idle long enough for its first tick to fire and park.
	m.Run(func() bool { return c.tickParked })
	if c.tickNext == 0 {
		t.Fatal("idle park lost its grid anchor")
	}
	ticklessBefore := m.CPUStats()[1].TicklessCycles
	if err := m.OfflineCPU(1); err != nil {
		t.Fatal(err)
	}
	target := m.Now() + sim.Time(3*DefaultTickCycles)
	m.Run(func() bool { return m.Now() >= target })
	if got := m.CPUStats()[1].TicklessCycles; got < ticklessBefore {
		t.Fatalf("tickless accounting went backwards across offline: %d -> %d",
			ticklessBefore, got)
	}
	if err := m.OnlineCPU(1); err != nil {
		t.Fatal(err)
	}
	if c.tickEv.Pending() {
		t.Fatal("tick chain armed at online with the only task running elsewhere")
	}
	if !c.tickParked || c.tickNext == 0 {
		t.Fatalf("online chain parked=%v anchor=%d, want a healthy park", c.tickParked, c.tickNext)
	}
	// New work wakes the machine; the returning CPU must be usable.
	side := m.Spawn("side", nil, computeLoop(10, 100_000))
	m.Run(func() bool { return side.Exited() })
	if !side.Exited() {
		t.Fatal("work spawned after the online never ran")
	}
	m.Run(func() bool { return hog.Exited() })
}

// TestOnlineIntoPendingWorkRearmsOnce: bringing a CPU back while tasks
// are queued kicks it (one IPI), and the resulting dispatch re-arms the
// parked chain exactly once — OnlineCPU itself must not also arm it, or
// the engine would panic scheduling an already-queued event.
func TestOnlineIntoPendingWorkRearmsOnce(t *testing.T) {
	m := newMachine(t, 2, elscFactory)
	var hogs []*Proc
	for i := 0; i < 4; i++ {
		hogs = append(hogs, m.Spawn("hog", nil, computeLoop(100, 100_000)))
	}
	if err := m.OfflineCPU(1); err != nil {
		t.Fatal(err)
	}
	target := m.Now() + sim.Time(3*DefaultTickCycles)
	m.Run(func() bool { return m.Now() >= target })
	if err := m.OnlineCPU(1); err != nil {
		t.Fatal(err)
	}
	c := m.cpus[1]
	// The kick is an IPI in flight; the chain re-arms when it lands and
	// the CPU dispatches, not at the online instant itself.
	if c.tickEv.Pending() {
		t.Fatal("tick chain armed at online; must wait for the dispatch")
	}
	if !c.ipiEv.Pending() && !c.reschedSent {
		t.Fatal("online into pending work sent no kick")
	}
	m.Run(func() bool { return c.current != nil })
	if !c.tickEv.Pending() {
		t.Fatal("tick chain not re-armed by the post-online dispatch")
	}
	if c.tickParked {
		t.Fatal("chain marked parked while armed")
	}
	for _, h := range hogs {
		m.Run(func() bool { return h.Exited() })
	}
}

// TestPinnedTaskFallsBackWhenCPUDies: a task affined solely to an
// offlined CPU is widened to run anywhere (cpuset fallback) and re-pinned
// the moment its CPU returns. The restored mask binds at the next
// scheduling decision (as with SetAffinity), so the task is given several
// quanta of work past the online point — its final dispatches can only
// land on its own CPU again.
func TestPinnedTaskFallsBackWhenCPUDies(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 2, f)
		p := m.Spawn("pinned", nil, computeLoop(1200, 1_000_000)) // ~300 ticks of work
		m.SetAffinity(p, 1<<1)
		bg := m.Spawn("bg", nil, computeLoop(1600, 1_000_000))
		m.Run(func() bool { return p.Task.UserCycles > 0 })
		if err := m.OfflineCPU(1); err != nil {
			t.Fatal(err)
		}
		if p.Task.CPUsAllowed != 0 {
			t.Fatalf("fallback not applied: mask %#x", p.Task.CPUsAllowed)
		}
		if p.savedAffinity != 1<<1 {
			t.Fatalf("saved affinity %#x, want %#x", p.savedAffinity, uint64(1<<1))
		}
		// The task must make progress on the survivor while its CPU is
		// down. The window spans more than a full default quantum, since
		// the background hog may hold the survivor until its quantum
		// expires before the fallback task gets its first turn.
		before := p.Task.UserCycles
		var target sim.Time
		stop := func() bool { return m.Now() >= target }
		target = m.Now() + sim.Time(45*DefaultTickCycles)
		m.Run(stop)
		if p.Task.UserCycles <= before {
			t.Fatal("pinned task made no progress under cpuset fallback")
		}
		if err := m.OnlineCPU(1); err != nil {
			t.Fatal(err)
		}
		if p.Task.CPUsAllowed != 1<<1 || p.savedAffinity != 0 {
			t.Fatalf("re-pin failed: mask %#x saved %#x", p.Task.CPUsAllowed, p.savedAffinity)
		}
		m.Run(func() bool { return p.Exited() })
		if p.Task.Processor != 1 {
			t.Fatalf("re-pinned task finished on CPU %d, want 1", p.Task.Processor)
		}
		_ = bg
	})
}

// TestSetAffinityToOfflineCPUFallsBackImmediately: pinning a task to an
// already-offline CPU applies the fallback at SetAffinity time rather
// than stranding it.
func TestSetAffinityToOfflineCPUFallsBackImmediately(t *testing.T) {
	m := newMachine(t, 2, elscFactory)
	p := m.Spawn("p", nil, computeLoop(100, 100_000))
	if err := m.OfflineCPU(1); err != nil {
		t.Fatal(err)
	}
	m.SetAffinity(p, 1<<1)
	if p.Task.CPUsAllowed != 0 || p.savedAffinity != 1<<1 {
		t.Fatalf("mask %#x saved %#x after pinning to a dead CPU",
			p.Task.CPUsAllowed, p.savedAffinity)
	}
	m.Run(func() bool { return p.Exited() })
	if !p.Exited() {
		t.Fatal("task pinned to a dead CPU never ran")
	}
}

// preboundHog is a CPU hog whose Compute action is boxed once at
// construction: steady-state program steps then touch the allocator zero
// times, which is what the AllocsPerRun tests below need. Segments are
// short (2 ticks) so an event cancelled by a mid-segment preemption is
// pruned from the engine heap — and recycled — promptly.
func preboundHog(steps int, c uint64) Program {
	n := 0
	act := Action(Compute{Cycles: c})
	return ProgramFunc(func(p *Proc) Action {
		n++
		if n > steps {
			return Exit{}
		}
		return act
	})
}

// TestHotplugCycleAllocFree locks in the zero-allocation contract for the
// hotplug path itself: once the machine, engine heap, and drain buffer
// are warm, a full offline→online cycle (preempt, drain, re-file, re-arm)
// under the per-CPU-array policy with a real DrainCPU, watchdog armed,
// allocates nothing.
func TestHotplugCycleAllocFree(t *testing.T) {
	m := NewMachine(Config{
		CPUs: 4, SMP: true, Seed: 42, NewScheduler: o1Factory,
		MaxCycles: 60_000 * DefaultHz,
		Watchdog:  &WatchdogConfig{PeriodCycles: DefaultTickCycles},
	})
	for i := 0; i < 8; i++ {
		m.Spawn("hog", nil, preboundHog(1_000_000, 2*DefaultTickCycles))
	}
	var target sim.Time
	stop := func() bool { return m.Now() >= target }
	target = m.Now() + sim.Time(100*DefaultTickCycles)
	m.Run(stop)

	var offErr, onErr error
	cycle := func() {
		offErr = m.OfflineCPU(2)
		target = m.Now() + sim.Time(10*DefaultTickCycles)
		m.Run(stop)
		onErr = m.OnlineCPU(2)
		target = m.Now() + sim.Time(10*DefaultTickCycles)
		m.Run(stop)
	}
	cycle() // warm: drain buffer capacity, heap high-water mark
	allocs := testing.AllocsPerRun(5, cycle)
	if offErr != nil || onErr != nil {
		t.Fatalf("cycle errors: offline %v, online %v", offErr, onErr)
	}
	if allocs != 0 {
		t.Fatalf("offline/online cycle allocates %.1f objects, want 0", allocs)
	}
	if m.Alive() == 0 {
		t.Fatal("workload drained before the measurement ended; cycles ran on an idle machine")
	}
	if s := m.Stats(); s.WatchdogStarvations+s.WatchdogLostWakeups+s.WatchdogCPUStalls != 0 {
		t.Fatalf("watchdog flagged a healthy hotplug cycle: %+v", *s)
	}
}
