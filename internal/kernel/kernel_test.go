package kernel

import (
	"testing"

	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/sched/vanilla"
	"elsc/internal/sim"
	"elsc/internal/task"
)

func vanillaFactory(env *sched.Env) sched.Scheduler { return vanilla.New(env) }
func elscFactory(env *sched.Env) sched.Scheduler    { return elsc.New(env) }

// bothSchedulers runs the subtest against each policy.
func bothSchedulers(t *testing.T, fn func(t *testing.T, factory SchedulerFactory)) {
	t.Helper()
	t.Run("vanilla", func(t *testing.T) { fn(t, vanillaFactory) })
	t.Run("elsc", func(t *testing.T) { fn(t, elscFactory) })
}

func newMachine(t *testing.T, cpus int, factory SchedulerFactory) *Machine {
	t.Helper()
	return NewMachine(Config{
		CPUs:         cpus,
		SMP:          cpus > 1,
		Seed:         42,
		NewScheduler: factory,
		MaxCycles:    50 * DefaultHz, // generous safety horizon
	})
}

// computeLoop returns a program that computes n chunks of c cycles.
func computeLoop(n int, c uint64) Program {
	i := 0
	return ProgramFunc(func(p *Proc) Action {
		if i >= n {
			return Exit{}
		}
		i++
		return Compute{Cycles: c}
	})
}

func TestSingleTaskRunsToExit(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		p := m.Spawn("worker", nil, computeLoop(10, 1000))
		m.Run(func() bool { return p.Exited() })
		if !p.Exited() {
			t.Fatal("task did not exit")
		}
		if p.Task.UserCycles != 10000 {
			t.Fatalf("user cycles = %d, want 10000", p.Task.UserCycles)
		}
		if m.Alive() != 0 {
			t.Fatalf("alive = %d, want 0", m.Alive())
		}
		if m.Now() == 0 {
			t.Fatal("virtual time did not advance")
		}
	})
}

func TestAllTasksComplete(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 2, f)
		const n = 20
		for i := 0; i < n; i++ {
			m.Spawn("w", nil, computeLoop(5, 10000))
		}
		m.Run(func() bool { return m.Alive() == 0 })
		if m.Alive() != 0 {
			t.Fatalf("alive = %d, want 0", m.Alive())
		}
		for _, p := range m.Procs() {
			if !p.Exited() {
				t.Fatalf("%v never exited", p.Task)
			}
		}
	})
}

func TestQuantumExpiryForcesSwitch(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		// Two CPU hogs, each needing 60 ticks of CPU: quantum (20
		// ticks) must expire repeatedly.
		a := m.Spawn("a", nil, computeLoop(1, 60*DefaultTickCycles))
		b := m.Spawn("b", nil, computeLoop(1, 60*DefaultTickCycles))
		m.Run(func() bool { return a.Exited() && b.Exited() })
		if m.Stats().QuantumExpiry == 0 {
			t.Fatal("no quantum expiries recorded")
		}
		if m.Stats().Recalcs == 0 {
			t.Fatal("CPU hogs must trigger counter recalculation")
		}
		if a.Task.InvSwitches == 0 && b.Task.InvSwitches == 0 {
			t.Fatal("no involuntary switches")
		}
	})
}

func TestFairnessBetweenEqualHogs(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		total := uint64(100 * DefaultTickCycles)
		a := m.Spawn("a", nil, computeLoop(1, total))
		b := m.Spawn("b", nil, computeLoop(1, total))
		// Run until the first finishes; at that point the other should
		// have had roughly half the CPU.
		m.Run(func() bool { return a.Exited() || b.Exited() })
		ua, ub := a.Task.UserCycles, b.Task.UserCycles
		lo, hi := ua, ub
		if lo > hi {
			lo, hi = hi, lo
		}
		if float64(lo) < 0.7*float64(hi) {
			t.Fatalf("unfair split: %d vs %d", ua, ub)
		}
	})
}

func TestPriorityGetsProportionallyMore(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		hi := m.Spawn("hi", nil, computeLoop(1, 400*DefaultTickCycles))
		lo := m.Spawn("lo", nil, computeLoop(1, 400*DefaultTickCycles))
		m.SetPriority(hi, 40)
		m.SetPriority(lo, 10)
		m.Run(func() bool { return hi.Exited() || lo.Exited() })
		if hi.Task.UserCycles <= lo.Task.UserCycles {
			t.Fatalf("priority 40 task got %d cycles, priority 10 got %d",
				hi.Task.UserCycles, lo.Task.UserCycles)
		}
	})
}

func TestSleepDuration(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		var wokeAt sim.Time
		step := 0
		p := m.Spawn("sleeper", nil, ProgramFunc(func(p *Proc) Action {
			step++
			switch step {
			case 1:
				return Sleep{Cycles: 1_000_000}
			case 2:
				wokeAt = p.M.Now()
				return Exit{}
			}
			return nil
		}))
		m.Run(func() bool { return p.Exited() })
		if wokeAt < 1_000_000 {
			t.Fatalf("woke at %d, want >= 1000000", wokeAt)
		}
		// Allow syscall/dispatch overhead but not an extra quantum.
		if wokeAt > 1_500_000 {
			t.Fatalf("woke far too late: %d", wokeAt)
		}
	})
}

func TestBlockingSyscallAndWake(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		wq := NewWaitQueue("box")
		full := false // one-slot mailbox

		consumed := 0
		consumer := m.Spawn("consumer", nil, ProgramFunc(func(p *Proc) Action {
			if consumed >= 3 {
				return Exit{}
			}
			return Syscall{Name: "recv", Cost: 500, Fn: func(p *Proc, now sim.Time) Outcome {
				if !full {
					return BlockOn(wq)
				}
				full = false
				consumed++
				p.M.WakeAll(wq) // release a producer blocked on a full box
				return Done()
			}}
		}))
		sent := 0
		producer := m.Spawn("producer", nil, ProgramFunc(func(p *Proc) Action {
			if sent >= 3 {
				return Exit{}
			}
			return Syscall{Name: "send", Cost: 500, Fn: func(p *Proc, now sim.Time) Outcome {
				if full {
					return BlockOn(wq)
				}
				full = true
				sent++
				p.M.WakeAll(wq)
				return Done()
			}}
		}))
		m.Run(func() bool { return consumer.Exited() && producer.Exited() })
		if consumed != 3 || sent != 3 {
			t.Fatalf("consumed=%d sent=%d, want 3/3", consumed, sent)
		}
		if m.Stats().WakeCalls == 0 {
			t.Fatal("no wake calls recorded")
		}
	})
}

func TestWakePreemptsWeakerTask(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		// A CPU hog with low priority, and a sleeper with high priority
		// that wakes mid-run: the wake must preempt the hog.
		hog := m.Spawn("hog", nil, computeLoop(1, 50*DefaultTickCycles))
		m.SetPriority(hog, 10)
		var ranAt sim.Time
		step := 0
		sleeper := m.Spawn("sleeper", nil, ProgramFunc(func(p *Proc) Action {
			step++
			switch step {
			case 1:
				return Sleep{Cycles: 3 * DefaultTickCycles}
			case 2:
				ranAt = p.M.Now()
				return Exit{}
			}
			return nil
		}))
		m.SetPriority(sleeper, 40)
		m.Run(func() bool { return sleeper.Exited() })
		// The sleeper must get the CPU shortly after its wake, well
		// before the hog's 50-tick run completes.
		if ranAt > sim.Time(6*DefaultTickCycles) {
			t.Fatalf("sleeper ran at %d, preemption failed", ranAt)
		}
		if m.Stats().Preemptions == 0 {
			t.Fatal("no preemptions recorded")
		}
	})
}

func TestYieldAlternation(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		mk := func(n *int) Program {
			return ProgramFunc(func(p *Proc) Action {
				if *n >= 50 {
					return Exit{}
				}
				*n++
				return Yield{}
			})
		}
		var na, nb int
		a := m.Spawn("a", nil, mk(&na))
		b := m.Spawn("b", nil, mk(&nb))
		m.Run(func() bool { return a.Exited() && b.Exited() })
		if na != 50 || nb != 50 {
			t.Fatalf("yields: a=%d b=%d, want 50/50", na, nb)
		}
		if m.Stats().YieldCalls != 100 {
			t.Fatalf("yield calls = %d, want 100", m.Stats().YieldCalls)
		}
	})
}

func TestVanillaYieldStormRecalculates(t *testing.T) {
	// The Figure 2 mechanism, baseline side: a lone yielding task drives
	// the stock scheduler into the recalculation loop on every yield.
	m := newMachine(t, 1, vanillaFactory)
	n := 0
	p := m.Spawn("yielder", nil, ProgramFunc(func(p *Proc) Action {
		if n >= 100 {
			return Exit{}
		}
		n++
		return Yield{}
	}))
	m.Run(func() bool { return p.Exited() })
	if m.Stats().Recalcs < 90 {
		t.Fatalf("recalcs = %d, want ~100 (one per lonely yield)", m.Stats().Recalcs)
	}
}

func TestELSCYieldStormAvoidsRecalc(t *testing.T) {
	// The Figure 2 mechanism, ELSC side: the same workload triggers
	// (almost) no recalculation.
	m := newMachine(t, 1, elscFactory)
	n := 0
	p := m.Spawn("yielder", nil, ProgramFunc(func(p *Proc) Action {
		if n >= 100 {
			return Exit{}
		}
		n++
		return Yield{}
	}))
	m.Run(func() bool { return p.Exited() })
	if m.Stats().Recalcs > 2 {
		t.Fatalf("recalcs = %d, want ~0 (ELSC re-runs the yielder)", m.Stats().Recalcs)
	}
}

func TestSMPUsesAllCPUs(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 4, f)
		for i := 0; i < 8; i++ {
			m.Spawn("w", nil, computeLoop(1, 20*DefaultTickCycles))
		}
		m.Run(func() bool { return m.Alive() == 0 })
		elapsed := uint64(m.Now())
		totalWork := uint64(8 * 20 * DefaultTickCycles)
		// With 4 CPUs, elapsed must be far below serial time.
		if elapsed > totalWork/2 {
			t.Fatalf("elapsed %d vs serial %d: no parallelism", elapsed, totalWork)
		}
	})
}

func TestMigrationsHappenOnSMP(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 2, f)
		// Interactive tasks with *irregular* burst/sleep lengths: the
		// resulting imbalance forces schedule() to sometimes pull a
		// task that last ran on the other CPU.
		for i := 0; i < 6; i++ {
			n := 0
			rng := m.RNG().Fork()
			m.Spawn("w", nil, ProgramFunc(func(p *Proc) Action {
				if n >= 40 {
					return Exit{}
				}
				n++
				if n%2 == 0 {
					return Sleep{Cycles: rng.Range(5_000, 80_000)}
				}
				return Compute{Cycles: rng.Range(20_000, 150_000)}
			}))
		}
		m.Run(func() bool { return m.Alive() == 0 })
		if m.Stats().Migrations == 0 {
			t.Fatal("expected some cross-CPU migrations")
		}
	})
}

func TestDeterminism(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		run := func() (sim.Time, uint64, uint64) {
			m := newMachine(t, 2, f)
			for i := 0; i < 10; i++ {
				m.Spawn("w", nil, computeLoop(20, 100_000))
			}
			m.Run(func() bool { return m.Alive() == 0 })
			return m.Now(), m.Stats().SchedCalls, m.Stats().CtxSwitches
		}
		t1, s1, c1 := run()
		t2, s2, c2 := run()
		if t1 != t2 || s1 != s2 || c1 != c2 {
			t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", t1, s1, c1, t2, s2, c2)
		}
	})
}

func TestIdleAccounting(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 2, f)
		// One task on two CPUs: one CPU must accumulate idle time.
		p := m.Spawn("solo", nil, computeLoop(1, 5*DefaultTickCycles))
		m.Run(func() bool { return p.Exited() })
		if m.Stats().IdleCycles == 0 {
			t.Fatal("no idle cycles on a 2-CPU machine with 1 task")
		}
	})
}

func TestRealTimeFIFORunsUntilBlock(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		reg := m.Spawn("reg", nil, computeLoop(1, 30*DefaultTickCycles))
		rt := m.SpawnRT("rt", task.FIFO, 50, computeLoop(1, 30*DefaultTickCycles))
		m.Run(func() bool { return rt.Exited() })
		// The FIFO task must finish its entire burst before the regular
		// task gets any significant CPU.
		if reg.Task.UserCycles > 2*DefaultTickCycles {
			t.Fatalf("regular task got %d cycles while RT was runnable", reg.Task.UserCycles)
		}
	})
}

func TestRealTimeRRRoundRobin(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		a := m.SpawnRT("rr-a", task.RR, 50, computeLoop(1, 60*DefaultTickCycles))
		b := m.SpawnRT("rr-b", task.RR, 50, computeLoop(1, 60*DefaultTickCycles))
		m.Run(func() bool { return a.Exited() || b.Exited() })
		// Equal-priority RR tasks must interleave: when one finishes,
		// the other should have comparable CPU time.
		ua, ub := a.Task.UserCycles, b.Task.UserCycles
		lo, hi := ua, ub
		if lo > hi {
			lo, hi = hi, lo
		}
		if float64(lo) < 0.6*float64(hi) {
			t.Fatalf("RR tasks did not round-robin: %d vs %d", ua, ub)
		}
	})
}

func TestStatsRegistryRenders(t *testing.T) {
	m := newMachine(t, 1, elscFactory)
	p := m.Spawn("w", nil, computeLoop(3, 1000))
	m.Run(func() bool { return p.Exited() })
	out := m.Stats().Registry().Render()
	for _, want := range []string{"sched_calls", "ctx_switches", "cycles_per_schedule"} {
		if !contains(out, want) {
			t.Fatalf("registry output missing %q:\n%s", want, out)
		}
	}
	if m.Stats().Summary() == "" {
		t.Fatal("empty summary")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestSpawnMidRun(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		var child *Proc
		step := 0
		parent := m.Spawn("parent", nil, ProgramFunc(func(p *Proc) Action {
			step++
			switch step {
			case 1:
				return Compute{Cycles: 10000}
			case 2:
				child = m.Spawn("child", nil, computeLoop(2, 5000))
				return Compute{Cycles: 10000}
			}
			return nil
		}))
		m.Run(func() bool {
			return parent.Exited() && child != nil && child.Exited()
		})
		if child == nil || !child.Exited() {
			t.Fatal("mid-run spawned child did not complete")
		}
	})
}

func TestLockContentionAccumulates(t *testing.T) {
	// With 4 CPUs hammering schedule(), the run-queue lock must show
	// contention.
	m := newMachine(t, 4, vanillaFactory)
	for i := 0; i < 40; i++ {
		n := 0
		m.Spawn("switcher", nil, ProgramFunc(func(p *Proc) Action {
			if n >= 30 {
				return Exit{}
			}
			n++
			return Sleep{Cycles: 20_000}
		}))
	}
	m.Run(func() bool { return m.Alive() == 0 })
	if m.Stats().LockContended == 0 {
		t.Fatal("no lock contention on a busy 4-CPU machine")
	}
	if m.Stats().SpinCycles == 0 {
		t.Fatal("no spin cycles recorded")
	}
}

func TestMaxCyclesHorizonStopsRunaway(t *testing.T) {
	m := NewMachine(Config{
		CPUs:         1,
		Seed:         1,
		NewScheduler: elscFactory,
		MaxCycles:    DefaultTickCycles * 3,
	})
	m.Spawn("forever", nil, ProgramFunc(func(p *Proc) Action {
		return Compute{Cycles: 1000}
	}))
	m.Run(nil) // must terminate despite the immortal task
	if m.Now() > sim.Time(DefaultTickCycles*3) {
		t.Fatalf("ran past horizon: %d", m.Now())
	}
}

func TestCachePenaltyChargedOnMigration(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 2, f)
		for i := 0; i < 6; i++ {
			m.Spawn("w", nil, computeLoop(30, DefaultTickCycles/3))
		}
		m.Run(func() bool { return m.Alive() == 0 })
		if m.Stats().CacheCycles == 0 {
			t.Fatal("no cache-refill penalties charged")
		}
	})
}

func TestSchedulerShareGrowsWithRunnableCount(t *testing.T) {
	// The heart of the paper's problem statement: with many runnable
	// tasks, the stock scheduler burns a growing share of kernel time.
	share := func(n int) float64 {
		m := newMachine(t, 1, vanillaFactory)
		for i := 0; i < n; i++ {
			k := 0
			m.Spawn("switcher", nil, ProgramFunc(func(p *Proc) Action {
				if k >= 20 {
					return Exit{}
				}
				k++
				return Sleep{Cycles: 50_000}
			}))
		}
		m.Run(func() bool { return m.Alive() == 0 })
		return m.Stats().SchedulerShareOfKernel()
	}
	small, large := share(4), share(100)
	if large <= small {
		t.Fatalf("scheduler share did not grow: %f at 4 tasks, %f at 100", small, large)
	}
}

// numaMachine builds a 2-CPU machine split into two single-CPU cache
// domains, the smallest topology where migration crosses a domain.
func numaMachine(t *testing.T, f SchedulerFactory) *Machine {
	t.Helper()
	return NewMachine(Config{
		CPUs:         2,
		SMP:          true,
		Topology:     sched.UniformTopology(2, 2),
		Seed:         42,
		NewScheduler: f,
		MaxCycles:    200 * DefaultHz,
	})
}

func TestTopologyCPUCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched topology did not panic")
		}
	}()
	NewMachine(Config{
		CPUs:         4,
		SMP:          true,
		Topology:     sched.UniformTopology(2, 2),
		NewScheduler: vanillaFactory,
	})
}

// roamProgram alternates compute chunks with short sleeps, so an
// affinity change can take effect at the next wake-up. done reports how
// many compute chunks have finished.
func roamProgram(chunks int, chunk uint64, done *int) Program {
	step := 0
	return ProgramFunc(func(*Proc) Action {
		step++
		if step > 2*chunks {
			return Exit{}
		}
		if step%2 == 1 {
			return Compute{Cycles: chunk}
		}
		*done++
		return Sleep{Cycles: 10_000}
	})
}

// TestRemoteExecutionStretch pins a task's first touch to domain 0, then
// exiles it to domain 1: with RemoteAccessPct at 200, execution there
// runs at one third speed, so ~2 extra wall cycles accrue per work cycle
// until the rehome horizon.
func TestRemoteExecutionStretch(t *testing.T) {
	m := numaMachine(t, vanillaFactory)
	const chunk = 1_000_000
	done := 0
	p := m.Spawn("roamer", nil, roamProgram(15, chunk, &done))
	m.SetAffinity(p, 1<<0) // first touch on CPU 0 / domain 0
	m.Run(func() bool { return done >= 5 })
	if got := m.Stats().RemoteCycles; got != 0 {
		t.Fatalf("remote cycles = %d while running in the home domain, want 0", got)
	}
	m.SetAffinity(p, 1<<1) // exile to domain 1
	m.Run(func() bool { return p.Exited() })
	remote := m.Stats().RemoteCycles
	// ~10M cycles of work ran in exile (below the 20M rehome horizon),
	// each stretched 3x: expect about 20M extra wall cycles.
	if remote < 15_000_000 || remote > 25_000_000 {
		t.Fatalf("remote cycles = %d, want ~20M for ~10M exiled work at 200%%", remote)
	}
	if m.Stats().CrossDomainMigrations == 0 {
		t.Fatal("the forced exile was not counted as a cross-domain migration")
	}
}

// TestRehomeBoundsRemotePenalty runs far past the rehome horizon in the
// foreign domain: once the pages migrate, the stretch must stop, so the
// remote total stays pinned near 2 x RehomeCycles no matter how much
// longer the task runs there.
func TestRehomeBoundsRemotePenalty(t *testing.T) {
	m := numaMachine(t, vanillaFactory)
	const chunk = 1_000_000
	done := 0
	p := m.Spawn("settler", nil, roamProgram(65, chunk, &done))
	m.SetAffinity(p, 1<<0)
	m.Run(func() bool { return done >= 5 })
	m.SetAffinity(p, 1<<1)
	m.Run(func() bool { return p.Exited() })
	remote := m.Stats().RemoteCycles
	// 60M of exiled work, but only the first ~20M (RehomeCycles) pays:
	// ~40M extra wall cycles, then the task is local again.
	if remote < 35_000_000 || remote > 46_000_000 {
		t.Fatalf("remote cycles = %d, want ~40M bounded by the rehome horizon", remote)
	}
}

// TestFlatTopologyNeverRemote is the guard for every pre-topology
// experiment: on a flat machine no dispatch is cross-domain and no cycle
// is remote, whatever the scheduler does.
func TestFlatTopologyNeverRemote(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 2, f)
		for i := 0; i < 6; i++ {
			m.Spawn("w", nil, computeLoop(30, DefaultTickCycles/3))
		}
		m.Run(func() bool { return m.Alive() == 0 })
		st := m.Stats()
		if st.CrossDomainMigrations != 0 || st.RemoteCycles != 0 {
			t.Fatalf("flat machine recorded %d cross-domain migrations, %d remote cycles",
				st.CrossDomainMigrations, st.RemoteCycles)
		}
	})
}

// TestCrossDomainRefillCharged compares the same forced migration on a
// flat and a domained 2-CPU machine: crossing the domain must cost more
// cache-refill cycles than the flat move.
func TestCrossDomainRefillCharged(t *testing.T) {
	penalty := func(topo *sched.Topology) uint64 {
		m := NewMachine(Config{
			CPUs: 2, SMP: true, Topology: topo, Seed: 42,
			NewScheduler: vanillaFactory,
			MaxCycles:    200 * DefaultHz,
		})
		done := 0
		p := m.Spawn("mover", nil, roamProgram(10, 200_000, &done))
		m.SetAffinity(p, 1<<0)
		m.Run(func() bool { return done >= 3 })
		m.SetAffinity(p, 1<<1)
		m.Run(func() bool { return p.Exited() })
		return m.Stats().CacheCycles
	}
	flat := penalty(nil)
	domained := penalty(sched.UniformTopology(2, 2))
	if domained <= flat {
		t.Fatalf("cross-domain refill (%d) not above intra-domain (%d)", domained, flat)
	}
}
