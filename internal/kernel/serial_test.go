package kernel

import (
	"testing"

	"elsc/internal/sim"
)

func TestSerialResourceUncontended(t *testing.T) {
	r := &SerialResource{Name: "x"}
	if wait := r.Reserve(100, 50); wait != 0 {
		t.Fatalf("first reservation waited %d", wait)
	}
	if r.Contended() != 0 {
		t.Fatal("uncontended reservation counted as contended")
	}
}

func TestSerialResourceQueuesReservations(t *testing.T) {
	r := &SerialResource{Name: "x"}
	r.Reserve(100, 50) // busy until 150
	if wait := r.Reserve(120, 50); wait != 30 {
		t.Fatalf("second reservation waited %d, want 30", wait)
	}
	// Third arrives at 130; busy until 200 now.
	if wait := r.Reserve(130, 50); wait != 70 {
		t.Fatalf("third reservation waited %d, want 70", wait)
	}
	if r.Reservations() != 3 || r.Contended() != 2 {
		t.Fatalf("reservations=%d contended=%d", r.Reservations(), r.Contended())
	}
	if r.SpinCycles() != 100 {
		t.Fatalf("spin cycles = %d, want 100", r.SpinCycles())
	}
}

func TestSerialResourceFreePeriodsDontAccumulate(t *testing.T) {
	r := &SerialResource{Name: "x"}
	r.Reserve(0, 10) // busy until 10
	// Long idle gap; a reservation at 1000 must not wait.
	if wait := r.Reserve(1000, 10); wait != 0 {
		t.Fatalf("waited %d after idle gap", wait)
	}
}

func TestSpinlockModel(t *testing.T) {
	var l spinlock
	start, spin := l.acquire(100)
	if start != 100 || spin != 0 {
		t.Fatalf("uncontended acquire: start=%d spin=%d", start, spin)
	}
	l.release(150)
	start, spin = l.acquire(120)
	if start != 150 || spin != 30 {
		t.Fatalf("contended acquire: start=%d spin=%d", start, spin)
	}
}

func TestSpinlockBumpPushesBusy(t *testing.T) {
	var l spinlock
	l.bump(100, 40) // busy 100..140
	if _, spin := l.acquire(110); spin != 30 {
		t.Fatal("bump did not delay the next acquirer")
	}
}

func TestSpinlockReleaseNeverRewinds(t *testing.T) {
	var l spinlock
	l.release(200)
	l.release(150) // must not rewind
	if _, spin := l.acquire(160); spin != 40 {
		t.Fatalf("spin = %d, want 40", spin)
	}
}

func TestTraceHookSeesDecisions(t *testing.T) {
	var events []TraceEvent
	m := NewMachine(Config{
		CPUs:         1,
		Seed:         1,
		NewScheduler: vanillaFactory,
		MaxCycles:    10 * DefaultHz,
		Trace:        func(ev TraceEvent) { events = append(events, ev) },
	})
	p := m.Spawn("w", nil, computeLoop(2, 1000))
	m.Run(func() bool { return p.Exited() })
	if len(events) == 0 {
		t.Fatal("trace hook never fired")
	}
	first := events[0]
	if !first.Prev.IsIdle {
		t.Fatal("first decision should come from idle")
	}
	if first.Next == nil || first.Next.Name != "w" {
		t.Fatalf("first decision chose %v", first.Next)
	}
}

func TestWakeExitedProcIsNoop(t *testing.T) {
	m := newMachine(t, 1, elscFactory)
	wq := NewWaitQueue("wq")
	p := m.Spawn("w", nil, computeLoop(1, 100))
	m.Run(func() bool { return p.Exited() })
	calls := m.Stats().WakeCalls
	wq.enqueue(p) // contrived: a stale wait entry
	m.WakeOne(wq)
	if m.Stats().WakeCalls != calls {
		t.Fatal("waking an exited proc should not count as a wake")
	}
}

func TestEarlyWakeCancelsSleepTimer(t *testing.T) {
	m := newMachine(t, 1, elscFactory)
	wq := NewWaitQueue("wq")
	released := false
	phase := 0
	var wokeAt sim.Time
	sleeper := m.Spawn("sleeper", nil, ProgramFunc(func(p *Proc) Action {
		phase++
		switch phase {
		case 1:
			return Syscall{Name: "wait", Cost: 100, Fn: func(p *Proc, now sim.Time) Outcome {
				if !released {
					return BlockOn(wq)
				}
				return Done()
			}}
		default:
			wokeAt = p.M.Now()
			return Exit{}
		}
	}))
	woken := false
	m.Spawn("waker", nil, ProgramFunc(func(p *Proc) Action {
		if woken {
			return Exit{}
		}
		woken = true
		return Syscall{Name: "wake", Cost: 100, Fn: func(p *Proc, now sim.Time) Outcome {
			released = true
			p.M.WakeAll(wq)
			return Done()
		}}
	}))
	m.Run(func() bool { return sleeper.Exited() })
	if wokeAt == 0 {
		t.Fatal("sleeper never woke")
	}
}

func TestStatsSummaryNonEmpty(t *testing.T) {
	m := newMachine(t, 2, vanillaFactory)
	p := m.Spawn("w", nil, computeLoop(2, 10_000))
	m.Run(func() bool { return p.Exited() })
	if len(m.Stats().Summary()) < 40 {
		t.Fatal("summary too short")
	}
	if m.Stats().KernelCycles() == 0 {
		t.Fatal("no kernel cycles accounted")
	}
}

func TestWakeDuringTransitionToIdleNotLost(t *testing.T) {
	// Regression: a wake that lands while the only eligible CPU is mid
	// context-switch toward idle must still get the task dispatched.
	// Before the fix, rescheduleIdle found no idle CPU (transitioning)
	// and no preemption victim, the dispatch completed to idle without
	// needResched, and the task sat runnable forever.
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		q := NewWaitQueue("box")
		ready := false
		var waiter *Proc
		waiter = m.Spawn("waiter", nil, ProgramFunc(func(p *Proc) Action {
			if ready {
				return Exit{}
			}
			return Syscall{Name: "wait", Cost: 100, Fn: func(p *Proc, now sim.Time) Outcome {
				if !ready {
					return BlockOn(q)
				}
				return Done()
			}}
		}))
		// The waker wakes the waiter from an engine event timed to land
		// inside the waker's own exit transition window; sweep a range
		// of offsets to cover the window deterministically.
		released := false
		m.Spawn("waker", nil, ProgramFunc(func(p *Proc) Action {
			if released {
				return Exit{}
			}
			released = true
			return Compute{Cycles: 50_000}
		}))
		for off := uint64(49_000); off < 56_000; off += 250 {
			off := off
			m.Engine().At(sim.Time(off), "wake", func(sim.Time) {
				if !ready {
					ready = true
					m.WakeAll(q)
				}
			})
		}
		m.Run(func() bool { return waiter.Exited() })
		if !waiter.Exited() {
			t.Fatal("woken task was never dispatched (lost wakeup)")
		}
	})
}
