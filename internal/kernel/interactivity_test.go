package kernel

import (
	"testing"

	"elsc/internal/sched"
	"elsc/internal/sched/o1"
)

func o1Factory(env *sched.Env) sched.Scheduler { return o1.New(env) }

// TestSleepAvgCreditAndDrain: the kernel's accounting hooks drive the
// estimator — blocked time credits sleep_avg (clamped at the cost
// model's ceiling), executed cycles drain it.
func TestSleepAvgCreditAndDrain(t *testing.T) {
	m := NewMachine(Config{CPUs: 1, Seed: 1, NewScheduler: o1Factory,
		MaxCycles: 400_000_000})
	max := m.env.Cost.MaxSleepAvg
	seed := max / 2 // fork-time inheritance: the neutral midpoint
	sleeperDone := false
	sleeper := m.Spawn("sleeper", nil, ProgramFunc(func(p *Proc) Action {
		if sleeperDone {
			return Exit{}
		}
		sleeperDone = true
		return Sleep{Cycles: 2 * max} // sleeps far past the ceiling
	}))
	m.Run(func() bool { return m.Alive() == 0 })
	if got := sleeper.Task.SleepAvg(); got > max {
		t.Fatalf("sleep_avg %d exceeds the ceiling %d", got, max)
	} else if got < max*9/10 {
		t.Fatalf("sleep_avg %d after a long sleep, want near the ceiling %d", got, max)
	}

	m2 := NewMachine(Config{CPUs: 1, Seed: 1, NewScheduler: o1Factory,
		MaxCycles: 400_000_000})
	steps := 0
	hog := m2.Spawn("hog", nil, ProgramFunc(func(p *Proc) Action {
		steps++
		if steps > 3 {
			return Exit{}
		}
		return Compute{Cycles: seed} // each burst drains a whole seed's worth
	}))
	m2.Run(func() bool { return m2.Alive() == 0 })
	if got := hog.Task.SleepAvg(); got != 0 {
		t.Fatalf("hog sleep_avg = %d after draining runs, want 0", got)
	}
}

// TestWakeIdleTarget pins the SD_WAKE_IDLE placement preference order:
// no placement outside a syscall context, none when the task's own last
// CPU is idle, the task's home domain before the waker's, and -1 when
// every candidate is busy.
func TestWakeIdleTarget(t *testing.T) {
	m := NewMachine(Config{CPUs: 4, SMP: true, Topology: sched.UniformTopology(4, 2),
		Seed: 1, NewScheduler: o1Factory})
	p := m.Spawn("t", nil, ProgramFunc(func(*Proc) Action { return Exit{} }))
	tk := p.Task
	tk.EverRan = true
	tk.Processor = 1
	busy := &Proc{}

	m.wakerCPU = -1 // interrupt context: no waker, no placement
	if got := m.wakeIdleTarget(tk); got != -1 {
		t.Fatalf("no-waker target = %d, want -1", got)
	}
	m.wakerCPU = 2
	if got := m.wakeIdleTarget(tk); got != -1 {
		t.Fatalf("idle home CPU: target = %d, want -1 (the affinity fast path lands it)", got)
	}
	m.cpus[1].current = busy // home CPU busy: prefer an idle home-domain CPU
	if got := m.wakeIdleTarget(tk); got != 0 {
		t.Fatalf("home-domain target = %d, want 0", got)
	}
	m.cpus[0].current = busy
	m.cpus[2].current = busy // home domain full, waker executing: its idle neighbor
	if got := m.wakeIdleTarget(tk); got != 3 {
		t.Fatalf("waker-domain target = %d, want 3", got)
	}
	m.cpus[3].current = busy // machine full: no placement
	if got := m.wakeIdleTarget(tk); got != -1 {
		t.Fatalf("saturated target = %d, want -1", got)
	}
	tk.CPUsAllowed = 1 << 1 // pinned to its busy home: nothing to place
	m.cpus[0].current = nil
	if got := m.wakeIdleTarget(tk); got != -1 {
		t.Fatalf("affinity-pinned target = %d, want -1", got)
	}
}
