package kernel

import (
	"testing"

	"elsc/internal/sim"
)

// ticklessMachine builds a 2P machine with an explicit tickless mode.
func ticklessMachine(t *testing.T, cpus int, off bool) *Machine {
	t.Helper()
	return NewMachine(Config{
		CPUs:         cpus,
		SMP:          cpus > 1,
		Seed:         42,
		NewScheduler: elscFactory,
		TicklessOff:  off,
		MaxCycles:    50 * DefaultHz,
	})
}

// TestIdleTickParksChain: a tick that finds its CPU fully idle parks the
// chain instead of re-arming, records the grid anchor one period out,
// and starts the tickless residency clock.
func TestIdleTickParksChain(t *testing.T) {
	m := ticklessMachine(t, 2, false)
	m.Spawn("hog", nil, computeLoop(2000, 100_000))
	c := m.cpus[1]
	m.Run(func() bool { return c.tickParked })
	if c.tickEv.Pending() {
		t.Fatal("parked chain still has a pending tick")
	}
	parkAt := m.Now()
	if c.tickNext != parkAt+sim.Time(DefaultTickCycles) {
		t.Fatalf("grid anchor = %d, want park+period = %d",
			c.tickNext, parkAt+sim.Time(DefaultTickCycles))
	}
	// Residency accrues while parked, visible through CPUStats.
	target := m.Now() + sim.Time(5*DefaultTickCycles)
	m.Run(func() bool { return m.Now() >= target })
	if !c.tickParked {
		t.Fatal("idle CPU un-parked with no work arriving")
	}
	if got := m.CPUStats()[1].TicklessCycles; got < uint64(5*DefaultTickCycles) {
		t.Fatalf("tickless residency = %d, want >= 5 periods (%d)",
			got, 5*DefaultTickCycles)
	}
	if m.Stats().TicksSkipped == 0 {
		// The chain has been parked 5+ periods and at least one skipped
		// instant is counted whenever work later re-arms it; at this
		// point nothing re-armed, so the counter may legitimately still
		// be zero — but the park itself must not have counted skips.
		t.Log("no skips counted while parked (counted at re-arm)")
	}
}

// TestEnsureTickResumesGridAndCountsSkips: waking a long-parked CPU
// re-arms the chain at the first grid instant strictly after the wake
// and books every elided instant as skipped — quantum accounting resumes
// on the boot-stagger grid, not on a fresh one.
func TestEnsureTickResumesGridAndCountsSkips(t *testing.T) {
	m := ticklessMachine(t, 2, false)
	hog := m.Spawn("hog", nil, computeLoop(2000, 100_000))
	c := m.cpus[1]
	m.Run(func() bool { return c.tickParked })
	anchor := c.tickNext
	skipsBefore := m.Stats().TicksSkipped

	// Sleep far past several grid instants, then wake work onto cpu1.
	target := m.Now() + sim.Time(7*DefaultTickCycles) + 12_345
	m.Run(func() bool { return m.Now() >= target })
	side := m.Spawn("side", nil, computeLoop(50, 100_000))
	m.Run(func() bool { return c.current != nil })
	if !c.tickEv.Pending() || c.tickParked {
		t.Fatal("dispatch did not re-arm the parked chain")
	}
	// The resumed tickNext must sit on the original anchor's grid,
	// strictly in the future at re-arm time.
	if (c.tickNext-anchor)%sim.Time(DefaultTickCycles) != 0 {
		t.Fatalf("re-armed tick %d is off the original grid (anchor %d, period %d)",
			c.tickNext, anchor, DefaultTickCycles)
	}
	skipped := m.Stats().TicksSkipped - skipsBefore
	if skipped < 7 {
		t.Fatalf("skipped = %d ticks across a 7+ period park, want >= 7", skipped)
	}
	m.Run(func() bool { return side.Exited() && hog.Exited() })
}

// TestTicklessOffKeepsAlwaysOnChain: the ablation mode never parks — the
// idle CPU's chain stays armed and no skips are ever counted.
func TestTicklessOffKeepsAlwaysOnChain(t *testing.T) {
	m := ticklessMachine(t, 2, true)
	hog := m.Spawn("hog", nil, computeLoop(400, 100_000))
	target := sim.Time(10 * DefaultTickCycles)
	m.Run(func() bool { return m.Now() >= target })
	c := m.cpus[1]
	if c.tickParked || !c.tickEv.Pending() {
		t.Fatalf("tickless-off chain parked=%v pending=%v, want always-on",
			c.tickParked, c.tickEv.Pending())
	}
	if s := m.Stats(); s.TicksSkipped != 0 {
		t.Fatalf("ticks_skipped = %d with tickless off, want 0", s.TicksSkipped)
	}
	m.Run(func() bool { return hog.Exited() })
}

// TestTicklessQuantumExact: a hog sharing its CPU with another hog sees
// identical preemption instants whether or not the *other* CPU's idle
// chain parks — tickless idle must not perturb quantum expiry anywhere.
// Both modes run the same seed; the observable task-side numbers and the
// virtual finish time must match exactly.
func TestTicklessQuantumExact(t *testing.T) {
	run := func(off bool) (fin sim.Time, user, inv, vol uint64) {
		m := ticklessMachine(t, 4, off)
		a := m.Spawn("a", nil, computeLoop(300, 100_000))
		b := m.Spawn("b", nil, computeLoop(300, 100_000))
		m.Run(func() bool { return a.Exited() && b.Exited() })
		return m.Now(), a.Task.UserCycles, uint64(a.Task.InvSwitches), uint64(a.Task.VolSwitches)
	}
	onFin, onUser, onInv, onVol := run(false)
	offFin, offUser, offInv, offVol := run(true)
	if onFin != offFin || onUser != offUser || onInv != offInv || onVol != offVol {
		t.Fatalf("tickless on/off diverged: finish %d/%d user %d/%d inv %d/%d vol %d/%d",
			onFin, offFin, onUser, offUser, onInv, offInv, onVol, offVol)
	}
	// And the on-mode run must actually have parked something: a 4P
	// machine with 2 hogs has idle CPUs for the whole run.
	m := ticklessMachine(t, 4, false)
	a := m.Spawn("a", nil, computeLoop(300, 100_000))
	b := m.Spawn("b", nil, computeLoop(300, 100_000))
	m.Run(func() bool { return a.Exited() && b.Exited() })
	if m.Stats().TicksSkipped == 0 {
		t.Fatal("4P machine with 2 hogs skipped no idle ticks")
	}
	if m.Stats().IdleTickRescues != 0 {
		t.Fatalf("idle_tick_rescues = %d, want 0", m.Stats().IdleTickRescues)
	}
}

// TestAffinityMoveOffRunningCPUGetsKick is the regression test for the
// bug the rescue audit flushed out: restricting a running task's
// affinity to a different, idle CPU must kick that CPU when the task is
// descheduled — formerly the victim CPU's idle tick polled the queue and
// papered over the missing kick, and a parked chain polls nothing.
func TestAffinityMoveOffRunningCPUGetsKick(t *testing.T) {
	m := ticklessMachine(t, 2, false)
	// Long enough that the quantum expires at least once after the
	// affinity change — the deschedule is where the kick must happen.
	mover := m.Spawn("mover", nil, computeLoop(2000, 100_000))
	m.Run(func() bool { return mover.Task.HasCPU })
	from := mover.Task.Processor
	to := 1 - from
	// Park the destination CPU's chain first.
	m.Run(func() bool { return m.cpus[to].tickParked })
	m.SetAffinity(mover, 1<<uint(to))
	m.Run(func() bool { return mover.Exited() })
	if !mover.Exited() {
		t.Fatal("re-pinned task never finished: no kick reached the parked CPU")
	}
	if mover.Task.Processor != to {
		t.Fatalf("task finished on cpu%d, want %d", mover.Task.Processor, to)
	}
	if n := m.Stats().IdleTickRescues; n != 0 {
		t.Fatalf("idle_tick_rescues = %d, want 0 — the kick must be real, not a rescue", n)
	}
}
