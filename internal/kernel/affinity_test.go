package kernel

import (
	"testing"

	"elsc/internal/task"
)

func TestAffinityPinsTaskToCPU(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 4, f)
		pinned := m.Spawn("pinned", nil, computeLoop(50, 200_000))
		m.SetAffinity(pinned, 1<<2) // CPU 2 only
		// Background load everywhere else.
		for i := 0; i < 6; i++ {
			m.Spawn("bg", nil, computeLoop(20, 150_000))
		}
		m.Run(func() bool { return pinned.Exited() })
		if !pinned.Exited() {
			t.Fatal("pinned task never finished")
		}
		if pinned.Task.Processor != 2 {
			t.Fatalf("pinned task last ran on CPU %d, want 2", pinned.Task.Processor)
		}
		if pinned.Task.Migrations != 0 {
			t.Fatalf("pinned task migrated %d times", pinned.Task.Migrations)
		}
	})
}

func TestAffinityMaskAllowsSubset(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 4, f)
		p := m.Spawn("duo", nil, ProgramFunc(func(p *Proc) Action {
			if p.Steps >= 40 {
				return Exit{}
			}
			if p.Steps%2 == 0 {
				return Sleep{Cycles: 30_000}
			}
			return Compute{Cycles: 50_000}
		}))
		m.SetAffinity(p, 1<<1|1<<3) // CPUs 1 and 3
		for i := 0; i < 4; i++ {
			m.Spawn("bg", nil, computeLoop(10, 100_000))
		}
		m.Run(func() bool { return p.Exited() })
		if p.Task.Processor != 1 && p.Task.Processor != 3 {
			t.Fatalf("task ran on disallowed CPU %d", p.Task.Processor)
		}
	})
}

func TestZeroMaskAllowsAll(t *testing.T) {
	tk := task.New(1, "t", nil, nil)
	for cpu := 0; cpu < 8; cpu++ {
		if !tk.AllowedOn(cpu) {
			t.Fatalf("zero mask should allow CPU %d", cpu)
		}
	}
	tk.CPUsAllowed = 1 << 5
	if tk.AllowedOn(4) || !tk.AllowedOn(5) {
		t.Fatal("mask semantics wrong")
	}
}

func TestSetPolicyPromotesToRealTime(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, f SchedulerFactory) {
		m := newMachine(t, 1, f)
		hog := m.Spawn("hog", nil, computeLoop(1, 80*DefaultTickCycles))
		victim := m.Spawn("victim", nil, computeLoop(1, 10*DefaultTickCycles))
		_ = hog
		// Promote the victim to SCHED_FIFO mid-run: it must finish while
		// the hog still has most of its work left.
		m.SetPolicy(victim, task.FIFO, 60)
		m.Run(func() bool { return victim.Exited() })
		if hog.Task.UserCycles > 30*DefaultTickCycles {
			t.Fatalf("hog got %d cycles while an RT task was runnable", hog.Task.UserCycles)
		}
		if !victim.Task.RealTime() {
			t.Fatal("victim not real-time after SetPolicy")
		}
	})
}

func TestSetPolicyDemotesToOther(t *testing.T) {
	m := newMachine(t, 1, elscFactory)
	p := m.SpawnRT("rt", task.RR, 40, computeLoop(3, 50_000))
	m.SetPolicy(p, task.Other, 0)
	if p.Task.RealTime() || p.Task.RTPriority != 0 {
		t.Fatal("demotion did not clear the RT class")
	}
	m.Run(func() bool { return p.Exited() })
	if !p.Exited() {
		t.Fatal("demoted task never ran")
	}
}

func TestSetPolicyRejectsBadPriority(t *testing.T) {
	m := newMachine(t, 1, elscFactory)
	p := m.Spawn("w", nil, computeLoop(1, 1000))
	defer func() {
		if recover() == nil {
			t.Fatal("SetPolicy with rt_priority 500 should panic")
		}
	}()
	m.SetPolicy(p, task.FIFO, 500)
}

func TestPSRendersTaskTable(t *testing.T) {
	m := newMachine(t, 2, vanillaFactory)
	a := m.Spawn("alpha", m.NewMM("app"), computeLoop(3, 50_000))
	m.SpawnRT("beta-rt", task.FIFO, 7, computeLoop(2, 20_000))
	m.Run(func() bool { return m.Alive() == 0 })
	out := m.PS()
	for _, want := range []string{"PID", "alpha", "beta-rt", "exited", "rt7", "app"} {
		if !contains(out, want) {
			t.Fatalf("ps output missing %q:\n%s", want, out)
		}
	}
	top := m.TopConsumers(1)
	if len(top) != 1 || top[0].Task.UserCycles == 0 {
		t.Fatal("TopConsumers wrong")
	}
	_ = a
}

func TestPSClipsLongNames(t *testing.T) {
	m := newMachine(t, 1, elscFactory)
	p := m.Spawn("a-very-long-task-name-that-exceeds-the-column", nil, computeLoop(1, 100))
	m.Run(func() bool { return p.Exited() })
	if !contains(m.PS(), "~") {
		t.Fatal("long name not clipped")
	}
}

func TestMPStatPerCPUBreakdown(t *testing.T) {
	m := newMachine(t, 2, elscFactory)
	p := m.Spawn("solo", nil, computeLoop(1, 3*DefaultTickCycles))
	m.Run(func() bool { return p.Exited() })
	stats := m.CPUStats()
	if len(stats) != 2 {
		t.Fatalf("CPUStats len = %d", len(stats))
	}
	var work, idle uint64
	for _, s := range stats {
		work += s.WorkCycles
		idle += s.IdleCycles
	}
	if work == 0 {
		t.Fatal("no work recorded")
	}
	if idle == 0 {
		t.Fatal("a 2-CPU machine with one task must accumulate idle time")
	}
	out := m.MPStat()
	if !contains(out, "UTIL") || !contains(out, "CPU") {
		t.Fatalf("mpstat render:\n%s", out)
	}
}

func TestCPUStatUtilizationBounds(t *testing.T) {
	m := newMachine(t, 1, vanillaFactory)
	p := m.Spawn("w", nil, computeLoop(5, DefaultTickCycles))
	m.Run(func() bool { return p.Exited() })
	elapsed := uint64(m.Now())
	for _, s := range m.CPUStats() {
		u := s.Utilization(elapsed)
		if u < 0 || u > 1.01 {
			t.Fatalf("utilization %f out of bounds", u)
		}
	}
}
