package kernel

import (
	"math/bits"

	"elsc/internal/sched"
	"elsc/internal/sim"
	"elsc/internal/task"
)

// CPU is one simulated processor. It is either idle, executing a proc's
// current work segment, or "transitioning": a schedule() decision has been
// made and the context switch completes a little later in virtual time
// (the scheduler's own cost, lock spin, and switch penalties).
type CPU struct {
	id int
	m  *Machine

	current       *Proc
	idleTask      *task.Task
	transitioning bool
	needResched   bool
	reschedSent   bool

	// online is false while the CPU is hot-unplugged: it runs nothing,
	// its timer chain parks itself, and IPIs landing here are re-routed.
	// offlineFrom stamps the current offline stretch; offlineAccum and
	// offlines total completed stretches for MPStat.
	online       bool
	offlineFrom  sim.Time
	offlineAccum uint64
	offlines     uint64
	// wdStallFlagged marks that the watchdog already reported this CPU's
	// dead timer chain, so one stall is one violation, not one per sweep.
	wdStallFlagged bool

	// Tickless idle (NO_HZ): a fully idle CPU stops re-arming its timer
	// chain at the next firing — parked lazily, exactly like hotplug parks
	// the chain of an offline CPU — and the first reschedule that puts
	// work here re-arms it on the original grid (ensureTick). tickParked
	// marks the parked state; tickNext is the next instant the conceptual
	// always-on chain would fire at, with 0 meaning the chain also died
	// offline (OnlineCPU re-anchors it at online+period, matching what a
	// non-tickless online would arm); ticklessFrom stamps the current
	// parked stretch and ticklessAccum totals completed stretches for
	// MPStat's tickless residency column.
	tickParked    bool
	tickNext      sim.Time
	ticklessFrom  sim.Time
	ticklessAccum uint64

	runDone  *sim.Event
	segStart sim.Time
	idleFrom sim.Time

	// Preallocated event machinery, so the per-event hot paths never
	// touch the allocator: the timer tick and the reschedule IPI are
	// caller-owned events re-armed in place (at most one of each is ever
	// in flight), the context-switch completion carries its chosen proc
	// through dispatchNext instead of a fresh closure, and runDoneFn is
	// the segment-completion callback bound once at boot.
	tickEv       *sim.Event
	ipiEv        *sim.Event
	dispatchEv   *sim.Event
	dispatchNext *Proc
	runDoneFn    func(now sim.Time)

	// work is the CPU's task-work clock: total cycles of user work
	// executed here, the pollution clock for the cache model.
	work uint64
	// idleAccum totals completed idle stretches; dispatches counts
	// context switches completed here (both feed MPStat).
	idleAccum  uint64
	dispatches uint64
}

// ID returns the processor number.
func (c *CPU) ID() int { return c.id }

// Online reports whether the CPU is hot-plugged in.
func (c *CPU) Online() bool { return c.online }

// isIdle reports whether the CPU has nothing running and no dispatch in
// flight. Offline CPUs are never idle in the schedulable sense: they must
// not be kicked, offered wakes, or counted as placement targets.
func (c *CPU) isIdle() bool { return c.online && c.current == nil && !c.transitioning }

// kickIdle asks an idle CPU to run schedule() after the wake-up IPI
// latency. Duplicate kicks collapse via reschedSent — later wake-ups
// lean on the in-flight kick — so a kick that lands on a CPU that
// grabbed work in the interim must still re-run schedule(): dropping it
// would drop every wake that piggybacked on it, leaving a woken task
// queued behind whatever the CPU picked until its quantum runs out.
func (c *CPU) kickIdle() {
	if c.reschedSent {
		return
	}
	c.reschedSent = true
	c.ipiEv.Name = "kick-idle"
	c.m.eng.ScheduleAfter(c.ipiEv, ipiLatency)
}

// sendResched delivers a preemption IPI: when it lands, the CPU stops its
// current segment and calls schedule().
func (c *CPU) sendResched() {
	if c.reschedSent {
		return
	}
	c.reschedSent = true
	c.ipiEv.Name = "resched-ipi"
	c.m.eng.ScheduleAfter(c.ipiEv, ipiLatency)
}

// ipiArrive is the landing of either reschedule IPI (kick-idle or
// preemption): both re-run schedule() here. reschedSent collapses
// duplicates while one is in flight, so the single per-CPU event is never
// double-armed. A kick that lands mid-transition only flags needResched:
// the dispatch path re-checks it.
func (c *CPU) ipiArrive(now sim.Time) {
	c.reschedSent = false
	if !c.online {
		// The IPI raced an offline: the target is gone, but the wakes
		// that piggybacked on it still name runnable queued tasks.
		// Re-route the nudge to the surviving CPUs instead of dropping
		// it — a dropped kick here is a lost wake-up.
		c.m.nudgeOnline()
		return
	}
	switch {
	case c.transitioning:
		c.needResched = true
	case c.current == nil:
		c.m.reschedule(c, now)
	default:
		c.interrupt(now)
		c.current.Task.InvSwitches++
		c.m.reschedule(c, now)
	}
}

// interrupt stops the current segment at now, crediting the elapsed work.
// When the segment was stretched by the remote-access penalty, wall time
// converts back to work at the segment's own ratio, so an interrupted
// remote segment never credits more work than it performed.
func (c *CPU) interrupt(now sim.Time) {
	p := c.current
	if p == nil {
		return
	}
	if c.runDone != nil {
		c.m.eng.Cancel(c.runDone)
		c.runDone = nil
	}
	elapsed := uint64(now - c.segStart)
	if elapsed > p.segWall {
		elapsed = p.segWall
	}
	work := elapsed
	if p.segWall > p.segWork {
		// Full-width multiply: elapsed*segWork overflows uint64 for
		// multi-billion-cycle stretched segments. hi < segWall always
		// holds (elapsed <= segWall), so Div64 cannot panic.
		hi, lo := bits.Mul64(elapsed, p.segWork)
		work, _ = bits.Div64(hi, lo, p.segWall)
		c.m.stats.RemoteCycles += elapsed - work
	}
	if work > p.remaining {
		work = p.remaining
	}
	p.remaining -= work
	c.creditWork(p, work)
}

// creditWork accounts executed cycles to the proc and machine. Segments
// with a completion handler or an in-flight syscall are kernel crossings
// (syscall, yield, sleep, exit); plain compute segments are user work.
// It also drives the page-migration clock: enough consecutive execution
// in one foreign domain rebinds the proc's memory there.
func (c *CPU) creditWork(p *Proc, cycles uint64) {
	if cycles == 0 {
		return
	}
	c.work += cycles
	p.Task.DrainRun(cycles)
	if p.syscall != nil || p.onDone != nil {
		p.Task.SystemCycles += cycles
		c.m.stats.SyscallCycles += cycles
	} else {
		p.Task.UserCycles += cycles
		c.m.stats.TaskCycles += cycles
	}
	if dom := c.m.env.Topo.DomainOf(c.id); p.memDomain >= 0 && dom != p.memDomain {
		if dom != p.foreignDom {
			p.foreignDom = dom
			p.foreignWork = 0
		}
		p.foreignWork += cycles
		if p.foreignWork >= c.m.env.Cost.RehomeCycles {
			p.memDomain = dom
			p.foreignWork = 0
		}
	} else {
		p.foreignWork = 0
	}
}

// tick is the 10 ms timer interrupt: account overhead, age the running
// task's quantum, and force schedule() on expiry. A tick that finds the
// CPU fully idle with nothing to rescue parks the chain (NO_HZ idle)
// instead of re-arming; ensureTick restarts it when work returns.
func (c *CPU) tick(now sim.Time) {
	m := c.m
	if !c.online {
		// Hot-unplugged: park the timer chain by not re-arming it.
		// OnlineCPU restarts the chain (or, if the CPU returns within
		// one period, this firing never sees the offline state at all).
		// tickNext 0 marks that the chain died offline, so OnlineCPU
		// re-anchors the grid at online+period rather than resuming it.
		c.tickParked = true
		c.tickNext = 0
		return
	}
	if c.current == nil && !c.transitioning {
		// Fully idle at the tick. If a queued task is stranded here with
		// no delivery in flight, that is a lost kick: every enqueue-to-
		// idle path owes the CPU a real kick, and the old idle-loop
		// need_resched poll that papered over missing ones is now an
		// audited error path (IdleTickRescues, asserted zero by the
		// conformance and fuzz census audits). The reschedule below is
		// kept as a safety net so a rescue degrades gracefully rather
		// than hanging the machine.
		rescue := m.tickRescueNeeded(c)
		if !rescue && !m.cfg.TicklessOff {
			// NO_HZ: park the chain. This firing happened and is charged;
			// the instants the chain now skips are exactly firings that
			// would have found the CPU idle with nothing to do.
			m.stats.TickCycles += m.env.Cost.TickCost
			c.tickParked = true
			c.tickNext = now + sim.Time(m.cfg.TickCycles)
			c.ticklessFrom = now
			return
		}
		m.eng.ScheduleAfter(c.tickEv, m.cfg.TickCycles)
		m.stats.TickCycles += m.env.Cost.TickCost
		if rescue {
			m.reschedule(c, now)
			if c.dispatchNext != nil {
				// The policy picked the stranded task up: proof positive a
				// selectable task was sitting here with no kick in flight.
				// A reschedule that declines is different — the policy is
				// refusing work it could structurally see (a heap's
				// exhausted top hiding its second element, an epoch
				// section awaiting merge); the chain keeps polling until
				// the refusal's own resolution (recalc, re-prioritize,
				// wake) delivers its kick, exactly as the always-on chain
				// did, and no rescue is charged.
				m.stats.IdleTickRescues++
			}
		}
		return
	}
	m.eng.ScheduleAfter(c.tickEv, m.cfg.TickCycles)
	m.stats.TickCycles += m.env.Cost.TickCost
	if c.transitioning {
		return
	}
	p := c.current
	t := p.Task
	if t.Policy == task.FIFO {
		return // FIFO tasks run until they block or yield
	}
	if t.TickDecrement(m.env.Epoch) == 0 {
		m.stats.QuantumExpiry++
		t.InvSwitches++
		c.interrupt(now)
		m.reschedule(c, now)
		return
	}
	// Quantum left: give the policy its tick-time preemption rules — a
	// better-level task waiting on this queue, or a TIMESLICE_GRANULARITY
	// round-robin against same-level peers, so one interactive task
	// cannot sit on a CPU for its whole (recharged) quantum while
	// equally interactive tasks wait.
	if m.ticker != nil {
		if preempt, rotation := m.ticker.TickPreempt(c.id, t); preempt {
			if rotation {
				m.stats.TimesliceRotations++
			} else {
				m.stats.TickPreemptions++
			}
			t.InvSwitches++
			c.interrupt(now)
			m.reschedule(c, now)
		}
	}
}

// ensureTick re-arms a parked timer chain before the CPU does work. It
// runs at the top of every reschedule, so quantum accounting under
// tickless idle is exact: the chain resumes on its original grid — the
// first conceptual firing strictly after now — and every elided instant
// up to now counts as skipped. Instants at exactly now are skipped too:
// the always-on chain's tick there was armed a full period earlier, so
// it fired before whatever event woke this CPU and was an idle no-op.
func (c *CPU) ensureTick(now sim.Time) {
	if !c.tickParked {
		return
	}
	// No grid anchor: the chain died at an offline firing, and only
	// OnlineCPU revives it. An online CPU reaching here is someone
	// resurrecting a processor behind OnlineCPU's back — the watchdog's
	// cpu-stall case, which healing silently would hide.
	if c.tickNext == 0 {
		return
	}
	m := c.m
	if c.tickNext <= now {
		k := uint64(now-c.tickNext)/m.cfg.TickCycles + 1
		m.stats.TicksSkipped += k
		c.tickNext += sim.Time(k * m.cfg.TickCycles)
	}
	m.eng.Schedule(c.tickEv, c.tickNext)
	c.tickParked = false
	c.ticklessAccum += uint64(now - c.ticklessFrom)
}

// startSegment begins (or resumes) the proc's current work segment. A
// proc executing outside its memory domain runs stretched: the segment's
// work takes RemoteAccessPct percent longer in wall time, the sustained
// price of crossing the interconnect on every access.
func (c *CPU) startSegment(now sim.Time) {
	p := c.current
	if p.remaining == 0 {
		p.remaining = 1 // keep virtual time strictly advancing
	}
	p.segWork = p.remaining
	p.segWall = p.remaining
	if p.memDomain >= 0 && c.m.env.Topo.DomainOf(c.id) != p.memDomain {
		p.segWall += p.remaining * c.m.env.Cost.RemoteAccessPct / 100
	}
	c.segStart = now
	c.runDone = c.m.eng.After(p.segWall, "rundone", c.runDoneFn)
}

// segmentDone fires when the current segment's cycles have elapsed.
func (c *CPU) segmentDone(now sim.Time) {
	p := c.current
	c.runDone = nil
	if p.segWall > p.segWork {
		c.m.stats.RemoteCycles += p.segWall - p.segWork
	}
	c.creditWork(p, p.remaining)
	p.remaining = 0
	done := p.onDone
	p.onDone = nil
	if done != nil {
		done(c, now)
		return
	}
	c.nextAction(now)
}

// nextAction asks the program what to do and arms the next segment. A
// pending needResched (wake-up preemption that landed mid-decision) is
// honored first: syscall boundaries are preemption points.
func (c *CPU) nextAction(now sim.Time) {
	m := c.m
	p := c.current
	if p == nil {
		return
	}
	if c.needResched {
		c.needResched = false
		p.Task.InvSwitches++
		m.reschedule(c, now)
		return
	}
	if p.syscall != nil {
		// Woken from a blocked syscall: recheck the condition.
		p.remaining = syscallRetryCost
		p.onDone = runSyscall
		c.startSegment(now)
		return
	}
	act := p.prog.Step(p)
	p.Steps++
	if act == nil {
		act = Exit{}
	}
	switch a := act.(type) {
	case Compute:
		p.remaining = a.Cycles
		p.onDone = nil
		c.startSegment(now)
	case *Compute:
		// Prebound form: a program-owned scratch Compute, re-armed per
		// step so a variable-length burst pays no interface boxing.
		p.remaining = a.Cycles
		p.onDone = nil
		c.startSegment(now)
	case Syscall:
		p.syscallBuf = a
		p.syscall = &p.syscallBuf
		p.remaining = a.Cost + m.env.Cost.SyscallBase
		p.onDone = runSyscall
		c.startSegment(now)
	case *Syscall:
		// Prebound form: copy out of the (possibly shared, re-armed)
		// scratch Syscall immediately, so the action's operands are
		// proc-private from here on.
		p.syscallBuf = *a
		p.syscall = &p.syscallBuf
		p.remaining = a.Cost + m.env.Cost.SyscallBase
		p.onDone = runSyscall
		c.startSegment(now)
	case Yield:
		p.remaining = m.env.Cost.SyscallBase
		p.onDone = doYield
		c.startSegment(now)
	case Sleep:
		p.sleepDur = a.Cycles
		p.remaining = m.env.Cost.SyscallBase
		p.onDone = doSleepAction
		c.startSegment(now)
	case *Sleep:
		p.sleepDur = a.Cycles
		p.remaining = m.env.Cost.SyscallBase
		p.onDone = doSleepAction
		c.startSegment(now)
	case Exit:
		p.remaining = m.env.Cost.SyscallBase
		p.onDone = doExit
		c.startSegment(now)
	default:
		panic("kernel: unknown action type")
	}
}

// runSyscall executes the in-flight syscall's effect at segment end. The
// effect runs in this CPU's syscall context: wake-ups it issues carry the
// CPU as the waker for SD_WAKE_IDLE placement.
func runSyscall(c *CPU, now sim.Time) {
	p := c.current
	m := c.m
	m.wakerCPU = c.id
	var out Outcome
	if p.syscall.Exec != nil {
		out = p.syscall.Exec(p.syscall, p, now)
	} else {
		out = p.syscall.Fn(p, now)
	}
	m.wakerCPU = -1
	if out.Delay > 0 {
		// Spinning on a serialized kernel resource: burn the cycles,
		// then recheck.
		p.remaining = out.Delay
		p.onDone = runSyscall
		c.startSegment(now)
		return
	}
	if out.Wait != nil {
		// Block: leave p.syscall set so the condition is rechecked
		// after wake-up, like a kernel wait loop.
		p.Task.State = task.Interruptible
		p.Task.VolSwitches++
		p.sleepFrom = now
		out.Wait.enqueue(p)
		c.m.reschedule(c, now)
		return
	}
	p.syscall = nil
	c.nextAction(now)
}

// doYield implements sys_sched_yield: set the SCHED_YIELD bit and call
// schedule().
func doYield(c *CPU, now sim.Time) {
	p := c.current
	c.m.stats.YieldCalls++
	p.Task.Yielded = true
	p.Task.VolSwitches++
	c.m.reschedule(c, now)
}

// doSleepAction completes a Sleep action's syscall segment: the requested
// duration was parked in sleepDur when the action was armed, so the
// completion handler is this one static function rather than a closure.
func doSleepAction(c *CPU, now sim.Time) {
	doSleep(c, now, c.current.sleepDur)
}

// doSleep blocks the proc on a timer.
func doSleep(c *CPU, now sim.Time, d uint64) {
	p := c.current
	m := c.m
	p.Task.State = task.Interruptible
	p.Task.VolSwitches++
	p.sleepFrom = now
	p.sleepEv = m.eng.After(d, "sleep-wake", p.sleepWakeFn)
	m.reschedule(c, now)
}

// doExit terminates the proc.
func doExit(c *CPU, now sim.Time) {
	p := c.current
	m := c.m
	p.exited = true
	p.Task.State = task.Zombie
	m.alive--
	m.reschedule(c, now)
}

// reschedule is the kernel's schedule(): pick the next task under the
// run-queue lock, account the cost, and complete the context switch after
// the decision's virtual duration.
func (m *Machine) reschedule(c *CPU, now sim.Time) {
	if !c.online {
		panic("kernel: schedule() on an offline CPU")
	}
	prev := c.current
	prevTask := c.idleTask
	if prev != nil {
		prevTask = prev.Task
	}
	c.current = nil
	c.transitioning = true
	if prev == nil {
		// Leaving idle: account the idle stretch.
		m.stats.IdleCycles += uint64(now - c.idleFrom)
		c.idleAccum += uint64(now - c.idleFrom)
	}

	lock := m.rqLockFor(c.id)
	start, spin := lock.acquire(now)
	epoch0 := m.env.Epoch.N()
	res := m.sched.Schedule(c.id, prevTask)
	hold := res.Cycles + m.env.Cost.LockOp
	lock.release(start + sim.Time(hold))

	m.stats.SchedCalls++
	m.stats.SchedCycles += res.Cycles
	m.stats.SpinCycles += spin
	m.stats.Examined += uint64(res.Examined)
	m.stats.Recalcs += uint64(res.Recalcs)
	m.stats.PerSchedule.Observe(res.Cycles + spin)
	m.stats.ExaminedDist.Observe(uint64(res.Examined))
	if m.cfg.Trace != nil {
		m.cfg.Trace(TraceEvent{
			Now: now, CPU: c.id, Prev: prevTask, Next: res.Next,
			Examined: res.Examined, Cycles: res.Cycles, Spin: spin,
			Recalcs: res.Recalcs,
		})
	}

	// The previous task is no longer executing (unless re-chosen).
	if prev != nil {
		if m.noter != nil && prevTask.OnRunqueue() {
			m.noter.NoteRunning(prevTask, false)
		}
		prevTask.HasCPU = false
		prev.workStamp = c.work
		if prevTask != res.Next && prevTask.Runnable() && m.sched.OnRunqueue(prevTask) {
			if !prevTask.AllowedOn(c.id) {
				// Affinity moved under the running task (SetAffinity,
				// cpuset restore at online): this CPU may never pick it
				// again, and with per-CPU queues it just landed on a
				// foreign queue. Full wake-path kick, preemption
				// included — the task has nowhere else to go.
				m.rescheduleIdle(prev)
			} else if prevTask.RealTime() || prevTask.Counter(m.env.Epoch) > 0 {
				// Still selectable but this CPU chose someone else (wake
				// preemption, higher goodness): 2.4's __schedule_tail
				// runs reschedule_idle(prev) here so another processor
				// picks the loser up. Idle CPUs only — a task that just
				// lost a goodness comparison has no claim on a busy CPU,
				// and busy CPUs' armed ticks will age it in; but an idle
				// CPU under NO_HZ has no tick left to notice queued
				// work. Exhausted (zero-counter) tasks wait for the
				// recalc, which delivers its own kicks.
				m.kickIdleAllowed(prevTask)
			}
		}
	}

	next := res.Next
	delay := uint64(start-now) + res.Cycles
	var nextProc *Proc
	if next == nil {
		m.stats.IdleSwitches++
	} else {
		nextProc = m.procOf(next)
		if next != prevTask {
			m.stats.CtxSwitches++
			delay += m.env.Cost.ContextSwitch
			if next.MM != prevTask.MM {
				m.stats.MMSwitches++
				delay += m.env.Cost.MMSwitch
			}
			penalty := m.cachePenalty(c, nextProc)
			m.stats.CacheCycles += penalty
			delay += penalty
		}
		if next.EverRan && next.Processor != c.id {
			m.stats.Migrations++
			next.Migrations++
			if !m.env.Topo.SameDomain(next.Processor, c.id) {
				m.stats.CrossDomainMigrations++
			}
		}
		next.Dispatches++
		if nextProc.memDomain < 0 {
			// First-touch: the task's memory lands in the domain of its
			// first dispatch.
			nextProc.memDomain = m.env.Topo.DomainOf(c.id)
		}
		// Claim the task immediately so no other CPU's decision can
		// pick it during the switch window.
		next.HasCPU = true
		next.Processor = c.id
		next.EverRan = true
		nextProc.lastDispatched = now
		nextProc.wdFlagged = false
		if m.noter != nil && next.OnRunqueue() {
			m.noter.NoteRunning(next, true)
		}
	}

	if next != nil {
		// Work is arriving: restart a tick chain parked by tickless idle.
		// An idle-to-idle schedule() (boot kicks, Run restarts, kicks that
		// lost their race) leaves the chain parked — the tick only matters
		// when something runs. Armed here, before the dispatch event
		// below, so a tick landing at the same instant as the dispatch
		// keeps the always-on firing order.
		c.ensureTick(now)
	}
	c.dispatchNext = nextProc
	m.eng.Schedule(c.dispatchEv, now+sim.Time(delay))

	if next != nil || m.env.Epoch.N() != epoch0 {
		// This decision changed what other CPUs can see: a recalculation
		// made every exhausted task selectable at once, and a dispatch
		// can uncover work that the chooser itself was hiding — popping a
		// pinned task off a shared heap exposes the element beneath it to
		// every CPU, and a kick that several wake-ups piggybacked on only
		// dispatches one task, leaving the rest queued with nothing in
		// flight. Either way schedule() takes a single task, so a CPU
		// that idled earlier because it could not see (or use) the
		// backlog is still idle — and under tickless idle its tick chain
		// is parked, so no tick will come along to re-run schedule() for
		// it. The always-on chain resolved this by polling every tick;
		// that was seed behavior, not a guarantee. Deliver the kicks this
		// decision owes.
		m.kickIdleBacklog()
	}
}

// dispatchArrive completes the context switch armed by reschedule. At most
// one is in flight per CPU (transitioning gates reschedule), so the chosen
// proc rides in dispatchNext rather than a per-switch closure.
func (c *CPU) dispatchArrive(now sim.Time) {
	p := c.dispatchNext
	c.dispatchNext = nil
	if !c.online {
		c.m.offlineDispatch(c, p, now)
		return
	}
	c.m.dispatch(c, p, now)
}

// offlineDispatch lands a context switch whose CPU was hot-unplugged
// mid-transition. The chosen task was claimed (HasCPU) when the decision
// was made, so no other CPU could take it in flight; instead of starting
// it here — an offline CPU must never run a task — it is released back to
// the run queue and the surviving CPUs are nudged.
func (m *Machine) offlineDispatch(c *CPU, p *Proc, now sim.Time) {
	c.transitioning = false
	c.needResched = false
	if p == nil {
		return
	}
	t := p.Task
	if m.noter != nil && t.OnRunqueue() {
		m.noter.NoteRunning(t, false)
	}
	t.HasCPU = false
	p.workStamp = c.work
	if t.Runnable() {
		// Del-then-Add, like the OfflineCPU preempt path: under the global
		// policies the claimed task still carries the run-list marker even
		// though Schedule pulled it out of the structure (footnote 3), so a
		// bare "re-add if not on queue" would skip it and strand the task —
		// marked queued, in no list, invisible to every scheduler count
		// (fuzzer seed -74). DelFromRunqueue clears the illusion (or the
		// real listing, for policies that keep running tasks listed) and the
		// re-add files it where survivors can pick it.
		if m.sched.OnRunqueue(t) {
			m.sched.DelFromRunqueue(t)
		}
		sched.ResetQueueState(t)
		m.sched.AddToRunqueue(t)
		m.rqLockOfTask(t).bump(now, m.env.Cost.AddRunqueue+m.env.Cost.LockOp)
		m.rescheduleIdle(p)
	}
}

// dispatch completes the context switch started by reschedule.
func (m *Machine) dispatch(c *CPU, p *Proc, now sim.Time) {
	c.transitioning = false
	c.dispatches++
	if p == nil {
		c.current = nil
		c.idleFrom = now
		if c.needResched {
			// A wake-up landed during the switch-to-idle window.
			c.needResched = false
			m.reschedule(c, now)
		}
		return
	}
	c.current = p
	if p.remaining > 0 || p.onDone != nil || p.syscall != nil {
		// Resume the interrupted segment or retry a blocked syscall.
		if p.remaining == 0 && p.syscall != nil && p.onDone == nil {
			p.remaining = syscallRetryCost
			p.onDone = runSyscall
		}
		c.startSegment(now)
		return
	}
	c.nextAction(now)
}

// cachePenalty models the refill cost of dispatching p on c: zero if the
// CPU's cache still holds p's working set, growing with the work other
// tasks have done there since, and full after a migration. This is the
// cost the 15-point affinity bonus exists to avoid, and the price ELSC
// pays for its extra cross-CPU placements (Figure 6).
func (m *Machine) cachePenalty(c *CPU, p *Proc) uint64 {
	cost := m.env.Cost
	t := p.Task
	if !t.EverRan {
		return cost.CacheRefillMax / 2 // cold start
	}
	if t.Processor != c.id {
		if !m.env.Topo.SameDomain(t.Processor, c.id) {
			// The working set lives in a foreign domain's cache (or its
			// memory): refilling crosses the interconnect.
			return cost.CrossDomainRefillMax
		}
		return cost.CacheRefillMax
	}
	pollution := c.work - p.workStamp
	pen := pollution / cost.CacheRefillPerWork
	if pen > cost.CacheRefillMax {
		pen = cost.CacheRefillMax
	}
	return pen
}
