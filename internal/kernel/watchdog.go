package kernel

import (
	"fmt"

	"elsc/internal/sim"
)

// WatchdogKind classifies a watchdog violation.
type WatchdogKind int

const (
	// WatchdogStarvation: a runnable, queued task has waited longer than
	// its policy-derived threshold without being scheduled.
	WatchdogStarvation WatchdogKind = iota
	// WatchdogLostWakeup: a task is runnable but neither queued nor on a
	// CPU — nothing will ever schedule it.
	WatchdogLostWakeup
	// WatchdogCPUStall: an online CPU's timer chain is dead — no tick is
	// pending and the chain is not parked by tickless idle with a live
	// grid anchor, so quantum expiry never fires there again. (An
	// idle-parked chain is healthy: ensureTick re-arms it from tickNext at
	// the next dispatch. A parked chain with no anchor died at an offline
	// firing and only OnlineCPU can revive it.)
	WatchdogCPUStall
)

// String names the violation kind for traces and test failures.
func (k WatchdogKind) String() string {
	switch k {
	case WatchdogStarvation:
		return "starvation"
	case WatchdogLostWakeup:
		return "lost-wakeup"
	case WatchdogCPUStall:
		return "cpu-stall"
	}
	return fmt.Sprintf("watchdog-kind-%d", int(k))
}

// WatchdogViolation describes one detection, at the virtual instant the
// sweep caught it — not end-of-run.
type WatchdogViolation struct {
	Kind WatchdogKind
	Now  sim.Time
	// P is the starved or lost task (nil for CPU stalls).
	P *Proc
	// CPU is the stalled processor (-1 for task violations).
	CPU int
	// Waited is how long the task has been runnable-but-unscheduled, in
	// cycles (task violations only).
	Waited uint64
}

// String renders a violation as a one-line trace record.
func (v WatchdogViolation) String() string {
	switch v.Kind {
	case WatchdogCPUStall:
		return fmt.Sprintf("watchdog: cpu-stall cpu=%d t=%d", v.CPU, v.Now)
	default:
		name, id := "?", 0
		if v.P != nil {
			name, id = v.P.Task.Name, v.P.Task.ID
		}
		return fmt.Sprintf("watchdog: %s task=%s pid=%d waited=%d t=%d",
			v.Kind, name, id, v.Waited, v.Now)
	}
}

// WatchdogConfig tunes the starvation/lockup watchdog. The zero value of
// each field selects its default.
type WatchdogConfig struct {
	// PeriodCycles is the sweep interval (default 10 tick periods, i.e.
	// 100 ms of virtual time).
	PeriodCycles uint64
	// StarveQuanta is the starvation threshold in multiples of the
	// waiting task's full quantum, scaled by the runnable-per-online-CPU
	// load factor (default 8). Derive it from the policy's latency
	// capability: a policy allowed sloppier latency needs a laxer
	// watchdog to stay false-positive-free.
	StarveQuanta float64
	// OnViolation, when non-nil, fires synchronously at each detection.
	// Counters in Stats accumulate regardless.
	OnViolation func(WatchdogViolation)
}

func (c WatchdogConfig) withDefaults(tickCycles uint64) WatchdogConfig {
	if c.PeriodCycles == 0 {
		c.PeriodCycles = 10 * tickCycles
	}
	if c.StarveQuanta == 0 {
		c.StarveQuanta = 8
	}
	return c
}

// watchdog is the periodic detector: one preallocated engine event,
// re-armed each sweep, that audits the machine's liveness invariants
// online instead of at end-of-run. Sweeps run at event boundaries, where
// machine state is consistent by construction.
type watchdog struct {
	m   *Machine
	cfg WatchdogConfig
	ev  *sim.Event
}

// EnableWatchdog arms the watchdog (idempotent). Call before Run; the
// first sweep fires one period in.
func (m *Machine) EnableWatchdog(cfg WatchdogConfig) {
	if m.watchdog != nil {
		return
	}
	wd := &watchdog{m: m, cfg: cfg.withDefaults(m.cfg.TickCycles)}
	wd.ev = m.eng.NewPeriodicEvent("watchdog", wd.sweep)
	m.watchdog = wd
	m.stats.WatchdogEnabled = true
	m.eng.ScheduleAfter(wd.ev, wd.cfg.PeriodCycles)
}

// WatchdogEnabled reports whether the watchdog is armed.
func (m *Machine) WatchdogEnabled() bool { return m.watchdog != nil }

// sweep is one watchdog pass: re-arm, then check every online CPU's timer
// chain and every live task's liveness. Allocation-free: it walks existing
// slices and passes violations by value.
func (wd *watchdog) sweep(now sim.Time) {
	m := wd.m
	m.eng.ScheduleAfter(wd.ev, wd.cfg.PeriodCycles)

	for _, c := range m.cpus {
		// A healthy online CPU either has a tick pending or is parked by
		// tickless idle with a grid anchor (tickNext > 0) for ensureTick to
		// resume from. A chain that died at an offline firing (tickNext ==
		// 0) on a CPU marked online means someone resurrected the CPU
		// behind OnlineCPU's back — quantum expiry never fires there again.
		dead := !c.tickEv.Pending() && (!c.tickParked || c.tickNext == 0)
		if c.online && dead && !c.wdStallFlagged {
			c.wdStallFlagged = true
			m.stats.WatchdogCPUStalls++
			if wd.cfg.OnViolation != nil {
				wd.cfg.OnViolation(WatchdogViolation{Kind: WatchdogCPUStall, Now: now, CPU: c.id})
			}
		}
	}

	// While a real-time task is runnable or running, SCHED_OTHER tasks
	// starving is policy, not a bug: skip their starvation checks (their
	// lost-wakeup check still applies — a lost task is lost under any
	// policy).
	// yardTicks is the largest quantum (in ticks) among live runnable
	// SCHED_OTHER tasks: one turn of the rotation waits behind everyone
	// else's timeslice, so a nice'd-down task's fair-share wait is
	// measured in the big tasks' quanta, not its own tiny one (fuzzer
	// seed 91091: a priority-1 hog among priority-20 hogs legitimately
	// waits hundreds of its own 2-tick slices for one rotation).
	rtActive := false
	yardTicks := 0
	for _, p := range m.procs {
		if p.exited || !p.Task.Runnable() {
			continue
		}
		if p.Task.RealTime() {
			rtActive = true
			continue
		}
		if mc := p.Task.MaxCounter(); mc > yardTicks {
			yardTicks = mc
		}
	}

	online := m.env.OnlineCount()
	runnable := m.sched.Runnable()
	for _, p := range m.procs {
		if p.exited || p.wdFlagged {
			continue
		}
		t := p.Task
		if !t.Runnable() || t.HasCPU {
			continue
		}
		if !m.sched.OnRunqueue(t) {
			p.wdFlagged = true
			m.stats.WatchdogLostWakeups++
			if wd.cfg.OnViolation != nil {
				wd.cfg.OnViolation(WatchdogViolation{
					Kind: WatchdogLostWakeup, Now: now, P: p, CPU: -1,
					Waited: wd.waited(p, now),
				})
			}
			continue
		}
		if rtActive && !t.RealTime() {
			continue
		}
		waited := wd.waited(p, now)
		if float64(waited) > wd.threshold(yardTicks, runnable, online) {
			p.wdFlagged = true
			m.stats.WatchdogStarvations++
			if wd.cfg.OnViolation != nil {
				wd.cfg.OnViolation(WatchdogViolation{
					Kind: WatchdogStarvation, Now: now, P: p, CPU: -1, Waited: waited,
				})
			}
		}
	}
}

// waited is how long p has been runnable without reaching a CPU: since it
// last became runnable or last won a dispatch, whichever is later (a
// preempted task was on-CPU at lastDispatched, so runnableSince alone
// would overstate its wait).
func (wd *watchdog) waited(p *Proc, now sim.Time) uint64 {
	since := p.runnableSince
	if p.lastDispatched > since {
		since = p.lastDispatched
	}
	if now <= since {
		return 0
	}
	return uint64(now - since)
}

// threshold is the starvation bound in cycles: StarveQuanta full quanta of
// the largest runnable task's size (yardTicks — what one turn of the
// rotation actually waits behind), scaled by how oversubscribed the
// machine is (with k runnable tasks per online CPU, waiting k quanta is
// fair-share behavior, not starvation).
func (wd *watchdog) threshold(yardTicks, runnable, online int) float64 {
	quantum := float64(uint64(yardTicks) * wd.m.cfg.TickCycles)
	load := 1.0
	if online > 0 {
		load += float64(runnable) / float64(online)
	}
	return wd.cfg.StarveQuanta * quantum * load
}
