package kernel

import "elsc/internal/sim"

// SerialResource models a machine-global serialization point: work passing
// through it executes one reservation at a time, machine-wide. It stands
// in for the coarse kernel locking of the 2.3.x era — most prominently the
// big kernel lock and the networking stack's global locks — which is why
// VolanoMark throughput in the paper barely improves from one processor to
// four (Figure 3: 4,400 msg/s UP vs ~4,600 at 4P for 5 rooms).
//
// A caller reserves hold cycles at the earliest free instant; the returned
// wait is how long it must keep spinning before its turn. The simulation
// is single threaded: this is purely a timing model, like spinlock.
type SerialResource struct {
	Name string
	lock spinlock
}

// NewSerialResource returns a resource with the given diagnostic name.
func (m *Machine) NewSerialResource(name string) *SerialResource {
	return &SerialResource{Name: name}
}

// Reserve books hold cycles on the resource starting at the earliest
// moment at or after now, and returns how many cycles the caller must wait
// before its reservation begins.
func (r *SerialResource) Reserve(now sim.Time, hold uint64) (wait uint64) {
	start, spin := r.lock.acquire(now)
	r.lock.release(start + sim.Time(hold))
	return spin
}

// Contended returns how many reservations had to wait.
func (r *SerialResource) Contended() uint64 { return r.lock.contended }

// Reservations returns the total reservation count.
func (r *SerialResource) Reservations() uint64 { return r.lock.acquisitions }

// SpinCycles returns the total cycles callers spent waiting.
func (r *SerialResource) SpinCycles() uint64 { return r.lock.spinCycles }
