// Package kernel simulates the parts of Linux 2.3.99-pre4 that surround
// the scheduler: an SMP machine with per-CPU dispatch, 10 ms timer ticks
// and quantum accounting, wait queues with wake-up preemption
// (reschedule_idle), the global run-queue spinlock, and a cache-affinity
// cost model. Scheduling policies plug in through sched.Scheduler, so the
// stock scheduler and ELSC run on an identical substrate.
//
// The simulation is a single-threaded discrete-event program over virtual
// CPU cycles; all scheduler work, lock spinning, context-switch and
// cache-refill penalties consume virtual CPU time, so workload throughput
// differences between schedulers emerge from the algorithms rather than
// being asserted.
package kernel

import (
	"fmt"

	"elsc/internal/sched"
	"elsc/internal/sim"
	"elsc/internal/task"
)

// Default machine parameters: a 400 MHz Pentium II-class SMP (the paper's
// IBM Netfinity testbeds) with HZ=100.
const (
	// DefaultHz is the simulated CPU clock rate in cycles per second.
	DefaultHz = 400_000_000
	// DefaultTickCycles is the timer interrupt period: 10 ms at 400 MHz.
	DefaultTickCycles = DefaultHz / 100
	// ipiLatency is the delay before a cross-CPU reschedule interrupt
	// lands.
	ipiLatency = 1200
	// syscallRetryCost is charged each time a blocked syscall recheck
	// runs after a wake-up.
	syscallRetryCost = 250
)

// SchedulerFactory builds a scheduling policy bound to the machine's
// environment.
type SchedulerFactory func(env *sched.Env) sched.Scheduler

// Config describes the machine to simulate.
type Config struct {
	// CPUs is the processor count (>= 1).
	CPUs int
	// SMP selects an SMP kernel build. The paper's "UP" rows are
	// CPUs=1, SMP=false; its "1P" rows are CPUs=1, SMP=true.
	SMP bool
	// Topology groups the CPUs into cache domains. Nil means flat: all
	// CPUs share one domain and no dispatch is ever cross-domain, which
	// reproduces the paper-era machines. A non-nil topology must cover
	// exactly CPUs processors; dispatches that cross a domain boundary
	// pay Cost.CrossDomainRefillMax instead of CacheRefillMax.
	Topology *sched.Topology
	// Hz is the CPU clock in cycles/second (default 400 MHz).
	Hz uint64
	// TickCycles is the timer period (default Hz/100 = 10 ms).
	TickCycles uint64
	// Seed drives all randomness in the machine and its workloads.
	Seed int64
	// NewScheduler builds the policy; nil panics.
	NewScheduler SchedulerFactory
	// Cost overrides the default cost model when non-nil.
	Cost *sched.CostModel
	// MaxCycles stops the simulation at this virtual time (0 = none).
	MaxCycles uint64
	// UniformSpawnCounter starts every task with a full quantum instead
	// of modeling fork's counter inheritance (the parent's quantum is
	// split with the child, so a process that forks many threads seeds
	// them with varied counters). Uniform counters make goodness
	// comparisons tie everywhere — convenient for unit tests, but not a
	// regime a real machine ever runs in.
	UniformSpawnCounter bool
	// Trace, when non-nil, is invoked at every schedule() decision.
	Trace func(ev TraceEvent)
	// TicklessOff disables NO_HZ tickless idle: every CPU re-arms its
	// timer tick forever, even while idle, as the pre-tickless kernel
	// did. The ablation knob for proving behavior equivalence — tickless
	// parking elides only ticks that would have been idle no-ops, so
	// scheduling decisions (and workload Results) are identical in both
	// modes while event counts and tick overhead differ.
	TicklessOff bool
	// Watchdog, when non-nil, arms the starvation/lockup watchdog at
	// boot (see WatchdogConfig). Off by default: the watchdog adds
	// periodic engine events, which perturbs event counts.
	Watchdog *WatchdogConfig
	// Engine, when non-nil, is a recycled event engine the machine boots
	// on instead of allocating a fresh one. NewMachine resets it, so its
	// heap array, wheel rings, and event freelist carry over from the
	// previous simulation — sweep workers run hundreds of cells without
	// re-paying engine construction. The engine must not be shared by a
	// live machine.
	Engine *sim.Engine
}

// TraceEvent describes one schedule() decision for tracing tools.
type TraceEvent struct {
	Now      sim.Time
	CPU      int
	Prev     *task.Task // what was running (the idle task when leaving idle)
	Next     *task.Task // what was chosen; nil means idle
	Examined int
	Cycles   uint64
	Spin     uint64
	Recalcs  int
}

// Machine is a simulated multiprocessor running one scheduler.
type Machine struct {
	cfg       Config
	eng       *sim.Engine
	rng       *sim.RNG
	env       *sched.Env
	sched     sched.Scheduler
	noter     runningNoter    // non-nil when the policy tracks HasCPU flips
	preempter preemptComparer // non-nil when the policy ranks preemption itself
	ticker    tickPreempter   // non-nil when the policy preempts at the tick
	placer    wakePlacer      // non-nil when the policy takes SD_WAKE_IDLE hints
	cpus      []*CPU

	procs   []*Proc
	byTask  map[*task.Task]*Proc
	alive   int
	nextPID int
	mmSeq   int

	// rqLocks is the run-queue lock timing model: a single global lock
	// for the stock and ELSC schedulers (as in 2.3.99), one per CPU for
	// policies that advertise PerCPU queues.
	rqLocks []spinlock
	// lockAcqBase/lockContBase carry lock totals from run-queue lock sets
	// retired by SwitchPolicy (the lock regime can change mid-run).
	lockAcqBase  uint64
	lockContBase uint64
	stats        Stats

	// wakerCPU is the processor executing the current syscall effect, or
	// -1 outside one (timer and engine-event wake-ups have no waker).
	// try_to_wake_up reads it for SD_WAKE_IDLE placement: a wake issued
	// from CPU c prefers an idle CPU in c's cache domain.
	wakerCPU int

	// drainBuf is the reusable buffer DrainCPU fills at each offline, so
	// steady-state hotplug never allocates.
	drainBuf []*task.Task
	// watchdog is the optional starvation/lockup detector.
	watchdog *watchdog
}

// wakePlacer is implemented by policies (o1) that accept an SD_WAKE_IDLE
// placement hint: file the woken task on the given idle CPU's queue
// instead of its home queue. PlaceWake returns false to decline (knob
// disabled, affinity forbids, task already queued), in which case the
// kernel falls back to the ordinary AddToRunqueue.
type wakePlacer interface {
	PlaceWake(t *task.Task, cpu int) bool
}

// tickPreempter is implemented by policies (o1) with tick-time
// preemption rules: TickPreempt is consulted by the timer tick while the
// running task still has quantum left. preempt true interrupts the task;
// rotation distinguishes a TIMESLICE_GRANULARITY same-level round-robin
// (the task goes to the tail of its level) from a plain better-level
// preemption (the task keeps its spot), so the stats attribute each
// mechanism correctly.
type tickPreempter interface {
	TickPreempt(cpu int, t *task.Task) (preempt, rotation bool)
}

// preemptComparer is implemented by policies (o1) whose dynamic priority
// differs from goodness(): the wake path asks the policy whether the
// woken task outranks a CPU's current one — 2.6's TASK_PREEMPTS_CURR,
// which compares bonus-laden effective priorities — instead of the
// 2.3.99 goodness delta. This is how the interactivity estimator reaches
// wake-up preemption: a sleep-heavy task at the same static priority as
// a hog preempts it on wake.
type preemptComparer interface {
	PreemptsCurr(t, curr *task.Task) bool
}

// perCPUQueues is implemented by policies with per-CPU run queues, which
// the kernel rewards with split run-queue locks.
type perCPUQueues interface {
	PerCPU() bool
}

// runningNoter is implemented by policies (the stock scheduler) that keep
// running tasks on the run queue and need to know when HasCPU flips.
type runningNoter interface {
	NoteRunning(t *task.Task, running bool)
}

// NewMachine builds and boots a machine: CPUs idle, ticks armed.
func NewMachine(cfg Config) *Machine {
	if cfg.CPUs < 1 {
		panic("kernel: need at least one CPU")
	}
	if cfg.NewScheduler == nil {
		panic("kernel: config needs a scheduler factory")
	}
	if cfg.Topology != nil && cfg.Topology.NumCPU() != cfg.CPUs {
		panic(fmt.Sprintf("kernel: topology covers %d CPUs, machine has %d",
			cfg.Topology.NumCPU(), cfg.CPUs))
	}
	if cfg.Hz == 0 {
		cfg.Hz = DefaultHz
	}
	if cfg.TickCycles == 0 {
		cfg.TickCycles = cfg.Hz / 100
	}
	m := &Machine{
		cfg:      cfg,
		eng:      cfg.Engine,
		rng:      sim.NewRNG(cfg.Seed),
		byTask:   make(map[*task.Task]*Proc),
		wakerCPU: -1,
	}
	if m.eng == nil {
		m.eng = new(sim.Engine)
	} else {
		m.eng.Reset()
	}
	m.eng.MaxDur = sim.Time(cfg.MaxCycles)
	m.env = sched.NewEnv(cfg.CPUs, cfg.SMP, func() int { return m.alive })
	if cfg.Topology != nil {
		m.env.Topo = cfg.Topology
	}
	if cfg.Cost != nil {
		m.env.Cost = *cfg.Cost
	}
	m.sched = cfg.NewScheduler(m.env)
	m.noter, _ = m.sched.(runningNoter)
	m.preempter, _ = m.sched.(preemptComparer)
	m.ticker, _ = m.sched.(tickPreempter)
	m.placer, _ = m.sched.(wakePlacer)
	nlocks := 1
	if pc, ok := m.sched.(perCPUQueues); ok && pc.PerCPU() {
		nlocks = cfg.CPUs
	}
	m.rqLocks = make([]spinlock, nlocks)

	m.cpus = make([]*CPU, cfg.CPUs)
	for i := range m.cpus {
		c := &CPU{id: i, m: m, online: true}
		c.idleTask = task.New(-(i + 1), fmt.Sprintf("idle/%d", i), nil, m.env.Epoch)
		c.idleTask.IsIdle = true
		c.idleTask.Processor = i
		// The per-CPU event set is allocated once here; the hot paths
		// re-arm these objects (tick, IPI) or draw from the engine's
		// freelist (rundone, sleep), so steady-state execution never
		// allocates per event.
		c.tickEv = m.eng.NewPeriodicEvent("tick", c.tick)
		c.ipiEv = m.eng.NewPeriodicEvent("resched-ipi", c.ipiArrive)
		c.dispatchEv = m.eng.NewPeriodicEvent("dispatch", c.dispatchArrive)
		c.runDoneFn = c.segmentDone
		m.cpus[i] = c
		// Stagger per-CPU timer interrupts slightly so four CPUs do
		// not pile onto the run-queue lock at the exact same instant.
		m.eng.Schedule(c.tickEv, sim.Time(cfg.TickCycles+uint64(i)*997))
	}
	if cfg.Watchdog != nil {
		m.EnableWatchdog(*cfg.Watchdog)
	}
	return m
}

// Engine exposes the event engine (workloads schedule helper events).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// RNG returns the machine's deterministic random stream.
func (m *Machine) RNG() *sim.RNG { return m.rng }

// Env returns the scheduler environment.
func (m *Machine) Env() *sched.Env { return m.env }

// Scheduler returns the active policy.
func (m *Machine) Scheduler() sched.Scheduler { return m.sched }

// Stats returns the accumulated machine statistics.
func (m *Machine) Stats() *Stats {
	m.stats.LockAcquisitions = m.lockAcqBase
	m.stats.LockContended = m.lockContBase
	for i := range m.rqLocks {
		m.stats.LockAcquisitions += m.rqLocks[i].acquisitions
		m.stats.LockContended += m.rqLocks[i].contended
	}
	m.stats.EventsFired = m.eng.Fired()
	m.stats.EventsWheel = m.eng.FiredWheel()
	m.stats.EventsHeap = m.eng.FiredHeap()
	return &m.stats
}

// rqLockFor returns the lock guarding cpu's run queue.
func (m *Machine) rqLockFor(cpu int) *spinlock {
	return &m.rqLocks[cpu%len(m.rqLocks)]
}

// rqLockOfTask returns the lock guarding the queue a just-filed task landed
// on. With a single global lock that is the global lock; with per-CPU
// queues the scheduler records the home queue in the task's QIndex.
func (m *Machine) rqLockOfTask(t *task.Task) *spinlock {
	if len(m.rqLocks) == 1 {
		return &m.rqLocks[0]
	}
	return &m.rqLocks[t.QIndex%len(m.rqLocks)]
}

// Now returns current virtual time in cycles.
func (m *Machine) Now() sim.Time { return m.eng.Now() }

// Hz returns the configured clock rate.
func (m *Machine) Hz() uint64 { return m.cfg.Hz }

// Seconds converts the current virtual time to seconds.
func (m *Machine) Seconds() float64 {
	return float64(m.eng.Now()) / float64(m.cfg.Hz)
}

// Alive returns the number of live (non-exited) tasks.
func (m *Machine) Alive() int { return m.alive }

// Procs returns all spawned procs, including exited ones.
func (m *Machine) Procs() []*Proc { return m.procs }

// NewMM allocates a fresh address space.
func (m *Machine) NewMM(name string) *task.MM {
	m.mmSeq++
	return &task.MM{ID: m.mmSeq, Name: name}
}

// Spawn creates a task running prog in address space mm (nil for a kernel
// thread), makes it runnable, and lets it preempt an idle or weaker CPU,
// like wake_up_process on a fresh fork.
func (m *Machine) Spawn(name string, mm *task.MM, prog Program) *Proc {
	m.nextPID++
	t := task.New(m.nextPID, name, mm, m.env.Epoch)
	return m.spawn(t, prog)
}

// SpawnRT creates a real-time task.
func (m *Machine) SpawnRT(name string, policy task.Policy, rtprio int, prog Program) *Proc {
	m.nextPID++
	t := task.NewRT(m.nextPID, name, policy, rtprio, m.env.Epoch)
	return m.spawn(t, prog)
}

func (m *Machine) spawn(t *task.Task, prog Program) *Proc {
	p := &Proc{Task: t, M: m, prog: prog, memDomain: -1}
	p.sleepWakeFn = p.sleepWake
	p.WaitNode.Owner = p
	m.procs = append(m.procs, p)
	m.byTask[t] = p
	m.alive++
	if !m.cfg.UniformSpawnCounter && !t.RealTime() {
		// Fork-time quantum inheritance: the child gets a share of the
		// forking parent's remaining quantum, which varies with how
		// recently the parent was recharged.
		lo := uint64(t.Priority/4) + 1
		hi := uint64(t.MaxCounter())
		t.SetCounter(m.env.Epoch, int(m.rng.Range(lo, hi)))
	}
	// Fork-time interactivity inheritance, 2.6-style: a fresh task starts
	// at the neutral midpoint of the sleep_avg range — neither branded a
	// hog (it has not run yet) nor fully interactive (it has not slept) —
	// and earns its bonus from its own behavior within its first ticks.
	t.CreditSleep(m.env.Cost.MaxSleepAvg/2, m.env.Cost.MaxSleepAvg)
	p.runnableSince = m.eng.Now()
	m.sched.AddToRunqueue(t)
	m.rqLockOfTask(t).bump(m.eng.Now(), m.env.Cost.AddRunqueue+m.env.Cost.LockOp)
	m.rescheduleIdle(p)
	return p
}

// SetPriority changes a task's static priority, re-indexing it if queued
// ("its priority almost never changes, though when it does, the ELSC
// scheduler adapts accordingly").
func (m *Machine) SetPriority(p *Proc, prio int) {
	if prio < task.MinPriority || prio > task.MaxPriority {
		panic("kernel: priority out of range")
	}
	t := p.Task
	// Re-index only tasks actually waiting in a queue; a running task is
	// re-filed by its next schedule() anyway.
	queued := m.sched.OnRunqueue(t) && !t.HasCPU
	if queued {
		m.sched.DelFromRunqueue(t)
	}
	t.Priority = prio
	if c := t.Counter(m.env.Epoch); c > t.MaxCounter() {
		t.SetCounter(m.env.Epoch, t.MaxCounter())
	}
	// Restart the watchdog's starvation stopwatch: its threshold is scaled
	// by the task's quantum, so a priority drop must not let wait time
	// accrued under the old, larger quantum retroactively cross the new,
	// tighter bar (fuzzer seed 90031 flagged a hog the instant churn
	// dropped it from priority 20 to 1).
	if t.Runnable() && !t.HasCPU {
		p.runnableSince = m.eng.Now()
	}
	if queued {
		m.sched.AddToRunqueue(t)
	}
}

// Run drives the simulation until stop returns true, no events remain, or
// the configured MaxCycles horizon passes. It kicks every CPU's first
// schedule() at time zero and flushes idle accounting on return.
func (m *Machine) Run(stop func() bool) {
	for _, c := range m.cpus {
		if c.isIdle() {
			m.reschedule(c, m.eng.Now())
		}
	}
	m.eng.Run(stop)
	for _, c := range m.cpus {
		if c.isIdle() {
			d := uint64(m.eng.Now() - c.idleFrom)
			m.stats.IdleCycles += d
			c.idleAccum += d
			c.idleFrom = m.eng.Now()
		}
		// Flush skipped-tick accounting for chains still parked at the
		// stop instant, advancing the grid anchor so a later Run (or
		// ensureTick) never counts the same instants twice. Same ≤-now
		// convention as ensureTick.
		if c.online && c.tickParked && c.tickNext != 0 && c.tickNext <= m.eng.Now() {
			k := uint64(m.eng.Now()-c.tickNext)/m.cfg.TickCycles + 1
			m.stats.TicksSkipped += k
			c.tickNext += sim.Time(k * m.cfg.TickCycles)
		}
	}
}

// WakeOne releases the longest waiter on wq (wake_up). Returns the proc
// woken, or nil.
func (m *Machine) WakeOne(wq *WaitQueue) *Proc {
	p := wq.dequeueFirst()
	if p == nil {
		return nil
	}
	m.wake(p)
	return p
}

// WakeAll releases every waiter on wq (wake_up_all).
func (m *Machine) WakeAll(wq *WaitQueue) int {
	n := 0
	for {
		p := wq.dequeueFirst()
		if p == nil {
			return n
		}
		m.wake(p)
		n++
	}
}

// wake is try_to_wake_up: credit the blocked stretch to the task's
// sleep_avg, mark runnable, insert into the run queue (a short critical
// section on the run-queue lock), then look for a CPU to preempt. When
// the wake was issued from a CPU whose cache domain holds an idle
// processor, a policy implementing wakePlacer is offered that CPU first
// (SD_WAKE_IDLE): the woken task starts immediately, near the waker's
// warm data, instead of queueing behind its home CPU's backlog.
func (m *Machine) wake(p *Proc) {
	t := p.Task
	if p.exited {
		return
	}
	if p.sleepEv != nil {
		m.eng.Cancel(p.sleepEv)
		p.sleepEv = nil
	}
	if t.Runnable() && (m.sched.OnRunqueue(t) || t.HasCPU) {
		return // already awake
	}
	m.stats.WakeCalls++
	now := m.eng.Now()
	if now > p.sleepFrom {
		t.CreditSleep(uint64(now-p.sleepFrom), m.env.Cost.MaxSleepAvg)
	}
	t.State = task.Running
	p.runnableSince = now
	wakeCost := m.env.Cost.AddRunqueue + m.env.Cost.WakeupCost/4 + m.env.Cost.LockOp + m.env.Cost.SleepAvgOp
	if m.placer != nil {
		if target := m.wakeIdleTarget(t); target >= 0 && m.placer.PlaceWake(t, target) {
			m.stats.WakeIdlePlacements++
			m.rqLockOfTask(t).bump(now, wakeCost)
			m.cpus[target].kickIdle()
			return
		}
	}
	m.sched.AddToRunqueue(t)
	m.rqLockOfTask(t).bump(now, wakeCost)
	m.rescheduleIdle(p)
}

// wakeIdleTarget returns the idle CPU an SD_WAKE_IDLE wake-up should
// prefer, or -1. Like 2.6's wake_idle, the domain of the task's own last
// CPU is scanned first — an idle processor next to the task's cache and
// memory beats any other — then the waker's domain (the data the wake is
// about is warm there), before falling back to the ordinary wake path.
// No placement happens outside a syscall context (timer and engine-event
// wakes have no waker), and none is needed when the task's own last CPU
// is already idle: the affinity fast path in rescheduleIdle lands it
// there for free.
func (m *Machine) wakeIdleTarget(t *task.Task) int {
	if m.wakerCPU < 0 {
		return -1
	}
	topo := m.env.Topo
	if t.EverRan && t.Processor < len(m.cpus) && t.AllowedOn(t.Processor) {
		if m.cpus[t.Processor].isIdle() {
			return -1
		}
		if cpu := m.idleIn(topo.DomainOf(t.Processor), t); cpu >= 0 {
			return cpu
		}
	}
	return m.idleIn(topo.DomainOf(m.wakerCPU), t)
}

// idleIn returns the first idle CPU in domain dom that t may run on, -1
// if the domain is fully busy.
func (m *Machine) idleIn(dom int, t *task.Task) int {
	for _, cpu := range m.env.Topo.DomainCPUs(dom) {
		if t.AllowedOn(cpu) && m.cpus[cpu].isIdle() {
			return cpu
		}
	}
	return -1
}

// rescheduleIdle decides which CPU, if any, should run schedule() because
// p became runnable — 2.3.99's reschedule_idle: prefer the task's last
// CPU if idle, then any idle CPU, else preempt the CPU whose current task
// has the worst goodness, if the woken task beats it.
func (m *Machine) rescheduleIdle(p *Proc) {
	t := p.Task
	// Per-CPU queues: the task waits on one specific queue, and only that
	// queue owner's schedule() is guaranteed to find it — a remote CPU may
	// steal, but balancing thresholds can (rightly) decline. Deliver to
	// the owner first. An owner mid-transition to idle is the treacherous
	// case: it is not isIdle() yet, so the generic scan below would kick
	// some other CPU whose steal may refuse, and once the owner's switch
	// completes nothing will ever look at its queue again (with its tick
	// parked, not even the old polling chain). Flagging needResched makes
	// the completion re-run schedule(), exactly like a kick landing
	// mid-transition. An owner busy running falls through to the steal
	// and preemption paths.
	if len(m.rqLocks) > 1 {
		owner := m.cpus[t.QIndex%len(m.cpus)]
		if owner.online && t.AllowedOn(owner.id) {
			if owner.isIdle() {
				owner.kickIdle()
				return
			}
			if owner.transitioning && owner.dispatchNext == nil {
				if !owner.reschedSent {
					owner.needResched = true
				}
				return
			}
		}
	}
	// Last CPU first: the affinity-preserving fast path. A CPU with a
	// kick already in flight needs no second one: its schedule() will
	// see this task on the run queue too.
	if t.EverRan && t.AllowedOn(t.Processor) {
		if c := m.cpus[t.Processor]; c.isIdle() {
			c.kickIdle()
			return
		}
	}
	anyKicked := false
	for _, c := range m.cpus {
		if !t.AllowedOn(c.id) {
			continue
		}
		if c.isIdle() {
			if !c.reschedSent {
				c.kickIdle()
				return
			}
			anyKicked = true
		}
	}
	if anyKicked {
		return
	}
	// No idle allowed CPU: consider preemption. With a global run queue
	// any CPU can dispatch the woken task, so the weakest current task
	// A global-queue CPU mid-transition to idle counts as almost-idle:
	// its completion can re-run schedule() (needResched) and any CPU can
	// dispatch from the shared queue, so deliver there before resorting
	// to preemption. Without this, a wake racing the machine's last
	// non-busy CPU into idleness strands the task until someone's
	// quantum expires.
	if len(m.rqLocks) == 1 {
		for _, c := range m.cpus {
			if c.online && c.transitioning && c.dispatchNext == nil && t.AllowedOn(c.id) {
				if !c.reschedSent {
					c.needResched = true
				}
				return
			}
		}
	}
	// machine-wide is the victim. With per-CPU queues only the queue
	// owner's schedule() will find the task — preempting any other CPU
	// just makes it re-pick its own backlog while the woken task waits
	// out the owner's quantum — so the IPI goes to the owning CPU or
	// nowhere, exactly 2.6's resched_task(rq->curr) after enqueueing.
	candidates := m.cpus
	if len(m.rqLocks) > 1 {
		candidates = m.cpus[t.QIndex%len(m.cpus) : t.QIndex%len(m.cpus)+1]
	}
	var victim *CPU
	worst := 0
	for _, c := range candidates {
		if c.transitioning || c.current == nil || c.reschedSent || !t.AllowedOn(c.id) {
			continue // a decision is already in flight there
		}
		cur := c.current.Task
		if cur.RealTime() && !t.RealTime() {
			continue
		}
		if m.preempter != nil {
			if victim == nil && m.preempter.PreemptsCurr(t, cur) {
				victim = c
			}
			continue
		}
		gw := sched.Goodness(m.env.Epoch, t, c.id, cur.MM)
		gc := sched.Goodness(m.env.Epoch, cur, c.id, cur.MM)
		if gw-gc > worst {
			worst = gw - gc
			victim = c
		}
	}
	if victim != nil {
		m.stats.Preemptions++
		victim.sendResched()
		return
	}
	// No idle CPU and no preemption victim. If a candidate CPU is mid
	// context-switch, flag it so its dispatch path re-runs schedule():
	// otherwise a wake landing in a transition-to-idle window would be
	// lost — the task would sit runnable on the queue with every CPU
	// idle and nothing left to trigger a schedule. An offline CPU can be
	// transitioning too (its last dispatch still in flight), but its
	// dispatch path will not schedule, so it cannot carry the wake.
	for _, c := range candidates {
		if c.online && c.transitioning && t.AllowedOn(c.id) {
			c.needResched = true
			return
		}
	}
}

// tickRescueNeeded reports whether an idle CPU's timer tick found queued
// work that nothing in flight is going to deliver — a lost kick. It must
// stay false in every healthy state, so it rules out each benign way a
// task can be queued while this CPU idles:
//
//   - a resched IPI is in flight somewhere (this CPU or another): the
//     landing will run schedule() and the wakes that piggybacked on it
//     name the queued tasks;
//   - a CPU is mid context-switch: its dispatch path re-examines the
//     queue (needResched) or the completed decision already claimed the
//     task;
//   - the task is affinity-barred from this CPU: not this CPU's to run;
//   - under per-CPU queues, the task waits on another CPU's queue: its
//     owner will reach it, and declining to steal it (e.g. a short
//     remote-domain queue under the cross-domain steal threshold) is
//     balancing policy, not a lost wake-up.
//
// What remains — an allowed, unclaimed task on a queue this CPU's
// schedule() would pick from, with no delivery in flight anywhere — is a
// bug in some enqueue-to-idle path. The tick rescues it (and the audited
// IdleTickRescues counter records the bug) rather than hanging.
func (m *Machine) tickRescueNeeded(c *CPU) bool {
	if m.sched.Runnable() == 0 {
		return false
	}
	for _, o := range m.cpus {
		if o.reschedSent || (o.online && o.transitioning) {
			return false
		}
	}
	perCPU := len(m.rqLocks) > 1
	for _, p := range m.procs {
		if p.exited {
			continue
		}
		t := p.Task
		if !t.Runnable() || t.HasCPU || !t.AllowedOn(c.id) || !m.sched.OnRunqueue(t) {
			continue
		}
		if perCPU && t.QIndex != c.id {
			continue
		}
		if !t.RealTime() && t.Counter(m.env.Epoch) == 0 {
			// Exhausted quantum: the task is waiting for the next global
			// recalculation, not for a kick. The epoch policies park it in
			// the zero-counter section and legitimately leave this CPU
			// idle while any selectable task exists anywhere — schedule()
			// here would return idle too, so a tick could not have
			// rescued it. The recalc itself owes the kick when it
			// finally runs (kickIdleBacklog). RT tasks are exempt:
			// FIFO/RR selection ignores the counter.
			continue
		}
		return true
	}
	return false
}

// kickIdleAllowed kicks one idle CPU the task may run on, preferring
// the cache-warm last processor. Unlike the wake path (rescheduleIdle)
// it never preempts. Used for a task that stayed runnable through a
// schedule() that picked someone else.
func (m *Machine) kickIdleAllowed(t *task.Task) {
	if t.EverRan && t.AllowedOn(t.Processor) {
		if c := m.cpus[t.Processor]; c.isIdle() && !c.reschedSent {
			c.kickIdle()
			return
		}
	}
	for _, c := range m.cpus {
		if t.AllowedOn(c.id) && c.isIdle() && !c.reschedSent {
			c.kickIdle()
			return
		}
	}
}

// kickIdleBacklog kicks every idle CPU that has allowed, charged, queued
// work with no delivery in flight. Called after a schedule() decision
// that dispatched a task or bumped the epoch — the two events that make
// previously undeliverable work deliverable: a recalculation recharges
// all queued tasks in bulk, and a dispatch both consumes the one kick
// that several wake-ups may have piggybacked on and can uncover backlog
// the chooser was hiding (popping a pinned task off a shared heap top
// exposes the element beneath it to every CPU). Exactly one task leaves
// with the deciding CPU; any other idle CPU with usable work is owed a
// kick, or it sits stranded until its (possibly parked) tick polls.
//
// The filters mirror tickRescueNeeded: exhausted tasks wait for the next
// recalculation, not a kick (RT selection ignores the counter), and under
// per-CPU queues only the owning CPU's schedule() will find the task. A
// kicked CPU whose policy still cannot see the work declines and goes
// back to idle without re-arming anything, so the sweep cannot loop.
//
// A CPU mid-transition to idle is not isIdle() yet but will be the
// moment its switch completes — and with its tick parked nothing will
// look at the queue again. A decision racing that window (another CPU's
// pop exposing backlog just as this one deschedules) must still deliver:
// flagging needResched makes the to-idle completion re-run schedule(),
// the same almost-idle handling rescheduleIdle uses.
func (m *Machine) kickIdleBacklog() {
	perCPU := len(m.rqLocks) > 1
	for _, o := range m.cpus {
		idle := o.isIdle()
		almostIdle := o.online && o.transitioning && o.dispatchNext == nil
		if (!idle && !almostIdle) || o.reschedSent {
			continue
		}
		for _, p := range m.procs {
			if p.exited {
				continue
			}
			t := p.Task
			if !t.Runnable() || t.HasCPU || !t.AllowedOn(o.id) || !m.sched.OnRunqueue(t) {
				continue
			}
			if perCPU && t.QIndex != o.id {
				continue
			}
			if !t.RealTime() && t.Counter(m.env.Epoch) == 0 {
				continue
			}
			if idle {
				o.kickIdle()
			} else {
				o.needResched = true
			}
			break
		}
	}
}

// SetAffinity pins a task to the CPUs in mask (bit i allows CPU i; zero
// allows all), re-filing it if it waits on a per-CPU queue. An explicit
// mask supersedes any cpuset fallback in effect; if the new mask names
// only offline CPUs, fallback applies to it immediately (the task runs
// anywhere until one of its CPUs returns).
func (m *Machine) SetAffinity(p *Proc, mask uint64) {
	t := p.Task
	queued := m.sched.OnRunqueue(t) && !t.HasCPU
	if queued {
		m.sched.DelFromRunqueue(t)
	}
	p.savedAffinity = 0
	t.CPUsAllowed = mask
	if mask != 0 && mask&m.env.OnlineMask() == 0 {
		p.savedAffinity = mask
		t.CPUsAllowed = 0
	}
	if queued {
		m.sched.AddToRunqueue(t)
		m.rescheduleIdle(p)
	}
}

// SetPolicy is sched_setscheduler: change a task's scheduling class and
// real-time priority at run time. Following 2.3.99, the task is moved to
// the front of its queue and the scheduler is given a chance to preempt.
func (m *Machine) SetPolicy(p *Proc, policy task.Policy, rtprio int) {
	if policy != task.Other && (rtprio < task.MinRTPriority || rtprio > task.MaxRTPriority) {
		panic("kernel: rt_priority out of range")
	}
	t := p.Task
	queued := m.sched.OnRunqueue(t) && !t.HasCPU
	if queued {
		m.sched.DelFromRunqueue(t)
	}
	t.Policy = policy
	if policy == task.Other {
		t.RTPriority = 0
	} else {
		t.RTPriority = rtprio
	}
	if queued {
		m.sched.AddToRunqueue(t)
		m.sched.MoveFirstRunqueue(t)
		m.rescheduleIdle(p)
	}
}

// SwitchPolicy hot-swaps the scheduling policy: it drains every queued
// task out of the current scheduler, builds a fresh one via factory, and
// imports the set atomically (in virtual time — the swap happens between
// events, so no CPU ever observes a half-populated queue). Returns the
// number of tasks handed over, queued plus running.
//
// The handoff has three hazards this function is careful about:
//
//  1. Bookkeeping conventions differ per policy (ELSC leaves zero-section
//     tags stale after removal, heapsched encodes membership in QZero), so
//     every live task — including ones currently blocked, whose stale tags
//     would otherwise resurface at their next wake-up — is normalized with
//     sched.ResetQueueState before the successor sees it.
//  2. Running tasks: most policies dequeue a dispatched task, but the
//     stock scheduler keeps it listed and counts it via NoteRunning. The
//     old policy is told to forget running tasks before the drain, and a
//     runningNoter successor is handed them back after the import.
//  3. The lock regime can change (global lock <-> per-CPU locks), so the
//     retired lock set's totals are folded into base accumulators and a
//     fresh set is built to the successor's shape.
//
// Call from between-events contexts only (an engine event callback or
// between Run calls), never from inside a syscall effect.
func (m *Machine) SwitchPolicy(factory SchedulerFactory) int {
	now := m.eng.Now()
	old := m.sched

	// Detach running tasks from the old policy's bookkeeping. HasCPU
	// tasks are exactly the CPUs' current and in-flight dispatch procs.
	var running []*task.Task
	for _, c := range m.cpus {
		if c.current != nil {
			running = append(running, c.current.Task)
		}
		if c.dispatchNext != nil {
			running = append(running, c.dispatchNext.Task)
		}
	}
	for _, t := range running {
		old.DelFromRunqueue(t)
	}

	// Drain the queued set and verify nothing was lost on the way out.
	want := old.Runnable()
	exported := old.ExportRunnable()
	if len(exported) != want || old.Runnable() != 0 {
		panic(fmt.Sprintf("kernel: %s exported %d tasks, had %d queued, %d left",
			old.Name(), len(exported), want, old.Runnable()))
	}

	// Normalize every live task. Exported ones already are; this catches
	// running and blocked tasks whose scheduler-private fields still
	// carry the old policy's conventions.
	for _, p := range m.procs {
		if !p.exited {
			sched.ResetQueueState(p.Task)
		}
	}

	// Retire the old lock set, keeping its totals, and rebuild everything
	// policy-shaped: the scheduler, its optional kernel hooks, the locks.
	for i := range m.rqLocks {
		m.lockAcqBase += m.rqLocks[i].acquisitions
		m.lockContBase += m.rqLocks[i].contended
	}
	m.cfg.NewScheduler = factory
	m.sched = factory(m.env)
	m.noter, _ = m.sched.(runningNoter)
	m.preempter, _ = m.sched.(preemptComparer)
	m.ticker, _ = m.sched.(tickPreempter)
	m.placer, _ = m.sched.(wakePlacer)
	nlocks := 1
	if pc, ok := m.sched.(perCPUQueues); ok && pc.PerCPU() {
		nlocks = m.cfg.CPUs
	}
	m.rqLocks = make([]spinlock, nlocks)

	// Import in export order, then hand running tasks to a successor that
	// keeps them listed (the stock scheduler; AddToRunqueue sees HasCPU
	// and counts them as running, so Runnable is unaffected).
	for _, t := range exported {
		m.sched.AddToRunqueue(t)
	}
	if m.noter != nil {
		for _, t := range running {
			m.sched.AddToRunqueue(t)
		}
	}
	if got := m.sched.Runnable(); got != len(exported) {
		panic(fmt.Sprintf("kernel: %s imported %d runnable tasks, want %d",
			m.sched.Name(), got, len(exported)))
	}

	// The swap's critical section: one pass over the migrated set under
	// the new lock regime.
	m.rqLocks[0].bump(now, m.env.Cost.LockOp+
		uint64(len(exported)+len(running))*m.env.Cost.AddRunqueue)
	m.stats.PolicySwitches++

	// The imported backlog may be visible to CPUs that went idle under
	// the old policy (or sit behind a transitioning CPU's dispatch);
	// nothing else will trigger their schedule(), so kick them here.
	m.nudgeOnline()
	return len(exported) + len(running)
}

// procOf maps a task back to its proc.
func (m *Machine) procOf(t *task.Task) *Proc {
	p := m.byTask[t]
	if p == nil {
		panic("kernel: task with no proc")
	}
	return p
}
