package kernel_test

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/o1"
	"elsc/internal/workload/volano"
)

// TestWakeIdlePlacementsCounted: a syscall-heavy workload on a machine
// with idle capacity produces SD_WAKE_IDLE placements under o1, none
// under the WakeIdleOff ablation, and the counter reaches the stats
// registry either way.
func TestWakeIdlePlacementsCounted(t *testing.T) {
	run := func(off bool) *kernel.Stats {
		m := kernel.NewMachine(kernel.Config{CPUs: 4, SMP: true, Topology: sched.UniformTopology(4, 2),
			Seed: 42, MaxCycles: 3000 * kernel.DefaultHz,
			NewScheduler: func(env *sched.Env) sched.Scheduler {
				return o1.NewWithConfig(env, o1.Config{WakeIdleOff: off})
			}})
		volano.Build(m, volano.Config{Rooms: 1, UsersPerRoom: 4, MessagesPerUser: 4}).Run()
		return m.Stats()
	}
	on := run(false)
	if on.WakeIdlePlacements == 0 {
		t.Fatal("no SD_WAKE_IDLE placements on an underloaded machine")
	}
	if off := run(true); off.WakeIdlePlacements != 0 {
		t.Fatalf("WakeIdleOff ablation still placed %d wakes", off.WakeIdlePlacements)
	}
	if on.Registry().Counter("wake_idle_placements").Value() != on.WakeIdlePlacements {
		t.Fatal("wake_idle_placements missing from the stats registry")
	}
}
