package kernel

import "elsc/internal/sim"

// Program is the behavior of a simulated task: a state machine that yields
// one Action at a time. Step is called when the previous action has
// completed; returning nil ends the task (equivalent to Exit).
//
// Programs run on simulated CPUs, so they must not block or sleep in Go;
// all waiting is expressed through actions.
type Program interface {
	Step(p *Proc) Action
}

// ProgramFunc adapts a plain function to the Program interface.
type ProgramFunc func(p *Proc) Action

// Step implements Program.
func (f ProgramFunc) Step(p *Proc) Action { return f(p) }

// Action is one step of simulated task behavior. The concrete types are
// Compute, Syscall, Yield, Sleep, and Exit.
type Action interface {
	isAction()
}

// Compute burns CPU cycles doing user-mode work. It is interruptible by
// quantum expiry and preemption; the remainder carries over.
type Compute struct {
	Cycles uint64
}

func (Compute) isAction() {}

// Syscall crosses into the kernel: Cost cycles of system time, then the
// effect (Exec or Fn) runs at the completion instant. The effect may
// complete the call (return Done) or block the task on a wait queue, in
// which case the kernel re-runs it after each wake-up — the
// condition-recheck loop of a Linux wait queue, tolerant of spurious
// wakeups.
//
// The closure form (Fn) is the convenient one for workloads. The prebound
// form (Exec plus the operand fields) is the allocation-free one for hot
// IPC paths: a static effect function receives the in-flight syscall value
// itself, so per-call operands ride in the Syscall instead of a captured
// environment, and returning the action as a *Syscall pointer avoids the
// interface boxing a Syscall value pays. The kernel copies the Syscall
// into the proc's own storage the moment the action is consumed, so a
// shared scratch Syscall may be re-armed for the next call, and operand
// mutations across block/retry cycles (Reserved) stay private to the
// calling task.
type Syscall struct {
	Name string
	Cost uint64
	Fn   func(p *Proc, now sim.Time) Outcome

	// Exec, when non-nil, runs instead of Fn.
	Exec SyscallExec
	// Obj is the operation's target (an IPC queue, a mutex, ...).
	Obj any
	// Ptr is an output destination or auxiliary callback (a message
	// pointer, a deferred message constructor, ...).
	Ptr any
	// Flag is a boolean output destination (TryRecv's got).
	Flag *bool
	// Args carries scalar operands (message fields).
	Args [3]int64
	// Reserved marks a once-per-instance gate as already passed; it
	// survives block/retry cycles because it lives in the proc's own
	// copy of the syscall.
	Reserved bool
}

// SyscallExec is the closure-free form of a syscall effect. sc is the
// proc-private copy of the in-flight syscall, valid across retries.
type SyscallExec func(sc *Syscall, p *Proc, now sim.Time) Outcome

func (Syscall) isAction() {}

// Yield is sys_sched_yield: sets the SCHED_YIELD bit and calls schedule().
type Yield struct{}

func (Yield) isAction() {}

// Sleep blocks the task for a fixed virtual duration (e.g. simulated disk
// latency or a think time).
type Sleep struct {
	Cycles uint64
}

func (Sleep) isAction() {}

// Exit terminates the task.
type Exit struct{}

func (Exit) isAction() {}

// Outcome is the result of a Syscall's Fn.
type Outcome struct {
	// Wait, when non-nil, blocks the task on that wait queue; the
	// syscall is retried on wake-up.
	Wait *WaitQueue
	// Delay, when non-zero, keeps the caller executing in-kernel for
	// that many more cycles and then re-runs Fn — used to model spinning
	// on serialized kernel resources (e.g. the big kernel lock around
	// the 2.3.x network stack).
	Delay uint64
}

// Done completes the syscall.
func Done() Outcome { return Outcome{} }

// BlockOn suspends the caller on wq until woken.
func BlockOn(wq *WaitQueue) Outcome { return Outcome{Wait: wq} }

// DelayFor re-runs the syscall's Fn after d more cycles of kernel time.
func DelayFor(d uint64) Outcome { return Outcome{Delay: d} }
