package kernel

import "elsc/internal/sim"

// Program is the behavior of a simulated task: a state machine that yields
// one Action at a time. Step is called when the previous action has
// completed; returning nil ends the task (equivalent to Exit).
//
// Programs run on simulated CPUs, so they must not block or sleep in Go;
// all waiting is expressed through actions.
type Program interface {
	Step(p *Proc) Action
}

// ProgramFunc adapts a plain function to the Program interface.
type ProgramFunc func(p *Proc) Action

// Step implements Program.
func (f ProgramFunc) Step(p *Proc) Action { return f(p) }

// Action is one step of simulated task behavior. The concrete types are
// Compute, Syscall, Yield, Sleep, and Exit.
type Action interface {
	isAction()
}

// Compute burns CPU cycles doing user-mode work. It is interruptible by
// quantum expiry and preemption; the remainder carries over.
type Compute struct {
	Cycles uint64
}

func (Compute) isAction() {}

// Syscall crosses into the kernel: Cost cycles of system time, then Fn
// runs at the completion instant. Fn may complete the call (return Done)
// or block the task on a wait queue, in which case the kernel re-runs Fn
// after each wake-up — the condition-recheck loop of a Linux wait queue,
// tolerant of spurious wakeups.
type Syscall struct {
	Name string
	Cost uint64
	Fn   func(p *Proc, now sim.Time) Outcome
}

func (Syscall) isAction() {}

// Yield is sys_sched_yield: sets the SCHED_YIELD bit and calls schedule().
type Yield struct{}

func (Yield) isAction() {}

// Sleep blocks the task for a fixed virtual duration (e.g. simulated disk
// latency or a think time).
type Sleep struct {
	Cycles uint64
}

func (Sleep) isAction() {}

// Exit terminates the task.
type Exit struct{}

func (Exit) isAction() {}

// Outcome is the result of a Syscall's Fn.
type Outcome struct {
	// Wait, when non-nil, blocks the task on that wait queue; the
	// syscall is retried on wake-up.
	Wait *WaitQueue
	// Delay, when non-zero, keeps the caller executing in-kernel for
	// that many more cycles and then re-runs Fn — used to model spinning
	// on serialized kernel resources (e.g. the big kernel lock around
	// the 2.3.x network stack).
	Delay uint64
}

// Done completes the syscall.
func Done() Outcome { return Outcome{} }

// BlockOn suspends the caller on wq until woken.
func BlockOn(wq *WaitQueue) Outcome { return Outcome{Wait: wq} }

// DelayFor re-runs the syscall's Fn after d more cycles of kernel time.
func DelayFor(d uint64) Outcome { return Outcome{Delay: d} }
