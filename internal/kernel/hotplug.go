package kernel

import (
	"errors"

	"elsc/internal/sched"
	"elsc/internal/sim"
)

// Hotplug errors. Offline/Online refuse rather than panic on redundant or
// impossible requests, so fault-injection harnesses can fire blind.
var (
	// ErrCPUOffline: OfflineCPU of a CPU that is already offline.
	ErrCPUOffline = errors.New("kernel: CPU already offline")
	// ErrCPUOnline: OnlineCPU of a CPU that is already online.
	ErrCPUOnline = errors.New("kernel: CPU already online")
	// ErrLastCPU: OfflineCPU would leave the machine with no processor.
	ErrLastCPU = errors.New("kernel: cannot offline the last online CPU")
)

// OfflineCPU hot-unplugs processor id, like Linux's cpu_down: the running
// task is preempted and re-queued, the policy's per-CPU structures are
// drained and their tasks re-homed, tasks affined solely to dead CPUs fall
// back to running anywhere (cpuset semantics, undone when a CPU of theirs
// returns), and the CPU's timer chain parks itself. The preallocated
// tick/IPI/dispatch events are never cancelled — a cancelled event stays
// queued until the heap prunes it and cannot be re-armed — they instead
// no-op or re-route while the CPU is offline, so hotplug is O(queue
// length) with zero allocation in steady state.
//
// Call from between-events contexts only (an engine event callback or
// between Run calls), never from inside a syscall effect. The last online
// CPU refuses with ErrLastCPU.
func (m *Machine) OfflineCPU(id int) error {
	if id < 0 || id >= len(m.cpus) {
		panic("kernel: OfflineCPU out of range")
	}
	c := m.cpus[id]
	if !c.online {
		return ErrCPUOffline
	}
	if m.env.OnlineCount() == 1 {
		return ErrLastCPU
	}
	now := m.eng.Now()
	if c.isIdle() {
		// Close the idle stretch before the clock stops counting it.
		d := uint64(now - c.idleFrom)
		m.stats.IdleCycles += d
		c.idleAccum += d
	}
	if c.tickParked {
		// Likewise the tickless residency stretch: offline time is
		// accounted separately. tickNext keeps its grid anchor so
		// OnlineCPU can tell an idle-parked chain from one that died
		// offline.
		c.ticklessAccum += uint64(now - c.ticklessFrom)
	}
	c.online = false
	m.env.SetCPUOnline(id, false)
	c.offlineFrom = now
	c.offlines++
	m.stats.CPUOfflines++

	// Cpuset fallback first: a task whose mask names only dead CPUs must
	// be widened before any re-homing below asks the policy to place it,
	// or it would be filed somewhere it can never be picked from.
	m.applyAffinityFallback()

	// Preempt and detach the victim's running task.
	if p := c.current; p != nil {
		t := p.Task
		c.interrupt(now)
		t.InvSwitches++
		if m.noter != nil && t.OnRunqueue() {
			m.noter.NoteRunning(t, false)
		}
		t.HasCPU = false
		p.workStamp = c.work
		c.current = nil
		if t.Runnable() {
			if m.sched.OnRunqueue(t) {
				m.sched.DelFromRunqueue(t)
			}
			sched.ResetQueueState(t)
			m.sched.AddToRunqueue(t)
			m.rqLockOfTask(t).bump(now, m.env.Cost.AddRunqueue+m.env.Cost.LockOp)
		}
	}
	// A dispatch in flight is left alone: dispatchArrive sees the offline
	// CPU and releases its claimed task back to the queue. The pending
	// needResched it might have carried dies with the schedulable state.
	c.needResched = false

	// Drain the policy's per-CPU structures and re-file each task; the
	// policy's online-aware placement re-homes them onto survivors.
	m.drainBuf = m.sched.DrainCPU(id, m.drainBuf[:0])
	for i, t := range m.drainBuf {
		m.sched.AddToRunqueue(t)
		m.rqLockOfTask(t).bump(now, m.env.Cost.AddRunqueue+m.env.Cost.LockOp)
		m.drainBuf[i] = nil
	}

	// Anything that moved is invisible to CPUs already idle or mid-switch;
	// nothing else would trigger their schedule().
	m.nudgeOnline()
	return nil
}

// OnlineCPU hot-plugs processor id back in: its timer chain is restarted
// (under tickless idle it stays parked — the CPU returns idle, and the
// first dispatch that puts work here re-arms the chain exactly once),
// tasks the offline forced into cpuset fallback are re-pinned if their own
// mask is satisfiable again, and the CPU rejoins placement and balancing
// (the online mask bit is what the policies consult).
func (m *Machine) OnlineCPU(id int) error {
	if id < 0 || id >= len(m.cpus) {
		panic("kernel: OnlineCPU out of range")
	}
	c := m.cpus[id]
	if c.online {
		return ErrCPUOnline
	}
	now := m.eng.Now()
	c.online = true
	c.wdStallFlagged = false
	m.env.SetCPUOnline(id, true)
	d := uint64(now - c.offlineFrom)
	c.offlineAccum += d
	m.stats.CPUOnlines++
	m.stats.OfflineCycles += d
	c.idleFrom = now
	if !c.tickEv.Pending() {
		// The parked timer chain. (If the CPU returned within one period
		// the chain never parked and is still pending — re-arming a
		// queued event would panic.)
		if m.cfg.TicklessOff {
			// Restart it one period out, as the pre-tickless kernel did.
			m.eng.ScheduleAfter(c.tickEv, m.cfg.TickCycles)
			c.tickParked = false
			c.tickNext = 0
		} else {
			// Tickless: the CPU comes back idle, so the chain stays
			// parked — it re-arms once, at the first reschedule that
			// puts work here, not a second time at online. Bring the
			// grid anchor forward first:
			//   - a chain idle-parked before the offline skips the
			//     instants it would have idled through up to the
			//     unplug (its always-on twin fired no-ops there, then
			//     died at its first offline firing);
			//   - a chain that died offline (tickNext 0), or whose
			//     anchor the offline stretch outran, re-anchors at
			//     now+period — exactly what the always-on chain's
			//     online re-arm would have made it.
			if c.tickNext != 0 && c.tickNext <= c.offlineFrom {
				k := uint64(c.offlineFrom-c.tickNext)/m.cfg.TickCycles + 1
				m.stats.TicksSkipped += k
				c.tickNext += sim.Time(k * m.cfg.TickCycles)
			}
			if c.tickNext == 0 || now >= c.tickNext {
				c.tickNext = now + sim.Time(m.cfg.TickCycles)
			}
			c.tickParked = true
			c.ticklessFrom = now
		}
	}
	m.restoreAffinity()
	if c.isIdle() && m.sched.Runnable() > 0 {
		c.kickIdle()
	}
	return nil
}

// applyAffinityFallback widens the mask of every live task affined solely
// to offline CPUs, per Linux cpuset fallback: rather than strand the task
// unschedulable, let it run anywhere and remember its own mask for
// restoreAffinity.
func (m *Machine) applyAffinityFallback() {
	mask := m.env.OnlineMask()
	for _, p := range m.procs {
		if p.exited {
			continue
		}
		t := p.Task
		if t.CPUsAllowed == 0 || t.CPUsAllowed&mask != 0 {
			continue
		}
		if p.savedAffinity == 0 {
			p.savedAffinity = t.CPUsAllowed
		}
		queued := m.sched.OnRunqueue(t) && !t.HasCPU
		if queued {
			m.sched.DelFromRunqueue(t)
		}
		t.CPUsAllowed = 0
		if queued {
			m.sched.AddToRunqueue(t)
		}
	}
}

// restoreAffinity re-pins tasks whose cpuset fallback is over: their own
// saved mask names at least one online CPU again.
func (m *Machine) restoreAffinity() {
	mask := m.env.OnlineMask()
	for _, p := range m.procs {
		if p.exited || p.savedAffinity == 0 || p.savedAffinity&mask == 0 {
			continue
		}
		t := p.Task
		queued := m.sched.OnRunqueue(t) && !t.HasCPU
		if queued {
			m.sched.DelFromRunqueue(t)
		}
		t.CPUsAllowed = p.savedAffinity
		p.savedAffinity = 0
		if queued {
			m.sched.AddToRunqueue(t)
			m.rescheduleIdle(p)
		}
	}
}

// nudgeOnline makes queued work visible to every online CPU that will not
// otherwise run schedule(): idle ones are kicked, mid-switch ones flagged
// to re-pick at dispatch. Used after bulk queue changes (hotplug drains,
// policy switches) and to re-route IPIs that landed on an offline CPU.
func (m *Machine) nudgeOnline() {
	if m.sched.Runnable() == 0 {
		return
	}
	for _, c := range m.cpus {
		if c.isIdle() {
			c.kickIdle()
		} else if c.online && c.transitioning {
			c.needResched = true
		}
	}
}

// CPUIsOnline reports whether processor id is online.
func (m *Machine) CPUIsOnline(id int) bool { return m.cpus[id].online }

// OnlineCount returns the number of online processors.
func (m *Machine) OnlineCount() int { return m.env.OnlineCount() }

// NumCPU returns the machine's processor count, online or not.
func (m *Machine) NumCPU() int { return len(m.cpus) }
