package kernel

import "elsc/internal/sim"

// spinlock is the timing model for the global run-queue spinlock. The
// simulation itself is single threaded; this models only the *time* the
// lock costs. An acquirer arriving at time t while the lock is held until
// f spins for f-t cycles. 2.3.99 holds this one lock across the entire
// schedule() scan, so the hold time of the stock scheduler grows with the
// run-queue length, and with four processors the spin time becomes the
// dominant scheduler cost — the collapse visible in the paper's Figure 3.
type spinlock struct {
	freeAt sim.Time

	acquisitions uint64
	contended    uint64
	spinCycles   uint64
}

// acquire returns the instant the lock is obtained and the cycles spent
// spinning for it.
func (l *spinlock) acquire(now sim.Time) (start sim.Time, spin uint64) {
	l.acquisitions++
	if l.freeAt > now {
		spin = uint64(l.freeAt - now)
		l.spinCycles += spin
		l.contended++
		return l.freeAt, spin
	}
	return now, 0
}

// release marks the lock free at time at (acquire instant + hold).
func (l *spinlock) release(at sim.Time) {
	if at > l.freeAt {
		l.freeAt = at
	}
}

// bump models a short critical section by an actor whose own timeline is
// not delayed (e.g. the wake-up path inserting into the run queue): the
// lock is pushed busy for hold cycles starting no earlier than now, which
// delays subsequent schedule() calls. This is a deliberate one-sided
// simplification, documented in DESIGN.md.
func (l *spinlock) bump(now sim.Time, hold uint64) {
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	l.acquisitions++
	l.release(start + sim.Time(hold))
}
