package kernel

import (
	"fmt"
	"sort"
	"strings"
)

// PS renders a ps/top-style table of every task in the system. The paper
// notes that under Linux's one-to-one thread model "all processes and
// threads are visible in various system status commands such as ps and
// top" — this is that view of the simulated machine, useful for examples
// and debugging workloads.
func (m *Machine) PS() string {
	procs := append([]*Proc(nil), m.procs...)
	sort.Slice(procs, func(i, j int) bool {
		return procs[i].Task.UserCycles+procs[i].Task.SystemCycles >
			procs[j].Task.UserCycles+procs[j].Task.SystemCycles
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%5s %-20s %-14s %4s %4s %10s %10s %7s %6s %s\n",
		"PID", "NAME", "STATE", "PRI", "CNT", "USER", "SYS", "SWITCH", "MIGR", "MM")
	for _, p := range procs {
		t := p.Task
		state := t.State.String()
		if p.exited {
			state = "exited"
		} else if t.HasCPU {
			state = fmt.Sprintf("on-cpu%d", t.Processor)
		}
		mm := "-"
		if t.MM != nil {
			mm = t.MM.Name
		}
		pri := fmt.Sprintf("%d", t.Priority)
		if t.RealTime() {
			pri = fmt.Sprintf("rt%d", t.RTPriority)
		}
		fmt.Fprintf(&b, "%5d %-20s %-14s %4s %4d %10d %10d %7d %6d %s\n",
			t.ID, clip(t.Name, 20), state, pri, t.RawCounter(),
			t.UserCycles, t.SystemCycles,
			t.VolSwitches+t.InvSwitches, t.Migrations, mm)
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "~"
}

// TopConsumers returns the n tasks with the most CPU time, descending.
func (m *Machine) TopConsumers(n int) []*Proc {
	procs := append([]*Proc(nil), m.procs...)
	sort.Slice(procs, func(i, j int) bool {
		return procs[i].Task.UserCycles+procs[i].Task.SystemCycles >
			procs[j].Task.UserCycles+procs[j].Task.SystemCycles
	})
	if n > len(procs) {
		n = len(procs)
	}
	return procs[:n]
}
