package kernel

import "elsc/internal/klist"

// WaitQueue is a FIFO queue of blocked tasks, the analogue of the kernel's
// wait_queue_head_t. Tasks block on it from a Syscall's Fn via BlockOn and
// are released with Machine.WakeOne / Machine.WakeAll (try_to_wake_up).
type WaitQueue struct {
	Name    string
	waiters klist.Head
}

// NewWaitQueue returns an empty wait queue.
func NewWaitQueue(name string) *WaitQueue {
	wq := &WaitQueue{Name: name}
	wq.waiters.Init()
	return wq
}

// Len returns the number of blocked tasks.
func (wq *WaitQueue) Len() int { return wq.waiters.Len() }

// enqueue appends p, FIFO order.
func (wq *WaitQueue) enqueue(p *Proc) {
	if p.waitingOn != nil {
		panic("kernel: task blocking while already on a wait queue")
	}
	p.waitingOn = wq
	wq.waiters.PushBack(&p.WaitNode)
}

// dequeueFirst removes and returns the longest waiter, or nil.
func (wq *WaitQueue) dequeueFirst() *Proc {
	n := wq.waiters.First()
	if n == nil {
		return nil
	}
	wq.waiters.Remove(n)
	p := n.Owner.(*Proc)
	p.waitingOn = nil
	return p
}

// remove unlinks a specific waiter (e.g. a timed-out sleeper).
func (wq *WaitQueue) remove(p *Proc) {
	if p.waitingOn != wq {
		return
	}
	wq.waiters.Remove(&p.WaitNode)
	p.waitingOn = nil
}
