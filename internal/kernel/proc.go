package kernel

import (
	"elsc/internal/klist"
	"elsc/internal/sim"
	"elsc/internal/task"
)

// Proc binds a task to its program and carries the execution state the
// kernel needs between dispatches: the remaining cycles of the current
// action, an in-flight syscall awaiting its effect or retry, wait-queue
// linkage, and the cache-model stamp.
type Proc struct {
	Task *task.Task
	M    *Machine

	prog Program

	// remaining is what is left of the current work segment.
	remaining uint64
	// onDone runs when the segment completes; nil means ask the program
	// for the next action.
	onDone func(c *CPU, now sim.Time)
	// syscall is the in-flight blocking syscall to (re)run; it points at
	// syscallBuf, the proc's own storage, so arming a syscall does not
	// allocate.
	syscall    *Syscall
	syscallBuf Syscall
	// sleepDur carries a Sleep action's duration to its completion
	// handler (a static function, not a per-sleep closure).
	sleepDur uint64

	// WaitNode links the proc into a WaitQueue.
	WaitNode  klist.Node
	waitingOn *WaitQueue
	sleepEv   *sim.Event
	// sleepWakeFn is the timer-expiry callback, bound once at spawn.
	sleepWakeFn func(now sim.Time)

	// sleepFrom is when the task last blocked (wait queue or timer); the
	// wake path turns now-sleepFrom into sleep_avg interactivity credit.
	sleepFrom sim.Time

	// workStamp is the owning CPU's work clock when this proc last left
	// it, for the cache-refill model.
	workStamp uint64

	// NUMA memory model. memDomain is the cache domain holding the
	// task's working set — first-touch at its first dispatch. Execution
	// in any other domain is stretched by Cost.RemoteAccessPct; after
	// RehomeCycles of consecutive execution in one foreign domain the
	// pages migrate there (memDomain rebinds), as AutoNUMA-style page
	// migration would.
	memDomain   int // -1 until first dispatch
	foreignDom  int
	foreignWork uint64

	// segWork and segWall describe the armed segment: segWork cycles of
	// real work scheduled to take segWall cycles of wall time (equal
	// unless executing remotely).
	segWork uint64
	segWall uint64

	// savedAffinity holds the task's own CPU mask while cpuset fallback
	// has it widened: when every CPU the mask names is offline, the
	// kernel lets the task run anywhere (Linux cpuset semantics) and
	// re-pins it here as soon as one of its CPUs returns. Zero means no
	// fallback is in effect.
	savedAffinity uint64

	// Watchdog stamps. runnableSince is when the task last became
	// runnable (spawn or wake); lastDispatched is when it last won a
	// schedule() decision. The starvation clock reads from whichever is
	// later. wdFlagged marks an already-reported starvation/lost-wake
	// episode (cleared at the next dispatch) so one episode is one
	// violation, not one per sweep.
	runnableSince  sim.Time
	lastDispatched sim.Time
	wdFlagged      bool

	exited bool
	// ExitCode is user-settable before Exit for workload bookkeeping.
	ExitCode int

	// Steps counts program actions completed, for tests and traces.
	Steps uint64
}

// sleepWake fires when the proc's sleep timer expires.
func (p *Proc) sleepWake(sim.Time) {
	p.sleepEv = nil
	p.M.wake(p)
}

// Exited reports whether the proc has terminated.
func (p *Proc) Exited() bool { return p.exited }

// Blocked reports whether the proc is asleep on a wait queue or timer.
func (p *Proc) Blocked() bool { return p.waitingOn != nil || p.sleepEv != nil }
