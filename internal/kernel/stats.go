package kernel

import (
	"fmt"
	"strings"

	"elsc/internal/stats"
)

// Stats aggregates everything the paper measures, machine-wide. The
// per-schedule distributions feed Figure 5, Recalcs feeds Figure 2,
// SchedCalls and Migrations feed Figure 6, and the cycle totals feed the
// kernel-profile claim of §4 (37-55% of kernel time in the scheduler).
type Stats struct {
	// Scheduler behavior.
	SchedCalls            uint64     // entries into schedule()
	SchedCycles           uint64     // cycles inside schedule() proper
	SpinCycles            uint64     // cycles spinning on the run-queue lock before schedule()
	Examined              uint64     // tasks examined across all schedule() calls
	Recalcs               uint64     // counter-recalculation loop entries
	Migrations            uint64     // tasks dispatched on a CPU other than their last
	CrossDomainMigrations uint64     // migrations that also crossed a cache domain
	PerSchedule           stats.Dist // cycles per schedule() call (incl. lock spin)
	ExaminedDist          stats.Dist // tasks examined per schedule() call
	IdleSwitches          uint64     // schedule() picked the idle task
	Preemptions           uint64     // wake-up preempted a running task
	WakeCalls             uint64     // try_to_wake_up invocations
	YieldCalls            uint64     // sys_sched_yield invocations
	QuantumExpiry         uint64     // tick found the quantum exhausted
	WakeIdlePlacements    uint64     // wakes filed onto an idle CPU in the waker's cache domain
	TimesliceRotations    uint64     // granularity preemptions: same-level round-robin inside a quantum
	TickPreemptions       uint64     // tick preemptions: a better-level task was waiting on the queue

	// Context switching.
	CtxSwitches  uint64 // dispatches of a task other than prev
	MMSwitches   uint64 // dispatches that changed address space
	CacheCycles  uint64 // cache-refill penalty cycles charged
	RemoteCycles uint64 // extra wall cycles from executing outside the memory domain

	// Time split.
	TaskCycles    uint64 // user work executed
	SyscallCycles uint64 // syscall cost segments executed
	IdleCycles    uint64 // CPU time with nothing to run
	TickCycles    uint64 // timer-interrupt overhead (accounted, not timed)

	// Lock totals.
	LockAcquisitions uint64
	LockContended    uint64

	// PolicySwitches counts hot scheduler replacements (SwitchPolicy).
	PolicySwitches uint64

	// Hotplug. CPUOfflines/CPUOnlines count transitions; OfflineCycles
	// totals completed offline stretches machine-wide.
	CPUOfflines   uint64
	CPUOnlines    uint64
	OfflineCycles uint64

	// Tickless idle (NO_HZ). TicksSkipped counts timer-tick firings the
	// parked chains elided — each one an event and a TickCost the
	// pre-tickless kernel paid to find an idle CPU with nothing to do.
	// IdleTickRescues counts ticks that found a queued task stranded on
	// an idle CPU with no kick in flight: every enqueue-to-idle path owes
	// a real kick, so this is an audited error counter, asserted zero by
	// the conformance and fuzz census audits.
	TicksSkipped    uint64
	IdleTickRescues uint64

	// Watchdog violation counts (see WatchdogConfig). WatchdogEnabled
	// records whether the watchdog was armed, gating the registry lines
	// so runs without it render byte-identically to before it existed.
	WatchdogEnabled     bool
	WatchdogStarvations uint64
	WatchdogLostWakeups uint64
	WatchdogCPUStalls   uint64

	// Harness scale: engine events dispatched over the run — the unit the
	// zero-allocation event engine is priced in. Deterministic for a seed
	// (it is pure virtual-time behavior); BENCH_wallclock.json divides
	// host wall-clock by it to get ns/event. EventsWheel/EventsHeap split
	// the total by which structure dispatched each event — the timer
	// wheel's O(1) fast path versus the min-heap fallback — so a routing
	// regression (periodic events spilling into the heap) is visible per
	// cell.
	EventsFired uint64
	EventsWheel uint64
	EventsHeap  uint64
}

// CyclesPerSchedule returns the Figure 5 metric: mean cycles per
// schedule() invocation, including lock spin.
func (s *Stats) CyclesPerSchedule() float64 { return s.PerSchedule.Mean() }

// ExaminedPerSchedule returns the second Figure 5 metric.
func (s *Stats) ExaminedPerSchedule() float64 { return s.ExaminedDist.Mean() }

// KernelCycles returns cycles spent in kernel code: scheduling (incl.
// spin) plus syscalls.
func (s *Stats) KernelCycles() uint64 {
	return s.SchedCycles + s.SpinCycles + s.SyscallCycles + s.TickCycles
}

// SchedulerShareOfKernel returns the fraction of kernel time spent in the
// scheduler — the paper's §4 profile statistic (0.37-0.55 under
// VolanoMark on the stock scheduler).
func (s *Stats) SchedulerShareOfKernel() float64 {
	k := s.KernelCycles()
	if k == 0 {
		return 0
	}
	return float64(s.SchedCycles+s.SpinCycles) / float64(k)
}

// Registry exports the stats as a /proc-style registry, mirroring how the
// paper exposed its instrumentation through procfs.
func (s *Stats) Registry() *stats.Registry {
	r := stats.NewRegistry()
	set := func(name string, v uint64) { r.Counter(name).Add(v) }
	set("sched_calls", s.SchedCalls)
	set("sched_cycles", s.SchedCycles)
	set("sched_lock_spin_cycles", s.SpinCycles)
	set("sched_tasks_examined", s.Examined)
	set("sched_recalc_entries", s.Recalcs)
	set("sched_migrations", s.Migrations)
	set("sched_cross_domain_migrations", s.CrossDomainMigrations)
	set("sched_idle_switches", s.IdleSwitches)
	set("sched_preemptions", s.Preemptions)
	set("wake_calls", s.WakeCalls)
	set("yield_calls", s.YieldCalls)
	set("quantum_expiries", s.QuantumExpiry)
	set("wake_idle_placements", s.WakeIdlePlacements)
	set("timeslice_rotations", s.TimesliceRotations)
	set("tick_preemptions", s.TickPreemptions)
	set("ctx_switches", s.CtxSwitches)
	set("mm_switches", s.MMSwitches)
	set("cache_refill_cycles", s.CacheCycles)
	set("remote_access_cycles", s.RemoteCycles)
	set("task_cycles", s.TaskCycles)
	set("syscall_cycles", s.SyscallCycles)
	set("idle_cycles", s.IdleCycles)
	set("tick_cycles", s.TickCycles)
	set("rq_lock_acquisitions", s.LockAcquisitions)
	set("rq_lock_contended", s.LockContended)
	set("policy_switches", s.PolicySwitches)
	// Hotplug and watchdog counters appear only on runs that used them,
	// so every pre-hotplug render stays byte-identical.
	if s.CPUOfflines != 0 || s.CPUOnlines != 0 {
		set("cpu_offlines", s.CPUOfflines)
		set("cpu_onlines", s.CPUOnlines)
		set("cpu_offline_cycles", s.OfflineCycles)
	}
	if s.WatchdogEnabled {
		set("watchdog_starvations", s.WatchdogStarvations)
		set("watchdog_lost_wakeups", s.WatchdogLostWakeups)
		set("watchdog_cpu_stalls", s.WatchdogCPUStalls)
	}
	// Tickless counters follow the same conditional rule: a run where no
	// chain ever parked (TicklessOff, or a machine never idle at a tick)
	// renders byte-identically to before tickless existed.
	if s.TicksSkipped != 0 || s.IdleTickRescues != 0 {
		set("ticks_skipped", s.TicksSkipped)
		set("idle_tick_rescues", s.IdleTickRescues)
	}
	set("events_fired", s.EventsFired)
	set("events_wheel", s.EventsWheel)
	set("events_heap", s.EventsHeap)
	*r.Dist("cycles_per_schedule") = s.PerSchedule
	*r.Dist("examined_per_schedule") = s.ExaminedDist
	return r
}

// Summary renders a short human-readable digest.
func (s *Stats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule() calls:        %d\n", s.SchedCalls)
	fmt.Fprintf(&b, "cycles/schedule (mean):  %.0f\n", s.CyclesPerSchedule())
	fmt.Fprintf(&b, "examined/schedule:       %.1f\n", s.ExaminedPerSchedule())
	fmt.Fprintf(&b, "recalc loop entries:     %d\n", s.Recalcs)
	fmt.Fprintf(&b, "migrations:              %d\n", s.Migrations)
	fmt.Fprintf(&b, "cross-domain migrations: %d\n", s.CrossDomainMigrations)
	fmt.Fprintf(&b, "scheduler share of kernel: %.1f%%\n", 100*s.SchedulerShareOfKernel())
	return b.String()
}
