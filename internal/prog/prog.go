// Package prog provides combinators for building simulated task programs
// (kernel.Program values) declaratively: sequences, bounded and unbounded
// loops, and lock-protected critical sections over ipc.YieldMutex. More
// intricate behaviors (the VolanoMark server threads, for instance)
// implement kernel.Program directly; these combinators cover the common
// shapes.
package prog

import (
	"elsc/internal/ipc"
	"elsc/internal/kernel"
)

// Step produces the next action for a program fragment. Returning nil
// means the fragment is finished.
type Step func(p *kernel.Proc) kernel.Action

// Do lifts a fixed action into a single-shot step.
func Do(a kernel.Action) Step {
	done := false
	return func(p *kernel.Proc) kernel.Action {
		if done {
			return nil
		}
		done = true
		return a
	}
}

// DoFunc lifts an action factory into a single-shot step; the factory runs
// when the step is reached, so it can observe earlier effects.
func DoFunc(f func(p *kernel.Proc) kernel.Action) Step {
	done := false
	return func(p *kernel.Proc) kernel.Action {
		if done {
			return nil
		}
		done = true
		return f(p)
	}
}

// Compute is a single compute burst.
func Compute(cycles uint64) Step { return Do(kernel.Compute{Cycles: cycles}) }

// Sleep is a single timed block.
func Sleep(cycles uint64) Step { return Do(kernel.Sleep{Cycles: cycles}) }

// Yield is a single sys_sched_yield.
func Yield() Step { return Do(kernel.Yield{}) }

// program runs a sequence of step factories with restart support, so the
// same program value can be used inside loops.
type program struct {
	build   func() []Step
	steps   []Step
	idx     int
	rounds  int
	maxIter int // 0 = once, -1 = forever, n = n times
}

// Step implements kernel.Program.
func (pr *program) Step(p *kernel.Proc) kernel.Action {
	for {
		if pr.steps == nil {
			pr.steps = pr.build()
			pr.idx = 0
		}
		for pr.idx < len(pr.steps) {
			a := pr.steps[pr.idx](p)
			if a != nil {
				return a
			}
			pr.idx++
		}
		// One pass done.
		pr.rounds++
		pr.steps = nil
		switch {
		case pr.maxIter == 0:
			return nil
		case pr.maxIter > 0 && pr.rounds >= pr.maxIter:
			return nil
		}
	}
}

// Seq runs the steps once, in order, then exits.
//
// The step values are built fresh via the closure rules of the caller: Seq
// is for one-shot programs. Use Loop/Forever for repetition.
func Seq(steps ...Step) kernel.Program {
	return &program{build: func() []Step { return steps }, maxIter: 0}
}

// Loop runs the body n times. body is a factory invoked at the start of
// each iteration, so per-iteration state (Do's single-shot latches) resets.
func Loop(n int, body func() []Step) kernel.Program {
	return &program{build: func() []Step { return body() }, maxIter: n}
}

// Forever repeats the body until the machine stops or the task is killed.
func Forever(body func() []Step) kernel.Program {
	return &program{build: func() []Step { return body() }, maxIter: -1}
}

// LockYield acquires mu JVM-style: try-lock, and on failure call
// sys_sched_yield and try again, suspending after spinLimit failed rounds.
// The returned steps busy the scheduler in exactly the way the paper's §4
// describes while staying starvation-free.
func LockYield(mu *ipc.YieldMutex) Step {
	const spinLimit = 3
	var got bool
	state := 0 // 0 = try, 1 = check result / maybe yield, 2 = suspended acquire done
	tries := 0
	return func(p *kernel.Proc) kernel.Action {
		for {
			switch state {
			case 0:
				if tries >= spinLimit {
					state = 2
					return mu.LockBlocking()
				}
				tries++
				state = 1
				got = false
				return mu.TryLock(&got)
			case 1:
				if got {
					state, tries = 0, 0 // reset for reuse in loops
					return nil
				}
				state = 0
				return kernel.Yield{}
			default: // LockBlocking returned holding the lock
				state, tries = 0, 0
				return nil
			}
		}
	}
}

// Unlock releases mu.
func Unlock(mu *ipc.YieldMutex) Step {
	done := false
	return func(p *kernel.Proc) kernel.Action {
		if done {
			done = false
			return nil
		}
		done = true
		return mu.Unlock()
	}
}

// Critical wraps steps in LockYield/Unlock.
func Critical(mu *ipc.YieldMutex, steps ...Step) []Step {
	out := []Step{LockYield(mu)}
	out = append(out, steps...)
	out = append(out, Unlock(mu))
	return out
}
