package prog

import (
	"testing"

	"elsc/internal/ipc"
	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
)

func newMachine() *kernel.Machine {
	return kernel.NewMachine(kernel.Config{
		CPUs:         1,
		Seed:         3,
		NewScheduler: func(env *sched.Env) sched.Scheduler { return elsc.New(env) },
		MaxCycles:    10 * kernel.DefaultHz,
	})
}

func TestSeqRunsOnceInOrder(t *testing.T) {
	m := newMachine()
	var order []int
	note := func(i int) Step {
		return DoFunc(func(p *kernel.Proc) kernel.Action {
			order = append(order, i)
			return kernel.Compute{Cycles: 100}
		})
	}
	p := m.Spawn("seq", nil, Seq(note(1), note(2), note(3)))
	m.Run(func() bool { return p.Exited() })
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if !p.Exited() {
		t.Fatal("seq program must exit after one pass")
	}
}

func TestLoopRunsNTimes(t *testing.T) {
	m := newMachine()
	count := 0
	p := m.Spawn("loop", nil, Loop(7, func() []Step {
		return []Step{
			DoFunc(func(p *kernel.Proc) kernel.Action {
				count++
				return kernel.Compute{Cycles: 50}
			}),
		}
	}))
	m.Run(func() bool { return p.Exited() })
	if count != 7 {
		t.Fatalf("loop body ran %d times, want 7", count)
	}
}

func TestForeverRunsUntilHorizon(t *testing.T) {
	m := kernel.NewMachine(kernel.Config{
		CPUs:         1,
		Seed:         3,
		NewScheduler: func(env *sched.Env) sched.Scheduler { return elsc.New(env) },
		MaxCycles:    kernel.DefaultTickCycles,
	})
	count := 0
	m.Spawn("fv", nil, Forever(func() []Step {
		return []Step{Compute(100_000), DoFunc(func(p *kernel.Proc) kernel.Action {
			count++
			return kernel.Compute{Cycles: 1}
		})}
	}))
	m.Run(nil)
	if count < 10 {
		t.Fatalf("forever body ran only %d times before horizon", count)
	}
}

func TestComputeSleepYieldSteps(t *testing.T) {
	m := newMachine()
	p := m.Spawn("mix", nil, Seq(
		Compute(1000),
		Sleep(5000),
		Yield(),
		Compute(1000),
	))
	m.Run(func() bool { return p.Exited() })
	if !p.Exited() {
		t.Fatal("program did not complete")
	}
	if p.Task.UserCycles != 2000 {
		t.Fatalf("user cycles = %d, want 2000", p.Task.UserCycles)
	}
	if m.Stats().YieldCalls != 1 {
		t.Fatalf("yields = %d, want 1", m.Stats().YieldCalls)
	}
}

func TestCriticalSectionExcludes(t *testing.T) {
	m := newMachine()
	mu := ipc.NewYieldMutex("m", 0)
	inside, maxInside := 0, 0
	enter := DoFunc(func(p *kernel.Proc) kernel.Action {
		inside++
		if inside > maxInside {
			maxInside = inside
		}
		return kernel.Compute{Cycles: 3000}
	})
	_ = enter
	mkWorker := func() kernel.Program {
		return Loop(5, func() []Step {
			body := []Step{
				DoFunc(func(p *kernel.Proc) kernel.Action {
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					return kernel.Compute{Cycles: 3000}
				}),
				DoFunc(func(p *kernel.Proc) kernel.Action {
					inside--
					return kernel.Compute{Cycles: 1}
				}),
			}
			return Critical(mu, body...)
		})
	}
	a := m.Spawn("a", nil, mkWorker())
	b := m.Spawn("b", nil, mkWorker())
	m.Run(func() bool { return a.Exited() && b.Exited() })
	if maxInside != 1 {
		t.Fatalf("critical section held by %d tasks at once", maxInside)
	}
	if mu.Acquisitions() != 10 {
		t.Fatalf("acquisitions = %d, want 10", mu.Acquisitions())
	}
	if mu.Locked() {
		t.Fatal("mutex left locked")
	}
}

func TestLockYieldSpinsUnderContention(t *testing.T) {
	m := newMachine()
	mu := ipc.NewYieldMutex("m", 0)
	mkWorker := func() kernel.Program {
		return Loop(10, func() []Step {
			return Critical(mu, Sleep(2000)) // hold across a block
		})
	}
	a := m.Spawn("a", nil, mkWorker())
	b := m.Spawn("b", nil, mkWorker())
	m.Run(func() bool { return a.Exited() && b.Exited() })
	if mu.Spins() == 0 {
		t.Fatal("expected spin-yields under contention")
	}
	if m.Stats().YieldCalls == 0 {
		t.Fatal("expected sys_sched_yield calls")
	}
}

func TestDoFuncSingleShot(t *testing.T) {
	m := newMachine()
	calls := 0
	p := m.Spawn("x", nil, Seq(
		DoFunc(func(p *kernel.Proc) kernel.Action {
			calls++
			return kernel.Compute{Cycles: 10}
		}),
		Compute(10),
	))
	m.Run(func() bool { return p.Exited() })
	if calls != 1 {
		t.Fatalf("DoFunc ran %d times, want 1", calls)
	}
}
