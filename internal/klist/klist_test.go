package klist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type item struct {
	id   int
	node Node
}

func newItem(id int) *item {
	it := &item{id: id}
	it.node.Owner = it
	return it
}

func ids(h *Head) []int {
	var out []int
	h.ForEach(func(n *Node) bool {
		out = append(out, n.Owner.(*item).id)
		return true
	})
	return out
}

func wantIDs(t *testing.T, h *Head, want ...int) {
	t.Helper()
	got := ids(h)
	if len(got) != len(want) {
		t.Fatalf("list = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list = %v, want %v", got, want)
		}
	}
	if h.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(want))
	}
}

func TestEmptyList(t *testing.T) {
	h := NewHead()
	if !h.Empty() {
		t.Fatal("new list not empty")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
	if h.First() != nil || h.Last() != nil {
		t.Fatal("First/Last on empty list should be nil")
	}
}

func TestPushFrontOrdersLikeRunqueue(t *testing.T) {
	// add_to_runqueue puts new tasks at the beginning, so the most
	// recently woken task is First.
	h := NewHead()
	for i := 1; i <= 3; i++ {
		h.PushFront(&newItem(i).node)
	}
	wantIDs(t, h, 3, 2, 1)
}

func TestPushBack(t *testing.T) {
	h := NewHead()
	for i := 1; i <= 3; i++ {
		h.PushBack(&newItem(i).node)
	}
	wantIDs(t, h, 1, 2, 3)
}

func TestRemoveMiddle(t *testing.T) {
	h := NewHead()
	items := make([]*item, 5)
	for i := range items {
		items[i] = newItem(i)
		h.PushBack(&items[i].node)
	}
	h.Remove(&items[2].node)
	wantIDs(t, h, 0, 1, 3, 4)
	if items[2].node.OnList() {
		t.Fatal("removed node still claims to be on a list")
	}
}

func TestRemoveAllBothEnds(t *testing.T) {
	h := NewHead()
	items := make([]*item, 6)
	for i := range items {
		items[i] = newItem(i)
		h.PushBack(&items[i].node)
	}
	for !h.Empty() {
		h.Remove(h.First())
		if h.Empty() {
			break
		}
		h.Remove(h.Last())
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after draining", h.Len())
	}
}

func TestMoveFrontBack(t *testing.T) {
	h := NewHead()
	items := make([]*item, 4)
	for i := range items {
		items[i] = newItem(i)
		h.PushBack(&items[i].node)
	}
	h.MoveFront(&items[2].node)
	wantIDs(t, h, 2, 0, 1, 3)
	h.MoveBack(&items[0].node)
	wantIDs(t, h, 2, 1, 3, 0)
}

func TestInsertBeforeAfter(t *testing.T) {
	h := NewHead()
	a, b, c := newItem(1), newItem(2), newItem(3)
	h.PushBack(&a.node)
	h.PushBack(&c.node)
	h.InsertBefore(&b.node, &c.node)
	wantIDs(t, h, 1, 2, 3)
	d := newItem(4)
	h.InsertAfter(&d.node, &b.node)
	wantIDs(t, h, 1, 2, 4, 3)
}

func TestNextPrevNavigation(t *testing.T) {
	h := NewHead()
	a, b := newItem(1), newItem(2)
	h.PushBack(&a.node)
	h.PushBack(&b.node)
	if a.node.Next() != &b.node {
		t.Fatal("a.Next should be b")
	}
	if b.node.Next() != nil {
		t.Fatal("b.Next should be nil (last)")
	}
	if b.node.Prev() != &a.node {
		t.Fatal("b.Prev should be a")
	}
	if a.node.Prev() != nil {
		t.Fatal("a.Prev should be nil (first)")
	}
}

func TestDoubleInsertPanics(t *testing.T) {
	h := NewHead()
	a := newItem(1)
	h.PushBack(&a.node)
	defer func() {
		if recover() == nil {
			t.Fatal("inserting an on-list node should panic")
		}
	}()
	h.PushFront(&a.node)
}

func TestRemoveOffListPanics(t *testing.T) {
	h := NewHead()
	a := newItem(1)
	defer func() {
		if recover() == nil {
			t.Fatal("removing an off-list node should panic")
		}
	}()
	h.Remove(&a.node)
}

func TestCrossListRemovePanics(t *testing.T) {
	h1, h2 := NewHead(), NewHead()
	a := newItem(1)
	h1.PushBack(&a.node)
	defer func() {
		if recover() == nil {
			t.Fatal("removing from the wrong list should panic")
		}
	}()
	h2.Remove(&a.node)
}

func TestUnlinkKeepNextELSCConvention(t *testing.T) {
	// The ELSC scheduler pulls the running task out of its table list but
	// leaves next non-nil so the rest of the kernel still sees it as "on
	// the run queue" (paper §5.1 footnote 3).
	h := NewHead()
	a, b, c := newItem(1), newItem(2), newItem(3)
	h.PushBack(&a.node)
	h.PushBack(&b.node)
	h.PushBack(&c.node)

	got := b.node.UnlinkKeepNext()
	if got != h {
		t.Fatal("UnlinkKeepNext should return the owning head")
	}
	wantIDs(t, h, 1, 3)
	if !b.node.OnList() {
		t.Fatal("logically-queued node must still report OnList (next != nil)")
	}
	if b.node.InListProper() {
		t.Fatal("logically-queued node must not be physically in a list")
	}
	b.node.ResetDangling()
	if b.node.OnList() {
		t.Fatal("after ResetDangling node must be fully off list")
	}
	h.PushFront(&b.node)
	wantIDs(t, h, 2, 1, 3)
}

func TestResetDanglingOnListPanics(t *testing.T) {
	h := NewHead()
	a := newItem(1)
	h.PushBack(&a.node)
	defer func() {
		if recover() == nil {
			t.Fatal("ResetDangling on an in-list node should panic")
		}
	}()
	a.node.ResetDangling()
}

func TestForEachEarlyStop(t *testing.T) {
	h := NewHead()
	for i := 0; i < 5; i++ {
		h.PushBack(&newItem(i).node)
	}
	count := 0
	h.ForEach(func(n *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("visited %d nodes, want 3", count)
	}
}

func TestForEachSafeRemoval(t *testing.T) {
	h := NewHead()
	items := make([]*item, 6)
	for i := range items {
		items[i] = newItem(i)
		h.PushBack(&items[i].node)
	}
	h.ForEachSafe(func(n *Node) bool {
		if n.Owner.(*item).id%2 == 0 {
			h.Remove(n)
		}
		return true
	})
	wantIDs(t, h, 1, 3, 5)
}

func TestInitResets(t *testing.T) {
	h := NewHead()
	h.PushBack(&newItem(1).node)
	h.Init()
	if !h.Empty() || h.Len() != 0 {
		t.Fatal("Init should empty the list")
	}
}

// checkRing validates the structural invariants of the ring.
func checkRing(t *testing.T, h *Head) {
	t.Helper()
	n := 0
	h.ForEach(func(node *Node) bool {
		if node.head != h {
			t.Fatal("node.head mismatch")
		}
		if node.next.prev != node || node.prev.next != node {
			t.Fatal("broken ring links")
		}
		n++
		return true
	})
	if n != h.Len() {
		t.Fatalf("walked %d nodes, Len says %d", n, h.Len())
	}
}

// TestQuickAgainstSliceModel drives the list with random operations and
// compares against a plain slice reference model.
func TestQuickAgainstSliceModel(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHead()
		var model []*item
		pool := make([]*item, 64)
		for i := range pool {
			pool[i] = newItem(i)
		}
		onList := make(map[int]bool)

		for _, op := range opsRaw {
			switch op % 6 {
			case 0: // push front
				it := pool[rng.Intn(len(pool))]
				if onList[it.id] {
					continue
				}
				h.PushFront(&it.node)
				model = append([]*item{it}, model...)
				onList[it.id] = true
			case 1: // push back
				it := pool[rng.Intn(len(pool))]
				if onList[it.id] {
					continue
				}
				h.PushBack(&it.node)
				model = append(model, it)
				onList[it.id] = true
			case 2: // remove random element
				if len(model) == 0 {
					continue
				}
				i := rng.Intn(len(model))
				it := model[i]
				h.Remove(&it.node)
				model = append(model[:i], model[i+1:]...)
				onList[it.id] = false
			case 3: // move front
				if len(model) == 0 {
					continue
				}
				i := rng.Intn(len(model))
				it := model[i]
				h.MoveFront(&it.node)
				model = append(model[:i], model[i+1:]...)
				model = append([]*item{it}, model...)
			case 4: // move back
				if len(model) == 0 {
					continue
				}
				i := rng.Intn(len(model))
				it := model[i]
				h.MoveBack(&it.node)
				model = append(model[:i], model[i+1:]...)
				model = append(model, it)
			case 5: // check first/last
				if len(model) == 0 {
					if h.First() != nil {
						return false
					}
					continue
				}
				if h.First().Owner.(*item) != model[0] {
					return false
				}
				if h.Last().Owner.(*item) != model[len(model)-1] {
					return false
				}
			}
			checkRing(t, h)
			got := ids(h)
			if len(got) != len(model) {
				return false
			}
			for i := range got {
				if got[i] != model[i].id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
