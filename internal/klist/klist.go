// Package klist provides an intrusive circular doubly linked list modeled
// on the Linux kernel's struct list_head.
//
// Every list is a ring of Node values threaded through a sentinel head.
// Payload structures embed a Node and are recovered from it via the Owner
// pointer, mirroring the kernel's container_of idiom without unsafe
// arithmetic. An empty node (Next == Prev == nil) is "off list", matching
// the kernel convention the paper relies on: a task's run_list next pointer
// is nil exactly when the task is not on the run queue, and the ELSC
// scheduler additionally nils only Prev to mark "on the run queue but not in
// any table list" (paper §5.1, footnote 3).
//
// The zero value of Head is not ready to use; call Init (or NewHead).
package klist

// Node is one link in a circular doubly linked list. Embed it in the
// structure being listed and set Owner to the embedding value.
type Node struct {
	next, prev *Node
	// Owner points back to the structure that embeds this Node. It is
	// opaque to the list machinery and returned by Head iteration
	// helpers.
	Owner any
	// head identifies the sentinel this node is linked under, so that
	// membership checks and removal can verify bookkeeping in tests.
	head *Head
}

// Head is the sentinel of a circular doubly linked list. A fresh Head must
// be initialized with Init before use.
type Head struct {
	root Node
	len  int
}

// NewHead returns an initialized, empty list head.
func NewHead() *Head {
	h := new(Head)
	h.Init()
	return h
}

// Init makes (or resets) h to an empty list. Any nodes previously on the
// list are abandoned without being unlinked.
func (h *Head) Init() {
	h.root.next = &h.root
	h.root.prev = &h.root
	h.root.head = h
	h.root.Owner = nil
	h.len = 0
}

// Empty reports whether the list has no elements.
func (h *Head) Empty() bool { return h.root.next == &h.root }

// Len returns the number of elements on the list in O(1).
func (h *Head) Len() int { return h.len }

// First returns the first node on the list, or nil if the list is empty.
func (h *Head) First() *Node {
	if h.Empty() {
		return nil
	}
	return h.root.next
}

// Last returns the last node on the list, or nil if the list is empty.
func (h *Head) Last() *Node {
	if h.Empty() {
		return nil
	}
	return h.root.prev
}

// insert links n between prev and next.
func (h *Head) insert(n, prev, next *Node) {
	if n.OnList() {
		panic("klist: inserting node that is already on a list")
	}
	n.prev = prev
	n.next = next
	prev.next = n
	next.prev = n
	n.head = h
	h.len++
}

// PushFront adds n to the front of the list (list_add). The paper's
// add_to_runqueue places newly woken tasks here.
func (h *Head) PushFront(n *Node) { h.insert(n, &h.root, h.root.next) }

// PushBack adds n to the end of the list (list_add_tail). The ELSC
// scheduler appends predicted-counter (exhausted) tasks here.
func (h *Head) PushBack(n *Node) { h.insert(n, h.root.prev, &h.root) }

// InsertBefore links n immediately before at, which must be on this list.
func (h *Head) InsertBefore(n, at *Node) {
	if at.head != h {
		panic("klist: InsertBefore anchor not on this list")
	}
	h.insert(n, at.prev, at)
}

// InsertAfter links n immediately after at, which must be on this list.
func (h *Head) InsertAfter(n, at *Node) {
	if at.head != h {
		panic("klist: InsertAfter anchor not on this list")
	}
	h.insert(n, at, at.next)
}

// Remove unlinks n from the list (list_del). The node is fully detached:
// both link pointers become nil, like the run-queue convention where
// next == nil means "not on the run queue".
func (h *Head) Remove(n *Node) {
	if n.head != h || !n.OnList() {
		panic("klist: removing node that is not on this list")
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	n.next = nil
	n.prev = nil
	n.head = nil
	h.len--
}

// MoveFront unlinks n and re-adds it at the front of this same list.
func (h *Head) MoveFront(n *Node) {
	h.Remove(n)
	h.PushFront(n)
}

// MoveBack unlinks n and re-adds it at the back of this same list.
func (h *Head) MoveBack(n *Node) {
	h.Remove(n)
	h.PushBack(n)
}

// ForEach calls fn for each node from front to back. fn must not modify
// the list; use ForEachSafe if it might remove the visited node.
func (h *Head) ForEach(fn func(*Node) bool) {
	for n := h.root.next; n != &h.root; n = n.next {
		if !fn(n) {
			return
		}
	}
}

// ForEachSafe iterates front to back, tolerating removal of the visited
// node by fn (list_for_each_safe).
func (h *Head) ForEachSafe(fn func(*Node) bool) {
	for n, next := h.root.next, h.root.next.next; n != &h.root; n, next = next, next.next {
		if !fn(n) {
			return
		}
	}
}

// Owners returns the Owner of every node, front to back. Intended for
// tests and diagnostics.
func (h *Head) Owners() []any {
	out := make([]any, 0, h.len)
	h.ForEach(func(n *Node) bool {
		out = append(out, n.Owner)
		return true
	})
	return out
}

// OnList reports whether n is currently linked on some list.
func (n *Node) OnList() bool { return n.next != nil }

// List returns the Head n is linked under, or nil.
func (n *Node) List() *Head {
	if !n.OnList() {
		return nil
	}
	return n.head
}

// Next returns the node after n on its list, or nil if n is last or off
// list.
func (n *Node) Next() *Node {
	if !n.OnList() || n.next == &n.head.root {
		return nil
	}
	return n.next
}

// Prev returns the node before n on its list, or nil if n is first or off
// list.
func (n *Node) Prev() *Node {
	if n.prev == nil || n.prev == &n.head.root {
		return nil
	}
	return n.prev
}

// DetachPrevOnly clears only the Prev pointer, leaving Next intact. This
// mirrors the ELSC trick (paper §5.1): after the scheduler manually pulls a
// running task out of its table list, the rest of the kernel must still
// believe the task is "on the run queue" (next != nil) while the table knows
// it is in no list (prev == nil). The node must first be unlinked from its
// neighbors with UnlinkKeepNext.
func (n *Node) DetachPrevOnly() {
	n.prev = nil
	n.head = nil
}

// UnlinkKeepNext splices n out of its list but leaves n.next pointing at
// its former successor, as the ELSC manual dequeue does before
// DetachPrevOnly. Returns the Head it was removed from.
func (n *Node) UnlinkKeepNext() *Head {
	h := n.head
	if h == nil || !n.OnList() {
		panic("klist: UnlinkKeepNext on node not on a list")
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	h.len--
	// Keep n.next as a dangling marker of "still logically queued"; drop
	// prev and head via DetachPrevOnly.
	n.DetachPrevOnly()
	return h
}

// InListProper reports whether the node is linked AND has both pointers,
// i.e. it is physically present in a list (not merely marked logically
// queued via UnlinkKeepNext).
func (n *Node) InListProper() bool { return n.next != nil && n.prev != nil }

// ResetDangling clears a node left dangling by UnlinkKeepNext so it can be
// inserted again. Panics if the node is physically on a list.
func (n *Node) ResetDangling() {
	if n.InListProper() {
		panic("klist: ResetDangling on node still in a list")
	}
	n.next = nil
	n.prev = nil
	n.head = nil
}
