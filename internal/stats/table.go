package stats

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table renders aligned text tables in the style of the paper's tables and
// figure data series. It is the output layer for cmd/sweep and the
// experiment harness.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the formatted data rows, in insertion order.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// MarshalJSON renders the table as {"title", "headers", "rows"} so
// machine consumers (the sweep CLI's -json flag, benchmark trackers) get
// the same data the text renderer shows.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, t.rows})
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatDuration renders a cycle count at the given clock rate as m:ss.cc,
// the format of the paper's Table 2 ("6:41.41").
func FormatDuration(cycles uint64, hz uint64) string {
	if hz == 0 {
		return "0:00.00"
	}
	centis := cycles * 100 / hz
	m := centis / 6000
	s := (centis % 6000) / 100
	c := centis % 100
	return fmt.Sprintf("%d:%02d.%02d", m, s, c)
}
