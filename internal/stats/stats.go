// Package stats provides the counters and summaries used to reproduce the
// paper's tables and figures, plus a /proc-style text rendering.
//
// The paper instruments both schedulers and exposes the numbers through the
// proc file system ("we also collected statistics about what the scheduler
// was doing and exposed them through the proc file system", §6). This
// package is the analogue: cheap counters updated on the hot path and a
// Registry that renders them as text.
package stats

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Dist accumulates a distribution of integer samples with O(1) updates:
// count, sum, min, max, and power-of-two buckets for a coarse histogram.
type Dist struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [64]uint64 // bucket i counts samples with bit length i
}

// Observe records one sample.
func (d *Dist) Observe(v uint64) {
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
	d.count++
	d.sum += v
	d.buckets[bitLen(v)]++
}

// Count returns the number of samples.
func (d *Dist) Count() uint64 { return d.count }

// Sum returns the sum of all samples.
func (d *Dist) Sum() uint64 { return d.sum }

// Min returns the smallest sample, or 0 if empty.
func (d *Dist) Min() uint64 { return d.min }

// Max returns the largest sample, or 0 if empty.
func (d *Dist) Max() uint64 { return d.max }

// Mean returns the average sample, or 0 if empty.
func (d *Dist) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.count)
}

// Reset clears the distribution.
func (d *Dist) Reset() { *d = Dist{} }

// Histogram returns non-empty (bucketLow, count) pairs, ascending.
func (d *Dist) Histogram() []BucketCount {
	var out []BucketCount
	for i, c := range d.buckets {
		if c == 0 {
			continue
		}
		lo := uint64(0)
		if i > 0 {
			lo = 1 << (i - 1)
		}
		out = append(out, BucketCount{Low: lo, Count: c})
	}
	return out
}

// BucketCount is one histogram bucket: samples in [Low, 2*Low).
type BucketCount struct {
	Low   uint64
	Count uint64
}

// ApproxPercentile estimates the q-quantile (0 < q <= 1) from the
// power-of-two buckets, interpolating linearly inside the bucket that
// crosses the rank. Accuracy is bucket-limited (within a factor of two),
// which is enough for latency-tail reporting.
func (d *Dist) ApproxPercentile(q float64) uint64 {
	if d.count == 0 {
		return 0
	}
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	rank := q * float64(d.count)
	var seen float64
	for i, c := range d.buckets {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if rank <= next {
			lo := uint64(0)
			if i > 0 {
				lo = 1 << (i - 1)
			}
			hi := lo * 2
			if lo == 0 {
				hi = 1
			}
			frac := (rank - seen) / float64(c)
			v := float64(lo) + frac*float64(hi-lo)
			if uint64(v) > d.max {
				return d.max
			}
			return uint64(v)
		}
		seen = next
	}
	return d.max
}

// bitLen is the bucket index: one power-of-two bucket per bit length.
// bits.Len64 compiles to a single count-leading-zeros instruction, and
// Dist.Add sits on the per-schedule hot path.
func bitLen(v uint64) int { return bits.Len64(v) }

// Registry is a named collection of metrics rendered /proc-style:
// one "name value" line per metric, sorted by name.
type Registry struct {
	counters map[string]*Counter
	dists    map[string]*Dist
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		dists:    make(map[string]*Dist),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Dist returns the distribution registered under name, creating it if
// needed.
func (r *Registry) Dist(name string) *Dist {
	if d, ok := r.dists[name]; ok {
		return d
	}
	d := &Dist{}
	r.dists[name] = d
	r.order = append(r.order, name)
	return d
}

// Render formats every metric as "name value" lines, sorted by name,
// in the style of a /proc/<foo>/stats file.
func (r *Registry) Render() string {
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		if c, ok := r.counters[name]; ok {
			fmt.Fprintf(&b, "%s %d\n", name, c.Value())
		}
		if d, ok := r.dists[name]; ok {
			fmt.Fprintf(&b, "%s count=%d mean=%.1f min=%d max=%d\n",
				name, d.Count(), d.Mean(), d.Min(), d.Max())
		}
	}
	return b.String()
}
