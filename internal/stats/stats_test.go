package stats

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value should be 0")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset should zero")
	}
}

func TestDistBasics(t *testing.T) {
	var d Dist
	for _, v := range []uint64{4, 2, 6} {
		d.Observe(v)
	}
	if d.Count() != 3 || d.Sum() != 12 {
		t.Fatalf("count/sum = %d/%d, want 3/12", d.Count(), d.Sum())
	}
	if d.Min() != 2 || d.Max() != 6 {
		t.Fatalf("min/max = %d/%d, want 2/6", d.Min(), d.Max())
	}
	if d.Mean() != 4 {
		t.Fatalf("mean = %v, want 4", d.Mean())
	}
}

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatal("empty dist should report zeros")
	}
}

func TestDistZeroSample(t *testing.T) {
	var d Dist
	d.Observe(5)
	d.Observe(0)
	if d.Min() != 0 {
		t.Fatalf("min = %d, want 0", d.Min())
	}
}

func TestDistHistogramBuckets(t *testing.T) {
	var d Dist
	d.Observe(0) // bucket low 0
	d.Observe(1) // low 1
	d.Observe(2) // low 2
	d.Observe(3) // low 2
	d.Observe(4) // low 4
	h := d.Histogram()
	if len(h) != 4 {
		t.Fatalf("histogram %v, want 4 buckets", h)
	}
	if h[2].Low != 2 || h[2].Count != 2 {
		t.Fatalf("bucket[2] = %+v, want {2 2}", h[2])
	}
}

func TestDistMeanMatchesNaive(t *testing.T) {
	f := func(samples []uint16) bool {
		var d Dist
		var sum uint64
		for _, s := range samples {
			d.Observe(uint64(s))
			sum += uint64(s)
		}
		if len(samples) == 0 {
			return d.Mean() == 0
		}
		want := float64(sum) / float64(len(samples))
		diff := d.Mean() - want
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("sched_calls").Add(10)
	r.Counter("recalcs").Add(2)
	r.Dist("cycles_per_sched").Observe(100)
	out := r.Render()
	if !strings.Contains(out, "sched_calls 10") {
		t.Fatalf("render missing counter: %q", out)
	}
	if !strings.Contains(out, "recalcs 2") {
		t.Fatalf("render missing counter: %q", out)
	}
	if !strings.Contains(out, "cycles_per_sched count=1 mean=100.0") {
		t.Fatalf("render missing dist: %q", out)
	}
	// Sorted output: "cycles_per_sched" before "recalcs" before "sched_calls".
	if strings.Index(out, "cycles") > strings.Index(out, "recalcs") {
		t.Fatalf("render not sorted: %q", out)
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("same name should return same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counters out of sync")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Table 2: compile time", "Scheduler", "Time")
	tab.AddRow("Current - UP", "6:41.41")
	tab.AddRow("ELSC - UP", "6:38.68")
	out := tab.Render()
	if !strings.Contains(out, "Table 2") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "Current - UP  6:41.41") {
		t.Fatalf("misaligned row: %q", out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tab.NumRows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow(0.33333)
	if !strings.Contains(tab.Render(), "0.33") {
		t.Fatalf("float not rounded: %q", tab.Render())
	}
}

func TestFormatDuration(t *testing.T) {
	hz := uint64(400_000_000)
	cases := []struct {
		cycles uint64
		want   string
	}{
		{0, "0:00.00"},
		{hz, "0:01.00"},
		{hz * 61, "1:01.00"},
		{hz*401 + hz*41/100, "6:41.41"}, // the paper's Table 2 headline figure
	}
	for _, c := range cases {
		if got := FormatDuration(c.cycles, hz); got != c.want {
			t.Errorf("FormatDuration(%d) = %q, want %q", c.cycles, got, c.want)
		}
	}
}

func TestFormatDurationZeroHz(t *testing.T) {
	if got := FormatDuration(100, 0); got != "0:00.00" {
		t.Fatalf("got %q", got)
	}
}

func TestApproxPercentileEmpty(t *testing.T) {
	var d Dist
	if d.ApproxPercentile(0.5) != 0 {
		t.Fatal("empty dist percentile should be 0")
	}
}

func TestApproxPercentileBounds(t *testing.T) {
	var d Dist
	for _, v := range []uint64{1, 2, 4, 8, 1000} {
		d.Observe(v)
	}
	if got := d.ApproxPercentile(0); got != 1 {
		t.Fatalf("p0 = %d, want min 1", got)
	}
	if got := d.ApproxPercentile(1); got != 1000 {
		t.Fatalf("p100 = %d, want max 1000", got)
	}
}

func TestApproxPercentileWithinFactorTwo(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 10 {
			return true
		}
		var d Dist
		sorted := make([]uint64, len(raw))
		for i, v := range raw {
			val := uint64(v) + 1
			d.Observe(val)
			sorted[i] = val
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			idx := int(q * float64(len(sorted)))
			if idx >= len(sorted) {
				idx = len(sorted) - 1
			}
			exact := sorted[idx]
			got := d.ApproxPercentile(q)
			// Bucket-limited accuracy: within a factor of two, with
			// slack for interpolation at bucket edges.
			if got > exact*2+2 || exact > got*2+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxPercentileMonotone(t *testing.T) {
	var d Dist
	for i := uint64(1); i <= 1000; i++ {
		d.Observe(i)
	}
	last := uint64(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := d.ApproxPercentile(q)
		if v < last {
			t.Fatalf("percentile not monotone at q=%v: %d < %d", q, v, last)
		}
		last = v
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tab := NewTable("Demo", "A", "B")
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	out, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "Demo" || len(got.Headers) != 2 || len(got.Rows) != 2 {
		t.Fatalf("bad JSON shape: %s", out)
	}
	if got.Rows[0][1] != "2.50" {
		t.Fatalf("float cell = %q, want the renderer's %%.2f format", got.Rows[0][1])
	}
}

func TestTableRowsIsACopy(t *testing.T) {
	tab := NewTable("Demo", "A")
	tab.AddRow("v")
	rows := tab.Rows()
	rows[0][0] = "mutated"
	if tab.Rows()[0][0] != "v" {
		t.Fatal("Rows exposed internal state")
	}
}
