// Package task defines the simulated Linux task structure, mirroring the
// fields of 2.3.99-pre4's struct task_struct that matter to scheduling
// (the paper's Table 1):
//
//	volatile long      state
//	unsigned long      policy
//	long               counter
//	long               priority
//	struct mm_struct   *mm
//	struct list_head   run_list
//	int                has_cpu
//	int                processor
//
// plus rt_priority for real-time tasks. As in the paper, "task" means any
// thread in the system; Linux's one-to-one model makes no distinction
// between a user thread and a kernel thread.
package task

import (
	"fmt"

	"elsc/internal/klist"
)

// State is the task run state. Only Running tasks may sit on the run queue.
type State int

// The six task states of 2.3.99 (TASK_RUNNING etc.). Only the ones the
// scheduler inspects get distinct behavior here; the rest exist for
// fidelity of the task model.
const (
	Running State = iota // TASK_RUNNING: runnable (possibly executing)
	Interruptible
	Uninterruptible
	Zombie
	Stopped
	Swapping
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Interruptible:
		return "interruptible"
	case Uninterruptible:
		return "uninterruptible"
	case Zombie:
		return "zombie"
	case Stopped:
		return "stopped"
	case Swapping:
		return "swapping"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Policy is the scheduling class: SCHED_OTHER for normal timesharing
// tasks, SCHED_FIFO and SCHED_RR for real-time tasks.
type Policy int

const (
	// Other is SCHED_OTHER, the default timesharing policy.
	Other Policy = iota
	// FIFO is SCHED_FIFO: real-time, runs until it blocks or yields.
	FIFO
	// RR is SCHED_RR: real-time round robin on rt_priority.
	RR
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Other:
		return "SCHED_OTHER"
	case FIFO:
		return "SCHED_FIFO"
	case RR:
		return "SCHED_RR"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Priority bounds for SCHED_OTHER tasks (paper §3.1: "an integer between 1
// and 40. Higher numbers represent higher priority. Twenty is the default").
const (
	MinPriority     = 1
	MaxPriority     = 40
	DefaultPriority = 20

	// MaxCounter is the cap on a task's counter: "Counter ... can range
	// from zero to twice the task's priority."
	maxCounterFactor = 2

	// MinRTPriority and MaxRTPriority bound rt_priority ("it ranges from
	// 0 to 99 and is stored in a separate field called rt_priority").
	MinRTPriority = 0
	MaxRTPriority = 99
)

// MM models struct mm_struct: the address space a task runs in. Tasks
// sharing an MM are threads of the same process; the scheduler pays a
// cheaper context switch between them and goodness() awards a one point
// bonus (paper §3.3.1).
type MM struct {
	ID   int
	Name string
}

// Task is the simulated task structure.
type Task struct {
	ID   int
	Name string

	State  State
	Policy Policy
	// Yielded is the SCHED_YIELD bit carried in the policy field: set by
	// sys_sched_yield, consumed by the scheduler.
	Yielded bool

	// Priority is the static SCHED_OTHER priority (1..40, default 20).
	Priority int
	// RTPriority is the real-time priority (0..99) for FIFO/RR tasks.
	RTPriority int

	// counter is the remaining quantum in 10ms ticks, lazily synced to
	// the global recalculation epoch (see Epoch).
	counter      int
	counterEpoch uint64

	// sleepAvg is the Linux 2.5-style interactivity estimator: cycles of
	// credit accumulated while the task is blocked (CreditSleep, called by
	// the kernel's wake path) and drained 1:1 while it executes (DrainRun,
	// called by the kernel's work accounting). The kernel clamps the
	// credit at the cost model's MaxSleepAvg; policies map the ratio
	// sleepAvg/MaxSleepAvg onto a dynamic-priority bonus. A task that
	// sleeps most of the time rides at the ceiling, a CPU hog at zero.
	sleepAvg uint64

	// MM is the address space; nil for kernel threads.
	MM *MM

	// RunList is the run_list list_head linking the task into a run
	// queue (the single list for the stock scheduler, one of the 30
	// table lists for ELSC).
	RunList klist.Node

	// HasCPU is 1 while the task executes on a processor (paper §3.1).
	HasCPU bool
	// Processor is the CPU the task is executing on, or last executed on
	// (the scheduler's affinity bonus compares against it).
	Processor int
	// EverRan records whether the task has ever been dispatched, so the
	// affinity bonus is not granted against the zero-value Processor.
	EverRan bool
	// CPUsAllowed is the processor affinity mask (2.3.99's cpus_allowed,
	// consulted by can_schedule). Zero means "all CPUs"; bit i allows
	// CPU i.
	CPUsAllowed uint64

	// IsIdle marks the per-CPU idle task. Idle tasks are never placed on
	// a run queue and never win a goodness comparison; an empty run
	// queue "will schedule the idle task rather than trigger the
	// recalculation" (paper footnote 1).
	IsIdle bool

	// Scheduler-private bookkeeping, the analogue of the policy-specific
	// fields Linux keeps inside task_struct. ELSC uses these for its
	// table list index, zero/nonzero section tag, and the epoch stamp
	// that validates the tag (see internal/sched/elsc).
	QIndex int
	QZero  bool
	QStamp uint64

	// VRuntime is the weighted virtual runtime maintained by the fair
	// (cfs) policy: executed cycles scaled by 1024/weight, so heavier
	// tasks age slower. Like sleepAvg it is time accounting, not queue
	// state — sched.ResetQueueState leaves it alone, and the fair
	// policy's placement clamp bounds any staleness a task picks up
	// while blocked or parked under another policy.
	VRuntime uint64

	// Accounting, maintained by the kernel.
	UserCycles   uint64 // cycles spent in task (user) work
	SystemCycles uint64 // cycles charged for syscalls on its behalf
	Dispatches   uint64 // times chosen by schedule()
	Migrations   uint64 // dispatches on a CPU != previous CPU
	VolSwitches  uint64 // blocked or yielded
	InvSwitches  uint64 // preempted or quantum expired
}

// New returns a SCHED_OTHER task with default priority and a full quantum,
// in the Running state but not yet on any run queue.
func New(id int, name string, mm *MM, ep *Epoch) *Task {
	t := &Task{
		ID:       id,
		Name:     name,
		State:    Running,
		Policy:   Other,
		Priority: DefaultPriority,
		MM:       mm,
	}
	t.RunList.Owner = t
	if ep != nil {
		t.counterEpoch = ep.N()
	}
	t.counter = t.Priority
	return t
}

// NewRT returns a real-time task with the given policy and rt_priority.
func NewRT(id int, name string, policy Policy, rtprio int, ep *Epoch) *Task {
	if policy != FIFO && policy != RR {
		panic("task: NewRT requires FIFO or RR policy")
	}
	if rtprio < MinRTPriority || rtprio > MaxRTPriority {
		panic("task: rt_priority out of range")
	}
	t := New(id, name, nil, ep)
	t.Policy = policy
	t.RTPriority = rtprio
	return t
}

// RealTime reports whether the task is SCHED_FIFO or SCHED_RR.
func (t *Task) RealTime() bool { return t.Policy == FIFO || t.Policy == RR }

// Runnable reports whether the task is in TASK_RUNNING state.
func (t *Task) Runnable() bool { return t.State == Running }

// MaxCounter returns the cap on this task's counter (twice its priority).
func (t *Task) MaxCounter() int { return maxCounterFactor * t.Priority }

// Counter returns the remaining quantum in ticks after syncing any pending
// global recalculations from ep.
func (t *Task) Counter(ep *Epoch) int {
	t.SyncCounter(ep)
	return t.counter
}

// RawCounter returns the stored counter without epoch syncing. Intended
// for tests and diagnostics only.
func (t *Task) RawCounter() int { return t.counter }

// SetCounter stores the counter and stamps it current with respect to ep.
func (t *Task) SetCounter(ep *Epoch, v int) {
	if v < 0 {
		v = 0
	}
	t.counter = v
	if ep != nil {
		t.counterEpoch = ep.N()
	}
}

// TickDecrement consumes one tick of quantum. The caller must only invoke
// it on the running task. A recalculation performed by another processor
// must not refill the quantum this task was dispatched with: on a busy SMP
// machine every remote expiry can trigger a recalc, and applying
// counter/2+priority to the running task mid-quantum postpones its own
// expiry indefinitely — a queued task pinned to this CPU then starves
// behind an endlessly recharged hog (fuzzer seed 90875). So pending epochs
// are absorbed without the refill; the task picks up recharges the next
// time it is evaluated on a queue. Returns the new counter value.
func (t *Task) TickDecrement(ep *Epoch) int {
	if ep != nil {
		t.counterEpoch = ep.N()
	}
	if t.counter > 0 {
		t.counter--
	}
	return t.counter
}

// SyncCounter applies any recalculations that happened since the task was
// last touched: each global recalculation performs
//
//	counter = counter/2 + priority
//
// for every task in the system (2.3.99 schedule()'s recalculate loop). The
// recurrence reaches its fixed point (2*priority or 2*priority-1) within
// about 8 applications for any in-range start, so the loop is bounded even
// if thousands of epochs elapsed while the task slept.
func (t *Task) SyncCounter(ep *Epoch) {
	if ep == nil {
		return
	}
	n := ep.N()
	pending := n - t.counterEpoch
	if pending == 0 {
		return
	}
	// After the counter reaches a fixed point of c = c/2 + p further
	// applications change nothing; cap the work.
	const maxApply = 16
	if pending > maxApply {
		pending = maxApply
	}
	for i := uint64(0); i < pending; i++ {
		next := t.counter/2 + t.Priority
		if next == t.counter {
			break
		}
		t.counter = next
	}
	if max := t.MaxCounter(); t.counter > max {
		t.counter = max
	}
	t.counterEpoch = n
}

// SleepAvg returns the accumulated interactivity credit in cycles.
func (t *Task) SleepAvg() uint64 { return t.sleepAvg }

// CreditSleep adds slept cycles of blocked time to the interactivity
// estimator, clamped at max — the wake-side accounting hook.
func (t *Task) CreditSleep(slept, max uint64) {
	t.sleepAvg += slept
	if t.sleepAvg > max {
		t.sleepAvg = max
	}
}

// DrainRun consumes ran cycles of executed work from the interactivity
// estimator (floor zero) — the run-side accounting hook.
func (t *Task) DrainRun(ran uint64) {
	if ran >= t.sleepAvg {
		t.sleepAvg = 0
		return
	}
	t.sleepAvg -= ran
}

// PredictedCounter returns the counter value the task will have after the
// next global recalculation, without applying it. ELSC's
// add_to_runqueue uses this to pre-index exhausted tasks (paper §5.1).
func (t *Task) PredictedCounter(ep *Epoch) int {
	c := t.Counter(ep)
	v := c/2 + t.Priority
	if max := t.MaxCounter(); v > max {
		v = max
	}
	return v
}

// StaticGoodness is counter + priority: the part of goodness() that does
// not depend on which task and processor call schedule() (paper §5).
func (t *Task) StaticGoodness(ep *Epoch) int {
	return t.Counter(ep) + t.Priority
}

// OnRunqueue reports whether the kernel considers the task on the run
// queue. Following the kernel convention the paper describes, this is
// "run_list.next != NULL" — which remains true for a task ELSC has manually
// pulled out of its table list while it runs (footnote 3).
func (t *Task) OnRunqueue() bool { return t.RunList.OnList() }

// AllowedOn reports whether the affinity mask permits running on cpu.
// An unset (zero) mask allows every processor.
func (t *Task) AllowedOn(cpu int) bool {
	return t.CPUsAllowed == 0 || t.CPUsAllowed&(1<<uint(cpu)) != 0
}

// String implements fmt.Stringer for debugging and traces.
func (t *Task) String() string {
	return fmt.Sprintf("task%d(%s)", t.ID, t.Name)
}

// Epoch counts global counter recalculations. Incrementing the epoch is the
// O(1) stand-in for the kernel's "recalculate counter for every task in the
// system" loop; tasks lazily apply pending recalculations when touched.
// The simulated cycle cost of the loop is charged separately by the
// scheduler that triggers it.
type Epoch struct {
	n uint64
}

// N returns the current epoch number.
func (e *Epoch) N() uint64 { return e.n }

// Bump advances the epoch by one: one global recalculation.
func (e *Epoch) Bump() { e.n++ }

// FromNode recovers the *Task that embeds the given run-list node.
func FromNode(n *klist.Node) *Task { return n.Owner.(*Task) }
