package task

import (
	"testing"
	"testing/quick"
)

func TestNewDefaults(t *testing.T) {
	ep := &Epoch{}
	tk := New(1, "init", nil, ep)
	if tk.Priority != DefaultPriority {
		t.Fatalf("priority = %d, want %d", tk.Priority, DefaultPriority)
	}
	if tk.Policy != Other {
		t.Fatalf("policy = %v, want SCHED_OTHER", tk.Policy)
	}
	if !tk.Runnable() {
		t.Fatal("new task should be runnable")
	}
	if tk.Counter(ep) != DefaultPriority {
		t.Fatalf("counter = %d, want %d", tk.Counter(ep), DefaultPriority)
	}
	if tk.OnRunqueue() {
		t.Fatal("new task should not be on a run queue")
	}
	if tk.RealTime() {
		t.Fatal("SCHED_OTHER task is not real-time")
	}
}

func TestNewRT(t *testing.T) {
	ep := &Epoch{}
	rt := NewRT(2, "rtthread", FIFO, 50, ep)
	if !rt.RealTime() {
		t.Fatal("FIFO task should be real-time")
	}
	if rt.RTPriority != 50 {
		t.Fatalf("rt_priority = %d, want 50", rt.RTPriority)
	}
}

func TestNewRTRejectsOther(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRT with SCHED_OTHER should panic")
		}
	}()
	NewRT(1, "x", Other, 10, nil)
}

func TestNewRTRejectsBadPriority(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRT with rt_priority 100 should panic")
		}
	}()
	NewRT(1, "x", FIFO, 100, nil)
}

func TestTickDecrement(t *testing.T) {
	ep := &Epoch{}
	tk := New(1, "t", nil, ep)
	tk.SetCounter(ep, 2)
	if got := tk.TickDecrement(ep); got != 1 {
		t.Fatalf("after 1 tick counter = %d, want 1", got)
	}
	if got := tk.TickDecrement(ep); got != 0 {
		t.Fatalf("after 2 ticks counter = %d, want 0", got)
	}
	// Does not go negative.
	if got := tk.TickDecrement(ep); got != 0 {
		t.Fatalf("counter went below 0: %d", got)
	}
}

func TestSetCounterClampsNegative(t *testing.T) {
	ep := &Epoch{}
	tk := New(1, "t", nil, ep)
	tk.SetCounter(ep, -5)
	if tk.Counter(ep) != 0 {
		t.Fatalf("counter = %d, want 0", tk.Counter(ep))
	}
}

func TestEpochRecalcFormula(t *testing.T) {
	// One recalculation: counter = counter/2 + priority (2.3.99's loop).
	ep := &Epoch{}
	tk := New(1, "t", nil, ep)
	tk.Priority = 20
	tk.SetCounter(ep, 10)
	ep.Bump()
	if got := tk.Counter(ep); got != 25 {
		t.Fatalf("counter after recalc = %d, want 10/2+20 = 25", got)
	}
}

func TestEpochZeroCounterBecomesPriority(t *testing.T) {
	ep := &Epoch{}
	tk := New(1, "t", nil, ep)
	tk.SetCounter(ep, 0)
	ep.Bump()
	if got := tk.Counter(ep); got != tk.Priority {
		t.Fatalf("counter = %d, want priority %d", got, tk.Priority)
	}
}

func TestEpochConvergesToTwicePriority(t *testing.T) {
	// Repeated recalculation converges to the fixed point near
	// 2*priority — the paper's "zero to twice the task's priority" cap.
	ep := &Epoch{}
	tk := New(1, "t", nil, ep)
	tk.SetCounter(ep, 0)
	for i := 0; i < 50; i++ {
		ep.Bump()
	}
	got := tk.Counter(ep)
	if got != 2*tk.Priority && got != 2*tk.Priority-1 {
		t.Fatalf("converged counter = %d, want %d or %d", got, 2*tk.Priority, 2*tk.Priority-1)
	}
}

func TestManyPendingEpochsMatchNaive(t *testing.T) {
	// Lazy sync over k epochs must equal applying the recurrence k times.
	f := func(start uint8, prio8 uint8, epochs uint8) bool {
		prio := int(prio8%MaxPriority) + 1
		ep := &Epoch{}
		tk := New(1, "t", nil, ep)
		tk.Priority = prio
		c0 := int(start) % (2*prio + 1)
		tk.SetCounter(ep, c0)

		naive := c0
		for i := 0; i < int(epochs); i++ {
			naive = naive/2 + prio
		}
		if naive > 2*prio {
			naive = 2 * prio
		}
		for i := 0; i < int(epochs); i++ {
			ep.Bump()
		}
		return tk.Counter(ep) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterNeverExceedsTwicePriority(t *testing.T) {
	f := func(start uint8, prio8 uint8, epochs uint8) bool {
		prio := int(prio8%MaxPriority) + 1
		ep := &Epoch{}
		tk := New(1, "t", nil, ep)
		tk.Priority = prio
		tk.SetCounter(ep, int(start)%(2*prio+1))
		for i := 0; i < int(epochs); i++ {
			ep.Bump()
		}
		return tk.Counter(ep) <= tk.MaxCounter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictedCounterMatchesActualRecalc(t *testing.T) {
	// The ELSC invariant (paper §5.1): the predicted counter used to
	// pre-index an exhausted task must equal the counter the task really
	// has after the next recalculation.
	f := func(start uint8, prio8 uint8) bool {
		prio := int(prio8%MaxPriority) + 1
		ep := &Epoch{}
		tk := New(1, "t", nil, ep)
		tk.Priority = prio
		tk.SetCounter(ep, int(start)%(2*prio+1))
		predicted := tk.PredictedCounter(ep)
		ep.Bump()
		return tk.Counter(ep) == predicted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticGoodness(t *testing.T) {
	ep := &Epoch{}
	tk := New(1, "t", nil, ep)
	tk.Priority = 20
	tk.SetCounter(ep, 13)
	if got := tk.StaticGoodness(ep); got != 33 {
		t.Fatalf("static goodness = %d, want 33", got)
	}
}

func TestSyncCounterNilEpoch(t *testing.T) {
	tk := New(1, "t", nil, nil)
	tk.SyncCounter(nil) // must not panic
	if tk.Counter(nil) != tk.Priority {
		t.Fatal("counter should be unchanged with nil epoch")
	}
}

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		Running:       "running",
		Interruptible: "interruptible",
		Zombie:        "zombie",
		State(99):     "state(99)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{
		Other:      "SCHED_OTHER",
		FIFO:       "SCHED_FIFO",
		RR:         "SCHED_RR",
		Policy(42): "policy(42)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("Policy.String() = %q, want %q", p.String(), want)
		}
	}
}

func TestTaskString(t *testing.T) {
	tk := New(7, "worker", nil, nil)
	if tk.String() != "task7(worker)" {
		t.Fatalf("String = %q", tk.String())
	}
}

func TestFromNode(t *testing.T) {
	tk := New(1, "t", nil, nil)
	if FromNode(&tk.RunList) != tk {
		t.Fatal("FromNode should recover the embedding task")
	}
}

func TestMaxCounter(t *testing.T) {
	tk := New(1, "t", nil, nil)
	tk.Priority = 17
	if tk.MaxCounter() != 34 {
		t.Fatalf("MaxCounter = %d, want 34", tk.MaxCounter())
	}
}
