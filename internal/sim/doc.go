// Package sim provides a deterministic discrete-event simulation engine.
//
// Virtual time is measured in CPU cycles (Time). Events fire in
// (time, sequence) order so that two events scheduled for the same instant
// run in the order they were scheduled, which keeps every simulation
// bit-for-bit reproducible for a given seed.
//
// # The pending set: timer wheel + min-heap
//
// The engine is built for wall-clock speed as much as determinism. The
// pending set is split between two structures:
//
//   - A hierarchical timer wheel (wheel.go): three levels of 2048 slots.
//     A level-0 slot spans 512 cycles; each coarser level multiplies the
//     slot span by 2048, so level 0 covers a ~1M-cycle window (~2.6ms at
//     the default clock), level 1 ~2.1G cycles (~5.4s), and level 2
//     ~4.4T cycles — the wheel's horizon. Insert and cancel are O(1);
//     the next-event scan walks occupancy bitmaps (64 slots per word)
//     behind a one-entry cache, and events parked in a coarser level
//     cascade down one level at a time as the cursor crosses their
//     window.
//
//   - A hand-rolled indexed 4-ary min-heap over inline (time, sequence)
//     keys, for the far-future long tail the wheel cannot express
//     cheaply.
//
// Routing is by deadline distance and hint. An unhinted one-shot (At,
// After, or a NewEvent armed with Schedule) rides the wheel when its
// deadline is within the level-2 slot granularity (~2.1G cycles) of the
// cursor, and falls back to the heap beyond that — a far one-shot would
// cascade through multiple levels for no benefit. A periodic-hinted
// event (NewPeriodicEvent) rides the wheel anywhere inside the full
// horizon, since its repeated re-arms amortize any cascade. Deadlines
// past the horizon always take the heap.
//
// The split is invisible to everything but the profiler: events fire in
// exactly (At, seq) order across both structures, a property enforced by
// FuzzWheelHeapDiff, which drives a wheel-enabled and a heap-only engine
// with identical operation streams and requires identical observable
// behavior. The Engine's FiredWheel and FiredHeap counters report the
// per-path dispatch split.
//
// # Allocation discipline
//
// Fired engine-owned events are recycled through a freelist, so a
// steady-state schedule→dispatch cycle allocates nothing. Caller-owned
// events (NewEvent, NewPeriodicEvent) are never recycled and may be
// re-armed in place — the shape for recurring timers that must not touch
// the allocator. Cancel is O(1) lazy: the event is marked dead and
// skipped (then recycled) when it surfaces, instead of an O(log n) heap
// removal.
package sim
