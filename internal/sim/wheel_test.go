package sim

import (
	"testing"
)

// TestWheelAllocs proves the wheel's steady state is allocation-free: a
// warmed engine re-arming a periodic event and recycling one-shot
// events through the freelist performs zero heap allocations per
// schedule/dispatch cycle. The first arm pays for the wheel rings and
// the Event; everything after that must be reuse.
func TestWheelAllocs(t *testing.T) {
	e := new(Engine)
	var tick *Event
	period := Cycles(4_000_000) // a kernel tick: lands in wheel level 1
	tick = e.NewPeriodicEvent("tick", func(now Time) {
		e.ScheduleAfter(tick, period)
	})
	e.ScheduleAfter(tick, period)
	// Warm the wheel, the freelist, and the one-shot path.
	e.After(1_000, "warm", func(Time) {})
	for i := 0; i < 64; i++ {
		e.Step()
	}
	if n := testing.AllocsPerRun(200, func() {
		e.After(45_000, "oneshot", func(Time) {})
		e.Step()
	}); n != 0 {
		t.Fatalf("wheel steady state allocates %.1f allocs/op, want 0", n)
	}
}

// TestWheelHeapSplitCounts checks FiredWheel/FiredHeap partition Fired:
// near events dispatch from the wheel, a far unhinted one-shot from the
// heap.
func TestWheelHeapSplitCounts(t *testing.T) {
	e := new(Engine)
	e.After(100, "near", func(Time) {})
	e.After(wheelGran2+100, "far", func(Time) {}) // beyond one-shot wheel range
	e.Run(nil)
	if e.FiredWheel() != 1 || e.FiredHeap() != 1 {
		t.Fatalf("FiredWheel=%d FiredHeap=%d, want 1 and 1", e.FiredWheel(), e.FiredHeap())
	}
	if e.Fired() != e.FiredWheel()+e.FiredHeap() {
		t.Fatalf("Fired=%d does not equal wheel+heap=%d", e.Fired(), e.FiredWheel()+e.FiredHeap())
	}
}

// BenchmarkWheelTick measures the wheel's periodic fast path: one
// kernel-tick-style event re-arming itself every 4M cycles, which lands
// in wheel level 1 and cascades once per fire. This is the dominant
// event shape of a machine simulation.
func BenchmarkWheelTick(b *testing.B) {
	e := new(Engine)
	var tick *Event
	tick = e.NewPeriodicEvent("tick", func(now Time) {
		e.ScheduleAfter(tick, 4_000_000)
	})
	e.ScheduleAfter(tick, 4_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkCascade measures cross-level traffic: every event is
// inserted a full level-0 span ahead, so each one parks in level 1 and
// must cascade into level 0 before it can fire.
func BenchmarkCascade(b *testing.B) {
	e := new(Engine)
	var ev *Event
	ev = e.NewPeriodicEvent("cascade", func(now Time) {
		e.ScheduleAfter(ev, Cycles(wheelSpan0)+wheelGran0*3)
	})
	e.ScheduleAfter(ev, Cycles(wheelSpan0)+wheelGran0*3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkWheelMixed interleaves a periodic tick with short one-shot
// events — the IPC-heavy cell shape, where most arms and pops hit
// level 0 and the scan cache.
func BenchmarkWheelMixed(b *testing.B) {
	e := new(Engine)
	var tick *Event
	tick = e.NewPeriodicEvent("tick", func(now Time) {
		e.ScheduleAfter(tick, 4_000_000)
	})
	e.ScheduleAfter(tick, 4_000_000)
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Cycles(20_000+(i%7)*11_000), "io", fn)
		e.Step()
	}
}
