package sim

import (
	"fmt"
	"testing"
)

// BenchmarkAfterStep is the engine's steady-state unit of work: schedule
// one event, dispatch it. This is the cycle the freelist and the 4-ary
// heap exist for; allocs/op must read 0.
func BenchmarkAfterStep(b *testing.B) {
	var e Engine
	fn := func(Time) {}
	e.After(1, "warm", fn)
	e.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(10, "ev", fn)
		e.Step()
	}
}

// BenchmarkHeapChurn measures a dispatch against a populated heap: n
// events pending, each iteration fires the earliest and schedules a
// replacement — the shape of a machine with n in-flight timers.
func BenchmarkHeapChurn(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("pending%d", n), func(b *testing.B) {
			var e Engine
			fn := func(Time) {}
			for i := 0; i < n; i++ {
				e.After(Cycles(1+i%97), "pend", fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(Cycles(1+i%97), "ev", fn)
				e.Step()
			}
		})
	}
}

// BenchmarkCancel measures the lazy O(1) cancel against a populated heap
// (the old heap.Remove was O(log n) and reshuffled the array).
func BenchmarkCancel(b *testing.B) {
	var e Engine
	fn := func(Time) {}
	for i := 0; i < 256; i++ {
		e.After(Cycles(1+i%97), "pend", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.After(50, "victim", fn)
		e.Cancel(ev)
		e.After(10, "live", fn)
		e.Step()
	}
}

// BenchmarkRearmTick measures the caller-owned recurring event path the
// kernel's timer tick uses: re-arm in place, no freelist traffic at all.
func BenchmarkRearmTick(b *testing.B) {
	var e Engine
	var ev *Event
	ev = e.NewEvent("tick", func(Time) { e.ScheduleAfter(ev, 10) })
	e.Schedule(ev, 10)
	e.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
