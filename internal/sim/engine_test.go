package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var e Engine
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.At(at, "t", func(now Time) { got = append(got, now) })
	}
	e.Run(nil)
	want := []Time{5, 10, 10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	// Events at the same instant must fire in scheduling order.
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, "t", func(Time) { got = append(got, i) })
	}
	e.Run(nil)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time order %v, want ascending", got)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	var e Engine
	var at Time
	e.At(50, "a", func(now Time) {
		e.After(25, "b", func(now2 Time) { at = now2 })
	})
	e.Run(nil)
	if at != 75 {
		t.Fatalf("After fired at %d, want 75", at)
	}
}

func TestCancelPreventsFire(t *testing.T) {
	var e Engine
	fired := false
	ev := e.At(10, "x", func(Time) { fired = true })
	e.Cancel(ev)
	e.Run(nil)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event should report cancelled")
	}
}

func TestCancelFromWithinEarlierEvent(t *testing.T) {
	var e Engine
	fired := false
	ev := e.At(20, "victim", func(Time) { fired = true })
	e.At(10, "killer", func(Time) { e.Cancel(ev) })
	e.Run(nil)
	if fired {
		t.Fatal("event cancelled at t=10 still fired at t=20")
	}
}

func TestCancelTwiceIsNoop(t *testing.T) {
	var e Engine
	ev := e.At(10, "x", func(Time) {})
	e.Cancel(ev)
	e.Cancel(ev) // must not panic
	e.Run(nil)
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.At(100, "a", func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(50, "past", func(Time) {})
	})
	e.Run(nil)
}

func TestRunForStopsAtDeadline(t *testing.T) {
	var e Engine
	count := 0
	var tick func(now Time)
	tick = func(now Time) {
		count++
		e.After(10, "tick", tick)
	}
	e.After(10, "tick", tick)
	e.RunFor(100)
	if count != 10 {
		t.Fatalf("ticks in 100 cycles at period 10 = %d, want 10", count)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want 100", e.Now())
	}
}

func TestMaxDurHorizon(t *testing.T) {
	var e Engine
	e.MaxDur = 55
	count := 0
	var tick func(now Time)
	tick = func(now Time) {
		count++
		e.After(10, "tick", tick)
	}
	e.After(10, "tick", tick)
	e.Run(nil)
	if count != 5 {
		t.Fatalf("ticks = %d, want 5 (horizon 55, period 10)", count)
	}
}

func TestStopPredicate(t *testing.T) {
	var e Engine
	count := 0
	var tick func(now Time)
	tick = func(now Time) {
		count++
		e.After(1, "tick", tick)
	}
	e.After(1, "tick", tick)
	e.Run(func() bool { return count >= 7 })
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
}

func TestFiredCountsDispatchedOnly(t *testing.T) {
	var e Engine
	e.At(1, "a", func(Time) {})
	ev := e.At(2, "b", func(Time) {})
	e.Cancel(ev)
	e.At(3, "c", func(Time) {})
	e.Run(nil)
	if e.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", e.Fired())
	}
}

func TestPendingCount(t *testing.T) {
	var e Engine
	e.At(1, "a", func(Time) {})
	e.At(2, "b", func(Time) {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

// TestHeapOrderingQuick drives the engine with arbitrary offsets and checks
// that observed firing times are monotonically non-decreasing.
func TestHeapOrderingQuick(t *testing.T) {
	f := func(offsets []uint16) bool {
		var e Engine
		var last Time
		ok := true
		for _, off := range offsets {
			e.At(Time(off), "x", func(now Time) {
				if now < last {
					ok = false
				}
				last = now
			})
		}
		e.Run(nil)
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRunForClampsToMaxDurHorizon is the regression for the RunFor early
// exit: when the MaxDur horizon stops stepping before the requested
// deadline, the clock must still land on min(deadline, MaxDur) instead of
// being left at the last fired event.
func TestRunForClampsToMaxDurHorizon(t *testing.T) {
	var e Engine
	e.MaxDur = 55
	var tick func(now Time)
	tick = func(now Time) { e.After(10, "tick", tick) }
	e.After(10, "tick", tick)
	e.RunFor(100)
	if e.Now() != 55 {
		t.Fatalf("Now = %d after RunFor(100) with MaxDur=55, want 55", e.Now())
	}
	// Inside the horizon the deadline wins unchanged.
	var e2 Engine
	e2.MaxDur = 500
	e2.After(10, "once", func(Time) {})
	e2.RunFor(100)
	if e2.Now() != 100 {
		t.Fatalf("Now = %d after RunFor(100) with MaxDur=500, want 100", e2.Now())
	}
}

// TestRunForSkipsCancelledWithoutOvershoot: a lazily-cancelled event at
// the heap root must not trick RunFor into dispatching the next live
// event past the deadline.
func TestRunForSkipsCancelledWithoutOvershoot(t *testing.T) {
	var e Engine
	ev := e.At(50, "victim", func(Time) {})
	fired := false
	e.At(200, "late", func(Time) { fired = true })
	e.Cancel(ev)
	e.RunFor(100)
	if fired {
		t.Fatal("event at t=200 fired inside RunFor(100)")
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want 100", e.Now())
	}
}

// TestCancelledEventNotPending: lazy cancellation must be invisible in
// the Pending count even while the dead event still sits in the heap.
func TestCancelledEventNotPending(t *testing.T) {
	var e Engine
	ev := e.At(10, "x", func(Time) {})
	e.At(20, "y", func(Time) {})
	e.Cancel(ev)
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after cancel, want 1", e.Pending())
	}
	if ev.Pending() {
		t.Fatal("cancelled event reports Pending")
	}
	e.Run(nil)
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", e.Pending())
	}
}

// TestStepAllocs asserts the zero-allocation contract: once the freelist
// and heap are warm, a steady-state After→Step cycle must not touch the
// allocator at all.
func TestStepAllocs(t *testing.T) {
	var e Engine
	fn := func(Time) {}
	for i := 0; i < 64; i++ {
		e.After(Cycles(i), "warm", fn)
	}
	for e.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(10, "steady", fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state After→Step allocates %.1f objects/event, want 0", allocs)
	}
}

// TestRearmedEventAllocs: a caller-owned recurring event (the kernel's
// timer tick shape) re-arms itself forever without allocating.
func TestRearmedEventAllocs(t *testing.T) {
	var e Engine
	count := 0
	var ev *Event
	ev = e.NewEvent("tick", func(Time) {
		count++
		e.ScheduleAfter(ev, 10)
	})
	e.Schedule(ev, 10)
	e.Step() // warm
	allocs := testing.AllocsPerRun(1000, func() { e.Step() })
	if allocs != 0 {
		t.Fatalf("re-armed tick allocates %.1f objects/fire, want 0", allocs)
	}
	if count < 1000 {
		t.Fatalf("tick fired %d times, want >= 1000", count)
	}
}

// TestRearmFIFOWithFreshEvents: a re-armed event takes a fresh sequence
// number, so it still fires in scheduling order against events armed at
// the same instant.
func TestRearmFIFOWithFreshEvents(t *testing.T) {
	var e Engine
	var got []string
	var ev *Event
	ev = e.NewEvent("a", func(Time) { got = append(got, "a") })
	e.Schedule(ev, 100)
	e.At(100, "b", func(Time) { got = append(got, "b") })
	e.Run(nil)
	e.Schedule(ev, e.Now()+50)
	e.At(e.Now()+50, "c", func(Time) { got = append(got, "c") })
	e.Run(nil)
	want := "a,b,a,c"
	if strings.Join(got, ",") != want {
		t.Fatalf("fire order %v, want %s", got, want)
	}
}

// TestScheduleMisusePanics: arming an engine-owned event, or an event
// still queued, must panic loudly rather than corrupt the heap.
func TestScheduleMisusePanics(t *testing.T) {
	var e Engine
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	ev := e.At(10, "engine-owned", func(Time) {})
	mustPanic("Schedule of engine-owned event", func() { e.Schedule(ev, 20) })
	own := e.NewEvent("own", func(Time) {})
	e.Schedule(own, 30)
	mustPanic("Schedule of queued event", func() { e.Schedule(own, 40) })
}

// TestFreelistReuseKeepsIdentity: after an event fires, a later After may
// hand back the same object for a new logical event; the old firing must
// not replay and the new callback must run exactly once.
func TestFreelistReuseKeepsIdentity(t *testing.T) {
	var e Engine
	firstFired, secondFired := 0, 0
	e.After(10, "first", func(Time) { firstFired++ })
	e.Run(nil)
	e.After(10, "second", func(Time) { secondFired++ })
	e.Run(nil)
	if firstFired != 1 || secondFired != 1 {
		t.Fatalf("fired counts first=%d second=%d, want 1/1", firstFired, secondFired)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds collide %d/100 times", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("Range(5,9) = %d out of range", v)
		}
	}
	if got := r.Range(4, 4); got != 4 {
		t.Fatalf("Range(4,4) = %d, want 4", got)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(5)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams should differ")
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}
