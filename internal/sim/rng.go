package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64* variant). It exists so simulations do not depend on
// math/rand's global state or version-dependent stream changes: a given
// seed produces the same stream forever.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because the xorshift state must never be zero.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *RNG) Seed(seed int64) {
	s := uint64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	// Mix the seed through two splitmix64 rounds so that nearby seeds
	// produce unrelated streams.
	for i := 0; i < 2; i++ {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s = z ^ (z >> 31)
	}
	if s == 0 {
		s = 1
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Range returns a uniform uint64 in [lo, hi]. It panics if lo > hi.
func (r *RNG) Range(lo, hi uint64) uint64 {
	if lo > hi {
		panic("sim: Range with lo > hi")
	}
	return lo + r.Uint64n(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fork derives an independent generator from this one, for giving each
// simulated component its own stream without correlated draws.
func (r *RNG) Fork() *RNG {
	return NewRNG(int64(r.Uint64()))
}
