package sim

import "math/bits"

// Hierarchical timer wheel: a fast path in front of the min-heap for the
// event classes that dominate a scheduler simulation — strictly-periodic
// re-armed timers (per-CPU tick, watchdog sweep) and near-deadline
// latencies (IPI, dispatch, short sleeps). Insert and cancel are O(1);
// firing order is still exactly (At, seq) across both structures, so the
// wheel is invisible to everything but the profiler.
//
// Geometry: wheelLevels levels of wheelSlots slots each. A level-0 slot
// covers wheelGran0 cycles — coarse enough that the cursor crosses a
// typical inter-event gap in a couple of bitmap words, fine enough that a
// slot rarely holds more than a handful of deadlines — and keeps its
// residents sorted by (At, seq) so the head is always the slot's next
// firing. Each coarser level multiplies the slot span by wheelSlots; an
// event whose deadline is further out than a level can express parks in a
// coarser level and cascades down one level at a time as the cursor
// crosses its window start. Power-of-two sizing makes every slot index a
// shift+mask and aligns window boundaries with bitmap words, so cursor
// scans never wrap mid-window.
const (
	wheelShift  = 9 // log2 cycles per level-0 slot
	wheelBits   = 11
	wheelSlots  = 1 << wheelBits // 2048 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	wheelWords  = wheelSlots / 64

	// wheelGran0 is the level-0 slot granularity (512 cycles, ~1.3µs at
	// the default clock); wheelSpan0 is the level-0 ring span and the
	// level-1 slot granularity (~1M cycles, ~2.6ms).
	wheelGran0 = 1 << wheelShift
	wheelSpan0 = 1 << (wheelShift + wheelBits)
	// wheelGran2 is the level-2 slot granularity — equivalently the span
	// of the level-1 ring (~2.1G cycles, ~5.4s at the default clock).
	// Unhinted one-shot events take the wheel only inside this span; the
	// heap keeps the far-future long tail.
	wheelGran2 = 1 << (wheelShift + 2*wheelBits)
	// wheelHorizon is the span of the level-2 ring (~4.4T cycles): the
	// furthest deadline the wheel can express at all. Periodic-hinted
	// events ride the wheel anywhere inside it.
	wheelHorizon = 1 << (wheelShift + 3*wheelBits)
)

// slot heads one intrusive singly-linked list of events (chained
// through Event.wheelNext). Level-0 lists are kept sorted by (At, seq);
// the tail pointer makes the common insert — a fresh arm whose deadline
// lands at or past everything already parked — an O(1) append.
type slot struct {
	head, tail *Event
}

// wheel is the three-level ring. cur is the cursor: every resident event
// satisfies At >= cur, and cur only advances as far as a caller-supplied
// limit justifies, so later arms can still land ahead of it. Occupancy
// bitmaps (one bit per slot) let scans skip 64 empty slots per word, and
// per-level resident counts let them skip levels entirely.
type wheel struct {
	cur   Time
	count int // resident events, including lazily-cancelled ones
	occ   [wheelLevels]int

	// One-entry scan cache: the engine asks for the wheel's earliest
	// event once per dispatch, but the answer only changes when the
	// wheel does. hit is a confirmed global earliest — the live head of
	// the level-0 slot the cursor stands on — and stays valid until it
	// is popped, cancelled, or beaten by an earlier arm; popping it
	// promotes its slot successor, so a burst draining one slot never
	// rescans. missTo (valid when missOK) records a confirmed "nothing
	// at or before missTo", valid until an arm lands inside that range.
	hit    *Event
	missTo Time
	missOK bool

	bits  [wheelLevels][wheelWords]uint64
	slots [wheelLevels][wheelSlots]slot
}

// wheelInsert routes an armed event onto the wheel when its deadline is
// in range, reporting whether it did. Deadlines behind the cursor (or
// beyond the event's allowed span) fall back to the heap, which handles
// any (At, seq) — the split is pure fast-path/slow-path.
func (e *Engine) wheelInsert(ev *Event, at Time) bool {
	if e.noWheel {
		return false
	}
	w := e.wheel
	if w == nil {
		w = &wheel{cur: e.now}
		e.wheel = w
	} else if w.count == 0 && w.cur != e.now {
		// Empty wheel: resynchronize the cursor so level selection sees
		// true deltas (cur may trail now after a heap-only stretch, or
		// sit past it after a capped advance).
		w.cur = e.now
	}
	if at < w.cur {
		return false
	}
	delta := at - w.cur
	if ev.periodic {
		if delta >= wheelHorizon {
			return false
		}
	} else if delta >= wheelGran2 {
		return false
	}
	if w.hit != nil && at < w.hit.At {
		// The new arrival fires strictly before the confirmed earliest,
		// so it is the new confirmed earliest (an equal At keeps the
		// incumbent: it carries the older seq).
		w.hit = ev
	}
	if w.missOK && at <= w.missTo {
		w.missOK = false
	}
	w.insert(ev, at)
	return true
}

// insert links ev into the slot its deadline selects at the finest level
// that can still express it.
func (w *wheel) insert(ev *Event, at Time) {
	delta := at - w.cur
	l := 0
	for l < wheelLevels-1 && delta>>(wheelShift+wheelBits*(l+1)) != 0 {
		l++
	}
	// delta can reach the full horizon during a cascade of a lap-wrapped
	// top-level slot (the event belongs to the slot's next window, one
	// whole ring revolution out); re-parking it in the same slot is
	// exactly right — it surfaces again when that window opens.
	idx := int(at>>(wheelShift+wheelBits*l)) & wheelMask
	s := &w.slots[l][idx]
	w.count++
	w.occ[l]++
	if s.head == nil {
		ev.wheelNext = nil
		s.head, s.tail = ev, ev
		w.bits[l][idx>>6] |= 1 << (idx & 63)
		return
	}
	if l > 0 {
		// Upper-level slots are only ever drained whole by a cascade,
		// which re-inserts each survivor individually — list order is
		// irrelevant there, so push front.
		ev.wheelNext = s.head
		s.head = ev
		return
	}
	// A level-0 slot pops from the head, so it must stay sorted by
	// (At, seq). A fresh arm usually lands at or past everything parked
	// (it carries the highest seq yet issued) and appends at the tail;
	// cascaded events and same-slot earlier deadlines walk to their spot.
	t := s.tail
	if t.At < ev.At || (t.At == ev.At && t.seq < ev.seq) {
		ev.wheelNext = nil
		t.wheelNext = ev
		s.tail = ev
		return
	}
	h := s.head
	if ev.At < h.At || (ev.At == h.At && ev.seq < h.seq) {
		ev.wheelNext = h
		s.head = ev
		return
	}
	p := h
	for n := p.wheelNext; n.At < ev.At || (n.At == ev.At && n.seq < ev.seq); n = p.wheelNext {
		p = n
	}
	// Not past the tail (that was the append case), so tail is unchanged.
	ev.wheelNext = p.wheelNext
	p.wheelNext = ev
}

// cascade drains one upper-level slot whose window start the cursor has
// reached, re-inserting each survivor at a finer level and recycling
// lazily-cancelled corpses.
func (e *Engine) cascade(l, idx int) {
	w := e.wheel
	s := &w.slots[l][idx]
	ev := s.head
	s.head, s.tail = nil, nil
	w.bits[l][idx>>6] &^= 1 << (idx & 63)
	for ev != nil {
		next := ev.wheelNext
		w.count--
		w.occ[l]--
		if ev.cancelled {
			ev.queued = false
			e.release(ev)
		} else {
			w.insert(ev, ev.At)
		}
		ev = next
	}
}

// wheelOpen stands at window boundary t (a multiple of wheelSpan0) and
// cascades the level-1 — and, at coarser alignments, level-2 — slots
// whose windows open there.
func (e *Engine) wheelOpen(t Time) {
	w := e.wheel
	if t&(wheelGran2-1) == 0 {
		idx := int(t>>(wheelShift+2*wheelBits)) & wheelMask
		if w.bits[2][idx>>6]&(1<<(idx&63)) != 0 {
			e.cascade(2, idx)
		}
	}
	idx := int(t>>(wheelShift+wheelBits)) & wheelMask
	if w.bits[1][idx>>6]&(1<<(idx&63)) != 0 {
		e.cascade(1, idx)
	}
}

// scan finds the first occupied slot of level l at ring index >= from,
// never wrapping — window boundaries are aligned with the bitmap end, so
// a wrapped slot always belongs to a window past the next boundary and
// is the next lap's business.
func (w *wheel) scan(l, from int) (int, bool) {
	if word := w.bits[l][from>>6] >> (from & 63); word != 0 {
		return from + bits.TrailingZeros64(word), true
	}
	for i := from>>6 + 1; i < wheelWords; i++ {
		if word := w.bits[l][i]; word != 0 {
			return i<<6 + bits.TrailingZeros64(word), true
		}
	}
	return 0, false
}

// wheelScanL0 searches level 0 from the cursor to the end of its current
// window (exclusive boundary b), never surfacing an event past limit,
// pruning lazily-cancelled slot heads as it goes. On a hit the cursor
// stands on the event's slot; on a miss it stands where the scan
// stopped, so the next scan resumes without rework.
func (e *Engine) wheelScanL0(b, limit Time) *Event {
	w := e.wheel
	stop := b - 1
	if limit < stop {
		stop = limit
	}
	for w.cur <= stop && w.occ[0] > 0 {
		sidx := int(w.cur>>wheelShift) & wheelMask
		word := w.bits[0][sidx>>6] >> (sidx & 63)
		if word == 0 {
			w.cur = (w.cur>>wheelShift + Time(64-sidx&63)) << wheelShift
			continue
		}
		if skip := bits.TrailingZeros64(word); skip > 0 {
			w.cur = (w.cur>>wheelShift + Time(skip)) << wheelShift
			if w.cur > stop {
				// The next occupied slot starts beyond the cap, so every
				// deadline in it lies beyond the cap too; leave the
				// cursor on it (cur never passes a resident event).
				return nil
			}
			sidx = int(w.cur>>wheelShift) & wheelMask
		}
		s := &w.slots[0][sidx]
		for s.head != nil && s.head.cancelled {
			dead := s.head
			s.head = dead.wheelNext
			dead.queued = false
			w.count--
			w.occ[0]--
			e.release(dead)
		}
		if s.head != nil {
			if s.head.At > limit {
				// The slot straddles the cap: its earliest live deadline
				// is past limit. Hold the cursor at the slot.
				return nil
			}
			return s.head
		}
		s.tail = nil
		w.bits[0][sidx>>6] &^= 1 << (sidx & 63)
		w.cur = (w.cur>>wheelShift + 1) << wheelShift
	}
	if w.cur >= b {
		// A word-skip (or final prune) landed exactly on the window
		// boundary. Hold the cursor inside the window — the last slot is
		// verified empty, and reaching b is exclusively the open path's
		// job: wheelEarliest must cascade b's window before the cursor
		// may stand on it.
		w.cur = b - 1
	}
	return nil
}

// nextWindow finds the start of the next window at or after b (a level-0
// span boundary) whose opening can surface events: the first occupied
// level-1 slot of the current lap, or an occupied level-2 slot at a lap
// boundary. Reports false when that start would lie past limit. Called
// only with level 0 empty and count > 0, so it terminates: every
// resident event is within one lap-wrap of its level's current lap.
func (w *wheel) nextWindow(b, limit Time) (Time, bool) {
	for {
		if b > limit {
			return 0, false
		}
		if b&(wheelGran2-1) == 0 {
			idx2 := int(b>>(wheelShift+2*wheelBits)) & wheelMask
			if w.bits[2][idx2>>6]&(1<<(idx2&63)) != 0 {
				// A level-2 window opens exactly here; it must cascade
				// before any finer window inside it is considered.
				return b, true
			}
			if w.occ[1] == 0 {
				if k, ok := w.scan(2, idx2); ok {
					t := b + Time(k-idx2)<<(wheelShift+2*wheelBits)
					if t > limit {
						return 0, false
					}
					return t, true
				}
				// Rest of the level-2 lap is empty: wrap to the next.
				b = (b &^ Time(wheelHorizon-1)) + wheelHorizon
				continue
			}
		}
		idx := int(b>>(wheelShift+wheelBits)) & wheelMask
		if j, ok := w.scan(1, idx); ok {
			t := b + Time(j-idx)<<(wheelShift+wheelBits)
			if t > limit {
				return 0, false
			}
			return t, true
		}
		// Level 1 empty for the rest of this lap: cross into the next
		// lap, where the level-2 slot check above takes over.
		b = (b &^ Time(wheelGran2-1)) + wheelGran2
	}
}

// wheelEarliest returns the earliest live wheel event at or before
// limit, advancing the cursor — cascading windows open along the way —
// but never opening a window that starts after limit. The cap keeps the
// advance conservative: the engine passes the heap root's time (or the
// run horizon) as limit, so events armed after a capped advance still
// order correctly against everything resident.
func (e *Engine) wheelEarliest(limit Time) *Event {
	w := e.wheel
	if w == nil {
		return nil
	}
	if w.hit != nil && !w.hit.cancelled {
		// Confirmed global earliest: answer without touching the rings.
		if w.hit.At <= limit {
			return w.hit
		}
		return nil
	}
	w.hit = nil
	if w.missOK && limit <= w.missTo {
		return nil
	}
	for w.count > 0 {
		b := (w.cur &^ Time(wheelSpan0-1)) + wheelSpan0
		if w.occ[0] > 0 {
			if ev := e.wheelScanL0(b, limit); ev != nil {
				w.hit = ev
				return ev
			}
			if b > limit {
				break
			}
			w.cur = b
			e.wheelOpen(b)
			continue
		}
		t, ok := w.nextWindow(b, limit)
		if !ok {
			break
		}
		w.cur = t
		e.wheelOpen(t)
	}
	w.missOK = true
	w.missTo = limit
	return nil
}

// popWheel unlinks ev — positioned by wheelEarliest as the live head of
// the level-0 slot under the cursor — from the wheel. The slot successor
// (if any) is promoted straight into the scan cache: level-0 lists are
// (At, seq)-sorted and every other resident lives at or past this slot's
// window, so the successor is provably the wheel's next earliest.
func (e *Engine) popWheel(ev *Event) {
	w := e.wheel
	idx := int(ev.At>>wheelShift) & wheelMask
	s := &w.slots[0][idx]
	next := ev.wheelNext
	s.head = next
	if next == nil {
		s.tail = nil
		w.bits[0][idx>>6] &^= 1 << (idx & 63)
		// The slot drained: probe the rest of its bitmap word. Slots at
		// ring indices above the cursor's hold only current-window
		// deadlines (next-lap inserts land strictly below the cursor
		// index), which fire before every level-1/2 resident and every
		// wrapped slot — so the next occupied slot's head, if the word
		// has one, is provably the wheel's next earliest, and a burst
		// spanning nearby slots keeps the cache warm across 64 slots at
		// a time. (A cancelled head is fine: the cache rechecks.)
		if word := w.bits[0][idx>>6] >> (idx & 63); word != 0 {
			next = w.slots[0][idx+bits.TrailingZeros64(word)].head
		}
	}
	w.hit = next
	ev.queued = false
	w.count--
	w.occ[0]--
}

// wheelReset drops every resident event (recycling engine-owned ones via
// release) and rewinds the cursor, walking only occupied slots via the
// bitmaps so the cost scales with residency, not ring size.
func (e *Engine) wheelReset() {
	w := e.wheel
	if w == nil {
		return
	}
	if w.count > 0 {
		for l := 0; l < wheelLevels; l++ {
			if w.occ[l] == 0 {
				continue
			}
			for wi := range w.bits[l] {
				word := w.bits[l][wi]
				w.bits[l][wi] = 0
				for word != 0 {
					bit := bits.TrailingZeros64(word)
					word &^= 1 << bit
					s := &w.slots[l][wi<<6+bit]
					for ev := s.head; ev != nil; {
						next := ev.wheelNext
						ev.wheelNext = nil
						ev.queued = false
						ev.cancelled = false
						e.release(ev)
						ev = next
					}
					s.head, s.tail = nil, nil
				}
			}
			w.occ[l] = 0
		}
		w.count = 0
	}
	w.cur = 0
	w.hit = nil
	w.missOK = false
	w.missTo = 0
}
