// Package sim provides a deterministic discrete-event simulation engine.
//
// Virtual time is measured in CPU cycles (Time). Events fire in
// (time, sequence) order so that two events scheduled for the same instant
// run in the order they were scheduled, which keeps every simulation
// bit-for-bit reproducible for a given seed.
package sim

import "container/heap"

// Time is a point in virtual time, in CPU clock cycles.
type Time uint64

// Cycles is a duration in CPU clock cycles.
type Cycles = uint64

// Event is a scheduled callback. Events are single-shot; recurring behavior
// is built by rescheduling from within the callback.
type Event struct {
	At   Time
	Fn   func(now Time)
	Name string // for traces and debugging

	seq       uint64
	index     int // heap index, -1 when not queued
	cancelled bool
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Pending reports whether the event is still queued to fire.
func (e *Event) Pending() bool { return e.index >= 0 && !e.cancelled }

// Engine owns the virtual clock and the pending event set.
// The zero value is ready to use.
type Engine struct {
	now    Time
	queue  eventHeap
	nexts  uint64
	fired  uint64
	MaxDur Time // optional hard stop measured from time zero; 0 = none
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it would corrupt causality.
func (e *Engine) At(at Time, name string, fn func(now Time)) *Event {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := &Event{At: at, Fn: fn, Name: name, seq: e.nexts, index: -1}
	e.nexts++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycles, name string, fn func(now Time)) *Event {
	return e.At(e.now+Time(d), name, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step dispatches the next pending event, advancing the clock to its time.
// It returns false when no events remain or the MaxDur horizon has been
// reached.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if e.MaxDur != 0 && ev.At > e.MaxDur {
			return false
		}
		heap.Pop(&e.queue)
		ev.index = -1
		if ev.cancelled {
			continue
		}
		e.now = ev.At
		e.fired++
		ev.Fn(e.now)
		return true
	}
	return false
}

// Run dispatches events until none remain, stop returns true, or the
// MaxDur horizon is reached. A nil stop runs to completion.
func (e *Engine) Run(stop func() bool) {
	for {
		if stop != nil && stop() {
			return
		}
		if !e.Step() {
			return
		}
	}
}

// RunFor dispatches events until the clock would pass now+d. Events at
// exactly now+d still run.
func (e *Engine) RunFor(d Cycles) {
	deadline := e.now + Time(d)
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		if !e.Step() {
			return
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// eventHeap is a min-heap on (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
