// Engine core: the event, the min-heap long tail, the freelist, and the
// dispatch loop. Package documentation — including how the pending set is
// split between the timer wheel and this heap — lives in doc.go.
package sim

// Time is a point in virtual time, in CPU clock cycles.
type Time uint64

// Cycles is a duration in CPU clock cycles.
type Cycles = uint64

// Event is a scheduled callback. Events are single-shot; recurring behavior
// is built by rescheduling from within the callback.
//
// Events returned by At and After are owned by the engine: once the
// callback has fired, the object is recycled for a later At/After and the
// old pointer must not be used again (drop or nil any reference to a fired
// event before scheduling new work). Events built with NewEvent are owned
// by the caller, are never recycled, and may be re-armed with Schedule —
// the shape for recurring timers that must not touch the allocator.
type Event struct {
	At   Time
	Fn   func(now Time)
	Name string // for traces and debugging

	seq       uint64
	queued    bool
	cancelled bool
	owned     bool // caller-owned (NewEvent): never recycled
	periodic  bool // NewPeriodicEvent hint: wheel-eligible out to the full horizon
	inWheel   bool // resident in the wheel rather than the heap (set at arm)
	wheelNext *Event
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Pending reports whether the event is still queued to fire.
func (e *Event) Pending() bool { return e.queued && !e.cancelled }

// entry is one heap slot. The ordering key is stored inline so the 4-way
// child comparisons in sift-down stay within the slice instead of chasing
// an Event pointer per candidate.
type entry struct {
	at  Time
	seq uint64
	ev  *Event
}

// before reports heap order: earlier time first, scheduling order within
// the same instant.
func (a entry) before(b entry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Engine owns the virtual clock and the pending event set.
// The zero value is ready to use.
type Engine struct {
	now        Time
	heap       []entry
	wheel      *wheel // lazily allocated on the first wheel-eligible arm
	free       []*Event
	nexts      uint64
	firedWheel uint64
	firedHeap  uint64
	live       int  // queued events not lazily cancelled
	MaxDur     Time // optional hard stop measured from time zero; 0 = none

	// noWheel forces every arm onto the min-heap. It exists for the
	// wheel-vs-heap differential fuzzer, which drives a hybrid engine
	// and a heap-only engine through the same operation stream and
	// requires identical fire order; it is never set in production.
	noWheel bool
}

// maxTime is the open-horizon dispatch limit.
const maxTime = Time(^uint64(0))

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.firedWheel + e.firedHeap }

// FiredWheel returns how many dispatched events took the timer-wheel
// fast path.
func (e *Engine) FiredWheel() uint64 { return e.firedWheel }

// FiredHeap returns how many dispatched events took the min-heap path.
func (e *Engine) FiredHeap() uint64 { return e.firedHeap }

// Pending returns the number of events currently queued to fire
// (lazily-cancelled events still in the heap do not count).
func (e *Engine) Pending() int { return e.live }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it would corrupt causality.
func (e *Engine) At(at Time, name string, fn func(now Time)) *Event {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := e.alloc()
	ev.At = at
	ev.Fn = fn
	ev.Name = name
	e.arm(ev, at)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycles, name string, fn func(now Time)) *Event {
	return e.At(e.now+Time(d), name, fn)
}

// NewEvent returns an unscheduled caller-owned event bound to fn. Arm it
// with Schedule/ScheduleAfter; it may be re-armed after each firing (a
// recurring timer re-arms itself from inside fn) and is never recycled,
// so a long-lived periodic event costs one allocation for the machine's
// lifetime.
func (e *Engine) NewEvent(name string, fn func(now Time)) *Event {
	return &Event{Name: name, Fn: fn, owned: true}
}

// NewPeriodicEvent is NewEvent for strictly-periodic or frequently
// re-armed timers (per-CPU ticks, IPI/dispatch latencies, watchdog
// sweeps): the hint makes the event wheel-eligible for any deadline
// inside the wheel horizon, not just near ones, so a long-period timer
// still avoids the heap.
func (e *Engine) NewPeriodicEvent(name string, fn func(now Time)) *Event {
	return &Event{Name: name, Fn: fn, owned: true, periodic: true}
}

// Schedule arms a caller-owned event at absolute time at. The event must
// not be currently queued (a cancelled event stays queued until the heap
// skips past it) and must have been built with NewEvent.
func (e *Engine) Schedule(ev *Event, at Time) {
	if !ev.owned {
		panic("sim: Schedule of an engine-owned event (use At/After)")
	}
	if ev.queued {
		panic("sim: Schedule of an event still queued")
	}
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	ev.At = at
	ev.cancelled = false
	e.arm(ev, at)
}

// ScheduleAfter arms a caller-owned event d cycles from now.
func (e *Engine) ScheduleAfter(ev *Event, d Cycles) {
	e.Schedule(ev, e.now+Time(d))
}

// arm assigns the next sequence number and queues the event, routing it
// to the timer wheel when its deadline is in wheel range and to the heap
// otherwise. Routing depends only on deterministic state (cursor, clock,
// hint), so replays stay bit-identical.
func (e *Engine) arm(ev *Event, at Time) {
	ev.seq = e.nexts
	e.nexts++
	ev.queued = true
	e.live++
	ev.inWheel = e.wheelInsert(ev, at)
	if !ev.inWheel {
		e.push(entry{at: at, seq: ev.seq, ev: ev})
	}
}

// alloc takes an event from the freelist, or allocates when warm-up has
// not yet populated it.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.cancelled = false
		return ev
	}
	return new(Event)
}

// release returns a fired or cancel-skipped event to the freelist.
// Caller-owned events (which their owner may re-arm) are left alone.
func (e *Engine) release(ev *Event) {
	if ev.owned || ev.queued {
		return
	}
	ev.Fn = nil // do not pin the callback's captures until reuse
	e.free = append(e.free, ev)
}

// Cancel removes a pending event in O(1): the event is marked dead and
// skipped (and recycled) when it surfaces at the heap root. Cancelling an
// already-fired or already-cancelled event is a no-op — but note that a
// fired engine-owned event may already back a later At/After, so callers
// must drop their reference to an event once it has fired.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	if ev.queued {
		e.live--
	}
}

// next returns the live event with the smallest (At, seq) at or before
// limit, across the heap and the wheel, or nil. The heap root caps how
// far the wheel cursor may advance, so a heap event firing first can
// never strand the cursor past deadlines armed afterwards.
func (e *Engine) next(limit Time) *Event {
	var hev *Event
	for len(e.heap) > 0 {
		top := e.heap[0].ev
		if !top.cancelled {
			hev = top
			break
		}
		e.pop()
		e.release(top)
	}
	wlimit := limit
	if hev != nil && hev.At < wlimit {
		wlimit = hev.At
	}
	if wev := e.wheelEarliest(wlimit); wev != nil {
		if hev == nil || wev.At < hev.At || (wev.At == hev.At && wev.seq < hev.seq) {
			return wev
		}
	}
	if hev != nil && hev.At <= limit {
		return hev
	}
	return nil
}

// dispatch fires the next event at or before limit, reporting whether
// one fired.
func (e *Engine) dispatch(limit Time) bool {
	ev := e.next(limit)
	if ev == nil {
		return false
	}
	if ev.inWheel {
		e.popWheel(ev)
		e.firedWheel++
	} else {
		e.pop()
		e.firedHeap++
	}
	e.live--
	e.now = ev.At
	ev.Fn(e.now)
	e.release(ev)
	return true
}

// Step dispatches the next pending event, advancing the clock to its time.
// It returns false when no events remain or the MaxDur horizon has been
// reached.
func (e *Engine) Step() bool {
	limit := maxTime
	if e.MaxDur != 0 {
		limit = e.MaxDur
	}
	return e.dispatch(limit)
}

// Run dispatches events until none remain, stop returns true, or the
// MaxDur horizon is reached. A nil stop runs to completion.
func (e *Engine) Run(stop func() bool) {
	for {
		if stop != nil && stop() {
			return
		}
		if !e.Step() {
			return
		}
	}
}

// RunFor dispatches events until the clock would pass now+d. Events at
// exactly now+d still run. On return the clock stands at the deadline —
// clamped to the MaxDur horizon when that cuts the window short — even if
// no event reached it.
func (e *Engine) RunFor(d Cycles) {
	deadline := e.now + Time(d)
	limit := deadline
	if e.MaxDur != 0 && e.MaxDur < limit {
		limit = e.MaxDur
	}
	for e.dispatch(limit) {
	}
	if e.MaxDur != 0 && deadline > e.MaxDur {
		deadline = e.MaxDur
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Reset returns the engine to its zero state while keeping every
// allocation — heap array, freelist, wheel rings — so one engine can run
// many simulations back to back without re-paying construction. Pending
// engine-owned events are recycled; caller-owned events are detached
// (their owners die with the simulation that armed them).
func (e *Engine) Reset() {
	for i := range e.heap {
		ev := e.heap[i].ev
		e.heap[i] = entry{}
		ev.queued = false
		ev.cancelled = false
		e.release(ev)
	}
	e.heap = e.heap[:0]
	e.wheelReset()
	e.now = 0
	e.nexts = 0
	e.firedWheel = 0
	e.firedHeap = 0
	e.live = 0
	e.MaxDur = 0
}

// push appends the entry and restores the heap property upward. The moved
// entries are shifted as a hole rather than swapped pairwise.
func (e *Engine) push(en entry) {
	e.heap = append(e.heap, en)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !en.before(e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = en
}

// pop removes the root entry, restoring the heap property downward.
func (e *Engine) pop() {
	root := e.heap[0].ev
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = entry{}
	e.heap = e.heap[:n]
	root.queued = false
	if n == 0 {
		return
	}
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.heap[c].before(e.heap[best]) {
				best = c
			}
		}
		if !e.heap[best].before(last) {
			break
		}
		e.heap[i] = e.heap[best]
		i = best
	}
	e.heap[i] = last
}
