// Package sim provides a deterministic discrete-event simulation engine.
//
// Virtual time is measured in CPU cycles (Time). Events fire in
// (time, sequence) order so that two events scheduled for the same instant
// run in the order they were scheduled, which keeps every simulation
// bit-for-bit reproducible for a given seed.
//
// The engine is built for wall-clock speed as much as determinism: the
// pending set is a hand-rolled indexed 4-ary min-heap over inline
// (time, sequence) keys (no interface boxing, no pointer chasing during
// sift), fired events are recycled through a freelist so a steady-state
// schedule→dispatch cycle allocates nothing, and Cancel is O(1) lazy
// (the event is marked dead and skipped when it reaches the top) instead
// of an O(log n) heap removal.
package sim

// Time is a point in virtual time, in CPU clock cycles.
type Time uint64

// Cycles is a duration in CPU clock cycles.
type Cycles = uint64

// Event is a scheduled callback. Events are single-shot; recurring behavior
// is built by rescheduling from within the callback.
//
// Events returned by At and After are owned by the engine: once the
// callback has fired, the object is recycled for a later At/After and the
// old pointer must not be used again (drop or nil any reference to a fired
// event before scheduling new work). Events built with NewEvent are owned
// by the caller, are never recycled, and may be re-armed with Schedule —
// the shape for recurring timers that must not touch the allocator.
type Event struct {
	At   Time
	Fn   func(now Time)
	Name string // for traces and debugging

	seq       uint64
	queued    bool
	cancelled bool
	owned     bool // caller-owned (NewEvent): never recycled
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Pending reports whether the event is still queued to fire.
func (e *Event) Pending() bool { return e.queued && !e.cancelled }

// entry is one heap slot. The ordering key is stored inline so the 4-way
// child comparisons in sift-down stay within the slice instead of chasing
// an Event pointer per candidate.
type entry struct {
	at  Time
	seq uint64
	ev  *Event
}

// before reports heap order: earlier time first, scheduling order within
// the same instant.
func (a entry) before(b entry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Engine owns the virtual clock and the pending event set.
// The zero value is ready to use.
type Engine struct {
	now    Time
	heap   []entry
	free   []*Event
	nexts  uint64
	fired  uint64
	live   int  // queued events not lazily cancelled
	MaxDur Time // optional hard stop measured from time zero; 0 = none
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued to fire
// (lazily-cancelled events still in the heap do not count).
func (e *Engine) Pending() int { return e.live }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it would corrupt causality.
func (e *Engine) At(at Time, name string, fn func(now Time)) *Event {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := e.alloc()
	ev.At = at
	ev.Fn = fn
	ev.Name = name
	e.arm(ev, at)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycles, name string, fn func(now Time)) *Event {
	return e.At(e.now+Time(d), name, fn)
}

// NewEvent returns an unscheduled caller-owned event bound to fn. Arm it
// with Schedule/ScheduleAfter; it may be re-armed after each firing (a
// recurring timer re-arms itself from inside fn) and is never recycled,
// so a long-lived periodic event costs one allocation for the machine's
// lifetime.
func (e *Engine) NewEvent(name string, fn func(now Time)) *Event {
	return &Event{Name: name, Fn: fn, owned: true}
}

// Schedule arms a caller-owned event at absolute time at. The event must
// not be currently queued (a cancelled event stays queued until the heap
// skips past it) and must have been built with NewEvent.
func (e *Engine) Schedule(ev *Event, at Time) {
	if !ev.owned {
		panic("sim: Schedule of an engine-owned event (use At/After)")
	}
	if ev.queued {
		panic("sim: Schedule of an event still queued")
	}
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	ev.At = at
	ev.cancelled = false
	e.arm(ev, at)
}

// ScheduleAfter arms a caller-owned event d cycles from now.
func (e *Engine) ScheduleAfter(ev *Event, d Cycles) {
	e.Schedule(ev, e.now+Time(d))
}

// arm assigns the next sequence number and pushes the event.
func (e *Engine) arm(ev *Event, at Time) {
	ev.seq = e.nexts
	e.nexts++
	ev.queued = true
	e.push(entry{at: at, seq: ev.seq, ev: ev})
	e.live++
}

// alloc takes an event from the freelist, or allocates when warm-up has
// not yet populated it.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.cancelled = false
		return ev
	}
	return new(Event)
}

// release returns a fired or cancel-skipped event to the freelist.
// Caller-owned events (which their owner may re-arm) are left alone.
func (e *Engine) release(ev *Event) {
	if ev.owned || ev.queued {
		return
	}
	ev.Fn = nil // do not pin the callback's captures until reuse
	e.free = append(e.free, ev)
}

// Cancel removes a pending event in O(1): the event is marked dead and
// skipped (and recycled) when it surfaces at the heap root. Cancelling an
// already-fired or already-cancelled event is a no-op — but note that a
// fired engine-owned event may already back a later At/After, so callers
// must drop their reference to an event once it has fired.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	if ev.queued {
		e.live--
	}
}

// peek prunes lazily-cancelled events off the heap root and returns the
// next live event, or nil when none remain.
func (e *Engine) peek() *Event {
	for len(e.heap) > 0 {
		ev := e.heap[0].ev
		if !ev.cancelled {
			return ev
		}
		e.pop()
		e.release(ev)
	}
	return nil
}

// Step dispatches the next pending event, advancing the clock to its time.
// It returns false when no events remain or the MaxDur horizon has been
// reached.
func (e *Engine) Step() bool {
	ev := e.peek()
	if ev == nil {
		return false
	}
	if e.MaxDur != 0 && ev.At > e.MaxDur {
		return false
	}
	e.pop()
	e.live--
	e.now = ev.At
	e.fired++
	ev.Fn(e.now)
	e.release(ev)
	return true
}

// Run dispatches events until none remain, stop returns true, or the
// MaxDur horizon is reached. A nil stop runs to completion.
func (e *Engine) Run(stop func() bool) {
	for {
		if stop != nil && stop() {
			return
		}
		if !e.Step() {
			return
		}
	}
}

// RunFor dispatches events until the clock would pass now+d. Events at
// exactly now+d still run. On return the clock stands at the deadline —
// clamped to the MaxDur horizon when that cuts the window short — even if
// no event reached it.
func (e *Engine) RunFor(d Cycles) {
	deadline := e.now + Time(d)
	for {
		ev := e.peek()
		if ev == nil || ev.At > deadline || !e.Step() {
			break
		}
	}
	if e.MaxDur != 0 && deadline > e.MaxDur {
		deadline = e.MaxDur
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// push appends the entry and restores the heap property upward. The moved
// entries are shifted as a hole rather than swapped pairwise.
func (e *Engine) push(en entry) {
	e.heap = append(e.heap, en)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !en.before(e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = en
}

// pop removes the root entry, restoring the heap property downward.
func (e *Engine) pop() {
	root := e.heap[0].ev
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = entry{}
	e.heap = e.heap[:n]
	root.queued = false
	if n == 0 {
		return
	}
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.heap[c].before(e.heap[best]) {
				best = c
			}
		}
		if !e.heap[best].before(last) {
			break
		}
		e.heap[i] = e.heap[best]
		i = best
	}
	e.heap[i] = last
}
