package sim

import (
	"fmt"
	"testing"
)

// FuzzEventHeap drives the engine with an arbitrary interleaving of
// schedule / cancel / step operations and checks the invariants the whole
// simulator rests on:
//
//   - events fire in strict (time, scheduling-order) order;
//   - a cancelled event never fires, and cancel-skipping one never
//     perturbs its neighbors;
//   - freelist reuse never resurrects a fired event: every live logical
//     event fires exactly once, even though the engine recycles Event
//     objects underneath;
//   - the Pending count matches the model at every step.
//
// Each op consumes two bytes: an opcode and an argument.
func FuzzEventHeap(f *testing.F) {
	f.Add([]byte{0, 10, 0, 10, 2, 0, 0, 5, 1, 0, 2, 0, 2, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 1, 2, 0, 0, 3})
	f.Add([]byte{0, 200, 1, 0, 0, 1, 2, 0, 0, 0, 1, 1, 0, 7, 2, 0, 2, 0, 2, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		type logical struct {
			at        Time
			order     int // global scheduling order
			ev        *Event
			fired     bool
			cancelled bool
		}
		var (
			e       Engine
			events  []*logical
			fireLog []*logical
			order   int
		)
		schedule := func(offset byte) {
			l := &logical{at: e.Now() + Time(offset), order: order}
			order++
			l.ev = e.At(l.at, "fuzz", func(now Time) {
				if l.fired {
					t.Fatalf("event #%d fired twice (freelist resurrected it)", l.order)
				}
				if l.cancelled {
					t.Fatalf("cancelled event #%d fired", l.order)
				}
				if now != l.at {
					t.Fatalf("event #%d fired at %d, scheduled for %d", l.order, now, l.at)
				}
				l.fired = true
				fireLog = append(fireLog, l)
			})
			events = append(events, l)
		}
		cancel := func(pick byte) {
			var cands []*logical
			for _, l := range events {
				if !l.fired && !l.cancelled {
					cands = append(cands, l)
				}
			}
			if len(cands) == 0 {
				return
			}
			l := cands[int(pick)%len(cands)]
			e.Cancel(l.ev)
			l.cancelled = true
		}
		modelPending := func() int {
			n := 0
			for _, l := range events {
				if !l.fired && !l.cancelled {
					n++
				}
			}
			return n
		}
		for i := 0; i+1 < len(ops); i += 2 {
			switch ops[i] % 3 {
			case 0:
				schedule(ops[i+1])
			case 1:
				cancel(ops[i+1])
			case 2:
				e.Step()
			}
			if got, want := e.Pending(), modelPending(); got != want {
				t.Fatalf("Pending = %d, model says %d", got, want)
			}
		}
		e.Run(nil)
		if e.Pending() != 0 {
			t.Fatalf("Pending = %d after drain, want 0", e.Pending())
		}
		for _, l := range events {
			if l.cancelled && l.fired {
				t.Fatalf("event #%d both cancelled and fired", l.order)
			}
			if !l.cancelled && !l.fired {
				t.Fatalf("live event #%d never fired", l.order)
			}
		}
		for i := 1; i < len(fireLog); i++ {
			a, b := fireLog[i-1], fireLog[i]
			if a.at > b.at || (a.at == b.at && a.order > b.order) {
				t.Fatalf("fire order violated: #%d@%d before #%d@%d",
					a.order, a.at, b.order, b.at)
			}
		}
	})
}

// FuzzWheelHeapDiff is the wheel-vs-heap differential fuzzer: the same
// operation stream drives two engines — a hybrid one routing eligible
// events through the timer wheel, and one with the wheel disabled so
// every event takes the min-heap path — and every observable must
// match: fire order, fire times, Pending counts, and final drain. The
// wheel is a pure fast path; any divergence is an ordering bug.
//
// Each op consumes three bytes: an opcode and two arguments. The delta
// encoding (a+1)<<(b%36) reaches every wheel level, the unhinted
// one-shot cutoff, the periodic horizon, and the heap fallback beyond
// it. Periodic-hinted owned events are re-armed through a fixed pool,
// exercising slot reuse and lap wrap; cancels exercise lazy-cancel
// pruning in both structures.
func FuzzWheelHeapDiff(f *testing.F) {
	// A tick-like periodic pattern, a multi-level burst, a cancel-heavy
	// stream, and a horizon hopper.
	f.Add([]byte{1, 3, 22, 3, 0, 0, 3, 0, 0, 1, 3, 22, 3, 0, 0})
	f.Add([]byte{0, 10, 2, 0, 10, 12, 0, 10, 21, 0, 10, 32, 0, 10, 35, 3, 0, 0, 3, 0, 0, 3, 0, 0, 3, 0, 0, 3, 0, 0})
	f.Add([]byte{0, 1, 4, 0, 2, 4, 0, 3, 4, 2, 1, 0, 2, 0, 0, 3, 0, 0, 3, 0, 0})
	f.Add([]byte{1, 200, 33, 1, 100, 30, 3, 0, 0, 3, 0, 0, 1, 50, 35, 3, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const ownedPool = 4
		type handle struct {
			id        int
			a, b      *Event // the two engines' events for this logical op
			fired     bool   // hybrid-side logical state; used to gate cancels
			cancelled bool   //   (the Event objects recycle after firing)
		}
		var (
			hybrid, heapOnly Engine
			nextID           int
			fireA, fireB     []string
			oneShots         []*handle
		)
		heapOnly.noWheel = true
		// Owned periodic events: a fixed pool per engine, re-armed by
		// ops. The per-slot id is updated at arm time; both engines see
		// identical arm sequences, so matching logs mean matching order.
		var ownedID [ownedPool]int
		var ownedA, ownedB [ownedPool]*Event
		for k := 0; k < ownedPool; k++ {
			k := k
			ownedA[k] = hybrid.NewPeriodicEvent("p", func(now Time) {
				fireA = append(fireA, fmt.Sprintf("o%d@%d", ownedID[k], now))
			})
			ownedB[k] = heapOnly.NewPeriodicEvent("p", func(now Time) {
				fireB = append(fireB, fmt.Sprintf("o%d@%d", ownedID[k], now))
			})
		}
		delta := func(a, b byte) Time {
			return Time(uint64(a)+1) << (b % 36)
		}
		for i := 0; i+2 < len(ops); i += 3 {
			op, a, b := ops[i]%4, ops[i+1], ops[i+2]
			switch op {
			case 0: // one-shot at now+delta on both engines
				h := &handle{id: nextID}
				nextID++
				at := hybrid.Now() + delta(a, b)
				h.a = hybrid.At(at, "f", func(now Time) {
					h.fired = true
					fireA = append(fireA, fmt.Sprintf("s%d@%d", h.id, now))
				})
				h.b = heapOnly.At(at, "f", func(now Time) {
					fireB = append(fireB, fmt.Sprintf("s%d@%d", h.id, now))
				})
				oneShots = append(oneShots, h)
			case 1: // (re-)arm an owned periodic event if free
				k := int(a) % ownedPool
				if ownedA[k].queued != ownedB[k].queued {
					t.Fatalf("owned[%d] queued state diverged: hybrid=%v heap=%v",
						k, ownedA[k].queued, ownedB[k].queued)
				}
				if ownedA[k].queued {
					continue
				}
				ownedID[k] = nextID
				nextID++
				d := Cycles(delta(a, b))
				hybrid.ScheduleAfter(ownedA[k], d)
				heapOnly.ScheduleAfter(ownedB[k], d)
			case 2: // cancel a live one-shot (same one in both engines).
				// Gate on the handle's logical state, not the Event's:
				// a fired one-shot's Event recycles through the freelist
				// and may already carry a different logical event.
				var cands []*handle
				for _, h := range oneShots {
					if !h.fired && !h.cancelled {
						cands = append(cands, h)
					}
				}
				if len(cands) == 0 {
					continue
				}
				h := cands[int(a)%len(cands)]
				h.cancelled = true
				hybrid.Cancel(h.a)
				heapOnly.Cancel(h.b)
			case 3: // step both
				sa := hybrid.Step()
				sb := heapOnly.Step()
				if sa != sb {
					t.Fatalf("Step diverged: hybrid=%v heap=%v", sa, sb)
				}
			}
			if hybrid.Pending() != heapOnly.Pending() {
				t.Fatalf("Pending diverged after op %d: hybrid=%d heap=%d",
					i/3, hybrid.Pending(), heapOnly.Pending())
			}
			if hybrid.Now() != heapOnly.Now() {
				t.Fatalf("Now diverged after op %d: hybrid=%d heap=%d",
					i/3, hybrid.Now(), heapOnly.Now())
			}
		}
		hybrid.Run(nil)
		heapOnly.Run(nil)
		if len(fireA) != len(fireB) {
			t.Fatalf("fire counts diverged: hybrid=%d heap=%d", len(fireA), len(fireB))
		}
		for i := range fireA {
			if fireA[i] != fireB[i] {
				t.Fatalf("fire order diverged at %d: hybrid=%s heap=%s", i, fireA[i], fireB[i])
			}
		}
		if hybrid.Pending() != 0 || heapOnly.Pending() != 0 {
			t.Fatalf("undrained: hybrid=%d heap=%d", hybrid.Pending(), heapOnly.Pending())
		}
	})
}
