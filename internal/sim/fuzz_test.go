package sim

import "testing"

// FuzzEventHeap drives the engine with an arbitrary interleaving of
// schedule / cancel / step operations and checks the invariants the whole
// simulator rests on:
//
//   - events fire in strict (time, scheduling-order) order;
//   - a cancelled event never fires, and cancel-skipping one never
//     perturbs its neighbors;
//   - freelist reuse never resurrects a fired event: every live logical
//     event fires exactly once, even though the engine recycles Event
//     objects underneath;
//   - the Pending count matches the model at every step.
//
// Each op consumes two bytes: an opcode and an argument.
func FuzzEventHeap(f *testing.F) {
	f.Add([]byte{0, 10, 0, 10, 2, 0, 0, 5, 1, 0, 2, 0, 2, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 1, 2, 0, 0, 3})
	f.Add([]byte{0, 200, 1, 0, 0, 1, 2, 0, 0, 0, 1, 1, 0, 7, 2, 0, 2, 0, 2, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		type logical struct {
			at        Time
			order     int // global scheduling order
			ev        *Event
			fired     bool
			cancelled bool
		}
		var (
			e       Engine
			events  []*logical
			fireLog []*logical
			order   int
		)
		schedule := func(offset byte) {
			l := &logical{at: e.Now() + Time(offset), order: order}
			order++
			l.ev = e.At(l.at, "fuzz", func(now Time) {
				if l.fired {
					t.Fatalf("event #%d fired twice (freelist resurrected it)", l.order)
				}
				if l.cancelled {
					t.Fatalf("cancelled event #%d fired", l.order)
				}
				if now != l.at {
					t.Fatalf("event #%d fired at %d, scheduled for %d", l.order, now, l.at)
				}
				l.fired = true
				fireLog = append(fireLog, l)
			})
			events = append(events, l)
		}
		cancel := func(pick byte) {
			var cands []*logical
			for _, l := range events {
				if !l.fired && !l.cancelled {
					cands = append(cands, l)
				}
			}
			if len(cands) == 0 {
				return
			}
			l := cands[int(pick)%len(cands)]
			e.Cancel(l.ev)
			l.cancelled = true
		}
		modelPending := func() int {
			n := 0
			for _, l := range events {
				if !l.fired && !l.cancelled {
					n++
				}
			}
			return n
		}
		for i := 0; i+1 < len(ops); i += 2 {
			switch ops[i] % 3 {
			case 0:
				schedule(ops[i+1])
			case 1:
				cancel(ops[i+1])
			case 2:
				e.Step()
			}
			if got, want := e.Pending(), modelPending(); got != want {
				t.Fatalf("Pending = %d, model says %d", got, want)
			}
		}
		e.Run(nil)
		if e.Pending() != 0 {
			t.Fatalf("Pending = %d after drain, want 0", e.Pending())
		}
		for _, l := range events {
			if l.cancelled && l.fired {
				t.Fatalf("event #%d both cancelled and fired", l.order)
			}
			if !l.cancelled && !l.fired {
				t.Fatalf("live event #%d never fired", l.order)
			}
		}
		for i := 1; i < len(fireLog); i++ {
			a, b := fireLog[i-1], fireLog[i]
			if a.at > b.at || (a.at == b.at && a.order > b.order) {
				t.Fatalf("fire order violated: #%d@%d before #%d@%d",
					a.order, a.at, b.order, b.at)
			}
		}
	})
}
