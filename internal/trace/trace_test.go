package trace

import (
	"strings"
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/sim"
	"elsc/internal/task"
)

func ev(at sim.Time, cpu int) kernel.TraceEvent {
	prev := task.New(-1, "idle", nil, nil)
	prev.IsIdle = true
	return kernel.TraceEvent{Now: at, CPU: cpu, Prev: prev, Examined: 1, Cycles: 100}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.add(ev(sim.Time(i), 0))
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("len = %d, want 3", len(events))
	}
	for i, want := range []sim.Time{3, 4, 5} {
		if events[i].Now != want {
			t.Fatalf("events[%d].Now = %d, want %d", i, events[i].Now, want)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(10)
	r.add(ev(1, 0))
	r.add(ev(2, 0))
	events := r.Events()
	if len(events) != 2 || events[0].Now != 1 || events[1].Now != 2 {
		t.Fatalf("events = %v", events)
	}
}

func TestRingZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) should panic")
		}
	}()
	NewRing(0)
}

func TestRenderAndSummary(t *testing.T) {
	r := NewRing(8)
	e := ev(42, 1)
	e.Recalcs = 2
	r.add(e)
	out := r.Render()
	if !strings.Contains(out, "recalc x2") {
		t.Fatalf("render missing recalc note:\n%s", out)
	}
	if !strings.Contains(out, "idle") {
		t.Fatalf("render missing idle next:\n%s", out)
	}
	sum := r.Summary()
	if !strings.Contains(sum, "1 buffered of 1 total") {
		t.Fatalf("summary = %q", sum)
	}
}

func TestSummaryEmpty(t *testing.T) {
	if NewRing(4).Summary() != "trace: no events" {
		t.Fatal("empty summary wrong")
	}
}

func TestHookOnLiveMachine(t *testing.T) {
	r := NewRing(64)
	m := kernel.NewMachine(kernel.Config{
		CPUs:         1,
		Seed:         1,
		NewScheduler: func(env *sched.Env) sched.Scheduler { return elsc.New(env) },
		MaxCycles:    5 * kernel.DefaultHz,
		Trace:        r.Hook(),
	})
	n := 0
	p := m.Spawn("w", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if n >= 5 {
			return kernel.Exit{}
		}
		n++
		return kernel.Sleep{Cycles: 10_000}
	}))
	m.Run(func() bool { return p.Exited() })
	if r.Total() == 0 {
		t.Fatal("hook captured nothing")
	}
	if r.Total() != m.Stats().SchedCalls {
		t.Fatalf("ring total %d != sched calls %d", r.Total(), m.Stats().SchedCalls)
	}
	if len(strings.Split(r.Render(), "\n")) < 3 {
		t.Fatal("render too short")
	}
}
