// Package trace provides a fixed-capacity ring buffer for scheduler
// events with text rendering — the moral equivalent of a kernel trace
// buffer read through a /proc file. It plugs into kernel.Config.Trace and
// keeps the most recent N decisions with negligible overhead, so a long
// simulation can be inspected post-mortem without storing millions of
// events.
package trace

import (
	"fmt"
	"strings"

	"elsc/internal/kernel"
)

// Ring is a fixed-capacity circular buffer of schedule() decisions.
type Ring struct {
	buf   []kernel.TraceEvent
	next  int
	total uint64
}

// NewRing returns a ring holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: ring capacity must be positive")
	}
	return &Ring{buf: make([]kernel.TraceEvent, 0, capacity)}
}

// Hook returns the function to install as kernel.Config.Trace.
func (r *Ring) Hook() func(kernel.TraceEvent) {
	return func(ev kernel.TraceEvent) { r.add(ev) }
}

func (r *Ring) add(ev kernel.TraceEvent) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
}

// Len returns the number of buffered events.
func (r *Ring) Len() int { return len(r.buf) }

// Total returns how many events have passed through the ring.
func (r *Ring) Total() uint64 { return r.total }

// Events returns the buffered events oldest-first.
func (r *Ring) Events() []kernel.TraceEvent {
	out := make([]kernel.TraceEvent, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Render formats the buffered events as a text table, oldest first.
func (r *Ring) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-4s %-20s %-20s %8s %9s %6s %s\n",
		"TIME", "CPU", "PREV", "NEXT", "EXAMINED", "CYCLES", "SPIN", "NOTES")
	for _, ev := range r.Events() {
		next := "idle"
		if ev.Next != nil {
			next = ev.Next.String()
		}
		notes := ""
		if ev.Recalcs > 0 {
			notes = fmt.Sprintf("recalc x%d", ev.Recalcs)
		}
		fmt.Fprintf(&b, "%-14d %-4d %-20s %-20s %8d %9d %6d %s\n",
			ev.Now, ev.CPU, ev.Prev.String(), next, ev.Examined, ev.Cycles, ev.Spin, notes)
	}
	return b.String()
}

// Summary aggregates the buffered window: decisions, idle picks,
// recalculations, and mean cost.
func (r *Ring) Summary() string {
	events := r.Events()
	if len(events) == 0 {
		return "trace: no events"
	}
	var cycles, spin uint64
	idle, recalcs := 0, 0
	for _, ev := range events {
		cycles += ev.Cycles
		spin += ev.Spin
		if ev.Next == nil {
			idle++
		}
		recalcs += ev.Recalcs
	}
	return fmt.Sprintf(
		"trace: %d buffered of %d total | mean %d cycles + %d spin per decision | %d idle picks | %d recalcs",
		len(events), r.total,
		cycles/uint64(len(events)), spin/uint64(len(events)), idle, recalcs)
}
