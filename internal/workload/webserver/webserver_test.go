package webserver

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/sched/vanilla"
)

func newMachine(cpus int, useELSC bool) *kernel.Machine {
	factory := func(env *sched.Env) sched.Scheduler { return vanilla.New(env) }
	if useELSC {
		factory = func(env *sched.Env) sched.Scheduler { return elsc.New(env) }
	}
	return kernel.NewMachine(kernel.Config{
		CPUs:         cpus,
		SMP:          cpus > 1,
		Seed:         5,
		NewScheduler: factory,
		MaxCycles:    600 * kernel.DefaultHz,
	})
}

func small() Config {
	return Config{Workers: 8, Requests: 300, ArrivalPeriod: 60_000}
}

func TestServesAllRequests(t *testing.T) {
	for _, useELSC := range []bool{false, true} {
		m := newMachine(1, useELSC)
		s := New(m, small())
		res := s.Run()
		if res.Served != res.Requests {
			t.Fatalf("served %d of %d", res.Served, res.Requests)
		}
		if res.Throughput <= 0 {
			t.Fatal("no throughput")
		}
	}
}

func TestLatencyMeasured(t *testing.T) {
	m := newMachine(2, true)
	s := New(m, small())
	res := s.Run()
	if res.MeanLatMS <= 0 {
		t.Fatal("no latency recorded")
	}
	if res.MaxLatMS < res.MeanLatMS {
		t.Fatal("max latency below mean")
	}
}

func TestThroughputBoundedByOfferedLoad(t *testing.T) {
	m := newMachine(4, true)
	s := New(m, small())
	res := s.Run()
	offered := float64(kernel.DefaultHz) / float64(small().ArrivalPeriod)
	if res.Throughput > offered*1.25 {
		t.Fatalf("throughput %.0f exceeds offered load %.0f", res.Throughput, offered)
	}
}

func TestOverloadDropsOrQueues(t *testing.T) {
	// Offered load far above capacity must still terminate (backlog
	// bounds the queue; the run serves exactly Requests).
	m := newMachine(1, true)
	s := New(m, Config{Workers: 4, Requests: 200, ArrivalPeriod: 5_000})
	res := s.Run()
	if res.Served+res.Dropped != 200 {
		t.Fatalf("served %d + dropped %d, want 200 total", res.Served, res.Dropped)
	}
	if res.Served == 0 {
		t.Fatal("nothing served under overload")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		m := newMachine(2, true)
		return New(m, small()).Run().Seconds
	}
	if run() != run() {
		t.Fatal("webserver sim not deterministic")
	}
}

func TestMoreWorkersHelpUnderDiskLoad(t *testing.T) {
	// With many cache misses, a larger pool overlaps disk waits.
	run := func(workers int) float64 {
		m := newMachine(1, true)
		s := New(m, Config{
			Workers: workers, Requests: 150, ArrivalPeriod: 20_000,
			CacheHitRate: 0.3,
		})
		return s.Run().Throughput
	}
	few, many := run(2), run(32)
	if many <= few {
		t.Fatalf("32 workers (%.0f req/s) should beat 2 workers (%.0f req/s)", many, few)
	}
}
