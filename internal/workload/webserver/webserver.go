// Package webserver simulates the Apache-style workload the paper's
// future-work section asks about (§8): "One such example is a web server
// running Apache. Would we see the same performance gains we saw while
// running VolanoMark ...? Would the ELSC scheduler be more effective in
// increasing throughput or decreasing the latency of an Apache web
// server?"
//
// The model is Apache 1.3's process-per-connection architecture: an
// open-loop arrival process feeds an accept queue drained by a pool of
// worker processes, each of which parses the request, serves it from page
// cache or disk, and writes the response through the serialized network
// stack. Unlike VolanoMark, workers share no user-level locks and each
// request touches one task — so the scheduler's share of the work is
// smaller, which is exactly what the experiment measures.
package webserver

import (
	"fmt"

	"elsc/internal/ipc"
	"elsc/internal/kernel"
	"elsc/internal/sim"
	"elsc/internal/stats"
)

// Config sizes the web workload.
type Config struct {
	// Workers is the Apache process pool size (default 64).
	Workers int
	// Requests is the total request count to serve (default 20000).
	Requests int
	// ArrivalPeriod is the mean cycles between request arrivals
	// (default 40000 = 10k req/s offered at 400 MHz).
	ArrivalPeriod uint64
	// ParseCost is the request-parsing CPU burst.
	ParseCost uint64
	// RespondCost is the response-write CPU burst.
	RespondCost uint64
	// CacheHitRate is the fraction of requests served from page cache.
	CacheHitRate float64
	// DiskLatency is the sleep for a cache miss.
	DiskLatency uint64
	// AcceptQueueCap bounds the listen backlog (default 128).
	AcceptQueueCap int
	// NetSerialHold is the serialized network-stack portion per
	// response, as in the VolanoMark model.
	NetSerialHold uint64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers == 0 {
		out.Workers = 64
	}
	if out.Requests == 0 {
		out.Requests = 20000
	}
	if out.ArrivalPeriod == 0 {
		out.ArrivalPeriod = 40_000
	}
	if out.ParseCost == 0 {
		out.ParseCost = 15_000
	}
	if out.RespondCost == 0 {
		out.RespondCost = 25_000
	}
	if out.CacheHitRate == 0 {
		out.CacheHitRate = 0.9
	}
	if out.DiskLatency == 0 {
		out.DiskLatency = 3_000_000 // 7.5 ms seek+read
	}
	if out.AcceptQueueCap == 0 {
		out.AcceptQueueCap = 128
	}
	if out.NetSerialHold == 0 {
		out.NetSerialHold = 9_000
	}
	return out
}

// Server is a constructed web-server workload.
type Server struct {
	cfg     Config
	m       *kernel.Machine
	accept  *ipc.Queue
	workers []*kernel.Proc

	arrived   int
	served    int
	dropped   int
	latency   stats.Dist
	rng       *sim.RNG
	arrivalEv *sim.Event

	// parseAct and respondAct are the fixed per-request bursts, boxed
	// once and shared by every worker (the kernel copies the cycle count
	// out on consumption), so the steady-state request loop allocates
	// nothing.
	parseAct   kernel.Action
	respondAct kernel.Action
}

// New constructs the server and starts the arrival process.
func New(m *kernel.Machine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, m: m, rng: m.RNG().Fork()}
	s.parseAct = kernel.Compute{Cycles: cfg.ParseCost}
	s.respondAct = kernel.Compute{Cycles: cfg.RespondCost}
	s.accept = ipc.NewQueue("accept", cfg.AcceptQueueCap)
	s.accept.Serial = m.NewSerialResource("netstack")
	s.accept.SerialHold = cfg.NetSerialHold
	s.arrivalEv = m.Engine().NewPeriodicEvent("request-arrival", s.onArrival)

	mm := m.NewMM("httpd")
	for w := 0; w < cfg.Workers; w++ {
		s.workers = append(s.workers, m.Spawn(fmt.Sprintf("httpd/%d", w), mm, s.newWorker()))
	}
	s.scheduleArrival()
	return s
}

// scheduleArrival books the next request arrival on the re-armable
// arrival event; arrivals are exponential-ish via a uniform period in
// [p/2, 3p/2].
func (s *Server) scheduleArrival() {
	if s.arrived >= s.cfg.Requests {
		return
	}
	gap := s.rng.Range(s.cfg.ArrivalPeriod/2, s.cfg.ArrivalPeriod*3/2)
	s.m.Engine().ScheduleAfter(s.arrivalEv, gap)
}

// onArrival delivers one request and books the next.
func (s *Server) onArrival(now sim.Time) {
	s.arrived++
	// Stamp the arrival time for latency measurement. If the
	// backlog is full the request is dropped, as listen(2) would.
	if s.accept.Len() < s.cfg.AcceptQueueCap {
		s.injectRequest(now)
	} else {
		s.dropped++
	}
	s.scheduleArrival()
}

// injectRequest places a request on the accept queue directly (the
// arrival process is not a simulated task) and wakes a worker.
func (s *Server) injectRequest(now sim.Time) {
	s.accept.Inject(s.m, ipc.Msg{Payload: int64(now)})
}

// newWorker is one Apache process: accept, parse, maybe hit the disk,
// respond, repeat.
func (s *Server) newWorker() kernel.Program {
	phase := 0
	var req ipc.Msg
	disk := &kernel.Sleep{}
	return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		for {
			switch phase {
			case 0: // accept
				if s.Done() {
					return kernel.Exit{}
				}
				phase = 1
				return s.accept.Recv(8_000, &req)
			case 1: // parse
				phase = 2
				return s.parseAct
			case 2: // file access
				phase = 3
				if s.rng.Float64() < s.cfg.CacheHitRate {
					continue
				}
				disk.Cycles = s.rng.Range(s.cfg.DiskLatency/2, s.cfg.DiskLatency*2)
				return disk
			case 3: // respond
				phase = 4
				return s.respondAct
			case 4: // account completion
				phase = 0
				s.served++
				s.latency.Observe(uint64(s.m.Now()) - uint64(req.Payload))
				if s.Done() {
					// Release workers blocked in accept.
					s.accept.WakeAllReaders(s.m)
					return kernel.Exit{}
				}
			}
		}
	})
}

// Done reports whether every arrived-and-accepted request has been served
// (dropped requests never complete).
func (s *Server) Done() bool {
	return s.arrived >= s.cfg.Requests && s.served+s.dropped >= s.arrived
}

// Result summarizes one run.
type Result struct {
	Workers    int
	Requests   int
	Served     int
	Dropped    int
	Seconds    float64
	Throughput float64 // requests per second
	MeanLatMS  float64 // mean request latency, milliseconds
	MaxLatMS   float64 // worst-case latency, milliseconds
}

// Run executes until all requests are served (or the horizon passes).
func (s *Server) Run() Result {
	start := s.m.Now()
	s.m.Run(func() bool { return s.Done() })
	elapsed := float64(s.m.Now()-start) / float64(s.m.Hz())
	res := Result{
		Workers:  s.cfg.Workers,
		Requests: s.cfg.Requests,
		Served:   s.served,
		Dropped:  s.dropped,
		Seconds:  elapsed,
	}
	if elapsed > 0 {
		res.Throughput = float64(s.served) / elapsed
	}
	toMS := 1000.0 / float64(s.m.Hz())
	res.MeanLatMS = s.latency.Mean() * toMS
	res.MaxLatMS = float64(s.latency.Max()) * toMS
	return res
}
