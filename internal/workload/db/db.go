// Package db simulates a syscall-heavy OLTP database server — the
// workload class the ROADMAP names and RackSched (Zhu et al.) argues is
// where queue placement dominates: short CPU bursts separated by frequent
// blocking kernel crossings. Each client connection runs a loop of small
// transactions; a transaction parses and plans (a short burst), acquires
// one of a small set of shared row-lock stripes (spin-then-block, like a
// futex), reads a few pages through the serialized buffer-pool latch
// (occasionally missing to disk), applies its update, appends a commit
// record through the serialized write-ahead log, and releases the lock.
// Background checkpoint writers wake periodically, scan dirty pages, and
// flush through the same WAL resource.
//
// Unlike VolanoMark, almost no user CPU is burned between kernel
// crossings: with p pages per transaction a commit makes p+2 syscalls plus
// 2-4 lock operations around ~15k cycles of user work, so the scheduler's
// wake/dispatch path — not the workload's own compute — is the dominant
// cost, and run-queue placement decides throughput.
package db

import (
	"fmt"

	"elsc/internal/ipc"
	"elsc/internal/kernel"
	"elsc/internal/sim"
	"elsc/internal/stats"
)

// Config sizes the database workload. Zero fields take the defaults.
type Config struct {
	// Clients is the number of connection worker tasks (default 32).
	Clients int
	// TxnsPerClient is how many transactions each client commits
	// (default 100).
	TxnsPerClient int
	// LockStripes is the number of shared row-lock stripes; smaller
	// values mean hotter locks (default 8).
	LockStripes int
	// PagesPerTxn is the buffer-pool reads per transaction (default 4).
	PagesPerTxn int
	// LockSpins is how many try-then-yield rounds a client performs on
	// a contended stripe before suspending (default 2) — the adaptive
	// spin of a user-space mutex.
	LockSpins int
	// MissRate is the probability a page read misses the buffer pool
	// and sleeps for DiskLatency (default 0.06).
	MissRate float64
	// DiskLatency is the simulated read I/O wait in cycles (default
	// 2ms at 400 MHz).
	DiskLatency uint64
	// Checkpointers is the number of background checkpoint writers
	// (default 1); negative disables them.
	Checkpointers int
	// CheckpointInterval is the mean sleep between checkpoint rounds in
	// cycles (default 100 ms at 400 MHz).
	CheckpointInterval uint64
	// Costs tunes the per-operation cycle prices.
	Costs Costs
}

// Costs are the simulated cycle prices of the transaction path,
// calibrated like the other workloads for a 400 MHz machine.
type Costs struct {
	Parse         uint64 // parse + plan burst before the lock
	Apply         uint64 // row-update burst under the lock
	PageRead      uint64 // one buffer-pool read syscall
	BufSerialHold uint64 // serialized buffer-pool latch hold per read
	WALWrite      uint64 // commit-record append syscall
	WALSerialHold uint64 // serialized WAL append hold
	LockTry       uint64 // one lock attempt
	CheckpointCPU uint64 // dirty-page scan burst per checkpoint round
	CheckpointWAL uint64 // checkpoint's serialized WAL hold
}

// DefaultCosts returns the calibrated cost set.
func DefaultCosts() Costs {
	return Costs{
		Parse:         5000,
		Apply:         9000,
		PageRead:      6000,
		BufSerialHold: 1500,
		WALWrite:      5000,
		WALSerialHold: 2500,
		LockTry:       150,
		CheckpointCPU: 400_000,
		CheckpointWAL: 60_000,
	}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Clients == 0 {
		out.Clients = 32
	}
	if out.TxnsPerClient == 0 {
		out.TxnsPerClient = 100
	}
	if out.LockStripes == 0 {
		out.LockStripes = 8
	}
	if out.PagesPerTxn == 0 {
		out.PagesPerTxn = 4
	}
	if out.LockSpins == 0 {
		out.LockSpins = 2
	}
	if out.MissRate == 0 {
		out.MissRate = 0.06
	}
	if out.DiskLatency == 0 {
		out.DiskLatency = 800_000 // 2 ms
	}
	if out.Checkpointers == 0 {
		out.Checkpointers = 1
	}
	if out.CheckpointInterval == 0 {
		out.CheckpointInterval = 40_000_000 // 100 ms
	}
	if out.Costs == (Costs{}) {
		out.Costs = DefaultCosts()
	}
	return out
}

// DB is a constructed database workload bound to a machine.
type DB struct {
	cfg     Config
	m       *kernel.Machine
	stripes []*ipc.YieldMutex
	bufpool *kernel.SerialResource
	wal     *kernel.SerialResource
	clients []*kernel.Proc
	// checkpointers run until finished is set; they are excluded from
	// the completion check, like volano's housekeeping threads.
	checkpointers []*kernel.Proc
	finished      bool

	committed uint64
	txnLat    stats.Dist
	walSpins  uint64
}

// New constructs the server on m: the lock stripes, the serialized buffer
// pool and WAL, the client connections, and the checkpoint writers.
func New(m *kernel.Machine, cfg Config) *DB {
	cfg = cfg.withDefaults()
	d := &DB{cfg: cfg, m: m}
	d.bufpool = m.NewSerialResource("bufpool")
	d.wal = m.NewSerialResource("wal")
	for i := 0; i < cfg.LockStripes; i++ {
		d.stripes = append(d.stripes, ipc.NewYieldMutex(fmt.Sprintf("row%d", i), cfg.Costs.LockTry))
	}
	mm := m.NewMM("postgres")
	for i := 0; i < cfg.Clients; i++ {
		d.clients = append(d.clients, m.Spawn(fmt.Sprintf("db/client%d", i), mm, d.newClient()))
	}
	for i := 0; i < cfg.Checkpointers; i++ {
		p := m.Spawn(fmt.Sprintf("db/ckpt%d", i), mm, d.newCheckpointer())
		d.checkpointers = append(d.checkpointers, p)
	}
	return d
}

// serialExec is the closure-free effect of a page-read/WAL-style
// syscall: cost cycles of kernel work gated through the resource in Obj
// for Args[0] serialized cycles, like ipc.Queue's serialized socket
// path. The once-only gate rides in Reserved, which lives in the proc's
// own copy of the syscall and so survives Delay retries.
func serialExec(sc *kernel.Syscall, p *kernel.Proc, now sim.Time) kernel.Outcome {
	if !sc.Reserved {
		sc.Reserved = true
		if wait := sc.Obj.(*kernel.SerialResource).Reserve(now, uint64(sc.Args[0])); wait > 0 {
			return kernel.DelayFor(wait)
		}
	}
	return kernel.Done()
}

// armSerial re-arms a program-owned scratch syscall for one serialized
// call and returns it; the kernel copies it out on consumption, so the
// same scratch serves every call the program makes.
func armSerial(sc *kernel.Syscall, name string, cost uint64, res *kernel.SerialResource, hold uint64) kernel.Action {
	sc.Name = name
	sc.Cost = cost
	sc.Obj = res
	sc.Args[0] = int64(hold)
	sc.Reserved = false
	return sc
}

// newClient builds one connection worker: a state machine over the
// transaction phases. The per-client RNG fork keeps the run deterministic
// under any scheduler.
func (d *DB) newClient() kernel.Program {
	const (
		phParse = iota
		phLock
		phRead
		phApply
		phCommit
		phUnlock
		phDone
	)
	cfg := d.cfg
	rng := d.m.RNG().Fork()
	txns := 0
	phase := phParse
	spins := 0
	page := 0
	var gotLock, justTried bool
	var stripe *ipc.YieldMutex
	var txnStart sim.Time
	serial := &kernel.Syscall{Exec: serialExec}
	disk := &kernel.Sleep{}
	var parse kernel.Action = kernel.Compute{Cycles: cfg.Costs.Parse}
	var apply kernel.Action = kernel.Compute{Cycles: cfg.Costs.Apply}
	return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		for {
			switch phase {
			case phParse:
				if txns >= cfg.TxnsPerClient {
					return kernel.Exit{}
				}
				txnStart = d.m.Now()
				stripe = d.stripes[rng.Intn(len(d.stripes))]
				spins = 0
				page = 0
				phase = phLock
				return parse
			case phLock:
				if gotLock {
					justTried = false
					phase = phRead
					continue
				}
				if justTried {
					// The attempt failed: yield the CPU before the next
					// spin, as a user-space adaptive mutex does.
					justTried = false
					return kernel.Yield{}
				}
				if spins < cfg.LockSpins {
					spins++
					justTried = true
					return stripe.TryLock(&gotLock)
				}
				// Spins exhausted: suspend until the holder releases.
				gotLock = true
				phase = phRead
				return stripe.LockBlocking()
			case phRead:
				if page >= cfg.PagesPerTxn {
					phase = phApply
					continue
				}
				page++
				if rng.Float64() < cfg.MissRate {
					// Buffer-pool miss: the latch was released before
					// the I/O was issued, so only the sleep remains.
					disk.Cycles = rng.Range(cfg.DiskLatency/2, cfg.DiskLatency*2)
					return disk
				}
				return armSerial(serial, "buf.read", cfg.Costs.PageRead, d.bufpool, cfg.Costs.BufSerialHold)
			case phApply:
				phase = phCommit
				return apply
			case phCommit:
				phase = phUnlock
				return armSerial(serial, "wal.append", cfg.Costs.WALWrite, d.wal, cfg.Costs.WALSerialHold)
			case phUnlock:
				phase = phDone
				return stripe.Unlock()
			default: // phDone: account the commit, next transaction
				gotLock = false
				txns++
				d.committed++
				d.txnLat.Observe(uint64(d.m.Now() - txnStart))
				phase = phParse
			}
		}
	})
}

// newCheckpointer builds a background checkpoint writer: sleep, scan dirty
// pages, flush through the WAL, repeat until the benchmark finishes.
func (d *DB) newCheckpointer() kernel.Program {
	cfg := d.cfg
	rng := d.m.RNG().Fork()
	phase := 0
	serial := &kernel.Syscall{Exec: serialExec}
	sleep := &kernel.Sleep{}
	var scan kernel.Action = kernel.Compute{Cycles: cfg.Costs.CheckpointCPU}
	return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if d.finished {
			return kernel.Exit{}
		}
		switch phase {
		case 0: // sleep between rounds
			phase = 1
			sleep.Cycles = rng.Range(cfg.CheckpointInterval/2, cfg.CheckpointInterval*3/2)
			return sleep
		case 1: // scan for dirty pages
			phase = 2
			return scan
		default: // flush through the WAL
			phase = 0
			return armSerial(serial, "wal.ckpt", cfg.Costs.WALWrite, d.wal, cfg.Costs.CheckpointWAL)
		}
	})
}

// Done reports whether every client has committed all its transactions.
func (d *DB) Done() bool {
	for _, p := range d.clients {
		if !p.Exited() {
			return false
		}
	}
	return true
}

// Committed returns transactions committed so far.
func (d *DB) Committed() uint64 { return d.committed }

// LockSpins totals failed spin attempts across the lock stripes.
func (d *DB) LockSpins() uint64 {
	var n uint64
	for _, s := range d.stripes {
		n += s.Spins()
	}
	return n
}

// LockBlocked totals acquisitions that had to suspend.
func (d *DB) LockBlocked() uint64 {
	var n uint64
	for _, s := range d.stripes {
		n += s.BlockedAcquires()
	}
	return n
}

// Result is one database run's outcome.
type Result struct {
	Clients     int
	Txns        uint64  // transactions committed
	Seconds     float64 // virtual duration
	Cycles      uint64
	Throughput  float64 // transactions per second
	MeanTxnUS   float64 // mean commit latency, microseconds
	P99TxnUS    float64 // 99th-percentile commit latency
	LockSpins   uint64  // failed spin attempts on the row stripes
	LockBlocked uint64  // lock acquisitions that suspended
	WALWaits    uint64  // WAL reservations that found the log busy
}

// Run executes the workload to completion (or the machine's horizon) and
// reports transaction throughput and commit-latency percentiles.
func (d *DB) Run() Result {
	start := d.m.Now()
	d.m.Run(func() bool { return d.Done() })
	d.finished = true
	elapsed := uint64(d.m.Now() - start)
	secs := float64(elapsed) / float64(d.m.Hz())
	toUS := 1e6 / float64(d.m.Hz())
	res := Result{
		Clients:     d.cfg.Clients,
		Txns:        d.committed,
		Seconds:     secs,
		Cycles:      elapsed,
		MeanTxnUS:   d.txnLat.Mean() * toUS,
		P99TxnUS:    float64(d.txnLat.ApproxPercentile(0.99)) * toUS,
		LockSpins:   d.LockSpins(),
		LockBlocked: d.LockBlocked(),
		WALWaits:    d.wal.Contended(),
	}
	if secs > 0 {
		res.Throughput = float64(res.Txns) / secs
	}
	return res
}
