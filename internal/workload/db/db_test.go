package db

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/sched/o1"
	"elsc/internal/sched/vanilla"
)

func newMachine(cpus int, policy string, seed int64) *kernel.Machine {
	factory := map[string]kernel.SchedulerFactory{
		"reg":  func(env *sched.Env) sched.Scheduler { return vanilla.New(env) },
		"elsc": func(env *sched.Env) sched.Scheduler { return elsc.New(env) },
		"o1":   func(env *sched.Env) sched.Scheduler { return o1.New(env) },
	}[policy]
	return kernel.NewMachine(kernel.Config{
		CPUs:         cpus,
		SMP:          cpus > 1,
		Seed:         seed,
		NewScheduler: factory,
		MaxCycles:    600 * kernel.DefaultHz,
	})
}

func small() Config {
	return Config{Clients: 6, TxnsPerClient: 20, LockStripes: 2}
}

func TestAllTransactionsCommit(t *testing.T) {
	for _, policy := range []string{"reg", "elsc", "o1"} {
		for _, cpus := range []int{1, 4} {
			d := New(newMachine(cpus, policy, 7), small())
			res := d.Run()
			if !d.Done() {
				t.Fatalf("%s/%dcpu: clients did not finish", policy, cpus)
			}
			if want := uint64(6 * 20); res.Txns != want {
				t.Fatalf("%s/%dcpu: committed %d txns, want %d", policy, cpus, res.Txns, want)
			}
			if res.Throughput <= 0 {
				t.Fatalf("%s/%dcpu: throughput %v", policy, cpus, res.Throughput)
			}
		}
	}
}

// TestSyscallHeavy pins down the workload's defining property: kernel
// crossings dominate user compute. With p pages per transaction each
// commit makes p+2 serialized syscalls around ~15k cycles of bursts, so
// system time must exceed user time — the opposite of kbuild.
func TestSyscallHeavy(t *testing.T) {
	m := newMachine(2, "o1", 7)
	New(m, small()).Run()
	st := m.Stats()
	if st.SyscallCycles <= st.TaskCycles {
		t.Fatalf("syscall cycles %d should exceed user cycles %d for an OLTP workload",
			st.SyscallCycles, st.TaskCycles)
	}
}

// TestLockStripesContend: with many clients hammering two stripes, the
// spin-then-block path must actually fire — both spins and suspensions.
func TestLockStripesContend(t *testing.T) {
	res := New(newMachine(4, "o1", 7), Config{Clients: 16, TxnsPerClient: 25, LockStripes: 2}).Run()
	if res.LockSpins == 0 {
		t.Fatal("no lock spins despite 16 clients on 2 stripes")
	}
	if res.LockBlocked == 0 {
		t.Fatal("no blocking acquisitions despite heavy stripe contention")
	}
}

// TestCheckpointerDoesNotBlockCompletion: the background writers run
// forever by design; Done must ignore them, and they must be told to exit
// after Run.
func TestCheckpointerDoesNotBlockCompletion(t *testing.T) {
	cfg := small()
	cfg.Checkpointers = 2
	cfg.CheckpointInterval = 2_000_000 // frequent rounds: make them do work
	d := New(newMachine(2, "elsc", 7), cfg)
	res := d.Run()
	if !d.Done() {
		t.Fatal("checkpointers blocked completion")
	}
	if res.Txns != uint64(6*20) {
		t.Fatalf("committed %d txns, want %d", res.Txns, 6*20)
	}
	if !d.finished {
		t.Fatal("finished flag not set; checkpointers would spin forever")
	}
}

func TestTxnLatencyPercentiles(t *testing.T) {
	res := New(newMachine(2, "reg", 7), small()).Run()
	if res.MeanTxnUS <= 0 {
		t.Fatal("mean txn latency should be positive")
	}
	if res.P99TxnUS < res.MeanTxnUS/2 {
		t.Fatalf("p99 %.1fus implausibly below mean %.1fus", res.P99TxnUS, res.MeanTxnUS)
	}
}

// TestWALSerializes: the write-ahead log is a machine-global serial
// resource; with enough concurrent committers some reservation must wait.
func TestWALSerializes(t *testing.T) {
	res := New(newMachine(8, "o1", 7), Config{Clients: 24, TxnsPerClient: 20, LockStripes: 16}).Run()
	if res.WALWaits == 0 {
		t.Fatal("no WAL contention despite 24 clients committing on 8 CPUs")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() Result {
		return New(newMachine(4, "o1", 7), small()).Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("db workload not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestNegativeCheckpointersDisables: the documented escape hatch — a
// negative count spawns no background writers at all.
func TestNegativeCheckpointersDisables(t *testing.T) {
	cfg := small()
	cfg.Checkpointers = -1
	d := New(newMachine(2, "elsc", 7), cfg)
	if len(d.checkpointers) != 0 {
		t.Fatalf("spawned %d checkpointers, want none", len(d.checkpointers))
	}
	if res := d.Run(); res.Txns != uint64(6*20) {
		t.Fatalf("committed %d txns without checkpointers, want %d", res.Txns, 6*20)
	}
}
