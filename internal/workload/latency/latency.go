// Package latency measures scheduler wake-up latency: how long a just-
// woken interactive task waits before it actually runs, as a function of
// background load. This extends the paper's evaluation along the axis its
// related-work section cares about ("most alternative scheduler designs
// focus on reducing latency for real-time processes rather than improving
// the overall scalability"): the stock scheduler's O(n) scan sits directly
// on the wake-to-dispatch path, so its latency grows with the run queue,
// while ELSC's does not.
package latency

import (
	"fmt"

	"elsc/internal/kernel"
	"elsc/internal/sim"
	"elsc/internal/stats"
)

// Config sizes the probe workload.
type Config struct {
	// Probes is the number of interactive latency-probe tasks.
	Probes int
	// Hogs is the number of CPU-bound background tasks keeping the run
	// queue populated.
	Hogs int
	// WakesPerProbe is how many sleep/wake cycles each probe performs.
	WakesPerProbe int
	// SleepMean is the mean probe sleep between wakes, in cycles.
	SleepMean uint64
	// ProbeWork is the small burst a probe runs after each wake.
	ProbeWork uint64
	// ProbePriority is the probes' static priority (default 40, the
	// maximum): a woken probe must out-goodness any background hog so
	// that the measurement isolates the wake path — IPI, schedule()
	// cost, context switch — rather than quantum waits.
	ProbePriority int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Probes == 0 {
		out.Probes = 4
	}
	if out.Hogs == 0 {
		out.Hogs = 32
	}
	if out.WakesPerProbe == 0 {
		out.WakesPerProbe = 200
	}
	if out.SleepMean == 0 {
		out.SleepMean = 2_000_000 // 5 ms
	}
	if out.ProbeWork == 0 {
		out.ProbeWork = 20_000
	}
	if out.ProbePriority == 0 {
		out.ProbePriority = 40
	}
	return out
}

// Probe is a constructed latency workload.
type Probe struct {
	cfg    Config
	m      *kernel.Machine
	lat    stats.Dist
	probes []*kernel.Proc
	hogs   []*kernel.Proc
	done   int
}

// New constructs the probes and background hogs on m.
func New(m *kernel.Machine, cfg Config) *Probe {
	cfg = cfg.withDefaults()
	p := &Probe{cfg: cfg, m: m}

	mm := m.NewMM("bg")
	for i := 0; i < cfg.Hogs; i++ {
		p.hogs = append(p.hogs, m.Spawn(fmt.Sprintf("hog%d", i), mm, hogProgram(p)))
	}
	for i := 0; i < cfg.Probes; i++ {
		pr := m.Spawn(fmt.Sprintf("probe%d", i), nil, p.probeProgram())
		m.SetPriority(pr, cfg.ProbePriority)
		p.probes = append(p.probes, pr)
	}
	return p
}

// hogBurst is the hogs' fixed burst, boxed once: a hog steps every
// 150k cycles for the whole run, so a per-step Compute allocation is
// the workload's dominant garbage.
var hogBurst kernel.Action = kernel.Compute{Cycles: 150_000}

// hogProgram burns CPU until the probes are done.
func hogProgram(p *Probe) kernel.Program {
	return kernel.ProgramFunc(func(proc *kernel.Proc) kernel.Action {
		if p.Done() {
			return kernel.Exit{}
		}
		return hogBurst
	})
}

// probeProgram sleeps, records how late it was dispatched after the wake,
// runs a small burst, and repeats.
func (p *Probe) probeProgram() kernel.Program {
	rng := p.m.RNG().Fork()
	wakes := 0
	phase := 0
	var due sim.Time
	sleep := &kernel.Sleep{}
	var burst kernel.Action = kernel.Compute{Cycles: p.cfg.ProbeWork}
	return kernel.ProgramFunc(func(proc *kernel.Proc) kernel.Action {
		switch phase {
		case 0: // go to sleep
			if wakes >= p.cfg.WakesPerProbe {
				p.done++
				return kernel.Exit{}
			}
			wakes++
			d := rng.Range(p.cfg.SleepMean/2, p.cfg.SleepMean*3/2)
			due = p.m.Now() + sim.Time(d) + sim.Time(p.m.Env().Cost.SyscallBase)
			phase = 1
			sleep.Cycles = d
			return sleep
		default: // just dispatched after the wake
			now := p.m.Now()
			if now > due {
				p.lat.Observe(uint64(now - due))
			} else {
				p.lat.Observe(0)
			}
			phase = 0
			return burst
		}
	})
}

// Done reports whether every probe finished its wake cycles.
func (p *Probe) Done() bool { return p.done >= p.cfg.Probes }

// Result is one latency measurement.
type Result struct {
	Probes  int
	Hogs    int
	Samples uint64
	MeanUS  float64 // mean wake-to-dispatch latency, microseconds
	P99US   float64 // approximate 99th percentile, microseconds
	MaxUS   float64 // worst observed latency, microseconds
}

// Run executes until every probe completes.
func (p *Probe) Run() Result {
	p.m.Run(func() bool { return p.Done() })
	toUS := 1e6 / float64(p.m.Hz())
	return Result{
		Probes:  p.cfg.Probes,
		Hogs:    p.cfg.Hogs,
		Samples: p.lat.Count(),
		MeanUS:  p.lat.Mean() * toUS,
		P99US:   float64(p.lat.ApproxPercentile(0.99)) * toUS,
		MaxUS:   float64(p.lat.Max()) * toUS,
	}
}
