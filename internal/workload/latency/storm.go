package latency

import (
	"fmt"

	"elsc/internal/kernel"
	"elsc/internal/sim"
	"elsc/internal/stats"
)

// Storm is the bursty companion to the steady-state Probe in this
// package: instead of independent sleepers trickling awake, a whole cohort
// of waiters blocks on one wait queue and is released at once by a
// synchronized mass wake-up — a thundering herd. The measurement is
// wakeup-to-run latency per waiter per storm: the time from the wake_up_all
// to the instant each woken task actually executes again. The tail of that
// distribution is where scheduler designs separate — the last waiter of a
// storm has waited through every earlier dispatch, so p99 grows with both
// the wake path's cost and the run queue's depth, and a policy whose wake
// path scans the queue (the stock O(n) scheduler) pays the storm size
// twice.
//
// Each storm fires only after every waiter has parked again, so storms
// never overlap and every latency sample is attributable to exactly one
// wake-up. The storm trigger is an engine event, not a task: the herd is
// released by an interrupt, as a completing I/O or expiring timer would.
type StormConfig struct {
	// Waiters is the cohort size woken by each storm (default 64).
	Waiters int
	// Storms is how many mass wake-ups to measure (default 100).
	Storms int
	// IntervalCycles is the quiet gap between full re-park and the next
	// storm (default 2 ms at 400 MHz).
	IntervalCycles uint64
	// WorkPerWake is the burst each waiter runs after waking, before it
	// parks again (default 20k cycles).
	WorkPerWake uint64
	// Hogs is the number of CPU-bound background tasks keeping the run
	// queue populated between storms (default 0: the herd itself is the
	// load).
	Hogs int
}

func (c *StormConfig) withDefaults() StormConfig {
	out := *c
	if out.Waiters == 0 {
		out.Waiters = 64
	}
	if out.Storms == 0 {
		out.Storms = 100
	}
	if out.IntervalCycles == 0 {
		out.IntervalCycles = 800_000 // 2 ms
	}
	if out.WorkPerWake == 0 {
		out.WorkPerWake = 20_000
	}
	return out
}

// Storm is a constructed wake-storm workload.
type Storm struct {
	cfg     StormConfig
	m       *kernel.Machine
	wq      *kernel.WaitQueue
	waiters []*kernel.Proc
	hogs    []*kernel.Proc

	gen     int      // storm sequence number; 0 = before the first storm
	stormAt sim.Time // when the current storm fired
	fired   int      // storms released so far
	parked  int      // waiters currently blocked on wq
	lat     stats.Dist
}

// NewStorm constructs the waiters (and optional hogs) on m.
func NewStorm(m *kernel.Machine, cfg StormConfig) *Storm {
	cfg = cfg.withDefaults()
	s := &Storm{cfg: cfg, m: m, wq: kernel.NewWaitQueue("storm")}
	mm := m.NewMM("herd")
	for i := 0; i < cfg.Waiters; i++ {
		s.waiters = append(s.waiters, m.Spawn(fmt.Sprintf("waiter%d", i), mm, s.newWaiter()))
	}
	for i := 0; i < cfg.Hogs; i++ {
		s.hogs = append(s.hogs, m.Spawn(fmt.Sprintf("hog%d", i), mm, s.newHog()))
	}
	return s
}

// armStorm schedules the next mass wake-up. Called when the last waiter
// parks; guarded so the configured storm count is never exceeded.
func (s *Storm) armStorm() {
	if s.fired >= s.cfg.Storms {
		return
	}
	s.m.Engine().After(s.cfg.IntervalCycles, "storm", func(now sim.Time) {
		s.fired++
		s.gen++
		s.stormAt = now
		s.parked = 0
		s.m.WakeAll(s.wq)
	})
}

// newWaiter builds one herd member: park on the shared queue, and on each
// wake-up record how long the dispatch took, run a small burst, and park
// again — Storms times, then exit.
func (s *Storm) newWaiter() kernel.Program {
	seen := 0
	parked := false
	wakes := 0
	phase := 0
	// The wait syscall and the post-wake burst are built once per waiter
	// and re-armed every storm, so a waiter's steady state allocates
	// nothing. The kernel copies the *Syscall out on consumption, so
	// re-returning the same scratch value is safe.
	wait := &kernel.Syscall{
		Name: "storm.wait",
		Cost: 4_000,
		Fn: func(p *kernel.Proc, now sim.Time) kernel.Outcome {
			if seen == s.gen {
				if !parked {
					parked = true
					s.parked++
					if s.parked == s.cfg.Waiters {
						s.armStorm()
					}
				}
				return kernel.BlockOn(s.wq)
			}
			// Woken by storm s.gen and finally running again:
			// the interval since the wake_up_all is the
			// wakeup-to-run latency.
			seen = s.gen
			parked = false
			s.lat.Observe(uint64(now - s.stormAt))
			return kernel.Done()
		},
	}
	var burst kernel.Action = kernel.Compute{Cycles: s.cfg.WorkPerWake}
	return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		switch phase {
		case 0: // park until the next storm
			if wakes >= s.cfg.Storms {
				return kernel.Exit{}
			}
			phase = 1
			return wait
		default: // post-wake burst
			wakes++
			phase = 0
			return burst
		}
	})
}

// newHog burns CPU until the storms are done, keeping the run queue deep
// so woken waiters must compete for dispatch.
func (s *Storm) newHog() kernel.Program {
	return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if s.Done() {
			return kernel.Exit{}
		}
		return hogBurst
	})
}

// Done reports whether every waiter has finished its storms.
func (s *Storm) Done() bool {
	for _, p := range s.waiters {
		if !p.Exited() {
			return false
		}
	}
	return true
}

// StormResult is one wake-storm measurement.
type StormResult struct {
	Waiters int
	Storms  int
	Samples uint64  // latency observations (Waiters x Storms when complete)
	Wakes   uint64  // total wake-ups delivered
	Seconds float64 // virtual duration
	Cycles  uint64
	// WakesPerSec is total wake-ups per virtual second — the storm
	// drain rate.
	WakesPerSec float64
	MeanUS      float64 // mean wakeup-to-run latency, microseconds
	P50US       float64 // median
	P99US       float64 // approximate 99th percentile
	MaxUS       float64 // worst observed
}

// Run executes until every waiter completes (or the horizon passes).
func (s *Storm) Run() StormResult {
	start := s.m.Now()
	s.m.Run(func() bool { return s.Done() })
	elapsed := uint64(s.m.Now() - start)
	secs := float64(elapsed) / float64(s.m.Hz())
	toUS := 1e6 / float64(s.m.Hz())
	res := StormResult{
		Waiters: s.cfg.Waiters,
		Storms:  s.cfg.Storms,
		Samples: s.lat.Count(),
		Wakes:   s.lat.Count(),
		Seconds: secs,
		Cycles:  elapsed,
		MeanUS:  s.lat.Mean() * toUS,
		P50US:   float64(s.lat.ApproxPercentile(0.50)) * toUS,
		P99US:   float64(s.lat.ApproxPercentile(0.99)) * toUS,
		MaxUS:   float64(s.lat.Max()) * toUS,
	}
	if secs > 0 {
		res.WakesPerSec = float64(res.Wakes) / secs
	}
	return res
}
