package latency

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/o1"
)

func stormMachine(cpus int, useO1 bool, seed int64) *kernel.Machine {
	m := newMachine(cpus, !useO1)
	if useO1 {
		m = kernel.NewMachine(kernel.Config{
			CPUs: cpus,
			SMP:  cpus > 1,
			Seed: seed,
			NewScheduler: func(env *sched.Env) sched.Scheduler {
				return o1.New(env)
			},
			MaxCycles:           300 * kernel.DefaultHz,
			UniformSpawnCounter: true,
		})
	}
	return m
}

func smallStorm() StormConfig {
	return StormConfig{Waiters: 8, Storms: 10}
}

// TestStormEverySampleObserved is the completeness bar: every waiter must
// record exactly one latency sample per storm — a lost wake-up or an
// overlapping storm would change the count.
func TestStormEverySampleObserved(t *testing.T) {
	for _, cpus := range []int{1, 2, 4} {
		for _, useO1 := range []bool{false, true} {
			st := NewStorm(stormMachine(cpus, useO1, 13), smallStorm())
			res := st.Run()
			if !st.Done() {
				t.Fatalf("cpus=%d o1=%v: storm workload did not complete", cpus, useO1)
			}
			if want := uint64(8 * 10); res.Samples != want {
				t.Fatalf("cpus=%d o1=%v: samples = %d, want %d", cpus, useO1, res.Samples, want)
			}
		}
	}
}

func TestStormLatencyShape(t *testing.T) {
	res := NewStorm(stormMachine(2, false, 13), StormConfig{Waiters: 16, Storms: 20}).Run()
	if res.MeanUS <= 0 {
		t.Fatalf("mean wakeup-to-run latency %.2fus; the wake path costs cycles", res.MeanUS)
	}
	if res.P50US > res.P99US || res.P99US > res.MaxUS {
		t.Fatalf("percentiles out of order: p50=%.1f p99=%.1f max=%.1f",
			res.P50US, res.P99US, res.MaxUS)
	}
	if res.WakesPerSec <= 0 {
		t.Fatal("wake throughput should be positive")
	}
}

// TestStormTailGrowsWithHerd: the last waiter of a bigger herd waits
// through more dispatches, so p99 must grow with the cohort size on a
// fixed machine.
func TestStormTailGrowsWithHerd(t *testing.T) {
	run := func(waiters int) float64 {
		return NewStorm(stormMachine(2, false, 13),
			StormConfig{Waiters: waiters, Storms: 15}).Run().P99US
	}
	small, big := run(4), run(64)
	if big <= small {
		t.Fatalf("p99 should grow with herd size: %.1fus at 4 waiters vs %.1fus at 64", small, big)
	}
}

func TestStormHogsDeepenQueue(t *testing.T) {
	run := func(hogs int) float64 {
		return NewStorm(stormMachine(1, false, 13),
			StormConfig{Waiters: 8, Storms: 15, Hogs: hogs}).Run().MeanUS
	}
	quiet, loaded := run(0), run(32)
	if loaded <= quiet {
		t.Fatalf("mean latency should grow under hog load: %.1fus vs %.1fus", quiet, loaded)
	}
}

func TestStormDeterministic(t *testing.T) {
	run := func() StormResult {
		return NewStorm(stormMachine(4, true, 13), smallStorm()).Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("storm workload not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}
