package latency

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/sched/vanilla"
)

func newMachine(cpus int, useELSC bool) *kernel.Machine {
	factory := func(env *sched.Env) sched.Scheduler { return vanilla.New(env) }
	if useELSC {
		factory = func(env *sched.Env) sched.Scheduler { return elsc.New(env) }
	}
	return kernel.NewMachine(kernel.Config{
		CPUs:         cpus,
		SMP:          cpus > 1,
		Seed:         13,
		NewScheduler: factory,
		MaxCycles:    300 * kernel.DefaultHz,
		// Uniform quanta put every probe in ELSC's top list from the
		// start, isolating steady-state wake cost from the cold-start
		// starvation window that fork-inherited low quanta produce
		// (that pathology is measured separately by the WakeLatency
		// experiment and discussed in EXPERIMENTS.md).
		UniformSpawnCounter: true,
	})
}

func small() Config {
	return Config{Probes: 2, Hogs: 8, WakesPerProbe: 30}
}

func TestProbesComplete(t *testing.T) {
	for _, useELSC := range []bool{false, true} {
		m := newMachine(1, useELSC)
		p := New(m, small())
		res := p.Run()
		if !p.Done() {
			t.Fatal("probes did not finish")
		}
		if res.Samples != uint64(2*30) {
			t.Fatalf("samples = %d, want 60", res.Samples)
		}
	}
}

func TestLatencyPositiveUnderLoad(t *testing.T) {
	m := newMachine(1, false)
	res := New(m, small()).Run()
	if res.MeanUS <= 0 {
		t.Fatalf("mean latency %.2fus; wake path should cost something", res.MeanUS)
	}
	if res.MaxUS < res.MeanUS {
		t.Fatal("max below mean")
	}
}

func TestMoreHogsMoreRegLatency(t *testing.T) {
	// The stock scheduler's wake latency grows with the run queue.
	run := func(hogs int) float64 {
		m := newMachine(1, false)
		return New(m, Config{Probes: 2, Hogs: hogs, WakesPerProbe: 40}).Run().MeanUS
	}
	light, heavy := run(4), run(64)
	if heavy <= light {
		t.Fatalf("reg latency should grow with load: %.1fus at 4 hogs vs %.1fus at 64", light, heavy)
	}
}

func TestELSCLatencyBeatsRegUnderLoad(t *testing.T) {
	run := func(useELSC bool) float64 {
		m := newMachine(1, useELSC)
		return New(m, Config{Probes: 2, Hogs: 64, WakesPerProbe: 40}).Run().MeanUS
	}
	reg, el := run(false), run(true)
	if el >= reg {
		t.Fatalf("elsc mean latency %.1fus should beat reg %.1fus with 64 hogs", el, reg)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		m := newMachine(2, true)
		return New(m, small()).Run().MeanUS
	}
	if run() != run() {
		t.Fatal("latency workload not deterministic")
	}
}
