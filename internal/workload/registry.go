package workload

import (
	"fmt"
	"sort"

	"elsc/internal/kernel"
	"elsc/internal/task"
	"elsc/internal/workload/db"
	"elsc/internal/workload/kbuild"
	"elsc/internal/workload/latency"
	"elsc/internal/workload/volano"
	"elsc/internal/workload/webserver"
)

// Workload names, as the sweep tables label them.
const (
	Volano    = "volano"
	KBuild    = "kbuild"
	WebServer = "webserver"
	Latency   = "latency"
	DB        = "db"
	WakeStorm = "wakestorm"
)

// Registry lists every registered workload in table order. The matrix
// runner, the determinism regression, and the cross-workload smoke tests
// all iterate this list, so a workload registered here is automatically
// raced against every policy and held to the same completion and
// determinism bar.
var Registry = []Workload{
	{Name: Volano, Description: "VolanoMark chat: thread herds, yield locks, loopback ping-pong", Build: buildVolano},
	{Name: KBuild, Description: "make -j4 kernel compile: light-load control", Build: buildKBuild},
	{Name: WebServer, Description: "Apache-style process-per-connection web serving", Build: buildWebserver},
	{Name: Latency, Description: "steady wake-to-dispatch latency probes under hog load", Build: buildLatency},
	{Name: DB, Description: "syscall-heavy OLTP: lock stripes, buffer pool, WAL, checkpoints", Build: buildDB},
	{Name: WakeStorm, Description: "synchronized mass wake-ups: wakeup-to-run tail latency", Build: buildWakeStorm},
}

// Names returns the registered workload names in registry order.
func Names() []string {
	out := make([]string, len(Registry))
	for i, w := range Registry {
		out[i] = w.Name
	}
	return out
}

// ByName returns the named workload, or panics: workload names come from
// the registry itself or from CLI validation, so a miss is a harness bug.
func ByName(name string) Workload {
	for _, w := range Registry {
		if w.Name == name {
			return w
		}
	}
	panic("workload: unknown workload " + name)
}

// Build constructs the named workload on m, sized by p.
func Build(name string, m *kernel.Machine, p Params) Instance {
	return ByName(name).Build(m, p)
}

// metricsOf sorts a name->value set into deterministic Extras order.
func metricsOf(kv map[string]float64) []Metric {
	names := make([]string, 0, len(kv))
	for n := range kv {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Metric, len(names))
	for i, n := range names {
		out[i] = Metric{Name: n, Value: kv[n]}
	}
	return out
}

// throughput guards the division for runs cut off at time zero.
func throughput(ops uint64, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(ops) / secs
}

// buildVolano maps Params onto the chat benchmark: Work is messages per
// user, Quick shrinks the rooms, ScalableStack swaps in the post-2.3
// socket costs.
func buildVolano(m *kernel.Machine, p Params) Instance {
	cfg := volano.Config{MessagesPerUser: p.Work}
	if p.Quick {
		cfg.Rooms = 2
		cfg.UsersPerRoom = 4
	}
	if p.ScalableStack {
		cfg.Costs = volano.ScalableStackCosts()
	}
	b := volano.Build(m, cfg)
	return instance{done: b.Done, run: func() Result {
		r := b.Run()
		return Result{
			Workload:   Volano,
			Seconds:    r.Seconds,
			Cycles:     r.Cycles,
			Ops:        r.Deliveries,
			Throughput: r.Throughput,
			Unit:       "msgs/s",
			Complete:   b.Done(),
			Extras: metricsOf(map[string]float64{
				"threads":    float64(r.Threads),
				"lock_spins": float64(r.LockSpins),
			}),
		}
	}}
}

// buildKBuild maps Params onto the compile: the build's size is the
// experiment (Table 2's fixed tree), so Work is ignored and Quick selects
// a proportionally shrunken tree.
func buildKBuild(m *kernel.Machine, p Params) Instance {
	var cfg kbuild.Config
	if p.Quick {
		cfg = kbuild.Config{Units: 32, MeanCompile: 20_000_000, MeanIO: 200_000}
	}
	b := kbuild.New(m, cfg)
	return instance{done: b.Done, run: func() Result {
		r := b.Run()
		return Result{
			Workload:   KBuild,
			Seconds:    r.Seconds,
			Cycles:     r.Cycles,
			Ops:        uint64(r.Units),
			Throughput: throughput(uint64(r.Units), r.Seconds),
			Unit:       "units/s",
			Complete:   b.Done(),
			Extras: metricsOf(map[string]float64{
				"jobs":          float64(r.Jobs),
				"build_seconds": r.Seconds,
			}),
		}
	}}
}

// buildWebserver maps Params onto the open-loop web workload: Quick
// shrinks the request count; the offered load is the experiment, so Work
// is ignored.
func buildWebserver(m *kernel.Machine, p Params) Instance {
	var cfg webserver.Config
	if p.Quick {
		cfg = webserver.Config{Requests: 2000}
	}
	s := webserver.New(m, cfg)
	return instance{done: s.Done, run: func() Result {
		r := s.Run()
		return Result{
			Workload:   WebServer,
			Seconds:    r.Seconds,
			Cycles:     uint64(r.Seconds * float64(m.Hz())),
			Ops:        uint64(r.Served),
			Throughput: r.Throughput,
			Unit:       "req/s",
			Complete:   s.Done(),
			Extras: metricsOf(map[string]float64{
				"dropped":     float64(r.Dropped),
				"mean_lat_ms": r.MeanLatMS,
				"max_lat_ms":  r.MaxLatMS,
			}),
		}
	}}
}

// buildLatency maps Params onto the steady-state probe workload: Work is
// wakes per probe, Quick shrinks the wake count. The matrix cell runs
// nice-0 probes (the same static priority as the hogs) — the regime the
// 2.5 interactivity estimator was built for, where only a scheduler's
// dynamic priority can tell an interactive task from a CPU hog. Direct
// users of the latency package keep its max-priority default, which
// isolates the raw wake path instead.
func buildLatency(m *kernel.Machine, p Params) Instance {
	cfg := latency.Config{WakesPerProbe: p.Work, ProbePriority: task.DefaultPriority}
	if p.Quick && p.Work == 0 {
		cfg.WakesPerProbe = 50
	}
	pr := latency.New(m, cfg)
	return instance{done: pr.Done, run: func() Result {
		start := m.Now()
		r := pr.Run()
		elapsed := uint64(m.Now() - start)
		secs := float64(elapsed) / float64(m.Hz())
		return Result{
			Workload:   Latency,
			Seconds:    secs,
			Cycles:     elapsed,
			Ops:        r.Samples,
			Throughput: throughput(r.Samples, secs),
			Unit:       "wakes/s",
			Complete:   pr.Done(),
			Extras: metricsOf(map[string]float64{
				"hogs":    float64(r.Hogs),
				"mean_us": r.MeanUS,
				"p99_us":  r.P99US,
				"max_us":  r.MaxUS,
			}),
		}
	}}
}

// buildDB maps Params onto the OLTP workload: Work is transactions per
// client, Quick shrinks the connection pool.
func buildDB(m *kernel.Machine, p Params) Instance {
	cfg := db.Config{TxnsPerClient: p.Work}
	if p.Quick {
		cfg.Clients = 8
		if p.Work == 0 {
			cfg.TxnsPerClient = 50
		}
	}
	d := db.New(m, cfg)
	return instance{done: d.Done, run: func() Result {
		r := d.Run()
		return Result{
			Workload:   DB,
			Seconds:    r.Seconds,
			Cycles:     r.Cycles,
			Ops:        r.Txns,
			Throughput: r.Throughput,
			Unit:       "txns/s",
			Complete:   d.Done(),
			Extras: metricsOf(map[string]float64{
				"mean_txn_us":  r.MeanTxnUS,
				"p99_txn_us":   r.P99TxnUS,
				"lock_spins":   float64(r.LockSpins),
				"lock_blocked": float64(r.LockBlocked),
				"wal_waits":    float64(r.WALWaits),
			}),
		}
	}}
}

// buildWakeStorm maps Params onto the mass-wakeup benchmark: Work is the
// storm count, Quick shrinks the herd.
func buildWakeStorm(m *kernel.Machine, p Params) Instance {
	cfg := latency.StormConfig{Storms: p.Work}
	if p.Quick {
		cfg.Waiters = 16
		if p.Work == 0 {
			cfg.Storms = 30
		}
	}
	st := latency.NewStorm(m, cfg)
	return instance{done: st.Done, run: func() Result {
		r := st.Run()
		return Result{
			Workload:   WakeStorm,
			Seconds:    r.Seconds,
			Cycles:     r.Cycles,
			Ops:        r.Wakes,
			Throughput: r.WakesPerSec,
			Unit:       "wakes/s",
			Complete:   st.Done(),
			Extras: metricsOf(map[string]float64{
				"waiters": float64(r.Waiters),
				"storms":  float64(r.Storms),
				"mean_us": r.MeanUS,
				"p50_us":  r.P50US,
				"p99_us":  r.P99US,
				"max_us":  r.MaxUS,
			}),
		}
	}}
}

// Describe renders a one-line-per-workload listing for CLI help.
func Describe() string {
	out := ""
	for _, w := range Registry {
		out += fmt.Sprintf("  %-10s %s\n", w.Name, w.Description)
	}
	return out
}
