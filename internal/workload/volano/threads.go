package volano

import (
	"elsc/internal/ipc"
	"elsc/internal/kernel"
)

// The four per-connection threads, written as explicit state machines over
// kernel.Program. Receives use a spin-then-block loop (poll, yield, poll,
// yield, block) modeling the adaptive spinning of IBM JDK 1.1.7's thread
// library; when such a poller is the only runnable task, its yields force
// the stock scheduler through the recalculation loop — Figure 2's
// mechanism.

// spinRecv is a reusable receive-with-spin sub-machine.
type spinRecv struct {
	q     *ipc.Queue
	spins int
	cost  uint64 // blocking receive cost
	poll  uint64 // poll attempt cost

	phase int // 0 try, 1 check/yield, 2 blocking, 3 done
	tries int
	got   bool
	msg   ipc.Msg
}

func (s *spinRecv) reset() {
	s.phase = 0
	s.tries = 0
	s.got = false
}

// step advances the receive; it returns (action, false) while in progress
// and (nil, true) when a message is in s.msg.
func (s *spinRecv) step(p *kernel.Proc) (kernel.Action, bool) {
	for {
		switch s.phase {
		case 0: // non-blocking poll
			if s.tries >= s.spins {
				s.phase = 2
				return s.q.Recv(s.cost, &s.msg), false
			}
			s.tries++
			s.phase = 1
			return s.q.TryRecv(s.poll, &s.msg, &s.got), false
		case 1: // poll result: deliver, or yield and retry
			if s.got {
				s.phase = 3
				continue
			}
			s.phase = 0
			return kernel.Yield{}, false
		case 2: // blocking receive completed
			s.phase = 3
			continue
		default: // done
			return nil, true
		}
	}
}

// sender is the client-side writer thread: compose, send, then wait for
// the message's own broadcast echo before composing the next — VolanoMark
// clients are closed-loop.
type sender struct {
	cfg   Config
	cn    *conn
	sent  int
	phase int
	gate  ipc.Msg
}

func newSender(cfg Config, cn *conn) kernel.Program {
	return &sender{cfg: cfg, cn: cn}
}

func (s *sender) Step(p *kernel.Proc) kernel.Action {
	c := s.cfg.Costs
	switch s.phase {
	case 0: // think
		if s.sent >= s.cfg.MessagesPerUser {
			return kernel.Exit{}
		}
		s.phase = 1
		return kernel.Compute{Cycles: c.SenderThink}
	case 1: // write to the socket
		s.phase = 2
		s.sent++
		return s.cn.sock.ClientToServer.Send(c.SenderSend, ipc.Msg{
			From: s.cn.user,
			Seq:  s.sent,
		})
	default: // wait for own echo
		s.phase = 0
		return s.cn.echo.Recv(c.EchoSignalOp, &s.gate)
	}
}

// receiver is the client-side reader thread: it consumes every broadcast
// delivery for this connection and releases the sender's gate when it sees
// the connection's own message come back.
type receiver struct {
	cfg   Config
	cn    *conn
	total int
	done  int
	rx    spinRecv
	phase int
}

func newReceiver(cfg Config, cn *conn, total int) kernel.Program {
	r := &receiver{cfg: cfg, cn: cn, total: total}
	r.rx = spinRecv{
		q:     cn.sock.ServerToClient,
		spins: cfg.RecvSpins,
		cost:  cfg.Costs.ReceiverRecv,
		poll:  cfg.Costs.SpinPollCost,
	}
	r.rx.reset()
	return r
}

func (r *receiver) Step(p *kernel.Proc) kernel.Action {
	for {
		switch r.phase {
		case 0: // receiving
			if r.done >= r.total {
				return kernel.Exit{}
			}
			act, ok := r.rx.step(p)
			if !ok {
				return act
			}
			r.done++
			r.cn.received++
			if r.rx.msg.From == r.cn.user {
				// Our own message came back: unblock the sender.
				r.phase = 1
				continue
			}
			r.rx.reset()
		case 1: // signal the sender's gate
			r.phase = 0
			r.rx.reset()
			return r.cn.echo.Send(r.cfg.Costs.EchoSignalOp, ipc.Msg{})
		}
	}
}

// reader is the server-side thread that reads one connection's messages
// and broadcasts each to every member of the room, holding the room's
// user-level yield-lock while routing, as VolanoChat synchronizes its
// room member list.
type reader struct {
	cfg     Config
	rm      *room
	cn      *conn
	msgs    int
	handled int

	rx        spinRecv
	phase     int
	routeTo   int
	got       bool
	lockTries int
}

func newReader(cfg Config, rm *room, cn *conn, msgs int) kernel.Program {
	r := &reader{cfg: cfg, rm: rm, cn: cn, msgs: msgs}
	r.rx = spinRecv{
		q:     cn.sock.ClientToServer,
		spins: cfg.RecvSpins,
		cost:  cfg.Costs.ReaderParse,
		poll:  cfg.Costs.SpinPollCost,
	}
	r.rx.reset()
	return r
}

func (r *reader) Step(p *kernel.Proc) kernel.Action {
	c := r.cfg.Costs
	for {
		switch r.phase {
		case 0: // read next inbound message
			if r.handled >= r.msgs {
				return kernel.Exit{}
			}
			act, ok := r.rx.step(p)
			if !ok {
				return act
			}
			r.phase = 1
			r.lockTries = 0
		case 1: // acquire the room lock, JVM-style: spin, then suspend
			if r.lockTries >= r.cfg.RecvSpins {
				r.phase = 5
				return r.rm.lock.LockBlocking()
			}
			r.lockTries++
			r.phase = 2
			r.got = false
			return r.rm.lock.TryLock(&r.got)
		case 2:
			if !r.got {
				r.phase = 1
				return kernel.Yield{}
			}
			r.routeTo = 0
			r.phase = 3
		case 5: // LockBlocking acquired the lock
			r.routeTo = 0
			r.phase = 3
		case 3: // route to each member's writer queue
			if r.routeTo >= len(r.rm.conns) {
				r.phase = 4
				continue
			}
			dst := r.rm.conns[r.routeTo]
			r.routeTo++
			return dst.writerQ.Send(c.RoutePerUser+c.QueueOp, r.rx.msg)
		case 4: // release the lock, account the message
			r.handled++
			r.phase = 0
			r.rx.reset()
			return r.rm.lock.Unlock()
		}
	}
}

// writer is the server-side thread that drains its connection's broadcast
// queue onto the socket back to the client.
type writer struct {
	cfg   Config
	cn    *conn
	total int
	done  int
	rx    spinRecv
	phase int
}

func newWriter(cfg Config, cn *conn, total int) kernel.Program {
	w := &writer{cfg: cfg, cn: cn, total: total}
	w.rx = spinRecv{
		q:     cn.writerQ,
		spins: cfg.RecvSpins,
		cost:  cfg.Costs.QueueOp,
		poll:  cfg.Costs.SpinPollCost,
	}
	w.rx.reset()
	return w
}

func (w *writer) Step(p *kernel.Proc) kernel.Action {
	for {
		switch w.phase {
		case 0: // dequeue the next broadcast
			if w.done >= w.total {
				return kernel.Exit{}
			}
			act, ok := w.rx.step(p)
			if !ok {
				return act
			}
			w.phase = 1
		case 1: // write to the client socket
			w.done++
			w.phase = 0
			msg := w.rx.msg
			w.rx.reset()
			return w.cn.sock.ServerToClient.Send(w.cfg.Costs.WriterWrite, msg)
		}
	}
}
