package volano

import (
	"testing"

	"elsc/internal/ipc"
	"elsc/internal/kernel"
)

// actionKind classifies an action for state-machine tests.
func actionKind(a kernel.Action) string {
	switch a.(type) {
	case kernel.Syscall, *kernel.Syscall:
		return "syscall"
	case kernel.Yield:
		return "yield"
	case kernel.Compute:
		return "compute"
	case kernel.Sleep:
		return "sleep"
	case kernel.Exit:
		return "exit"
	default:
		return "?"
	}
}

// asSyscall unwraps either syscall form (the closure value or the prebound
// pointer the IPC fast paths return).
func asSyscall(t *testing.T, a kernel.Action) *kernel.Syscall {
	t.Helper()
	switch sc := a.(type) {
	case kernel.Syscall:
		return &sc
	case *kernel.Syscall:
		return sc
	}
	t.Fatalf("expected syscall, got %T", a)
	return nil
}

// execSyscall runs a syscall action's effect directly; valid only for
// effects that do not touch the machine (polls of unbounded queues).
func execSyscall(t *testing.T, a kernel.Action) kernel.Outcome {
	t.Helper()
	sc := asSyscall(t, a)
	if sc.Exec != nil {
		return sc.Exec(sc, nil, 0)
	}
	return sc.Fn(nil, 0)
}

func TestSpinRecvPollsYieldsThenBlocks(t *testing.T) {
	q := ipc.NewQueue("q", 0)
	sr := spinRecv{q: q, spins: 2, cost: 100, poll: 50}
	sr.reset()

	// Poll 1 (miss) -> yield -> poll 2 (miss) -> yield -> blocking recv.
	wantNames := []string{"tryrecv", "yield", "tryrecv", "yield", "recv"}
	for i, want := range wantNames {
		act, done := sr.step(nil)
		if done {
			t.Fatalf("step %d: done early", i)
		}
		switch want {
		case "yield":
			if actionKind(act) != "yield" {
				t.Fatalf("step %d: got %s, want yield", i, actionKind(act))
			}
		case "tryrecv":
			out := execSyscall(t, act)
			if out.Wait != nil {
				t.Fatalf("step %d: poll must not block", i)
			}
		case "recv":
			sc := asSyscall(t, act)
			if sc.Name != "q.recv" {
				t.Fatalf("step %d: got %v, want blocking recv", i, act)
			}
			out := execSyscall(t, act)
			if out.Wait == nil {
				t.Fatalf("step %d: blocking recv on empty queue must block", i)
			}
		}
	}
}

func TestSpinRecvImmediateHit(t *testing.T) {
	q := ipc.NewQueue("q", 0)
	// Preload a message via a send effect (unbounded: no wake needed,
	// but the effect calls WakeOne, so use Inject-free manual path).
	sr := spinRecv{q: q, spins: 2, cost: 100, poll: 50}
	sr.reset()

	act, done := sr.step(nil)
	if done {
		t.Fatal("done before polling")
	}
	// Make the poll hit: put a message in the buffer first.
	prime := q.TryRecv(1, &ipc.Msg{}, new(bool)) // prove queue empty first
	_ = prime
	// Deposit directly through a send syscall with nil proc is unsafe
	// (it wakes readers); emulate arrival by constructing a fresh queue
	// scenario instead: run the poll against a queue primed before the
	// spinRecv was created.
	q2 := ipc.NewQueue("q2", 0)
	m := newMachine(1, false, true, 1)
	q2.Inject(m, ipc.Msg{From: 9, Seq: 1})
	sr2 := spinRecv{q: q2, spins: 2, cost: 100, poll: 50}
	sr2.reset()
	act, done = sr2.step(nil)
	if done {
		t.Fatal("done before poll executes")
	}
	out := execSyscall(t, act)
	if out.Wait != nil {
		t.Fatal("poll blocked")
	}
	act, done = sr2.step(nil)
	if !done {
		t.Fatalf("expected done after successful poll, got %v", act)
	}
	if sr2.msg.From != 9 || sr2.msg.Seq != 1 {
		t.Fatalf("wrong message: %+v", sr2.msg)
	}
}

func TestSpinRecvResetReusable(t *testing.T) {
	q := ipc.NewQueue("q", 0)
	m := newMachine(1, false, true, 1)
	sr := spinRecv{q: q, spins: 1, cost: 100, poll: 50}
	for round := 1; round <= 3; round++ {
		q.Inject(m, ipc.Msg{Seq: round})
		sr.reset()
		act, _ := sr.step(nil)
		execSyscall(t, act)
		_, done := sr.step(nil)
		if !done || sr.msg.Seq != round {
			t.Fatalf("round %d: msg %+v done=%v", round, sr.msg, done)
		}
	}
}

func TestRoomLockReleasedAfterRun(t *testing.T) {
	m := newMachine(2, true, true, 3)
	b := Build(m, tiny())
	b.Run()
	for _, rm := range b.rooms {
		if rm.lock.Locked() {
			t.Fatalf("room %d lock left held", rm.id)
		}
	}
}

func TestAllQueuesDrainedAfterRun(t *testing.T) {
	m := newMachine(1, false, false, 3)
	b := Build(m, tiny())
	b.Run()
	for _, rm := range b.rooms {
		for _, cn := range rm.conns {
			if cn.sock.ClientToServer.Len() != 0 || cn.sock.ServerToClient.Len() != 0 {
				t.Fatalf("user %d socket not drained", cn.user)
			}
			if cn.writerQ.Len() != 0 {
				t.Fatalf("user %d writer queue not drained", cn.user)
			}
		}
	}
}

func TestPerConnectionDeliveryCounts(t *testing.T) {
	m := newMachine(2, true, true, 5)
	cfg := Config{Rooms: 2, UsersPerRoom: 3, MessagesPerUser: 4}
	b := Build(m, cfg)
	b.Run()
	// Every connection receives users*messages deliveries: all broadcasts
	// in its room.
	want := uint64(cfg.UsersPerRoom * cfg.MessagesPerUser)
	for _, rm := range b.rooms {
		for _, cn := range rm.conns {
			if cn.received != want {
				t.Fatalf("user %d received %d, want %d", cn.user, cn.received, want)
			}
		}
	}
}

func TestHousekeepingSpinnersExitAfterRun(t *testing.T) {
	m := newMachine(1, false, true, 3)
	b := Build(m, tiny())
	b.Run()
	// Let the spinners observe the finished flag and exit.
	m.Run(func() bool { return m.Alive() == 0 })
	for _, p := range b.housekeeping {
		if !p.Exited() {
			t.Fatal("housekeeping spinner still alive after completion")
		}
	}
}

func TestSenderClosedLoop(t *testing.T) {
	// A sender may never have more than one message outstanding: sends
	// only happen after the previous message's echo. Verify via socket
	// queue depth: the client-to-server queue of any connection holds at
	// most 1 message from its own user at a time. Observed indirectly:
	// c2s length never exceeds 1 (only this user writes to it).
	m := newMachine(1, false, false, 7)
	b := Build(m, Config{Rooms: 1, UsersPerRoom: 3, MessagesPerUser: 5})
	maxDepth := 0
	// Sample queue depths between events via the run-loop predicate.
	stop := func() bool {
		for _, rm := range b.rooms {
			for _, cn := range rm.conns {
				if cn.sock.ClientToServer.Len() > maxDepth {
					maxDepth = cn.sock.ClientToServer.Len()
				}
			}
		}
		return b.Done()
	}
	m.Run(stop)
	if maxDepth > 1 {
		t.Fatalf("a closed-loop sender had %d messages queued", maxDepth)
	}
}
