package volano

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/sched/vanilla"
)

func newMachine(cpus int, smp bool, useELSC bool, seed int64) *kernel.Machine {
	factory := func(env *sched.Env) sched.Scheduler { return vanilla.New(env) }
	if useELSC {
		factory = func(env *sched.Env) sched.Scheduler { return elsc.New(env) }
	}
	return kernel.NewMachine(kernel.Config{
		CPUs:         cpus,
		SMP:          smp,
		Seed:         seed,
		NewScheduler: factory,
		MaxCycles:    600 * kernel.DefaultHz,
	})
}

// tiny is a fast test configuration.
func tiny() Config {
	return Config{Rooms: 1, UsersPerRoom: 4, MessagesPerUser: 3}
}

func TestThreadCountMatchesPaper(t *testing.T) {
	// "Each simulated user creates two threads, so each room creates a
	// total of 80 threads" (with the two server-side threads per
	// connection).
	m := newMachine(1, false, true, 1)
	b := Build(m, Config{Rooms: 2, UsersPerRoom: 20, MessagesPerUser: 1})
	if b.Threads() != 2*20*4 {
		t.Fatalf("threads = %d, want 160", b.Threads())
	}
}

func TestExpectedDeliveries(t *testing.T) {
	m := newMachine(1, false, true, 1)
	b := Build(m, Config{Rooms: 2, UsersPerRoom: 5, MessagesPerUser: 7})
	// rooms * users^2 * messages: every message reaches every member.
	if b.ExpectedDeliveries() != 2*5*5*7 {
		t.Fatalf("expected deliveries = %d, want %d", b.ExpectedDeliveries(), 2*5*5*7)
	}
}

func TestRunCompletesAndConserves(t *testing.T) {
	for _, useELSC := range []bool{false, true} {
		name := map[bool]string{false: "vanilla", true: "elsc"}[useELSC]
		t.Run(name, func(t *testing.T) {
			m := newMachine(1, false, useELSC, 42)
			b := Build(m, tiny())
			res := b.Run()
			if !b.Done() {
				t.Fatal("benchmark did not complete")
			}
			if res.Deliveries != b.ExpectedDeliveries() {
				t.Fatalf("deliveries = %d, want %d (message conservation)",
					res.Deliveries, b.ExpectedDeliveries())
			}
			if res.Throughput <= 0 {
				t.Fatal("throughput must be positive")
			}
		})
	}
}

func TestRunCompletesOnSMP(t *testing.T) {
	for _, cpus := range []int{2, 4} {
		for _, useELSC := range []bool{false, true} {
			m := newMachine(cpus, true, useELSC, 42)
			b := Build(m, tiny())
			res := b.Run()
			if res.Deliveries != b.ExpectedDeliveries() {
				t.Fatalf("cpus=%d elsc=%v: deliveries %d != %d",
					cpus, useELSC, res.Deliveries, b.ExpectedDeliveries())
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		m := newMachine(2, true, true, 11)
		b := Build(m, tiny())
		res := b.Run()
		return res.Cycles, m.Stats().SchedCalls
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", c1, s1, c2, s2)
	}
}

func TestLockContentionHappens(t *testing.T) {
	// On SMP, concurrently running readers collide on the room lock. On
	// UP the lock section is effectively atomic (the holder is rarely
	// preempted), so the yield traffic comes from spin-receives instead.
	m := newMachine(2, true, false, 42)
	b := Build(m, Config{Rooms: 1, UsersPerRoom: 8, MessagesPerUser: 5})
	b.Run()
	if b.LockSpins() == 0 {
		t.Fatal("room lock never contended; the yield-storm mechanism is dead")
	}
	if m.Stats().YieldCalls == 0 {
		t.Fatal("no sched_yield calls")
	}
}

func TestSchedulerComparisonShape(t *testing.T) {
	cfg := Config{Rooms: 2, UsersPerRoom: 8, MessagesPerUser: 8}

	mv := newMachine(1, false, false, 42)
	rv := Build(mv, cfg).Run()
	sv := mv.Stats()

	me := newMachine(1, false, true, 42)
	re := Build(me, cfg).Run()
	se := me.Stats()

	if rv.Deliveries != re.Deliveries {
		t.Fatalf("deliveries differ: %d vs %d", rv.Deliveries, re.Deliveries)
	}
	// Figure 2: ELSC recalculates far less.
	if se.Recalcs*10 > sv.Recalcs && sv.Recalcs > 100 {
		t.Fatalf("recalcs: vanilla %d vs elsc %d — ELSC should be far lower",
			sv.Recalcs, se.Recalcs)
	}
	// Figure 5: ELSC examines fewer tasks per call.
	if se.ExaminedPerSchedule() >= sv.ExaminedPerSchedule() {
		t.Fatalf("examined/call: vanilla %.1f vs elsc %.1f",
			sv.ExaminedPerSchedule(), se.ExaminedPerSchedule())
	}
}

func TestMoreRoomsMoreThreads(t *testing.T) {
	m := newMachine(1, false, true, 1)
	b5 := Build(m, Config{Rooms: 5, UsersPerRoom: 20, MessagesPerUser: 1})
	if b5.Threads() != 400 {
		t.Fatalf("5 rooms = %d threads, want 400 (paper: '400 to 2,000 threads')", b5.Threads())
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := (&Config{}).withDefaults()
	if cfg.UsersPerRoom != 20 {
		t.Fatalf("default users = %d, want 20", cfg.UsersPerRoom)
	}
	if cfg.MessagesPerUser != 100 {
		t.Fatalf("default messages = %d, want 100", cfg.MessagesPerUser)
	}
}

func TestResultFields(t *testing.T) {
	m := newMachine(1, false, true, 5)
	b := Build(m, tiny())
	res := b.Run()
	if res.Rooms != 1 || res.Users != 4 || res.Messages != 3 {
		t.Fatalf("result config echo wrong: %+v", res)
	}
	if res.Threads != 16 {
		t.Fatalf("threads = %d, want 16", res.Threads)
	}
	if res.Seconds <= 0 {
		t.Fatal("elapsed seconds must be positive")
	}
}
