// Package volano reimplements the VolanoMark chat benchmark as a simulated
// workload (paper §4 and §6). VolanoMark measures a Java chat server: each
// simulated user opens a loopback socket connection; because 1999-era Java
// has no non-blocking I/O, every connection carries four threads — a
// client-side sender and receiver, and a server-side reader and writer.
// Every message a user sends is broadcast by the server to all members of
// the user's room.
//
// The workload stresses the scheduler in the three ways the paper
// describes:
//
//   - Thread count: rooms × 20 users × 4 threads (a 20-room run is 1,600
//     tasks, "400 to 2,000 threads in the run queue").
//   - Rapid blocking message ping-pong over the loopback sockets: "each
//     must have time on the CPU to send and receive its messages ... this
//     type of message exchanging application forces many entries into the
//     scheduler."
//   - sched_yield storms from user-level JVM synchronization: the room
//     broadcast lock is a yield-spinning mutex, and receives poll with a
//     spin-then-block loop, as IBM JDK 1.1.7's thread library did.
//
// The benchmark metric is message throughput: deliveries to client
// receivers per second of virtual time.
package volano

import (
	"fmt"

	"elsc/internal/ipc"
	"elsc/internal/kernel"
	"elsc/internal/task"
)

// Config sizes a VolanoMark run. Zero fields take the paper's defaults.
type Config struct {
	// Rooms is the number of chat rooms (paper sweeps 5, 10, 15, 20).
	Rooms int
	// UsersPerRoom is the room population (paper: 20).
	UsersPerRoom int
	// MessagesPerUser is how many messages each user sends (paper: 100).
	MessagesPerUser int
	// SockCap is the per-direction socket buffer capacity in messages.
	SockCap int
	// WriterQCap bounds each connection's in-process broadcast queue.
	// Small values model the real server's flow control: a room's
	// reader stalls when a member's writer backs up, which keeps the
	// number of simultaneously runnable threads proportional to rooms
	// rather than rooms × users².
	WriterQCap int
	// RecvSpins is how many poll-then-yield rounds a receive performs
	// before blocking (the JVM's adaptive spin).
	RecvSpins int
	// IdleSpinnersPerJVM is the number of housekeeping threads (garbage
	// collector, finalizer) each JVM runs. They wake periodically, poll
	// for work with a few sched_yield rounds, and go back to sleep, as
	// IBM JDK 1.1.7's runtime did. Whenever one of them yields as the
	// only runnable task, the stock scheduler runs the recalculation
	// loop — the dominant source of the paper's Figure 2 counts.
	IdleSpinnersPerJVM int
	// RampCycles staggers thread start-up over a uniform window,
	// modeling VolanoMark's sequential connection establishment. Without
	// it every task starts with an identical quantum and wake-up
	// preemption never fires (all goodness comparisons tie), which is
	// not a regime the real benchmark ever sees.
	RampCycles uint64
	// Costs tunes the per-operation cycle costs.
	Costs Costs
}

// Costs are the simulated cycle prices of the message path, calibrated for
// a 400 MHz machine so that a delivery costs tens of microseconds of CPU,
// like a real 1999 Java chat message through the TCP loopback stack.
type Costs struct {
	SenderThink  uint64 // client-side message composition
	SenderSend   uint64 // client socket write (TCP send path + JVM)
	ReaderParse  uint64 // server read + protocol parse
	RoutePerUser uint64 // enqueue to one member's writer queue
	WriterWrite  uint64 // server socket write per delivery
	ReceiverRecv uint64 // client socket read + handling per delivery
	LockTry      uint64 // one user-level lock attempt
	QueueOp      uint64 // in-process queue syscall cost
	EchoSignalOp uint64 // sender-pacing gate operations
	SpinPollCost uint64 // one non-blocking poll
	// NetSerialHold is the serialized (big-kernel-lock era) portion of
	// each loopback socket operation: no matter how many CPUs the
	// machine has, socket work passes through the 2.3.x network stack
	// essentially one operation at a time. This is why the paper's 4P
	// throughput barely exceeds UP throughput.
	NetSerialHold uint64
	// QueueSerialHold is the smaller serialized portion of in-process
	// queue and gate operations (futex-style kernel entry).
	QueueSerialHold uint64
	// NetLatency delays loopback delivery: data written to a socket
	// becomes readable after the net bottom-half runs, not instantly.
	NetLatency uint64
}

// DefaultCosts returns the calibrated cost set.
func DefaultCosts() Costs {
	return Costs{
		SenderThink:     4000,
		SenderSend:      16000,
		ReaderParse:     12000,
		RoutePerUser:    1500,
		WriterWrite:     16000,
		ReceiverRecv:    12000,
		LockTry:         150,
		QueueOp:         1200,
		EchoSignalOp:    600,
		SpinPollCost:    400,
		NetSerialHold:   11000,
		QueueSerialHold: 2000,
		NetLatency:      20000,
	}
}

// ScalableStackCosts returns DefaultCosts with the network stack's
// serialized section shrunk to a per-socket lock hold, modeling the
// fine-grained locking the kernel grew by 2.6. The 2.3-era NetSerialHold
// caps machine-wide throughput at one socket operation per 11k cycles no
// matter the CPU count, which makes every 16/32-processor run
// stack-bound and scheduler-indifferent; the scaled machines need the
// stack that era actually shipped with.
func ScalableStackCosts() Costs {
	c := DefaultCosts()
	c.NetSerialHold = 1200
	c.QueueSerialHold = 300
	return c
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Rooms == 0 {
		out.Rooms = 10
	}
	if out.UsersPerRoom == 0 {
		out.UsersPerRoom = 20
	}
	if out.MessagesPerUser == 0 {
		out.MessagesPerUser = 100
	}
	if out.SockCap == 0 {
		out.SockCap = 16
	}
	if out.WriterQCap == 0 {
		out.WriterQCap = 3
	}
	if out.RecvSpins == 0 {
		out.RecvSpins = 2
	}
	if out.IdleSpinnersPerJVM == 0 {
		out.IdleSpinnersPerJVM = 2
	}
	if out.RampCycles == 0 {
		out.RampCycles = 10_000_000 // 25 ms at 400 MHz
	}
	if out.Costs == (Costs{}) {
		out.Costs = DefaultCosts()
	}
	return out
}

// Benchmark is a constructed VolanoMark instance bound to a machine.
type Benchmark struct {
	cfg     Config
	m       *kernel.Machine
	rooms   []*room
	threads []*kernel.Proc
	// housekeeping holds the JVM idle-spinner threads; they run until
	// finished is set and are excluded from completion checks.
	housekeeping []*kernel.Proc
	finished     bool

	expectedDeliveries uint64
}

// room holds one chat room's server-side state.
type room struct {
	id    int
	lock  *ipc.YieldMutex
	conns []*conn
}

// conn is one user's connection: the socket pair, the in-process queue
// feeding the user's server-side writer, and the client-side echo gate
// that paces the sender.
type conn struct {
	user    int
	sock    *ipc.SockPair
	writerQ *ipc.Queue
	echo    *ipc.Queue
	// received counts deliveries to this user's client receiver.
	received uint64
}

// Build constructs all rooms, connections and threads on m. Client threads
// share one address space (the client JVM) and server threads another (the
// server JVM), as in the paper's loopback runs.
func Build(m *kernel.Machine, cfg Config) *Benchmark {
	cfg = cfg.withDefaults()
	b := &Benchmark{cfg: cfg, m: m}
	clientMM := m.NewMM("client-jvm")
	serverMM := m.NewMM("server-jvm")
	netStack := m.NewSerialResource("netstack")

	u := cfg.UsersPerRoom
	msgs := cfg.MessagesPerUser
	b.expectedDeliveries = uint64(cfg.Rooms) * uint64(u) * uint64(u) * uint64(msgs)

	for r := 0; r < cfg.Rooms; r++ {
		rm := &room{
			id:   r,
			lock: ipc.NewYieldMutex(fmt.Sprintf("room%d.lock", r), cfg.Costs.LockTry),
		}
		for i := 0; i < u; i++ {
			uid := r*u + i
			cn := &conn{
				user:    uid,
				sock:    ipc.NewSockPair(fmt.Sprintf("u%d", uid), cfg.SockCap),
				writerQ: ipc.NewQueue(fmt.Sprintf("u%d.wq", uid), cfg.WriterQCap),
				echo:    ipc.NewQueue(fmt.Sprintf("u%d.echo", uid), 0),
			}
			for _, q := range []*ipc.Queue{cn.sock.ClientToServer, cn.sock.ServerToClient} {
				q.Serial = netStack
				q.SerialHold = cfg.Costs.NetSerialHold
				q.DeliverLatency = cfg.Costs.NetLatency
			}
			for _, q := range []*ipc.Queue{cn.writerQ, cn.echo} {
				q.Serial = netStack
				q.SerialHold = cfg.Costs.QueueSerialHold
			}
			rm.conns = append(rm.conns, cn)
		}
		b.rooms = append(b.rooms, rm)

		for i, cn := range rm.conns {
			name := fmt.Sprintf("r%d.u%d", r, i)
			b.spawn(name+".sender", clientMM, newSender(cfg, cn))
			b.spawn(name+".recv", clientMM, newReceiver(cfg, cn, u*msgs))
			b.spawn(name+".reader", serverMM, newReader(cfg, rm, cn, msgs))
			b.spawn(name+".writer", serverMM, newWriter(cfg, cn, u*msgs))
		}
	}
	// The JVM runtime threads: GC and finalizer pollers in each JVM.
	for i := 0; i < cfg.IdleSpinnersPerJVM; i++ {
		for _, jvm := range []*task.MM{clientMM, serverMM} {
			p := m.Spawn(fmt.Sprintf("%s.gc%d", jvm.Name, i), jvm, newIdleSpinner(b))
			b.housekeeping = append(b.housekeeping, p)
		}
	}
	return b
}

// newIdleSpinner builds a JVM housekeeping thread: sleep a few
// milliseconds, wake, poll for work with a handful of sched_yield rounds,
// and sleep again — until the benchmark finishes. When a poll window
// coincides with a lull in chat traffic, the spinner's yields arrive as
// the only runnable task: the stock scheduler recalculates every counter
// in the system on each one (Figure 2), while ELSC just re-runs it.
func newIdleSpinner(b *Benchmark) kernel.Program {
	const pollRounds = 6
	phase := 0
	round := 0
	rng := b.m.RNG().Fork()
	return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if b.finished {
			return kernel.Exit{}
		}
		switch phase {
		case 0: // sleep between poll windows (2-6 ms)
			phase = 1
			round = 0
			return kernel.Sleep{Cycles: rng.Range(800_000, 2_400_000)}
		case 1: // poll for work
			phase = 2
			return kernel.Compute{Cycles: 1500}
		default: // nothing found: yield, maybe poll again
			round++
			if round >= pollRounds {
				phase = 0
			} else {
				phase = 1
			}
			return kernel.Yield{}
		}
	})
}

func (b *Benchmark) spawn(name string, mm *task.MM, prog kernel.Program) {
	if b.cfg.RampCycles > 1 {
		prog = &staggered{delay: b.m.RNG().Uint64n(b.cfg.RampCycles), inner: prog}
	}
	b.threads = append(b.threads, b.m.Spawn(name, mm, prog))
}

// staggered delays a program's first action, modeling the benchmark's
// connection ramp-up.
type staggered struct {
	delay   uint64
	inner   kernel.Program
	started bool
}

func (s *staggered) Step(p *kernel.Proc) kernel.Action {
	if !s.started {
		s.started = true
		return kernel.Sleep{Cycles: s.delay}
	}
	return s.inner.Step(p)
}

// Threads returns the number of simulated threads the benchmark created.
func (b *Benchmark) Threads() int { return len(b.threads) }

// ExpectedDeliveries returns rooms*users^2*messages: every message is
// broadcast to every room member.
func (b *Benchmark) ExpectedDeliveries() uint64 { return b.expectedDeliveries }

// Deliveries returns client-side deliveries so far.
func (b *Benchmark) Deliveries() uint64 {
	var n uint64
	for _, rm := range b.rooms {
		for _, cn := range rm.conns {
			n += cn.received
		}
	}
	return n
}

// Done reports whether every thread has exited.
func (b *Benchmark) Done() bool {
	for _, p := range b.threads {
		if !p.Exited() {
			return false
		}
	}
	return true
}

// LockSpins totals yield-lock contention spins across rooms.
func (b *Benchmark) LockSpins() uint64 {
	var n uint64
	for _, rm := range b.rooms {
		n += rm.lock.Spins()
	}
	return n
}

// Result is one VolanoMark run's outcome.
type Result struct {
	Rooms      int
	Users      int
	Messages   int
	Threads    int
	Deliveries uint64
	Cycles     uint64
	Seconds    float64
	// Throughput is deliveries per second of virtual time — the paper's
	// "messages per second (over all connections)".
	Throughput float64
	LockSpins  uint64
}

// Run executes the benchmark to completion (or the machine's horizon) and
// reports throughput. The housekeeping spinners are told to exit once the
// chat traffic is done.
func (b *Benchmark) Run() Result {
	start := b.m.Now()
	b.m.Run(func() bool { return b.Done() })
	b.finished = true
	elapsed := uint64(b.m.Now() - start)
	secs := float64(elapsed) / float64(b.m.Hz())
	res := Result{
		Rooms:      b.cfg.Rooms,
		Users:      b.cfg.UsersPerRoom,
		Messages:   b.cfg.MessagesPerUser,
		Threads:    b.Threads(),
		Deliveries: b.Deliveries(),
		Cycles:     elapsed,
		Seconds:    secs,
		LockSpins:  b.LockSpins(),
	}
	if secs > 0 {
		res.Throughput = float64(res.Deliveries) / secs
	}
	return res
}
