// Package kbuild simulates the paper's light-load control experiment: a
// full compile of the Linux kernel with "make -j4 bzImage" (Table 2).
//
// The build is a DAG of compilation jobs executed by a fixed pool of make
// worker processes. Each job reads its source (simulated disk I/O),
// compiles (a CPU burst), and writes its object file. A serial tail
// (configure, final link, bzImage compression) mirrors the ~10% serial
// fraction implied by the paper's numbers: 6:41 on UP versus 3:40 on two
// processors is a parallel speedup of 1.82, i.e. an Amdahl serial share
// close to 0.10.
//
// With at most jobs-in-flight runnable tasks, the scheduler is under no
// stress: the experiment demonstrates that ELSC does not regress light
// desktop workloads, and that its uniprocessor search shortcut gives it a
// whisker of an edge (the paper's 6:38.68 vs 6:41.41).
package kbuild

import (
	"fmt"

	"elsc/internal/kernel"
	"elsc/internal/sim"
	"elsc/internal/stats"
)

// Config sizes the simulated kernel build.
type Config struct {
	// Units is the number of compilation units (default 320, scaled so
	// a default run takes minutes of virtual time like the paper's).
	Units int
	// Jobs is make's -j parallelism (paper: 4).
	Jobs int
	// MeanCompile is the average CPU burst per unit in cycles.
	MeanCompile uint64
	// MeanIO is the average simulated disk wait per unit in cycles.
	// The paper primed the page cache with a throwaway build, so the
	// default is small.
	MeanIO uint64
	// SerialFraction is the share of total compile work executed
	// serially at the end (link + compress), approximately 0.10.
	SerialFraction float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Units == 0 {
		out.Units = 320
	}
	if out.Jobs == 0 {
		out.Jobs = 4
	}
	if out.MeanCompile == 0 {
		out.MeanCompile = 360_000_000 // ~0.9 s at 400 MHz per unit
	}
	if out.MeanIO == 0 {
		out.MeanIO = 2_000_000 // 5 ms: cache-warm reads
	}
	if out.SerialFraction == 0 {
		out.SerialFraction = 0.10
	}
	return out
}

// Build is a constructed kernel-compile workload.
type Build struct {
	cfg     Config
	m       *kernel.Machine
	workers []*kernel.Proc
	linker  *kernel.Proc

	queue     []job
	nextJob   int
	compiled  int
	linkReady *kernel.WaitQueue
}

type job struct {
	compile uint64
	io      uint64
}

// New constructs the build on m: the job list, the make worker pool, and
// the final serial linker task.
func New(m *kernel.Machine, cfg Config) *Build {
	cfg = cfg.withDefaults()
	b := &Build{cfg: cfg, m: m, linkReady: kernel.NewWaitQueue("link")}
	rng := m.RNG().Fork()

	mm := m.NewMM("make")
	var totalCompile uint64
	for i := 0; i < cfg.Units; i++ {
		// Compile times vary widely across translation units; a 3x
		// spread around the mean is typical of a kernel tree.
		c := rng.Range(cfg.MeanCompile/2, cfg.MeanCompile*2)
		io := rng.Range(cfg.MeanIO/2, cfg.MeanIO*2)
		b.queue = append(b.queue, job{compile: c, io: io})
		totalCompile += c
	}

	for w := 0; w < cfg.Jobs; w++ {
		name := fmt.Sprintf("cc/%d", w)
		b.workers = append(b.workers, m.Spawn(name, mm, b.newWorker()))
	}

	serial := uint64(float64(totalCompile) * cfg.SerialFraction)
	b.linker = m.Spawn("ld+bzImage", mm, b.newLinker(serial))
	return b
}

// newWorker builds a make job server: grab the next unit, read, compile,
// write, repeat; when the queue is empty, exit.
func (b *Build) newWorker() kernel.Program {
	phase := 0
	var cur job
	return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		for {
			switch phase {
			case 0: // claim the next unit
				if b.nextJob >= len(b.queue) {
					return kernel.Exit{}
				}
				cur = b.queue[b.nextJob]
				b.nextJob++
				phase = 1
			case 1: // read the source
				phase = 2
				return kernel.Sleep{Cycles: cur.io}
			case 2: // compile
				phase = 3
				return kernel.Compute{Cycles: cur.compile}
			case 3: // write the object, account completion
				phase = 0
				return kernel.Syscall{
					Name: "write-obj",
					Cost: 30_000,
					Fn: func(p *kernel.Proc, now sim.Time) kernel.Outcome {
						b.compiled++
						if b.compiled == len(b.queue) {
							p.M.WakeAll(b.linkReady)
						}
						return kernel.Done()
					},
				}
			}
		}
	})
}

// newLinker waits for every unit, then runs the serial link+compress tail.
func (b *Build) newLinker(serial uint64) kernel.Program {
	phase := 0
	return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		switch phase {
		case 0: // wait for all objects
			phase = 1
			return kernel.Syscall{
				Name: "wait-objs",
				Cost: 5_000,
				Fn: func(p *kernel.Proc, now sim.Time) kernel.Outcome {
					if b.compiled < len(b.queue) {
						return kernel.BlockOn(b.linkReady)
					}
					return kernel.Done()
				},
			}
		case 1:
			phase = 2
			return kernel.Compute{Cycles: serial}
		default:
			return kernel.Exit{}
		}
	})
}

// Done reports whether the build completed.
func (b *Build) Done() bool { return b.linker.Exited() }

// Result is one build measurement.
type Result struct {
	Units   int
	Jobs    int
	Cycles  uint64
	Seconds float64
	// Formatted is the m:ss.cc rendering used by the paper's Table 2.
	Formatted string
}

// Run executes the build to completion and reports the elapsed time.
func (b *Build) Run() Result {
	start := b.m.Now()
	b.m.Run(func() bool { return b.Done() })
	elapsed := uint64(b.m.Now() - start)
	return Result{
		Units:     b.cfg.Units,
		Jobs:      b.cfg.Jobs,
		Cycles:    elapsed,
		Seconds:   float64(elapsed) / float64(b.m.Hz()),
		Formatted: stats.FormatDuration(elapsed, b.m.Hz()),
	}
}
