package kbuild

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/sched/vanilla"
)

func newMachine(cpus int, smp bool, useELSC bool) *kernel.Machine {
	factory := func(env *sched.Env) sched.Scheduler { return vanilla.New(env) }
	if useELSC {
		factory = func(env *sched.Env) sched.Scheduler { return elsc.New(env) }
	}
	return kernel.NewMachine(kernel.Config{
		CPUs:         cpus,
		SMP:          smp,
		Seed:         99,
		NewScheduler: factory,
		MaxCycles:    3000 * kernel.DefaultHz,
	})
}

// small is a fast test configuration.
func small() Config {
	return Config{Units: 24, MeanCompile: 4_000_000, MeanIO: 100_000}
}

func TestBuildCompletes(t *testing.T) {
	for _, useELSC := range []bool{false, true} {
		m := newMachine(1, false, useELSC)
		b := New(m, small())
		res := b.Run()
		if !b.Done() {
			t.Fatal("build did not finish")
		}
		if res.Seconds <= 0 {
			t.Fatal("no elapsed time")
		}
		if res.Units != 24 || res.Jobs != 4 {
			t.Fatalf("result echo wrong: %+v", res)
		}
	}
}

func TestAllUnitsCompiled(t *testing.T) {
	m := newMachine(2, true, true)
	b := New(m, small())
	b.Run()
	if b.compiled != len(b.queue) {
		t.Fatalf("compiled %d of %d units", b.compiled, len(b.queue))
	}
	if b.nextJob != len(b.queue) {
		t.Fatalf("claimed %d of %d units", b.nextJob, len(b.queue))
	}
}

func TestTwoProcessorSpeedup(t *testing.T) {
	// Table 2's structure: 2P cuts the time nearly in half
	// (6:41 -> 3:40 is a 1.82x speedup with the serial tail).
	run := func(cpus int, smp bool) float64 {
		m := newMachine(cpus, smp, true)
		return New(m, small()).Run().Seconds
	}
	up := run(1, false)
	dual := run(2, true)
	speedup := up / dual
	if speedup < 1.4 || speedup > 2.05 {
		t.Fatalf("2P speedup = %.2f, want roughly 1.8 (Amdahl with ~10%% serial)", speedup)
	}
}

func TestSchedulersAgreeOnLightLoad(t *testing.T) {
	// The Table 2 claim: for light loads the two schedulers are within
	// noise of each other.
	run := func(useELSC bool) float64 {
		m := newMachine(1, false, useELSC)
		return New(m, small()).Run().Seconds
	}
	reg := run(false)
	elscT := run(true)
	diff := (reg - elscT) / reg
	if diff < -0.03 || diff > 0.05 {
		t.Fatalf("light-load times diverge: reg %.3fs vs elsc %.3fs (%.1f%%)",
			reg, elscT, 100*diff)
	}
}

func TestParallelismBounded(t *testing.T) {
	// make -j4 must never have more than 4 compilers (plus the idle
	// linker) runnable: the scheduler sees a light load.
	m := newMachine(4, true, false)
	b := New(m, small())
	b.Run()
	v := m.Scheduler().(*vanilla.Sched)
	mean := float64(v.Diag.QueueLenSum) / float64(v.Diag.Entries)
	if mean > float64(b.cfg.Jobs)+1.5 {
		t.Fatalf("mean run-queue length %.1f exceeds -j%d bound", mean, b.cfg.Jobs)
	}
}

func TestFormattedDuration(t *testing.T) {
	m := newMachine(1, false, true)
	res := New(m, small()).Run()
	if res.Formatted == "" || res.Formatted == "0:00.00" {
		t.Fatalf("formatted duration %q", res.Formatted)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() uint64 {
		m := newMachine(2, true, true)
		return New(m, small()).Run().Cycles
	}
	if run() != run() {
		t.Fatal("kernel build simulation not deterministic")
	}
}
