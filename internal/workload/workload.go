// Package workload unifies the benchmark workloads behind one interface,
// the same way internal/sched unifies the scheduling policies: every
// workload family (VolanoMark chat, kernel compile, Apache-style web
// serving, wake-latency probes, the OLTP database, the wake-storm burst
// benchmark) registers a named Builder, builds an Instance on any
// kernel.Machine, and reports a common Result — a throughput metric in a
// workload-declared unit, a completion flag, and ordered per-workload
// extras. The experiments harness and cmd/sweep drive policy × workload ×
// machine matrices through this registry, so adding a scenario is one
// adapter in registry.go rather than a cross-cutting change.
package workload

import (
	"elsc/internal/kernel"
)

// Params carries the cross-workload sizing knobs the registry understands.
// Each workload maps them onto its own Config; knobs a workload has no use
// for are ignored (kbuild's build size, for instance, does not scale with
// Work). Callers that need a workload's full Config should use the
// workload package directly — the registry is the uniform entry, not the
// only one.
type Params struct {
	// Work is the primary per-actor operation count: messages per user
	// (volano), transactions per client (db), wakes per probe (latency),
	// storms (wakestorm). Zero takes each workload's default.
	Work int
	// Quick selects each workload's reduced shape for tests, CI, and
	// fast sweeps: fewer actors and smaller bursts, same code paths.
	Quick bool
	// ScalableStack selects post-2.3 network-stack costs for the
	// socket-bound workloads (volano), where the 2.3-era serialized
	// stack would otherwise cap every 16+-CPU machine at one socket
	// operation at a time and make every policy measure the same.
	ScalableStack bool
}

// Metric is one named per-workload extra in a Result. Extras are an
// ordered slice, not a map, so rendered tables and determinism digests are
// stable across runs.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Result is the cross-workload measurement every Instance reports.
type Result struct {
	// Workload is the registered name that produced this result.
	Workload string `json:"workload"`
	// Seconds is the measured virtual duration of the run.
	Seconds float64 `json:"seconds"`
	// Cycles is the same duration in CPU cycles.
	Cycles uint64 `json:"cycles"`
	// Ops counts completed operations (deliveries, units, requests,
	// wakes, transactions).
	Ops uint64 `json:"ops"`
	// Throughput is Ops per virtual second — the headline metric.
	Throughput float64 `json:"throughput"`
	// Unit names Throughput's unit ("msgs/s", "units/s", "req/s", ...).
	Unit string `json:"unit"`
	// Complete reports whether the workload finished before the
	// machine's horizon; an incomplete run's throughput understates.
	Complete bool `json:"complete"`
	// Extras holds per-workload metrics (tail latencies, lock spins,
	// drop counts) in a fixed order.
	Extras []Metric `json:"extras,omitempty"`
}

// Extra returns the named extra metric and whether it exists.
func (r Result) Extra(name string) (float64, bool) {
	for _, m := range r.Extras {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// Instance is a workload built on a machine, ready to run.
type Instance interface {
	// Done reports whether the workload has completed, usable as a
	// machine.Run stop condition by harnesses that drive the machine
	// themselves.
	Done() bool
	// Run drives the machine until the workload completes or the
	// horizon passes, and returns the common measurement.
	Run() Result
}

// Builder constructs a workload instance on m, sized by p.
type Builder func(m *kernel.Machine, p Params) Instance

// Workload is one registered workload family.
type Workload struct {
	// Name is the registry key ("volano", "kbuild", ...).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Build constructs an instance on a machine.
	Build Builder
}

// instance adapts a (done, run) pair to Instance; the registry wraps each
// workload package's native benchmark type with one of these.
type instance struct {
	done func() bool
	run  func() Result
}

func (i instance) Done() bool  { return i.done() }
func (i instance) Run() Result { return i.run() }
