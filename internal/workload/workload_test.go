package workload

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
)

func testMachine(cpus int, seed int64) *kernel.Machine {
	return kernel.NewMachine(kernel.Config{
		CPUs: cpus,
		SMP:  cpus > 1,
		Seed: seed,
		NewScheduler: func(env *sched.Env) sched.Scheduler {
			return elsc.New(env)
		},
		MaxCycles: 600 * kernel.DefaultHz,
	})
}

// tinyParams keeps every registry workload small enough for the full
// cross-workload sweep below.
func tinyParams() Params { return Params{Work: 3, Quick: true} }

func TestRegistryNamesUniqueAndComplete(t *testing.T) {
	want := []string{Volano, KBuild, WebServer, Latency, DB, WakeStorm}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d workloads, want %d", len(names), len(want))
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n != want[i] {
			t.Fatalf("registry order: got %v, want %v", names, want)
		}
		if seen[n] {
			t.Fatalf("duplicate workload name %q", n)
		}
		seen[n] = true
	}
	for _, w := range Registry {
		if w.Description == "" || w.Build == nil {
			t.Fatalf("workload %q missing description or builder", w.Name)
		}
	}
}

func TestByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ByName on an unknown workload should panic")
		}
	}()
	ByName("memcached")
}

// TestEveryWorkloadRunsAndCompletes is the registry's smoke bar: each
// registered workload, built through the uniform interface on a small
// machine, must finish before the horizon, report positive throughput in
// a named unit, and stamp its own name on the result.
func TestEveryWorkloadRunsAndCompletes(t *testing.T) {
	for _, w := range Registry {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			m := testMachine(2, 11)
			inst := Build(w.Name, m, tinyParams())
			if inst.Done() {
				t.Fatal("workload reports done before running")
			}
			res := inst.Run()
			if res.Workload != w.Name {
				t.Fatalf("result stamped %q, want %q", res.Workload, w.Name)
			}
			if !res.Complete {
				t.Fatalf("%s did not complete before the horizon", w.Name)
			}
			if res.Throughput <= 0 || res.Unit == "" {
				t.Fatalf("%s: throughput %v unit %q", w.Name, res.Throughput, res.Unit)
			}
			if res.Ops == 0 {
				t.Fatalf("%s reported zero operations", w.Name)
			}
			if res.Seconds <= 0 || res.Cycles == 0 {
				t.Fatalf("%s: seconds %v cycles %d", w.Name, res.Seconds, res.Cycles)
			}
		})
	}
}

// TestExtrasOrderedAndQueryable: extras must come back in a fixed order
// (determinism digests depend on it) and be reachable by name.
func TestExtrasOrderedAndQueryable(t *testing.T) {
	m := testMachine(2, 11)
	res := Build(WakeStorm, m, tinyParams()).Run()
	if len(res.Extras) == 0 {
		t.Fatal("wakestorm should report extra metrics")
	}
	for i := 1; i < len(res.Extras); i++ {
		if res.Extras[i-1].Name >= res.Extras[i].Name {
			t.Fatalf("extras not sorted: %q before %q", res.Extras[i-1].Name, res.Extras[i].Name)
		}
	}
	if _, ok := res.Extra("p99_us"); !ok {
		t.Fatal("wakestorm result missing p99_us extra")
	}
	if _, ok := res.Extra("nonexistent"); ok {
		t.Fatal("Extra returned a metric that was never reported")
	}
}

// TestScalableStackParam: the post-2.3 stack must change the socket-bound
// workload's behavior (higher throughput on a multi-CPU machine, where
// the serialized stack is the bottleneck).
func TestScalableStackParam(t *testing.T) {
	run := func(scalable bool) float64 {
		m := testMachine(4, 11)
		p := Params{Work: 4, Quick: true, ScalableStack: scalable}
		return Build(Volano, m, p).Run().Throughput
	}
	serial, scalable := run(false), run(true)
	if scalable <= serial {
		t.Fatalf("scalable stack should raise 4-CPU volano throughput: %.0f vs %.0f",
			serial, scalable)
	}
}

func TestDescribeListsEveryWorkload(t *testing.T) {
	out := Describe()
	for _, w := range Registry {
		if !containsLine(out, w.Name) {
			t.Fatalf("Describe() missing %q:\n%s", w.Name, out)
		}
	}
}

func containsLine(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
