// Package experiments regenerates every table and figure in the paper's
// evaluation (§6), plus the future-work comparisons (§8) and our ablation
// studies. Each experiment builds fresh machines, runs the appropriate
// workload per configuration, and renders the same rows/series the paper
// reports. Independent runs execute in parallel on the host.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/sched/heapsched"
	"elsc/internal/sched/mq"
	"elsc/internal/sched/o1"
	"elsc/internal/sched/vanilla"
	"elsc/internal/workload/kbuild"
	"elsc/internal/workload/volano"
	"elsc/internal/workload/webserver"
)

// Policy names, as the paper's figures label them.
const (
	Reg  = "reg"
	ELSC = "elsc"
	Heap = "heap"
	MQ   = "mq"
	O1   = "o1"
)

// Policies lists every registered scheduling policy: the paper's two, the
// §8 future-work designs, and the O(1) endpoint of that lineage. The
// conformance, determinism, and cross-scheduler smoke suites all iterate
// this list, so a new policy registered here (with a matching
// SchedulerKind in the public API) is automatically held to the same
// contract.
var Policies = []string{Reg, ELSC, Heap, MQ, O1}

// Factory returns the scheduler factory for a policy name.
func Factory(name string) kernel.SchedulerFactory {
	switch name {
	case Reg:
		return func(env *sched.Env) sched.Scheduler { return vanilla.New(env) }
	case ELSC:
		return func(env *sched.Env) sched.Scheduler { return elsc.New(env) }
	case Heap:
		return func(env *sched.Env) sched.Scheduler { return heapsched.New(env) }
	case MQ:
		return func(env *sched.Env) sched.Scheduler { return mq.New(env) }
	case O1:
		return func(env *sched.Env) sched.Scheduler { return o1.New(env) }
	default:
		panic("experiments: unknown scheduler " + name)
	}
}

// MachineSpec is one hardware configuration from the paper: UP is a
// non-SMP build on one processor, 1P an SMP build on one processor, 2P and
// 4P SMP builds on two and four.
type MachineSpec struct {
	Label string
	CPUs  int
	SMP   bool
}

// PaperSpecs are the four configurations of §6.
var PaperSpecs = []MachineSpec{
	{Label: "UP", CPUs: 1, SMP: false},
	{Label: "1P", CPUs: 1, SMP: true},
	{Label: "2P", CPUs: 2, SMP: true},
	{Label: "4P", CPUs: 4, SMP: true},
}

// AllSpecs extends PaperSpecs with an eight-processor machine, past the
// paper's hardware, where the per-CPU-lock designs separate decisively
// from the global-lock ones.
var AllSpecs = append(append([]MachineSpec{}, PaperSpecs...),
	MachineSpec{Label: "8P", CPUs: 8, SMP: true})

// SpecByLabel returns the named spec.
func SpecByLabel(label string) MachineSpec {
	for _, s := range AllSpecs {
		if s.Label == label {
			return s
		}
	}
	panic("experiments: unknown machine spec " + label)
}

// PaperRooms is the room sweep of Figure 3.
var PaperRooms = []int{5, 10, 15, 20}

// Scale controls how much work each run performs, so tests and benchmarks
// can shrink the experiments while cmd/sweep runs them at paper scale.
type Scale struct {
	// Messages per user (paper: 100).
	Messages int
	// Seed for the deterministic run.
	Seed int64
	// HorizonSeconds bounds each run's virtual time.
	HorizonSeconds uint64
	// Parallel is the number of concurrent runs (0 = GOMAXPROCS).
	Parallel int
}

// DefaultScale reproduces the paper's parameters.
func DefaultScale() Scale {
	return Scale{Messages: 100, Seed: 42, HorizonSeconds: 3000}
}

// QuickScale is a reduced configuration for tests and benchmarks.
func QuickScale() Scale {
	return Scale{Messages: 10, Seed: 42, HorizonSeconds: 600}
}

func (s Scale) workers() int {
	if s.Parallel > 0 {
		return s.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// NewMachine builds a machine for a spec and policy.
func NewMachine(spec MachineSpec, policy string, sc Scale) *kernel.Machine {
	return kernel.NewMachine(kernel.Config{
		CPUs:         spec.CPUs,
		SMP:          spec.SMP,
		Seed:         sc.Seed,
		NewScheduler: Factory(policy),
		MaxCycles:    sc.HorizonSeconds * kernel.DefaultHz,
	})
}

// VolanoRun is one VolanoMark measurement.
type VolanoRun struct {
	Spec   MachineSpec
	Policy string
	Rooms  int
	Result volano.Result
	Stats  kernel.Stats
}

// Key renders "elsc-4P@20" style identifiers.
func (r VolanoRun) Key() string {
	return fmt.Sprintf("%s-%s@%d", r.Policy, r.Spec.Label, r.Rooms)
}

// RunVolano executes one VolanoMark configuration.
func RunVolano(spec MachineSpec, policy string, rooms int, sc Scale) VolanoRun {
	m := NewMachine(spec, policy, sc)
	b := volano.Build(m, volano.Config{Rooms: rooms, MessagesPerUser: sc.Messages})
	res := b.Run()
	return VolanoRun{Spec: spec, Policy: policy, Rooms: rooms, Result: res, Stats: *m.Stats()}
}

// matrixJob identifies one cell of a sweep.
type matrixJob struct {
	spec   MachineSpec
	policy string
	rooms  int
}

// RunVolanoMatrix sweeps policies × specs × rooms, running cells in
// parallel, and returns results in deterministic (input) order.
func RunVolanoMatrix(policies []string, specs []MachineSpec, rooms []int, sc Scale) []VolanoRun {
	var jobs []matrixJob
	for _, p := range policies {
		for _, spec := range specs {
			for _, r := range rooms {
				jobs = append(jobs, matrixJob{spec: spec, policy: p, rooms: r})
			}
		}
	}
	out := make([]VolanoRun, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, sc.workers())
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j matrixJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = RunVolano(j.spec, j.policy, j.rooms, sc)
		}(i, j)
	}
	wg.Wait()
	return out
}

// Find returns the run matching the key parameters, or panics; matrices
// are small and a missing cell is a harness bug.
func Find(runs []VolanoRun, policy, label string, rooms int) VolanoRun {
	for _, r := range runs {
		if r.Policy == policy && r.Spec.Label == label && r.Rooms == rooms {
			return r
		}
	}
	panic(fmt.Sprintf("experiments: no run %s-%s@%d", policy, label, rooms))
}

// KBuildRun is one Table 2 measurement.
type KBuildRun struct {
	Spec   MachineSpec
	Policy string
	Result kbuild.Result
}

// RunKBuild executes one kernel-compile configuration.
func RunKBuild(spec MachineSpec, policy string, cfg kbuild.Config, sc Scale) KBuildRun {
	m := NewMachine(spec, policy, sc)
	b := kbuild.New(m, cfg)
	return KBuildRun{Spec: spec, Policy: policy, Result: b.Run()}
}

// WebRun is one future-work webserver measurement.
type WebRun struct {
	Spec   MachineSpec
	Policy string
	Result webserver.Result
	Stats  kernel.Stats
}

// RunWeb executes one webserver configuration.
func RunWeb(spec MachineSpec, policy string, cfg webserver.Config, sc Scale) WebRun {
	m := NewMachine(spec, policy, sc)
	s := webserver.New(m, cfg)
	return WebRun{Spec: spec, Policy: policy, Result: s.Run(), Stats: *m.Stats()}
}
