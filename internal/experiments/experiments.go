// Package experiments regenerates every table and figure in the paper's
// evaluation (§6), plus the future-work comparisons (§8) and our ablation
// studies. Each experiment builds fresh machines, runs the appropriate
// workload per configuration, and renders the same rows/series the paper
// reports. Independent runs execute in parallel on the host.
package experiments

import (
	"fmt"
	"runtime"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/cfs"
	"elsc/internal/sched/elsc"
	"elsc/internal/sched/heapsched"
	"elsc/internal/sched/mq"
	"elsc/internal/sched/o1"
	"elsc/internal/sched/vanilla"
	"elsc/internal/sim"
	"elsc/internal/workload/kbuild"
	"elsc/internal/workload/volano"
	"elsc/internal/workload/webserver"
)

// Policy names, as the paper's figures label them.
const (
	Reg  = "reg"
	ELSC = "elsc"
	Heap = "heap"
	MQ   = "mq"
	O1   = "o1"
	CFS  = "cfs"
)

// Policies lists every registered scheduling policy: the paper's two, the
// §8 future-work designs, the O(1) endpoint of that lineage, and the
// weighted-vruntime fair scheduler that succeeded it. The conformance,
// determinism, and cross-scheduler smoke suites all iterate this list, so
// a new policy registered here (with a matching SchedulerKind in the
// public API) is automatically held to the same contract. Note the fuzz
// generator draws `Policies[rng.Intn(len(Policies))]`, so growing this
// list re-rolls every seed's composition — any regression that depends on
// a specific historical composition must pin the Scenario as a literal
// (see the seed-586 pre-fix replay).
var Policies = []string{Reg, ELSC, Heap, MQ, O1, CFS}

// Factory returns the scheduler factory for a policy name.
func Factory(name string) kernel.SchedulerFactory {
	switch name {
	case Reg:
		return func(env *sched.Env) sched.Scheduler { return vanilla.New(env) }
	case ELSC:
		return func(env *sched.Env) sched.Scheduler { return elsc.New(env) }
	case Heap:
		return func(env *sched.Env) sched.Scheduler { return heapsched.New(env) }
	case MQ:
		return func(env *sched.Env) sched.Scheduler { return mq.New(env) }
	case O1:
		return func(env *sched.Env) sched.Scheduler { return o1.New(env) }
	case CFS:
		return func(env *sched.Env) sched.Scheduler { return cfs.New(env) }
	default:
		panic("experiments: unknown scheduler " + name)
	}
}

// MachineSpec is one hardware configuration from the paper: UP is a
// non-SMP build on one processor, 1P an SMP build on one processor, 2P and
// 4P SMP builds on two and four. Specs past the paper's hardware may also
// declare cache domains (Domains > 1), giving the machine a NUMA-style
// topology in which off-domain migrations pay the interconnect refill.
type MachineSpec struct {
	Label   string
	CPUs    int
	SMP     bool
	Domains int // cache domains; 0 or 1 means flat
}

// Topology returns the spec's cache-domain layout, nil for flat machines.
func (s MachineSpec) Topology() *sched.Topology {
	if s.Domains <= 1 {
		return nil
	}
	return sched.UniformTopology(s.CPUs, s.Domains)
}

// PaperSpecs are the four configurations of §6.
var PaperSpecs = []MachineSpec{
	{Label: "UP", CPUs: 1, SMP: false},
	{Label: "1P", CPUs: 1, SMP: true},
	{Label: "2P", CPUs: 2, SMP: true},
	{Label: "4P", CPUs: 4, SMP: true},
}

// AllSpecs extends PaperSpecs with machines past the paper's hardware:
// 8, 16 and 32 flat processors, where the per-CPU-lock designs separate
// decisively from the global-lock ones, and a 32-processor machine with
// four 8-CPU cache domains — the NUMA-style spec the domain-aware
// balancing experiments run on.
var AllSpecs = append(append([]MachineSpec{}, PaperSpecs...),
	MachineSpec{Label: "8P", CPUs: 8, SMP: true},
	MachineSpec{Label: "16P", CPUs: 16, SMP: true},
	MachineSpec{Label: "32P", CPUs: 32, SMP: true},
	MachineSpec{Label: "32P-NUMA", CPUs: 32, SMP: true, Domains: 4},
	MachineSpec{Label: "64P-NUMA", CPUs: 64, SMP: true, Domains: 8})

// NUMASpecs are the cache-domain machines: the 4x8 spec the domain
// experiments were built on, and the 64-processor, 8-domain spec that
// stresses the two-level balancing hierarchy (eight domains to choose a
// cross-domain victim from, not three).
var NUMASpecs = []MachineSpec{SpecByLabel("32P-NUMA"), SpecByLabel("64P-NUMA")}

// SpecByLabel returns the named spec.
func SpecByLabel(label string) MachineSpec {
	for _, s := range AllSpecs {
		if s.Label == label {
			return s
		}
	}
	panic("experiments: unknown machine spec " + label)
}

// SpecLabels returns every registered spec label, in AllSpecs order —
// the validation list command-line spec filters check against.
func SpecLabels() []string {
	labels := make([]string, len(AllSpecs))
	for i, s := range AllSpecs {
		labels[i] = s.Label
	}
	return labels
}

// PaperRooms is the room sweep of Figure 3.
var PaperRooms = []int{5, 10, 15, 20}

// Scale controls how much work each run performs, so tests and benchmarks
// can shrink the experiments while cmd/sweep runs them at paper scale.
type Scale struct {
	// Messages per user (paper: 100). The generic matrix runner feeds
	// this to every workload as its per-actor work count.
	Messages int
	// Seed for the deterministic run.
	Seed int64
	// HorizonSeconds bounds each run's virtual time.
	HorizonSeconds uint64
	// Parallel is the number of concurrent runs (0 = GOMAXPROCS).
	Parallel int
	// Quick selects each workload's reduced shape (fewer actors, same
	// code paths) in the registry-driven runs.
	Quick bool
	// TicklessOff disables NO_HZ tickless idle on every machine built
	// for this scale (see kernel.Config.TicklessOff) — the ablation the
	// equivalence tests and `sweep -tickless=off` run under.
	TicklessOff bool
}

// DefaultScale reproduces the paper's parameters.
func DefaultScale() Scale {
	return Scale{Messages: 100, Seed: 42, HorizonSeconds: 3000}
}

// QuickScale is a reduced configuration for tests and benchmarks.
func QuickScale() Scale {
	return Scale{Messages: 10, Seed: 42, HorizonSeconds: 600, Quick: true}
}

// Workers returns the effective worker-pool width: Parallel when set,
// otherwise GOMAXPROCS.
func (s Scale) Workers() int {
	if s.Parallel > 0 {
		return s.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// NewMachine builds a machine for a spec and policy.
func NewMachine(spec MachineSpec, policy string, sc Scale) *kernel.Machine {
	return NewMachineWith(spec, Factory(policy), sc)
}

// NewMachineOn builds a machine that boots on a recycled event engine
// (nil allocates a fresh one; see kernel.Config.Engine).
func NewMachineOn(eng *sim.Engine, spec MachineSpec, policy string, sc Scale) *kernel.Machine {
	cfg := machineConfig(spec, Factory(policy), sc)
	cfg.Engine = eng
	return kernel.NewMachine(cfg)
}

// NewMachineWith builds a machine for a spec with an explicit scheduler
// factory — the entry for ablation variants that tune a policy's config.
func NewMachineWith(spec MachineSpec, factory kernel.SchedulerFactory, sc Scale) *kernel.Machine {
	return kernel.NewMachine(machineConfig(spec, factory, sc))
}

// NewWatchedMachineWith builds a machine like NewMachineWith with the
// starvation/lockup watchdog armed — what the scenario fuzzer runs on,
// so liveness violations surface at their virtual timestamp instead of
// end-of-run.
func NewWatchedMachineWith(spec MachineSpec, factory kernel.SchedulerFactory, sc Scale, wd kernel.WatchdogConfig) *kernel.Machine {
	cfg := machineConfig(spec, factory, sc)
	cfg.Watchdog = &wd
	return kernel.NewMachine(cfg)
}

func machineConfig(spec MachineSpec, factory kernel.SchedulerFactory, sc Scale) kernel.Config {
	return kernel.Config{
		CPUs:         spec.CPUs,
		SMP:          spec.SMP,
		Topology:     spec.Topology(),
		Seed:         sc.Seed,
		NewScheduler: factory,
		MaxCycles:    sc.HorizonSeconds * kernel.DefaultHz,
		TicklessOff:  sc.TicklessOff,
	}
}

// VolanoRun is one VolanoMark measurement.
type VolanoRun struct {
	Spec   MachineSpec
	Policy string
	Rooms  int
	Result volano.Result
	Stats  kernel.Stats

	// IntraSteals and CrossSteals are the balancer's own same-domain and
	// cross-domain move counts, for policies that track them (HasSteals).
	IntraSteals uint64
	CrossSteals uint64
	HasSteals   bool
}

// domainStealer is implemented by policies whose balancer counts its own
// intra- versus cross-domain moves (o1).
type domainStealer interface {
	DomainSteals() (intra, cross uint64)
}

// Key renders "elsc-4P@20" style identifiers.
func (r VolanoRun) Key() string {
	return fmt.Sprintf("%s-%s@%d", r.Policy, r.Spec.Label, r.Rooms)
}

// RunVolano executes one VolanoMark configuration.
func RunVolano(spec MachineSpec, policy string, rooms int, sc Scale) VolanoRun {
	return RunVolanoConfig(spec, policy,
		volano.Config{Rooms: rooms, MessagesPerUser: sc.Messages}, sc)
}

// RunVolanoConfig executes one VolanoMark run with a fully specified
// workload config (the NUMA experiments run the scalable-stack variant).
func RunVolanoConfig(spec MachineSpec, policy string, vcfg volano.Config, sc Scale) VolanoRun {
	return RunVolanoConfigOn(nil, spec, policy, vcfg, sc)
}

// RunVolanoConfigOn is RunVolanoConfig on a recycled event engine (nil
// builds a fresh one) — the matrix worker pool's entry.
func RunVolanoConfigOn(eng *sim.Engine, spec MachineSpec, policy string, vcfg volano.Config, sc Scale) VolanoRun {
	return runVolanoOn(NewMachineOn(eng, spec, policy, sc), spec, policy, vcfg)
}

// runVolanoOn runs the workload on a prepared machine and harvests the
// result, stats, and the balancer's steal counters when tracked.
func runVolanoOn(m *kernel.Machine, spec MachineSpec, policy string, vcfg volano.Config) VolanoRun {
	res := volano.Build(m, vcfg).Run()
	run := VolanoRun{Spec: spec, Policy: policy, Rooms: vcfg.Rooms, Result: res, Stats: *m.Stats()}
	if ds, ok := m.Scheduler().(domainStealer); ok {
		run.IntraSteals, run.CrossSteals = ds.DomainSteals()
		run.HasSteals = true
	}
	return run
}

// matrixJob identifies one cell of a sweep.
type matrixJob struct {
	spec   MachineSpec
	policy string
	rooms  int
}

// RunVolanoMatrix sweeps policies × specs × rooms, running cells in
// parallel, and returns results in deterministic (input) order.
func RunVolanoMatrix(policies []string, specs []MachineSpec, rooms []int, sc Scale) []VolanoRun {
	var jobs []matrixJob
	for _, p := range policies {
		for _, spec := range specs {
			for _, r := range rooms {
				jobs = append(jobs, matrixJob{spec: spec, policy: p, rooms: r})
			}
		}
	}
	return forEachParallel(len(jobs), sc, func(i int, eng *sim.Engine) VolanoRun {
		j := jobs[i]
		return RunVolanoConfigOn(eng, j.spec, j.policy,
			volano.Config{Rooms: j.rooms, MessagesPerUser: sc.Messages}, sc)
	})
}

// Find returns the run matching the key parameters, or panics; matrices
// are small and a missing cell is a harness bug.
func Find(runs []VolanoRun, policy, label string, rooms int) VolanoRun {
	for _, r := range runs {
		if r.Policy == policy && r.Spec.Label == label && r.Rooms == rooms {
			return r
		}
	}
	panic(fmt.Sprintf("experiments: no run %s-%s@%d", policy, label, rooms))
}

// KBuildRun is one Table 2 measurement.
type KBuildRun struct {
	Spec   MachineSpec
	Policy string
	Result kbuild.Result
}

// RunKBuild executes one kernel-compile configuration.
func RunKBuild(spec MachineSpec, policy string, cfg kbuild.Config, sc Scale) KBuildRun {
	m := NewMachine(spec, policy, sc)
	b := kbuild.New(m, cfg)
	return KBuildRun{Spec: spec, Policy: policy, Result: b.Run()}
}

// WebRun is one future-work webserver measurement.
type WebRun struct {
	Spec   MachineSpec
	Policy string
	Result webserver.Result
	Stats  kernel.Stats
}

// RunWeb executes one webserver configuration.
func RunWeb(spec MachineSpec, policy string, cfg webserver.Config, sc Scale) WebRun {
	m := NewMachine(spec, policy, sc)
	s := webserver.New(m, cfg)
	return WebRun{Spec: spec, Policy: policy, Result: s.Run(), Stats: *m.Stats()}
}
