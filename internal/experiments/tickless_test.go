package experiments

import (
	"reflect"
	"testing"

	"elsc/internal/workload"
)

// TestTicklessResultEquivalenceFullRegistry is the NO_HZ soundness
// proof by exhaustion: every workload x policy x spec cell runs twice,
// tickless on and off, and the registry Result — throughput, ops,
// seconds, completion, every extra metric — must be deep-equal. The
// instants a parked chain skips are exactly firings that would have
// found the CPU idle with nothing to do, so no scheduling decision may
// move. Harness-side counters (events fired, tick cost) are what the
// optimization exists to change; the on-mode run must also show real
// savings and a silent rescue audit.
func TestTicklessResultEquivalenceFullRegistry(t *testing.T) {
	on := QuickScale()
	off := QuickScale()
	off.TicklessOff = true

	var onEvents, offEvents, skipped uint64
	for _, spec := range AllSpecs {
		for _, policy := range Policies {
			for _, load := range workload.Names() {
				ron := RunWorkloadCell(spec, policy, load, on)
				roff := RunWorkloadCell(spec, policy, load, off)
				if !reflect.DeepEqual(ron.Result, roff.Result) {
					t.Errorf("%s: results diverge:\n  on:  %+v\n  off: %+v",
						ron.Key(), ron.Result, roff.Result)
				}
				if n := ron.Stats.IdleTickRescues; n != 0 {
					t.Errorf("%s: %d idle-tick rescue(s) — an enqueue-to-idle path owes a kick", ron.Key(), n)
				}
				if n := roff.Stats.TicksSkipped; n != 0 {
					t.Errorf("%s: tickless-off run counted %d skipped ticks", roff.Key(), n)
				}
				onEvents += ron.Stats.EventsFired
				offEvents += roff.Stats.EventsFired
				skipped += ron.Stats.TicksSkipped
			}
		}
	}
	if skipped == 0 {
		t.Error("no cell skipped a single idle tick; NO_HZ is not engaging")
	}
	if onEvents >= offEvents {
		t.Errorf("tickless on fired %d events, off fired %d; parking saved nothing",
			onEvents, offEvents)
	}
}

// TestTicklessRegressionSeedsBothModes replays the pinned fuzz seeds —
// including the watchdog-heavy ones (586, 90875, -74, 90031, 91091) —
// with NO_HZ disabled, so the ablation arm keeps the same liveness
// guarantees as the default. (The default-on arm is every other fuzz
// test in this package.)
func TestTicklessRegressionSeedsBothModes(t *testing.T) {
	for _, seed := range RegressionSeeds {
		s := GenScenario(seed)
		if _, err := RunScenarioOpts(s, ScenarioOpts{TicklessOff: true}); err != nil {
			t.Errorf("tickless off: %v", err)
		}
	}
}

// TestTicklessEventReductionAtScale pins the tick-elision win on the
// idle-heavy 32P-NUMA cells: every skipped instant is one engine event
// (and one TickCost) the off-mode run pays, so skipped + ticks-fired-on
// must equal ticks-fired-off exactly, and the idle-tick share of the
// off-mode chain must drop measurably. (Total cell events are dominated
// by dispatch/wake/sleep traffic on these workloads — the tick chain is
// 3-6% of events_fired — so the reduction is reported on the chain
// itself, where it is exact.)
func TestTicklessEventReductionAtScale(t *testing.T) {
	on := QuickScale()
	off := QuickScale()
	off.TicklessOff = true
	spec := SpecByLabel("32P-NUMA")
	const tickCost = 500 // sched.DefaultCost().TickCost
	for _, load := range []string{workload.WakeStorm, workload.WebServer, workload.DB} {
		ron := RunWorkloadCell(spec, O1, load, on)
		roff := RunWorkloadCell(spec, O1, load, off)
		if !reflect.DeepEqual(ron.Result, roff.Result) {
			t.Errorf("%s: results diverge across tickless modes", ron.Key())
		}
		onTicks := ron.Stats.TickCycles / tickCost
		offTicks := roff.Stats.TickCycles / tickCost
		if onTicks+ron.Stats.TicksSkipped != offTicks {
			t.Errorf("%s: ticks fired %d + skipped %d != always-on %d — elision is not exact",
				ron.Key(), onTicks, ron.Stats.TicksSkipped, offTicks)
		}
		if ron.Stats.TicksSkipped == 0 {
			t.Errorf("%s: no idle ticks skipped on a 32-CPU machine", ron.Key())
		}
		if ron.Stats.EventsFired >= roff.Stats.EventsFired {
			t.Errorf("%s: events %d (on) vs %d (off) — no event reduction",
				ron.Key(), ron.Stats.EventsFired, roff.Stats.EventsFired)
		}
	}
}
