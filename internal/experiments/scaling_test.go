package experiments

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"elsc/internal/workload"
)

// TestWorkersDefaultsToGOMAXPROCS pins the -parallel 0 contract the
// sweep flag documents: an unset Parallel resolves to GOMAXPROCS, an
// explicit value wins.
func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := (Scale{}).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Scale{Parallel: 0}.Workers() = %d, want GOMAXPROCS = %d", got, want)
	}
	if got := (Scale{Parallel: 3}).Workers(); got != 3 {
		t.Fatalf("Scale{Parallel: 3}.Workers() = %d, want 3", got)
	}
}

// TestScalingRungs checks the rung set is ascending, deduplicated, and
// includes both the serial baseline and GOMAXPROCS.
func TestScalingRungs(t *testing.T) {
	rungs := ScalingRungs()
	if len(rungs) == 0 || rungs[0] != 1 {
		t.Fatalf("rungs = %v, want leading 1", rungs)
	}
	seen := map[int]bool{}
	hasMax := false
	for i, r := range rungs {
		if seen[r] {
			t.Fatalf("rungs = %v contains duplicate %d", rungs, r)
		}
		seen[r] = true
		if i > 0 && rungs[i] <= rungs[i-1] {
			t.Fatalf("rungs = %v not ascending", rungs)
		}
		if r == runtime.GOMAXPROCS(0) {
			hasMax = true
		}
	}
	if !hasMax {
		t.Fatalf("rungs = %v missing GOMAXPROCS = %d", rungs, runtime.GOMAXPROCS(0))
	}
}

// TestRunScalingSweepDeterministic runs a tiny matrix through every
// rung and checks the sweep's own cross-rung determinism validation
// passes, speedups are populated, and the event totals agree with the
// serial runs.
func TestRunScalingSweepDeterministic(t *testing.T) {
	sc := QuickScale()
	levels, runs, err := RunScalingSweep(
		[]string{O1}, []MachineSpec{SpecByLabel("2P")}, []string{workload.DB}, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != len(ScalingRungs()) {
		t.Fatalf("got %d levels, want %d", len(levels), len(ScalingRungs()))
	}
	var events uint64
	for _, r := range runs {
		events += r.Stats.EventsFired
	}
	for _, l := range levels {
		if l.Events != events {
			t.Fatalf("rung %d events = %d, serial runs total %d", l.Parallel, l.Events, events)
		}
		if l.Seconds <= 0 || l.Speedup <= 0 || l.NsPerEvent <= 0 {
			t.Fatalf("rung %d has unpopulated timing: %+v", l.Parallel, l)
		}
	}
	if levels[0].Speedup != 1.0 {
		t.Fatalf("serial rung speedup = %v, want 1.0", levels[0].Speedup)
	}
	if ParallelSpeedup(levels) != levels[len(levels)-1].Speedup {
		t.Fatal("ParallelSpeedup does not report the top rung")
	}
}

// TestParallelSweepCPUProfileUsable captures a CPU profile around a
// -parallel 2 matrix and checks the result is a valid gzipped protobuf
// that carries the per-worker sweep_worker pprof label — the property
// that makes a parallel sweep's profile sliceable by worker.
func TestParallelSweepCPUProfileUsable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Fatal(err)
	}
	sc := QuickScale()
	sc.Parallel = 2
	// Repeat the matrix until enough wall time has passed that the
	// 100 Hz sampler has landed samples inside worker goroutines.
	for start := time.Now(); time.Since(start) < 700*time.Millisecond; {
		RunWorkloadMatrix([]string{O1, ELSC}, []MachineSpec{SpecByLabel("4P")},
			[]string{workload.DB, workload.WebServer}, sc)
	}
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("profile is not gzip-framed: %v", err)
	}
	proto, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("profile does not decompress: %v", err)
	}
	if len(proto) == 0 {
		t.Fatal("profile is empty")
	}
	// The label key lands in the profile's string table verbatim.
	if !bytes.Contains(proto, []byte("sweep_worker")) {
		t.Fatal("profile carries no sweep_worker label; per-worker slicing would be impossible")
	}
}
