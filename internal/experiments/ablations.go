package experiments

import (
	"fmt"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/stats"
	"elsc/internal/workload/volano"
)

// Ablations quantify the ELSC design choices the paper discusses but does
// not measure separately:
//
//   - the per-list search limit ("half the number of processors plus
//     five"),
//   - the table size (30 lists),
//   - the uniprocessor memory-map shortcut (§5.2).

// runELSCVariant measures VolanoMark throughput under a configured ELSC.
func runELSCVariant(spec MachineSpec, cfg elsc.Config, rooms int, sc Scale) (volano.Result, kernel.Stats) {
	m := kernel.NewMachine(kernel.Config{
		CPUs: spec.CPUs,
		SMP:  spec.SMP,
		Seed: sc.Seed,
		NewScheduler: func(env *sched.Env) sched.Scheduler {
			return elsc.NewWithConfig(env, cfg)
		},
		MaxCycles: sc.HorizonSeconds * kernel.DefaultHz,
	})
	b := volano.Build(m, volano.Config{Rooms: rooms, MessagesPerUser: sc.Messages})
	return b.Run(), *m.Stats()
}

// AblateSearchLimit sweeps the per-list examination cap.
func AblateSearchLimit(spec MachineSpec, rooms int, limits []int, sc Scale) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: ELSC search limit (%s, %d rooms; paper uses ncpu/2+5 = %d)",
			spec.Label, rooms, spec.CPUs/2+5),
		"Limit", "Throughput", "cyc/sched", "examined", "migrations")
	for _, lim := range limits {
		res, st := runELSCVariant(spec, elsc.Config{SearchLimit: lim}, rooms, sc)
		t.AddRow(lim, int(res.Throughput), int(st.CyclesPerSchedule()),
			st.ExaminedPerSchedule(), st.Migrations)
	}
	return t
}

// AblateTableSize sweeps the number of lists in the table.
func AblateTableSize(spec MachineSpec, rooms int, sizes []int, sc Scale) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: ELSC table size (%s, %d rooms; paper uses 30)", spec.Label, rooms),
		"Lists", "Throughput", "cyc/sched", "examined")
	for _, size := range sizes {
		res, st := runELSCVariant(spec, elsc.Config{TableSize: size}, rooms, sc)
		t.AddRow(size, int(res.Throughput), int(st.CyclesPerSchedule()),
			st.ExaminedPerSchedule())
	}
	return t
}

// AblateUPShortcut measures the uniprocessor mm-match early exit.
func AblateUPShortcut(rooms int, sc Scale) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: ELSC UP shortcut (UP, %d rooms)", rooms),
		"Shortcut", "Throughput", "cyc/sched", "examined")
	spec := SpecByLabel("UP")
	for _, off := range []bool{false, true} {
		res, st := runELSCVariant(spec, elsc.Config{DisableUPShortcut: off}, rooms, sc)
		label := "on (paper)"
		if off {
			label = "off"
		}
		t.AddRow(label, int(res.Throughput), int(st.CyclesPerSchedule()),
			st.ExaminedPerSchedule())
	}
	return t
}
