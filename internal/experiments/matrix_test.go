package experiments

import (
	"reflect"
	"strings"
	"testing"

	"elsc/internal/workload"
)

// matrixScale keeps the generic-matrix tests fast: Quick shapes with a
// tiny per-actor work count.
func matrixScale() Scale {
	return Scale{Messages: 2, Seed: 42, HorizonSeconds: 600, Quick: true}
}

func TestWorkloadMatrixCoversAllCells(t *testing.T) {
	policies := []string{Reg, O1}
	specs := []MachineSpec{SpecByLabel("2P")}
	loads := []string{workload.Volano, workload.DB}
	runs := RunWorkloadMatrix(policies, specs, loads, matrixScale())
	if len(runs) != len(policies)*len(specs)*len(loads) {
		t.Fatalf("matrix has %d cells, want %d", len(runs), len(policies)*len(specs)*len(loads))
	}
	for _, p := range policies {
		for _, l := range loads {
			r := FindWorkload(runs, p, "2P", l)
			if r.Result.Ops == 0 {
				t.Fatalf("%s produced no operations", r.Key())
			}
			if !r.Result.Complete {
				t.Fatalf("%s did not complete", r.Key())
			}
			if r.Stats.SchedCalls == 0 {
				t.Fatalf("%s harvested empty machine stats", r.Key())
			}
		}
	}
}

// TestWorkloadMatrixDeterministicAcrossParallelism runs the same matrix
// serially and with a 4-wide worker pool and requires every cell to be
// identical in full — workload result, machine stats, estimator counters,
// and cell order. Host wall-clock (WallNS) is the one field allowed to
// differ. Run under -race this is also the data-race check on the
// parallel sweep path.
func TestWorkloadMatrixDeterministicAcrossParallelism(t *testing.T) {
	sc1 := matrixScale()
	sc1.Parallel = 1
	sc4 := matrixScale()
	sc4.Parallel = 4
	policies := []string{Reg, O1}
	loads := []string{workload.DB, workload.WakeStorm}
	a := RunWorkloadMatrix(policies, []MachineSpec{SpecByLabel("2P")}, loads, sc1)
	b := RunWorkloadMatrix(policies, []MachineSpec{SpecByLabel("2P")}, loads, sc4)
	if len(a) != len(b) {
		t.Fatalf("matrix size differs across parallelism: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("cell order differs across parallelism at %d: %s vs %s",
				i, a[i].Key(), b[i].Key())
		}
		x, y := a[i], b[i]
		x.WallNS, y.WallNS = 0, 0
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("cell %s differs across parallelism:\n--- serial\n%+v\n--- parallel\n%+v",
				a[i].Key(), x, y)
		}
	}
}

func TestMatrixTableShape(t *testing.T) {
	policies := []string{Reg, ELSC}
	spec := SpecByLabel("2P")
	loads := []string{workload.Volano, workload.KBuild, workload.DB}
	runs := RunWorkloadMatrix(policies, []MachineSpec{spec}, loads, matrixScale())
	tab := MatrixTable(runs, spec, policies, loads)
	out := tab.Render()
	if tab.NumRows() != len(policies) {
		t.Fatalf("matrix table rows = %d, want %d", tab.NumRows(), len(policies))
	}
	for _, want := range []string{"volano (msgs/s)", "kbuild (units/s)", "db (txns/s)", "reg", "elsc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("matrix table missing %q:\n%s", want, out)
		}
	}
}

func TestWorkloadDetailIncludesExtras(t *testing.T) {
	policies := []string{Reg, O1}
	spec := SpecByLabel("2P")
	runs := RunWorkloadMatrix(policies, []MachineSpec{spec}, []string{workload.WakeStorm}, matrixScale())
	tab := WorkloadDetail(runs, spec, policies, workload.WakeStorm)
	out := tab.Render()
	for _, want := range []string{"p50_us", "p99_us", "max_us"} {
		if !strings.Contains(out, want) {
			t.Fatalf("wakestorm detail missing column %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 2 {
		t.Fatalf("detail rows = %d, want 2", tab.NumRows())
	}
}

// TestWakeStormTableAllPolicies is the acceptance check: the wake-storm
// experiment reports p50/p99 wakeup-to-run latency for every default
// (non-baseline) policy on the NUMA spec — retired baselines stay out of
// the default sweep per the capability table, but remain runnable by
// name. The scale is tiny; the sweep runs it big.
func TestWakeStormTableAllPolicies(t *testing.T) {
	tab := WakeStorm(SpecByLabel("32P-NUMA"), matrixScale())
	out := tab.Render()
	def := DefaultPolicies()
	if tab.NumRows() != len(def) {
		t.Fatalf("wakestorm table rows = %d, want %d", tab.NumRows(), len(def))
	}
	for _, p := range def {
		if !strings.Contains(out, p) {
			t.Fatalf("wakestorm table missing policy %q:\n%s", p, out)
		}
	}
	for _, col := range []string{"p50_us", "p99_us"} {
		if !strings.Contains(out, col) {
			t.Fatalf("wakestorm table missing %q:\n%s", col, out)
		}
	}
}

// TestDefaultPoliciesExcludeBaselines pins the demotion: mq is a retired
// baseline — registered, conformance-covered, selectable by name — but
// absent from the default sweep set, and every default policy is still a
// registered one.
func TestDefaultPoliciesExcludeBaselines(t *testing.T) {
	def := DefaultPolicies()
	for _, p := range def {
		if Caps[p].Baseline {
			t.Fatalf("baseline policy %q in DefaultPolicies", p)
		}
		if Factory(p) == nil {
			t.Fatalf("default policy %q has no factory", p)
		}
	}
	if len(def) >= len(Policies) {
		t.Fatal("no policy is demoted; the baseline mechanism is dead code")
	}
	found := false
	for _, p := range Policies {
		if p == MQ {
			found = true
		}
	}
	if !found {
		t.Fatal("mq must stay registered (conformance + determinism coverage)")
	}
	if !Caps[MQ].Baseline {
		t.Fatal("mq should carry the Baseline flag (no interactivity story)")
	}
}

func TestWorkloadParamsScalableStackPastPaperHardware(t *testing.T) {
	sc := matrixScale()
	if WorkloadParams(SpecByLabel("4P"), sc).ScalableStack {
		t.Fatal("paper-era machine should keep the 2.3 serialized stack")
	}
	for _, label := range []string{"16P", "32P-NUMA", "64P-NUMA"} {
		if !WorkloadParams(SpecByLabel(label), sc).ScalableStack {
			t.Fatalf("%s should use the scalable stack", label)
		}
	}
}

func TestFindWorkloadPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FindWorkload on empty runs should panic")
		}
	}()
	FindWorkload(nil, Reg, "UP", workload.Volano)
}
