package experiments

import (
	"fmt"

	"elsc/internal/sched"
	"elsc/internal/sched/o1"
	"elsc/internal/sim"
	"elsc/internal/stats"
	"elsc/internal/workload"
)

// The interactivity experiments: measure what the o1 scheduler's
// sleep_avg machinery (dynamic-priority bonus, active-array requeue,
// tick preemption, TIMESLICE_GRANULARITY chunking) and SD_WAKE_IDLE
// placement buy on the latency-sensitive workloads — the matrix column
// PR 3 exposed as o1's fidelity gap, where quantum-expired probes parked
// behind a full hog quantum in the expired array.

// o1InteractivityConfig returns the o1 config for one ablation arm: the
// full machinery, or both halves disabled (the pre-interactivity
// scheduler, kept as the baseline).
func o1InteractivityConfig(off bool) o1.Config {
	return o1.Config{InteractivityOff: off, WakeIdleOff: off}
}

// RunO1Interactivity runs one registry workload under o1 with the
// interactivity machinery on or off — the benchmark and acceptance-test
// entry point for the ablation.
func RunO1Interactivity(spec MachineSpec, load string, off bool, sc Scale) WorkloadRun {
	cfg := o1InteractivityConfig(off)
	return RunWorkloadCellWith(spec, func(env *sched.Env) sched.Scheduler {
		return o1.NewWithConfig(env, cfg)
	}, O1, load, sc)
}

// AblateInteractivity isolates the interactivity machinery on one spec:
// the same o1 scheduler with and without it, racing the two
// latency-sensitive registry workloads. The latency columns are the
// headline — with the machinery off, a probe at the hogs' static
// priority waits out hog quanta; with it on, the sleep_avg bonus
// preempts within microseconds — and the estimator columns show the
// mechanism at work (bonus spread, active-array requeues, wake-idle
// placements).
func AblateInteractivity(spec MachineSpec, sc Scale) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: o1 interactivity (%s)", spec.Label),
		"o1 variant", "lat p99 us", "lat max us", "storm p99 us",
		"+bonus enq", "-bonus enq", "requeues", "wake-idle", "tick-preempt", "rotations")
	type arm struct {
		label string
		off   bool
	}
	arms := []arm{{"interactive", false}, {"interactivity-off", true}}
	type armRuns struct{ lat, storm WorkloadRun }
	runs := make([]armRuns, len(arms))
	forEachIndexParallel(len(arms), sc, func(i int, _ *sim.Engine) {
		runs[i] = armRuns{
			lat:   RunO1Interactivity(spec, workload.Latency, arms[i].off, sc),
			storm: RunO1Interactivity(spec, workload.WakeStorm, arms[i].off, sc),
		}
	})
	for i, a := range arms {
		lat, storm := runs[i].lat, runs[i].storm
		latP99, _ := lat.Result.Extra("p99_us")
		latMax, _ := lat.Result.Extra("max_us")
		stormP99, _ := storm.Result.Extra("p99_us")
		var plus, minus uint64
		for b, n := range lat.BonusLevels {
			if b > o1.BonusSpan/2 {
				plus += n
			} else if b < o1.BonusSpan/2 {
				minus += n
			}
		}
		t.AddRow(a.label,
			int(latP99), int(latMax), int(stormP99),
			plus, minus, lat.InteractiveRequeues,
			lat.Stats.WakeIdlePlacements+storm.Stats.WakeIdlePlacements,
			lat.Stats.TickPreemptions+storm.Stats.TickPreemptions,
			lat.Stats.TimesliceRotations+storm.Stats.TimesliceRotations)
	}
	return t
}
