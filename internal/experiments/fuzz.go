package experiments

// The whole-machine scenario fuzzer. A Scenario is a seeded composition
// of one registry workload with mid-run fault injections — hot policy
// swaps, affinity and priority churn, fork storms, CPU hotplug storms —
// run on a real simulated machine and audited against the
// task-conservation invariants at every injection point and at the end
// of the run:
//
//   - census: every live runnable task is tracked (on the run queue or
//     holding a CPU), and the scheduler's Runnable() agrees with a walk
//     of the task table — no task lost, none double-counted;
//   - swap conservation: a policy swap migrates exactly the queued plus
//     running population, every queued task is still queued afterwards,
//     and virtual time does not move;
//   - hotplug conservation: offlining a CPU preempts and re-queues its
//     task and drains its private queues without losing anything, and
//     virtual time does not move;
//   - liveness: every machine runs with the kernel watchdog armed, so a
//     starved task, a lost wakeup, or a dead per-CPU timer chain fails
//     the scenario at the virtual instant the sweep catches it, not at
//     end-of-run;
//   - completion: the workload finishes before the horizon and every
//     storm-forked task exits;
//   - determinism: the same scenario produces byte-identical digests on
//     every run, and a scenario with zero injections reproduces the
//     plain (non-fuzzed) run's digest exactly — RunScenario checks that
//     one itself, against the baseline it measures anyway.
//
// Injection times are permille fractions of a baseline run of the same
// seed/spec/load/policy with no injections, so a swap at 500 lands
// mid-flight whether the workload runs for half a tick (wakestorm) or
// hundreds (latency). Scenarios are generated deterministically from a
// seed, so every failure the fuzzer finds is replayed by its seed alone;
// pinned seeds live in RegressionSeeds and the committed go-fuzz corpus.

import (
	"fmt"
	"strings"

	"elsc/internal/kernel"
	"elsc/internal/sim"
	"elsc/internal/task"
	"elsc/internal/workload"
)

// SwapPoint is one injected hot policy switch.
type SwapPoint struct {
	At uint64 // permille of the baseline run length
	To string // successor policy name
}

// ChurnPoint is one injected affinity/priority change on a random task.
type ChurnPoint struct {
	At     uint64
	Victim int    // index into the live task table, modulo its size
	Mask   uint64 // nonzero: pin to one CPU; zero: widen to all
	Prio   int    // nonzero: set static priority instead of affinity
}

// ForkPoint is one injected fork storm.
type ForkPoint struct {
	At   uint64
	N    int    // tasks spawned
	Work uint64 // compute cycles per task per step
}

// HotplugPoint is one injected offline→online cycle on one CPU.
type HotplugPoint struct {
	At     uint64 // offline instant, permille of the baseline run
	BackAt uint64 // online instant, permille; always > At
	CPU    int    // CPU index, modulo the spec's CPU count at run time
}

// Scenario is one deterministic whole-machine fuzz case.
type Scenario struct {
	Seed     int64
	Spec     string // machine spec label
	Load     string // registry workload name
	Policy   string // starting policy
	Swaps    []SwapPoint
	Churns   []ChurnPoint
	Forks    []ForkPoint
	Hotplugs []HotplugPoint
}

// String renders the scenario as a one-line trace for failure reports.
func (s Scenario) String() string {
	out := fmt.Sprintf("seed=%d %s/%s start=%s", s.Seed, s.Spec, s.Load, s.Policy)
	for _, sw := range s.Swaps {
		out += fmt.Sprintf(" swap@%d‰->%s", sw.At, sw.To)
	}
	for _, ch := range s.Churns {
		out += fmt.Sprintf(" churn@%d‰(mask=%#x,prio=%d)", ch.At, ch.Mask, ch.Prio)
	}
	for _, fk := range s.Forks {
		out += fmt.Sprintf(" fork@%d‰(n=%d)", fk.At, fk.N)
	}
	for _, hp := range s.Hotplugs {
		out += fmt.Sprintf(" hotplug@%d-%d‰(cpu=%d)", hp.At, hp.BackAt, hp.CPU)
	}
	return out
}

func (s Scenario) injections() int {
	return len(s.Swaps) + len(s.Churns) + len(s.Forks) + len(s.Hotplugs)
}

// fuzzSpecs are the machine shapes scenarios draw from: a paper-era SMP,
// the mid-size flat machine, and the NUMA spec — enough to cover the
// global-lock, per-CPU-lock, and domain-aware code paths.
var fuzzSpecs = []string{"2P", "4P", "8P", "32P-NUMA"}

// GenScenario derives a scenario deterministically from a seed.
func GenScenario(seed int64) Scenario {
	rng := sim.NewRNG(seed)
	loads := workload.Names()
	s := Scenario{
		Seed:   seed,
		Spec:   fuzzSpecs[rng.Intn(len(fuzzSpecs))],
		Load:   loads[rng.Intn(len(loads))],
		Policy: Policies[rng.Intn(len(Policies))],
	}
	// Injections land between 5% and 85% of the baseline run, the busy
	// stretch on every workload shape.
	at := func() uint64 { return rng.Range(50, 850) }
	for i, n := 0, rng.Intn(4); i < n; i++ {
		s.Swaps = append(s.Swaps, SwapPoint{
			At: at(),
			To: Policies[rng.Intn(len(Policies))],
		})
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		ch := ChurnPoint{At: at(), Victim: rng.Intn(64)}
		switch rng.Intn(3) {
		case 0: // pin to one CPU (picked at run time)
			ch.Mask = 1
		case 1: // widen back to all
			ch.Mask = 0
		case 2:
			ch.Prio = 1 + rng.Intn(task.MaxPriority)
		}
		s.Churns = append(s.Churns, ch)
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Forks = append(s.Forks, ForkPoint{
			At:   at(),
			N:    1 + rng.Intn(8),
			Work: 50_000 + rng.Uint64n(400_000),
		})
	}
	// Hotplug draws come last so every seed pinned before hotplug existed
	// still generates its original swap/churn/fork composition.
	for i, n := 0, rng.Intn(3); i < n; i++ {
		off := at()
		back := off + 20 + rng.Uint64n(180)
		if back > 990 {
			back = 990
		}
		s.Hotplugs = append(s.Hotplugs, HotplugPoint{At: off, BackAt: back, CPU: rng.Intn(64)})
	}
	return s
}

// FuzzReport is what a scenario run yields when every invariant held.
type FuzzReport struct {
	Scenario Scenario
	Result   workload.Result
	Digest   string
	Migrated int // tasks handed over across all swaps
	Forked   int
	Offlined int // hot-unplugs that actually took effect
	Onlined  int // hot-plugs that actually took effect
}

// fuzzScale is the workload sizing every scenario runs at: the quick
// registry shapes, a long horizon, and the scenario's own seed.
func fuzzScale(seed int64) Scale {
	return Scale{Messages: 2, Seed: seed, HorizonSeconds: 600, Quick: true}
}

func fuzzDigest(res workload.Result, m *kernel.Machine) string {
	return fmt.Sprintf("%+v\n%s", res, m.Stats().Registry().Render())
}

// FuzzWatchdogConfig is the watchdog arming every fuzz machine runs
// with: the laxest policy-derived starvation bar, since scenarios can
// hot-swap to any registered policy mid-run.
func FuzzWatchdogConfig() kernel.WatchdogConfig {
	return kernel.WatchdogConfig{StarveQuanta: MaxWatchdogStarveQuanta()}
}

// ScenarioOpts tunes RunScenarioOpts for harness tests.
type ScenarioOpts struct {
	// FactoryFor overrides the policy-name-to-factory mapping for the
	// starting policy and every swap target (nil: the registry's
	// Factory). The seed-586 regression test uses it to replay the
	// scenario against the pre-fix mq recalc semantics.
	FactoryFor func(name string) kernel.SchedulerFactory
	// OnViolation observes every watchdog violation on the injected
	// machine, in addition to the run failing on the first one.
	OnViolation func(kernel.WatchdogViolation)
	// Trace, when non-nil, is installed on the injected machine — the
	// schedule()-decision firehose, for digging into a failing seed.
	Trace func(kernel.TraceEvent)
	// TicklessOff replays the scenario with NO_HZ idle disabled — the
	// ablation arm of the tickless regression replays.
	TicklessOff bool
}

// RunScenario executes one scenario and audits it. The returned error
// carries the scenario trace and the first violated invariant.
func RunScenario(s Scenario) (FuzzReport, error) {
	return RunScenarioOpts(s, ScenarioOpts{})
}

// RunScenarioOpts is RunScenario with harness-test hooks.
func RunScenarioOpts(s Scenario, opts ScenarioOpts) (FuzzReport, error) {
	rep := FuzzReport{Scenario: s}
	spec := SpecByLabel(s.Spec)
	sc := fuzzScale(s.Seed)
	sc.TicklessOff = opts.TicklessOff
	factoryFor := opts.FactoryFor
	if factoryFor == nil {
		factoryFor = Factory
	}

	var violation error
	fail := func(format string, args ...any) {
		if violation == nil {
			violation = fmt.Errorf("%s: %s", s, fmt.Sprintf(format, args...))
		}
	}

	// Baseline: the identical machine with no injections. It provides
	// the injection timebase (virtual cycles the undisturbed run takes)
	// and the reference digest for zero-injection scenarios. It runs
	// watchdog-armed like the injected machine — a violation here is a
	// liveness bug (or a watchdog false positive) on a clean run.
	bwd := FuzzWatchdogConfig()
	bwd.OnViolation = func(v kernel.WatchdogViolation) { fail("baseline %s", v) }
	bm := NewWatchedMachineWith(spec, factoryFor(s.Policy), sc, bwd)
	bres := workload.Build(s.Load, bm, WorkloadParams(spec, sc)).Run()
	if violation != nil {
		return rep, violation
	}
	if !bres.Complete {
		return rep, fmt.Errorf("%s: baseline run incomplete", s)
	}
	span := uint64(bm.Now())

	wd := FuzzWatchdogConfig()
	wd.OnViolation = func(v kernel.WatchdogViolation) {
		fail("%s", v)
		if opts.OnViolation != nil {
			opts.OnViolation(v)
		}
	}
	mcfg := machineConfig(spec, factoryFor(s.Policy), sc)
	mcfg.Watchdog = &wd
	mcfg.Trace = opts.Trace
	m := kernel.NewMachine(mcfg)
	inst := workload.Build(s.Load, m, WorkloadParams(spec, sc))

	rng := sim.NewRNG(s.Seed ^ 0x5eed)
	at := func(permille uint64) sim.Cycles {
		c := span * permille / 1000
		if c == 0 {
			c = 1
		}
		return c
	}

	for _, sw := range s.Swaps {
		to := sw.To
		m.Engine().After(at(sw.At), "fuzz-swap", func(now sim.Time) {
			if violation != nil {
				return
			}
			if err := auditCensus(m); err != nil {
				fail("pre-swap(%s) %v", to, err)
				return
			}
			queued := queuedTasks(m)
			running := runningCount(m)
			migrated := m.SwitchPolicy(factoryFor(to))
			rep.Migrated += migrated
			if migrated != len(queued)+running {
				fail("swap to %s migrated %d tasks, machine held %d queued + %d running",
					to, migrated, len(queued), running)
				return
			}
			if m.Now() != now {
				fail("swap to %s moved the clock from %d to %d", to, now, m.Now())
				return
			}
			for _, t := range queued {
				if !m.Scheduler().OnRunqueue(t) {
					fail("swap to %s dropped queued task %s", to, t.Name)
					return
				}
			}
			if err := auditCensus(m); err != nil {
				fail("post-swap(%s) %v", to, err)
			}
		})
	}
	for _, ch := range s.Churns {
		ch := ch
		m.Engine().After(at(ch.At), "fuzz-churn", func(now sim.Time) {
			if violation != nil {
				return
			}
			procs := m.Procs()
			p := procs[ch.Victim%len(procs)]
			if p.Exited() {
				return
			}
			switch {
			case ch.Prio > 0 && !p.Task.RealTime():
				m.SetPriority(p, ch.Prio)
			case ch.Mask != 0:
				m.SetAffinity(p, 1<<uint(rng.Intn(spec.CPUs)))
			default:
				m.SetAffinity(p, 0)
			}
			if err := auditCensus(m); err != nil {
				fail("post-churn %v", err)
			}
		})
	}
	for _, fk := range s.Forks {
		fk := fk
		m.Engine().After(at(fk.At), "fuzz-fork", func(now sim.Time) {
			if violation != nil {
				return
			}
			for i := 0; i < fk.N; i++ {
				steps := 0
				m.Spawn(fmt.Sprintf("storm%d", rep.Forked), nil,
					kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
						steps++
						if steps > 4 {
							return kernel.Exit{}
						}
						return kernel.Compute{Cycles: fk.Work}
					}))
				rep.Forked++
			}
			if err := auditCensus(m); err != nil {
				fail("post-fork %v", err)
			}
		})
	}
	for _, hp := range s.Hotplugs {
		cpu := hp.CPU % spec.CPUs
		m.Engine().After(at(hp.At), "fuzz-offline", func(now sim.Time) {
			if violation != nil {
				return
			}
			if err := auditCensus(m); err != nil {
				fail("pre-offline(cpu%d) %v", cpu, err)
				return
			}
			queued := queuedTasks(m)
			if err := m.OfflineCPU(cpu); err != nil {
				// Refused: already offline (overlapping storms) or the
				// last online CPU. The refusal is the correct behavior;
				// nothing changed, nothing to audit.
				return
			}
			rep.Offlined++
			if m.Now() != now {
				fail("offlining cpu%d moved the clock from %d to %d", cpu, now, m.Now())
				return
			}
			for _, t := range queued {
				if !m.Scheduler().OnRunqueue(t) && !t.HasCPU {
					fail("offlining cpu%d dropped queued task %s", cpu, t.Name)
					return
				}
			}
			if err := auditCensus(m); err != nil {
				fail("post-offline(cpu%d) %v", cpu, err)
			}
		})
		m.Engine().After(at(hp.BackAt), "fuzz-online", func(now sim.Time) {
			if violation != nil {
				return
			}
			if err := m.OnlineCPU(cpu); err != nil {
				// Already online: its offline was refused, or an
				// overlapping storm brought it back first.
				return
			}
			rep.Onlined++
			if err := auditCensus(m); err != nil {
				fail("post-online(cpu%d) %v", cpu, err)
			}
		})
	}

	res := inst.Run()
	if violation != nil {
		return rep, violation
	}
	if err := auditCensus(m); err != nil {
		return rep, fmt.Errorf("%s: end-of-run %v", s, err)
	}
	if !res.Complete {
		return rep, fmt.Errorf("%s: workload incomplete after %.0fs virtual", s, res.Seconds)
	}
	if rep.Forked > 0 {
		// Let the fork-storm stragglers finish; they are pure compute
		// and must all exit before the horizon.
		m.Run(func() bool { return stormsLeft(m) == 0 })
		if left := stormsLeft(m); left > 0 {
			return rep, fmt.Errorf("%s: %d forked tasks never exited", s, left)
		}
	}
	rep.Result = res
	rep.Digest = fuzzDigest(res, m)
	if s.injections() == 0 && rep.Digest != fuzzDigest(bres, bm) {
		return rep, fmt.Errorf(
			"%s: zero-injection scenario diverged from the plain run:\n--- fuzz\n%s\n--- plain\n%s",
			s, rep.Digest, fuzzDigest(bres, bm))
	}
	return rep, nil
}

// stormsLeft counts fork-storm tasks that have not exited yet.
func stormsLeft(m *kernel.Machine) int {
	n := 0
	for _, p := range m.Procs() {
		if !p.Exited() && strings.HasPrefix(p.Task.Name, "storm") {
			n++
		}
	}
	return n
}

// queuedTasks returns the live tasks currently queued (tracked by the
// scheduler and not holding a CPU).
func queuedTasks(m *kernel.Machine) []*task.Task {
	var out []*task.Task
	for _, p := range m.Procs() {
		if p.Exited() {
			continue
		}
		t := p.Task
		if t.Runnable() && !t.HasCPU && m.Scheduler().OnRunqueue(t) {
			out = append(out, t)
		}
	}
	return out
}

// runningCount returns the number of live tasks holding (or claimed for)
// a CPU.
func runningCount(m *kernel.Machine) int {
	n := 0
	for _, p := range m.Procs() {
		if !p.Exited() && p.Task.HasCPU {
			n++
		}
	}
	return n
}

// AuditCensus re-exports the fuzzer's conservation walk for other suites
// (the hotplug conformance tests audit machines mid-cycle with it).
func AuditCensus(m *kernel.Machine) error { return auditCensus(m) }

// auditCensus walks the task table and checks task conservation: every
// live runnable task is either queued or running (nothing vanished), and
// the scheduler's Runnable() count agrees with the walk (nothing is
// double-tracked).
func auditCensus(m *kernel.Machine) error {
	queued := 0
	for _, p := range m.Procs() {
		if p.Exited() {
			continue
		}
		t := p.Task
		if !t.Runnable() {
			continue
		}
		tracked := m.Scheduler().OnRunqueue(t)
		switch {
		case t.HasCPU:
			// Running; some policies also keep it listed. Fine either way.
		case tracked:
			queued++
		default:
			return fmt.Errorf("census: runnable task %s (id %d) neither queued nor running",
				t.Name, t.ID)
		}
	}
	if got := m.Scheduler().Runnable(); got != queued {
		var names []string
		for _, p := range m.Procs() {
			t := p.Task
			if !p.Exited() && t.Runnable() && !t.HasCPU && m.Scheduler().OnRunqueue(t) {
				names = append(names, fmt.Sprintf("%s(id=%d,cpu=%d)", t.Name, t.ID, t.Processor))
			}
		}
		return fmt.Errorf("census: scheduler reports %d runnable, task table holds %d queued: %s",
			got, queued, strings.Join(names, " "))
	}
	// The tickless-idle liveness bar: an idle tick that had to rescue a
	// queued task means some enqueue-to-idle path failed to deliver a
	// kick — the machine survived only because the rescue safety net
	// caught it. That is a lost-kick bug wherever it happens.
	if n := m.Stats().IdleTickRescues; n != 0 {
		return fmt.Errorf("census: %d idle-tick rescue(s): a queued task sat on an idle CPU with no kick in flight", n)
	}
	return nil
}

// RegressionSeeds are scenario seeds pinned by TestFuzzRegressionScenarios:
// each one reproduces a composition that once found (or guards against) a
// real bug in the swap path, plus a spread of zero-injection baselines.
//
// Seed 586 (4P/latency, reg->mq swap plus affinity churn) starved a
// never-run probe for the whole 600-second horizon: mq recalculated
// counters whenever one private queue was exhausted, endlessly recharging
// the hogs sharing the probe's queue past its capped counter. Fixed by
// restoring the stock recalc condition (no quantum left anywhere) with a
// steal of the best remote task that still has quantum. The pre-fix
// semantics survive behind mq.Config.RecalcOnLocalExhaustion, and
// TestWatchdogCatchesSeed586PreFix replays this seed against them to
// prove the watchdog would have flagged the starvation at its first
// threshold crossing instead of end-of-run.
//
// Seeds 7700 and 31337 pin hotplug-storm compositions: offline→online
// cycles racing swaps and churn across the mid-size and NUMA specs.
//
// Seed 90875 (32P-NUMA/latency, heap→mq swap, churn that pinned a
// max-priority probe to a busy CPU, two hotplug cycles) was the armed
// watchdog's first live catch: with the probe exhausted and pinned, every
// other CPU's quantum expiry found nothing stealable and bumped the recalc
// epoch, and the running hogs — lazily resyncing their counters on each
// tick — absorbed counter/2+priority refills mid-quantum, postponing their
// own expiry ~10x past the nominal quantum. The whole 32-CPU machine
// collapsed to one or two schedule() calls per 100M cycles while the probe
// starved for 1.36G cycles. Fixed in task.TickDecrement: a running task's
// quantum is fixed at dispatch, remote recalcs no longer refill it.
//
// Seed -74 (4P/db, elsc, fork storm racing an offline) stranded a task the
// offlined CPU had claimed mid-dispatch: offlineDispatch released claimed
// tasks only when the policy said they were off the queue, but the global
// policies leave the run-list marker set on a running task (footnote 3),
// so the release was skipped — marked queued, in no list, invisible to
// every count. Caught by the post-fork census audit; fixed by mirroring
// the OfflineCPU preempt path's del-then-add release.
//
// Seed 90031 (4P/latency, heap, priority churn) pinned the watchdog's one
// false positive: the starvation threshold scales with the task's own
// quantum, so churning a long-queued hog from priority 20 down to 1 shrank
// its bar twenty-fold and the wait accrued under the old quantum crossed
// it instantly. SetPriority now restarts the starvation stopwatch of a
// queued task, the same way reconfiguring a real hung-task watchdog
// touches it.
//
// Seed 91091 (2P/latency, o1→heap, early churn to priority 1) pinned the
// companion calibration bug: the threshold scaled with the starved task's
// own quantum, but one turn of the rotation waits behind everyone else's
// timeslice — a priority-1 hog among twenty-five priority-20 hogs on two
// CPUs legitimately waits ~150 of its own 2-tick slices. The yardstick is
// now the largest runnable task's quantum.
//
// Seed 90622 (32P-NUMA/kbuild, elsc with churn) was the tickless rescue
// audit's first fuzz catch: a compile task descheduled-while-runnable by
// a wake preemption sat queued with quantum in hand while another CPU
// idled — the requeue path kicked no one, and with the idle CPU's tick
// chain parked nothing would ever notice it. 2.4's __schedule_tail runs
// reschedule_idle(prev) for exactly this; reschedule now kicks an idle
// allowed CPU for any still-selectable prev it did not re-choose.
//
// Seed 90140 (2P/kbuild, swap storm ending in heap) pinned the audit's
// decline case: a task with quantum sat on an idle CPU's own heap,
// buried under an exhausted top — the heap design's documented
// structural blind spot — while a pinned top kept the recalc from
// firing. schedule() refuses such a task by design, in both tickless
// modes, so a rescue is only charged when the reschedule actually
// dispatches something; a declined poll keeps the chain armed until the
// refusal's own resolution (here the recalc, whose epoch bump delivers
// the kick) and counts nothing.
//
// Seed 1197 (8P/latency, swap storm ending in heap, affinity churn)
// caught the pop-exposure variant of the same blind spot: a task pinned
// to one busy CPU topped the shared never-ran heap, hiding two dozen
// charged tasks from every other CPU while all other heap tops sat
// exhausted. When the pinned task's CPU finally dispatched it, the pop
// exposed the backlog to the whole machine — but the one kick those
// wake-ups had piggybacked on was long consumed, so the idle CPUs
// learned nothing and their polling ticks drained the queue one rescue
// at a time. reschedule now sweeps for stranded backlog (kickIdleBacklog)
// after any decision that dispatched a task or bumped the epoch — the
// two events that make previously undeliverable work deliverable.
//
// Seed 90093 (32P-NUMA/webserver, o1) caught a wake racing its home
// CPU's transition to idle: the owner was not isIdle() yet, so
// reschedule_idle kicked an idle CPU in a remote NUMA domain instead,
// whose steal rightly declined the one-deep queue — and once the owner's
// switch completed, nothing would ever look at its queue again. With
// per-CPU queues the owner is now served first: kicked when idle,
// flagged needResched when mid-transition to idle (the completion
// re-runs schedule(), exactly like a kick landing in flight); the
// global-queue path gained the equivalent almost-idle delivery before
// falling back to preemption.
//
// Seed -351 (4P/latency, heap, pin churn plus a hotplug cycle) caught
// the transition-race variant of the kickIdleBacklog sweep itself: a
// CPU dispatching a pinned task off a shared heap top exposed charged
// backlog just as another CPU was descheduling to idle — not isIdle()
// yet, so the sweep skipped it, and its switch completed into a parked
// tick with work visible on the queue. The sweep now treats a CPU
// mid-transition to idle as almost-idle and flags needResched, the same
// delivery rescheduleIdle uses for that window.
var RegressionSeeds = []int64{
	1, 2, 3, 5, 8, 13, 42, 586, 1001, 7700, 31337, 90210, 90875, -74, 90031, 91091, 90622, 90140, 1197, 90093, -351,
}
