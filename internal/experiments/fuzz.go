package experiments

// The whole-machine scenario fuzzer. A Scenario is a seeded composition
// of one registry workload with mid-run fault injections — hot policy
// swaps, affinity and priority churn, fork storms — run on a real
// simulated machine and audited against the task-conservation invariants
// at every injection point and at the end of the run:
//
//   - census: every live runnable task is tracked (on the run queue or
//     holding a CPU), and the scheduler's Runnable() agrees with a walk
//     of the task table — no task lost, none double-counted;
//   - swap conservation: a policy swap migrates exactly the queued plus
//     running population, every queued task is still queued afterwards,
//     and virtual time does not move;
//   - completion: the workload finishes before the horizon and every
//     storm-forked task exits;
//   - determinism: the same scenario produces byte-identical digests on
//     every run, and a scenario with zero injections reproduces the
//     plain (non-fuzzed) run's digest exactly — RunScenario checks that
//     one itself, against the baseline it measures anyway.
//
// Injection times are permille fractions of a baseline run of the same
// seed/spec/load/policy with no injections, so a swap at 500 lands
// mid-flight whether the workload runs for half a tick (wakestorm) or
// hundreds (latency). Scenarios are generated deterministically from a
// seed, so every failure the fuzzer finds is replayed by its seed alone;
// pinned seeds live in RegressionSeeds and the committed go-fuzz corpus.

import (
	"fmt"
	"strings"

	"elsc/internal/kernel"
	"elsc/internal/sim"
	"elsc/internal/task"
	"elsc/internal/workload"
)

// SwapPoint is one injected hot policy switch.
type SwapPoint struct {
	At uint64 // permille of the baseline run length
	To string // successor policy name
}

// ChurnPoint is one injected affinity/priority change on a random task.
type ChurnPoint struct {
	At     uint64
	Victim int    // index into the live task table, modulo its size
	Mask   uint64 // nonzero: pin to one CPU; zero: widen to all
	Prio   int    // nonzero: set static priority instead of affinity
}

// ForkPoint is one injected fork storm.
type ForkPoint struct {
	At   uint64
	N    int    // tasks spawned
	Work uint64 // compute cycles per task per step
}

// Scenario is one deterministic whole-machine fuzz case.
type Scenario struct {
	Seed   int64
	Spec   string // machine spec label
	Load   string // registry workload name
	Policy string // starting policy
	Swaps  []SwapPoint
	Churns []ChurnPoint
	Forks  []ForkPoint
}

// String renders the scenario as a one-line trace for failure reports.
func (s Scenario) String() string {
	out := fmt.Sprintf("seed=%d %s/%s start=%s", s.Seed, s.Spec, s.Load, s.Policy)
	for _, sw := range s.Swaps {
		out += fmt.Sprintf(" swap@%d‰->%s", sw.At, sw.To)
	}
	for _, ch := range s.Churns {
		out += fmt.Sprintf(" churn@%d‰(mask=%#x,prio=%d)", ch.At, ch.Mask, ch.Prio)
	}
	for _, fk := range s.Forks {
		out += fmt.Sprintf(" fork@%d‰(n=%d)", fk.At, fk.N)
	}
	return out
}

func (s Scenario) injections() int {
	return len(s.Swaps) + len(s.Churns) + len(s.Forks)
}

// fuzzSpecs are the machine shapes scenarios draw from: a paper-era SMP,
// the mid-size flat machine, and the NUMA spec — enough to cover the
// global-lock, per-CPU-lock, and domain-aware code paths.
var fuzzSpecs = []string{"2P", "4P", "8P", "32P-NUMA"}

// GenScenario derives a scenario deterministically from a seed.
func GenScenario(seed int64) Scenario {
	rng := sim.NewRNG(seed)
	loads := workload.Names()
	s := Scenario{
		Seed:   seed,
		Spec:   fuzzSpecs[rng.Intn(len(fuzzSpecs))],
		Load:   loads[rng.Intn(len(loads))],
		Policy: Policies[rng.Intn(len(Policies))],
	}
	// Injections land between 5% and 85% of the baseline run, the busy
	// stretch on every workload shape.
	at := func() uint64 { return rng.Range(50, 850) }
	for i, n := 0, rng.Intn(4); i < n; i++ {
		s.Swaps = append(s.Swaps, SwapPoint{
			At: at(),
			To: Policies[rng.Intn(len(Policies))],
		})
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		ch := ChurnPoint{At: at(), Victim: rng.Intn(64)}
		switch rng.Intn(3) {
		case 0: // pin to one CPU (picked at run time)
			ch.Mask = 1
		case 1: // widen back to all
			ch.Mask = 0
		case 2:
			ch.Prio = 1 + rng.Intn(task.MaxPriority)
		}
		s.Churns = append(s.Churns, ch)
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Forks = append(s.Forks, ForkPoint{
			At:   at(),
			N:    1 + rng.Intn(8),
			Work: 50_000 + rng.Uint64n(400_000),
		})
	}
	return s
}

// FuzzReport is what a scenario run yields when every invariant held.
type FuzzReport struct {
	Scenario Scenario
	Result   workload.Result
	Digest   string
	Migrated int // tasks handed over across all swaps
	Forked   int
}

// fuzzScale is the workload sizing every scenario runs at: the quick
// registry shapes, a long horizon, and the scenario's own seed.
func fuzzScale(seed int64) Scale {
	return Scale{Messages: 2, Seed: seed, HorizonSeconds: 600, Quick: true}
}

func fuzzDigest(res workload.Result, m *kernel.Machine) string {
	return fmt.Sprintf("%+v\n%s", res, m.Stats().Registry().Render())
}

// RunScenario executes one scenario and audits it. The returned error
// carries the scenario trace and the first violated invariant.
func RunScenario(s Scenario) (FuzzReport, error) {
	rep := FuzzReport{Scenario: s}
	spec := SpecByLabel(s.Spec)
	sc := fuzzScale(s.Seed)

	// Baseline: the identical machine with no injections. It provides
	// the injection timebase (virtual cycles the undisturbed run takes)
	// and the reference digest for zero-injection scenarios.
	bm := NewMachine(spec, s.Policy, sc)
	bres := workload.Build(s.Load, bm, WorkloadParams(spec, sc)).Run()
	if !bres.Complete {
		return rep, fmt.Errorf("%s: baseline run incomplete", s)
	}
	span := uint64(bm.Now())

	m := NewMachine(spec, s.Policy, sc)
	inst := workload.Build(s.Load, m, WorkloadParams(spec, sc))

	var violation error
	fail := func(format string, args ...any) {
		if violation == nil {
			violation = fmt.Errorf("%s: %s", s, fmt.Sprintf(format, args...))
		}
	}
	rng := sim.NewRNG(s.Seed ^ 0x5eed)
	at := func(permille uint64) sim.Cycles {
		c := span * permille / 1000
		if c == 0 {
			c = 1
		}
		return c
	}

	for _, sw := range s.Swaps {
		to := sw.To
		m.Engine().After(at(sw.At), "fuzz-swap", func(now sim.Time) {
			if violation != nil {
				return
			}
			if err := auditCensus(m); err != nil {
				fail("pre-swap(%s) %v", to, err)
				return
			}
			queued := queuedTasks(m)
			running := runningCount(m)
			migrated := m.SwitchPolicy(Factory(to))
			rep.Migrated += migrated
			if migrated != len(queued)+running {
				fail("swap to %s migrated %d tasks, machine held %d queued + %d running",
					to, migrated, len(queued), running)
				return
			}
			if m.Now() != now {
				fail("swap to %s moved the clock from %d to %d", to, now, m.Now())
				return
			}
			for _, t := range queued {
				if !m.Scheduler().OnRunqueue(t) {
					fail("swap to %s dropped queued task %s", to, t.Name)
					return
				}
			}
			if err := auditCensus(m); err != nil {
				fail("post-swap(%s) %v", to, err)
			}
		})
	}
	for _, ch := range s.Churns {
		ch := ch
		m.Engine().After(at(ch.At), "fuzz-churn", func(now sim.Time) {
			if violation != nil {
				return
			}
			procs := m.Procs()
			p := procs[ch.Victim%len(procs)]
			if p.Exited() {
				return
			}
			switch {
			case ch.Prio > 0 && !p.Task.RealTime():
				m.SetPriority(p, ch.Prio)
			case ch.Mask != 0:
				m.SetAffinity(p, 1<<uint(rng.Intn(spec.CPUs)))
			default:
				m.SetAffinity(p, 0)
			}
			if err := auditCensus(m); err != nil {
				fail("post-churn %v", err)
			}
		})
	}
	for _, fk := range s.Forks {
		fk := fk
		m.Engine().After(at(fk.At), "fuzz-fork", func(now sim.Time) {
			if violation != nil {
				return
			}
			for i := 0; i < fk.N; i++ {
				steps := 0
				m.Spawn(fmt.Sprintf("storm%d", rep.Forked), nil,
					kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
						steps++
						if steps > 4 {
							return kernel.Exit{}
						}
						return kernel.Compute{Cycles: fk.Work}
					}))
				rep.Forked++
			}
			if err := auditCensus(m); err != nil {
				fail("post-fork %v", err)
			}
		})
	}

	res := inst.Run()
	if violation != nil {
		return rep, violation
	}
	if err := auditCensus(m); err != nil {
		return rep, fmt.Errorf("%s: end-of-run %v", s, err)
	}
	if !res.Complete {
		return rep, fmt.Errorf("%s: workload incomplete after %.0fs virtual", s, res.Seconds)
	}
	if rep.Forked > 0 {
		// Let the fork-storm stragglers finish; they are pure compute
		// and must all exit before the horizon.
		m.Run(func() bool { return stormsLeft(m) == 0 })
		if left := stormsLeft(m); left > 0 {
			return rep, fmt.Errorf("%s: %d forked tasks never exited", s, left)
		}
	}
	rep.Result = res
	rep.Digest = fuzzDigest(res, m)
	if s.injections() == 0 && rep.Digest != fuzzDigest(bres, bm) {
		return rep, fmt.Errorf(
			"%s: zero-injection scenario diverged from the plain run:\n--- fuzz\n%s\n--- plain\n%s",
			s, rep.Digest, fuzzDigest(bres, bm))
	}
	return rep, nil
}

// stormsLeft counts fork-storm tasks that have not exited yet.
func stormsLeft(m *kernel.Machine) int {
	n := 0
	for _, p := range m.Procs() {
		if !p.Exited() && strings.HasPrefix(p.Task.Name, "storm") {
			n++
		}
	}
	return n
}

// queuedTasks returns the live tasks currently queued (tracked by the
// scheduler and not holding a CPU).
func queuedTasks(m *kernel.Machine) []*task.Task {
	var out []*task.Task
	for _, p := range m.Procs() {
		if p.Exited() {
			continue
		}
		t := p.Task
		if t.Runnable() && !t.HasCPU && m.Scheduler().OnRunqueue(t) {
			out = append(out, t)
		}
	}
	return out
}

// runningCount returns the number of live tasks holding (or claimed for)
// a CPU.
func runningCount(m *kernel.Machine) int {
	n := 0
	for _, p := range m.Procs() {
		if !p.Exited() && p.Task.HasCPU {
			n++
		}
	}
	return n
}

// auditCensus walks the task table and checks task conservation: every
// live runnable task is either queued or running (nothing vanished), and
// the scheduler's Runnable() count agrees with the walk (nothing is
// double-tracked).
func auditCensus(m *kernel.Machine) error {
	queued := 0
	for _, p := range m.Procs() {
		if p.Exited() {
			continue
		}
		t := p.Task
		if !t.Runnable() {
			continue
		}
		tracked := m.Scheduler().OnRunqueue(t)
		switch {
		case t.HasCPU:
			// Running; some policies also keep it listed. Fine either way.
		case tracked:
			queued++
		default:
			return fmt.Errorf("census: runnable task %s (id %d) neither queued nor running",
				t.Name, t.ID)
		}
	}
	if got := m.Scheduler().Runnable(); got != queued {
		return fmt.Errorf("census: scheduler reports %d runnable, task table holds %d queued",
			got, queued)
	}
	return nil
}

// RegressionSeeds are scenario seeds pinned by TestFuzzRegressionScenarios:
// each one reproduces a composition that once found (or guards against) a
// real bug in the swap path, plus a spread of zero-injection baselines.
//
// Seed 586 (4P/latency, reg->mq swap plus affinity churn) starved a
// never-run probe for the whole 600-second horizon: mq recalculated
// counters whenever one private queue was exhausted, endlessly recharging
// the hogs sharing the probe's queue past its capped counter. Fixed by
// restoring the stock recalc condition (no quantum left anywhere) with a
// steal of the best remote task that still has quantum.
var RegressionSeeds = []int64{
	1, 2, 3, 5, 8, 13, 42, 586, 1001, 90210,
}
