package experiments

import (
	"fmt"
	"strings"
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/mq"
	"elsc/internal/workload"
)

// FuzzScenario is the whole-machine scenario fuzzer: each seed derives a
// deterministic composition of workload, machine spec, starting policy,
// and mid-run injections (hot policy swaps, affinity/priority churn,
// fork storms), runs it, and audits task conservation throughout. Run
// with `go test -fuzz=FuzzScenario ./internal/experiments/` to hunt;
// any failing seed is a complete reproduction by itself.
func FuzzScenario(f *testing.F) {
	for _, seed := range RegressionSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		s := GenScenario(seed)
		if _, err := RunScenario(s); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFuzzRegressionScenarios replays every pinned seed as an ordinary
// test, so the regression corpus runs on every `go test` without the
// fuzz engine.
func TestFuzzRegressionScenarios(t *testing.T) {
	for _, seed := range RegressionSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			if _, err := RunScenario(GenScenario(seed)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFuzzScenarioDeterministic runs one injection-heavy scenario twice
// and requires byte-identical digests: swaps, churn, and fork storms are
// all pure virtual-time behavior, so a digest divergence means hidden
// host state leaked into the simulation.
func TestFuzzScenarioDeterministic(t *testing.T) {
	// Find a seed whose scenario actually swaps (the generator leaves
	// some scenarios injection-free on purpose).
	var s Scenario
	for seed := int64(1); ; seed++ {
		s = GenScenario(seed)
		if len(s.Swaps) > 0 && len(s.Forks) > 0 {
			break
		}
	}
	a, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("scenario %s digests diverged between identical runs:\n--- run 1\n%s\n--- run 2\n%s",
			s, a.Digest, b.Digest)
	}
	if a.Migrated == 0 {
		t.Fatalf("scenario %s swapped policies but migrated no tasks", s)
	}
}

// TestFuzzZeroInjectionMatchesPlainDigest is the harness-honesty check:
// a scenario with no injections must reproduce the plain (non-fuzzed)
// run byte for byte — same result struct, same stats registry, same
// event count. If the fuzz harness perturbs the machine at all (an extra
// engine event, a stray RNG draw), this catches it. The reference
// machine carries the same watchdog arming as every fuzz machine — the
// watchdog sweeps are part of the run's event stream, but a clean run's
// violation counters must all render as zero.
func TestFuzzZeroInjectionMatchesPlainDigest(t *testing.T) {
	const seed = 7
	for _, policy := range Policies {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			s := Scenario{Seed: seed, Spec: "2P", Load: workload.Volano, Policy: policy}
			rep, err := RunScenario(s)
			if err != nil {
				t.Fatal(err)
			}
			spec := SpecByLabel(s.Spec)
			sc := fuzzScale(seed)
			m := NewWatchedMachineWith(spec, Factory(policy), sc, FuzzWatchdogConfig())
			res := workload.Build(s.Load, m, WorkloadParams(spec, sc)).Run()
			plain := fmt.Sprintf("%+v\n%s", res, m.Stats().Registry().Render())
			if rep.Digest != plain {
				t.Fatalf("zero-injection scenario diverged from the plain run:\n--- fuzz\n%s\n--- plain\n%s",
					rep.Digest, plain)
			}
			for _, line := range []string{"watchdog_starvations 0", "watchdog_lost_wakeups 0", "watchdog_cpu_stalls 0"} {
				if !strings.Contains(rep.Digest, line) {
					t.Fatalf("clean run's digest missing %q:\n%s", line, rep.Digest)
				}
			}
		})
	}
}

// seed586Scenario is the composition GenScenario(586) produced when the
// fuzzer caught the mq cross-queue recalc starvation, frozen as a
// literal: the generator draws policies by Policies index, so growing
// the registry (cfs was the sixth) re-rolls every seed — the regression
// must not evaporate because the draw moved.
var seed586Scenario = Scenario{
	Seed:   586,
	Spec:   "4P",
	Load:   "latency",
	Policy: Reg,
	Swaps:  []SwapPoint{{At: 288, To: MQ}},
	Churns: []ChurnPoint{
		{At: 486, Victim: 12, Mask: 0x1},
		{At: 330, Victim: 62, Mask: 0x0},
		{At: 668, Victim: 22, Mask: 0x1},
	},
	Hotplugs: []HotplugPoint{{At: 195, BackAt: 375, CPU: 19}},
}

// TestWatchdogCatchesSeed586PreFix replays the pinned seed-586 scenario
// against mq's pre-fix recalc semantics (recalculate whenever one
// private queue is exhausted — the bug the fuzzer originally caught as
// an incomplete run after the full 600-second horizon) and requires the
// watchdog to flag the starvation at its first threshold crossing, a
// small fraction of the horizon into the run.
func TestWatchdogCatchesSeed586PreFix(t *testing.T) {
	s := seed586Scenario
	var first *kernel.WatchdogViolation
	_, err := RunScenarioOpts(s, ScenarioOpts{
		FactoryFor: func(name string) kernel.SchedulerFactory {
			if name == MQ {
				return func(env *sched.Env) sched.Scheduler {
					return mq.NewWithConfig(env, mq.Config{RecalcOnLocalExhaustion: true})
				}
			}
			return Factory(name)
		},
		OnViolation: func(v kernel.WatchdogViolation) {
			if first == nil {
				first = &v
			}
		},
	})
	if err == nil {
		t.Fatal("pre-fix mq ran seed 586 clean; the regression replay lost its bug")
	}
	if first == nil || first.Kind != kernel.WatchdogStarvation {
		t.Fatalf("expected a starvation violation, got error %v (first violation %v)", err, first)
	}
	horizon := fuzzScale(586).HorizonSeconds * kernel.DefaultHz
	if uint64(first.Now) > horizon/4 {
		t.Fatalf("watchdog flagged the starvation only at t=%d, past a quarter of the %d-cycle horizon",
			first.Now, horizon)
	}
	if !strings.Contains(err.Error(), "starvation") {
		t.Fatalf("scenario error does not carry the watchdog violation: %v", err)
	}
}

// TestFuzzHotplugSeedsExerciseStorms pins that the hotplug-bearing
// regression seeds actually perform offline→online cycles (a generator
// change that quietly stops drawing hotplugs would otherwise leave the
// storm path untested).
func TestFuzzHotplugSeedsExerciseStorms(t *testing.T) {
	hot := 0
	for _, seed := range RegressionSeeds {
		s := GenScenario(seed)
		if len(s.Hotplugs) == 0 {
			continue
		}
		rep, err := RunScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Offlined > 0 {
			hot++
			if rep.Onlined == 0 && uint64(rep.Offlined) != 0 {
				// An offline with no matching online means BackAt landed
				// past workload completion — legal, but at least one
				// pinned seed must complete a full cycle.
				continue
			}
		}
	}
	if hot < 2 {
		t.Fatalf("only %d regression seeds exercised hotplug storms; pin more seeds", hot)
	}
}

// TestSwitchPolicyLiveMachine drives a kernel-level swap chain through
// every registered policy while a workload runs: reg -> elsc -> heap ->
// mq -> o1 -> reg, five ticks apart. The workload must still complete,
// every swap must migrate coherently (RunScenario's own audits), and the
// swap counter must reach the stats registry.
func TestSwitchPolicyLiveMachine(t *testing.T) {
	s := Scenario{
		Seed: 11, Spec: "4P", Load: workload.Volano, Policy: Reg,
		Swaps: []SwapPoint{
			{At: 100, To: ELSC},
			{At: 250, To: Heap},
			{At: 400, To: MQ},
			{At: 550, To: O1},
			{At: 700, To: Reg},
		},
	}
	rep, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrated == 0 {
		t.Fatal("five swaps migrated no tasks")
	}
	if !strings.Contains(rep.Digest, "policy_switches") {
		t.Fatal("policy_switches missing from the stats registry")
	}
}
