package experiments

import (
	"fmt"
	"strings"
	"testing"

	"elsc/internal/workload"
)

// FuzzScenario is the whole-machine scenario fuzzer: each seed derives a
// deterministic composition of workload, machine spec, starting policy,
// and mid-run injections (hot policy swaps, affinity/priority churn,
// fork storms), runs it, and audits task conservation throughout. Run
// with `go test -fuzz=FuzzScenario ./internal/experiments/` to hunt;
// any failing seed is a complete reproduction by itself.
func FuzzScenario(f *testing.F) {
	for _, seed := range RegressionSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		s := GenScenario(seed)
		if _, err := RunScenario(s); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFuzzRegressionScenarios replays every pinned seed as an ordinary
// test, so the regression corpus runs on every `go test` without the
// fuzz engine.
func TestFuzzRegressionScenarios(t *testing.T) {
	for _, seed := range RegressionSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			if _, err := RunScenario(GenScenario(seed)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFuzzScenarioDeterministic runs one injection-heavy scenario twice
// and requires byte-identical digests: swaps, churn, and fork storms are
// all pure virtual-time behavior, so a digest divergence means hidden
// host state leaked into the simulation.
func TestFuzzScenarioDeterministic(t *testing.T) {
	// Find a seed whose scenario actually swaps (the generator leaves
	// some scenarios injection-free on purpose).
	var s Scenario
	for seed := int64(1); ; seed++ {
		s = GenScenario(seed)
		if len(s.Swaps) > 0 && len(s.Forks) > 0 {
			break
		}
	}
	a, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("scenario %s digests diverged between identical runs:\n--- run 1\n%s\n--- run 2\n%s",
			s, a.Digest, b.Digest)
	}
	if a.Migrated == 0 {
		t.Fatalf("scenario %s swapped policies but migrated no tasks", s)
	}
}

// TestFuzzZeroInjectionMatchesPlainDigest is the harness-honesty check:
// a scenario with no injections must reproduce the plain (non-fuzzed)
// run byte for byte — same result struct, same stats registry, same
// event count. If the fuzz harness perturbs the machine at all (an extra
// engine event, a stray RNG draw), this catches it.
func TestFuzzZeroInjectionMatchesPlainDigest(t *testing.T) {
	const seed = 7
	for _, policy := range Policies {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			s := Scenario{Seed: seed, Spec: "2P", Load: workload.Volano, Policy: policy}
			rep, err := RunScenario(s)
			if err != nil {
				t.Fatal(err)
			}
			spec := SpecByLabel(s.Spec)
			sc := fuzzScale(seed)
			m := NewMachine(spec, policy, sc)
			res := workload.Build(s.Load, m, WorkloadParams(spec, sc)).Run()
			plain := fmt.Sprintf("%+v\n%s", res, m.Stats().Registry().Render())
			if rep.Digest != plain {
				t.Fatalf("zero-injection scenario diverged from the plain run:\n--- fuzz\n%s\n--- plain\n%s",
					rep.Digest, plain)
			}
		})
	}
}

// TestSwitchPolicyLiveMachine drives a kernel-level swap chain through
// every registered policy while a workload runs: reg -> elsc -> heap ->
// mq -> o1 -> reg, five ticks apart. The workload must still complete,
// every swap must migrate coherently (RunScenario's own audits), and the
// swap counter must reach the stats registry.
func TestSwitchPolicyLiveMachine(t *testing.T) {
	s := Scenario{
		Seed: 11, Spec: "4P", Load: workload.Volano, Policy: Reg,
		Swaps: []SwapPoint{
			{At: 100, To: ELSC},
			{At: 250, To: Heap},
			{At: 400, To: MQ},
			{At: 550, To: O1},
			{At: 700, To: Reg},
		},
	}
	rep, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrated == 0 {
		t.Fatal("five swaps migrated no tasks")
	}
	if !strings.Contains(rep.Digest, "policy_switches") {
		t.Fatal("policy_switches missing from the stats registry")
	}
}
