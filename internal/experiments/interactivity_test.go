package experiments

import (
	"strings"
	"testing"

	"elsc/internal/workload"
)

// TestInteractivityFixesLatencyCollapse is the acceptance regression for
// the interactivity work: on the 32P-NUMA latency matrix cell (quick
// scale, fixed seed), o1's wakeup-to-run p99 with the machinery on must
// improve at least 5x over the InteractivityOff ablation and land within
// 3x of reg's p99. This pins the ROADMAP's "latency column collapses
// under o1" gap shut: the probe that used to wait out a hog quantum now
// preempts via its sleep_avg bonus.
func TestInteractivityFixesLatencyCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("three full 32P runs")
	}
	spec := SpecByLabel("32P-NUMA")
	sc := Scale{Messages: 10, Seed: 42, HorizonSeconds: 600, Quick: true}

	on := RunO1Interactivity(spec, workload.Latency, false, sc)
	off := RunO1Interactivity(spec, workload.Latency, true, sc)
	reg := RunWorkloadCell(spec, Reg, workload.Latency, sc)
	for _, r := range []WorkloadRun{on, off, reg} {
		if !r.Result.Complete || r.Result.Ops == 0 {
			t.Fatalf("%s run incomplete", r.Key())
		}
	}
	onP99, _ := on.Result.Extra("p99_us")
	offP99, _ := off.Result.Extra("p99_us")
	regP99, _ := reg.Result.Extra("p99_us")
	if onP99 <= 0 || offP99 <= 0 || regP99 <= 0 {
		t.Fatalf("degenerate p99s: on=%v off=%v reg=%v", onP99, offP99, regP99)
	}
	if offP99 < 5*onP99 {
		t.Fatalf("interactivity on p99 %.1fus not >=5x better than off %.1fus (ratio %.1f)",
			onP99, offP99, offP99/onP99)
	}
	if onP99 > 3*regP99 {
		t.Fatalf("o1 p99 %.1fus not within 3x of reg's %.1fus", onP99, regP99)
	}
	// The mechanism must be visible, not incidental: the interactive arm
	// granted active-array requeues or higher-bonus enqueues.
	if !on.HasBonus || len(on.BonusLevels) == 0 {
		t.Fatal("o1 run did not expose its bonus counters")
	}
	var plus uint64
	for b, n := range on.BonusLevels {
		if b > len(on.BonusLevels)/2 {
			plus += n
		}
	}
	if plus == 0 {
		t.Fatal("no positive-bonus enqueues: the estimator never classified the probes")
	}
}

// TestAblateInteractivityRenders keeps the ablation table wired: two
// arms, the estimator columns present, and the interactive arm strictly
// better on the latency tail.
func TestAblateInteractivityRenders(t *testing.T) {
	tab := AblateInteractivity(SpecByLabel("32P-NUMA"),
		Scale{Messages: 10, Seed: 42, HorizonSeconds: 600, Quick: true})
	out := tab.Render()
	if tab.NumRows() != 2 {
		t.Fatalf("ablation rows = %d, want 2", tab.NumRows())
	}
	for _, want := range []string{"interactive", "interactivity-off", "lat p99 us", "wake-idle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation table missing %q:\n%s", want, out)
		}
	}
}
