package experiments

import (
	"strings"
	"testing"

	"elsc/internal/sched/o1"
)

// numaTinyScale keeps the 32-processor table tests fast.
func numaTinyScale() Scale {
	return Scale{Messages: 4, Seed: 42, HorizonSeconds: 600}
}

func TestNumaTableListsAllPolicies(t *testing.T) {
	tab := Numa(SpecByLabel("32P-NUMA"), 2, numaTinyScale())
	out := tab.Render()
	for _, want := range Policies {
		if !strings.Contains(out, want) {
			t.Fatalf("numa table missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != len(Policies) {
		t.Fatalf("numa table rows = %d, want %d", tab.NumRows(), len(Policies))
	}
	// The o1 row must carry real steal counters, not the "-" placeholder
	// the steal-blind policies get.
	for _, row := range tab.Rows() {
		hasCounters := row[len(row)-1] != "-" && row[len(row)-2] != "-"
		if (row[0] == O1) != hasCounters {
			t.Fatalf("steal counters misplaced in row %v", row)
		}
	}
}

// TestNumaTableDeterminism is the regression for the numa experiment: the
// same scale must render byte-identical tables, like every other figure.
func TestNumaTableDeterminism(t *testing.T) {
	spec := SpecByLabel("32P-NUMA")
	a := Numa(spec, 2, numaTinyScale()).Render()
	b := Numa(spec, 2, numaTinyScale()).Render()
	if a != b {
		t.Fatalf("numa table not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestAblateTopologyRenders(t *testing.T) {
	tab := AblateTopology(SpecByLabel("32P-NUMA"), 2, numaTinyScale())
	out := tab.Render()
	if tab.NumRows() != 2 {
		t.Fatalf("topology ablation rows = %d, want 2", tab.NumRows())
	}
	for _, want := range []string{"domain-aware", "topology-blind"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation table missing %q:\n%s", want, out)
		}
	}
}

// TestDomainAwareO1BeatsBlind pins the headline claim of the NUMA work:
// on the 32P-NUMA spec at marginal load (steal pressure), domain-aware o1
// makes an order fewer cross-domain migrations and clears 10% more
// VolanoMark throughput than the same scheduler run topology-blind. The
// simulator is deterministic, so the margin cannot flake.
func TestDomainAwareO1BeatsBlind(t *testing.T) {
	if testing.Short() {
		t.Skip("two full 32P runs")
	}
	spec := SpecByLabel("32P-NUMA")
	sc := Scale{Messages: 30, Seed: 42, HorizonSeconds: 600}
	const rooms = 3
	aware := runO1Variant(spec, o1.Config{}, rooms, sc)
	blind := runO1Variant(spec, o1.Config{TopologyBlind: true}, rooms, sc)

	if aware.Stats.CrossDomainMigrations*2 >= blind.Stats.CrossDomainMigrations {
		t.Fatalf("domain awareness did not curb cross-domain migrations: aware %d vs blind %d",
			aware.Stats.CrossDomainMigrations, blind.Stats.CrossDomainMigrations)
	}
	if aware.Result.Throughput < 1.10*blind.Result.Throughput {
		t.Fatalf("domain-aware throughput %.0f not >=10%% above blind %.0f (ratio %.3f)",
			aware.Result.Throughput, blind.Result.Throughput,
			aware.Result.Throughput/blind.Result.Throughput)
	}
	if aware.Stats.RemoteCycles >= blind.Stats.RemoteCycles {
		t.Fatalf("aware o1 burned more remote cycles (%d) than blind (%d)",
			aware.Stats.RemoteCycles, blind.Stats.RemoteCycles)
	}
}
