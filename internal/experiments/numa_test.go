package experiments

import (
	"strings"
	"testing"

	"elsc/internal/sched/o1"
)

// numaTinyScale keeps the 32-processor table tests fast.
func numaTinyScale() Scale {
	return Scale{Messages: 4, Seed: 42, HorizonSeconds: 600}
}

func TestNumaTableListsAllPolicies(t *testing.T) {
	tab := Numa(SpecByLabel("32P-NUMA"), 2, numaTinyScale())
	out := tab.Render()
	for _, want := range Policies {
		if !strings.Contains(out, want) {
			t.Fatalf("numa table missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != len(Policies) {
		t.Fatalf("numa table rows = %d, want %d", tab.NumRows(), len(Policies))
	}
	// The steal-aware policies (o1 and cfs carry domain-split balancers)
	// must report real steal counters; the steal-blind rows get the "-"
	// placeholder.
	stealAware := map[string]bool{O1: true, CFS: true}
	for _, row := range tab.Rows() {
		hasCounters := row[len(row)-1] != "-" && row[len(row)-2] != "-"
		if stealAware[row[0]] != hasCounters {
			t.Fatalf("steal counters misplaced in row %v", row)
		}
	}
}

// TestNumaTableDeterminism is the regression for the numa experiment: the
// same scale must render byte-identical tables, like every other figure.
func TestNumaTableDeterminism(t *testing.T) {
	spec := SpecByLabel("32P-NUMA")
	a := Numa(spec, 2, numaTinyScale()).Render()
	b := Numa(spec, 2, numaTinyScale()).Render()
	if a != b {
		t.Fatalf("numa table not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestAblateTopologyRenders(t *testing.T) {
	tab := AblateTopology(SpecByLabel("32P-NUMA"), 2, numaTinyScale())
	out := tab.Render()
	if tab.NumRows() != 2 {
		t.Fatalf("topology ablation rows = %d, want 2", tab.NumRows())
	}
	for _, want := range []string{"domain-aware", "topology-blind"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation table missing %q:\n%s", want, out)
		}
	}
}

// TestDomainAwareO1BeatsBlind pins the headline claim of the NUMA work:
// on the 32P-NUMA spec at marginal load (steal pressure), domain-aware o1
// makes an order fewer cross-domain migrations and clears more VolanoMark
// throughput than the same scheduler run topology-blind. Each run is
// deterministic, but a single seed's throughput margin is chaotic — any
// cycle-level change to the wake path reshuffles the interleaving — so
// the throughput claim aggregates three seeds (aware wins each, and by
// >=5% in total) while the migration claim, which is robust at ~10x on
// every seed, stays per-seed.
func TestDomainAwareO1BeatsBlind(t *testing.T) {
	if testing.Short() {
		t.Skip("six full 32P runs")
	}
	spec := SpecByLabel("32P-NUMA")
	const rooms = 3
	var awareSum, blindSum float64
	for _, seed := range []int64{42, 7, 101} {
		sc := Scale{Messages: 30, Seed: seed, HorizonSeconds: 600}
		aware := runO1Variant(spec, o1.Config{}, rooms, sc)
		blind := runO1Variant(spec, o1.Config{TopologyBlind: true}, rooms, sc)
		if aware.Stats.CrossDomainMigrations*2 >= blind.Stats.CrossDomainMigrations {
			t.Fatalf("seed %d: domain awareness did not curb cross-domain migrations: aware %d vs blind %d",
				seed, aware.Stats.CrossDomainMigrations, blind.Stats.CrossDomainMigrations)
		}
		if aware.Result.Throughput <= blind.Result.Throughput {
			t.Fatalf("seed %d: domain-aware throughput %.0f did not beat blind %.0f",
				seed, aware.Result.Throughput, blind.Result.Throughput)
		}
		if aware.Stats.RemoteCycles >= blind.Stats.RemoteCycles {
			t.Fatalf("seed %d: aware o1 burned more remote cycles (%d) than blind (%d)",
				seed, aware.Stats.RemoteCycles, blind.Stats.RemoteCycles)
		}
		awareSum += aware.Result.Throughput
		blindSum += blind.Result.Throughput
	}
	if awareSum < 1.05*blindSum {
		t.Fatalf("aggregate domain-aware throughput %.0f not >=5%% above blind %.0f (ratio %.3f)",
			awareSum, blindSum, awareSum/blindSum)
	}
}
