package experiments

import (
	"fmt"

	"elsc/internal/kernel"
	"elsc/internal/stats"
	"elsc/internal/workload"
	"elsc/internal/workload/kbuild"
	"elsc/internal/workload/latency"
	"elsc/internal/workload/webserver"
)

// Table2 reproduces the paper's Table 2: average time to complete a full
// kernel compile under both schedulers, on UP and 2P machines. The build
// is the registry's kbuild workload at the scale's size; cmd/kcompile
// drives the kbuild package directly for bespoke tree sizes.
func Table2(sc Scale) *stats.Table {
	t := stats.NewTable("Table 2: time to complete kernel compilation (make -j4)",
		"Scheduler", "Time", "Seconds")
	for _, spec := range []MachineSpec{SpecByLabel("UP"), SpecByLabel("2P")} {
		for _, policy := range []string{Reg, ELSC} {
			name := map[string]string{Reg: "Current", ELSC: "ELSC"}[policy]
			r := RunWorkloadCell(spec, policy, workload.KBuild, sc)
			t.AddRow(fmt.Sprintf("%s - %s", name, spec.Label),
				stats.FormatDuration(r.Result.Cycles, kernel.DefaultHz), r.Result.Seconds)
		}
	}
	return t
}

// Fig2 reproduces Figure 2: counter-recalculation loop entries per
// VolanoMark run (log-scale contrast), per machine configuration.
func Fig2(runs []VolanoRun, rooms int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 2: recalculate-loop entries (VolanoMark, %d rooms)", rooms),
		"Config", "elsc", "reg", "reg/elsc")
	for _, spec := range PaperSpecs {
		e := Find(runs, ELSC, spec.Label, rooms).Stats.Recalcs
		r := Find(runs, Reg, spec.Label, rooms).Stats.Recalcs
		ratio := "inf"
		if e > 0 {
			ratio = fmt.Sprintf("%.1f", float64(r)/float64(e))
		}
		t.AddRow(spec.Label, e, r, ratio)
	}
	return t
}

// Fig3 reproduces Figure 3: message throughput versus room count. The
// paper splits it into a UP/1P panel and a 4P panel; this renders all four
// configurations as series.
func Fig3(runs []VolanoRun, rooms []int) *stats.Table {
	t := stats.NewTable("Figure 3: VolanoMark throughput (messages/second)",
		"Rooms", "elsc-up", "reg-up", "elsc-1p", "reg-1p", "elsc-2p", "reg-2p", "elsc-4p", "reg-4p")
	for _, r := range rooms {
		t.AddRow(r,
			int(Find(runs, ELSC, "UP", r).Result.Throughput),
			int(Find(runs, Reg, "UP", r).Result.Throughput),
			int(Find(runs, ELSC, "1P", r).Result.Throughput),
			int(Find(runs, Reg, "1P", r).Result.Throughput),
			int(Find(runs, ELSC, "2P", r).Result.Throughput),
			int(Find(runs, Reg, "2P", r).Result.Throughput),
			int(Find(runs, ELSC, "4P", r).Result.Throughput),
			int(Find(runs, Reg, "4P", r).Result.Throughput),
		)
	}
	return t
}

// Fig4 reproduces Figure 4: the scaling factor, throughput at the largest
// room count divided by throughput at the smallest.
func Fig4(runs []VolanoRun, loRooms, hiRooms int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 4: scaling factor (%d-room / %d-room throughput)", hiRooms, loRooms),
		"Config", "elsc", "reg")
	for _, spec := range PaperSpecs {
		e := Find(runs, ELSC, spec.Label, hiRooms).Result.Throughput /
			Find(runs, ELSC, spec.Label, loRooms).Result.Throughput
		r := Find(runs, Reg, spec.Label, hiRooms).Result.Throughput /
			Find(runs, Reg, spec.Label, loRooms).Result.Throughput
		t.AddRow(spec.Label, e, r)
	}
	return t
}

// Fig5 reproduces Figure 5: cycles per schedule() entry and tasks examined
// per entry.
func Fig5(runs []VolanoRun, rooms int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 5: schedule() cost (VolanoMark, %d rooms)", rooms),
		"Config", "elsc cyc/call", "reg cyc/call", "elsc examined", "reg examined")
	for _, spec := range PaperSpecs {
		e := Find(runs, ELSC, spec.Label, rooms).Stats
		r := Find(runs, Reg, spec.Label, rooms).Stats
		t.AddRow(spec.Label,
			int(e.CyclesPerSchedule()), int(r.CyclesPerSchedule()),
			e.ExaminedPerSchedule(), r.ExaminedPerSchedule())
	}
	return t
}

// Fig6 reproduces Figure 6: total calls to schedule() (thousands) and
// tasks scheduled on a processor other than their last, both for the
// 10-room runs the paper uses.
func Fig6(runs []VolanoRun, rooms int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 6: schedule() calls and migrations (VolanoMark, %d rooms)", rooms),
		"Config", "elsc calls(k)", "reg calls(k)", "elsc new-cpu", "reg new-cpu")
	for _, spec := range PaperSpecs {
		e := Find(runs, ELSC, spec.Label, rooms).Stats
		r := Find(runs, Reg, spec.Label, rooms).Stats
		t.AddRow(spec.Label,
			int(e.SchedCalls/1000), int(r.SchedCalls/1000),
			e.Migrations, r.Migrations)
	}
	return t
}

// Profile reproduces the §4 claim that 37-55% of kernel time goes to the
// scheduler under the stock scheduler, and contrasts ELSC.
func Profile(runs []VolanoRun, rooms []int) *stats.Table {
	t := stats.NewTable("§4 profile: scheduler share of kernel time (UP)",
		"Rooms", "reg %", "elsc %")
	for _, r := range rooms {
		regStats := Find(runs, Reg, "UP", r).Stats
		elscStats := Find(runs, ELSC, "UP", r).Stats
		t.AddRow(r,
			100*regStats.SchedulerShareOfKernel(),
			100*elscStats.SchedulerShareOfKernel())
	}
	return t
}

// AltSchedulers compares the future-work designs (§8) against ELSC and the
// stock scheduler on one VolanoMark configuration.
func AltSchedulers(spec MachineSpec, rooms int, sc Scale) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("§8 alternatives: VolanoMark %d rooms on %s", rooms, spec.Label),
		"Scheduler", "Throughput", "cyc/sched", "examined", "recalcs", "migrations")
	for _, policy := range Policies {
		r := RunVolano(spec, policy, rooms, sc)
		t.AddRow(policy,
			int(r.Result.Throughput),
			int(r.Stats.CyclesPerSchedule()),
			r.Stats.ExaminedPerSchedule(),
			r.Stats.Recalcs,
			r.Stats.Migrations)
	}
	return t
}

// LockContention races every scheduler on one VolanoMark configuration
// and reports run-queue lock behavior: spin cycles per schedule() call,
// the fraction of acquisitions that hit a held lock, and throughput. On
// the 8P spec this isolates the benefit of splitting the global lock —
// the per-CPU policies (mq, o1) should show an order less lock wait than
// the global-lock ones.
func LockContention(spec MachineSpec, rooms int, sc Scale) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Run-queue lock wait: VolanoMark %d rooms on %s", rooms, spec.Label),
		"Scheduler", "Throughput", "spin cyc/sched", "contended %", "acquisitions")
	for _, policy := range Policies {
		r := RunVolano(spec, policy, rooms, sc)
		spin := 0.0
		if r.Stats.SchedCalls > 0 {
			spin = float64(r.Stats.SpinCycles) / float64(r.Stats.SchedCalls)
		}
		contended := 0.0
		if r.Stats.LockAcquisitions > 0 {
			contended = 100 * float64(r.Stats.LockContended) / float64(r.Stats.LockAcquisitions)
		}
		t.AddRow(policy,
			int(r.Result.Throughput),
			int(spin),
			contended,
			r.Stats.LockAcquisitions)
	}
	return t
}

// WakeLatency measures wake-to-dispatch latency versus background load —
// an extension along the related-work axis (§2): the stock scheduler's
// O(n) scan sits on the wake path, so its latency grows with the run
// queue.
func WakeLatency(spec MachineSpec, hogCounts []int, sc Scale) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Extension: wake-to-dispatch latency on %s (us)", spec.Label),
		"Hogs", "reg mean", "reg p99", "reg max", "elsc mean", "elsc p99", "elsc max")
	for _, hogs := range hogCounts {
		row := make(map[string]latency.Result, 2)
		for _, policy := range []string{Reg, ELSC} {
			m := NewMachine(spec, policy, sc)
			row[policy] = latency.New(m, latency.Config{Hogs: hogs}).Run()
		}
		t.AddRow(hogs,
			row[Reg].MeanUS, row[Reg].P99US, row[Reg].MaxUS,
			row[ELSC].MeanUS, row[ELSC].P99US, row[ELSC].MaxUS)
	}
	return t
}

// Table2With is the explicit-config variant of Table2 for callers that
// size the build themselves (cmd/kcompile's -units and -jobs flags).
func Table2With(sc Scale, cfg kbuild.Config) *stats.Table {
	t := stats.NewTable("Table 2: time to complete kernel compilation (make -j4)",
		"Scheduler", "Time", "Seconds")
	for _, spec := range []MachineSpec{SpecByLabel("UP"), SpecByLabel("2P")} {
		for _, policy := range []string{Reg, ELSC} {
			name := map[string]string{Reg: "Current", ELSC: "ELSC"}[policy]
			r := RunKBuild(spec, policy, cfg, sc)
			t.AddRow(fmt.Sprintf("%s - %s", name, spec.Label), r.Result.Formatted, r.Result.Seconds)
		}
	}
	return t
}

// WebserverWith is the explicit-config variant of Webserver for callers
// that shape the offered load themselves (cmd/websim's flags).
func WebserverWith(spec MachineSpec, cfg webserver.Config, sc Scale) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("§8 future work: Apache-style webserver on %s", spec.Label),
		"Scheduler", "req/s", "mean lat (ms)", "max lat (ms)", "cyc/sched")
	for _, policy := range []string{Reg, ELSC} {
		r := RunWeb(spec, policy, cfg, sc)
		t.AddRow(policy,
			int(r.Result.Throughput),
			r.Result.MeanLatMS,
			r.Result.MaxLatMS,
			int(r.Stats.CyclesPerSchedule()))
	}
	return t
}

// Webserver runs the §8 Apache question: throughput and latency under
// both schedulers at a given machine spec, through the workload registry;
// cmd/websim drives the webserver package directly for bespoke load
// shapes.
func Webserver(spec MachineSpec, sc Scale) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("§8 future work: Apache-style webserver on %s", spec.Label),
		"Scheduler", "req/s", "mean lat (ms)", "max lat (ms)", "cyc/sched")
	for _, policy := range []string{Reg, ELSC} {
		r := RunWorkloadCell(spec, policy, workload.WebServer, sc)
		meanLat, _ := r.Result.Extra("mean_lat_ms")
		maxLat, _ := r.Result.Extra("max_lat_ms")
		t.AddRow(policy,
			int(r.Result.Throughput),
			meanLat,
			maxLat,
			int(r.Stats.CyclesPerSchedule()))
	}
	return t
}
