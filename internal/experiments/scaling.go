package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"elsc/internal/stats"
)

// The parallel-scaling sweep: the same workload matrix run at increasing
// worker-pool sizes, timed on the host clock. Simulated results must be
// bit-identical at every rung — parallelism in this harness distributes
// whole independent cells, never one simulation — so each rung is
// deep-compared against the serial reference before its timing is
// trusted. What varies is only the wall clock, and that is the
// measurement: how much of the matrix's cost the pool actually recovers
// on this host, and what one engine event costs end to end.

// ScalingLevel is one rung of the scaling sweep.
type ScalingLevel struct {
	// Parallel is the worker-pool size for this rung.
	Parallel int `json:"parallel"`
	// Seconds is the host wall-clock for the whole matrix at this rung.
	Seconds float64 `json:"seconds"`
	// Events is the total engine events dispatched across all cells
	// (identical at every rung, by determinism).
	Events uint64 `json:"events"`
	// Speedup is serial Seconds divided by this rung's Seconds.
	Speedup float64 `json:"speedup"`
	// NsPerEvent is wall nanoseconds per engine event at this rung.
	NsPerEvent float64 `json:"ns_per_event"`
}

// ScalingRungs returns the default worker counts the sweep measures: 1,
// 2, 4, and GOMAXPROCS, deduplicated and ascending (on a 4-core host
// that is 1, 2, 4; on a 1-core host just 1, 2, 4 with the upper rungs
// measuring scheduling overhead rather than speedup). Real-host runs
// pass custom widths via RunScalingSweep's rungs argument (`sweep
// -rungs`).
func ScalingRungs() []int {
	return NormalizeRungs([]int{1, 2, 4, runtime.GOMAXPROCS(0)})
}

// NormalizeRungs sorts, deduplicates, and prepends the serial rung the
// cross-rung determinism validation (and the speedup baseline) needs.
// Non-positive widths panic: the flag parser validates user input, so a
// bad width reaching here is a harness bug.
func NormalizeRungs(rungs []int) []int {
	out := append([]int{1}, rungs...)
	for _, r := range out {
		if r < 1 {
			panic(fmt.Sprintf("experiments: scaling rung %d out of range", r))
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	dedup := out[:1]
	for _, r := range out[1:] {
		if r != dedup[len(dedup)-1] {
			dedup = append(dedup, r)
		}
	}
	return dedup
}

// stripHostTime zeroes the one host-dependent field so rungs can be
// deep-compared.
func stripHostTime(runs []WorkloadRun) []WorkloadRun {
	out := append([]WorkloadRun(nil), runs...)
	for i := range out {
		out[i].WallNS = 0
	}
	return out
}

// RunScalingSweep runs the policies x specs x loads matrix once per
// rung, verifies each rung's simulated results are identical to the
// serial rung's (modulo wall-clock), and returns the measured levels
// plus the serial reference runs. A mismatch is returned as an error:
// it means cell-level parallelism perturbed a simulation, which the
// engine's determinism contract forbids. rungs gives the worker widths
// to measure (normalized via NormalizeRungs, so the serial baseline is
// always included); nil selects the ScalingRungs default.
func RunScalingSweep(policies []string, specs []MachineSpec, loads []string, sc Scale, rungs []int) ([]ScalingLevel, []WorkloadRun, error) {
	if rungs == nil {
		rungs = ScalingRungs()
	} else {
		rungs = NormalizeRungs(rungs)
	}
	var (
		levels    []ScalingLevel
		reference []WorkloadRun // serial runs, WallNS stripped
		serialRef []WorkloadRun // serial runs as measured
	)
	for _, rung := range rungs {
		rsc := sc
		rsc.Parallel = rung
		t0 := time.Now()
		runs := RunWorkloadMatrix(policies, specs, loads, rsc)
		secs := time.Since(t0).Seconds()

		var events uint64
		for _, r := range runs {
			events += r.Stats.EventsFired
		}
		stripped := stripHostTime(runs)
		if reference == nil {
			reference = stripped
			serialRef = runs
		} else if !reflect.DeepEqual(stripped, reference) {
			return nil, nil, fmt.Errorf(
				"experiments: parallel=%d matrix diverged from serial reference (determinism violation)", rung)
		}
		lvl := ScalingLevel{Parallel: rung, Seconds: secs, Events: events}
		if secs > 0 {
			lvl.Speedup = levels0Seconds(levels, secs)
			lvl.NsPerEvent = secs * 1e9 / float64(events)
		}
		levels = append(levels, lvl)
	}
	return levels, serialRef, nil
}

// levels0Seconds computes the speedup of a rung that took secs against
// the first (serial) rung; the serial rung itself reports 1.0.
func levels0Seconds(levels []ScalingLevel, secs float64) float64 {
	if len(levels) == 0 {
		return 1.0
	}
	return levels[0].Seconds / secs
}

// ParallelSpeedup returns the speedup of the highest rung, or 0 when
// the sweep has not run.
func ParallelSpeedup(levels []ScalingLevel) float64 {
	if len(levels) == 0 {
		return 0
	}
	return levels[len(levels)-1].Speedup
}

// ScalingTable renders the measured rungs.
func ScalingTable(levels []ScalingLevel, spec string) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Parallel scaling: workload matrix wall-clock (%s, GOMAXPROCS=%d)",
			spec, runtime.GOMAXPROCS(0)),
		"workers", "seconds", "speedup", "ns/event", "events")
	for _, l := range levels {
		t.AddRow(l.Parallel,
			fmt.Sprintf("%.2f", l.Seconds),
			fmt.Sprintf("%.2fx", l.Speedup),
			int(l.NsPerEvent),
			l.Events)
	}
	return t
}
