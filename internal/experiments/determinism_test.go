package experiments

import (
	"fmt"
	"strings"
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/workload"
	"elsc/internal/workload/volano"
)

// traceRun executes a short VolanoMark under policy with a schedtrace-style
// trace attached and returns the rendered trace, the final machine stats,
// and the /proc-style registry dump.
func traceRun(policy string, seed int64) (string, kernel.Stats, string) {
	var buf strings.Builder
	m := kernel.NewMachine(kernel.Config{
		CPUs: 2, SMP: true, Seed: seed,
		NewScheduler: Factory(policy),
		MaxCycles:    600 * kernel.DefaultHz,
		Trace: func(ev kernel.TraceEvent) {
			next := "idle"
			if ev.Next != nil {
				next = ev.Next.String()
			}
			fmt.Fprintf(&buf, "t=%d cpu%d %s -> %s examined=%d cycles=%d spin=%d recalcs=%d\n",
				ev.Now, ev.CPU, ev.Prev.String(), next, ev.Examined, ev.Cycles, ev.Spin, ev.Recalcs)
		},
	})
	volano.Build(m, volano.Config{Rooms: 1, UsersPerRoom: 4, MessagesPerUser: 2}).Run()
	return buf.String(), *m.Stats(), m.Stats().Registry().Render()
}

// TestScheduleTraceDeterminism guards the doc.go promise that a machine's
// Seed reproduces a run cycle-for-cycle: for every scheduler, two machines
// built from the same seed must emit byte-identical schedule() traces and
// identical statistics.
func TestScheduleTraceDeterminism(t *testing.T) {
	for _, policy := range Policies {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			trace1, stats1, proc1 := traceRun(policy, 7)
			trace2, stats2, proc2 := traceRun(policy, 7)
			if trace1 != trace2 {
				t.Fatalf("same seed produced different schedtrace output (%d vs %d bytes)",
					len(trace1), len(trace2))
			}
			if trace1 == "" {
				t.Fatal("trace is empty; the run did nothing")
			}
			if stats1 != stats2 {
				t.Fatalf("same seed produced different stats:\n%+v\nvs\n%+v", stats1, stats2)
			}
			if proc1 != proc2 {
				t.Fatal("same seed produced different /proc registry output")
			}
		})
	}
}

// TestSeedChangesTrace is the control: a different seed must actually
// change the schedule() sequence, or the determinism test proves nothing.
func TestSeedChangesTrace(t *testing.T) {
	trace1, _, _ := traceRun(Reg, 7)
	trace2, _, _ := traceRun(Reg, 8)
	if trace1 == trace2 {
		t.Fatal("different seeds produced identical traces; the workload ignores the seed")
	}
}

// workloadDigest runs one registered workload under one policy at quick
// scale with a fixed seed and renders a stable digest: the full common
// result (throughput, ops, extras) plus the machine's /proc-style stats
// registry.
func workloadDigest(load, policy string, seed int64) string {
	sc := Scale{Messages: 2, Seed: seed, HorizonSeconds: 600, Quick: true}
	spec := MachineSpec{Label: "2P", CPUs: 2, SMP: true}
	m := NewMachine(spec, policy, sc)
	res := workload.Build(load, m, WorkloadParams(spec, sc)).Run()
	return fmt.Sprintf("%+v\n%s", res, m.Stats().Registry().Render())
}

// TestWorkloadDeterminism extends the schedtrace determinism guard across
// the whole registry: every registered workload under every registered
// policy, run twice from the same seed at quick scale, must produce a
// byte-identical stats digest. A workload that consults unforked RNG
// state, wall time, or map iteration order fails here before it can make
// any matrix table nondeterministic.
func TestWorkloadDeterminism(t *testing.T) {
	for _, load := range workload.Names() {
		for _, policy := range Policies {
			load, policy := load, policy
			t.Run(load+"/"+policy, func(t *testing.T) {
				t.Parallel()
				d1 := workloadDigest(load, policy, 7)
				d2 := workloadDigest(load, policy, 7)
				if d1 != d2 {
					t.Fatalf("same seed produced different digests (%d vs %d bytes)",
						len(d1), len(d2))
				}
				if d1 == "" {
					t.Fatal("empty digest; the run did nothing")
				}
			})
		}
	}
}

// TestWorkloadSeedControl: the digest must respond to the seed, or the
// determinism test above proves nothing.
func TestWorkloadSeedControl(t *testing.T) {
	if workloadDigest(workload.DB, O1, 7) == workloadDigest(workload.DB, O1, 8) {
		t.Fatal("different seeds produced identical db digests")
	}
}

// TestDeterminismDigestCoversInteractivityCounters: the /proc-style
// registry that feeds every determinism digest must carry the new
// wake-placement and granularity counters — otherwise a nondeterministic
// interactivity path could slip past the byte-identical checks above.
func TestDeterminismDigestCoversInteractivityCounters(t *testing.T) {
	_, _, proc := traceRun(O1, 7)
	for _, key := range []string{"wake_idle_placements", "timeslice_rotations"} {
		if !strings.Contains(proc, key) {
			t.Fatalf("registry digest missing %q:\n%s", key, proc)
		}
	}
}

// TestBonusCountersDeterministic extends the guard to the estimator's
// own counters, which live in the scheduler rather than kernel stats:
// same seed, same bonus distribution and requeue count.
func TestBonusCountersDeterministic(t *testing.T) {
	run := func() WorkloadRun {
		sc := Scale{Messages: 2, Seed: 7, HorizonSeconds: 600, Quick: true}
		return RunWorkloadCell(SpecByLabel("2P"), O1, workload.Latency, sc)
	}
	a, b := run(), run()
	if !a.HasBonus || !b.HasBonus {
		t.Fatal("o1 runs did not expose bonus counters")
	}
	if fmt.Sprint(a.BonusLevels) != fmt.Sprint(b.BonusLevels) ||
		a.InteractiveRequeues != b.InteractiveRequeues {
		t.Fatalf("same seed produced different estimator counters:\n%v/%d\nvs\n%v/%d",
			a.BonusLevels, a.InteractiveRequeues, b.BonusLevels, b.InteractiveRequeues)
	}
}
