package experiments

import (
	"fmt"
	"strings"
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/workload/volano"
)

// traceRun executes a short VolanoMark under policy with a schedtrace-style
// trace attached and returns the rendered trace, the final machine stats,
// and the /proc-style registry dump.
func traceRun(policy string, seed int64) (string, kernel.Stats, string) {
	var buf strings.Builder
	m := kernel.NewMachine(kernel.Config{
		CPUs: 2, SMP: true, Seed: seed,
		NewScheduler: Factory(policy),
		MaxCycles:    600 * kernel.DefaultHz,
		Trace: func(ev kernel.TraceEvent) {
			next := "idle"
			if ev.Next != nil {
				next = ev.Next.String()
			}
			fmt.Fprintf(&buf, "t=%d cpu%d %s -> %s examined=%d cycles=%d spin=%d recalcs=%d\n",
				ev.Now, ev.CPU, ev.Prev.String(), next, ev.Examined, ev.Cycles, ev.Spin, ev.Recalcs)
		},
	})
	volano.Build(m, volano.Config{Rooms: 1, UsersPerRoom: 4, MessagesPerUser: 2}).Run()
	return buf.String(), *m.Stats(), m.Stats().Registry().Render()
}

// TestScheduleTraceDeterminism guards the doc.go promise that a machine's
// Seed reproduces a run cycle-for-cycle: for every scheduler, two machines
// built from the same seed must emit byte-identical schedule() traces and
// identical statistics.
func TestScheduleTraceDeterminism(t *testing.T) {
	for _, policy := range Policies {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			trace1, stats1, proc1 := traceRun(policy, 7)
			trace2, stats2, proc2 := traceRun(policy, 7)
			if trace1 != trace2 {
				t.Fatalf("same seed produced different schedtrace output (%d vs %d bytes)",
					len(trace1), len(trace2))
			}
			if trace1 == "" {
				t.Fatal("trace is empty; the run did nothing")
			}
			if stats1 != stats2 {
				t.Fatalf("same seed produced different stats:\n%+v\nvs\n%+v", stats1, stats2)
			}
			if proc1 != proc2 {
				t.Fatal("same seed produced different /proc registry output")
			}
		})
	}
}

// TestSeedChangesTrace is the control: a different seed must actually
// change the schedule() sequence, or the determinism test proves nothing.
func TestSeedChangesTrace(t *testing.T) {
	trace1, _, _ := traceRun(Reg, 7)
	trace2, _, _ := traceRun(Reg, 8)
	if trace1 == trace2 {
		t.Fatal("different seeds produced identical traces; the workload ignores the seed")
	}
}
