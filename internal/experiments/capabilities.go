package experiments

// PolicyCap is one row of the policy capability table: what a scheduling
// policy promises (and is held to by the conformance suite), and what role
// it plays in the default experiment sweeps. The table is the single place
// a policy's standing changes — the conformance latency invariants read
// their budgets here, and cmd/sweep derives its default matrix policy set
// from the Baseline flag.
type PolicyCap struct {
	// LatencyBudgetQuanta bounds the worst observed wakeup-to-run latency
	// of a blocked-then-woken probe, as a fraction of a default-priority
	// hog's full quantum (conformance invariant (a)). Policies whose
	// designs promise better than the universal two-quanta floor are held
	// to their promise.
	LatencyBudgetQuanta float64

	// Baseline marks a retired baseline: the policy stays in the
	// registry, the conformance suite, the determinism regressions, and
	// remains selectable by name everywhere — but the default matrix and
	// wake-storm sweeps skip it, so it no longer taxes every PR's bench
	// regeneration. mq carries the flag: it has per-CPU queues like o1
	// but no interactivity story (its latency column collapses), so the
	// o1 rows already tell its scaling story with a better tail.
	Baseline bool
}

// BaseLatencyBudgetQuanta is the latency floor every policy must meet: a
// woken probe runs before any hog completes two full quanta.
const BaseLatencyBudgetQuanta = 2.0

// Caps is the capability table for every registered policy. A policy
// missing from the table gets the base latency budget and full default
// participation.
var Caps = map[string]PolicyCap{
	Reg:  {LatencyBudgetQuanta: 0.01}, // goodness preemption: tens of µs
	ELSC: {LatencyBudgetQuanta: BaseLatencyBudgetQuanta},
	Heap: {LatencyBudgetQuanta: 0.01}, // static-goodness heap: tens of µs
	MQ:   {LatencyBudgetQuanta: BaseLatencyBudgetQuanta, Baseline: true},
	O1:   {LatencyBudgetQuanta: 0.005}, // interactivity-aware: the tightest bar
	CFS:  {LatencyBudgetQuanta: 0.01},  // sleeper clamp + wake preemption: tens of µs
}

// LatencyBudget returns the policy's conformance latency budget in hog
// quanta.
func LatencyBudget(policy string) float64 {
	if c, ok := Caps[policy]; ok && c.LatencyBudgetQuanta > 0 {
		return c.LatencyBudgetQuanta
	}
	return BaseLatencyBudgetQuanta
}

// baseStarveQuanta is the watchdog starvation bar for latency-tight
// policies, in multiples of the starved task's own quantum (further scaled
// by the machine's runnable-per-CPU load inside the kernel watchdog). A
// policy that promises sub-quantum wake latency has no business leaving a
// runnable task unscheduled for four of its quanta at fair share.
const baseStarveQuanta = 4.0

// WatchdogStarveQuanta derives a policy's watchdog starvation threshold
// from its capability row: policies held only to the base (two-quanta)
// latency budget get twice the bar of the tight ones, so the watchdog
// stays false-positive-free on behavior their capability explicitly
// permits.
func WatchdogStarveQuanta(policy string) float64 {
	if LatencyBudget(policy) >= BaseLatencyBudgetQuanta {
		return 2 * baseStarveQuanta
	}
	return baseStarveQuanta
}

// MaxWatchdogStarveQuanta returns the laxest threshold across every
// registered policy — what a run that can hot-swap to any policy
// (the scenario fuzzer) must be judged by.
func MaxWatchdogStarveQuanta() float64 {
	max := baseStarveQuanta
	for _, p := range Policies {
		if q := WatchdogStarveQuanta(p); q > max {
			max = q
		}
	}
	return max
}

// DefaultPolicies returns the registered policies minus retired baselines,
// in registry order — the set the default matrix/wakestorm sweeps run.
func DefaultPolicies() []string {
	out := make([]string, 0, len(Policies))
	for _, p := range Policies {
		if !Caps[p].Baseline {
			out = append(out, p)
		}
	}
	return out
}
