package experiments

import (
	"strings"
	"testing"

	"elsc/internal/workload/kbuild"
	"elsc/internal/workload/webserver"
)

// tinyScale keeps the full-matrix tests fast.
func tinyScale() Scale {
	return Scale{Messages: 4, Seed: 42, HorizonSeconds: 600, Quick: true}
}

// tinyRooms shrinks the room sweep.
var tinyRooms = []int{1, 2}

func tinyMatrix(t *testing.T) []VolanoRun {
	t.Helper()
	return RunVolanoMatrix([]string{Reg, ELSC}, PaperSpecs, tinyRooms, tinyScale())
}

func TestMatrixCoversAllCells(t *testing.T) {
	runs := tinyMatrix(t)
	if len(runs) != 2*len(PaperSpecs)*len(tinyRooms) {
		t.Fatalf("matrix has %d cells", len(runs))
	}
	for _, policy := range []string{Reg, ELSC} {
		for _, spec := range PaperSpecs {
			for _, r := range tinyRooms {
				run := Find(runs, policy, spec.Label, r)
				if run.Result.Deliveries == 0 {
					t.Fatalf("%s produced no deliveries", run.Key())
				}
			}
		}
	}
}

func TestMatrixDeterministicAcrossParallelism(t *testing.T) {
	sc1 := tinyScale()
	sc1.Parallel = 1
	sc4 := tinyScale()
	sc4.Parallel = 4
	a := RunVolanoMatrix([]string{ELSC}, PaperSpecs[:2], tinyRooms, sc1)
	b := RunVolanoMatrix([]string{ELSC}, PaperSpecs[:2], tinyRooms, sc4)
	for i := range a {
		if a[i].Result.Cycles != b[i].Result.Cycles {
			t.Fatalf("run %s differs across parallelism: %d vs %d",
				a[i].Key(), a[i].Result.Cycles, b[i].Result.Cycles)
		}
	}
}

func TestFig3ShapeELSCFlatRegDecays(t *testing.T) {
	// The paper's headline: reg throughput falls as rooms grow; ELSC
	// stays roughly flat. Use a wider spread for signal.
	sc := Scale{Messages: 8, Seed: 42, HorizonSeconds: 900}
	rooms := []int{2, 8}
	runs := RunVolanoMatrix([]string{Reg, ELSC}, []MachineSpec{SpecByLabel("UP")}, rooms, sc)

	regLo := Find(runs, Reg, "UP", 2).Result.Throughput
	regHi := Find(runs, Reg, "UP", 8).Result.Throughput
	elscLo := Find(runs, ELSC, "UP", 2).Result.Throughput
	elscHi := Find(runs, ELSC, "UP", 8).Result.Throughput

	regScale := regHi / regLo
	elscScale := elscHi / elscLo
	if elscScale <= regScale {
		t.Fatalf("scaling: elsc %.2f should beat reg %.2f", elscScale, regScale)
	}
	if elscScale < 0.85 {
		t.Fatalf("elsc scaling %.2f should be near 1.0", elscScale)
	}
}

func TestFig5ShapeELSCCheaper(t *testing.T) {
	runs := tinyMatrix(t)
	for _, spec := range PaperSpecs {
		e := Find(runs, ELSC, spec.Label, 2).Stats
		r := Find(runs, Reg, spec.Label, 2).Stats
		if e.CyclesPerSchedule() >= r.CyclesPerSchedule() {
			t.Errorf("%s: elsc cyc/sched %.0f not below reg %.0f",
				spec.Label, e.CyclesPerSchedule(), r.CyclesPerSchedule())
		}
		if e.ExaminedPerSchedule() >= r.ExaminedPerSchedule() {
			t.Errorf("%s: elsc examined %.1f not below reg %.1f",
				spec.Label, e.ExaminedPerSchedule(), r.ExaminedPerSchedule())
		}
	}
}

func TestFigureTablesRender(t *testing.T) {
	runs := tinyMatrix(t)
	cases := map[string]string{
		"fig2": Fig2(runs, 2).Render(),
		"fig3": Fig3(runs, tinyRooms).Render(),
		"fig4": Fig4(runs, 1, 2).Render(),
		"fig5": Fig5(runs, 2).Render(),
		"fig6": Fig6(runs, 2).Render(),
		"prof": Profile(runs, tinyRooms).Render(),
	}
	for name, out := range cases {
		if len(strings.Split(out, "\n")) < 4 {
			t.Errorf("%s table too small:\n%s", name, out)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	tab := Table2(tinyScale())
	out := tab.Render()
	for _, want := range []string{"Current - UP", "ELSC - UP", "Current - 2P", "ELSC - 2P"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 missing row %q:\n%s", want, out)
		}
	}
}

func TestTable2WithRenders(t *testing.T) {
	tab := Table2With(tinyScale(), kbuild.Config{Units: 16, MeanCompile: 3_000_000, MeanIO: 50_000})
	if tab.NumRows() != 4 {
		t.Fatalf("Table 2 (explicit config) rows = %d, want 4", tab.NumRows())
	}
}

func TestAltSchedulersTable(t *testing.T) {
	tab := AltSchedulers(SpecByLabel("2P"), 1, tinyScale())
	out := tab.Render()
	for _, want := range Policies {
		if !strings.Contains(out, want) {
			t.Fatalf("alternatives table missing %q:\n%s", want, out)
		}
	}
}

func TestLockContentionTable(t *testing.T) {
	tab := LockContention(SpecByLabel("2P"), 1, tinyScale())
	out := tab.Render()
	for _, want := range Policies {
		if !strings.Contains(out, want) {
			t.Fatalf("lock table missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != len(Policies) {
		t.Fatalf("lock table rows = %d, want %d", tab.NumRows(), len(Policies))
	}
}

func TestWebserverTable(t *testing.T) {
	tab := Webserver(SpecByLabel("2P"), tinyScale())
	if tab.NumRows() != 2 {
		t.Fatalf("webserver table rows = %d, want 2", tab.NumRows())
	}
}

func TestWebserverWithTable(t *testing.T) {
	tab := WebserverWith(SpecByLabel("2P"), webserver.Config{Workers: 8, Requests: 200}, tinyScale())
	if tab.NumRows() != 2 {
		t.Fatalf("webserver table rows = %d, want 2", tab.NumRows())
	}
}

func TestAblationTables(t *testing.T) {
	sc := tinyScale()
	if got := AblateSearchLimit(SpecByLabel("1P"), 1, []int{1, 5}, sc); got.NumRows() != 2 {
		t.Fatal("search-limit ablation rows")
	}
	if got := AblateTableSize(SpecByLabel("1P"), 1, []int{15, 30}, sc); got.NumRows() != 2 {
		t.Fatal("table-size ablation rows")
	}
	if got := AblateUPShortcut(1, sc); got.NumRows() != 2 {
		t.Fatal("up-shortcut ablation rows")
	}
}

func TestFactoryNames(t *testing.T) {
	for _, name := range Policies {
		m := NewMachine(SpecByLabel("1P"), name, tinyScale())
		if m.Scheduler().Name() != name {
			t.Fatalf("factory %q built scheduler %q", name, m.Scheduler().Name())
		}
	}
}

func TestFindPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Find on empty runs should panic")
		}
	}()
	Find(nil, Reg, "UP", 5)
}
