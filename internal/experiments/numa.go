package experiments

import (
	"fmt"

	"elsc/internal/sched"
	"elsc/internal/sched/o1"
	"elsc/internal/sim"
	"elsc/internal/stats"
	"elsc/internal/workload/volano"
)

// The NUMA experiments: race every policy on a cache-domain machine and
// measure what topology awareness buys. RackSched-style results say
// topology-blind balancing destroys locality at scale; here that shows up
// as cross-domain migrations (each charged CrossDomainRefillMax instead
// of CacheRefillMax at dispatch) and as remote-access cycles while a
// displaced task waits for its pages to rehome.
//
// These runs use volano.ScalableStackCosts: with the 2.3-era big-lock
// network stack the whole 32-processor machine is stack-bound (one socket
// op at a time machine-wide) and every policy measures the same. The
// scaled specs model the fine-grained socket locking the kernel actually
// had by the sched_domains era, so scheduling is what differs.

// forEachParallel runs n independent simulations concurrently (bounded
// by sc.workers, as RunVolanoMatrix does) and returns results in input
// order, so the tables stay deterministic.
func forEachParallel(n int, sc Scale, run func(i int, eng *sim.Engine) VolanoRun) []VolanoRun {
	out := make([]VolanoRun, n)
	forEachIndexParallel(n, sc, func(i int, eng *sim.Engine) { out[i] = run(i, eng) })
	return out
}

// numaVolanoConfig is the workload for the NUMA tables.
func numaVolanoConfig(rooms int, sc Scale) volano.Config {
	return volano.Config{
		Rooms:           rooms,
		MessagesPerUser: sc.Messages,
		Costs:           volano.ScalableStackCosts(),
	}
}

// Numa races every registered policy on a domained spec and reports how
// each treats the interconnect: total and cross-domain migrations
// (machine-observed), the balancer's own intra- versus cross-domain move
// counts where the policy tracks them (o1), lock spin, and throughput.
func Numa(spec MachineSpec, rooms int, sc Scale) *stats.Table {
	domains := max(spec.Domains, 1)
	t := stats.NewTable(
		fmt.Sprintf("NUMA domains: VolanoMark %d rooms on %s (%d domains x %d CPUs)",
			rooms, spec.Label, domains, spec.CPUs/domains),
		"Scheduler", "Throughput", "spin cyc/sched", "migrations", "cross-dom",
		"remote Mcyc", "intra-steal", "cross-steal")
	runs := forEachParallel(len(Policies), sc, func(i int, eng *sim.Engine) VolanoRun {
		return RunVolanoConfigOn(eng, spec, Policies[i], numaVolanoConfig(rooms, sc), sc)
	})
	for i, policy := range Policies {
		r := runs[i]
		spin := 0.0
		if r.Stats.SchedCalls > 0 {
			spin = float64(r.Stats.SpinCycles) / float64(r.Stats.SchedCalls)
		}
		intra, cross := "-", "-"
		if r.HasSteals {
			intra = fmt.Sprintf("%d", r.IntraSteals)
			cross = fmt.Sprintf("%d", r.CrossSteals)
		}
		t.AddRow(policy,
			int(r.Result.Throughput),
			int(spin),
			r.Stats.Migrations,
			r.Stats.CrossDomainMigrations,
			int(r.Stats.RemoteCycles/1_000_000),
			intra,
			cross)
	}
	return t
}

// runO1Variant measures VolanoMark under a configured o1 scheduler on a
// spec — the harness for the topology ablation. It shares the machine
// construction and result harvesting with the per-policy Numa table, so
// the ablation baseline cannot drift from what it is compared against.
func runO1Variant(spec MachineSpec, cfg o1.Config, rooms int, sc Scale) VolanoRun {
	m := NewMachineWith(spec, func(env *sched.Env) sched.Scheduler {
		return o1.NewWithConfig(env, cfg)
	}, sc)
	return runVolanoOn(m, spec, O1, numaVolanoConfig(rooms, sc))
}

// RunO1Topology measures VolanoMark under o1 with or without domain
// awareness — the benchmark entry point for the topology ablation.
func RunO1Topology(spec MachineSpec, blind bool, rooms int, sc Scale) VolanoRun {
	return runO1Variant(spec, o1.Config{TopologyBlind: blind}, rooms, sc)
}

// AblateTopology isolates what o1's domain awareness buys on a NUMA spec:
// the same scheduler with the TopologyBlind flag set treats the machine
// as one flat domain, so the delta in cross-domain migrations,
// remote-access cycles, and throughput is the value of the hierarchy.
// The effect is largest at marginal load (a few rooms on 32 CPUs), where
// CPUs go idle often enough that the steal path runs constantly; at
// saturation the balancer barely fires and the variants converge.
func AblateTopology(spec MachineSpec, rooms int, sc Scale) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: o1 domain awareness (%s, %d rooms)", spec.Label, rooms),
		"o1 variant", "Throughput", "migrations", "cross-dom", "remote Mcyc", "cache Mcyc")
	variants := []bool{false, true}
	runs := forEachParallel(len(variants), sc, func(i int, _ *sim.Engine) VolanoRun {
		return runO1Variant(spec, o1.Config{TopologyBlind: variants[i]}, rooms, sc)
	})
	for i, blind := range variants {
		label := "domain-aware"
		if blind {
			label = "topology-blind"
		}
		r := runs[i]
		t.AddRow(label,
			int(r.Result.Throughput),
			r.Stats.Migrations,
			r.Stats.CrossDomainMigrations,
			int(r.Stats.RemoteCycles/1_000_000),
			int(r.Stats.CacheCycles/1_000_000))
	}
	return t
}
