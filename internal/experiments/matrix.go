package experiments

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"elsc/internal/kernel"
	"elsc/internal/sim"
	"elsc/internal/stats"
	"elsc/internal/workload"
)

// The generic policy x workload x machine matrix runner. Where the
// figure-specific harnesses in this package reproduce the paper's
// VolanoMark-centric evaluation, these entry points drive any workload in
// the registry under any registered policy on any machine spec, through
// one code path: a new workload registered in internal/workload (or a new
// policy in Policies) joins every matrix table, the determinism
// regression, and the sweep JSON without further wiring.

// WorkloadParams maps a Scale onto the registry's sizing knobs for a run
// on the given spec. Machines past the paper's hardware (16+ CPUs) get
// the post-2.3 scalable network stack for the socket-bound workloads, as
// the NUMA experiments do: the 2.3-era serialized stack caps the whole
// machine at one socket operation at a time and would make every policy
// measure the same.
func WorkloadParams(spec MachineSpec, sc Scale) workload.Params {
	return workload.Params{
		Work:          sc.Messages,
		Quick:         sc.Quick,
		ScalableStack: spec.CPUs >= 16,
	}
}

// WorkloadRun is one cell of the generic matrix.
type WorkloadRun struct {
	Spec   MachineSpec
	Policy string
	Load   string
	Result workload.Result
	Stats  kernel.Stats

	// WallNS is the host wall-clock the cell took to build and run, in
	// nanoseconds. It is the one host-dependent number a run carries —
	// recorded in BENCH_wallclock.json so harness-speed regressions show
	// up across PRs — and is excluded from every determinism digest.
	WallNS int64

	// BonusLevels and InteractiveRequeues are the interactivity
	// estimator's own counters, for policies that track them (HasBonus):
	// enqueues by dynamic-priority bonus (-5..+5) and active-array
	// re-insertions granted.
	BonusLevels         []uint64
	InteractiveRequeues uint64
	HasBonus            bool
}

// bonusStatser is implemented by policies whose interactivity estimator
// exposes its observable counters (o1).
type bonusStatser interface {
	BonusLevels() []uint64
	InteractiveRequeues() uint64
}

// Key renders "db-o1-8P" style identifiers.
func (r WorkloadRun) Key() string {
	return fmt.Sprintf("%s-%s-%s", r.Load, r.Policy, r.Spec.Label)
}

// RunWorkloadCell executes one workload under one policy on one spec.
func RunWorkloadCell(spec MachineSpec, policy, load string, sc Scale) WorkloadRun {
	return RunWorkloadCellOn(nil, spec, policy, load, sc)
}

// RunWorkloadCellOn is RunWorkloadCell on a recycled event engine (nil
// builds a fresh one): the matrix worker pool passes each worker's
// engine so hundreds of cells share one heap array, wheel, and freelist
// instead of re-paying engine construction per cell.
func RunWorkloadCellOn(eng *sim.Engine, spec MachineSpec, policy, load string, sc Scale) WorkloadRun {
	start := time.Now()
	run := runWorkloadOn(NewMachineOn(eng, spec, policy, sc), spec, policy, load, sc)
	run.WallNS = time.Since(start).Nanoseconds()
	return run
}

// RunWorkloadCellWith executes one workload cell with an explicit
// scheduler factory — the entry for ablation variants that tune a
// policy's config (the interactivity and topology studies).
func RunWorkloadCellWith(spec MachineSpec, factory kernel.SchedulerFactory, policyLabel, load string, sc Scale) WorkloadRun {
	start := time.Now()
	run := runWorkloadOn(NewMachineWith(spec, factory, sc), spec, policyLabel, load, sc)
	run.WallNS = time.Since(start).Nanoseconds()
	return run
}

// runWorkloadOn runs the named workload on a prepared machine and
// harvests the result, machine stats, and the estimator counters when
// the policy tracks them.
func runWorkloadOn(m *kernel.Machine, spec MachineSpec, policy, load string, sc Scale) WorkloadRun {
	res := workload.Build(load, m, WorkloadParams(spec, sc)).Run()
	run := WorkloadRun{Spec: spec, Policy: policy, Load: load, Result: res, Stats: *m.Stats()}
	if bs, ok := m.Scheduler().(bonusStatser); ok {
		run.BonusLevels = bs.BonusLevels()
		run.InteractiveRequeues = bs.InteractiveRequeues()
		run.HasBonus = true
	}
	return run
}

// RunWorkloadMatrix sweeps policies x specs x workloads, running cells in
// parallel, and returns results in deterministic (input) order.
func RunWorkloadMatrix(policies []string, specs []MachineSpec, loads []string, sc Scale) []WorkloadRun {
	type cell struct {
		spec   MachineSpec
		policy string
		load   string
	}
	var jobs []cell
	for _, spec := range specs {
		for _, l := range loads {
			for _, p := range policies {
				jobs = append(jobs, cell{spec: spec, policy: p, load: l})
			}
		}
	}
	out := make([]WorkloadRun, len(jobs))
	forEachIndexParallel(len(jobs), sc, func(i int, eng *sim.Engine) {
		j := jobs[i]
		out[i] = RunWorkloadCellOn(eng, j.spec, j.policy, j.load, sc)
	})
	return out
}

// FindWorkload returns the cell matching the key parameters, or panics;
// matrices are small and a missing cell is a harness bug.
func FindWorkload(runs []WorkloadRun, policy, label, load string) WorkloadRun {
	for _, r := range runs {
		if r.Policy == policy && r.Spec.Label == label && r.Load == load {
			return r
		}
	}
	panic(fmt.Sprintf("experiments: no run %s-%s-%s", load, policy, label))
}

// MatrixTable renders the policy x workload throughput grid for one spec:
// one row per policy, one column per workload (in its own unit). An
// incomplete run — the workload did not finish before the horizon — is
// flagged with a trailing '!', since its throughput understates.
func MatrixTable(runs []WorkloadRun, spec MachineSpec, policies, loads []string) *stats.Table {
	headers := make([]string, 0, len(loads)+1)
	headers = append(headers, "Policy")
	for _, l := range loads {
		unit := FindWorkload(runs, policies[0], spec.Label, l).Result.Unit
		headers = append(headers, fmt.Sprintf("%s (%s)", l, unit))
	}
	t := stats.NewTable(
		fmt.Sprintf("Policy x workload throughput on %s", spec.Label), headers...)
	for _, p := range policies {
		row := make([]any, 0, len(loads)+1)
		row = append(row, p)
		for _, l := range loads {
			r := FindWorkload(runs, p, spec.Label, l)
			cell := fmt.Sprintf("%d", int(r.Result.Throughput))
			if !r.Result.Complete {
				cell += "!"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}

// WorkloadDetail renders one workload's per-policy breakdown on one spec:
// throughput plus every extra metric the workload reports, so a workload
// with tail-latency or contention counters (db, wakestorm) gets a full
// table without bespoke harness code.
func WorkloadDetail(runs []WorkloadRun, spec MachineSpec, policies []string, load string) *stats.Table {
	first := FindWorkload(runs, policies[0], spec.Label, load)
	headers := []string{"Policy", "Throughput (" + first.Result.Unit + ")"}
	for _, m := range first.Result.Extras {
		headers = append(headers, m.Name)
	}
	t := stats.NewTable(
		fmt.Sprintf("Workload detail: %s on %s", load, spec.Label), headers...)
	for _, p := range policies {
		r := FindWorkload(runs, p, spec.Label, load)
		row := []any{p, int(r.Result.Throughput)}
		for _, m := range first.Result.Extras {
			v, ok := r.Result.Extra(m.Name)
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t
}

// WakeStorm races the default (non-baseline) policies through the
// wake-storm workload on one spec and reports per-policy wakeup-to-run
// latency: the p50/p99/max tail a woken herd member waits before it
// actually executes.
func WakeStorm(spec MachineSpec, sc Scale) *stats.Table {
	pols := DefaultPolicies()
	runs := RunWorkloadMatrix(pols, []MachineSpec{spec}, []string{workload.WakeStorm}, sc)
	return WorkloadDetail(runs, spec, pols, workload.WakeStorm)
}

// forEachIndexParallel runs n independent jobs on a pool of sc.Workers()
// workers, with results written by index so table order stays
// deterministic regardless of completion order. Each worker owns one
// recycled event engine for its whole job stream (cells reuse the heap
// array, wheel rings, and freelist instead of reallocating them) and is
// tagged with a sweep_worker pprof label, so a CPU profile of a parallel
// sweep can be sliced per worker.
func forEachIndexParallel(n int, sc Scale, run func(i int, eng *sim.Engine)) {
	workers := sc.Workers()
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			labels := pprof.Labels("sweep_worker", strconv.Itoa(w))
			pprof.Do(context.Background(), labels, func(context.Context) {
				eng := new(sim.Engine)
				for i := range jobs {
					run(i, eng)
				}
			})
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
