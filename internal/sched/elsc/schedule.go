package elsc

import (
	"elsc/internal/klist"
	"elsc/internal/sched"
	"elsc/internal/task"
)

// Schedule implements the ELSC scheduling algorithm (paper §5.2).
//
// Order of operations, as in the paper: re-insert the previous task if it
// is still runnable (running tasks live outside the table); move exhausted
// SCHED_RR tasks to the end of their list; decide whether to recalculate
// counters from the top/next_top pointers; then search the highest
// populated list, examining at most ncpu/2+5 tasks.
func (s *Sched) Schedule(cpu int, prev *task.Task) sched.Result {
	env := s.env
	res := sched.Result{Cycles: env.Cost.ScheduleBase}

	yieldedPrev := false
	if !prev.IsIdle {
		yieldedPrev = prev.Yielded
		if prev.Runnable() {
			// The previous task was manually dequeued when it was
			// dispatched; put it back in the table so the search
			// loop can consider it without special-casing
			// ("we insert the task in the table now lest we lose
			// track of it").
			if prev.OnRunqueue() && !prev.RunList.InListProper() {
				prev.RunList.ResetDangling()
			}
			if !prev.OnRunqueue() {
				s.AddToRunqueue(prev)
				res.Cycles += env.Cost.AddRunqueue + env.Cost.TableIndexCost
			}
			// Exhausted round-robin tasks get a fresh quantum and
			// lose position. Their list index depends only on
			// rt_priority, so a move within the list suffices.
			if prev.Policy == task.RR && prev.Counter(env.Epoch) == 0 {
				prev.SetCounter(env.Epoch, prev.Priority)
				s.MoveLastRunqueue(prev)
				res.Cycles += env.Cost.MoveRunqueue
			}
		} else if prev.OnRunqueue() {
			// The previous task blocked or exited: drop the
			// "on the run queue" illusion.
			s.DelFromRunqueue(prev)
			res.Cycles += env.Cost.DelRunqueue
		}
	}

	// Recalculation decision (paper §5.2): top == "zero" means no
	// selectable task with quantum left. If next_top is set there are
	// parked exhausted tasks — recalculate every counter in the system
	// and merge the parked sections (O(lists), thanks to the
	// predicted-counter pre-indexing). If next_top is also "zero" the
	// table is empty and the idle task runs, with no recalculation.
	//
	// A yielding task that still has quantum never reaches this path:
	// it was re-inserted above, so top is set and the search below will
	// re-run it — the paper's deliberate deviation that avoids the
	// stock scheduler's yield-triggered recalculation storm (Figure 2).
	if s.top < 0 {
		if s.nextTop < 0 {
			if yieldedPrev {
				prev.Yielded = false
			}
			return res // idle
		}
		env.Epoch.Bump()
		res.Recalcs++
		res.Cycles += uint64(env.NTasks()) * env.Cost.RecalcPerTask
		for i := 0; i < s.size; i++ {
			s.nz[i] += s.z[i]
			s.z[i] = 0
		}
		s.top = s.nextTop
		s.nextTop = -1
	}

	limit := s.searchLimit()
	var chosen *task.Task
	for idx := s.top; idx >= 0; idx-- {
		if s.nz[idx] == 0 {
			continue
		}
		if idx >= s.rtLo {
			chosen = s.searchRT(idx, cpu, limit, &res)
		} else {
			chosen = s.searchOther(idx, cpu, prev, yieldedPrev, limit, &res)
		}
		if chosen != nil {
			break
		}
		// Everything in this list was running on other CPUs (SMP
		// only): "we consider the next populated list and try again."
	}

	if chosen != nil {
		// Manual dequeue: pull the task out of its list but leave
		// run_list.next set so the rest of the kernel still sees it
		// "on the run queue" (footnote 3).
		s.unlink(chosen)
		res.Cycles += env.Cost.DelRunqueue
		res.Next = chosen
	}
	// "If the previous task had yielded the processor, then the ELSC
	// scheduler clears the SCHED_YIELD bit to give the task a better
	// chance in future calls to schedule()."
	if yieldedPrev {
		prev.Yielded = false
	}
	return res
}

// searchOther scans one SCHED_OTHER list for the best candidate,
// implementing the paper's search loop: skip tasks running on other CPUs,
// stop at the zero-counter section, defer a yielded previous task, award
// the goodness bonuses, and cut the scan at limit tasks. On uniprocessor
// builds a memory-map match ends the search immediately.
func (s *Sched) searchOther(idx, cpu int, prev *task.Task, yieldedPrev bool, limit int, res *sched.Result) *task.Task {
	env := s.env
	var best, yieldFallback *task.Task
	bestG := -1
	count := 0
	upShortcut := !env.SMP && !s.cfg.DisableUPShortcut

	s.lists[idx].ForEach(func(n *klist.Node) bool {
		t := task.FromNode(n)
		count++
		res.Examined++
		if (t.HasCPU && t.Processor != cpu) || !t.AllowedOn(cpu) {
			// Still executing on another CPU, or pinned elsewhere;
			// not schedulable here.
			res.Cycles += env.Cost.Touch(env.NCPU)
			return count < limit
		}
		if s.inZeroSection(t) {
			// "The rest of the list is either empty or unusable."
			res.Cycles += env.Cost.Touch(env.NCPU)
			return false
		}
		if t == prev && yieldedPrev {
			// "We will run it only if we cannot find another task
			// on the list."
			res.Cycles += env.Cost.Touch(env.NCPU)
			yieldFallback = t
			return count < limit
		}
		res.Cycles += env.Cost.Evaluate(env.NCPU)
		w := sched.Goodness(env.Epoch, t, cpu, prev.MM)
		if upShortcut && prev.MM != nil && t.MM == prev.MM {
			// Uniprocessor shortcut: no later task in this list can
			// collect a larger bonus, so run this one right away.
			best, bestG = t, w
			return false
		}
		if w > bestG {
			best, bestG = t, w
		}
		return count < limit
	})

	if best == nil {
		best = yieldFallback
	}
	return best
}

// searchRT scans a real-time list: "we examine only the first few tasks
// and don't look at those currently running on other processors ... we
// simply run the task with the highest rt_priority value."
func (s *Sched) searchRT(idx, cpu, limit int, res *sched.Result) *task.Task {
	env := s.env
	var best *task.Task
	count := 0
	s.lists[idx].ForEach(func(n *klist.Node) bool {
		t := task.FromNode(n)
		count++
		res.Examined++
		res.Cycles += env.Cost.Touch(env.NCPU)
		if (t.HasCPU && t.Processor != cpu) || !t.AllowedOn(cpu) {
			return count < limit
		}
		if best == nil || t.RTPriority > best.RTPriority {
			best = t
		}
		return count < limit
	})
	return best
}
