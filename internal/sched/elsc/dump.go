package elsc

import (
	"fmt"
	"strings"

	"elsc/internal/klist"
	"elsc/internal/task"
)

// Dump renders the table in the style of the paper's Figure 1b: one line
// per populated list, highest first, tasks front-to-back with their static
// goodness, parked (zero-counter) tasks bracketed. A teaching and
// debugging view used by cmd/schedtrace.
func (s *Sched) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ELSC table: top=%d next_top=%d runnable=%d\n", s.top, s.nextTop, s.total)
	for idx := s.size - 1; idx >= 0; idx-- {
		if s.lists[idx].Empty() {
			continue
		}
		kind := "other"
		if idx >= s.rtLo {
			kind = "rt"
		}
		fmt.Fprintf(&b, "  [%2d %-5s] ", idx, kind)
		first := true
		s.lists[idx].ForEach(func(n *klist.Node) bool {
			t := task.FromNode(n)
			if !first {
				b.WriteString(" -> ")
			}
			first = false
			if s.inZeroSection(t) {
				fmt.Fprintf(&b, "(%s c=0)", t.Name)
			} else if t.RealTime() {
				fmt.Fprintf(&b, "%s rt=%d", t.Name, t.RTPriority)
			} else {
				fmt.Fprintf(&b, "%s sg=%d", t.Name, t.StaticGoodness(s.env.Epoch))
			}
			return true
		})
		b.WriteByte('\n')
	}
	return b.String()
}
