// Package elsc implements the ELSC scheduler, the paper's primary
// contribution (§5): a table-based run queue that keeps tasks sorted by
// static goodness so that schedule() examines only a handful of tasks from
// the highest populated list instead of walking the whole queue.
//
// Structure (paper §5.1, Figure 1b):
//
//   - An array of 30 doubly linked lists. Real-time tasks occupy the ten
//     highest lists, indexed by rt_priority/10; SCHED_OTHER tasks are
//     indexed by (counter+priority)/4 into the lower twenty.
//   - A top pointer marks the highest list holding a selectable
//     (non-zero-counter) task; a next_top pointer marks the highest list
//     holding tasks that will become selectable at the next counter
//     recalculation.
//   - Exhausted (zero-counter) tasks are inserted at the *end* of the list
//     chosen by their predicted post-recalculation counter, so the
//     recalculation loop never has to re-index the queue.
//   - Running tasks are manually pulled out of their list but keep a
//     non-nil next pointer so the rest of the kernel still believes they
//     are "on the run queue" (footnote 3).
//
// Behavioral deviations from the stock scheduler, both documented by the
// paper (§5.2): the search is confined to the highest populated list, so a
// task one list down whose affinity/mm bonuses would have out-scored the
// winner is never considered; and a yielding task that is the only
// candidate is simply re-run instead of triggering a recalculation.
package elsc

import (
	"fmt"

	"elsc/internal/klist"
	"elsc/internal/sched"
	"elsc/internal/task"
)

// Table geometry (paper §5.1).
const (
	// DefaultTableSize is the paper's "array of 30 doubly linked lists".
	DefaultTableSize = 30
	// rtLists is how many of the highest lists are reserved for
	// real-time tasks ("it uses one of the ten highest lists").
	rtLists = 10
)

// Config tunes the knobs the paper calls out, for the ablation experiments.
// The zero value selects the paper's settings.
type Config struct {
	// TableSize is the number of lists (default 30).
	TableSize int
	// SearchLimit overrides the per-list examination cap. Zero selects
	// the paper's "half the number of processors in the system plus
	// five".
	SearchLimit int
	// DisableUPShortcut turns off the uniprocessor early exit on a
	// memory-map match (§5.2), for ablation.
	DisableUPShortcut bool
}

// Sched is the ELSC scheduler. Create with New.
type Sched struct {
	env  *sched.Env
	cfg  Config
	size int
	rtLo int // first RT list index

	lists []klist.Head
	// nz counts selectable tasks per list (non-zero counter, or
	// real-time); z counts parked zero-counter tasks awaiting the next
	// recalculation.
	nz []int
	z  []int

	// top is the highest list with nz > 0; nextTop the highest with
	// z > 0; -1 when none. The paper treats these as "zero" pointers;
	// a -1 sentinel is the Go equivalent.
	top     int
	nextTop int

	total int // tasks physically in lists
}

// New returns an ELSC scheduler with the paper's configuration.
func New(env *sched.Env) *Sched { return NewWithConfig(env, Config{}) }

// NewWithConfig returns an ELSC scheduler with explicit knobs.
func NewWithConfig(env *sched.Env, cfg Config) *Sched {
	size := cfg.TableSize
	if size == 0 {
		size = DefaultTableSize
	}
	if size < rtLists+2 {
		panic("elsc: table too small for RT lists plus SCHED_OTHER lists")
	}
	s := &Sched{
		env:     env,
		cfg:     cfg,
		size:    size,
		rtLo:    size - rtLists,
		lists:   make([]klist.Head, size),
		nz:      make([]int, size),
		z:       make([]int, size),
		top:     -1,
		nextTop: -1,
	}
	for i := range s.lists {
		s.lists[i].Init()
	}
	return s
}

// Name implements sched.Scheduler.
func (s *Sched) Name() string { return "elsc" }

// searchLimit is the per-list cap on examined tasks: "currently set to be
// half the number of processors in the system plus five" (§5.2).
func (s *Sched) searchLimit() int {
	if s.cfg.SearchLimit > 0 {
		return s.cfg.SearchLimit
	}
	return s.env.NCPU/2 + 5
}

// indexFor computes the table list for a task with the given effective
// counter: rt_priority/10 into the ten highest lists for real-time tasks,
// (counter+priority)/4 into the rest for SCHED_OTHER (§5.1).
func (s *Sched) indexFor(t *task.Task, counter int) int {
	if t.RealTime() {
		idx := s.rtLo + t.RTPriority/10
		if idx >= s.size {
			idx = s.size - 1
		}
		return idx
	}
	idx := (counter + t.Priority) * (s.rtLo) / (task.MaxPriority*3 + 1)
	// The paper's fixed divisor of 4 assumes 20 SCHED_OTHER lists over a
	// static-goodness range of about 0..80; generalize for ablations
	// over TableSize but reduce to exactly /4 at the default geometry.
	if s.size == DefaultTableSize {
		idx = (counter + t.Priority) / 4
	}
	if idx >= s.rtLo {
		idx = s.rtLo - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// inZeroSection reports whether t was parked as an exhausted task and no
// recalculation has happened since: the zero tag is only valid for the
// epoch it was written in. This makes the recalculation merge O(1): after
// the epoch advances, every parked task's tag silently expires.
func (s *Sched) inZeroSection(t *task.Task) bool {
	return t.QZero && t.QStamp == s.env.Epoch.N()
}

// AddToRunqueue implements the paper's modified add_to_runqueue. Selectable
// tasks go to the front of the list chosen by their current static
// goodness; exhausted tasks go to the *back* of the list chosen by their
// predicted post-recalculation counter.
func (s *Sched) AddToRunqueue(t *task.Task) {
	if t.IsIdle {
		panic("elsc: idle task on run queue")
	}
	if t.OnRunqueue() {
		return
	}
	c := t.Counter(s.env.Epoch)
	if t.RealTime() || c > 0 {
		idx := s.indexFor(t, c)
		s.insertFront(t, idx)
		if idx > s.top {
			s.top = idx
		}
	} else {
		idx := s.indexFor(t, t.PredictedCounter(s.env.Epoch))
		s.lists[idx].PushBack(&t.RunList)
		t.QIndex = idx
		t.QZero = true
		t.QStamp = s.env.Epoch.N()
		s.z[idx]++
		s.total++
		if idx > s.nextTop {
			s.nextTop = idx
		}
	}
}

// insertFront links t at the front of list idx in the selectable section.
func (s *Sched) insertFront(t *task.Task, idx int) {
	s.lists[idx].PushFront(&t.RunList)
	t.QIndex = idx
	t.QZero = false
	t.QStamp = s.env.Epoch.N()
	s.nz[idx]++
	s.total++
}

// zeroBoundary returns the first parked (zero-section) node of list idx,
// or nil if the list has no parked tasks.
func (s *Sched) zeroBoundary(idx int) *klist.Node {
	if s.z[idx] == 0 {
		return nil
	}
	var found *klist.Node
	s.lists[idx].ForEach(func(n *klist.Node) bool {
		if s.inZeroSection(task.FromNode(n)) {
			found = n
			return false
		}
		return true
	})
	return found
}

// DelFromRunqueue removes t. It handles both a task physically in a list
// and a running task that ELSC already pulled out manually (which the rest
// of the kernel still sees as queued).
func (s *Sched) DelFromRunqueue(t *task.Task) {
	if !t.OnRunqueue() {
		return
	}
	if !t.RunList.InListProper() {
		// Manually dequeued while running: just clear the illusion.
		t.RunList.ResetDangling()
		return
	}
	s.unlink(t)
	t.RunList.ResetDangling()
}

// unlink physically removes t from its list via the footnote-3 manual
// dequeue (next stays set) and repairs counts and pointers. Callers that
// want a full removal must also ResetDangling.
func (s *Sched) unlink(t *task.Task) {
	idx := t.QIndex
	t.RunList.UnlinkKeepNext()
	s.total--
	if s.inZeroSection(t) {
		s.z[idx]--
		if idx == s.nextTop && s.z[idx] == 0 {
			s.nextTop = s.scanDown(s.z, idx)
		}
	} else {
		s.nz[idx]--
		if idx == s.top && s.nz[idx] == 0 {
			s.top = s.scanDown(s.nz, idx)
		}
	}
}

// scanDown finds the highest index <= from with a non-zero count, or -1.
func (s *Sched) scanDown(counts []int, from int) int {
	for i := from; i >= 0; i-- {
		if counts[i] > 0 {
			return i
		}
	}
	return -1
}

// MoveFirstRunqueue moves t to the front of its section within its current
// list; the bias only needs to beat goodness ties, and ties can only occur
// within a list (paper §5.1: "we need only to move tasks within their
// current lists").
func (s *Sched) MoveFirstRunqueue(t *task.Task) {
	if !t.OnRunqueue() || !t.RunList.InListProper() {
		return
	}
	idx := t.QIndex
	zero := s.inZeroSection(t)
	s.lists[idx].Remove(&t.RunList)
	if zero {
		if zb := s.zeroBoundary(idx); zb != nil {
			s.lists[idx].InsertBefore(&t.RunList, zb)
		} else {
			s.lists[idx].PushBack(&t.RunList)
		}
	} else {
		s.lists[idx].PushFront(&t.RunList)
	}
}

// MoveLastRunqueue moves t to the back of its section within its current
// list.
func (s *Sched) MoveLastRunqueue(t *task.Task) {
	if !t.OnRunqueue() || !t.RunList.InListProper() {
		return
	}
	idx := t.QIndex
	zero := s.inZeroSection(t)
	s.lists[idx].Remove(&t.RunList)
	if zero {
		s.lists[idx].PushBack(&t.RunList)
	} else {
		if zb := s.zeroBoundary(idx); zb != nil {
			s.lists[idx].InsertBefore(&t.RunList, zb)
		} else {
			s.lists[idx].PushBack(&t.RunList)
		}
	}
}

// Runnable returns the number of selectable tasks in the table. Running
// tasks are not in the table, so no adjustment is needed.
func (s *Sched) Runnable() int { return s.total }

// OnRunqueue reports whether the kernel should consider t queued.
func (s *Sched) OnRunqueue(t *task.Task) bool { return t.OnRunqueue() }

// Top returns the current top list index (-1 if none). For tests.
func (s *Sched) Top() int { return s.top }

// NextTop returns the current next_top list index (-1 if none). For tests.
func (s *Sched) NextTop() int { return s.nextTop }

// ListLen returns the number of tasks in table list idx. For tests.
func (s *Sched) ListLen(idx int) int { return s.lists[idx].Len() }

// ExportRunnable implements sched.Scheduler. Drain order is table list
// 0..size-1, each front to back (selectable section first, then the
// parked zero section). DelFromRunqueue repairs nz/z/top/nextTop as it
// goes; ResetQueueState clears the QZero/QStamp tags ELSC deliberately
// leaves stale on removed tasks.
func (s *Sched) ExportRunnable() []*task.Task {
	out := make([]*task.Task, 0, s.total)
	for i := range s.lists {
		for {
			n := s.lists[i].First()
			if n == nil {
				break
			}
			t := task.FromNode(n)
			s.DelFromRunqueue(t)
			sched.ResetQueueState(t)
			out = append(out, t)
		}
	}
	return out
}

// DrainCPU implements sched.Scheduler. ELSC's 30-list table is global —
// every CPU's Schedule scans it — so an offlined CPU leaves nothing behind.
func (s *Sched) DrainCPU(cpu int, out []*task.Task) []*task.Task { return out }

// checkInvariants panics if the table bookkeeping is inconsistent. Called
// from tests.
func (s *Sched) checkInvariants() {
	total := 0
	for i := range s.lists {
		nz, z := 0, 0
		s.lists[i].ForEach(func(n *klist.Node) bool {
			t := task.FromNode(n)
			if t.QIndex != i {
				panic(fmt.Sprintf("elsc: task %v QIndex=%d but on list %d", t, t.QIndex, i))
			}
			if s.inZeroSection(t) {
				z++
			} else {
				if z > 0 {
					panic(fmt.Sprintf("elsc: selectable task %v behind zero section on list %d", t, i))
				}
				nz++
			}
			return true
		})
		if nz != s.nz[i] || z != s.z[i] {
			panic(fmt.Sprintf("elsc: list %d counts nz=%d z=%d, recorded nz=%d z=%d", i, nz, z, s.nz[i], s.z[i]))
		}
		if s.nz[i] > 0 && i > s.top {
			panic(fmt.Sprintf("elsc: list %d selectable above top=%d", i, s.top))
		}
		if s.z[i] > 0 && i > s.nextTop {
			panic(fmt.Sprintf("elsc: list %d parked above next_top=%d", i, s.nextTop))
		}
		total += s.lists[i].Len()
	}
	if total != s.total {
		panic(fmt.Sprintf("elsc: total=%d, lists hold %d", s.total, total))
	}
	if s.top >= 0 && s.nz[s.top] == 0 {
		panic("elsc: top points at list with no selectable tasks")
	}
	if s.nextTop >= 0 && s.z[s.nextTop] == 0 {
		panic("elsc: next_top points at list with no parked tasks")
	}
}
