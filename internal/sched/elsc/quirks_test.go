package elsc

import (
	"strings"
	"testing"
	"testing/quick"

	"elsc/internal/sched"
	"elsc/internal/sim"
	"elsc/internal/task"
)

// Additional tests for the paper's subtler ELSC mechanics: real-time
// tasks in the table, the on-queue illusion, and liveness under random
// multiprocessor schedules.

func TestRTNeverParked(t *testing.T) {
	// Real-time tasks are always selectable: even with counter zero they
	// must not land in the parked zero section.
	env := newEnv(1, 0)
	s := New(env)
	rr := task.NewRT(1, "rr", task.RR, 30, env.Epoch)
	rr.SetCounter(env.Epoch, 0)
	s.AddToRunqueue(rr)
	if s.Top() < 0 {
		t.Fatal("RT task did not set top")
	}
	res := s.Schedule(0, idlePrev())
	if res.Next != rr {
		t.Fatalf("picked %v, want the RT task despite zero counter", res.Next)
	}
	if res.Recalcs != 0 {
		t.Fatal("RT selection must not recalculate")
	}
}

func TestRTListsAboveAllRegularLists(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	rt := task.NewRT(1, "rt", task.FIFO, 0, env.Epoch) // lowest RT priority
	best := mkTask(env, 2, task.MaxPriority, 2*task.MaxPriority)
	s.AddToRunqueue(rt)
	s.AddToRunqueue(best)
	if rt.QIndex <= best.QIndex {
		t.Fatalf("rt list %d must be above the best regular list %d", rt.QIndex, best.QIndex)
	}
}

func TestWakeOfDanglingTaskIsIgnored(t *testing.T) {
	// A running task still "on the run queue" (footnote 3) must not be
	// double-inserted by a stray AddToRunqueue.
	env := newEnv(1, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	s.AddToRunqueue(a)
	res := s.Schedule(0, idlePrev())
	dispatch(res.Next, 0)

	s.AddToRunqueue(a) // stray wake while running
	if s.Runnable() != 0 {
		t.Fatal("dangling task was re-inserted")
	}
	s.checkInvariants()
}

func TestMoveOpsOnDanglingAreNoops(t *testing.T) {
	env := newEnv(1, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	s.AddToRunqueue(a)
	res := s.Schedule(0, idlePrev())
	dispatch(res.Next, 0)
	s.MoveFirstRunqueue(a)
	s.MoveLastRunqueue(a)
	s.checkInvariants()
}

func TestRepeatedRecalcCycles(t *testing.T) {
	// Drive several full exhaust/recalculate cycles and check the table
	// invariants survive each one.
	env := newEnv(1, 3)
	s := New(env)
	tasks := []*task.Task{
		mkTask(env, 1, 30, 0),
		mkTask(env, 2, 20, 0),
		mkTask(env, 3, 10, 0),
	}
	for _, tk := range tasks {
		s.AddToRunqueue(tk)
	}
	for cycle := 0; cycle < 5; cycle++ {
		res := s.Schedule(0, idlePrev())
		if res.Next == nil {
			t.Fatalf("cycle %d: no task chosen", cycle)
		}
		s.checkInvariants()
		// Exhaust the chosen task and return it.
		dispatch(res.Next, 0)
		res.Next.SetCounter(env.Epoch, 0)
		res2 := s.Schedule(0, res.Next)
		res.Next.HasCPU = false
		if res2.Next != nil {
			dispatch(res2.Next, 0)
			res2.Next.SetCounter(env.Epoch, 0)
			res2.Next.HasCPU = false
			// Block it so the table drains toward exhaustion.
			res2.Next.State = task.Interruptible
			s.Schedule(0, res2.Next)
			res2.Next.State = task.Running
			s.AddToRunqueue(res2.Next)
		}
		s.checkInvariants()
	}
}

func TestBusyTasksConsumeSearchLimit(t *testing.T) {
	// On SMP, tasks running elsewhere still consume the examination
	// budget — that is why the paper sizes the limit by processor count.
	env := sched.NewEnv(8, true, func() int { return 16 })
	s := New(env)
	limit := env.NCPU/2 + 5 // 9
	// Fill the top list with busy tasks beyond the limit, plus one
	// free task at the back.
	for i := 0; i < limit; i++ {
		busy := mkTask(env, i, 20, 10)
		s.AddToRunqueue(busy)
		busy.HasCPU = true
		busy.Processor = 1
	}
	free := mkTask(env, 99, 20, 10)
	s.AddToRunqueue(free)
	s.MoveLastRunqueue(free)

	res := s.Schedule(0, idlePrev())
	// All nine examinations go to busy tasks; the free task at position
	// limit+1 is never reached, and the scan falls through to lower
	// lists (none) — so the CPU idles. This is the documented cost of
	// the bounded search.
	if res.Next != nil {
		t.Fatalf("picked %v; the free task should be shadowed by the limit", res.Next)
	}
	if res.Examined > limit {
		t.Fatalf("examined %d, limit %d", res.Examined, limit)
	}
}

func TestLivenessUnderRandomSMPSchedules(t *testing.T) {
	// Whenever a selectable task exists, schedule() must find one:
	// no configuration of parked/busy tasks may wedge the table.
	f := func(seed int64, n8 uint8) bool {
		rng := sim.NewRNG(seed)
		n := int(n8%12) + 1
		env := sched.NewEnv(2, true, func() int { return n })
		s := New(env)
		tasks := make([]*task.Task, n)
		for i := range tasks {
			tk := mkTask(env, i, 1+rng.Intn(40), 0)
			tk.SetCounter(env.Epoch, rng.Intn(2*tk.Priority+1))
			tasks[i] = tk
			s.AddToRunqueue(tk)
		}
		res := s.Schedule(0, idlePrev())
		// With every task present and none busy, the only no-pick
		// outcome allowed is an empty table — impossible here. Even if
		// all counters were zero, the recalculation path must produce
		// a winner.
		if res.Next == nil {
			return false
		}
		s.checkInvariants()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCounterWakeGoesToPredictedList(t *testing.T) {
	// A task that blocks at the exact moment its quantum dies wakes with
	// counter zero and must be parked at its predicted slot, not lost.
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 0)
	s.AddToRunqueue(a)
	if s.NextTop() < 0 {
		t.Fatal("zero-counter wake not parked")
	}
	// A selectable task must still win without recalculation.
	b := mkTask(env, 2, 20, 5)
	s.AddToRunqueue(b)
	res := s.Schedule(0, idlePrev())
	if res.Next != b || res.Recalcs != 0 {
		t.Fatalf("picked %v with %d recalcs, want %v with 0", res.Next, res.Recalcs, b)
	}
}

func TestUPShortcutIgnoresNilMM(t *testing.T) {
	// Kernel threads (nil mm) must not trigger the mm-match shortcut.
	env := newEnv(1, 0) // UP
	s := New(env)
	a := mkTask(env, 1, 20, 10) // nil MM
	b := mkTask(env, 2, 20, 12) // nil MM, better counter
	s.AddToRunqueue(b)
	s.AddToRunqueue(a) // front
	prev := idlePrev() // nil MM
	res := s.Schedule(0, prev)
	if res.Next != b {
		t.Fatalf("picked %v, want %v (no phantom mm match)", res.Next, b)
	}
}

func TestDumpShowsFigure1bStructure(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	a := mkTask(env, 1, 20, 20) // sg 40, list 10
	a.Name = "forty"
	b := mkTask(env, 2, 20, 12) // sg 32, list 8
	b.Name = "thirtytwo"
	parked := mkTask(env, 3, 20, 0)
	parked.Name = "spent"
	rt := task.NewRT(4, "rtguy", task.FIFO, 55, env.Epoch)
	for _, tk := range []*task.Task{a, b, parked, rt} {
		s.AddToRunqueue(tk)
	}
	out := s.Dump()
	for _, want := range []string{"forty sg=40", "thirtytwo sg=32", "(spent c=0)", "rtguy rt=55", "top=25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// Higher lists must print before lower ones.
	if strings.Index(out, "rtguy") > strings.Index(out, "forty") {
		t.Fatalf("dump not ordered high-to-low:\n%s", out)
	}
}
