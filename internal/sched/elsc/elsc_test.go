package elsc

import (
	"testing"
	"testing/quick"

	"elsc/internal/sched"
	"elsc/internal/sim"
	"elsc/internal/task"
)

func newEnv(ncpu int, ntasks int) *sched.Env {
	return sched.NewEnv(ncpu, ncpu > 1, func() int { return ntasks })
}

func mkTask(env *sched.Env, id, prio, counter int) *task.Task {
	t := task.New(id, "t", nil, env.Epoch)
	t.Priority = prio
	t.SetCounter(env.Epoch, counter)
	return t
}

func idlePrev() *task.Task {
	t := task.New(-1, "idle", nil, nil)
	t.IsIdle = true
	return t
}

// dispatch marks t as the kernel would after Schedule returned it.
func dispatch(t *task.Task, cpu int) {
	t.HasCPU = true
	t.Processor = cpu
	t.EverRan = true
}

func TestIndexForDefaultGeometry(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	// SCHED_OTHER: (counter+priority)/4.
	reg := mkTask(env, 1, 20, 13)
	if idx := s.indexFor(reg, 13); idx != (13+20)/4 {
		t.Fatalf("index = %d, want %d", idx, (13+20)/4)
	}
	// Clamped to the SCHED_OTHER region.
	big := mkTask(env, 2, 40, 80)
	if idx := s.indexFor(big, 80); idx != 19 {
		t.Fatalf("index = %d, want clamp to 19", idx)
	}
	// Real-time: one of the ten highest lists, rt_priority/10.
	rt := task.NewRT(3, "rt", task.FIFO, 57, env.Epoch)
	if idx := s.indexFor(rt, 0); idx != 20+5 {
		t.Fatalf("rt index = %d, want 25", idx)
	}
	rt99 := task.NewRT(4, "rt", task.RR, 99, env.Epoch)
	if idx := s.indexFor(rt99, 0); idx != 29 {
		t.Fatalf("rt99 index = %d, want 29", idx)
	}
}

func TestAddSetsTop(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	if s.Top() != -1 || s.NextTop() != -1 {
		t.Fatal("fresh table should have no top/next_top")
	}
	a := mkTask(env, 1, 20, 10)
	s.AddToRunqueue(a)
	if s.Top() != (10+20)/4 {
		t.Fatalf("top = %d, want %d", s.Top(), (10+20)/4)
	}
	if s.NextTop() != -1 {
		t.Fatal("next_top should be unset for selectable tasks")
	}
}

func TestZeroCounterParksAtPredictedIndex(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	a := mkTask(env, 1, 20, 0)
	s.AddToRunqueue(a)
	// Predicted counter = 0/2 + 20 = 20, so index (20+20)/4 = 10.
	if s.Top() != -1 {
		t.Fatal("exhausted task must not set top")
	}
	if s.NextTop() != 10 {
		t.Fatalf("next_top = %d, want 10", s.NextTop())
	}
	if s.ListLen(10) != 1 {
		t.Fatal("task not in predicted list")
	}
	s.checkInvariants()
}

func TestParkedTasksSitBehindSelectable(t *testing.T) {
	// A zero-counter task and a selectable task that land on the same
	// list: the parked one must be at the back, out of the way.
	env := newEnv(1, 0)
	s := New(env)
	parked := mkTask(env, 1, 20, 0) // predicted 20 -> list 10
	s.AddToRunqueue(parked)
	live := mkTask(env, 2, 20, 21) // (21+20)/4 = 10
	s.AddToRunqueue(live)
	if s.ListLen(10) != 2 {
		t.Fatalf("expected both tasks on list 10")
	}
	s.checkInvariants() // would panic if parked sat in front
	res := s.Schedule(0, idlePrev())
	if res.Next != live {
		t.Fatalf("picked %v, want selectable %v", res.Next, live)
	}
}

func TestPredictedIndexMatchesPostRecalcIndex(t *testing.T) {
	// The core ELSC trick: after the recalculation, a parked task is
	// already in the right list.
	f := func(prio8 uint8) bool {
		prio := int(prio8%task.MaxPriority) + 1
		env := newEnv(1, 1)
		s := New(env)
		tk := mkTask(env, 1, prio, 0)
		s.AddToRunqueue(tk)
		parkedAt := tk.QIndex
		env.Epoch.Bump() // the recalculation
		// Where would AddToRunqueue put it now that its counter has
		// been recalculated?
		c := tk.Counter(env.Epoch)
		return parkedAt == s.indexFor(tk, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulePicksFromTopList(t *testing.T) {
	env := newEnv(1, 3)
	s := New(env)
	lo := mkTask(env, 1, 10, 5)   // list (5+10)/4 = 3
	hi := mkTask(env, 2, 20, 30)  // list (30+20)/4 = 12
	mid := mkTask(env, 3, 20, 10) // list (10+20)/4 = 7
	s.AddToRunqueue(lo)
	s.AddToRunqueue(hi)
	s.AddToRunqueue(mid)
	res := s.Schedule(0, idlePrev())
	if res.Next != hi {
		t.Fatalf("picked %v, want %v from top list", res.Next, hi)
	}
	// Only the top list is searched: one task examined, not three.
	if res.Examined != 1 {
		t.Fatalf("examined = %d, want 1", res.Examined)
	}
}

func TestChosenTaskLeavesListButLooksQueued(t *testing.T) {
	// Footnote 3: the running task is pulled out of its list manually
	// but the rest of the kernel must still see it "on the run queue".
	env := newEnv(1, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	s.AddToRunqueue(a)
	res := s.Schedule(0, idlePrev())
	if res.Next != a {
		t.Fatal("should pick the only task")
	}
	if !a.OnRunqueue() {
		t.Fatal("chosen task must still appear on the run queue")
	}
	if a.RunList.InListProper() {
		t.Fatal("chosen task must not be physically in any list")
	}
	if s.Runnable() != 0 {
		t.Fatalf("runnable = %d, want 0", s.Runnable())
	}
	s.checkInvariants()
}

func TestPrevReinsertedAndRescheduled(t *testing.T) {
	// A quantum-expired (but still runnable) prev goes back in the
	// table and competes normally.
	env := newEnv(1, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	s.AddToRunqueue(a)
	res := s.Schedule(0, idlePrev())
	dispatch(res.Next, 0)

	res2 := s.Schedule(0, a)
	if res2.Next != a {
		t.Fatalf("picked %v, want prev re-selected", res2.Next)
	}
	s.checkInvariants()
}

func TestBlockedPrevFullyDequeued(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	b := mkTask(env, 2, 20, 10)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)
	res := s.Schedule(0, idlePrev())
	chosen := res.Next
	dispatch(chosen, 0)
	chosen.State = task.Interruptible

	res2 := s.Schedule(0, chosen)
	if res2.Next == chosen {
		t.Fatal("blocked task re-picked")
	}
	if chosen.OnRunqueue() {
		t.Fatal("blocked prev must be fully off the run queue")
	}
	s.checkInvariants()
}

func TestYieldingSoleTaskRerunsWithoutRecalc(t *testing.T) {
	// The paper's deliberate deviation (§5.2, Figure 2): a yielding task
	// that is the only candidate is re-run, not recalculated.
	env := newEnv(1, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	s.AddToRunqueue(a)
	res := s.Schedule(0, idlePrev())
	dispatch(res.Next, 0)
	a.Yielded = true

	res2 := s.Schedule(0, a)
	if res2.Next != a {
		t.Fatalf("picked %v, want the yielding task re-run", res2.Next)
	}
	if res2.Recalcs != 0 {
		t.Fatal("ELSC must not recalculate for a lone yielder")
	}
	if env.Epoch.N() != 0 {
		t.Fatal("epoch must not advance")
	}
	if a.Yielded {
		t.Fatal("yield bit must be cleared at the end of schedule()")
	}
}

func TestYieldLosesToCompetitorInList(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	b := mkTask(env, 2, 20, 10) // same list as a
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)
	res := s.Schedule(0, idlePrev())
	chosen := res.Next
	dispatch(chosen, 0)
	chosen.Yielded = true

	res2 := s.Schedule(0, chosen)
	if res2.Next == chosen {
		t.Fatal("yielded task must lose to a same-list competitor")
	}
}

func TestYieldedPrevPreferredOverDescendingLists(t *testing.T) {
	// "We will run it only if we cannot find another task on the list" —
	// the fallback applies within the top list; ELSC does not descend to
	// a lower list to dodge the yielder.
	env := newEnv(1, 2)
	s := New(env)
	y := mkTask(env, 1, 20, 12) // list 8
	lo := mkTask(env, 2, 20, 4) // list 6
	s.AddToRunqueue(y)
	s.AddToRunqueue(lo)
	res := s.Schedule(0, idlePrev())
	if res.Next != y {
		t.Fatalf("setup: expected y to be chosen first")
	}
	dispatch(y, 0)
	y.Yielded = true

	res2 := s.Schedule(0, y)
	if res2.Next != y {
		t.Fatalf("picked %v, want yielded prev from top list", res2.Next)
	}
}

func TestExhaustionRecalculatesAndMerges(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 0)
	b := mkTask(env, 2, 10, 0)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)
	if s.Top() != -1 {
		t.Fatal("setup: no selectable tasks expected")
	}

	res := s.Schedule(0, idlePrev())
	if res.Recalcs != 1 {
		t.Fatalf("recalcs = %d, want 1", res.Recalcs)
	}
	// After recalc, a has counter 20 (static 40 -> list 10), b counter
	// 10 (static 20 -> list 5): a wins.
	if res.Next != a {
		t.Fatalf("picked %v, want %v", res.Next, a)
	}
	if s.NextTop() != -1 {
		t.Fatal("next_top must clear after the merge")
	}
	s.checkInvariants()
}

func TestEmptyTableIdlesWithoutRecalc(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	res := s.Schedule(0, idlePrev())
	if res.Next != nil || res.Recalcs != 0 {
		t.Fatal("empty table must idle without recalculating")
	}
}

func TestSkipsTaskRunningElsewhere(t *testing.T) {
	env := newEnv(2, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	b := mkTask(env, 2, 20, 10)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)
	res := s.Schedule(1, idlePrev())
	first := res.Next
	dispatch(first, 1)

	res2 := s.Schedule(0, idlePrev())
	if res2.Next == first || res2.Next == nil {
		t.Fatalf("CPU 0 picked %v, want the other task", res2.Next)
	}
}

func TestDescendsWhenTopListAllBusy(t *testing.T) {
	// "If all tasks in the list are eliminated by this check, then we
	// consider the next populated list and try again."
	env := newEnv(2, 2)
	s := New(env)
	hi := mkTask(env, 1, 20, 30) // list 12
	lo := mkTask(env, 2, 20, 10) // list 7
	s.AddToRunqueue(hi)
	s.AddToRunqueue(lo)
	res := s.Schedule(1, idlePrev())
	if res.Next != hi {
		t.Fatal("setup: hi should be chosen")
	}
	dispatch(hi, 1)
	// hi is gone from the table (manual dequeue), so this exercises the
	// descend path via an artificially busy task instead: re-add a busy
	// marker task to the top list.
	busy := mkTask(env, 3, 20, 30)
	s.AddToRunqueue(busy)
	busy.HasCPU = true
	busy.Processor = 1

	res2 := s.Schedule(0, idlePrev())
	if res2.Next != lo {
		t.Fatalf("picked %v, want %v from a lower list", res2.Next, lo)
	}
}

func TestSearchLimitCapsExamination(t *testing.T) {
	// All tasks in one list: ELSC examines at most ncpu/2+5 of them.
	env := newEnv(1, 64)
	s := New(env)
	for i := 0; i < 64; i++ {
		s.AddToRunqueue(mkTask(env, i, 20, 10))
	}
	res := s.Schedule(0, idlePrev())
	limit := env.NCPU/2 + 5
	if res.Examined > limit {
		t.Fatalf("examined = %d, want <= %d", res.Examined, limit)
	}
	if res.Next == nil {
		t.Fatal("must still pick a task")
	}
}

func TestSearchLimitConfigOverride(t *testing.T) {
	env := newEnv(1, 64)
	s := NewWithConfig(env, Config{SearchLimit: 2})
	for i := 0; i < 10; i++ {
		s.AddToRunqueue(mkTask(env, i, 20, 10))
	}
	res := s.Schedule(0, idlePrev())
	if res.Examined > 2 {
		t.Fatalf("examined = %d, want <= 2", res.Examined)
	}
}

func TestUPShortcutStopsAtMMMatch(t *testing.T) {
	env := newEnv(1, 0) // UP build
	s := New(env)
	mm := &task.MM{ID: 7}
	other := &task.MM{ID: 8}
	// Front of list: different mm; then an mm match; then more tasks.
	c := mkTask(env, 3, 20, 10)
	c.MM = mm
	b := mkTask(env, 2, 20, 10)
	b.MM = other
	a := mkTask(env, 1, 20, 10)
	a.MM = other
	s.AddToRunqueue(c) // back
	s.AddToRunqueue(b)
	s.AddToRunqueue(a) // front
	prev := idlePrev()
	prev.MM = mm

	res := s.Schedule(0, prev)
	if res.Next != c {
		t.Fatalf("picked %v, want mm-matching %v", res.Next, c)
	}
	if res.Examined != 3 {
		t.Fatalf("examined = %d, want 3 (stop right at the match)", res.Examined)
	}
}

func TestUPShortcutDisabledByConfig(t *testing.T) {
	env := newEnv(1, 0)
	s := NewWithConfig(env, Config{DisableUPShortcut: true})
	mm := &task.MM{ID: 7}
	// An mm match early, but a higher-counter task later in the list.
	better := mkTask(env, 2, 20, 13) // same list: (13+20)/4 = 8
	match := mkTask(env, 1, 20, 12)  // (12+20)/4 = 8
	match.MM = mm
	s.AddToRunqueue(better)
	s.AddToRunqueue(match) // front
	prev := idlePrev()
	prev.MM = mm
	res := s.Schedule(0, prev)
	// Without the shortcut, goodness comparison runs: match has 12+20+1
	// = 33, better has 13+20 = 33 — tie, first examined (match) wins.
	// Raise better's counter by 1 to break the tie for the test's sake.
	_ = res
	env2 := newEnv(1, 0)
	s2 := NewWithConfig(env2, Config{DisableUPShortcut: true})
	better2 := mkTask(env2, 2, 20, 15) // goodness 35
	match2 := mkTask(env2, 1, 20, 12)  // goodness 33 w/ bonus
	match2.MM = mm
	s2.AddToRunqueue(better2)
	s2.AddToRunqueue(match2)
	prev2 := idlePrev()
	prev2.MM = mm
	res2 := s2.Schedule(0, prev2)
	if res2.Next != better2 {
		t.Fatalf("picked %v, want %v (no shortcut)", res2.Next, better2)
	}
}

func TestSMPKeepsSearchingPastMMMatch(t *testing.T) {
	env := newEnv(2, 0) // SMP build: no shortcut
	s := New(env)
	mm := &task.MM{ID: 7}
	affine := mkTask(env, 2, 20, 12)
	affine.EverRan = true
	affine.Processor = 0 // 15-point bonus on CPU 0
	match := mkTask(env, 1, 20, 12)
	match.MM = mm // only a 1-point bonus
	s.AddToRunqueue(affine)
	s.AddToRunqueue(match) // front
	prev := idlePrev()
	prev.MM = mm
	res := s.Schedule(0, prev)
	if res.Next != affine {
		t.Fatalf("picked %v, want affinity-bonused %v", res.Next, affine)
	}
}

func TestRTSelectsHighestRTPriority(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	lo := task.NewRT(1, "lo", task.FIFO, 51, env.Epoch)
	hi := task.NewRT(2, "hi", task.FIFO, 58, env.Epoch)
	s.AddToRunqueue(lo)
	s.AddToRunqueue(hi)
	// Same list (both 5x), highest rt_priority wins.
	res := s.Schedule(0, idlePrev())
	if res.Next != hi {
		t.Fatalf("picked %v, want %v", res.Next, hi)
	}
}

func TestRTBeatsRegularAlways(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	reg := mkTask(env, 1, 40, 80)
	rt := task.NewRT(2, "rt", task.FIFO, 0, env.Epoch)
	s.AddToRunqueue(reg)
	s.AddToRunqueue(rt)
	res := s.Schedule(0, idlePrev())
	if res.Next != rt {
		t.Fatalf("picked %v, want RT task (lives in a higher list)", res.Next)
	}
}

func TestRRExpiryMovesToSectionEnd(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	rr := task.NewRT(1, "rr", task.RR, 10, env.Epoch)
	peer := task.NewRT(2, "peer", task.RR, 10, env.Epoch)
	s.AddToRunqueue(rr)
	s.AddToRunqueue(peer)
	res := s.Schedule(0, idlePrev())
	first := res.Next
	dispatch(first, 0)
	first.SetCounter(env.Epoch, 0) // quantum exhausted

	res2 := s.Schedule(0, first)
	if res2.Next == first {
		t.Fatal("expired RR task must lose its position to its peer")
	}
	if first.Counter(env.Epoch) != first.Priority {
		t.Fatal("expired RR task must get a fresh quantum")
	}
	s.checkInvariants()
}

func TestSchedulerCostIndependentOfQueueDepth(t *testing.T) {
	// The headline claim: ELSC cost does not grow with runnable count.
	costAt := func(n int) uint64 {
		env := newEnv(1, n)
		s := New(env)
		for i := 0; i < n; i++ {
			s.AddToRunqueue(mkTask(env, i, 20, 1+i%39))
		}
		return s.Schedule(0, idlePrev()).Cycles
	}
	c10, c1000 := costAt(10), costAt(1000)
	if c1000 > c10*3 {
		t.Fatalf("ELSC cost grew with queue depth: %d at 10 vs %d at 1000", c10, c1000)
	}
}

func TestMoveFirstLastWithinList(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	b := mkTask(env, 2, 20, 10)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b) // front: b
	s.MoveFirstRunqueue(a)
	res := s.Schedule(0, idlePrev())
	if res.Next != a {
		t.Fatalf("picked %v, want %v after MoveFirst", res.Next, a)
	}
	s.checkInvariants()
}

func TestMoveLastStaysAheadOfParked(t *testing.T) {
	// Moving a selectable task "last" must keep it ahead of the parked
	// zero-counter section ("These functions behave appropriately when
	// faced with mixed-counter lists").
	env := newEnv(1, 0)
	s := New(env)
	parked := mkTask(env, 1, 20, 0) // predicted -> list 10
	s.AddToRunqueue(parked)
	live1 := mkTask(env, 2, 20, 20) // (20+20)/4 = 10
	live2 := mkTask(env, 3, 20, 20) // same goodness: a true tie
	s.AddToRunqueue(live1)
	s.AddToRunqueue(live2)
	s.MoveLastRunqueue(live2)
	s.checkInvariants() // live2 must not be behind parked
	res := s.Schedule(0, idlePrev())
	if res.Next != live1 {
		t.Fatalf("picked %v, want %v (live2 moved last)", res.Next, live1)
	}
}

func TestDelFromRunqueueParked(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	parked := mkTask(env, 1, 20, 0)
	s.AddToRunqueue(parked)
	s.DelFromRunqueue(parked)
	if s.NextTop() != -1 {
		t.Fatal("next_top must clear when the last parked task leaves")
	}
	if parked.OnRunqueue() {
		t.Fatal("task must be off queue")
	}
	s.checkInvariants()
}

func TestTableSizeTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny table should panic")
		}
	}()
	NewWithConfig(newEnv(1, 0), Config{TableSize: 5})
}

func TestPriorityChangeReindexes(t *testing.T) {
	// "its priority almost never changes, though when it does, the ELSC
	// scheduler adapts accordingly" — via del + add.
	env := newEnv(1, 0)
	s := New(env)
	a := mkTask(env, 1, 10, 10) // list (10+10)/4 = 5
	s.AddToRunqueue(a)
	if a.QIndex != 5 {
		t.Fatalf("setup: index %d", a.QIndex)
	}
	s.DelFromRunqueue(a)
	a.Priority = 40
	s.AddToRunqueue(a)
	if a.QIndex != (10+40)/4 {
		t.Fatalf("index = %d after priority change, want %d", a.QIndex, (10+40)/4)
	}
	s.checkInvariants()
}

// TestRandomOpsInvariants drives the scheduler with random kernel-like
// operation sequences and validates the full table invariant set after
// every step.
func TestRandomOpsInvariants(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		rng := sim.NewRNG(seed)
		env := newEnv(1+rng.Intn(4), 32)
		s := New(env)
		mms := []*task.MM{nil, {ID: 1}, {ID: 2}}
		pool := make([]*task.Task, 32)
		for i := range pool {
			tk := mkTask(env, i, 1+rng.Intn(40), 0)
			tk.SetCounter(env.Epoch, rng.Intn(2*tk.Priority+1))
			tk.MM = mms[rng.Intn(3)]
			pool[i] = tk
		}
		var running []*task.Task // dispatched tasks per fake CPU

		for _, op := range ops {
			tk := pool[int(op)%len(pool)]
			switch int(op) % 5 {
			case 0:
				if !tk.OnRunqueue() && !tk.HasCPU {
					tk.State = task.Running
					s.AddToRunqueue(tk)
				}
			case 1:
				if tk.OnRunqueue() && tk.RunList.InListProper() {
					s.DelFromRunqueue(tk)
				}
			case 2:
				if tk.OnRunqueue() && tk.RunList.InListProper() {
					if op%2 == 0 {
						s.MoveFirstRunqueue(tk)
					} else {
						s.MoveLastRunqueue(tk)
					}
				}
			case 3: // schedule on a random CPU
				cpu := rng.Intn(env.NCPU)
				res := s.Schedule(cpu, idlePrev())
				if res.Next != nil {
					dispatch(res.Next, cpu)
					running = append(running, res.Next)
				}
			case 4: // a running task re-enters schedule as prev
				if len(running) == 0 {
					continue
				}
				i := rng.Intn(len(running))
				prev := running[i]
				running = append(running[:i], running[i+1:]...)
				if rng.Intn(3) == 0 {
					prev.State = task.Interruptible
				}
				if rng.Intn(4) == 0 {
					prev.Yielded = true
				}
				res := s.Schedule(prev.Processor, prev)
				prev.HasCPU = false
				if res.Next != nil {
					dispatch(res.Next, prev.Processor)
					running = append(running, res.Next)
				}
				prev.State = task.Running
			}
			s.checkInvariants()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBehavesLikeVanillaWithinOneList checks the paper's goal 3 in the
// regime where it holds exactly: when all runnable tasks share one table
// list and fit under the search limit, ELSC's pick agrees with a
// brute-force goodness argmax (front-of-list tie bias included).
func TestBehavesLikeVanillaWithinOneList(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%4) + 2 // 2..5 tasks, under the limit of 5
		rng := sim.NewRNG(seed)
		// The paper's "1P" configuration: SMP kernel on one processor,
		// so the UP mm-match shortcut (a documented deviation) is off.
		env := sched.NewEnv(1, true, func() int { return n })
		s := New(env)
		mms := []*task.MM{nil, {ID: 1}}
		tasks := make([]*task.Task, n)
		for i := range tasks {
			// Same priority, counters within one bucket: all in
			// list (20+8..11)/4 = 7.
			tk := mkTask(env, i, 20, 8+rng.Intn(3))
			tk.MM = mms[rng.Intn(2)]
			tasks[i] = tk
			s.AddToRunqueue(tk)
		}
		prev := idlePrev()
		prev.MM = mms[1]
		res := s.Schedule(0, prev)

		best := (*task.Task)(nil)
		bestW := -1
		for i := n - 1; i >= 0; i-- { // front of list = last added
			w := sched.Goodness(env.Epoch, tasks[i], 0, prev.MM)
			if w > bestW {
				bestW = w
				best = tasks[i]
			}
		}
		return res.Next == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestNoTaskLost verifies conservation: tasks added are always either in
// the table, or running (manually dequeued), or deleted — never silently
// dropped by schedule churn.
func TestNoTaskLost(t *testing.T) {
	env := newEnv(2, 16)
	s := New(env)
	pool := make([]*task.Task, 16)
	for i := range pool {
		pool[i] = mkTask(env, i, 20, i%41)
		s.AddToRunqueue(pool[i])
	}
	rng := sim.NewRNG(99)
	var prev *task.Task
	prevCPU := 0
	for step := 0; step < 2000; step++ {
		p := idlePrev()
		if prev != nil {
			p = prev
			if rng.Intn(5) == 0 {
				p.Yielded = true
			}
		}
		res := s.Schedule(prevCPU, p)
		if prev != nil {
			prev.HasCPU = false
		}
		if res.Next != nil {
			dispatch(res.Next, prevCPU)
		}
		prev = res.Next
		s.checkInvariants()

		inTable := s.Runnable()
		running := 0
		if prev != nil {
			running = 1
		}
		if inTable+running != len(pool) {
			t.Fatalf("step %d: %d in table + %d running != %d tasks",
				step, inTable, running, len(pool))
		}
	}
}
