package o1

import (
	"fmt"
	"testing"

	"elsc/internal/klist"
	"elsc/internal/sched"
	"elsc/internal/task"
)

// The priority-array property test: random sequences of kernel-shaped
// operations — enqueue, dequeue, schedule (which expires, swaps, and
// steals), move-first/move-last, bonus credit/drain, counter edits, tick
// rotation — must keep the FFS bitmap exactly consistent with list
// occupancy and never lose or duplicate a task. Every byte pair of the
// fuzz input drives one operation, and the full invariant is checked
// after each, so a shrunk counterexample points at the first corrupting
// op rather than a downstream symptom.

const (
	fuzzCPUs  = 2
	fuzzTasks = 6
)

// fuzzRig is a kernel-faithful harness around one Sched: it tracks which
// task each CPU runs and performs the HasCPU flips exactly as
// kernel.reschedule does.
type fuzzRig struct {
	env     *sched.Env
	s       *Sched
	tasks   []*task.Task
	idles   []*task.Task
	current []*task.Task
}

func newFuzzRig() *fuzzRig {
	env := sched.NewEnv(fuzzCPUs, true, func() int { return fuzzTasks })
	r := &fuzzRig{
		env:     env,
		s:       NewWithConfig(env, Config{StarvationLimit: 8, GranularityTicks: 2}),
		current: make([]*task.Task, fuzzCPUs),
	}
	for i := 0; i < fuzzTasks; i++ {
		tk := task.New(i+1, fmt.Sprintf("f%d", i), nil, env.Epoch)
		tk.Priority = 1 + (i*7)%task.MaxPriority
		tk.SetCounter(env.Epoch, 1+i%8)
		r.tasks = append(r.tasks, tk)
	}
	for i := 0; i < fuzzCPUs; i++ {
		idle := task.New(-(i + 1), fmt.Sprintf("idle/%d", i), nil, nil)
		idle.IsIdle = true
		idle.Processor = i
		r.idles = append(r.idles, idle)
	}
	return r
}

// schedule mirrors kernel.reschedule's calling convention.
func (r *fuzzRig) schedule(cpu int) {
	prev := r.current[cpu]
	prevTask := r.idles[cpu]
	if prev != nil {
		prevTask = prev
	}
	r.current[cpu] = nil
	res := r.s.Schedule(cpu, prevTask)
	if prev != nil {
		prev.HasCPU = false
	}
	if next := res.Next; next != nil {
		next.HasCPU = true
		next.Processor = cpu
		next.EverRan = true
		r.current[cpu] = next
	}
}

// step applies one fuzz operation.
func (r *fuzzRig) step(op, arg byte) {
	tk := r.tasks[int(arg)%len(r.tasks)]
	cpu := int(arg) % fuzzCPUs
	max := r.env.Cost.MaxSleepAvg
	switch op % 11 {
	case 0:
		tk.State = task.Running
		if !tk.HasCPU {
			r.s.AddToRunqueue(tk)
		}
	case 1:
		r.s.DelFromRunqueue(tk)
	case 2:
		r.schedule(cpu)
	case 3: // current blocks, then the CPU re-schedules (dequeue path)
		if cur := r.current[cpu]; cur != nil {
			cur.State = task.Interruptible
		}
		r.schedule(cpu)
	case 4: // current yields
		if cur := r.current[cpu]; cur != nil {
			cur.Yielded = true
		}
		r.schedule(cpu)
	case 5:
		tk.CreditSleep(uint64(arg)*max/255, max)
	case 6:
		tk.DrainRun(uint64(arg) * max / 64)
	case 7:
		tk.SetCounter(r.env.Epoch, int(arg)%tk.MaxCounter())
	case 8:
		if arg%2 == 0 {
			r.s.MoveFirstRunqueue(tk)
		} else {
			r.s.MoveLastRunqueue(tk)
		}
	case 9: // tick: granularity rotation / better-level preemption
		if cur := r.current[cpu]; cur != nil {
			if preempt, _ := r.s.TickPreempt(cpu, cur); preempt {
				r.schedule(cpu)
			}
		}
	case 10: // SD_WAKE_IDLE placement hint
		tk.State = task.Running
		if !tk.HasCPU {
			r.s.PlaceWake(tk, cpu)
		}
	}
}

// checkInvariants walks every list of every array on every queue and
// cross-checks bitmap bits, per-array counts, task stamps, Runnable, and
// global no-loss/no-duplication against the harness's running set.
func (r *fuzzRig) checkInvariants() error {
	queued := make(map[*task.Task]int)
	total := 0
	for q := range r.s.rqs {
		rq := &r.s.rqs[q]
		for ai := 0; ai < 2; ai++ {
			arr := &rq.arrays[ai]
			arrTotal := 0
			for lvl := 0; lvl < numLevels; lvl++ {
				n := 0
				var walkErr error
				arr.lists[lvl].ForEach(func(node *klist.Node) bool {
					tk := task.FromNode(node)
					queued[tk]++
					sa, sl := unstamp(tk.QStamp)
					if tk.QIndex != q || sa != ai || sl != lvl {
						walkErr = fmt.Errorf("task %v stamped q%d/a%d/l%d but found on q%d/a%d/l%d",
							tk, tk.QIndex, sa, sl, q, ai, lvl)
					}
					n++
					return n <= fuzzTasks // bound the walk: a longer list is a cycle
				})
				if walkErr != nil {
					return walkErr
				}
				if n > fuzzTasks {
					return fmt.Errorf("q%d array %d level %d list has a cycle", q, ai, lvl)
				}
				bit := arr.bitmap[lvl/64]>>(uint(lvl)%64)&1 == 1
				if (n > 0) != bit {
					return fmt.Errorf("q%d array %d level %d: %d tasks but bit=%v", q, ai, lvl, n, bit)
				}
				arrTotal += n
			}
			if arrTotal != arr.count {
				return fmt.Errorf("q%d array %d count=%d but lists hold %d", q, ai, arr.count, arrTotal)
			}
			total += arrTotal
		}
	}
	if got := r.s.Runnable(); got != total {
		return fmt.Errorf("Runnable()=%d but arrays hold %d", got, total)
	}
	for _, tk := range r.tasks {
		n := queued[tk]
		if n > 1 {
			return fmt.Errorf("task %v on %d lists", tk, n)
		}
		if (n == 1) != r.s.OnRunqueue(tk) {
			return fmt.Errorf("task %v: on %d lists but OnRunqueue=%v", tk, n, r.s.OnRunqueue(tk))
		}
		if n == 1 && tk.HasCPU {
			return fmt.Errorf("task %v both queued and running", tk)
		}
	}
	for tk, n := range queued {
		if n > 0 && tk.IsIdle {
			return fmt.Errorf("idle task %v on a run queue", tk)
		}
	}
	return nil
}

// runOps replays a fuzz input: one (op, arg) pair per two bytes, full
// invariant check after every operation.
func runOps(data []byte) error {
	r := newFuzzRig()
	for i := 0; i+1 < len(data); i += 2 {
		r.step(data[i], data[i+1])
		if err := r.checkInvariants(); err != nil {
			return fmt.Errorf("op %d (%d,%d): %w", i/2, data[i], data[i+1], err)
		}
	}
	return nil
}

func FuzzPrioArrays(f *testing.F) {
	// Seed corpus: each seed exercises a distinct hazardous path —
	// expiry into the expired array, array swap, yield-to-expired,
	// interactive requeue after bonus credit, steal across queues,
	// move-first/move-last on both arrays, and placement hints.
	f.Add([]byte{0, 0, 0, 1, 2, 0, 3, 0, 2, 1})             // add, add, run, block, run elsewhere
	f.Add([]byte{0, 0, 7, 0, 2, 0, 4, 0, 2, 0})             // expire counter, yield into expired, swap
	f.Add([]byte{0, 0, 5, 255, 7, 0, 0, 1, 2, 0, 9, 0})     // interactive credit + spent quantum + tick
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 2, 0, 2, 1, 8, 1}) // populate both queues, steal, move-last
	f.Add([]byte{10, 1, 10, 3, 2, 1, 6, 255, 2, 0})         // wake-idle placement, drain, reschedule
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			return // long inputs add time, not coverage: every op is O(1)
		}
		if err := runOps(data); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPrioArrayOpSequenceRegression replays the checked-in shrunk
// sequences deterministically on every plain `go test` run, so the
// invariants are exercised even where the fuzz engine is not: quantum
// expiry into expired while the other queue steals, a forced swap under
// the starvation guard, rotation markers surviving a dequeue, and
// placement hints racing ordinary adds.
func TestPrioArrayOpSequenceRegression(t *testing.T) {
	sequences := [][]byte{
		// All six tasks in, every CPU scheduling, counters expiring.
		{0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 2, 0, 2, 1, 7, 0, 7, 1, 2, 0, 3, 1, 2, 0, 2, 1},
		// Interactive credit, spent quantum, tick rotation, yield.
		{0, 0, 5, 255, 7, 0, 2, 0, 9, 0, 4, 0, 0, 1, 5, 200, 9, 1, 2, 1, 4, 1},
		// Wake-idle placement onto both queues, then drains and moves.
		{10, 0, 10, 1, 10, 2, 6, 255, 8, 0, 8, 1, 8, 2, 2, 0, 3, 0, 2, 1, 3, 1},
		// Del/re-add churn across a swap with the starvation clock hot.
		{0, 0, 7, 0, 0, 1, 7, 1, 2, 0, 2, 0, 2, 0, 2, 0, 1, 0, 0, 0, 1, 1, 0, 1, 2, 1, 2, 1},
	}
	for i, seq := range sequences {
		if err := runOps(seq); err != nil {
			t.Fatalf("sequence %d: %v", i, err)
		}
	}
}
