package o1

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/task"
	"elsc/internal/workload/volano"
)

func newEnv(ncpu, ntasks int) *sched.Env {
	return sched.NewEnv(ncpu, ncpu > 1, func() int { return ntasks })
}

func mkTask(env *sched.Env, id, prio, counter int) *task.Task {
	t := task.New(id, "t", nil, env.Epoch)
	t.Priority = prio
	t.SetCounter(env.Epoch, counter)
	return t
}

func idlePrev() *task.Task {
	t := task.New(-1, "idle", nil, nil)
	t.IsIdle = true
	return t
}

// newNumaEnv builds an env whose CPUs are split into cache domains.
func newNumaEnv(ncpu, domains, ntasks int) *sched.Env {
	env := sched.NewEnv(ncpu, true, func() int { return ntasks })
	env.Topo = sched.UniformTopology(ncpu, domains)
	return env
}

// homedTask returns a runnable task whose last run was on cpu, so
// AddToRunqueue files it there.
func homedTask(env *sched.Env, id, cpu int) *task.Task {
	tk := mkTask(env, id, 20, 10)
	tk.EverRan = true
	tk.Processor = cpu
	return tk
}

func TestLevelOrdering(t *testing.T) {
	env := newEnv(1, 2)
	rtHi := task.NewRT(1, "rt99", task.FIFO, 99, env.Epoch)
	rtLo := task.NewRT(2, "rt0", task.FIFO, 0, env.Epoch)
	best := mkTask(env, 3, task.MaxPriority, 80)
	worst := mkTask(env, 4, task.MinPriority, 2)
	if !(levelOf(rtHi) < levelOf(rtLo) && levelOf(rtLo) < levelOf(best) && levelOf(best) < levelOf(worst)) {
		t.Fatalf("level order broken: rt99=%d rt0=%d prio40=%d prio1=%d",
			levelOf(rtHi), levelOf(rtLo), levelOf(best), levelOf(worst))
	}
	if levelOf(worst) != numLevels-1 {
		t.Fatalf("lowest task at level %d, want %d", levelOf(worst), numLevels-1)
	}
}

func TestBitmapFindFirstSet(t *testing.T) {
	var a prioArray
	a.init()
	if a.firstSet() != -1 {
		t.Fatal("empty array must report no level")
	}
	a.setBit(7)
	a.setBit(130)
	if a.firstSet() != 7 {
		t.Fatalf("firstSet = %d, want 7", a.firstSet())
	}
	if got := a.nextSet(8); got != 130 {
		t.Fatalf("nextSet(8) = %d, want 130", got)
	}
	if got := a.nextSet(131); got != -1 {
		t.Fatalf("nextSet(131) = %d, want -1", got)
	}
	a.clearBit(7)
	if a.firstSet() != 130 {
		t.Fatalf("firstSet after clear = %d, want 130", a.firstSet())
	}
}

func TestPickIsHighestPriorityHead(t *testing.T) {
	env := newEnv(1, 3)
	s := New(env)
	lo := mkTask(env, 1, 10, 10)
	hi := mkTask(env, 2, 30, 10)
	rt := task.NewRT(3, "rt", task.FIFO, 5, env.Epoch)
	s.AddToRunqueue(lo)
	s.AddToRunqueue(hi)
	s.AddToRunqueue(rt)
	res := s.Schedule(0, idlePrev())
	if res.Next != rt {
		t.Fatalf("picked %v, want real-time task", res.Next)
	}
	if res.Recalcs != 0 {
		t.Fatal("o1 must never enter the recalculation loop")
	}
	res = s.Schedule(0, rtDone(rt))
	if res.Next != hi {
		t.Fatalf("picked %v, want the higher static priority", res.Next)
	}
}

// rtDone marks a previously picked task no longer runnable so the next
// Schedule call treats it as blocked.
func rtDone(prev *task.Task) *task.Task {
	prev.State = task.Interruptible
	return prev
}

func TestExpiredArrayAndSwap(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	b := mkTask(env, 2, 20, 10)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)

	res := s.Schedule(0, idlePrev())
	first := res.Next
	if first == nil {
		t.Fatal("no task picked")
	}
	// Simulate the quantum running out, then a forced reschedule.
	first.SetCounter(env.Epoch, 0)
	res = s.Schedule(0, first)
	if res.Next == first {
		t.Fatal("expired task re-picked while a fresh task waits")
	}
	if s.ExpiredLen(0) != 1 {
		t.Fatalf("expired array holds %d, want the exhausted task", s.ExpiredLen(0))
	}
	if first.RawCounter() == 0 {
		t.Fatal("exhausted task must be recharged when filed into expired")
	}

	// Second task expires too: the active array drains and the swap must
	// bring the expired tasks back without a recalculation.
	second := res.Next
	second.SetCounter(env.Epoch, 0)
	res = s.Schedule(0, second)
	if res.Next != first {
		t.Fatalf("after swap picked %v, want %v", res.Next, first)
	}
	if res.Recalcs != 0 || env.Epoch.N() != 0 {
		t.Fatal("array swap must not bump the recalculation epoch")
	}
}

func TestYieldSendsTaskBehindActive(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	y := mkTask(env, 1, 30, 10) // higher priority, but yields
	other := mkTask(env, 2, 10, 10)
	s.AddToRunqueue(y)
	s.AddToRunqueue(other)

	res := s.Schedule(0, idlePrev())
	if res.Next != y {
		t.Fatalf("picked %v, want the high-priority task first", res.Next)
	}
	y.Yielded = true
	res = s.Schedule(0, y)
	if res.Next != other {
		t.Fatalf("picked %v after yield, want the other task", res.Next)
	}
	if y.Yielded {
		t.Fatal("schedule must consume the yield bit")
	}
}

func TestYieldLoneTaskReruns(t *testing.T) {
	env := newEnv(1, 1)
	s := New(env)
	y := mkTask(env, 1, 20, 10)
	s.AddToRunqueue(y)
	res := s.Schedule(0, idlePrev())
	if res.Next != y {
		t.Fatal("lone task not picked")
	}
	y.Yielded = true
	res = s.Schedule(0, y)
	if res.Next != y {
		t.Fatalf("lone yielding task must be re-run, got %v", res.Next)
	}
	if res.Recalcs != 0 {
		t.Fatal("yield must not trigger recalculation in o1")
	}
}

func TestStealWhenLocalEmpty(t *testing.T) {
	env := newEnv(2, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	a.EverRan = true
	a.Processor = 1
	b := mkTask(env, 2, 20, 10)
	b.EverRan = true
	b.Processor = 1
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)
	if s.QueueLen(0) != 0 || s.QueueLen(1) != 2 {
		t.Fatalf("queues = %d/%d, want 0/2", s.QueueLen(0), s.QueueLen(1))
	}
	res := s.Schedule(0, idlePrev())
	if res.Next == nil {
		t.Fatal("idle CPU must steal from the busy queue")
	}
}

func TestStealRespectsAffinity(t *testing.T) {
	env := newEnv(2, 1)
	s := New(env)
	pinned := mkTask(env, 1, 20, 10)
	pinned.CPUsAllowed = 1 << 1
	s.AddToRunqueue(pinned)
	if s.QueueLen(1) != 1 {
		t.Fatal("pinned task must be homed on CPU 1")
	}
	res := s.Schedule(0, idlePrev())
	if res.Next != nil {
		t.Fatalf("CPU 0 stole %v despite the affinity mask", res.Next)
	}
	res = s.Schedule(1, idlePrev())
	if res.Next != pinned {
		t.Fatal("CPU 1 must run its pinned task")
	}
}

func TestStealFallsThroughPinnedBusiestQueue(t *testing.T) {
	env := newEnv(3, 4)
	s := New(env)
	// CPU 1 is the busiest queue but everything on it is pinned there;
	// CPU 2 holds the only stealable task.
	for i := 0; i < 3; i++ {
		tk := mkTask(env, i+1, 20, 10)
		tk.CPUsAllowed = 1 << 1
		s.AddToRunqueue(tk)
	}
	free := mkTask(env, 9, 20, 10)
	free.EverRan = true
	free.Processor = 2
	s.AddToRunqueue(free)
	res := s.Schedule(0, idlePrev())
	if res.Next != free {
		t.Fatalf("picked %v, want the stealable task from the shorter queue", res.Next)
	}
}

func TestPullBalancePrefersExpiredTasks(t *testing.T) {
	env := newEnv(2, 2)
	s := New(env)
	hot := mkTask(env, 1, 30, 10)
	hot.EverRan = true
	hot.Processor = 1
	s.AddToRunqueue(hot) // victim's active array: its next dispatch
	cold := mkTask(env, 2, 20, 10)
	cold.EverRan = true
	cold.Processor = 1
	cold.SetCounter(env.Epoch, 0)
	s.AddToRunqueue(cold) // exhausted: victim's expired array
	var res sched.Result
	s.pullBalance(0, &res)
	if s.QueueLen(0) != 1 || cold.QIndex != 0 {
		t.Fatalf("pull took the wrong task: queue0=%d hot.QIndex=%d cold.QIndex=%d (want the expired, cache-cold task)",
			s.QueueLen(0), hot.QIndex, cold.QIndex)
	}
}

func TestPullBalanceMovesWork(t *testing.T) {
	env := newEnv(2, 9)
	s := New(env)
	// CPU 0 always has local work, so the idle-steal path never fires
	// and only the periodic balancer can move tasks across.
	runner := mkTask(env, 100, 20, 10)
	runner.EverRan = true
	runner.Processor = 0
	s.AddToRunqueue(runner)
	for i := 0; i < 8; i++ {
		tk := mkTask(env, i+1, 20, 10)
		tk.EverRan = true
		tk.Processor = 1
		s.AddToRunqueue(tk)
	}
	prev := idlePrev()
	for i := 0; i < balanceEvery+2; i++ {
		res := s.Schedule(0, prev)
		if res.Next == nil {
			t.Fatal("CPU 0 went idle with local work queued")
		}
		prev = res.Next
	}
	if s.QueueLen(1) == 8 {
		t.Fatal("pull balancing never moved work off the overloaded queue")
	}
}

func TestNoTaskLostOrDuplicated(t *testing.T) {
	env := newEnv(2, 16)
	s := New(env)
	tasks := make([]*task.Task, 16)
	for i := range tasks {
		tasks[i] = mkTask(env, i+1, 1+i*2, 5)
		s.AddToRunqueue(tasks[i])
		s.AddToRunqueue(tasks[i]) // double add must be a no-op
	}
	if s.Runnable() != 16 {
		t.Fatalf("Runnable = %d, want 16", s.Runnable())
	}
	seen := map[*task.Task]int{}
	for cpu := 0; s.Runnable() > 0; cpu = 1 - cpu {
		res := s.Schedule(cpu, idlePrev())
		if res.Next == nil {
			t.Fatal("queue non-empty but nothing picked")
		}
		seen[res.Next]++
	}
	for _, tk := range tasks {
		if seen[tk] != 1 {
			t.Fatalf("task %v scheduled %d times, want exactly once", tk, seen[tk])
		}
	}
}

func TestExpiredNotStarvedByUnpickableStraggler(t *testing.T) {
	env := newEnv(2, 2)
	s := New(env)
	// A task whose mask allows no present CPU lands on CPU 0 via the
	// homeOf fallback; it can never be picked, but it must not pin the
	// arrays and starve expired tasks behind it.
	ghost := mkTask(env, 1, 20, 10)
	ghost.CPUsAllowed = 1 << 5
	s.AddToRunqueue(ghost)
	if s.QueueLen(0) != 1 {
		t.Fatal("setup: inconsistent-mask task must fall back to CPU 0")
	}
	starved := mkTask(env, 2, 20, 10)
	starved.CPUsAllowed = 1 << 0
	starved.SetCounter(env.Epoch, 0) // exhausted: filed into expired
	s.AddToRunqueue(starved)
	res := s.Schedule(0, idlePrev())
	if res.Next != starved {
		t.Fatalf("picked %v, want the expired task despite the unpickable straggler", res.Next)
	}
}

func TestDelFromExpired(t *testing.T) {
	env := newEnv(1, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	a.SetCounter(env.Epoch, 0)
	s.AddToRunqueue(a)
	if s.ExpiredLen(0) != 1 {
		t.Fatal("exhausted task must land in expired")
	}
	s.DelFromRunqueue(a)
	if a.OnRunqueue() || s.Runnable() != 0 {
		t.Fatal("delete from expired array failed")
	}
}

func TestMoveFirstLastWithinLevel(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	b := mkTask(env, 2, 20, 10)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b) // front: b before a
	s.MoveFirstRunqueue(a)
	res := s.Schedule(0, idlePrev())
	if res.Next != a {
		t.Fatalf("after MoveFirst picked %v, want a", res.Next)
	}
	s.MoveLastRunqueue(b)
	// a is running (dequeued); b is alone, still picked.
	res = s.Schedule(0, rtDone(a))
	if res.Next != b {
		t.Fatalf("picked %v, want b", res.Next)
	}
}

func TestScheduleCostIndependentOfQueueLength(t *testing.T) {
	cost := func(n int) uint64 {
		env := newEnv(1, n)
		s := New(env)
		for i := 0; i < n; i++ {
			s.AddToRunqueue(mkTask(env, i+1, 20, 10))
		}
		res := s.Schedule(0, idlePrev())
		if res.Next == nil {
			panic("no pick")
		}
		return res.Cycles
	}
	small, large := cost(4), cost(1024)
	if large != small {
		t.Fatalf("schedule cost grew with queue length: %d cycles at 4 tasks, %d at 1024", small, large)
	}
}

func TestExaminedStaysConstant(t *testing.T) {
	env := newEnv(1, 256)
	s := New(env)
	for i := 0; i < 256; i++ {
		s.AddToRunqueue(mkTask(env, i+1, 1+i%40, 5))
	}
	res := s.Schedule(0, idlePrev())
	if res.Examined != 1 {
		t.Fatalf("examined %d tasks, want 1 (the O(1) property)", res.Examined)
	}
}

func TestFullMachineVolano(t *testing.T) {
	m := kernel.NewMachine(kernel.Config{
		CPUs: 4, SMP: true, Seed: 9,
		NewScheduler: func(env *sched.Env) sched.Scheduler { return New(env) },
		MaxCycles:    600 * kernel.DefaultHz,
	})
	res := volano.Build(m, volano.Config{Rooms: 2, UsersPerRoom: 4, MessagesPerUser: 3}).Run()
	want := uint64(2 * 4 * 4 * 3)
	if res.Deliveries != want {
		t.Fatalf("deliveries = %d, want %d", res.Deliveries, want)
	}
	st := m.Stats()
	if st.Recalcs != 0 {
		t.Fatalf("o1 recorded %d recalculations, want 0", st.Recalcs)
	}
	if st.SchedCalls == 0 {
		t.Fatal("no schedule() calls recorded")
	}
}

func TestStarvationGuardForcesSwap(t *testing.T) {
	const limit = 8
	env := newEnv(1, 2)
	s := NewWithConfig(env, Config{StarvationLimit: limit})
	starved := mkTask(env, 1, 20, 10)
	starved.SetCounter(env.Epoch, 0) // exhausted: filed into expired
	hog := mkTask(env, 2, 30, 10)
	s.AddToRunqueue(starved)
	s.AddToRunqueue(hog)

	res := s.Schedule(0, idlePrev())
	if res.Next != hog {
		t.Fatalf("first pick %v, want the active hog", res.Next)
	}
	// The hog never exhausts its quantum: each Schedule re-files it into
	// the active array, which would starve the expired task forever.
	for i := 0; i < limit+2; i++ {
		res = s.Schedule(0, res.Next)
		if res.Next == starved {
			if i < limit-2 {
				t.Fatalf("guard fired after only %d schedules (limit %d)", i+1, limit)
			}
			return
		}
	}
	t.Fatalf("expired task never ran within %d schedules (limit %d)", limit+2, limit)
}

func TestStarvationGuardDisabled(t *testing.T) {
	env := newEnv(1, 2)
	s := NewWithConfig(env, Config{StarvationLimit: -1})
	starved := mkTask(env, 1, 20, 10)
	starved.SetCounter(env.Epoch, 0)
	hog := mkTask(env, 2, 30, 10)
	s.AddToRunqueue(starved)
	s.AddToRunqueue(hog)
	res := s.Schedule(0, idlePrev())
	for i := 0; i < 300; i++ {
		res = s.Schedule(0, res.Next)
		if res.Next == starved {
			t.Fatalf("disabled guard still swapped at schedule %d", i+1)
		}
	}
}

func TestStealPrefersLocalDomainVictim(t *testing.T) {
	// Two domains: CPUs {0,1} and {2,3}. CPU 1 holds one task; CPU 2 is
	// the busiest queue with three. A topology-blind thief on CPU 0
	// would raid CPU 2; a hierarchical one must take the in-domain task.
	env := newNumaEnv(4, 2, 4)
	s := New(env)
	local := homedTask(env, 1, 1)
	s.AddToRunqueue(local)
	for i := 0; i < 3; i++ {
		s.AddToRunqueue(homedTask(env, 10+i, 2))
	}
	res := s.Schedule(0, idlePrev())
	if res.Next != local {
		t.Fatalf("stole %v, want the in-domain task", res.Next)
	}
	intra, cross := s.DomainSteals()
	if intra != 1 || cross != 0 {
		t.Fatalf("steal counters = %d intra / %d cross, want 1/0", intra, cross)
	}
}

func TestCrossDomainStealRequiresImbalance(t *testing.T) {
	// The only queued task sits alone in a foreign domain: dragging it
	// across the interconnect for an imbalance of one is a loss, so the
	// idle CPU must stay idle and let the task's home CPU run it.
	env := newNumaEnv(4, 2, 2)
	s := New(env)
	lone := homedTask(env, 1, 2)
	s.AddToRunqueue(lone)
	if res := s.Schedule(0, idlePrev()); res.Next != nil {
		t.Fatalf("stole %v across domains for an imbalance of one", res.Next)
	}
	// A second task on the same foreign queue is a real imbalance.
	s.AddToRunqueue(homedTask(env, 2, 2))
	res := s.Schedule(0, idlePrev())
	if res.Next == nil {
		t.Fatal("idle CPU refused a two-task cross-domain steal")
	}
	intra, cross := s.DomainSteals()
	if intra != 0 || cross != 1 {
		t.Fatalf("steal counters = %d intra / %d cross, want 0/1", intra, cross)
	}
}

func TestTopologyBlindStealsAnywhere(t *testing.T) {
	// The ablation baseline: with TopologyBlind set the same lone
	// foreign task is fair game, as in the pre-domain scheduler.
	env := newNumaEnv(4, 2, 1)
	s := NewWithConfig(env, Config{TopologyBlind: true})
	lone := homedTask(env, 1, 2)
	s.AddToRunqueue(lone)
	res := s.Schedule(0, idlePrev())
	if res.Next != lone {
		t.Fatalf("blind scheduler picked %v, want the foreign task", res.Next)
	}
}

func TestCrossDomainPullBatches(t *testing.T) {
	// No in-domain imbalance, a large foreign one: the periodic balancer
	// must move a batch in one pull, amortizing the interconnect refill.
	env := newNumaEnv(4, 2, 8)
	s := New(env)
	for i := 0; i < 8; i++ {
		s.AddToRunqueue(homedTask(env, i+1, 2))
	}
	var res sched.Result
	s.pullBalance(0, &res)
	if got := s.QueueLen(0); got != 4 {
		t.Fatalf("cross-domain pull moved %d tasks, want a batch of 4", got)
	}
	intra, cross := s.DomainSteals()
	if intra != 0 || cross != 4 {
		t.Fatalf("steal counters = %d intra / %d cross, want 0/4", intra, cross)
	}
}

func TestCrossDomainPullNeedsLargerGap(t *testing.T) {
	// An imbalance that would trigger an intra-domain pull (2) must NOT
	// trigger a cross-domain one: the threshold doubles across domains.
	env := newNumaEnv(4, 2, 2)
	s := New(env)
	for i := 0; i < 2; i++ {
		s.AddToRunqueue(homedTask(env, i+1, 2))
	}
	var res sched.Result
	s.pullBalance(0, &res)
	if got := s.QueueLen(0); got != 0 {
		t.Fatalf("cross-domain pull fired at imbalance 2, moved %d tasks", got)
	}
	// Same gap inside the domain does move work.
	env2 := newNumaEnv(4, 2, 2)
	s2 := New(env2)
	for i := 0; i < 2; i++ {
		s2.AddToRunqueue(homedTask(env2, i+1, 1))
	}
	var res2 sched.Result
	s2.pullBalance(0, &res2)
	if got := s2.QueueLen(0); got != 1 {
		t.Fatalf("intra-domain pull at imbalance 2 moved %d tasks, want 1", got)
	}
}

func TestStarvationGuardNeverDemotesRealTime(t *testing.T) {
	// A queued real-time task must veto the forced swap: demoting it
	// into the expired array would let SCHED_OTHER run ahead of it.
	const limit = 8
	env := newEnv(1, 3)
	s := NewWithConfig(env, Config{StarvationLimit: limit})
	starved := mkTask(env, 1, 20, 10)
	starved.SetCounter(env.Epoch, 0)
	s.AddToRunqueue(starved)
	rtA := task.NewRT(2, "rtA", task.RR, 50, env.Epoch)
	rtB := task.NewRT(3, "rtB", task.RR, 50, env.Epoch)
	s.AddToRunqueue(rtA)
	s.AddToRunqueue(rtB)

	res := s.Schedule(0, idlePrev())
	for i := 0; i < 4*limit; i++ {
		if res.Next == starved {
			t.Fatalf("schedule %d demoted queued RT work behind a SCHED_OTHER task", i)
		}
		res.Next.Yielded = true // rotate the RT pair forever
		res = s.Schedule(0, res.Next)
	}
	// Once the RT tasks are gone the guard may fire normally.
	rtA.State = task.Interruptible
	rtB.State = task.Interruptible
	s.DelFromRunqueue(rtA)
	s.DelFromRunqueue(rtB)
	res = s.Schedule(0, res.Next)
	if res.Next != starved {
		t.Fatalf("picked %v after RT load left, want the expired task", res.Next)
	}
}

func TestPerCPUStealCountersAttributeToThief(t *testing.T) {
	// Two domains: CPU 0 steals in-domain from CPU 1, then cross-domain
	// from CPU 2 (two tasks queued there makes the cross steal legal).
	// Both moves must land on CPU 0's counters, split by domain, and the
	// machine-wide DomainSteals must equal the per-CPU sum.
	env := newNumaEnv(4, 2, 4)
	s := New(env)
	s.AddToRunqueue(homedTask(env, 1, 1))
	res := s.Schedule(0, idlePrev())
	if res.Next == nil {
		t.Fatal("in-domain steal failed")
	}
	res.Next.State = task.Interruptible // retire the stolen task
	s.AddToRunqueue(homedTask(env, 2, 2))
	s.AddToRunqueue(homedTask(env, 3, 2))
	if res := s.Schedule(0, res.Next); res.Next == nil {
		t.Fatal("cross-domain steal failed")
	}
	per := s.PerCPUSteals()
	if per[0].Intra != 1 || per[0].Cross != 1 {
		t.Fatalf("CPU 0 counters = %+v, want 1 intra / 1 cross", per[0])
	}
	for cpu := 1; cpu < 4; cpu++ {
		if per[cpu] != (CPUSteals{}) {
			t.Fatalf("CPU %d counters = %+v, want zero (it stole nothing)", cpu, per[cpu])
		}
	}
	intra, cross := s.DomainSteals()
	if intra != 1 || cross != 1 {
		t.Fatalf("totals = %d/%d, want the per-CPU sum 1/1", intra, cross)
	}
}

func TestPerCPUStealsReturnsCopy(t *testing.T) {
	env := newNumaEnv(2, 1, 1)
	s := New(env)
	s.AddToRunqueue(homedTask(env, 1, 1))
	if res := s.Schedule(0, idlePrev()); res.Next == nil {
		t.Fatal("steal failed")
	}
	per := s.PerCPUSteals()
	per[0].Intra = 99
	if got := s.PerCPUSteals()[0].Intra; got != 1 {
		t.Fatalf("mutating the returned slice leaked into the scheduler: %d", got)
	}
}
