package o1

import (
	"testing"

	"elsc/internal/sched"
	"elsc/internal/task"
)

// sleeper returns a runnable task whose sleep_avg sits in the middle of
// the given bonus bucket (0..10, i.e. bonus -5..+5; 11 pins the ceiling).
func sleeper(env *sched.Env, id, prio, counter int, bucket uint64) *task.Task {
	tk := mkTask(env, id, prio, counter)
	tk.CreditSleep((2*bucket+1)*env.Cost.MaxSleepAvg/22, env.Cost.MaxSleepAvg)
	return tk
}

func TestBonusMapping(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	hog := mkTask(env, 1, 20, 10) // sleep_avg 0
	if got := s.bonusOf(hog); got != -maxBonus {
		t.Fatalf("zero sleep_avg bonus = %d, want %d", got, -maxBonus)
	}
	inter := sleeper(env, 2, 20, 10, 11)
	if got := s.bonusOf(inter); got != maxBonus {
		t.Fatalf("full sleep_avg bonus = %d, want %d", got, maxBonus)
	}
	mid := sleeper(env, 3, 20, 10, 5)
	if got := s.bonusOf(mid); got != 0 {
		t.Fatalf("midpoint sleep_avg bonus = %d, want 0", got)
	}
	rt := task.NewRT(4, "rt", task.FIFO, 10, env.Epoch)
	rt.CreditSleep(env.Cost.MaxSleepAvg, env.Cost.MaxSleepAvg)
	if got := s.bonusOf(rt); got != 0 {
		t.Fatalf("real-time bonus = %d, want 0 (rt levels never move)", got)
	}
	off := NewWithConfig(env, Config{InteractivityOff: true})
	if got := off.bonusOf(inter); got != 0 {
		t.Fatalf("InteractivityOff bonus = %d, want 0", got)
	}
}

func TestEffectiveLevelClampedToOtherRange(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	top := sleeper(env, 1, task.MaxPriority, 10, 11) // +5 onto prio 40
	if got := s.levelFor(top); got != rtLevels {
		t.Fatalf("prio 40 with +5 bonus at level %d, want %d (never into rt levels)", got, rtLevels)
	}
	bottom := mkTask(env, 2, task.MinPriority, 10) // -5 onto prio 1
	if got := s.levelFor(bottom); got != numLevels-1 {
		t.Fatalf("prio 1 with -5 bonus at level %d, want %d", got, numLevels-1)
	}
}

// TestInteractiveWakeWithSpentQuantumEntersActive pins the central fix:
// an interactive task waking with an exhausted counter is recharged into
// the active array, while a hog-profile task still parks in expired.
func TestInteractiveWakeWithSpentQuantumEntersActive(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	inter := sleeper(env, 1, 20, 0, 11)
	s.AddToRunqueue(inter)
	if s.ActiveLen(0) != 1 || s.ExpiredLen(0) != 0 {
		t.Fatalf("interactive spent-quantum wake: active=%d expired=%d, want 1/0",
			s.ActiveLen(0), s.ExpiredLen(0))
	}
	if got := inter.Counter(env.Epoch); got != inter.Priority {
		t.Fatalf("recharged counter = %d, want %d", got, inter.Priority)
	}
	if s.InteractiveRequeues() != 1 {
		t.Fatalf("InteractiveRequeues = %d, want 1", s.InteractiveRequeues())
	}
	hog := mkTask(env, 2, 20, 0)
	s.AddToRunqueue(hog)
	if s.ExpiredLen(0) != 1 {
		t.Fatalf("hog spent-quantum wake: expired=%d, want 1", s.ExpiredLen(0))
	}
}

// TestExpiryRequeuesInteractiveIntoActive drives the Schedule path: a
// quantum-expired interactive task re-enters the active array (and so
// beats a worse-level hog to the next pick), where the InteractivityOff
// ablation parks it behind the array swap.
func TestExpiryRequeuesInteractiveIntoActive(t *testing.T) {
	for _, off := range []bool{false, true} {
		env := newEnv(1, 2)
		s := NewWithConfig(env, Config{InteractivityOff: off})
		hog := mkTask(env, 1, 20, 10)
		s.AddToRunqueue(hog)
		probe := sleeper(env, 2, 20, 0, 11) // just expired its quantum
		probe.EverRan = true
		probe.Processor = 0
		res := s.Schedule(0, probe) // kernel: prev runnable, counter 0
		if off {
			if res.Next != hog {
				t.Fatalf("ablation: picked %v, want the hog (probe parked in expired)", res.Next)
			}
		} else if res.Next != probe {
			t.Fatalf("interactivity on: picked %v, want the requeued probe", res.Next)
		}
	}
}

// TestReinsertBoundedByStarvationClock: once the expired array has
// starved past StarvationLimit, interactive tasks expire normally so the
// forced swap can restore fairness — hogs always make progress.
func TestReinsertBoundedByStarvationClock(t *testing.T) {
	env := newEnv(1, 3)
	s := NewWithConfig(env, Config{StarvationLimit: 10})
	starved := mkTask(env, 1, 20, 0)
	s.AddToRunqueue(starved) // hog profile: parks in expired
	if s.ExpiredLen(0) != 1 {
		t.Fatalf("setup: expired=%d, want 1", s.ExpiredLen(0))
	}
	s.rqs[0].schedSeq = s.rqs[0].expiredSince + 10 // clock at the limit
	inter := sleeper(env, 2, 20, 0, 11)
	s.AddToRunqueue(inter)
	if s.ExpiredLen(0) != 2 {
		t.Fatalf("starving expired array: interactive wake filed active (expired=%d), want bounded to expired",
			s.ExpiredLen(0))
	}
	s.rqs[0].schedSeq = s.rqs[0].expiredSince // fresh clock: bound lifted
	inter2 := sleeper(env, 3, 20, 0, 11)
	s.AddToRunqueue(inter2)
	if s.ActiveLen(0) != 1 {
		t.Fatalf("fresh clock: active=%d, want the interactive re-insertion", s.ActiveLen(0))
	}
}

// TestTickPreemptBetterLevel: a queued task whose bonus-laden level
// beats the running task's triggers a tick preemption (reported as a
// plain preemption, not a rotation), so a stale wake-time tie cannot
// cost a sleeper the hog's whole quantum. An unpickable straggler at a
// better level must not buy an interrupt every tick.
func TestTickPreemptBetterLevel(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	inter := sleeper(env, 1, 20, 10, 11)
	s.AddToRunqueue(inter)
	hog := mkTask(env, 2, 20, 10) // running: dequeued, bonus -5
	preempt, rotation := s.TickPreempt(0, hog)
	if !preempt || rotation {
		t.Fatalf("better active level queued: got preempt=%v rotation=%v, want true/false", preempt, rotation)
	}
	inter.HasCPU = true // claimed by another CPU mid-window: unpickable
	inter.Processor = 1
	if preempt, _ := s.TickPreempt(0, hog); preempt {
		t.Fatal("unpickable straggler at a better level must not preempt")
	}
	inter.HasCPU = false
	off := NewWithConfig(env, Config{InteractivityOff: true})
	off.AddToRunqueue(sleeper(env, 3, 20, 10, 11))
	if preempt, _ := off.TickPreempt(0, hog); preempt {
		t.Fatal("ablation: tick preemption must stay off")
	}
}

// TestTickPreemptGranularityRoundRobin: equal-level interactive tasks
// round-robin every GranularityTicks — the rotated task goes to the tail
// of its level and the waiting peer is picked next.
func TestTickPreemptGranularityRoundRobin(t *testing.T) {
	env := newEnv(1, 2)
	s := NewWithConfig(env, Config{GranularityTicks: 2})
	a := sleeper(env, 1, 20, 4, 11)
	b := sleeper(env, 2, 20, 4, 11)
	s.AddToRunqueue(b) // b waits at a's level
	if preempt, rotation := s.TickPreempt(0, a); !preempt || !rotation {
		t.Fatal("same-level peer queued at a granularity boundary: want a rotation")
	}
	res := s.Schedule(0, a) // kernel preempts a; a still has quantum
	if res.Next != b {
		t.Fatalf("picked %v after rotation, want the waiting peer", res.Next)
	}
	if !s.OnRunqueue(a) {
		t.Fatal("rotated task fell off the queue")
	}
	// With an odd counter (not a granularity boundary) nothing rotates.
	c := sleeper(env, 3, 20, 3, 11)
	if preempt, _ := s.TickPreempt(0, c); preempt {
		t.Fatal("rotation must only fire on granularity boundaries")
	}
}

func TestPlaceWakeFilesOnGivenCPU(t *testing.T) {
	env := newNumaEnv(4, 2, 4)
	s := New(env)
	tk := homedTask(env, 1, 0)
	if !s.PlaceWake(tk, 3) {
		t.Fatal("PlaceWake declined a valid idle-CPU hint")
	}
	if s.QueueLen(3) != 1 || s.QueueLen(0) != 0 {
		t.Fatalf("task filed on queue %d, want 3", tk.QIndex)
	}
	if s.PlaceWake(tk, 2) {
		t.Fatal("PlaceWake must decline a task already on a queue")
	}
}

func TestPlaceWakeDeclines(t *testing.T) {
	env := newNumaEnv(4, 2, 4)
	for _, cfg := range []Config{{WakeIdleOff: true}, {TopologyBlind: true}} {
		s := NewWithConfig(env, cfg)
		tk := homedTask(env, 1, 0)
		if s.PlaceWake(tk, 3) {
			t.Fatalf("PlaceWake accepted under %+v, want declined", cfg)
		}
		if s.OnRunqueue(tk) {
			t.Fatal("declined PlaceWake must not enqueue")
		}
	}
	s := New(env)
	pinned := homedTask(env, 2, 0)
	pinned.CPUsAllowed = 1 << 0
	if s.PlaceWake(pinned, 3) {
		t.Fatal("PlaceWake must respect the affinity mask")
	}
}

func TestPreemptsCurrUsesEffectiveLevels(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	inter := sleeper(env, 1, 20, 10, 11)
	hog := mkTask(env, 2, 20, 10)
	if !s.PreemptsCurr(inter, hog) {
		t.Fatal("interactive task at equal static priority must preempt the hog")
	}
	if s.PreemptsCurr(hog, inter) {
		t.Fatal("hog must not preempt the interactive task")
	}
	off := NewWithConfig(env, Config{InteractivityOff: true})
	if off.PreemptsCurr(inter, hog) {
		t.Fatal("ablation: equal static priorities must tie")
	}
	rt := task.NewRT(3, "rt", task.FIFO, 0, env.Epoch)
	if !s.PreemptsCurr(rt, inter) || s.PreemptsCurr(inter, rt) {
		t.Fatal("real-time ordering must survive the bonus mapping")
	}
}

func TestBonusLevelCountersTrackEnqueues(t *testing.T) {
	env := newEnv(1, 3)
	s := New(env)
	s.AddToRunqueue(mkTask(env, 1, 20, 10))      // -5
	s.AddToRunqueue(sleeper(env, 2, 20, 10, 11)) // +5
	s.AddToRunqueue(sleeper(env, 3, 20, 10, 5))  // 0
	levels := s.BonusLevels()
	if len(levels) != BonusSpan {
		t.Fatalf("BonusLevels len = %d, want %d", len(levels), BonusSpan)
	}
	if levels[0] != 1 || levels[maxBonus] != 1 || levels[BonusSpan-1] != 1 {
		t.Fatalf("bonus distribution %v, want one enqueue each at -5, 0, +5", levels)
	}
	offEnv := newEnv(1, 1)
	off := NewWithConfig(offEnv, Config{InteractivityOff: true})
	off.AddToRunqueue(mkTask(offEnv, 4, 20, 10))
	for i, n := range off.BonusLevels() {
		if n != 0 {
			t.Fatalf("ablation counted bonus level %d", i-maxBonus)
		}
	}
}
