// Package o1 implements the design the multi-queue scheduler (internal/
// sched/mq) points toward as the historical endpoint of the paper's §8
// future work: the Linux 2.5 O(1) scheduler. Every processor owns a
// private run queue (the kernel detects the PerCPU marker and splits the
// global run-queue lock), and each queue holds two priority arrays —
// active and expired — with one list per priority level and a find-first-
// set bitmap over the levels.
//
// schedule() therefore never scans tasks: it reads the bitmap, takes the
// head of the highest populated list, and runs it. No goodness() is
// computed on the pick path, which is exactly the contrast the ablation
// benchmarks quantify against the stock O(n) scan. The counter-
// recalculation loop disappears entirely: a task that exhausts its
// quantum is recharged immediately and filed into the expired array, and
// when the active array empties the two arrays swap in O(1). Recalcs is
// always zero for this policy.
//
// Priority levels follow the 2.5 kernel's convention: lower index is
// higher priority. Real-time tasks map rt_priority onto the top 100
// levels; SCHED_OTHER tasks map their static priority onto the 40 levels
// below, so a real-time task always outranks a timesharing one and the
// bitmap search honors rt_priority order for free.
//
// Balancing is pull-based, as in 2.5: a CPU whose queue empties steals
// the best movable task from the longest queue, and every balanceEvery
// schedule() invocations a CPU with at least two fewer queued tasks than
// the busiest queue pulls one task across.
//
// On machines with cache domains (sched.Env.Topo) the balancer is
// hierarchical, mirroring the 2.5→2.6 sched_domains evolution: steal and
// pull prefer victims inside the stealing CPU's domain; a cross-domain
// move requires a larger imbalance (an idle CPU will not drag a victim's
// only queued task across the interconnect, and the periodic balancer
// demands CrossImbalance rather than two), and when a cross-domain pull
// does fire it moves a batch of tasks so the CrossDomainRefillMax each
// will pay is amortized over a real rebalance rather than spent on
// ping-pong. The TopologyBlind config knob disables all of this — the
// scheduler then sees the machine as one flat domain — and exists so the
// experiments can measure exactly what domain awareness buys.
//
// A starvation guard bounds expired-array wait: if the expired array has
// been non-empty for StarvationLimit consecutive schedule() calls on its
// CPU without a swap, the arrays are force-swapped even though the active
// array still holds runnable tasks (the check 2.6 performs with
// EXPIRED_STARVING). Without it, a steady stream of fresh wakers could
// keep the active array populated forever while expired tasks wait.
//
// # Interactivity
//
// The scheduler carries the 2.5 kernel's sleep_avg machinery. The kernel
// credits each task's sleep_avg while it blocks and drains it while it
// runs (internal/task hooks, clamped at the cost model's MaxSleepAvg);
// this policy maps the ratio onto a dynamic-priority bonus of ±5 levels
// in the bitmap arrays, so a task that sleeps most of the time files five
// levels above its static priority and a pure hog five below. Tasks whose
// bonus clears InteractiveDelta are interactive: on quantum expiry they
// are recharged and requeued at the tail of the active array instead of
// parking in expired — the fix for latency probes waiting out a full hog
// quantum behind an array swap — and a waking interactive task with a
// spent quantum is recharged into the active array for the same reason.
// Both re-insertions are bounded by the StarvationLimit clock: once the
// expired array has waited that long, interactive tasks expire normally
// and the forced swap proceeds, so hogs always make progress.
//
// Two more 2.5-era pieces ride along. TIMESLICE_GRANULARITY chunking:
// every GranularityTicks of a running interactive task's quantum, if
// another task waits at its level on this CPU, the tick preempts it and
// Schedule files it at the tail of its level, so same-level interactive
// tasks round-robin inside a quantum instead of serializing. And
// SD_WAKE_IDLE placement: the kernel offers the policy an idle CPU in the
// waker's cache domain at wake time (PlaceWake), which files the woken
// task there directly rather than queueing it behind its home CPU's
// backlog. The InteractivityOff and WakeIdleOff knobs disable each half
// independently, so the experiments can measure exactly what they buy.
package o1

import (
	"math/bits"

	"elsc/internal/klist"
	"elsc/internal/sched"
	"elsc/internal/task"
)

const (
	// rtLevels reserves one level per rt_priority value (0..99).
	rtLevels = task.MaxRTPriority + 1
	// numLevels adds one level per SCHED_OTHER static priority (1..40).
	numLevels = rtLevels + task.MaxPriority
	// nWords is the bitmap size: one bit per level.
	nWords = (numLevels + 63) / 64

	// balanceEvery is the pull-balancing period in schedule() calls per
	// CPU, and balanceImbalance the queue-length gap that triggers a
	// pull — the 2.5 kernel's "25% imbalance" rule at small queue sizes.
	balanceEvery     = 32
	balanceImbalance = 2

	// crossStealMin is the minimum victim queue length for an idle steal
	// that leaves the thief's cache domain: dragging a victim's only
	// queued task across the interconnect costs more than letting the
	// victim run it next.
	crossStealMin = 2

	// maxBonus bounds the dynamic-priority bonus: sleep_avg maps onto
	// [-maxBonus, +maxBonus] effective priority levels (2.5's MAX_BONUS).
	maxBonus = 5
)

// BonusSpan is the number of distinct bonus values (-maxBonus..+maxBonus);
// BonusLevels returns one counter per value, index 0 = -maxBonus.
const BonusSpan = 2*maxBonus + 1

// Config tunes the o1 scheduler's domain-aware balancing. The zero value
// gives the default, domain-aware behavior.
type Config struct {
	// TopologyBlind makes the balancer ignore cache domains, treating
	// the machine as one flat domain — the pre-sched_domains behavior,
	// kept as the ablation baseline for the NUMA experiments.
	TopologyBlind bool
	// CrossImbalance is the queue-length gap required before the
	// periodic balancer pulls across a domain boundary (default 4,
	// twice the intra-domain threshold).
	CrossImbalance int
	// CrossBatch caps the tasks moved per cross-domain pull (default 4).
	// Batching amortizes the cross-domain cache-refill penalty: one
	// decisive rebalance instead of a penalty per balancing period.
	CrossBatch int
	// StarvationLimit is how many schedule() calls the expired array may
	// sit non-empty before a forced array swap (default 128; <0
	// disables the guard). The same clock bounds interactive re-insertion
	// into the active array: once the expired array has starved that
	// long, interactive tasks expire normally until the swap happens.
	StarvationLimit int
	// InteractivityOff disables the sleep_avg machinery — no dynamic-
	// priority bonus, no active-array requeue on expiry, no timeslice
	// granularity chunking. The ablation baseline for the latency
	// experiments: with it set, a quantum-expired probe parks behind a
	// full hog quantum in the expired array.
	InteractivityOff bool
	// InteractiveDelta is the bonus a task needs to count as interactive
	// and earn active-array re-insertion (default 2, range 1..maxBonus).
	InteractiveDelta int
	// GranularityTicks is the TIMESLICE_GRANULARITY chunk in quantum
	// ticks: every multiple, a running interactive task with a same-level
	// queued peer on its CPU is rotated to the tail of its level
	// (default 2 ticks = 20 ms; <0 disables chunking).
	GranularityTicks int
	// WakeIdleOff makes the policy decline the kernel's SD_WAKE_IDLE
	// placement hints: woken tasks always file on their home CPU's queue,
	// the pre-sched_domains wake path. Ablation knob.
	WakeIdleOff bool
}

func (c Config) withDefaults() Config {
	if c.CrossImbalance == 0 {
		c.CrossImbalance = 2 * balanceImbalance
	}
	if c.CrossBatch == 0 {
		c.CrossBatch = 4
	}
	if c.StarvationLimit == 0 {
		c.StarvationLimit = 128
	}
	if c.InteractiveDelta == 0 {
		c.InteractiveDelta = 2
	}
	if c.GranularityTicks == 0 {
		c.GranularityTicks = 2
	}
	return c
}

// levelOf maps a task to its static priority level; lower level = higher
// priority, so the bitmap find-first-set returns the best level directly.
func levelOf(t *task.Task) int {
	if t.RealTime() {
		return task.MaxRTPriority - t.RTPriority
	}
	return rtLevels + task.MaxPriority - t.Priority
}

// prioArray is one priority array: a bitmap over levels plus one FIFO
// list per level, mirroring struct prio_array.
type prioArray struct {
	bitmap [nWords]uint64
	lists  [numLevels]klist.Head
	count  int
}

func (a *prioArray) init() {
	for i := range a.lists {
		a.lists[i].Init()
	}
}

// firstSet returns the highest-priority populated level, or -1.
func (a *prioArray) firstSet() int {
	for w := 0; w < nWords; w++ {
		if a.bitmap[w] != 0 {
			return w*64 + bits.TrailingZeros64(a.bitmap[w])
		}
	}
	return -1
}

// nextSet returns the first populated level >= from, or -1.
func (a *prioArray) nextSet(from int) int {
	if from >= numLevels {
		return -1
	}
	w := from / 64
	word := a.bitmap[w] &^ (1<<uint(from%64) - 1)
	for {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
		w++
		if w >= nWords {
			return -1
		}
		word = a.bitmap[w]
	}
}

func (a *prioArray) setBit(lvl int)   { a.bitmap[lvl/64] |= 1 << uint(lvl%64) }
func (a *prioArray) clearBit(lvl int) { a.bitmap[lvl/64] &^= 1 << uint(lvl%64) }

// runqueue is one CPU's pair of arrays; activeIdx selects the active one
// so the array swap is a single index flip, never a task walk. schedSeq
// counts Schedule calls on this queue, and expiredSince records the
// schedSeq at which the expired array last became (or stayed) non-empty —
// the clock for the starvation guard, measured in scheduling decisions
// because the policy has no view of virtual time.
type runqueue struct {
	arrays       [2]prioArray
	activeIdx    int
	sinceBalance int
	schedSeq     uint64
	expiredSince uint64

	// rotate marks the task TickPreempt rotated for timeslice-
	// granularity chunking; the next Schedule on this CPU files it at the
	// tail of its level (losing the FIFO tie) instead of the head.
	rotate *task.Task
}

func (rq *runqueue) active() *prioArray  { return &rq.arrays[rq.activeIdx] }
func (rq *runqueue) expired() *prioArray { return &rq.arrays[1-rq.activeIdx] }
func (rq *runqueue) len() int            { return rq.arrays[0].count + rq.arrays[1].count }

// CPUSteals is one CPU's balancer activity: tasks its steal and pull
// paths moved onto it from queues in the same cache domain (Intra) and
// from queues across a domain boundary (Cross). The type lives in sched
// so every domain-split balancer reports through the same shape.
type CPUSteals = sched.CPUSteals

// Sched is the O(1) scheduler. Create with New.
type Sched struct {
	env  *sched.Env
	cfg  Config
	topo *sched.Topology // flat when TopologyBlind, else env.Topo
	rqs  []runqueue

	// steals counts tasks moved by the balancer (idle steal or periodic
	// pull) within and across cache domains, per stealing CPU, as the
	// scheduler sees them — the numa experiment's per-policy columns and
	// schedtrace's per-domain steal table.
	steals []CPUSteals

	// bonusLevels counts SCHED_OTHER enqueues by dynamic-priority bonus
	// (index 0 = -maxBonus), the interactivity estimator's observable
	// distribution; interactiveRequeues counts active-array re-insertions
	// the interactivity rules granted (quantum-expiry requeues and
	// spent-quantum wake recharges).
	bonusLevels         [BonusSpan]uint64
	interactiveRequeues uint64
}

// New returns an O(1) scheduler bound to env with the default config.
func New(env *sched.Env) *Sched { return NewWithConfig(env, Config{}) }

// NewWithConfig returns an O(1) scheduler with tuned balancing knobs.
func NewWithConfig(env *sched.Env, cfg Config) *Sched {
	s := &Sched{
		env:    env,
		cfg:    cfg.withDefaults(),
		rqs:    make([]runqueue, env.NCPU),
		steals: make([]CPUSteals, env.NCPU),
	}
	s.topo = env.Topo
	if s.cfg.TopologyBlind || s.topo == nil {
		s.topo = sched.FlatTopology(env.NCPU)
	}
	for i := range s.rqs {
		s.rqs[i].arrays[0].init()
		s.rqs[i].arrays[1].init()
	}
	return s
}

// DomainSteals reports tasks the balancer moved within and across cache
// domains, machine-wide. A topology-blind scheduler sees one flat domain,
// so its moves all count as intra-domain; the machine-level
// CrossDomainMigrations stat records what they really cost.
func (s *Sched) DomainSteals() (intra, cross uint64) {
	for i := range s.steals {
		intra += s.steals[i].Intra
		cross += s.steals[i].Cross
	}
	return intra, cross
}

// PerCPUSteals returns a copy of the per-CPU steal counters, indexed by
// the stealing CPU — the breakdown schedtrace renders per domain.
func (s *Sched) PerCPUSteals() []CPUSteals {
	return append([]CPUSteals(nil), s.steals...)
}

// bonusOf maps a task's sleep_avg onto the dynamic-priority bonus: zero
// credit is -maxBonus (a hog files below its static priority), a full
// MaxSleepAvg of credit is +maxBonus (2.5's CURRENT_BONUS, recentered).
func (s *Sched) bonusOf(t *task.Task) int {
	if s.cfg.InteractivityOff || t.RealTime() {
		return 0
	}
	max := s.env.Cost.MaxSleepAvg
	if max == 0 {
		return 0
	}
	return int(t.SleepAvg()*BonusSpan/(max+1)) - maxBonus
}

// interactive reports whether the task's bonus clears the interactivity
// threshold — 2.6's TASK_INTERACTIVE, gating active-array re-insertion
// and timeslice-granularity rotation.
func (s *Sched) interactive(t *task.Task) bool {
	if s.cfg.InteractivityOff || t.RealTime() {
		return false
	}
	return s.bonusOf(t) >= s.cfg.InteractiveDelta
}

// levelFor is the effective priority level a task files at: its static
// level shifted by the sleep_avg bonus, clamped to the SCHED_OTHER range.
// Real-time levels never move.
func (s *Sched) levelFor(t *task.Task) int {
	if t.RealTime() {
		return levelOf(t)
	}
	prio := t.Priority + s.bonusOf(t)
	if prio < task.MinPriority {
		prio = task.MinPriority
	}
	if prio > task.MaxPriority {
		prio = task.MaxPriority
	}
	return rtLevels + task.MaxPriority - prio
}

// BonusLevels returns a copy of the enqueue counts by dynamic-priority
// bonus, index 0 = -5 through index 10 = +5 — the distribution schedtrace
// renders and the sweep JSON records.
func (s *Sched) BonusLevels() []uint64 {
	return append([]uint64(nil), s.bonusLevels[:]...)
}

// InteractiveRequeues reports how many times the interactivity rules
// re-inserted a task into the active array instead of expiring it.
func (s *Sched) InteractiveRequeues() uint64 { return s.interactiveRequeues }

// Name implements sched.Scheduler.
func (s *Sched) Name() string { return "o1" }

// PerCPU marks the policy as using per-CPU run-queue locks.
func (s *Sched) PerCPU() bool { return true }

// homeOf picks the queue for t: its last CPU when the affinity mask
// allows it, otherwise the least-loaded allowed queue. Offline CPUs'
// queues are drained at hotplug and must stay empty, so they are never a
// home.
func (s *Sched) homeOf(t *task.Task) int {
	if t.EverRan && t.Processor < len(s.rqs) && t.AllowedOn(t.Processor) && s.env.CPUOnline(t.Processor) {
		return t.Processor
	}
	best := -1
	for i := range s.rqs {
		if !t.AllowedOn(i) || !s.env.CPUOnline(i) {
			continue
		}
		if best < 0 || s.rqs[i].len() < s.rqs[best].len() {
			best = i
		}
	}
	if best < 0 {
		// Inconsistent mask (or it names only offline CPUs): fall back to
		// the first online queue rather than lose the task.
		for i := range s.rqs {
			if s.env.CPUOnline(i) {
				return i
			}
		}
		best = 0
	}
	return best
}

// Task bookkeeping: QIndex holds the home CPU (the kernel maps it to the
// per-CPU lock), QStamp packs the array index and level so removal never
// searches, and QZero is unused.
func stampOf(arrayIdx, lvl int) uint64 { return uint64(arrayIdx)<<8 | uint64(lvl) }

func unstamp(st uint64) (arrayIdx, lvl int) { return int(st >> 8 & 1), int(st & 0xff) }

// enqueue files t at level lvl of the given array on cpu's queue.
// front selects head insertion (newly woken tasks, preempted tasks)
// versus tail (round-robin rotation, expired tasks).
func (s *Sched) enqueue(t *task.Task, cpu, arrayIdx int, front bool) {
	rq := &s.rqs[cpu]
	arr := &rq.arrays[arrayIdx]
	lvl := s.levelFor(t)
	if !t.RealTime() && !s.cfg.InteractivityOff {
		s.bonusLevels[s.bonusOf(t)+maxBonus]++
	}
	if front {
		arr.lists[lvl].PushFront(&t.RunList)
	} else {
		arr.lists[lvl].PushBack(&t.RunList)
	}
	arr.setBit(lvl)
	arr.count++
	if arrayIdx != rq.activeIdx && arr.count == 1 {
		// The expired array just became non-empty: start (or restart)
		// the starvation clock.
		rq.expiredSince = rq.schedSeq
	}
	t.QIndex = cpu
	t.QStamp = stampOf(arrayIdx, lvl)
}

// enqueueExpired files t into cpu's expired array, recharging an empty
// quantum on the way in — the O(1) replacement for the stock scheduler's
// global recalculation loop.
func (s *Sched) enqueueExpired(t *task.Task, cpu int) {
	if !t.RealTime() && t.Counter(s.env.Epoch) == 0 {
		t.SetCounter(s.env.Epoch, t.Priority)
	}
	s.enqueue(t, cpu, 1-s.rqs[cpu].activeIdx, false)
}

// AddToRunqueue files a newly runnable task at the front of its level in
// its home CPU's active array; a task arriving with an exhausted quantum
// is recharged and parked in the expired array — unless it is
// interactive, in which case addTo recharges it into the active array.
func (s *Sched) AddToRunqueue(t *task.Task) {
	if t.IsIdle {
		panic("o1: idle task on run queue")
	}
	if t.OnRunqueue() {
		return
	}
	t.SyncCounter(s.env.Epoch)
	s.addTo(t, s.homeOf(t), true)
}

// PlaceWake accepts the kernel's SD_WAKE_IDLE hint: file the woken task
// directly on the given idle CPU's queue, inside the waker's cache
// domain, instead of behind its home CPU's backlog. Declined when the
// WakeIdleOff ablation knob is set, when the scheduler runs
// TopologyBlind (the hint is derived from the cache-domain layout this
// variant is defined not to see — pre-sched_domains kernels had no
// SD_WAKE_IDLE either), or when the hint is unusable.
func (s *Sched) PlaceWake(t *task.Task, cpu int) bool {
	if s.cfg.WakeIdleOff || s.cfg.TopologyBlind || t.IsIdle || cpu < 0 || cpu >= len(s.rqs) || !t.AllowedOn(cpu) || !s.env.CPUOnline(cpu) {
		return false
	}
	if t.OnRunqueue() {
		return false
	}
	t.SyncCounter(s.env.Epoch)
	s.addTo(t, cpu, true)
	return true
}

// addTo files a runnable task on cpu's queue, applying the interactivity
// rule for exhausted quanta: an interactive task waking with a spent
// counter is recharged into the active array — it must not wait out a
// full hog quantum in expired for the crime of having run recently —
// while a non-interactive one is recharged into expired as before. The
// re-insertion is bounded by the expired array's starvation clock.
func (s *Sched) addTo(t *task.Task, cpu int, front bool) {
	rq := &s.rqs[cpu]
	if !t.RealTime() && t.Counter(s.env.Epoch) == 0 {
		if s.interactive(t) && !s.reinsertBlocked(rq) {
			t.SetCounter(s.env.Epoch, t.Priority)
			s.interactiveRequeues++
			s.enqueue(t, cpu, rq.activeIdx, front)
			return
		}
		s.enqueueExpired(t, cpu)
		return
	}
	s.enqueue(t, cpu, rq.activeIdx, front)
}

// reinsertBlocked bounds interactive active-array re-insertion: once the
// expired array has waited StarvationLimit schedule() calls, interactive
// tasks stop jumping the queue so the forced swap can restore fairness.
func (s *Sched) reinsertBlocked(rq *runqueue) bool {
	return s.cfg.StarvationLimit >= 0 &&
		rq.expired().count > 0 &&
		rq.schedSeq-rq.expiredSince >= uint64(s.cfg.StarvationLimit)
}

// DelFromRunqueue unlinks t from whichever array list holds it.
func (s *Sched) DelFromRunqueue(t *task.Task) {
	if !t.OnRunqueue() {
		return
	}
	arrayIdx, lvl := unstamp(t.QStamp)
	arr := &s.rqs[t.QIndex].arrays[arrayIdx]
	arr.lists[lvl].Remove(&t.RunList)
	arr.count--
	if arr.lists[lvl].Empty() {
		arr.clearBit(lvl)
	}
}

// MoveFirstRunqueue moves t to the head of its level list, so it wins
// the FIFO tie-break against equal-priority tasks.
func (s *Sched) MoveFirstRunqueue(t *task.Task) {
	if !t.OnRunqueue() {
		return
	}
	arrayIdx, lvl := unstamp(t.QStamp)
	s.rqs[t.QIndex].arrays[arrayIdx].lists[lvl].MoveFront(&t.RunList)
}

// MoveLastRunqueue moves t to the tail of its level list, so it loses
// the tie-break (SCHED_RR rotation).
func (s *Sched) MoveLastRunqueue(t *task.Task) {
	if !t.OnRunqueue() {
		return
	}
	arrayIdx, lvl := unstamp(t.QStamp)
	s.rqs[t.QIndex].arrays[arrayIdx].lists[lvl].MoveBack(&t.RunList)
}

// Runnable returns the number of queued tasks; running tasks are
// dequeued while they execute, as in 2.5.
func (s *Sched) Runnable() int {
	n := 0
	for i := range s.rqs {
		n += s.rqs[i].len()
	}
	return n
}

// OnRunqueue reports whether the scheduler currently tracks t.
func (s *Sched) OnRunqueue(t *task.Task) bool { return t.OnRunqueue() }

// QueueLen returns CPU q's total queued tasks (both arrays), for tests.
func (s *Sched) QueueLen(q int) int { return s.rqs[q].len() }

// ActiveLen and ExpiredLen expose per-array occupancy, for tests.
func (s *Sched) ActiveLen(q int) int  { return s.rqs[q].active().count }
func (s *Sched) ExpiredLen(q int) int { return s.rqs[q].expired().count }

// ExportRunnable implements sched.Scheduler. Drain order is CPU 0..n-1;
// per CPU the active array then the expired one, each in ascending level
// order (best priority first), each level front to back.
func (s *Sched) ExportRunnable() []*task.Task {
	out := make([]*task.Task, 0, s.Runnable())
	for cpu := range s.rqs {
		rq := &s.rqs[cpu]
		for _, arr := range [2]*prioArray{rq.active(), rq.expired()} {
			for {
				lvl := arr.firstSet()
				if lvl < 0 {
					break
				}
				t := task.FromNode(arr.lists[lvl].First())
				s.DelFromRunqueue(t)
				sched.ResetQueueState(t)
				out = append(out, t)
			}
		}
		rq.rotate = nil
	}
	return out
}

// DrainCPU implements sched.Scheduler: empty the offlined CPU's private
// arrays — active first, then expired, each in ascending level order —
// so its tasks can be re-filed on surviving queues.
func (s *Sched) DrainCPU(cpu int, out []*task.Task) []*task.Task {
	rq := &s.rqs[cpu]
	for _, arr := range [2]*prioArray{rq.active(), rq.expired()} {
		for {
			lvl := arr.firstSet()
			if lvl < 0 {
				break
			}
			t := task.FromNode(arr.lists[lvl].First())
			s.DelFromRunqueue(t)
			sched.ResetQueueState(t)
			out = append(out, t)
		}
	}
	rq.rotate = nil
	return out
}

// Schedule implements the O(1) pick: file the previous task, swap arrays
// if the active one drained, read the bitmap, take the head of the best
// list. Cost is charged per bitmap word touched and per list head
// examined — never per queued task.
func (s *Sched) Schedule(cpu int, prev *task.Task) sched.Result {
	env := s.env
	res := sched.Result{Cycles: env.Cost.ScheduleBase}
	rq := &s.rqs[cpu]
	rq.schedSeq++
	rotated := !prev.IsIdle && rq.rotate == prev
	rq.rotate = nil

	yielded := false
	if !prev.IsIdle {
		yielded = prev.Yielded
		prev.Yielded = false
		rrExpired := false
		if prev.Policy == task.RR && prev.Counter(env.Epoch) == 0 {
			prev.SetCounter(env.Epoch, prev.Priority)
			rrExpired = true
		}
		if prev.Runnable() && !prev.OnRunqueue() {
			home := s.homeOf(prev)
			switch {
			case !prev.RealTime() && prev.Counter(env.Epoch) == 0:
				// Quantum expiry: recharge. Interactive tasks re-enter
				// the active array at the tail of their level (2.6's
				// TASK_INTERACTIVE requeue, bounded by the starvation
				// clock); everyone else parks in expired.
				s.addTo(prev, home, false)
			case yielded && !prev.RealTime():
				// sched_yield sends a timesharing task behind every
				// active task, 2.6-style, so yield-spinning locks
				// cannot starve a lower-priority lock holder.
				s.enqueueExpired(prev, home)
			case yielded || rrExpired:
				// Real-time yield/rotation: tail of its own level.
				s.enqueue(prev, home, s.rqs[home].activeIdx, false)
			case rotated:
				// TIMESLICE_GRANULARITY rotation: quantum left, but a
				// same-level peer is waiting — tail of its level, so
				// the peers round-robin inside the quantum.
				s.enqueue(prev, home, s.rqs[home].activeIdx, false)
			default:
				// Preempted with quantum left: keep its spot.
				s.enqueue(prev, home, s.rqs[home].activeIdx, true)
			}
			res.Cycles += env.Cost.AddRunqueue + env.Cost.BitmapOp
		}
	}

	if env.NCPU > 1 {
		rq.sinceBalance++
		if rq.sinceBalance >= balanceEvery {
			rq.sinceBalance = 0
			s.pullBalance(cpu, &res)
		}
	}

	best := s.pickLocal(cpu, &res)
	if best == nil {
		best = s.steal(cpu, &res)
	}
	if best != nil {
		s.DelFromRunqueue(best)
		res.Cycles += env.Cost.DelRunqueue + env.Cost.BitmapOp
		res.Next = best
	}
	return res
}

// PreemptsCurr implements the kernel's wake-preemption comparison —
// 2.6's TASK_PREEMPTS_CURR: the woken task preempts the running one when
// its effective (bonus-laden) level is strictly better. This is how
// sleep_avg reaches the wake path: an interactive task at the same
// static priority as a hog files five levels above it and preempts it on
// wake, where the 2.3.99 goodness comparison would see a tie.
func (s *Sched) PreemptsCurr(t, curr *task.Task) bool {
	return s.levelFor(t) < s.levelFor(curr)
}

// TickPreempt implements the kernel's tick-time preemption hook: called
// from the timer tick while t runs on cpu with quantum remaining. Two
// interactivity rules fire here, distinguished for the kernel's stats.
// First, if the active array holds a strictly better effective level
// than the running task's — a sleeper's bonus rose past a hog whose own
// bonus drained since the wake-time comparison tied — the tick preempts
// (preempt true, rotation false) so the better task never waits out a
// whole quantum on a stale decision; the bitmap makes the check O(1),
// and the head of the better list must itself be pickable here so an
// unpickable affinity straggler cannot buy a spurious interrupt every
// tick. Second, TIMESLICE_GRANULARITY chunking (both true): every
// GranularityTicks of consumed quantum, if another task waits at t's
// own effective level on this CPU, t is marked for rotation and
// preempted; the next Schedule files it at the tail of its level, so
// same-level interactive tasks round-robin inside a quantum instead of
// serializing.
func (s *Sched) TickPreempt(cpu int, t *task.Task) (preempt, rotation bool) {
	if s.cfg.InteractivityOff || t.RealTime() {
		return false, false
	}
	rq := &s.rqs[cpu]
	lvl := s.levelFor(t)
	if best := rq.active().firstSet(); best >= 0 && best < lvl {
		head := task.FromNode(rq.active().lists[best].First())
		if (!head.HasCPU || head.Processor == cpu) && head.AllowedOn(cpu) {
			return true, false // a better level waits: re-pick, t keeps its spot
		}
	}
	if s.cfg.GranularityTicks < 0 || !s.interactive(t) {
		return false, false
	}
	c := t.Counter(s.env.Epoch)
	if c <= 0 || c%s.cfg.GranularityTicks != 0 {
		return false, false
	}
	if rq.active().lists[lvl].Empty() {
		return false, false
	}
	rq.rotate = t
	return true, true
}

// pickLocal selects from cpu's own queue, swapping in the expired array
// when the active one yields nothing. The swap triggers on "no pickable
// task", not "array empty": an unpickable straggler (an inconsistent
// affinity mask filed here by homeOf's fallback) must not pin the
// arrays and starve the expired tasks behind it.
func (s *Sched) pickLocal(cpu int, res *sched.Result) *task.Task {
	rq := &s.rqs[cpu]
	if s.expiredStarving(rq) {
		// Starvation guard: the expired array has waited too long
		// behind a never-draining active array. Force the swap; the
		// former active tasks keep their quantum and will win again
		// after the next natural swap.
		s.swapArrays(rq, res)
	}
	if t := s.pickArray(rq.active(), cpu, res); t != nil {
		return t
	}
	if rq.expired().count > 0 {
		// O(1) array swap: the expired tasks were recharged when they
		// were filed, so no walk happens here.
		s.swapArrays(rq, res)
		return s.pickArray(rq.active(), cpu, res)
	}
	return nil
}

// rtWord1Mask covers the real-time levels that spill into the second
// bitmap word (levels 64..rtLevels-1).
const rtWord1Mask = 1<<(rtLevels-64) - 1

// holdsRealTime reports whether any real-time level of the array is
// populated — two word tests, O(1).
func (a *prioArray) holdsRealTime() bool {
	return a.bitmap[0] != 0 || a.bitmap[1]&rtWord1Mask != 0
}

// expiredStarving reports whether the starvation guard should fire: the
// expired array has been non-empty for StarvationLimit schedule() calls.
// A queued real-time task vetoes the forced swap — demoting it into the
// expired array would let SCHED_OTHER tasks run ahead of it, and RT
// starving OTHER is policy, not a bug.
func (s *Sched) expiredStarving(rq *runqueue) bool {
	return s.cfg.StarvationLimit >= 0 &&
		rq.expired().count > 0 &&
		rq.schedSeq-rq.expiredSince >= uint64(s.cfg.StarvationLimit) &&
		!rq.active().holdsRealTime()
}

// swapArrays flips active and expired in O(1) and restarts the
// starvation clock for whatever the new expired array holds.
func (s *Sched) swapArrays(rq *runqueue, res *sched.Result) {
	rq.activeIdx = 1 - rq.activeIdx
	rq.expiredSince = rq.schedSeq
	res.Cycles += s.env.Cost.BitmapOp
}

// pickArray walks the bitmap from the highest-priority populated level
// down, returning the first head task runnable on cpu. Tasks pinned
// elsewhere (the rare leftovers of an affinity change) are skipped.
func (s *Sched) pickArray(arr *prioArray, cpu int, res *sched.Result) *task.Task {
	env := s.env
	for lvl := arr.firstSet(); lvl >= 0; lvl = arr.nextSet(lvl + 1) {
		res.Cycles += env.Cost.BitmapOp
		var found *task.Task
		arr.lists[lvl].ForEach(func(n *klist.Node) bool {
			t := task.FromNode(n)
			res.Examined++
			res.Cycles += env.Cost.Touch(env.NCPU)
			if (t.HasCPU && t.Processor != cpu) || !t.AllowedOn(cpu) {
				return true
			}
			found = t
			return false
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// steal takes the best movable task from another queue — the 2.5
// idle-balance path, made hierarchical: victims inside the thief's cache
// domain are exhausted before any cross-domain queue is touched, and a
// cross-domain steal additionally requires the victim to hold at least
// crossStealMin tasks (an imbalance of one does not justify paying the
// interconnect refill). Within each tier the longest queue is tried
// first, but a queue full of pinned tasks must not end the hunt while a
// shorter queue holds stealable work, so the remaining queues are tried
// in index order. Each victim queue's lock is charged.
func (s *Sched) steal(cpu int, res *sched.Result) *task.Task {
	if t := s.stealTier(cpu, res, true); t != nil {
		return t
	}
	if s.topo.NumDomains() == 1 {
		return nil // the local tier already covered every queue
	}
	return s.stealTier(cpu, res, false)
}

// stealTier hunts one tier of the hierarchy: the thief's own domain
// (local=true) or the rest of the machine (local=false).
func (s *Sched) stealTier(cpu int, res *sched.Result, local bool) *task.Task {
	minLen := 1
	if !local {
		minLen = crossStealMin
	}
	eligible := func(i int) bool {
		return s.topo.SameDomain(i, cpu) == local && s.rqs[i].len() >= minLen
	}
	first := s.busiestWhere(cpu, 0, eligible)
	if first < 0 {
		return nil
	}
	if t := s.stealFrom(first, cpu, res); t != nil {
		s.noteMove(cpu, first)
		return t
	}
	for i := range s.rqs {
		if i == cpu || i == first || !eligible(i) {
			continue
		}
		if t := s.stealFrom(i, cpu, res); t != nil {
			s.noteMove(cpu, i)
			return t
		}
	}
	return nil
}

// noteMove classifies one balancer-driven migration for the stealing
// CPU's counters.
func (s *Sched) noteMove(cpu, victim int) {
	if s.topo.SameDomain(cpu, victim) {
		s.steals[cpu].Intra++
	} else {
		s.steals[cpu].Cross++
	}
}

// stealFrom scans one victim queue, expired array first: those tasks
// wait longest and are the coldest, so migrating them costs the least.
func (s *Sched) stealFrom(victim, cpu int, res *sched.Result) *task.Task {
	res.Cycles += s.env.Cost.LockOp
	vrq := &s.rqs[victim]
	if t := s.pickArray(vrq.expired(), cpu, res); t != nil {
		return t
	}
	return s.pickArray(vrq.active(), cpu, res)
}

// busiestWhere returns the index of the longest queue other than cpu
// satisfying the predicate, with strictly more than floor queued tasks,
// or -1.
func (s *Sched) busiestWhere(cpu, floor int, ok func(i int) bool) int {
	victim := -1
	most := floor
	for i := range s.rqs {
		if i == cpu || !ok(i) {
			continue
		}
		if n := s.rqs[i].len(); n > most {
			most = n
			victim = i
		}
	}
	return victim
}

// pullBalance is the periodic half of 2.5's load_balance, run through the
// domain hierarchy: an in-domain victim at the balanceImbalance threshold
// moves one task, exactly as before; with no in-domain imbalance, a
// cross-domain victim is considered only past the larger CrossImbalance
// gap, and then a batch of tasks moves at once — one decisive rebalance
// amortizes the per-task interconnect refill that would otherwise recur
// every balancing period.
func (s *Sched) pullBalance(cpu int, res *sched.Result) {
	rq := &s.rqs[cpu]
	inDomain := func(i int) bool { return s.topo.SameDomain(i, cpu) }
	if victim := s.busiestWhere(cpu, rq.len()+balanceImbalance-1, inDomain); victim >= 0 {
		s.pullFrom(victim, cpu, 1, res)
		return
	}
	if s.topo.NumDomains() == 1 {
		return
	}
	outDomain := func(i int) bool { return !s.topo.SameDomain(i, cpu) }
	victim := s.busiestWhere(cpu, rq.len()+s.cfg.CrossImbalance-1, outDomain)
	if victim < 0 {
		return
	}
	batch := (s.rqs[victim].len() - rq.len()) / 2
	if batch > s.cfg.CrossBatch {
		batch = s.cfg.CrossBatch
	}
	if batch < 1 {
		batch = 1
	}
	s.pullFrom(victim, cpu, batch, res)
}

// pullFrom moves up to max movable tasks from victim's queue to cpu,
// expired-first as 2.5's load_balance: those tasks are the cache-coldest
// and the victim will not miss them soon, whereas its active head is
// exactly what it would dispatch next. The victim's lock is charged once
// for the whole batch.
func (s *Sched) pullFrom(victim, cpu, max int, res *sched.Result) int {
	res.Cycles += s.env.Cost.LockOp
	vrq := &s.rqs[victim]
	rq := &s.rqs[cpu]
	moved := 0
	for moved < max {
		t := s.pickArray(vrq.expired(), cpu, res)
		if t == nil {
			t = s.pickArray(vrq.active(), cpu, res)
		}
		if t == nil {
			break
		}
		s.DelFromRunqueue(t)
		// Migrated tasks enter at the tail of their level: they lost
		// their cache footprint, so they should not jump local tasks of
		// equal priority.
		s.enqueue(t, cpu, rq.activeIdx, false)
		res.Cycles += s.env.Cost.MoveRunqueue + s.env.Cost.BitmapOp
		s.noteMove(cpu, victim)
		moved++
	}
	return moved
}
