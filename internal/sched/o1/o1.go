// Package o1 implements the design the multi-queue scheduler (internal/
// sched/mq) points toward as the historical endpoint of the paper's §8
// future work: the Linux 2.5 O(1) scheduler. Every processor owns a
// private run queue (the kernel detects the PerCPU marker and splits the
// global run-queue lock), and each queue holds two priority arrays —
// active and expired — with one list per priority level and a find-first-
// set bitmap over the levels.
//
// schedule() therefore never scans tasks: it reads the bitmap, takes the
// head of the highest populated list, and runs it. No goodness() is
// computed on the pick path, which is exactly the contrast the ablation
// benchmarks quantify against the stock O(n) scan. The counter-
// recalculation loop disappears entirely: a task that exhausts its
// quantum is recharged immediately and filed into the expired array, and
// when the active array empties the two arrays swap in O(1). Recalcs is
// always zero for this policy.
//
// Priority levels follow the 2.5 kernel's convention: lower index is
// higher priority. Real-time tasks map rt_priority onto the top 100
// levels; SCHED_OTHER tasks map their static priority onto the 40 levels
// below, so a real-time task always outranks a timesharing one and the
// bitmap search honors rt_priority order for free.
//
// Balancing is pull-based, as in 2.5: a CPU whose queue empties steals
// the best movable task from the longest queue, and every balanceEvery
// schedule() invocations a CPU with at least two fewer queued tasks than
// the busiest queue pulls one task across.
package o1

import (
	"math/bits"

	"elsc/internal/klist"
	"elsc/internal/sched"
	"elsc/internal/task"
)

const (
	// rtLevels reserves one level per rt_priority value (0..99).
	rtLevels = task.MaxRTPriority + 1
	// numLevels adds one level per SCHED_OTHER static priority (1..40).
	numLevels = rtLevels + task.MaxPriority
	// nWords is the bitmap size: one bit per level.
	nWords = (numLevels + 63) / 64

	// balanceEvery is the pull-balancing period in schedule() calls per
	// CPU, and balanceImbalance the queue-length gap that triggers a
	// pull — the 2.5 kernel's "25% imbalance" rule at small queue sizes.
	balanceEvery     = 32
	balanceImbalance = 2
)

// levelOf maps a task to its priority level; lower level = higher
// priority, so the bitmap find-first-set returns the best level directly.
func levelOf(t *task.Task) int {
	if t.RealTime() {
		return task.MaxRTPriority - t.RTPriority
	}
	return rtLevels + task.MaxPriority - t.Priority
}

// prioArray is one priority array: a bitmap over levels plus one FIFO
// list per level, mirroring struct prio_array.
type prioArray struct {
	bitmap [nWords]uint64
	lists  [numLevels]klist.Head
	count  int
}

func (a *prioArray) init() {
	for i := range a.lists {
		a.lists[i].Init()
	}
}

// firstSet returns the highest-priority populated level, or -1.
func (a *prioArray) firstSet() int {
	for w := 0; w < nWords; w++ {
		if a.bitmap[w] != 0 {
			return w*64 + bits.TrailingZeros64(a.bitmap[w])
		}
	}
	return -1
}

// nextSet returns the first populated level >= from, or -1.
func (a *prioArray) nextSet(from int) int {
	if from >= numLevels {
		return -1
	}
	w := from / 64
	word := a.bitmap[w] &^ (1<<uint(from%64) - 1)
	for {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
		w++
		if w >= nWords {
			return -1
		}
		word = a.bitmap[w]
	}
}

func (a *prioArray) setBit(lvl int)   { a.bitmap[lvl/64] |= 1 << uint(lvl%64) }
func (a *prioArray) clearBit(lvl int) { a.bitmap[lvl/64] &^= 1 << uint(lvl%64) }

// runqueue is one CPU's pair of arrays; activeIdx selects the active one
// so the array swap is a single index flip, never a task walk.
type runqueue struct {
	arrays       [2]prioArray
	activeIdx    int
	sinceBalance int
}

func (rq *runqueue) active() *prioArray  { return &rq.arrays[rq.activeIdx] }
func (rq *runqueue) expired() *prioArray { return &rq.arrays[1-rq.activeIdx] }
func (rq *runqueue) len() int            { return rq.arrays[0].count + rq.arrays[1].count }

// Sched is the O(1) scheduler. Create with New.
type Sched struct {
	env *sched.Env
	rqs []runqueue
}

// New returns an O(1) scheduler bound to env.
func New(env *sched.Env) *Sched {
	s := &Sched{env: env, rqs: make([]runqueue, env.NCPU)}
	for i := range s.rqs {
		s.rqs[i].arrays[0].init()
		s.rqs[i].arrays[1].init()
	}
	return s
}

// Name implements sched.Scheduler.
func (s *Sched) Name() string { return "o1" }

// PerCPU marks the policy as using per-CPU run-queue locks.
func (s *Sched) PerCPU() bool { return true }

// homeOf picks the queue for t: its last CPU when the affinity mask
// allows it, otherwise the least-loaded allowed queue.
func (s *Sched) homeOf(t *task.Task) int {
	if t.EverRan && t.Processor < len(s.rqs) && t.AllowedOn(t.Processor) {
		return t.Processor
	}
	best := -1
	for i := range s.rqs {
		if !t.AllowedOn(i) {
			continue
		}
		if best < 0 || s.rqs[i].len() < s.rqs[best].len() {
			best = i
		}
	}
	if best < 0 {
		best = 0 // inconsistent mask: fall back rather than lose the task
	}
	return best
}

// Task bookkeeping: QIndex holds the home CPU (the kernel maps it to the
// per-CPU lock), QStamp packs the array index and level so removal never
// searches, and QZero is unused.
func stampOf(arrayIdx, lvl int) uint64 { return uint64(arrayIdx)<<8 | uint64(lvl) }

func unstamp(st uint64) (arrayIdx, lvl int) { return int(st >> 8 & 1), int(st & 0xff) }

// enqueue files t at level lvl of the given array on cpu's queue.
// front selects head insertion (newly woken tasks, preempted tasks)
// versus tail (round-robin rotation, expired tasks).
func (s *Sched) enqueue(t *task.Task, cpu, arrayIdx int, front bool) {
	rq := &s.rqs[cpu]
	arr := &rq.arrays[arrayIdx]
	lvl := levelOf(t)
	if front {
		arr.lists[lvl].PushFront(&t.RunList)
	} else {
		arr.lists[lvl].PushBack(&t.RunList)
	}
	arr.setBit(lvl)
	arr.count++
	t.QIndex = cpu
	t.QStamp = stampOf(arrayIdx, lvl)
}

// enqueueExpired files t into cpu's expired array, recharging an empty
// quantum on the way in — the O(1) replacement for the stock scheduler's
// global recalculation loop.
func (s *Sched) enqueueExpired(t *task.Task, cpu int) {
	if !t.RealTime() && t.Counter(s.env.Epoch) == 0 {
		t.SetCounter(s.env.Epoch, t.Priority)
	}
	s.enqueue(t, cpu, 1-s.rqs[cpu].activeIdx, false)
}

// AddToRunqueue files a newly runnable task at the front of its level in
// its home CPU's active array; a task arriving with an exhausted quantum
// is recharged and parked in the expired array instead.
func (s *Sched) AddToRunqueue(t *task.Task) {
	if t.IsIdle {
		panic("o1: idle task on run queue")
	}
	if t.OnRunqueue() {
		return
	}
	t.SyncCounter(s.env.Epoch)
	home := s.homeOf(t)
	if !t.RealTime() && t.Counter(s.env.Epoch) == 0 {
		s.enqueueExpired(t, home)
		return
	}
	s.enqueue(t, home, s.rqs[home].activeIdx, true)
}

// DelFromRunqueue unlinks t from whichever array list holds it.
func (s *Sched) DelFromRunqueue(t *task.Task) {
	if !t.OnRunqueue() {
		return
	}
	arrayIdx, lvl := unstamp(t.QStamp)
	arr := &s.rqs[t.QIndex].arrays[arrayIdx]
	arr.lists[lvl].Remove(&t.RunList)
	arr.count--
	if arr.lists[lvl].Empty() {
		arr.clearBit(lvl)
	}
}

// MoveFirstRunqueue moves t to the head of its level list, so it wins
// the FIFO tie-break against equal-priority tasks.
func (s *Sched) MoveFirstRunqueue(t *task.Task) {
	if !t.OnRunqueue() {
		return
	}
	arrayIdx, lvl := unstamp(t.QStamp)
	s.rqs[t.QIndex].arrays[arrayIdx].lists[lvl].MoveFront(&t.RunList)
}

// MoveLastRunqueue moves t to the tail of its level list, so it loses
// the tie-break (SCHED_RR rotation).
func (s *Sched) MoveLastRunqueue(t *task.Task) {
	if !t.OnRunqueue() {
		return
	}
	arrayIdx, lvl := unstamp(t.QStamp)
	s.rqs[t.QIndex].arrays[arrayIdx].lists[lvl].MoveBack(&t.RunList)
}

// Runnable returns the number of queued tasks; running tasks are
// dequeued while they execute, as in 2.5.
func (s *Sched) Runnable() int {
	n := 0
	for i := range s.rqs {
		n += s.rqs[i].len()
	}
	return n
}

// OnRunqueue reports whether the scheduler currently tracks t.
func (s *Sched) OnRunqueue(t *task.Task) bool { return t.OnRunqueue() }

// QueueLen returns CPU q's total queued tasks (both arrays), for tests.
func (s *Sched) QueueLen(q int) int { return s.rqs[q].len() }

// ActiveLen and ExpiredLen expose per-array occupancy, for tests.
func (s *Sched) ActiveLen(q int) int  { return s.rqs[q].active().count }
func (s *Sched) ExpiredLen(q int) int { return s.rqs[q].expired().count }

// Schedule implements the O(1) pick: file the previous task, swap arrays
// if the active one drained, read the bitmap, take the head of the best
// list. Cost is charged per bitmap word touched and per list head
// examined — never per queued task.
func (s *Sched) Schedule(cpu int, prev *task.Task) sched.Result {
	env := s.env
	res := sched.Result{Cycles: env.Cost.ScheduleBase}
	rq := &s.rqs[cpu]

	yielded := false
	if !prev.IsIdle {
		yielded = prev.Yielded
		prev.Yielded = false
		rrExpired := false
		if prev.Policy == task.RR && prev.Counter(env.Epoch) == 0 {
			prev.SetCounter(env.Epoch, prev.Priority)
			rrExpired = true
		}
		if prev.Runnable() && !prev.OnRunqueue() {
			home := s.homeOf(prev)
			switch {
			case !prev.RealTime() && prev.Counter(env.Epoch) == 0:
				// Quantum expiry: recharge and park in expired.
				s.enqueueExpired(prev, home)
			case yielded && !prev.RealTime():
				// sched_yield sends a timesharing task behind every
				// active task, 2.6-style, so yield-spinning locks
				// cannot starve a lower-priority lock holder.
				s.enqueueExpired(prev, home)
			case yielded || rrExpired:
				// Real-time yield/rotation: tail of its own level.
				s.enqueue(prev, home, s.rqs[home].activeIdx, false)
			default:
				// Preempted with quantum left: keep its spot.
				s.enqueue(prev, home, s.rqs[home].activeIdx, true)
			}
			res.Cycles += env.Cost.AddRunqueue + env.Cost.BitmapOp
		}
	}

	if env.NCPU > 1 {
		rq.sinceBalance++
		if rq.sinceBalance >= balanceEvery {
			rq.sinceBalance = 0
			s.pullBalance(cpu, &res)
		}
	}

	best := s.pickLocal(cpu, &res)
	if best == nil {
		best = s.steal(cpu, &res)
	}
	if best != nil {
		s.DelFromRunqueue(best)
		res.Cycles += env.Cost.DelRunqueue + env.Cost.BitmapOp
		res.Next = best
	}
	return res
}

// pickLocal selects from cpu's own queue, swapping in the expired array
// when the active one yields nothing. The swap triggers on "no pickable
// task", not "array empty": an unpickable straggler (an inconsistent
// affinity mask filed here by homeOf's fallback) must not pin the
// arrays and starve the expired tasks behind it.
func (s *Sched) pickLocal(cpu int, res *sched.Result) *task.Task {
	rq := &s.rqs[cpu]
	if t := s.pickArray(rq.active(), cpu, res); t != nil {
		return t
	}
	if rq.expired().count > 0 {
		// O(1) array swap: the expired tasks were recharged when they
		// were filed, so no walk happens here.
		rq.activeIdx = 1 - rq.activeIdx
		res.Cycles += s.env.Cost.BitmapOp
		return s.pickArray(rq.active(), cpu, res)
	}
	return nil
}

// pickArray walks the bitmap from the highest-priority populated level
// down, returning the first head task runnable on cpu. Tasks pinned
// elsewhere (the rare leftovers of an affinity change) are skipped.
func (s *Sched) pickArray(arr *prioArray, cpu int, res *sched.Result) *task.Task {
	env := s.env
	for lvl := arr.firstSet(); lvl >= 0; lvl = arr.nextSet(lvl + 1) {
		res.Cycles += env.Cost.BitmapOp
		var found *task.Task
		arr.lists[lvl].ForEach(func(n *klist.Node) bool {
			t := task.FromNode(n)
			res.Examined++
			res.Cycles += env.Cost.Touch(env.NCPU)
			if (t.HasCPU && t.Processor != cpu) || !t.AllowedOn(cpu) {
				return true
			}
			found = t
			return false
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// steal takes the best movable task from another queue — the 2.5
// idle-balance path. The longest queue is tried first, but a queue full
// of pinned tasks must not end the hunt while a shorter queue holds
// stealable work, so the remaining queues are tried in index order.
// Each victim queue's lock is charged.
func (s *Sched) steal(cpu int, res *sched.Result) *task.Task {
	first := s.busiest(cpu, 0)
	if first < 0 {
		return nil
	}
	if t := s.stealFrom(first, cpu, res); t != nil {
		return t
	}
	for i := range s.rqs {
		if i == cpu || i == first || s.rqs[i].len() == 0 {
			continue
		}
		if t := s.stealFrom(i, cpu, res); t != nil {
			return t
		}
	}
	return nil
}

// stealFrom scans one victim queue, expired array first: those tasks
// wait longest and are the coldest, so migrating them costs the least.
func (s *Sched) stealFrom(victim, cpu int, res *sched.Result) *task.Task {
	res.Cycles += s.env.Cost.LockOp
	vrq := &s.rqs[victim]
	if t := s.pickArray(vrq.expired(), cpu, res); t != nil {
		return t
	}
	return s.pickArray(vrq.active(), cpu, res)
}

// busiest returns the index of the longest queue other than cpu with
// strictly more than floor queued tasks, or -1.
func (s *Sched) busiest(cpu, floor int) int {
	victim := -1
	most := floor
	for i := range s.rqs {
		if i == cpu {
			continue
		}
		if n := s.rqs[i].len(); n > most {
			most = n
			victim = i
		}
	}
	return victim
}

// pullBalance moves one task from the busiest queue to cpu when the
// imbalance reaches balanceImbalance — the periodic half of 2.5's
// load_balance.
func (s *Sched) pullBalance(cpu int, res *sched.Result) {
	rq := &s.rqs[cpu]
	victim := s.busiest(cpu, rq.len()+balanceImbalance-1)
	if victim < 0 {
		return
	}
	// Expired-first, as 2.5's load_balance: those tasks are the
	// cache-coldest and the victim will not miss them soon, whereas its
	// active head is exactly what it would dispatch next.
	res.Cycles += s.env.Cost.LockOp
	vrq := &s.rqs[victim]
	t := s.pickArray(vrq.expired(), cpu, res)
	if t == nil {
		t = s.pickArray(vrq.active(), cpu, res)
	}
	if t == nil {
		return
	}
	s.DelFromRunqueue(t)
	// Migrated tasks enter at the tail of their level: they lost their
	// cache footprint, so they should not jump local tasks of equal
	// priority.
	s.enqueue(t, cpu, rq.activeIdx, false)
	res.Cycles += s.env.Cost.MoveRunqueue + s.env.Cost.BitmapOp
}
