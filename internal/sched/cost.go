package sched

// CostModel assigns simulated cycle costs to scheduler operations. The
// simulated machine is a 400 MHz Pentium II-class SMP (the paper's IBM
// Netfinity 5500/7000), where a load that misses both caches costs on the
// order of 10^2 cycles. The constants below are calibrated so that the
// stock scheduler spends roughly the paper's Figure 5 magnitudes
// (~10-20k cycles per schedule() under VolanoMark load) and the light-load
// experiments show scheduler cost in the noise. Only relative shapes are
// claimed, never absolute equality with the paper's hardware.
type CostModel struct {
	// ScheduleBase is the fixed overhead of entering schedule():
	// bottom-half processing, administrative work, function prologue.
	ScheduleBase uint64

	// GoodnessCost is the pure computation of goodness() for one task.
	GoodnessCost uint64

	// ExamineCost is the per-task overhead of walking to and touching a
	// task_struct on the run queue — dominated by cache misses on the
	// pointer chase, which is what makes the O(n) scan expensive.
	ExamineCost uint64

	// CoherencePenalty is the extra per-task cost of the scan on a
	// multiprocessor: the run-queue links and task fields are dirtied by
	// whichever CPU last scheduled, so every touch is a cache-coherence
	// miss. This is a first-order reason the stock scheduler's 4P
	// cycles-per-schedule in Figure 5 is roughly double its UP number.
	CoherencePenalty uint64

	// RecalcPerTask is the per-task cost of the counter recalculation
	// loop ("recalculating the counter values of all tasks in the
	// system"), including the tasklist walk.
	RecalcPerTask uint64

	// AddRunqueue / DelRunqueue / MoveRunqueue are the list surgery
	// costs. ELSC's table indexing makes its adds slightly dearer.
	AddRunqueue  uint64
	DelRunqueue  uint64
	MoveRunqueue uint64

	// TableIndexCost is the extra cost ELSC pays in add_to_runqueue to
	// compute the list index and maintain top/next_top.
	TableIndexCost uint64

	// BitmapOp is one priority-bitmap operation of the O(1) scheduler:
	// a find-first-set over one word, or setting/clearing a level bit.
	// Cheap by construction — the point of that design is that the pick
	// path costs a few of these instead of a per-task scan.
	BitmapOp uint64

	// LockOp is the uncontended cost of acquiring+releasing the
	// run-queue spinlock once.
	LockOp uint64

	// ContextSwitch is switch_to: register state, kernel stack swap.
	ContextSwitch uint64

	// MMSwitch is the extra cost of switching address spaces (CR3
	// reload, TLB flush) when the next task has a different mm.
	MMSwitch uint64

	// CacheRefillMax caps the cache-refill penalty charged to a task
	// dispatched on a CPU whose cache no longer holds its working set.
	// The 15-point affinity bonus exists to dodge exactly this cost.
	CacheRefillMax uint64

	// CacheRefillPerWork scales pollution into penalty: penalty =
	// min(CacheRefillMax, pollution/CacheRefillPerWork) where pollution
	// is the cycles other tasks ran on that CPU since this task left it.
	CacheRefillPerWork uint64

	// CrossDomainRefillMax is the refill cost of a migration that leaves
	// the task's cache domain: the working set must be pulled through
	// the interconnect from a foreign last-level cache or remote memory,
	// so it dwarfs the intra-domain CacheRefillMax. This is what makes
	// topology-blind balancing expensive on the NUMA-style specs and
	// what the o1 scheduler's hierarchical steal exists to avoid.
	CrossDomainRefillMax uint64

	// RemoteAccessPct is the sustained cost of NUMA-style domains: a
	// task executing on a CPU outside the domain that holds its memory
	// runs this percent slower (every load crosses the interconnect),
	// until its pages rehome. The one-shot refill above is the cost of
	// arriving; this is the cost of staying.
	RemoteAccessPct uint64

	// RehomeCycles is how many cycles a task must execute consecutively
	// in one foreign domain before its pages migrate there and the
	// remote-access penalty stops — the AutoNUMA-style page-migration
	// horizon.
	RehomeCycles uint64

	// MaxSleepAvg is the ceiling on a task's sleep_avg interactivity
	// credit, in cycles. It lives in the cost model so the kernel's
	// wake-side clamp and any policy's bonus mapping read the same
	// ceiling: bonus = sleep_avg relative to this value. The default is
	// five timer ticks (50 ms at 400 MHz): one ordinary blocking stretch
	// (a few ms) moves the bonus a whole step, so a sleeper separates
	// from a hog within its first wake cycle, and a quarter quantum of
	// blocked time marks a task fully interactive.
	MaxSleepAvg uint64

	// SleepAvgOp is the bookkeeping cost of one sleep_avg update on the
	// wake path (a load, an add, a clamp against the task's cache line).
	SleepAvgOp uint64

	// SyscallBase is the fixed user/kernel crossing cost (int 0x80,
	// register save, dispatch).
	SyscallBase uint64

	// WakeupCost is try_to_wake_up minus the run-queue ops: state
	// check, reschedule_idle scan.
	WakeupCost uint64

	// TickCost is the timer interrupt path charged to the running task.
	TickCost uint64
}

// DefaultCostModel returns the calibrated model described above.
func DefaultCostModel() CostModel {
	return CostModel{
		ScheduleBase:         600,
		GoodnessCost:         25,
		ExamineCost:          70,
		CoherencePenalty:     250,
		RecalcPerTask:        45,
		AddRunqueue:          80,
		DelRunqueue:          60,
		MoveRunqueue:         90,
		TableIndexCost:       70,
		BitmapOp:             20,
		LockOp:               60,
		ContextSwitch:        400,
		MMSwitch:             900,
		CacheRefillMax:       6000,
		CacheRefillPerWork:   40,
		CrossDomainRefillMax: 30000,
		RemoteAccessPct:      200,
		RehomeCycles:         20_000_000,
		MaxSleepAvg:          20_000_000,
		SleepAvgOp:           15,
		SyscallBase:          700,
		WakeupCost:           500,
		TickCost:             500,
	}
}

// ExamineTotal is the cost of evaluating one candidate: walking to it plus
// computing its goodness.
func (c CostModel) ExamineTotal() uint64 { return c.ExamineCost + c.GoodnessCost }

// Touch is the cost of reaching one run-queue entry on a machine with ncpu
// processors, including the coherence miss on a multiprocessor.
func (c CostModel) Touch(ncpu int) uint64 {
	t := c.ExamineCost
	if ncpu > 1 {
		t += c.CoherencePenalty
	}
	return t
}

// Evaluate is Touch plus the goodness computation.
func (c CostModel) Evaluate(ncpu int) uint64 { return c.Touch(ncpu) + c.GoodnessCost }
