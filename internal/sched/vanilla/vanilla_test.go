package vanilla

import (
	"testing"
	"testing/quick"

	"elsc/internal/sched"
	"elsc/internal/sim"
	"elsc/internal/task"
)

func newEnv(ncpu int, ntasks int) *sched.Env {
	return sched.NewEnv(ncpu, ncpu > 1, func() int { return ntasks })
}

func mkTask(env *sched.Env, id, prio, counter int) *task.Task {
	t := task.New(id, "t", nil, env.Epoch)
	t.Priority = prio
	t.SetCounter(env.Epoch, counter)
	return t
}

// idlePrev builds the placeholder the kernel passes when waking from idle.
func idlePrev() *task.Task {
	t := task.New(-1, "idle", nil, nil)
	t.IsIdle = true
	return t
}

func TestPicksHighestGoodness(t *testing.T) {
	env := newEnv(1, 3)
	s := New(env)
	lo := mkTask(env, 1, 20, 5)
	hi := mkTask(env, 2, 20, 30)
	mid := mkTask(env, 3, 20, 15)
	s.AddToRunqueue(lo)
	s.AddToRunqueue(hi)
	s.AddToRunqueue(mid)

	res := s.Schedule(0, idlePrev())
	if res.Next != hi {
		t.Fatalf("picked %v, want %v", res.Next, hi)
	}
	if res.Examined != 3 {
		t.Fatalf("examined %d, want 3 (full scan)", res.Examined)
	}
}

func TestEmptyQueueSchedulesIdleWithoutRecalc(t *testing.T) {
	// Paper footnote 1: an empty run queue schedules the idle task
	// rather than trigger the recalculation.
	env := newEnv(1, 0)
	s := New(env)
	res := s.Schedule(0, idlePrev())
	if res.Next != nil {
		t.Fatalf("picked %v from empty queue", res.Next)
	}
	if res.Recalcs != 0 {
		t.Fatal("empty queue must not recalculate")
	}
	if env.Epoch.N() != 0 {
		t.Fatal("epoch must not advance")
	}
}

func TestFrontOfQueueWinsTies(t *testing.T) {
	// "When the scheduler finds two equivalent tasks, the one closer to
	// the front of the list is chosen." PushFront order means the last
	// added is at the front.
	env := newEnv(1, 2)
	s := New(env)
	first := mkTask(env, 1, 20, 10)
	second := mkTask(env, 2, 20, 10)
	s.AddToRunqueue(first)  // queue: [first]
	s.AddToRunqueue(second) // queue: [second, first]
	res := s.Schedule(0, idlePrev())
	if res.Next != second {
		t.Fatalf("tie went to %v, want front task %v", res.Next, second)
	}
}

func TestMoveLastLosesTie(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	b := mkTask(env, 2, 20, 10)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b) // front: b
	s.MoveLastRunqueue(b)
	res := s.Schedule(0, idlePrev())
	if res.Next != a {
		t.Fatalf("picked %v, want %v after MoveLast(b)", res.Next, a)
	}
}

func TestMoveFirstWinsTie(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	b := mkTask(env, 2, 20, 10)
	s.AddToRunqueue(b)
	s.AddToRunqueue(a) // front: a
	s.MoveFirstRunqueue(b)
	res := s.Schedule(0, idlePrev())
	if res.Next != b {
		t.Fatalf("picked %v, want %v after MoveFirst(b)", res.Next, b)
	}
}

func TestSkipsTasksRunningElsewhere(t *testing.T) {
	env := newEnv(2, 2)
	s := New(env)
	busy := mkTask(env, 1, 20, 40)
	free := mkTask(env, 2, 20, 5)
	s.AddToRunqueue(busy)
	s.AddToRunqueue(free)
	busy.HasCPU = true
	busy.Processor = 1
	s.NoteRunning(busy, true)

	res := s.Schedule(0, idlePrev())
	if res.Next != free {
		t.Fatalf("picked %v, want %v (busy is on CPU 1)", res.Next, free)
	}
}

func TestAllBusySchedulesIdle(t *testing.T) {
	env := newEnv(2, 1)
	s := New(env)
	busy := mkTask(env, 1, 20, 40)
	s.AddToRunqueue(busy)
	busy.HasCPU = true
	busy.Processor = 1
	s.NoteRunning(busy, true)

	res := s.Schedule(0, idlePrev())
	if res.Next != nil {
		t.Fatalf("picked %v, want idle", res.Next)
	}
	if res.Recalcs != 0 {
		t.Fatal("no recalc when only running-elsewhere tasks exist")
	}
}

func TestExhaustedQueueTriggersRecalc(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 0)
	b := mkTask(env, 2, 10, 0)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)

	res := s.Schedule(0, idlePrev())
	if res.Recalcs != 1 {
		t.Fatalf("recalcs = %d, want 1", res.Recalcs)
	}
	// After recalculation counters become priority, so a (priority 20)
	// must win over b (priority 10).
	if res.Next != a {
		t.Fatalf("picked %v, want %v", res.Next, a)
	}
	if a.Counter(env.Epoch) != 20 || b.Counter(env.Epoch) != 10 {
		t.Fatal("counters not recalculated to priority")
	}
}

func TestRecalcChargesPerTaskCost(t *testing.T) {
	const n = 1000
	env := newEnv(1, n)
	s := New(env)
	a := mkTask(env, 1, 20, 0)
	s.AddToRunqueue(a)
	res := s.Schedule(0, a) // a yields nothing; it is prev and exhausted
	if res.Recalcs < 1 {
		t.Fatal("expected a recalculation")
	}
	if res.Cycles < uint64(n)*env.Cost.RecalcPerTask {
		t.Fatalf("cycles = %d, want at least %d for the recalc loop",
			res.Cycles, uint64(n)*env.Cost.RecalcPerTask)
	}
}

func TestYieldingSoleTaskRecalcsThenReruns(t *testing.T) {
	// The stock scheduler's documented misbehavior (paper §5.2): a
	// yielding task with no competition forces a full recalculation,
	// after which it is chosen again.
	env := newEnv(1, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	s.AddToRunqueue(a)
	a.HasCPU = true
	a.Processor = 0
	s.NoteRunning(a, true)
	a.Yielded = true

	res := s.Schedule(0, a)
	if res.Recalcs != 1 {
		t.Fatalf("recalcs = %d, want 1 (yield storm)", res.Recalcs)
	}
	if res.Next != a {
		t.Fatalf("picked %v, want the yielding task back", res.Next)
	}
	if a.Yielded {
		t.Fatal("yield bit must be consumed")
	}
}

func TestYieldLosesToCompetitor(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	y := mkTask(env, 1, 20, 40)
	other := mkTask(env, 2, 20, 1)
	s.AddToRunqueue(y)
	s.AddToRunqueue(other)
	y.HasCPU = true
	y.Processor = 0
	s.NoteRunning(y, true)
	y.Yielded = true

	res := s.Schedule(0, y)
	if res.Next != other {
		t.Fatalf("picked %v, want %v (yielded task offers goodness 0)", res.Next, other)
	}
	if res.Recalcs != 0 {
		t.Fatal("no recalc needed when a competitor exists")
	}
}

func TestBlockedPrevLeavesQueue(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	b := mkTask(env, 2, 20, 5)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)
	a.HasCPU = true
	a.Processor = 0
	s.NoteRunning(a, true)
	a.State = task.Interruptible // blocked

	res := s.Schedule(0, a)
	if res.Next != b {
		t.Fatalf("picked %v, want %v", res.Next, b)
	}
	if a.OnRunqueue() {
		t.Fatal("blocked prev must leave the run queue")
	}
	// b is chosen but stays on the queue and is counted runnable until
	// the kernel flips its HasCPU.
	if s.Runnable() != 1 {
		t.Fatalf("runnable = %d, want 1", s.Runnable())
	}
}

func TestRRExpiryResetsAndMovesLast(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	rr := task.NewRT(1, "rr", task.RR, 10, env.Epoch)
	rr.SetCounter(env.Epoch, 0)
	fifo := task.NewRT(2, "fifo", task.FIFO, 10, env.Epoch)
	s.AddToRunqueue(rr)
	s.AddToRunqueue(fifo)
	rr.HasCPU = true
	rr.Processor = 0
	s.NoteRunning(rr, true)

	res := s.Schedule(0, rr)
	if rr.Counter(env.Epoch) != rr.Priority {
		t.Fatalf("RR counter = %d, want reset to priority %d", rr.Counter(env.Epoch), rr.Priority)
	}
	// Equal rt_priority: the tie must now go to fifo because rr moved to
	// the back.
	if res.Next != fifo {
		t.Fatalf("picked %v, want %v", res.Next, fifo)
	}
}

func TestRTBeatsExhaustedAndRegular(t *testing.T) {
	// "if the current scheduler always selects a real-time task over a
	// SCHED_OTHER task ... the ELSC scheduler should do the same" — the
	// baseline behavior under test here.
	env := newEnv(1, 3)
	s := New(env)
	reg := mkTask(env, 1, 40, 80)
	rt := task.NewRT(2, "rt", task.FIFO, 0, env.Epoch)
	s.AddToRunqueue(reg)
	s.AddToRunqueue(rt)
	res := s.Schedule(0, idlePrev())
	if res.Next != rt {
		t.Fatalf("picked %v, want RT task", res.Next)
	}
}

func TestAffinityBreaksTie(t *testing.T) {
	env := newEnv(2, 2)
	s := New(env)
	local := mkTask(env, 1, 20, 10)
	local.EverRan = true
	local.Processor = 0
	remote := mkTask(env, 2, 20, 10)
	remote.EverRan = true
	remote.Processor = 1
	// remote is at the front (added last) and would win a pure tie.
	s.AddToRunqueue(local)
	s.AddToRunqueue(remote)
	res := s.Schedule(0, idlePrev())
	if res.Next != local {
		t.Fatalf("picked %v, want CPU-affine %v", res.Next, local)
	}
}

func TestAddIsIdempotent(t *testing.T) {
	env := newEnv(1, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	s.AddToRunqueue(a)
	s.AddToRunqueue(a)
	if s.Runnable() != 1 {
		t.Fatalf("runnable = %d after double add, want 1", s.Runnable())
	}
	s.DelFromRunqueue(a)
	s.DelFromRunqueue(a)
	if s.Runnable() != 0 {
		t.Fatalf("runnable = %d after double del, want 0", s.Runnable())
	}
}

func TestExaminedCountsFullScan(t *testing.T) {
	// The defining O(n) behavior: examined grows with queue length.
	for _, n := range []int{1, 10, 100} {
		env := newEnv(1, n)
		s := New(env)
		for i := 0; i < n; i++ {
			s.AddToRunqueue(mkTask(env, i, 20, 1+i%39))
		}
		res := s.Schedule(0, idlePrev())
		if res.Examined != n {
			t.Fatalf("examined = %d, want %d", res.Examined, n)
		}
	}
}

func TestScheduleCostGrowsLinearly(t *testing.T) {
	costAt := func(n int) uint64 {
		env := newEnv(1, n)
		s := New(env)
		for i := 0; i < n; i++ {
			s.AddToRunqueue(mkTask(env, i, 20, 10))
		}
		return s.Schedule(0, idlePrev()).Cycles
	}
	c10, c100 := costAt(10), costAt(100)
	if c100 < c10*5 {
		t.Fatalf("cost at 100 tasks (%d) should dwarf cost at 10 (%d)", c100, c10)
	}
}

// TestMatchesBruteForceOracle cross-checks Schedule against a direct argmax
// over Goodness on random queue states.
func TestMatchesBruteForceOracle(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%20) + 1
		rng := sim.NewRNG(seed)
		env := newEnv(1, n)
		s := New(env)
		mms := []*task.MM{nil, {ID: 1}, {ID: 2}}
		tasks := make([]*task.Task, n)
		for i := range tasks {
			tk := mkTask(env, i, 1+rng.Intn(40), 0)
			tk.SetCounter(env.Epoch, rng.Intn(2*tk.Priority+1))
			tk.MM = mms[rng.Intn(len(mms))]
			tk.EverRan = true
			tk.Processor = 0
			tasks[i] = tk
			s.AddToRunqueue(tk)
		}
		prevMM := mms[rng.Intn(len(mms))]
		prev := idlePrev()
		prev.MM = prevMM

		res := s.Schedule(0, prev)

		// Brute-force oracle: max goodness, front of queue wins ties.
		// Queue order is reverse insertion (PushFront).
		best := (*task.Task)(nil)
		bestW := -1000
		anyZero := false
		for i := n - 1; i >= 0; i-- {
			tk := tasks[i]
			w := sched.Goodness(env.Epoch, tk, 0, prevMM)
			if w == 0 {
				anyZero = true
			}
			if w > bestW {
				bestW = w
				best = tk
			}
		}
		if bestW == 0 && anyZero {
			// Oracle: recalc happens, counters become c/2+prio and
			// the scan repeats; just check the scheduler also
			// recalculated and picked the new argmax.
			if res.Recalcs == 0 {
				return false
			}
			best, bestW = nil, -1000
			for i := n - 1; i >= 0; i-- {
				tk := tasks[i]
				w := sched.Goodness(env.Epoch, tk, 0, prevMM)
				if w > bestW {
					bestW = w
					best = tk
				}
			}
		}
		return res.Next == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
