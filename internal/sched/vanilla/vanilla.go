// Package vanilla implements the stock Linux 2.3.99-pre4 scheduler that the
// paper uses as its baseline ("reg" in the figures): a single, unsorted,
// circular doubly linked run queue that schedule() walks in full on every
// invocation, recomputing goodness() for every runnable task (paper §3).
//
// The expensive properties the paper attributes to it are reproduced
// faithfully:
//
//   - O(n) scan: every task on the run queue not running on another CPU is
//     examined on every call.
//   - Redundant work: goodness() is recomputed from scratch each time.
//   - The recalculation loop: when the best goodness found is exactly zero
//     (all runnable tasks exhausted their quantum, or a yielding task is
//     the only candidate), the scheduler recalculates the counter of every
//     task in the system and rescans.
//   - Tie-breaking by queue position: the task closer to the front wins
//     equal goodness, and newly woken tasks are pushed on the front.
package vanilla

import (
	"elsc/internal/klist"
	"elsc/internal/sched"
	"elsc/internal/task"
)

// Sched is the stock scheduler. Create with New.
type Sched struct {
	env *sched.Env
	rq  *klist.Head
	// running counts tasks on the queue currently marked HasCPU, so
	// Runnable can exclude them without a scan.
	running int

	// Diag mirrors the instrumentation the paper exposed through proc:
	// what schedule() saw at entry.
	Diag struct {
		YieldEntries uint64 // entries with the previous task yielding
		LoneYields   uint64 // ...where it was also the only queued task
		QueueLenSum  uint64 // run-queue length summed over entries
		Entries      uint64
	}
}

// New returns a stock scheduler bound to env.
func New(env *sched.Env) *Sched {
	return &Sched{env: env, rq: klist.NewHead()}
}

// Name implements sched.Scheduler. "reg" is the label the paper's figures
// use for the regular scheduler.
func (s *Sched) Name() string { return "reg" }

// AddToRunqueue adds t at the front of the run queue, as add_to_runqueue
// does for newly created or awakened tasks (paper §3.2).
func (s *Sched) AddToRunqueue(t *task.Task) {
	if t.IsIdle {
		panic("vanilla: idle task on run queue")
	}
	if t.OnRunqueue() {
		return
	}
	t.SyncCounter(s.env.Epoch)
	s.rq.PushFront(&t.RunList)
	if t.HasCPU {
		s.running++
	}
}

// DelFromRunqueue unlinks t.
func (s *Sched) DelFromRunqueue(t *task.Task) {
	if !t.OnRunqueue() {
		return
	}
	s.rq.Remove(&t.RunList)
	if t.HasCPU {
		s.running--
	}
}

// MoveFirstRunqueue moves t to the front so it wins goodness ties.
func (s *Sched) MoveFirstRunqueue(t *task.Task) {
	if t.OnRunqueue() {
		s.rq.MoveFront(&t.RunList)
	}
}

// MoveLastRunqueue moves t to the back so it loses goodness ties.
func (s *Sched) MoveLastRunqueue(t *task.Task) {
	if t.OnRunqueue() {
		s.rq.MoveBack(&t.RunList)
	}
}

// Runnable returns the number of queued tasks not currently executing.
func (s *Sched) Runnable() int { return s.rq.Len() - s.running }

// OnRunqueue reports whether the scheduler tracks t.
func (s *Sched) OnRunqueue(t *task.Task) bool { return t.OnRunqueue() }

// ExportRunnable implements sched.Scheduler. Drain order is queue order,
// front to back. The kernel detaches HasCPU tasks before calling this
// (the stock scheduler is the one policy that keeps them queued), so
// everything left is selectable.
func (s *Sched) ExportRunnable() []*task.Task {
	out := make([]*task.Task, 0, s.rq.Len())
	for {
		n := s.rq.First()
		if n == nil {
			break
		}
		t := task.FromNode(n)
		s.DelFromRunqueue(t)
		sched.ResetQueueState(t)
		out = append(out, t)
	}
	return out
}

// DrainCPU implements sched.Scheduler. The stock scheduler has a single
// global queue every CPU scans, so an offlined CPU leaves nothing behind.
func (s *Sched) DrainCPU(cpu int, out []*task.Task) []*task.Task { return out }

// NoteRunning must be called by the kernel when it flips t.HasCPU while t
// is on the run queue, so Runnable stays O(1). The stock scheduler keeps
// running tasks on the queue, unlike ELSC.
func (s *Sched) NoteRunning(t *task.Task, running bool) {
	if !t.OnRunqueue() {
		return
	}
	if running {
		s.running++
	} else {
		s.running--
	}
}

// Schedule implements the heart of 2.3.99-pre4 schedule(): evaluate the
// goodness of every runnable task and pick the best (paper §3.3.2).
func (s *Sched) Schedule(cpu int, prev *task.Task) sched.Result {
	env := s.env
	res := sched.Result{Cycles: env.Cost.ScheduleBase}

	s.Diag.Entries++
	s.Diag.QueueLenSum += uint64(s.rq.Len())
	if !prev.IsIdle && prev.Yielded {
		s.Diag.YieldEntries++
		if s.rq.Len() <= 1 {
			s.Diag.LoneYields++
		}
	}

	if !prev.IsIdle {
		// Round-robin expiry: reset the quantum and send the task to
		// the back of the queue before scanning.
		if prev.Policy == task.RR && prev.Counter(env.Epoch) == 0 {
			prev.SetCounter(env.Epoch, prev.Priority)
			s.MoveLastRunqueue(prev)
			res.Cycles += env.Cost.MoveRunqueue
		}
		// A task that is no longer runnable (blocked, exited) leaves
		// the run queue inside schedule(), as in the kernel.
		if !prev.Runnable() && prev.OnRunqueue() {
			s.DelFromRunqueue(prev)
			res.Cycles += env.Cost.DelRunqueue
		}
	}

	yieldConsulted := false
	for {
		best := (*task.Task)(nil)
		c := -1000 // the kernel's initial weight

		s.rq.ForEach(func(n *klist.Node) bool {
			t := task.FromNode(n)
			res.Examined++
			// can_schedule: skip tasks executing on another CPU or
			// excluded by their affinity mask.
			if (t.HasCPU && t != prev) || !t.AllowedOn(cpu) {
				res.Cycles += env.Cost.Touch(env.NCPU)
				return true
			}
			var w int
			if t == prev && prev.Yielded && !yieldConsulted {
				// sys_sched_yield: the yielding task is offered
				// with goodness zero; the bit is cleared now so a
				// rescan after recalculation treats it normally.
				w = 0
				prev.Yielded = false
				yieldConsulted = true
				res.Cycles += env.Cost.Touch(env.NCPU)
			} else {
				w = sched.Goodness(env.Epoch, t, cpu, prev.MM)
				res.Cycles += env.Cost.Evaluate(env.NCPU)
			}
			if w > c {
				c = w
				best = t
			}
			return true
		})

		if c == 0 {
			// Every candidate's quantum is spent (or the lone
			// candidate yielded): recalculate the counter of every
			// task in the system and search again (paper §3.3.2).
			env.Epoch.Bump()
			res.Recalcs++
			res.Cycles += uint64(env.NTasks()) * env.Cost.RecalcPerTask
			if res.Recalcs > 8 {
				panic("vanilla: recalculation livelock")
			}
			continue
		}
		// c == -1000 means the queue is empty or everything is running
		// elsewhere: schedule the idle task, with no recalculation
		// (paper footnote 1).
		res.Next = best
		return res
	}
}
