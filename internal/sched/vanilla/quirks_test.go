package vanilla

import (
	"testing"
	"testing/quick"

	"elsc/internal/sched"
	"elsc/internal/sim"
	"elsc/internal/task"
)

// Additional tests for the stock scheduler's subtler 2.3.99 mechanics.

func TestPrevReselectedWhenStillBest(t *testing.T) {
	// A quantum-rich prev that merely got a resched interrupt must be
	// chosen again when nothing better exists.
	env := newEnv(1, 2)
	s := New(env)
	prev := mkTask(env, 1, 20, 30)
	weak := mkTask(env, 2, 20, 3)
	s.AddToRunqueue(prev)
	s.AddToRunqueue(weak)
	prev.HasCPU = true
	prev.Processor = 0
	prev.EverRan = true
	s.NoteRunning(prev, true)

	res := s.Schedule(0, prev)
	if res.Next != prev {
		t.Fatalf("picked %v, want prev re-selected", res.Next)
	}
}

func TestMMBonusBreaksTie(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	mm := &task.MM{ID: 1}
	plain := mkTask(env, 1, 20, 10)
	shared := mkTask(env, 2, 20, 10)
	shared.MM = mm
	// plain is at the front and would win a pure tie.
	s.AddToRunqueue(shared)
	s.AddToRunqueue(plain)
	prev := idlePrev()
	prev.MM = mm
	res := s.Schedule(0, prev)
	if res.Next != shared {
		t.Fatalf("picked %v, want mm-sharing %v", res.Next, shared)
	}
}

func TestRecalcAlsoRechargesBlockedTasks(t *testing.T) {
	// "recalculating the counter values of all tasks in the system
	// (runnable or otherwise)" — a sleeper's counter grows through
	// recalculations it sleeps across.
	env := newEnv(1, 3)
	s := New(env)
	sleeper := mkTask(env, 1, 20, 4)
	sleeper.State = task.Interruptible // blocked, not queued

	exhausted := mkTask(env, 2, 20, 0)
	s.AddToRunqueue(exhausted)
	res := s.Schedule(0, idlePrev())
	if res.Recalcs != 1 {
		t.Fatalf("recalcs = %d, want 1", res.Recalcs)
	}
	if got := sleeper.Counter(env.Epoch); got != 4/2+20 {
		t.Fatalf("sleeper counter = %d, want 22 (c/2+p)", got)
	}
}

func TestRunnableCountTracksNoteRunning(t *testing.T) {
	env := newEnv(2, 4)
	s := New(env)
	tasks := make([]*task.Task, 4)
	for i := range tasks {
		tasks[i] = mkTask(env, i, 20, 10)
		s.AddToRunqueue(tasks[i])
	}
	if s.Runnable() != 4 {
		t.Fatalf("runnable = %d, want 4", s.Runnable())
	}
	tasks[0].HasCPU = true
	s.NoteRunning(tasks[0], true)
	if s.Runnable() != 3 {
		t.Fatalf("runnable = %d, want 3", s.Runnable())
	}
	tasks[0].HasCPU = false
	s.NoteRunning(tasks[0], false)
	if s.Runnable() != 4 {
		t.Fatalf("runnable = %d, want 4 again", s.Runnable())
	}
}

func TestDiagCountsYieldEntries(t *testing.T) {
	env := newEnv(1, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	s.AddToRunqueue(a)
	a.HasCPU = true
	a.Processor = 0
	s.NoteRunning(a, true)
	a.Yielded = true
	s.Schedule(0, a)
	if s.Diag.YieldEntries != 1 || s.Diag.LoneYields != 1 {
		t.Fatalf("diag = %+v, want one lone yield", s.Diag)
	}
}

func TestScanAlwaysFindsRunnableQuick(t *testing.T) {
	// Liveness: with at least one selectable task, Schedule never
	// returns idle.
	f := func(seed int64, n8 uint8) bool {
		rng := sim.NewRNG(seed)
		n := int(n8%15) + 1
		env := sched.NewEnv(2, true, func() int { return n })
		s := New(env)
		free := 0
		for i := 0; i < n; i++ {
			tk := mkTask(env, i, 1+rng.Intn(40), 0)
			tk.SetCounter(env.Epoch, rng.Intn(2*tk.Priority+1))
			s.AddToRunqueue(tk)
			if rng.Intn(3) == 0 {
				tk.HasCPU = true
				tk.Processor = 1
				s.NoteRunning(tk, true)
			} else {
				free++
			}
		}
		res := s.Schedule(0, idlePrev())
		if free == 0 {
			return res.Next == nil
		}
		return res.Next != nil && !res.Next.HasCPU
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAffinityMaskRespectedQuick(t *testing.T) {
	// A task pinned away from this CPU is never selected, regardless of
	// goodness.
	f := func(seed int64, n8 uint8) bool {
		rng := sim.NewRNG(seed)
		n := int(n8%10) + 2
		env := sched.NewEnv(2, true, func() int { return n })
		s := New(env)
		for i := 0; i < n; i++ {
			tk := mkTask(env, i, 1+rng.Intn(40), 10)
			if i%2 == 0 {
				tk.CPUsAllowed = 1 << 1 // CPU 1 only
			}
			s.AddToRunqueue(tk)
		}
		res := s.Schedule(0, idlePrev())
		return res.Next != nil && res.Next.AllowedOn(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIdleWithOnlyPinnedAwayTasks(t *testing.T) {
	env := newEnv(2, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	a.CPUsAllowed = 1 << 1
	s.AddToRunqueue(a)
	res := s.Schedule(0, idlePrev())
	if res.Next != nil {
		t.Fatalf("picked %v on a forbidden CPU", res.Next)
	}
	if res.Recalcs != 0 {
		t.Fatal("pinned-away tasks must not trigger recalculation")
	}
}
