package cfs

import (
	"fmt"
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/task"
)

func mkTask(env *sched.Env, id, prio, counter int) *task.Task {
	t := task.New(id, fmt.Sprintf("t%d", id), nil, env.Epoch)
	t.Priority = prio
	t.SetCounter(env.Epoch, counter)
	return t
}

func mkIdle(cpu int) *task.Task {
	t := task.New(-(cpu + 1), fmt.Sprintf("idle/%d", cpu), nil, nil)
	t.IsIdle = true
	t.Processor = cpu
	return t
}

// schedule drives one kernel-faithful schedule() on cpu: prev is still
// HasCPU during the call, the flip happens after, as kernel.reschedule
// does.
func schedule(s *Sched, cpu int, idle *task.Task, current *task.Task) *task.Task {
	prev := current
	if prev == nil {
		prev = idle
	}
	res := s.Schedule(cpu, prev)
	if !prev.IsIdle {
		prev.HasCPU = false
	}
	if res.Next != nil {
		res.Next.HasCPU = true
		res.Next.Processor = cpu
		res.Next.EverRan = true
	}
	return res.Next
}

// TestWeightTableShape pins the weight mapping: 1024 at the default
// priority (nice 0), strictly monotone in priority, geometric at ~1.25
// per step, and the headline proportionality ratios the two-hog cells
// below measure end to end.
func TestWeightTableShape(t *testing.T) {
	if w := Weight(task.DefaultPriority); w != 1024 {
		t.Fatalf("Weight(%d) = %d, want 1024", task.DefaultPriority, w)
	}
	for p := task.MinPriority + 1; p <= task.MaxPriority; p++ {
		lo, hi := Weight(p-1), Weight(p)
		if hi <= lo {
			t.Fatalf("weight not monotone: Weight(%d)=%d <= Weight(%d)=%d", p, hi, p-1, lo)
		}
		ratio := float64(hi) / float64(lo)
		if ratio < 1.15 || ratio > 1.35 {
			t.Fatalf("step ratio Weight(%d)/Weight(%d) = %.3f outside the ~1.25 geometric band", p, p-1, ratio)
		}
	}
	// Out-of-range priorities clamp to the table ends.
	if Weight(0) != Weight(task.MinPriority) || Weight(99) != Weight(task.MaxPriority) {
		t.Fatal("out-of-range priorities must clamp to the table ends")
	}
	// Three steps ≈ doubling; eight steps ≈ 6× — the ratios the CPU-share
	// cells assert against.
	if r := float64(Weight(23)) / 1024; r < 1.8 || r > 2.1 {
		t.Fatalf("Weight(23)/Weight(20) = %.3f, want ~2 (double weight three steps up)", r)
	}
	if r := float64(Weight(28)) / 1024; r < 5.5 || r > 6.4 {
		t.Fatalf("Weight(28)/Weight(20) = %.3f, want ~6 (eight geometric steps)", r)
	}
}

func cfsMachine(cpus int) *kernel.Machine {
	return kernel.NewMachine(kernel.Config{
		CPUs:         cpus,
		SMP:          cpus > 1,
		Seed:         42,
		NewScheduler: func(env *sched.Env) sched.Scheduler { return New(env) },
		MaxCycles:    100 * kernel.DefaultHz,
	})
}

func hog(chunks int, c uint64) kernel.Program {
	i := 0
	return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if i >= chunks {
			return kernel.Exit{}
		}
		i++
		return kernel.Compute{Cycles: c}
	})
}

// shareRatio runs two hogs with the given priorities on one CPU until
// the heavier exits and returns the ratio of user cycles received.
func shareRatio(t *testing.T, hiPrio, loPrio int) float64 {
	t.Helper()
	m := cfsMachine(1)
	work := uint64(400 * kernel.DefaultTickCycles)
	hi := m.Spawn("hi", nil, hog(1, work))
	lo := m.Spawn("lo", nil, hog(1, work))
	m.SetPriority(hi, hiPrio)
	m.SetPriority(lo, loPrio)
	m.Run(func() bool { return hi.Exited() || lo.Exited() })
	if lo.Task.UserCycles == 0 {
		t.Fatalf("priority-%d hog starved entirely against priority-%d", loPrio, hiPrio)
	}
	return float64(hi.Task.UserCycles) / float64(lo.Task.UserCycles)
}

// TestDoubleWeightDoublesCPUShare is the weighted-fairness demonstration
// measured end to end on a real machine: a Priority-23 hog carries ~2×
// the weight of a Priority-20 hog (three geometric steps), so while both
// compete for one CPU it must receive ~2× the user cycles, within ±15%.
func TestDoubleWeightDoublesCPUShare(t *testing.T) {
	want := float64(Weight(23)) / float64(Weight(20)) // ≈ 1.94
	got := shareRatio(t, 23, 20)
	if got < 0.85*want || got > 1.15*want {
		t.Fatalf("priority-23 vs 20 CPU share = %.3f, want %.3f ±15%%", got, want)
	}
}

// TestPriority28ShareTracksWeight extends the same cell eight steps up:
// a Priority-28 hog's share of the CPU against a Priority-20 hog must
// track the weight ratio (~6×, the geometric table at 1.25^8) within
// ±15% — proportionality holds across the table, not just near nice 0.
func TestPriority28ShareTracksWeight(t *testing.T) {
	want := float64(Weight(28)) / float64(Weight(20)) // ≈ 5.96
	got := shareRatio(t, 28, 20)
	if got < 0.85*want || got > 1.15*want {
		t.Fatalf("priority-28 vs 20 CPU share = %.3f, want %.3f ±15%%", got, want)
	}
}

// TestMinVruntimeMonotone drives a two-CPU scheduler through forks,
// blocks, wakes, and cross-queue steals, asserting each queue's
// min_vruntime never decreases — the invariant the sleeper clamp and
// migration renorm anchor to.
func TestMinVruntimeMonotone(t *testing.T) {
	const ncpu = 2
	env := sched.NewEnv(ncpu, true, func() int { return 16 })
	s := New(env)
	idles := []*task.Task{mkIdle(0), mkIdle(1)}
	current := make([]*task.Task, ncpu)

	var tasks []*task.Task
	for i := 0; i < 8; i++ {
		tk := mkTask(env, i+1, 1+(i*5)%40, 4)
		tasks = append(tasks, tk)
		s.AddToRunqueue(tk)
	}

	last := []uint64{s.MinVR(0), s.MinVR(1)}
	var blocked []*task.Task
	nextID := 100
	for step := 0; step < 400; step++ {
		cpu := step % ncpu
		if cur := current[cpu]; cur != nil {
			// Simulate a tick of execution so vruntime advances.
			cur.UserCycles += 4_000_000
			switch step % 7 {
			case 3:
				cur.State = task.Interruptible
				blocked = append(blocked, cur)
			case 5:
				cur.Yielded = true
			}
		}
		current[cpu] = schedule(s, cpu, idles[cpu], current[cpu])
		for q := 0; q < ncpu; q++ {
			if vr := s.MinVR(q); vr < last[q] {
				t.Fatalf("step %d: min_vruntime on cpu %d went backwards: %d -> %d", step, q, last[q], vr)
			} else {
				last[q] = vr
			}
		}
		if step%11 == 0 && len(blocked) > 0 {
			wake := blocked[0]
			blocked = blocked[1:]
			wake.State = task.Running
			s.AddToRunqueue(wake) // wake: the placement clamp path
		}
		if step%13 == 0 {
			tk := mkTask(env, nextID, 1+(step*3)%40, 4) // fork
			nextID++
			tasks = append(tasks, tk)
			s.AddToRunqueue(tk)
		}
	}
}

// TestSleeperClampBound pins the placement rule: a waking task whose
// virtual clock lags the queue is boosted to exactly min_vruntime minus
// one latency period — never further — and a task ahead of the queue
// keeps its own clock.
func TestSleeperClampBound(t *testing.T) {
	env := sched.NewEnv(1, false, func() int { return 4 })
	s := New(env)
	idle := mkIdle(0)

	// Advance the queue's clock: two hogs alternating under simulated
	// ticks until min_vruntime is well past the sleeper bonus.
	a := mkTask(env, 1, 20, 4)
	b := mkTask(env, 2, 20, 4)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)
	var cur *task.Task
	for i := 0; i < 100; i++ {
		if cur != nil {
			cur.UserCycles += 4_000_000
		}
		cur = schedule(s, 0, idle, cur)
	}
	minVR := s.MinVR(0)
	if minVR <= s.sleeperBonus {
		t.Fatalf("hogs advanced min_vruntime only to %d, not past the sleeper bonus %d", minVR, s.sleeperBonus)
	}

	// A long sleeper (vruntime 0) is pulled up to the floor, not beyond.
	sleeper := mkTask(env, 3, 20, 4)
	s.AddToRunqueue(sleeper)
	if want := minVR - s.sleeperBonus; sleeper.VRuntime != want {
		t.Fatalf("sleeper clamped to %d, want min_vruntime-bonus = %d", sleeper.VRuntime, want)
	}

	// A task ahead of the queue keeps its own clock — no backward clamp.
	ahead := mkTask(env, 4, 20, 4)
	ahead.VRuntime = minVR + 12345
	s.AddToRunqueue(ahead)
	if ahead.VRuntime != minVR+12345 {
		t.Fatalf("ahead-of-queue task's clock rewritten to %d", ahead.VRuntime)
	}
}

// TestRRQuantumExpiryRotatesLevelPeers pins the SCHED_RR contract: a
// runner whose quantum just expired re-enters the TAIL of its rt level,
// so two equal-priority RR hogs strictly alternate instead of the
// expired runner re-winning from the head of the list forever.
func TestRRQuantumExpiryRotatesLevelPeers(t *testing.T) {
	env := sched.NewEnv(1, false, func() int { return 2 })
	s := New(env)
	idle := mkIdle(0)
	a := task.NewRT(1, "rrA", task.RR, 50, env.Epoch)
	b := task.NewRT(2, "rrB", task.RR, 50, env.Epoch)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)

	cur := schedule(s, 0, idle, nil)
	for i := 0; i < 8; i++ {
		cur.SetCounter(env.Epoch, 0) // burn the quantum
		next := schedule(s, 0, idle, cur)
		if next == cur {
			t.Fatalf("round %d: expired RR task re-picked from the head; its level peer starves", i)
		}
		if next.Counter(env.Epoch) == 0 {
			t.Fatalf("round %d: expired RR task re-picked without a quantum refill", i)
		}
		cur = next
	}
}

// TestTickPreemptRTLevelComparison pins the tick-preemption rules for
// real-time runners: a queued RT task preempts a fair runner
// unconditionally but an RT runner only from a strictly better level —
// an equal-level RR peer waits for quantum expiry and a worse one for
// the runner to block, so neither forces a per-tick resched storm.
func TestTickPreemptRTLevelComparison(t *testing.T) {
	env := sched.NewEnv(1, false, func() int { return 4 })
	s := New(env)
	runner := task.NewRT(1, "runner", task.RR, 50, env.Epoch)
	runner.HasCPU = true
	runner.EverRan = true

	s.AddToRunqueue(task.NewRT(2, "worse", task.FIFO, 10, env.Epoch))
	if preempt, _ := s.TickPreempt(0, runner); preempt {
		t.Fatal("queued rt_priority-10 task preempted an rt_priority-50 runner")
	}
	s.AddToRunqueue(task.NewRT(3, "peer", task.RR, 50, env.Epoch))
	if preempt, _ := s.TickPreempt(0, runner); preempt {
		t.Fatal("equal-level RR peer must wait for quantum expiry, not tick-preempt")
	}
	s.AddToRunqueue(task.NewRT(4, "better", task.FIFO, 70, env.Epoch))
	preempt, rotation := s.TickPreempt(0, runner)
	if !preempt || rotation {
		t.Fatalf("strictly better queued level: got preempt=%v rotation=%v, want true/false", preempt, rotation)
	}
	fair := mkTask(env, 5, 20, 4)
	fair.HasCPU = true
	if preempt, _ := s.TickPreempt(0, fair); !preempt {
		t.Fatal("any queued RT task must preempt a fair runner")
	}
}

// TestAddToRunqueueRenormsOnRehome: a task homeOf re-homes away from its
// last CPU (offlined here) carries a vruntime relative to that queue's
// fast clock; AddToRunqueue must rebase it to the new queue's clock
// preserving the lag, exactly as PlaceWake does — placeClamp alone only
// bounds the lagging side and would park the task far in the new
// queue's future.
func TestAddToRunqueueRenormsOnRehome(t *testing.T) {
	env := sched.NewEnv(2, true, func() int { return 4 })
	s := New(env)
	s.rqs[1].minVR = 50 * s.sleeperBonus // queue 1's clock ran far ahead
	s.rqs[0].minVR = 3 * s.sleeperBonus

	tk := mkTask(env, 1, 20, 4)
	tk.EverRan = true
	tk.Processor = 1
	tk.VRuntime = s.rqs[1].minVR + 1000 // slightly ahead of its old queue

	env.SetCPUOnline(1, false) // re-home: the task's last CPU is gone
	s.AddToRunqueue(tk)
	if s.QueueLen(0) != 1 {
		t.Fatalf("re-homed task not filed on queue 0 (len %d)", s.QueueLen(0))
	}
	if want := s.rqs[0].minVR + 1000; tk.VRuntime != want {
		t.Fatalf("re-homed vruntime = %d, want lag-preserving rebase to %d", tk.VRuntime, want)
	}
}

// TestYieldRehomeRenormsBeforeWatermark: when sched_yield coincides with
// a re-home (affinity narrowed mid-run), the yielding task's vruntime is
// rebased to the new queue's clock before the maxVR watermark
// comparison — raw clocks from different queues are not comparable, and
// an unrenormed fast-queue value would skip the park entirely.
func TestYieldRehomeRenormsBeforeWatermark(t *testing.T) {
	env := sched.NewEnv(2, true, func() int { return 4 })
	s := New(env)
	s.rqs[0].minVR = 40 * s.sleeperBonus // fast clock where the task ran
	s.rqs[1].minVR = 2 * s.sleeperBonus
	s.rqs[1].maxVR = 2*s.sleeperBonus + 500

	prev := mkTask(env, 1, 20, 4)
	prev.EverRan = true
	prev.HasCPU = true
	prev.Processor = 0
	prev.VRuntime = s.rqs[0].minVR + 100
	prev.Yielded = true
	prev.CPUsAllowed = 1 << 1 // narrowed mid-run: home is now CPU 1

	s.Schedule(0, prev)
	if !prev.QZero || prev.QIndex != 1 {
		t.Fatalf("yielding task filed on queue %d (queued=%v), want queue 1", prev.QIndex, prev.QZero)
	}
	// The renormed clock (min_vruntime+100) loses to the watermark park:
	// the task lands at maxVR in queue-1 units, behind every queued task,
	// not at its raw queue-0 clock far past it.
	if prev.VRuntime != 2*s.sleeperBonus+500 {
		t.Fatalf("yielded vruntime = %d, want the home queue watermark %d", prev.VRuntime, 2*s.sleeperBonus+500)
	}
}

// TestZeroAllocSteadyState pins the indexed-heap promise: once the
// backing array has grown, the schedule→requeue→pick cycle allocates
// nothing.
func TestZeroAllocSteadyState(t *testing.T) {
	env := sched.NewEnv(1, false, func() int { return 8 })
	s := New(env)
	idle := mkIdle(0)
	for i := 0; i < 8; i++ {
		s.AddToRunqueue(mkTask(env, i+1, 1+(i*5)%40, 4))
	}
	var cur *task.Task
	for i := 0; i < 64; i++ { // warm the heap's backing array
		if cur != nil {
			cur.UserCycles += 4_000_000
		}
		cur = schedule(s, 0, idle, cur)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if cur != nil {
			cur.UserCycles += 4_000_000
		}
		cur = schedule(s, 0, idle, cur)
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule cycle allocates %.1f objects/op, want 0", allocs)
	}
}
