// Package cfs implements a weighted-vruntime fair scheduler — the modern
// counter-argument to the paper's O(1) lineage, in the shape Linux took
// from 2.6.23 on (CFS). It joins the registry as a drop-in policy so the
// conformance, latency-invariant, and matrix machinery can stage a
// genuine O(1)-vs-fair shootout.
//
// The design maps the task layer's static Priority (1..40, default 20)
// onto the CFS weight table: Priority 20 is nice 0 and weight 1024, and
// each priority step multiplies the weight by ~1.25, so a task with
// double the weight of another receives double the CPU time. Every
// processor owns a private queue (the kernel detects the PerCPU marker
// and splits the run-queue lock) holding an indexed binary min-heap of
// SCHED_OTHER tasks ordered by virtual runtime — no container/heap
// boxing, zero allocations in steady state — plus a small priority
// array for real-time tasks, which always outrank fair ones.
//
// A task's vruntime advances by executed-cycles x 1024/weight whenever
// it comes back through Schedule, so heavier tasks age slower and
// naturally earn proportionally more CPU. Each queue tracks a monotone
// min_vruntime; a waking or newly forked task is clamped to
// max(vruntime, min_vruntime - sleeperBonus), so sleepers get a bounded
// boost ahead of the queue instead of the sleep_avg estimator's
// heuristic credit, and a task returning from a policy swap cannot
// carry a stale virtual clock into the queue. Timeslices are dynamic:
// periodTicks of latency target split by weight share, floored at a
// granularity, delivered through the task counter so the kernel's
// ordinary quantum-expiry machinery ends the slice.
//
// Balancing reuses the topology-aware shape of the o1 policy: an idle
// CPU steals the greatest-lag (minimum-vruntime) movable task, in-domain
// victims first and cross-domain only from longer queues; a periodic
// imbalance pull moves batches across domains. A migrating task's
// vruntime is renormalized from the victim queue's min_vruntime to the
// thief's, so cross-queue clock skew never turns into a fairness bug.
package cfs

import (
	"math/bits"

	"elsc/internal/klist"
	"elsc/internal/sched"
	"elsc/internal/task"
)

const (
	// weightScale is the weight of a Priority-20 (nice-0) task; vruntime
	// is measured in "nice-0 cycles": executed cycles x weightScale/weight.
	weightScale = 1024

	// periodTicks is the scheduling latency target in 10ms ticks: the
	// horizon every queued fair task should run once within, split by
	// weight share. minGranTicks floors the split so a crowded queue
	// degrades to round-robin at a sane quantum instead of thrashing.
	periodTicks  = 20
	minGranTicks = 2

	// rtLevels reserves one level per rt_priority value (0..99), best
	// (highest rt_priority) at index 0 as in the o1 arrays.
	rtLevels = task.MaxRTPriority + 1
	rtWords  = (rtLevels + 63) / 64

	// balanceEvery / balanceImbalance / crossStealMin mirror the o1
	// balancer: periodic pulls every 32 schedules past a 2-task gap, and
	// no cross-domain idle steal from a single-task victim.
	balanceEvery     = 32
	balanceImbalance = 2
	crossStealMin    = 2
)

// weightOf maps a static priority onto the CFS prio_to_weight table:
// Priority 20 = nice 0 = 1024, each step up multiplies by ~1.25 (so
// Priority 23 has ~2x the weight of 20, and 28 ~6x). Index 0 is
// Priority 40 (nice -20).
var prioToWeight = [task.MaxPriority]uint64{
	88761, 71755, 56483, 46273, 36291,
	29154, 23254, 18705, 14949, 11916,
	9548, 7620, 6100, 4904, 3906,
	3121, 2501, 1991, 1586, 1277,
	1024, 820, 655, 526, 423,
	335, 272, 215, 172, 137,
	110, 87, 70, 56, 45,
	36, 29, 23, 18, 15,
}

// Weight returns the CFS weight for a static priority, clamping
// out-of-range values to the table ends.
func Weight(prio int) uint64 {
	idx := task.MaxPriority - prio
	if idx < 0 {
		idx = 0
	}
	if idx >= len(prioToWeight) {
		idx = len(prioToWeight) - 1
	}
	return prioToWeight[idx]
}

// Config tunes the fair scheduler. The zero value selects the defaults.
type Config struct {
	// TickCycles is one timer tick in simulated cycles (default 4M: 10ms
	// at the 400 MHz machine every spec runs). It scales the vruntime-
	// denominated constants — the sleeper clamp bonus and the wakeup
	// preemption granularity.
	TickCycles uint64
}

func (c Config) withDefaults() Config {
	if c.TickCycles == 0 {
		c.TickCycles = 4_000_000
	}
	return c
}

// fentry is one fair-heap element. The enqueue-time key is copied into
// the entry so removal subtracts exactly the weight it added even if the
// task's priority mutated while queued (the kernel always del/adds
// around mutations, but the bookkeeping must not depend on it).
type fentry struct {
	t      *task.Task
	vr     uint64
	order  int64
	weight uint64
}

// fheap is an indexed binary min-heap of fair tasks ordered by
// (vruntime asc, order asc). The held task's QStamp stores its position;
// swaps update it in place, so removal never searches.
type fheap struct {
	es []fentry
}

func (h *fheap) len() int { return len(h.es) }

func (h *fheap) less(i, j int) bool {
	if h.es[i].vr != h.es[j].vr {
		return h.es[i].vr < h.es[j].vr
	}
	return h.es[i].order < h.es[j].order
}

func (h *fheap) swap(i, j int) {
	h.es[i], h.es[j] = h.es[j], h.es[i]
	h.es[i].t.QStamp = uint64(i)
	h.es[j].t.QStamp = uint64(j)
}

func (h *fheap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *fheap) down(i int) {
	n := len(h.es)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *fheap) push(e fentry) {
	e.t.QStamp = uint64(len(h.es))
	h.es = append(h.es, e)
	h.up(len(h.es) - 1)
}

func (h *fheap) removeAt(i int) fentry {
	n := len(h.es) - 1
	if i < 0 || i > n {
		panic("cfs: heap removeAt out of range")
	}
	h.swap(i, n)
	e := h.es[n]
	h.es[n] = fentry{}
	h.es = h.es[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	return e
}

// rtArray is the real-time side of a queue: one FIFO list per
// rt_priority level with a find-first-set bitmap, exactly the o1 idiom.
// Level 0 is the best (rt_priority 99).
type rtArray struct {
	bitmap [rtWords]uint64
	lists  [rtLevels]klist.Head
	count  int
}

func (a *rtArray) init() {
	for i := range a.lists {
		a.lists[i].Init()
	}
}

func (a *rtArray) firstSet() int {
	for w := 0; w < rtWords; w++ {
		if a.bitmap[w] != 0 {
			return w*64 + bits.TrailingZeros64(a.bitmap[w])
		}
	}
	return -1
}

func (a *rtArray) nextSet(from int) int {
	if from >= rtLevels {
		return -1
	}
	w := from / 64
	word := a.bitmap[w] &^ (1<<uint(from%64) - 1)
	for {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
		w++
		if w >= rtWords {
			return -1
		}
		word = a.bitmap[w]
	}
}

func (a *rtArray) setBit(lvl int)   { a.bitmap[lvl/64] |= 1 << uint(lvl%64) }
func (a *rtArray) clearBit(lvl int) { a.bitmap[lvl/64] &^= 1 << uint(lvl%64) }

func rtLevelOf(t *task.Task) int { return task.MaxRTPriority - t.RTPriority }

// runqueue is one CPU's fair heap plus real-time array. minVR is the
// monotone virtual clock the sleeper clamp and migration renorm anchor
// to; maxVR is the high-watermark a yielding task is sent behind;
// weight sums the queued fair entries' weights for slice computation.
type runqueue struct {
	fair  fheap
	rt    rtArray
	minVR uint64
	maxVR uint64

	weight       uint64
	sinceBalance int

	// order tie-break counters: MoveFirst hands out ever-smaller front
	// orders, ordinary enqueues and MoveLast ever-larger back orders.
	frontSeq int64
	backSeq  int64

	// curr is the fair task this queue last dispatched and currBase its
	// executed-cycle odometer at dispatch; the next Schedule on this CPU
	// settles the difference into the task's vruntime.
	curr     *task.Task
	currBase uint64
}

func (rq *runqueue) len() int { return rq.fair.len() + rq.rt.count }

// CPUSteals is one CPU's balancer activity, split by cache domain —
// the shared sched.CPUSteals shape schedtrace renders.
type CPUSteals = sched.CPUSteals

// Sched is the weighted-vruntime fair scheduler. Create with New.
type Sched struct {
	env   *sched.Env
	cfg   Config
	topo  *sched.Topology
	rqs   []runqueue
	total int

	// vruntime-denominated tunables, derived from Config.TickCycles.
	sleeperBonus uint64 // placement clamp: one latency period
	wakeGran     uint64 // wakeup/tick preemption hysteresis: half a tick

	steals []CPUSteals
}

// New returns a fair scheduler bound to env with the default config.
func New(env *sched.Env) *Sched { return NewWithConfig(env, Config{}) }

// NewWithConfig returns a fair scheduler with tuned knobs.
func NewWithConfig(env *sched.Env, cfg Config) *Sched {
	cfg = cfg.withDefaults()
	s := &Sched{
		env:          env,
		cfg:          cfg,
		rqs:          make([]runqueue, env.NCPU),
		steals:       make([]CPUSteals, env.NCPU),
		sleeperBonus: periodTicks * cfg.TickCycles,
		wakeGran:     cfg.TickCycles / 8,
	}
	s.topo = env.Topo
	if s.topo == nil {
		s.topo = sched.FlatTopology(env.NCPU)
	}
	for i := range s.rqs {
		s.rqs[i].rt.init()
	}
	return s
}

// Name implements sched.Scheduler.
func (s *Sched) Name() string { return "cfs" }

// PerCPU marks the policy as using per-CPU run-queue locks.
func (s *Sched) PerCPU() bool { return true }

// DomainSteals reports tasks the balancer moved within and across cache
// domains, machine-wide — the numa experiment's per-policy columns.
func (s *Sched) DomainSteals() (intra, cross uint64) {
	for i := range s.steals {
		intra += s.steals[i].Intra
		cross += s.steals[i].Cross
	}
	return intra, cross
}

// PerCPUSteals returns a copy of the per-CPU steal counters, indexed by
// the stealing CPU — the breakdown schedtrace renders per domain.
func (s *Sched) PerCPUSteals() []CPUSteals {
	return append([]CPUSteals(nil), s.steals...)
}

// MinVR exposes a queue's monotone min_vruntime, for tests.
func (s *Sched) MinVR(cpu int) uint64 { return s.rqs[cpu].minVR }

// QueueLen returns CPU q's queued tasks (fair + real-time), for tests.
func (s *Sched) QueueLen(q int) int { return s.rqs[q].len() }

// homeOf picks the queue for t: its last CPU when the affinity mask
// allows it and the CPU is online, otherwise the least-loaded allowed
// online queue, falling back to the first online queue.
func (s *Sched) homeOf(t *task.Task) int {
	if t.EverRan && t.Processor < len(s.rqs) && t.AllowedOn(t.Processor) && s.env.CPUOnline(t.Processor) {
		return t.Processor
	}
	best := -1
	for i := range s.rqs {
		if !t.AllowedOn(i) || !s.env.CPUOnline(i) {
			continue
		}
		if best < 0 || s.rqs[i].len() < s.rqs[best].len() {
			best = i
		}
	}
	if best < 0 {
		for i := range s.rqs {
			if s.env.CPUOnline(i) {
				return i
			}
		}
		best = 0
	}
	return best
}

// placeClamp applies the new-task/wake placement rule: a task whose
// virtual clock lags the queue (a long sleeper, a fresh fork, a survivor
// of a policy swap whose vruntime era is stale) is pulled up to
// min_vruntime minus one latency period — a bounded boost, never an
// unbounded head start — while a task ahead of the queue keeps its own
// clock and waits its turn.
func (s *Sched) placeClamp(t *task.Task, rq *runqueue) {
	floor := uint64(0)
	if rq.minVR > s.sleeperBonus {
		floor = rq.minVR - s.sleeperBonus
	}
	if t.VRuntime < floor {
		t.VRuntime = floor
	}
}

// enqueueFair files a fair task on cpu's queue. front biases the order
// tie-break ahead of every queued equal (MoveFirst semantics); ordinary
// enqueues go behind their equals, preserving FIFO among exact ties.
func (s *Sched) enqueueFair(t *task.Task, cpu int, front bool) {
	rq := &s.rqs[cpu]
	var order int64
	if front {
		rq.frontSeq--
		order = rq.frontSeq
	} else {
		rq.backSeq++
		order = rq.backSeq
	}
	w := Weight(t.Priority)
	rq.fair.push(fentry{t: t, vr: t.VRuntime, order: order, weight: w})
	rq.weight += w
	if t.VRuntime > rq.maxVR {
		rq.maxVR = t.VRuntime
	}
	t.QIndex = cpu
	t.QZero = true
	s.total++
}

// enqueueRT files a real-time task at its rt_priority level on cpu.
func (s *Sched) enqueueRT(t *task.Task, cpu int, front bool) {
	rq := &s.rqs[cpu]
	lvl := rtLevelOf(t)
	if front {
		rq.rt.lists[lvl].PushFront(&t.RunList)
	} else {
		rq.rt.lists[lvl].PushBack(&t.RunList)
	}
	rq.rt.setBit(lvl)
	rq.rt.count++
	t.QIndex = cpu
	t.QStamp = uint64(lvl)
	t.QZero = true
	s.total++
}

// AddToRunqueue files a newly runnable task on its home CPU's queue,
// applying the sleeper clamp to fair tasks. A task homeOf re-homes away
// from its last CPU (offline, affinity change) is renormalized to the
// new queue's clock first — placeClamp only bounds the lagging side, so
// without the rebase a vruntime earned on a fast-clock queue would park
// the task far ahead of the new queue.
func (s *Sched) AddToRunqueue(t *task.Task) {
	if t.IsIdle {
		panic("cfs: idle task on run queue")
	}
	if t.QZero {
		return
	}
	cpu := s.homeOf(t)
	if t.RealTime() {
		s.enqueueRT(t, cpu, true)
		return
	}
	if t.EverRan && t.Processor < len(s.rqs) && cpu != t.Processor {
		s.renorm(t, s.homeVR(t), &s.rqs[cpu])
	}
	s.placeClamp(t, &s.rqs[cpu])
	s.enqueueFair(t, cpu, false)
}

// PlaceWake accepts the kernel's SD_WAKE_IDLE hint: file the woken task
// directly on the given idle CPU's queue, inside the waker's cache
// domain, instead of behind its home CPU's backlog.
func (s *Sched) PlaceWake(t *task.Task, cpu int) bool {
	if t.IsIdle || cpu < 0 || cpu >= len(s.rqs) || !t.AllowedOn(cpu) || !s.env.CPUOnline(cpu) {
		return false
	}
	if t.QZero {
		return false
	}
	if t.RealTime() {
		s.enqueueRT(t, cpu, true)
		return true
	}
	s.renorm(t, s.homeVR(t), &s.rqs[cpu])
	s.placeClamp(t, &s.rqs[cpu])
	s.enqueueFair(t, cpu, false)
	return true
}

// homeVR returns the min_vruntime of the queue t's clock is relative to:
// its last CPU's queue when valid, else zero (the clamp bounds the rest).
func (s *Sched) homeVR(t *task.Task) uint64 {
	if t.EverRan && t.Processor < len(s.rqs) {
		return s.rqs[t.Processor].minVR
	}
	return 0
}

// renorm rebases a migrating task's vruntime from one queue's virtual
// clock to another's, preserving its lag: per-queue clocks advance at
// different rates, so raw vruntimes are not comparable across queues.
func (s *Sched) renorm(t *task.Task, fromMin uint64, to *runqueue) {
	lag := int64(t.VRuntime) - int64(fromMin)
	nv := int64(to.minVR) + lag
	if nv < 0 {
		nv = 0
	}
	t.VRuntime = uint64(nv)
}

// DelFromRunqueue removes t from whichever structure holds it. A task in
// an rt list is physically linked (RunList); a fair task lives in the
// heap at index QStamp.
func (s *Sched) DelFromRunqueue(t *task.Task) {
	if !t.QZero {
		return
	}
	rq := &s.rqs[t.QIndex]
	if t.RunList.OnList() {
		lvl := int(t.QStamp)
		rq.rt.lists[lvl].Remove(&t.RunList)
		rq.rt.count--
		if rq.rt.lists[lvl].Empty() {
			rq.rt.clearBit(lvl)
		}
	} else {
		e := rq.fair.removeAt(int(t.QStamp))
		rq.weight -= e.weight
	}
	t.QZero = false
	s.total--
}

// MoveFirstRunqueue re-keys t ahead of its exact-vruntime equals.
func (s *Sched) MoveFirstRunqueue(t *task.Task) {
	if !t.QZero {
		return
	}
	cpu := t.QIndex
	if t.RunList.OnList() {
		s.rqs[cpu].rt.lists[int(t.QStamp)].MoveFront(&t.RunList)
		return
	}
	s.DelFromRunqueue(t)
	s.enqueueFair(t, cpu, true)
}

// MoveLastRunqueue re-keys t behind its exact-vruntime equals.
func (s *Sched) MoveLastRunqueue(t *task.Task) {
	if !t.QZero {
		return
	}
	cpu := t.QIndex
	if t.RunList.OnList() {
		s.rqs[cpu].rt.lists[int(t.QStamp)].MoveBack(&t.RunList)
		return
	}
	s.DelFromRunqueue(t)
	s.enqueueFair(t, cpu, false)
}

// Runnable returns the number of queued tasks; running tasks are
// dequeued while they execute.
func (s *Sched) Runnable() int { return s.total }

// OnRunqueue reports whether the scheduler currently tracks t.
func (s *Sched) OnRunqueue(t *task.Task) bool { return t.QZero }

// sliceFor computes the dispatched task's timeslice in ticks: its weight
// share of the latency period against the tasks still queued on rq,
// floored at the granularity. A lone task gets the whole period.
func (s *Sched) sliceFor(t *task.Task, rq *runqueue) int {
	w := Weight(t.Priority)
	total := rq.weight + w
	slice := int(periodTicks * w / total)
	if slice < minGranTicks {
		slice = minGranTicks
	}
	return slice
}

// advance settles prev's executed cycles into its vruntime, if prev is
// the fair task this queue dispatched: vruntime += executed x 1024/weight.
func (rq *runqueue) advance(prev *task.Task) {
	if rq.curr != prev || prev.IsIdle {
		return
	}
	rq.curr = nil
	exec := prev.UserCycles + prev.SystemCycles - rq.currBase
	if exec == 0 {
		return
	}
	prev.VRuntime += exec * weightScale / Weight(prev.Priority)
}

// logCost approximates the O(log n) sift cost of one heap operation on
// cpu's fair heap.
func (s *Sched) logCost(cpu int) uint64 {
	cost := uint64(0)
	for n := s.rqs[cpu].fair.len(); n > 1; n >>= 1 {
		cost += 35
	}
	return cost
}

// Schedule implements the fair pick: settle the previous task's
// vruntime, requeue it if still runnable, then run the lowest-vruntime
// fair task — unless a real-time task is queued, which always wins.
// Recalcs is always zero: there is no global recalculation in this
// design, quantum refill happens per-dispatch via the slice.
func (s *Sched) Schedule(cpu int, prev *task.Task) sched.Result {
	env := s.env
	res := sched.Result{Cycles: env.Cost.ScheduleBase}
	rq := &s.rqs[cpu]
	rq.advance(prev)

	if !prev.IsIdle {
		yielded := prev.Yielded
		prev.Yielded = false
		rrExpired := false
		if prev.Policy == task.RR && prev.Counter(env.Epoch) == 0 {
			prev.SetCounter(env.Epoch, prev.Priority)
			rrExpired = true
		}
		if prev.Runnable() && !prev.QZero {
			home := s.homeOf(prev)
			hrq := &s.rqs[home]
			switch {
			case prev.RealTime():
				// Preempted RT keeps the head of its level; a yielding
				// or RR-rotated one goes behind its level peers.
				s.enqueueRT(prev, home, !(yielded || rrExpired))
			case yielded:
				// sched_yield: park behind the queue's vruntime
				// high-watermark so every queued task runs first.
				if home != cpu {
					s.renorm(prev, rq.minVR, hrq)
				}
				if hrq.maxVR > prev.VRuntime {
					prev.VRuntime = hrq.maxVR
				}
				s.enqueueFair(prev, home, false)
			default:
				// Quantum expiry or preemption: the settled vruntime is
				// the only ordering input; no recharge loop, no arrays.
				if home != cpu {
					s.renorm(prev, rq.minVR, hrq)
				}
				s.enqueueFair(prev, home, false)
			}
			res.Cycles += env.Cost.AddRunqueue + s.logCost(home)
		}
	}

	if env.NCPU > 1 {
		rq.sinceBalance++
		if rq.sinceBalance >= balanceEvery {
			rq.sinceBalance = 0
			s.pullBalance(cpu, &res)
		}
	}

	best := s.pickLocal(cpu, &res)
	if best == nil {
		best = s.steal(cpu, &res)
	}
	if best == nil {
		return res
	}
	s.DelFromRunqueue(best)
	res.Cycles += env.Cost.DelRunqueue + s.logCost(cpu)
	if !best.RealTime() {
		// The dispatched task is the queue minimum, so min_vruntime
		// follows it — monotone by construction.
		if best.VRuntime > rq.minVR {
			rq.minVR = best.VRuntime
		}
		if best.VRuntime > rq.maxVR {
			rq.maxVR = best.VRuntime
		}
		best.SetCounter(env.Epoch, s.sliceFor(best, rq))
		rq.curr = best
		rq.currBase = best.UserCycles + best.SystemCycles
	} else {
		rq.curr = nil
	}
	res.Next = best
	return res
}

// pickable mirrors the kernel's can_schedule: not running elsewhere and
// allowed here.
func pickable(t *task.Task, cpu int) bool {
	return (!t.HasCPU || t.Processor == cpu) && t.AllowedOn(cpu)
}

// pickLocal selects from cpu's own queue: best real-time level first,
// then the fair heap root. When the root is unpickable (running
// elsewhere mid-claim, or an affinity straggler homeOf's fallback filed
// here) the heap array is scanned for the minimum pickable entry.
func (s *Sched) pickLocal(cpu int, res *sched.Result) *task.Task {
	if t := s.pickRT(&s.rqs[cpu], cpu, res); t != nil {
		return t
	}
	return s.pickFair(&s.rqs[cpu], cpu, res)
}

func (s *Sched) pickRT(rq *runqueue, cpu int, res *sched.Result) *task.Task {
	env := s.env
	for lvl := rq.rt.firstSet(); lvl >= 0; lvl = rq.rt.nextSet(lvl + 1) {
		res.Cycles += env.Cost.BitmapOp
		var found *task.Task
		rq.rt.lists[lvl].ForEach(func(n *klist.Node) bool {
			t := task.FromNode(n)
			res.Examined++
			res.Cycles += env.Cost.Touch(env.NCPU)
			if !pickable(t, cpu) {
				return true
			}
			found = t
			return false
		})
		if found != nil {
			return found
		}
	}
	return nil
}

func (s *Sched) pickFair(rq *runqueue, cpu int, res *sched.Result) *task.Task {
	env := s.env
	if rq.fair.len() == 0 {
		return nil
	}
	root := rq.fair.es[0].t
	res.Examined++
	res.Cycles += env.Cost.Touch(env.NCPU)
	if pickable(root, cpu) {
		return root
	}
	// Rare path: the O(1) root is unpickable; find the least-vruntime
	// pickable entry by scanning the backing array.
	var best *task.Task
	bi := -1
	for i := 1; i < len(rq.fair.es); i++ {
		res.Examined++
		res.Cycles += env.Cost.Touch(env.NCPU)
		t := rq.fair.es[i].t
		if !pickable(t, cpu) {
			continue
		}
		if bi < 0 || rq.fair.less(i, bi) {
			best, bi = t, i
		}
	}
	return best
}

// ExportRunnable implements sched.Scheduler. Drain order is CPU 0..n-1;
// per CPU the real-time levels in ascending level order (FIFO within),
// then the fair heap popped in ascending vruntime order.
func (s *Sched) ExportRunnable() []*task.Task {
	out := make([]*task.Task, 0, s.total)
	for cpu := range s.rqs {
		out = s.DrainCPU(cpu, out)
	}
	return out
}

// DrainCPU implements sched.Scheduler: empty the offlined CPU's private
// structures so its tasks can be re-filed on surviving queues.
func (s *Sched) DrainCPU(cpu int, out []*task.Task) []*task.Task {
	rq := &s.rqs[cpu]
	for {
		lvl := rq.rt.firstSet()
		if lvl < 0 {
			break
		}
		t := task.FromNode(rq.rt.lists[lvl].First())
		s.DelFromRunqueue(t)
		sched.ResetQueueState(t)
		out = append(out, t)
	}
	for rq.fair.len() > 0 {
		t := rq.fair.es[0].t
		s.DelFromRunqueue(t)
		sched.ResetQueueState(t)
		out = append(out, t)
	}
	rq.weight = 0
	return out
}

// effectiveVR returns t's virtual clock including the cycles executed
// since its current dispatch, which are not yet settled into VRuntime —
// the number wake preemption must compare against, or a long-running
// task looks perpetually fresh.
func (s *Sched) effectiveVR(t *task.Task) uint64 {
	vr := t.VRuntime
	if t.HasCPU && t.Processor < len(s.rqs) {
		rq := &s.rqs[t.Processor]
		if rq.curr == t {
			exec := t.UserCycles + t.SystemCycles - rq.currBase
			vr += exec * weightScale / Weight(t.Priority)
		}
	}
	return vr
}

// PreemptsCurr implements the kernel's wake-preemption comparison: a
// real-time task preempts any fair one (and a lower rt_priority), and a
// waking fair task preempts the running one when its clamped vruntime
// lags the runner's effective clock by more than the wakeup granularity
// — the sleeper boost reaching the wake path, where the 2.3.99 goodness
// delta would see a tie.
func (s *Sched) PreemptsCurr(t, curr *task.Task) bool {
	if t.RealTime() {
		return !curr.RealTime() || t.RTPriority > curr.RTPriority
	}
	if curr.RealTime() {
		return false
	}
	return t.VRuntime+s.wakeGran < s.effectiveVR(curr)
}

// TickPreempt implements the kernel's tick-time preemption hook, called
// while t runs on cpu with quantum remaining. The running task's
// effective vruntime (settled clock plus cycles executed this stint) is
// compared against the queue: a waiting real-time task preempts a fair
// runner unconditionally and a real-time runner only from a strictly
// better level (an equal-level RR peer waits for quantum expiry, a worse
// one for the runner to block — no per-tick resched churn), and a fair
// task whose vruntime lags the runner by more than the wakeup
// granularity preempts so the slice machinery's tick quantization cannot
// hold the virtual clock hostage. Rotation is never reported: cfs has no
// same-level round-robin distinct from the vruntime order itself.
func (s *Sched) TickPreempt(cpu int, t *task.Task) (preempt, rotation bool) {
	rq := &s.rqs[cpu]
	if rq.rt.count > 0 {
		if lvl := rq.rt.firstSet(); lvl >= 0 {
			head := task.FromNode(rq.rt.lists[lvl].First())
			if pickable(head, cpu) && (!t.RealTime() || lvl < rtLevelOf(t)) {
				return true, false
			}
		}
	}
	if t.RealTime() || rq.fair.len() == 0 {
		return false, false
	}
	currVR := s.effectiveVR(t)
	head := rq.fair.es[0].t
	if pickable(head, cpu) && rq.fair.es[0].vr+s.wakeGran < currVR {
		return true, false
	}
	return false, false
}

// steal takes the greatest-lag movable task from another queue — the
// idle-balance path, hierarchical like o1's: victims inside the thief's
// cache domain are exhausted before any cross-domain queue is touched,
// and a cross-domain steal requires the victim to hold at least
// crossStealMin tasks.
func (s *Sched) steal(cpu int, res *sched.Result) *task.Task {
	if t := s.stealTier(cpu, res, true); t != nil {
		return t
	}
	if s.topo.NumDomains() == 1 {
		return nil
	}
	return s.stealTier(cpu, res, false)
}

func (s *Sched) stealTier(cpu int, res *sched.Result, local bool) *task.Task {
	minLen := 1
	if !local {
		minLen = crossStealMin
	}
	eligible := func(i int) bool {
		return s.topo.SameDomain(i, cpu) == local && s.rqs[i].len() >= minLen
	}
	first := s.busiestWhere(cpu, 0, eligible)
	if first < 0 {
		return nil
	}
	if t := s.stealFrom(first, cpu, res); t != nil {
		return t
	}
	for i := range s.rqs {
		if i == cpu || i == first || !eligible(i) {
			continue
		}
		if t := s.stealFrom(i, cpu, res); t != nil {
			return t
		}
	}
	return nil
}

// stealFrom scans one victim queue for a movable task: its best pickable
// real-time task first, then its minimum-vruntime (greatest-lag) fair
// task — the one the victim owes the most CPU, so moving it helps
// fairness machine-wide, not just throughput. The task is left queued on
// the victim; Schedule dequeues it after the renorm.
func (s *Sched) stealFrom(victim, cpu int, res *sched.Result) *task.Task {
	res.Cycles += s.env.Cost.LockOp
	vrq := &s.rqs[victim]
	t := s.pickRT(vrq, cpu, res)
	if t == nil {
		t = s.pickFair(vrq, cpu, res)
	}
	if t == nil {
		return nil
	}
	if !t.RealTime() {
		s.renorm(t, vrq.minVR, &s.rqs[cpu])
	}
	s.noteMove(cpu, victim)
	// Re-home the stolen task so the post-dispatch bookkeeping (minVR,
	// curr) lands on the thief's queue: move it across now.
	s.DelFromRunqueue(t)
	if t.RealTime() {
		s.enqueueRT(t, cpu, true)
	} else {
		s.enqueueFair(t, cpu, true)
	}
	res.Cycles += s.env.Cost.MoveRunqueue + s.logCost(cpu)
	return t
}

func (s *Sched) noteMove(cpu, victim int) {
	if s.topo.SameDomain(cpu, victim) {
		s.steals[cpu].Intra++
	} else {
		s.steals[cpu].Cross++
	}
}

func (s *Sched) busiestWhere(cpu, floor int, ok func(i int) bool) int {
	victim := -1
	most := floor
	for i := range s.rqs {
		if i == cpu || !ok(i) {
			continue
		}
		if n := s.rqs[i].len(); n > most {
			most = n
			victim = i
		}
	}
	return victim
}

// pullBalance is the periodic balancer: an in-domain victim past the
// balanceImbalance gap loses one task; with no in-domain imbalance a
// cross-domain victim is considered past a doubled 2*balanceImbalance
// gap and then a batch moves at once, amortizing the interconnect refill.
func (s *Sched) pullBalance(cpu int, res *sched.Result) {
	rq := &s.rqs[cpu]
	inDomain := func(i int) bool { return s.topo.SameDomain(i, cpu) }
	if victim := s.busiestWhere(cpu, rq.len()+balanceImbalance-1, inDomain); victim >= 0 {
		s.pullFrom(victim, cpu, 1, res)
		return
	}
	if s.topo.NumDomains() == 1 {
		return
	}
	outDomain := func(i int) bool { return !s.topo.SameDomain(i, cpu) }
	victim := s.busiestWhere(cpu, rq.len()+2*balanceImbalance-1, outDomain)
	if victim < 0 {
		return
	}
	batch := (s.rqs[victim].len() - rq.len()) / 2
	if batch > 4 {
		batch = 4
	}
	if batch < 1 {
		batch = 1
	}
	s.pullFrom(victim, cpu, batch, res)
}

// pullFrom moves up to max movable tasks from victim's queue to cpu,
// greatest-lag first, renormalizing each one's virtual clock.
func (s *Sched) pullFrom(victim, cpu, max int, res *sched.Result) {
	res.Cycles += s.env.Cost.LockOp
	vrq := &s.rqs[victim]
	for moved := 0; moved < max; moved++ {
		t := s.pickRT(vrq, cpu, res)
		if t == nil {
			t = s.pickFair(vrq, cpu, res)
		}
		if t == nil {
			return
		}
		s.DelFromRunqueue(t)
		if t.RealTime() {
			s.enqueueRT(t, cpu, false)
		} else {
			s.renorm(t, vrq.minVR, &s.rqs[cpu])
			s.enqueueFair(t, cpu, false)
		}
		res.Cycles += s.env.Cost.MoveRunqueue + s.logCost(cpu)
		s.noteMove(cpu, victim)
	}
}
