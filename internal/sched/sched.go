// Package sched defines the contract between the simulated kernel and a
// scheduling policy, the shared goodness() heuristic from Linux
// 2.3.99-pre4, and the cycle-cost model used to charge scheduler work to
// virtual CPU time.
//
// The interface exposes exactly the run-queue manipulation functions the
// paper names in §5.1 — add_to_runqueue, del_from_runqueue,
// move_first_runqueue, move_last_runqueue — plus Schedule itself. Keeping
// this surface identical to the kernel's means the stock scheduler, ELSC,
// and the future-work alternatives are drop-in replacements for one
// another, which is design goal 1 of the paper ("Keep changes local to the
// scheduler. Do not change current interfaces").
package sched

import (
	"math/bits"

	"elsc/internal/task"
)

// Goodness weights from 2.3.99-pre4 (paper §3.3.1).
const (
	// RTBase is added to rt_priority for real-time tasks: "goodness()
	// returns 1000 plus the value stored in the task's rt_priority".
	RTBase = 1000
	// AffinityBonus is the "somewhat larger (15 point) bonus ... given
	// to tasks whose last run was on the current processor".
	AffinityBonus = 15
	// MMBonus is the "small, one point advantage ... given to tasks that
	// share memory maps".
	MMBonus = 1
)

// Goodness computes the utility of running t on CPU cpu when the previous
// task's address space is prevMM — the full (static + dynamic) heuristic of
// paper §3.3.1. It does not consult the SCHED_YIELD bit; per 2.3.99, only
// the caller applies yield handling, and only for the previous task.
func Goodness(ep *task.Epoch, t *task.Task, cpu int, prevMM *task.MM) int {
	if t.RealTime() {
		return RTBase + t.RTPriority
	}
	c := t.Counter(ep)
	if c == 0 {
		// "This lets the scheduler know a runnable task was found but
		// its time slice is used up."
		return 0
	}
	g := c + t.Priority
	if t.MM != nil && t.MM == prevMM {
		g += MMBonus
	}
	if t.EverRan && t.Processor == cpu {
		g += AffinityBonus
	}
	return g
}

// Result reports what one Schedule invocation did, so the kernel can charge
// cycles and accumulate the paper's statistics.
type Result struct {
	// Next is the task to run; nil means schedule the idle task.
	Next *task.Task
	// Examined counts tasks whose goodness (or eligibility) was
	// evaluated — the second chart of Figure 5.
	Examined int
	// Cycles is the simulated cost of this invocation, charged to the
	// CPU and to the run-queue lock hold time — the first chart of
	// Figure 5.
	Cycles uint64
	// Recalcs counts entries into the counter-recalculation loop during
	// this invocation — Figure 2.
	Recalcs int
}

// CPUSteals is one CPU's balancer activity: tasks its steal and pull
// paths moved onto it from queues in the same cache domain (Intra) and
// from queues across a domain boundary (Cross). Policies with a
// domain-split balancer (o1, cfs) expose `PerCPUSteals() []CPUSteals`,
// which schedtrace renders as a per-domain table.
type CPUSteals struct {
	Intra uint64
	Cross uint64
}

// Scheduler is a pluggable scheduling policy. Implementations are not
// thread safe; the simulated global run-queue spinlock serializes access,
// and the simulation itself is single-threaded.
type Scheduler interface {
	// Name identifies the policy in stats and tables ("reg", "elsc", ...).
	Name() string

	// AddToRunqueue makes a runnable task eligible for selection.
	// Mirrors add_to_runqueue: newly woken tasks go to the front of
	// their list.
	AddToRunqueue(t *task.Task)

	// DelFromRunqueue removes a task (it blocked, exited, or is being
	// re-indexed).
	DelFromRunqueue(t *task.Task)

	// MoveFirstRunqueue biases the task to win goodness() ties.
	MoveFirstRunqueue(t *task.Task)

	// MoveLastRunqueue biases the task to lose goodness() ties (used on
	// SCHED_RR quantum expiry).
	MoveLastRunqueue(t *task.Task)

	// Schedule picks the next task for cpu. prev is the task that was
	// running (never nil; the kernel passes the per-CPU idle task's
	// placeholder as a prev with State != Running when waking from
	// idle). Schedule must handle prev's yield bit, de-queue prev if it
	// is no longer runnable, and trigger counter recalculation per its
	// policy. The returned task is marked by the scheduler as dequeued
	// or in-list according to its own conventions.
	Schedule(cpu int, prev *task.Task) Result

	// Runnable returns the number of tasks currently selectable
	// (on the run queue and not executing).
	Runnable() int

	// OnRunqueue reports whether the scheduler currently tracks t.
	OnRunqueue(t *task.Task) bool

	// ExportRunnable drains every queued task from the policy's
	// structures, in a deterministic policy-defined order, and returns
	// them fully detached: RunList unlinked and the scheduler-private
	// QIndex/QZero/QStamp bookkeeping reset via ResetQueueState, so a
	// freshly constructed successor policy can import the set with plain
	// AddToRunqueue calls without inheriting the predecessor's
	// conventions. The policy must be empty afterwards (Runnable() == 0).
	// Running (HasCPU) tasks are out of scope: the kernel detaches them
	// itself before exporting. This is the state-handoff half of hot
	// policy switching (Machine.SwitchPolicy).
	ExportRunnable() []*task.Task

	// DrainCPU removes every task filed on cpu's private structures and
	// appends them to out, fully detached (RunList unlinked,
	// ResetQueueState applied), returning the extended slice. The kernel
	// calls it when cpu goes offline, then re-files the tasks through
	// AddToRunqueue so the policy's (by then online-mask-aware) placement
	// re-homes them. Policies with only globally visible structures — a
	// shared queue or heaps every CPU's Schedule scans — return out
	// unchanged: their tasks remain reachable from the surviving CPUs.
	// Implementations must not allocate when out has capacity; the kernel
	// reuses one buffer across hotplug events.
	DrainCPU(cpu int, out []*task.Task) []*task.Task
}

// ResetQueueState clears a task's scheduler-private bookkeeping
// (QIndex/QZero/QStamp) to the never-queued zero values every policy
// accepts at AddToRunqueue. Policies leave these fields stale in ways that
// are internally consistent but mutually incompatible — ELSC keeps a
// parked task's zero tag after removal, heapsched encodes membership in
// QZero — so every task crossing a policy boundary must pass through here
// or risk being silently dropped by the successor's "already queued"
// guards.
func ResetQueueState(t *task.Task) {
	t.QIndex = 0
	t.QZero = false
	t.QStamp = 0
}

// Env is what every scheduler needs from the kernel: the recalculation
// epoch, the total task population (recalculation cost is proportional to
// it), CPU topology, and the cost model.
type Env struct {
	Epoch *task.Epoch
	// NTasks returns the number of tasks in the system (runnable or
	// not); the recalculation loop visits all of them.
	NTasks func() int
	// NCPU is the number of processors.
	NCPU int
	// SMP reports whether the kernel was built with SMP support. The
	// paper distinguishes "UP" (SMP disabled) from "1P" (SMP kernel on
	// one processor); the UP build enables ELSC's search shortcut.
	SMP bool
	// Topo is the cache-domain layout. Always non-nil; machines without
	// a declared layout get the flat single-domain topology, under which
	// no dispatch is ever cross-domain.
	Topo *Topology
	Cost CostModel

	// online is the bitmask of online CPUs (bit i == CPU i is online),
	// maintained by the kernel across hotplug events. NCPU is capped at
	// 64 by the same word-size limit as task.CPUsAllowed. The Env object
	// is shared across hot policy switches, so the mask survives them.
	online uint64
}

// NewEnv returns an Env with the given topology, a fresh epoch, and the
// default cost model. ntasks may be nil if no recalculation cost should be
// charged (unit tests).
func NewEnv(ncpu int, smp bool, ntasks func() int) *Env {
	if ntasks == nil {
		ntasks = func() int { return 0 }
	}
	env := &Env{
		Epoch:  &task.Epoch{},
		NTasks: ntasks,
		NCPU:   ncpu,
		SMP:    smp,
		Topo:   FlatTopology(ncpu),
		Cost:   DefaultCostModel(),
	}
	for i := 0; i < ncpu && i < 64; i++ {
		env.online |= 1 << uint(i)
	}
	return env
}

// CPUOnline reports whether cpu is online. CPUs beyond the 64-bit mask
// (never created by the kernel) read as offline.
func (e *Env) CPUOnline(cpu int) bool {
	if cpu < 0 || cpu >= 64 {
		return false
	}
	return e.online&(1<<uint(cpu)) != 0
}

// SetCPUOnline flips cpu's bit in the online mask. Called only by the
// kernel's hotplug path.
func (e *Env) SetCPUOnline(cpu int, on bool) {
	if cpu < 0 || cpu >= 64 {
		return
	}
	if on {
		e.online |= 1 << uint(cpu)
	} else {
		e.online &^= 1 << uint(cpu)
	}
}

// OnlineCount returns the number of online CPUs.
func (e *Env) OnlineCount() int { return bits.OnesCount64(e.online) }

// OnlineMask returns the online-CPU bitmask (bit i == CPU i online).
func (e *Env) OnlineMask() uint64 { return e.online }
