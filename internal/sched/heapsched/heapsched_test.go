package heapsched

import (
	"testing"
	"testing/quick"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sim"
	"elsc/internal/task"
	"elsc/internal/workload/volano"
)

func newEnv(ncpu, ntasks int) *sched.Env {
	return sched.NewEnv(ncpu, ncpu > 1, func() int { return ntasks })
}

func mkTask(env *sched.Env, id, prio, counter int) *task.Task {
	t := task.New(id, "t", nil, env.Epoch)
	t.Priority = prio
	t.SetCounter(env.Epoch, counter)
	t.QIndex = -1
	return t
}

func idlePrev() *task.Task {
	t := task.New(-1, "idle", nil, nil)
	t.IsIdle = true
	return t
}

func TestPicksGlobalBest(t *testing.T) {
	env := newEnv(1, 3)
	s := New(env)
	lo := mkTask(env, 1, 10, 5)
	hi := mkTask(env, 2, 20, 35)
	mid := mkTask(env, 3, 20, 15)
	s.AddToRunqueue(lo)
	s.AddToRunqueue(hi)
	s.AddToRunqueue(mid)
	res := s.Schedule(0, idlePrev())
	if res.Next != hi {
		t.Fatalf("picked %v, want %v", res.Next, hi)
	}
	// Only heap tops are examined, never the whole population.
	if res.Examined > env.NCPU+2 {
		t.Fatalf("examined %d, want at most %d", res.Examined, env.NCPU+2)
	}
}

func TestChosenLeavesHeap(t *testing.T) {
	env := newEnv(1, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	s.AddToRunqueue(a)
	res := s.Schedule(0, idlePrev())
	if res.Next != a {
		t.Fatal("should pick the only task")
	}
	if s.OnRunqueue(a) || s.Runnable() != 0 {
		t.Fatal("chosen task must leave the heap")
	}
}

func TestExhaustedTriggersRecalcAndReheap(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 0)
	b := mkTask(env, 2, 10, 0)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)
	res := s.Schedule(0, idlePrev())
	if res.Recalcs != 1 {
		t.Fatalf("recalcs = %d, want 1", res.Recalcs)
	}
	if res.Next != a {
		t.Fatalf("picked %v, want higher-priority %v after recalc", res.Next, a)
	}
}

func TestAffinitySeparationByHeap(t *testing.T) {
	env := newEnv(2, 2)
	s := New(env)
	onCPU0 := mkTask(env, 1, 20, 10)
	onCPU0.EverRan = true
	onCPU0.Processor = 0
	onCPU1 := mkTask(env, 2, 20, 10)
	onCPU1.EverRan = true
	onCPU1.Processor = 1
	s.AddToRunqueue(onCPU0)
	s.AddToRunqueue(onCPU1)
	// CPU 0 must prefer its affine task even though both heaps' tops
	// have equal static goodness.
	res := s.Schedule(0, idlePrev())
	if res.Next != onCPU0 {
		t.Fatalf("picked %v, want CPU-affine %v", res.Next, onCPU0)
	}
}

func TestHeapOrderProperty(t *testing.T) {
	env := newEnv(1, 0)
	s := New(env)
	rng := sim.NewRNG(3)
	var tasks []*task.Task
	for i := 0; i < 100; i++ {
		tk := mkTask(env, i, 1+rng.Intn(40), 0)
		tk.SetCounter(env.Epoch, 1+rng.Intn(2*tk.Priority))
		tasks = append(tasks, tk)
		s.AddToRunqueue(tk)
	}
	// Popping via Schedule must yield non-increasing static goodness.
	last := 1 << 30
	for i := 0; i < 100; i++ {
		res := s.Schedule(0, idlePrev())
		if res.Next == nil {
			t.Fatalf("heap drained early at %d", i)
		}
		g := res.Next.StaticGoodness(env.Epoch)
		if g > last {
			t.Fatalf("pop %d: static goodness %d after %d (not sorted)", i, g, last)
		}
		last = g
		res.Next.HasCPU = false // pretend it finished instantly
	}
}

func TestRunsFullWorkload(t *testing.T) {
	m := kernel.NewMachine(kernel.Config{
		CPUs: 2, SMP: true, Seed: 17,
		NewScheduler: func(env *sched.Env) sched.Scheduler { return New(env) },
		MaxCycles:    600 * kernel.DefaultHz,
	})
	b := volano.Build(m, volano.Config{Rooms: 1, UsersPerRoom: 4, MessagesPerUser: 3})
	res := b.Run()
	if res.Deliveries != b.ExpectedDeliveries() {
		t.Fatalf("deliveries %d != %d under heap scheduler", res.Deliveries, b.ExpectedDeliveries())
	}
}

func TestRTBeatsRegular(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	reg := mkTask(env, 1, 40, 80)
	rt := task.NewRT(2, "rt", task.FIFO, 0, env.Epoch)
	rt.QIndex = -1
	s.AddToRunqueue(reg)
	s.AddToRunqueue(rt)
	res := s.Schedule(0, idlePrev())
	if res.Next != rt {
		t.Fatalf("picked %v, want RT task", res.Next)
	}
}

// checkHeapInvariants verifies heap ordering and back-pointer consistency.
func checkHeapInvariants(t *testing.T, s *Sched) {
	t.Helper()
	total := 0
	for id := range s.heaps {
		h := &s.heaps[id]
		for i := range h.es {
			e := h.es[i]
			if e.t.QIndex != i || e.t.QStamp != uint64(id) || !e.t.QZero {
				t.Fatalf("heap %d slot %d: stale back-pointers on %v", id, i, e.t)
			}
			for _, child := range []int{2*i + 1, 2*i + 2} {
				if child < len(h.es) && h.less(child, i) {
					t.Fatalf("heap %d: child %d outranks parent %d", id, child, i)
				}
			}
		}
		total += len(h.es)
	}
	if total != s.total {
		t.Fatalf("total %d, heaps hold %d", s.total, total)
	}
}

func TestHeapInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		rng := sim.NewRNG(seed)
		env := newEnv(1+rng.Intn(3), 12)
		s := New(env)
		pool := make([]*task.Task, 12)
		for i := range pool {
			pool[i] = mkTask(env, i, 1+rng.Intn(40), rng.Intn(41))
		}
		for _, op := range ops {
			tk := pool[int(op)%len(pool)]
			switch int(op) % 5 {
			case 0:
				if !s.OnRunqueue(tk) && !tk.HasCPU {
					s.AddToRunqueue(tk)
				}
			case 1:
				if s.OnRunqueue(tk) {
					s.DelFromRunqueue(tk)
				}
			case 2:
				if s.OnRunqueue(tk) {
					s.MoveFirstRunqueue(tk)
				}
			case 3:
				if s.OnRunqueue(tk) {
					s.MoveLastRunqueue(tk)
				}
			case 4:
				cpu := rng.Intn(env.NCPU)
				res := s.Schedule(cpu, idlePrev())
				if res.Next != nil {
					res.Next.EverRan = true
					res.Next.Processor = cpu
					s.AddToRunqueue(res.Next)
				}
			}
			checkHeapInvariants(t, s)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
