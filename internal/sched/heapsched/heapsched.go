// Package heapsched implements the first alternative design from the
// paper's future work (§8): "sorting tasks by static goodness within heaps
// for each processor and address space. One could choose the absolute best
// task available simply by examining the top of each heap."
//
// Tasks are filed into one max-heap per processor (by the CPU they last
// ran on, so the affinity bonus is homogeneous within a heap) plus one
// heap for never-run tasks. schedule() computes the full goodness of each
// heap's top — at most NCPU+2 candidates — and picks the best, so unlike
// ELSC it never misses a bonus-heavy task hiding below the top static
// class.
//
// The design also demonstrates the cost the ELSC authors avoided by
// choosing a table: heap insertion and removal are O(log n), and the
// counter recalculation changes every key, forcing an O(n) re-heapify —
// exactly the "overhead of sorting" and "complexity when inserting or
// removing tasks" §5 warns about. The ablation benchmarks quantify it.
package heapsched

import (
	"elsc/internal/sched"
	"elsc/internal/task"
)

// Sched is the heap-based scheduler. Create with New.
type Sched struct {
	env *sched.Env
	// heaps[cpu] holds tasks whose last run was on cpu; heaps[ncpu]
	// holds tasks that have never run.
	heaps []heap
	seq   uint64
	total int
}

// New returns a heap scheduler bound to env.
func New(env *sched.Env) *Sched {
	s := &Sched{env: env}
	s.heaps = make([]heap, env.NCPU+1)
	return s
}

// Name implements sched.Scheduler.
func (s *Sched) Name() string { return "heap" }

// key orders the heaps: real-time tasks above everything, exhausted tasks
// at the bottom (they are not selectable until recalculation), and
// everything else by static goodness.
func key(ep *task.Epoch, t *task.Task) int {
	if t.RealTime() {
		return sched.RTBase + t.RTPriority
	}
	c := t.Counter(ep)
	if c == 0 {
		return 0
	}
	return c + t.Priority
}

// heapOf returns the heap index for t.
func (s *Sched) heapOf(t *task.Task) int {
	if !t.EverRan {
		return s.env.NCPU
	}
	return t.Processor
}

// AddToRunqueue files t into its processor's heap.
func (s *Sched) AddToRunqueue(t *task.Task) {
	if t.IsIdle {
		panic("heapsched: idle task on run queue")
	}
	if t.QIndex >= 0 && t.QZero {
		return // already queued
	}
	h := s.heapOf(t)
	s.seq++
	s.heaps[h].push(entry{t: t, key: key(s.env.Epoch, t), seq: s.seq}, h)
	s.total++
}

// DelFromRunqueue removes t from whichever heap holds it.
func (s *Sched) DelFromRunqueue(t *task.Task) {
	if !t.QZero {
		return
	}
	s.heaps[t.QStamp].removeAt(t.QIndex)
	t.QZero = false
	t.QIndex = -1
	s.total--
}

// MoveFirstRunqueue re-keys t to win ties by giving it the freshest
// sequence bias; heaps break key ties by preferring lower seq, so reusing
// an early sequence number moves it ahead of equals.
func (s *Sched) MoveFirstRunqueue(t *task.Task) {
	if !t.QZero {
		return
	}
	h := t.QStamp
	s.heaps[h].removeAt(t.QIndex)
	s.heaps[h].push(entry{t: t, key: key(s.env.Epoch, t), seq: 0}, int(h))
}

// MoveLastRunqueue pushes t behind its equals.
func (s *Sched) MoveLastRunqueue(t *task.Task) {
	if !t.QZero {
		return
	}
	h := t.QStamp
	s.seq++
	s.heaps[h].removeAt(t.QIndex)
	s.heaps[h].push(entry{t: t, key: key(s.env.Epoch, t), seq: s.seq}, int(h))
}

// Runnable returns the number of queued tasks.
func (s *Sched) Runnable() int { return s.total }

// OnRunqueue reports whether the scheduler holds t.
func (s *Sched) OnRunqueue(t *task.Task) bool { return t.QZero }

// ExportRunnable implements sched.Scheduler. Drain order is heap 0..NCPU
// (per-CPU affinity heaps then the never-ran heap), each popped root
// first — i.e. per heap in (key desc, seq asc) priority order.
func (s *Sched) ExportRunnable() []*task.Task {
	out := make([]*task.Task, 0, s.total)
	for h := range s.heaps {
		for {
			e, ok := s.heaps[h].peek()
			if !ok {
				break
			}
			s.DelFromRunqueue(e.t)
			sched.ResetQueueState(e.t)
			out = append(out, e.t)
		}
	}
	return out
}

// DrainCPU implements sched.Scheduler. The per-last-run-CPU heaps are all
// globally visible — Schedule scans every heap top from any CPU — so tasks
// keyed to an offlined CPU's heap remain reachable and nothing is drained.
func (s *Sched) DrainCPU(cpu int, out []*task.Task) []*task.Task { return out }

// Schedule picks the best of the heap tops.
func (s *Sched) Schedule(cpu int, prev *task.Task) sched.Result {
	env := s.env
	res := sched.Result{Cycles: env.Cost.ScheduleBase}

	yielded := false
	if !prev.IsIdle {
		yielded = prev.Yielded
		prev.Yielded = false
		if prev.Policy == task.RR && prev.Counter(env.Epoch) == 0 {
			prev.SetCounter(env.Epoch, prev.Priority)
		}
		if prev.Runnable() && !s.OnRunqueue(prev) {
			s.AddToRunqueue(prev)
			res.Cycles += env.Cost.AddRunqueue + s.logCost()
		}
	}

	for attempt := 0; ; attempt++ {
		best := (*task.Task)(nil)
		bestG := -1
		allExhausted := s.total > 0
		sawBusy := false
		for h := range s.heaps {
			e, ok := s.heaps[h].peek()
			if !ok {
				continue
			}
			res.Examined++
			res.Cycles += env.Cost.Evaluate(env.NCPU)
			t := e.t
			if (t.HasCPU && t.Processor != cpu) || !t.AllowedOn(cpu) {
				// A top running elsewhere (or pinned elsewhere)
				// hides its heap's second element — a structural
				// blind spot of this design.
				sawBusy = true
				continue
			}
			g := sched.Goodness(env.Epoch, t, cpu, prev.MM)
			if g > 0 {
				allExhausted = false
			} else {
				continue // exhausted: not selectable until recalculation
			}
			if t == prev && yielded {
				continue // offer the yielder only as a last resort
			}
			if g > bestG {
				bestG = g
				best = t
			}
		}
		if best == nil && allExhausted && !sawBusy && attempt == 0 {
			// Every top is exhausted: recalculate and re-heapify.
			env.Epoch.Bump()
			res.Recalcs++
			res.Cycles += uint64(env.NTasks())*env.Cost.RecalcPerTask + s.reheapify()
			continue
		}
		if best == nil && yielded && prev.Runnable() && s.OnRunqueue(prev) {
			best = prev
		}
		if best != nil {
			s.DelFromRunqueue(best)
			res.Cycles += env.Cost.DelRunqueue + s.logCost()
			res.Next = best
		}
		return res
	}
}

// logCost approximates the O(log n) sift cost of one heap operation.
func (s *Sched) logCost() uint64 {
	cost := uint64(0)
	for n := s.total; n > 1; n >>= 1 {
		cost += 35
	}
	return cost
}

// reheapify rebuilds every heap after a recalculation changed all keys,
// returning its simulated cycle cost — the structural weakness of the
// heap design.
func (s *Sched) reheapify() uint64 {
	var cost uint64
	for h := range s.heaps {
		for i := range s.heaps[h].es {
			e := &s.heaps[h].es[i]
			e.key = key(s.env.Epoch, e.t)
			cost += 40
		}
		s.heaps[h].rebuild(h)
	}
	return cost
}

// entry is one heap element.
type entry struct {
	t   *task.Task
	key int
	seq uint64
}

// heap is a max-heap of entries ordered by (key desc, seq asc). The held
// task's QIndex stores its position, QStamp the heap id, and QZero marks
// membership.
type heap struct {
	es []entry
}

func (h *heap) less(i, j int) bool {
	if h.es[i].key != h.es[j].key {
		return h.es[i].key > h.es[j].key
	}
	return h.es[i].seq < h.es[j].seq
}

func (h *heap) swap(i, j int) {
	h.es[i], h.es[j] = h.es[j], h.es[i]
	h.es[i].t.QIndex = i
	h.es[j].t.QIndex = j
}

func (h *heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *heap) down(i int) {
	n := len(h.es)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *heap) push(e entry, id int) {
	e.t.QIndex = len(h.es)
	e.t.QStamp = uint64(id)
	e.t.QZero = true
	h.es = append(h.es, e)
	h.up(len(h.es) - 1)
}

func (h *heap) peek() (entry, bool) {
	if len(h.es) == 0 {
		return entry{}, false
	}
	return h.es[0], true
}

func (h *heap) removeAt(i int) {
	n := len(h.es) - 1
	if i < 0 || i > n {
		panic("heapsched: removeAt out of range")
	}
	h.swap(i, n)
	h.es[n].t.QIndex = -1
	h.es = h.es[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
}

func (h *heap) rebuild(id int) {
	for i := range h.es {
		h.es[i].t.QIndex = i
		h.es[i].t.QStamp = uint64(id)
	}
	for i := len(h.es)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}
