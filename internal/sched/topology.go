package sched

import "fmt"

// Topology describes the machine's cache-domain layout: CPUs grouped into
// domains that share a last-level cache (a socket, a NUMA node, or a
// chiplet — the model does not distinguish). A task dispatched inside its
// last domain refills from the shared cache at CacheRefillMax; a dispatch
// in a foreign domain must pull its working set across the interconnect
// and pays CrossDomainRefillMax instead. Domain-aware policies read the
// layout through Env.Topo to keep migrations inside a domain when they
// can, exactly as the 2.6 kernel's sched_domains hierarchy does.
//
// A Topology is immutable after construction and safe to share between
// machines.
type Topology struct {
	domainOf []int   // cpu -> domain index
	domains  [][]int // domain index -> member CPUs
}

// FlatTopology returns the degenerate layout: every CPU in one shared
// domain. It reproduces the pre-topology behavior — no dispatch is ever
// cross-domain — and is the default for machines that do not declare a
// layout.
func FlatTopology(ncpu int) *Topology {
	return UniformTopology(ncpu, 1)
}

// UniformTopology splits ncpu processors into ndomains contiguous blocks,
// as even as possible (the first ncpu%ndomains domains hold one extra
// CPU). A 32-CPU, 4-domain machine is therefore CPUs 0-7, 8-15, 16-23,
// 24-31 — the "4 sockets × 8 cores" shape of the scaled-up specs.
func UniformTopology(ncpu, ndomains int) *Topology {
	if ncpu < 1 {
		panic("sched: topology needs at least one CPU")
	}
	if ndomains < 1 || ndomains > ncpu {
		panic(fmt.Sprintf("sched: %d domains is invalid for %d CPUs", ndomains, ncpu))
	}
	t := &Topology{
		domainOf: make([]int, ncpu),
		domains:  make([][]int, ndomains),
	}
	base := ncpu / ndomains
	extra := ncpu % ndomains
	cpu := 0
	for d := 0; d < ndomains; d++ {
		size := base
		if d < extra {
			size++
		}
		for i := 0; i < size; i++ {
			t.domainOf[cpu] = d
			t.domains[d] = append(t.domains[d], cpu)
			cpu++
		}
	}
	return t
}

// NumCPU returns the processor count the topology covers.
func (t *Topology) NumCPU() int { return len(t.domainOf) }

// NumDomains returns the number of cache domains.
func (t *Topology) NumDomains() int { return len(t.domains) }

// DomainOf returns the domain holding cpu.
func (t *Topology) DomainOf(cpu int) int { return t.domainOf[cpu] }

// DomainCPUs returns the CPUs in domain d. The slice is shared; callers
// must not modify it.
func (t *Topology) DomainCPUs(d int) []int { return t.domains[d] }

// SameDomain reports whether CPUs a and b share a cache domain.
func (t *Topology) SameDomain(a, b int) bool { return t.domainOf[a] == t.domainOf[b] }

// String renders "32cpu/4dom" style labels for tables and traces.
func (t *Topology) String() string {
	return fmt.Sprintf("%dcpu/%ddom", t.NumCPU(), t.NumDomains())
}
