package mq

import (
	"testing"
	"testing/quick"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sim"
	"elsc/internal/task"
	"elsc/internal/workload/volano"
)

func newEnv(ncpu, ntasks int) *sched.Env {
	return sched.NewEnv(ncpu, ncpu > 1, func() int { return ntasks })
}

func mkTask(env *sched.Env, id, prio, counter int) *task.Task {
	t := task.New(id, "t", nil, env.Epoch)
	t.Priority = prio
	t.SetCounter(env.Epoch, counter)
	return t
}

func idlePrev() *task.Task {
	t := task.New(-1, "idle", nil, nil)
	t.IsIdle = true
	return t
}

func TestNewTasksBalanceAcrossQueues(t *testing.T) {
	env := newEnv(4, 8)
	s := New(env)
	for i := 0; i < 8; i++ {
		s.AddToRunqueue(mkTask(env, i, 20, 10))
	}
	for q := 0; q < 4; q++ {
		if s.QueueLen(q) != 2 {
			t.Fatalf("queue %d has %d tasks, want balanced 2", q, s.QueueLen(q))
		}
	}
}

func TestWokenTaskGoesHome(t *testing.T) {
	env := newEnv(2, 1)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	a.EverRan = true
	a.Processor = 1
	s.AddToRunqueue(a)
	if s.QueueLen(1) != 1 || s.QueueLen(0) != 0 {
		t.Fatal("woken task must be filed on its last CPU's queue")
	}
}

func TestLocalQueuePreferred(t *testing.T) {
	env := newEnv(2, 2)
	s := New(env)
	local := mkTask(env, 1, 20, 10)
	local.EverRan = true
	local.Processor = 0
	remote := mkTask(env, 2, 20, 40) // better goodness, wrong queue
	remote.EverRan = true
	remote.Processor = 1
	s.AddToRunqueue(local)
	s.AddToRunqueue(remote)
	res := s.Schedule(0, idlePrev())
	if res.Next != local {
		t.Fatalf("picked %v, want local %v (mq never scans remote queues while local work exists)", res.Next, local)
	}
}

func TestStealsWhenLocalEmpty(t *testing.T) {
	env := newEnv(2, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	a.EverRan = true
	a.Processor = 1
	b := mkTask(env, 2, 20, 5)
	b.EverRan = true
	b.Processor = 1
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)
	res := s.Schedule(0, idlePrev())
	if res.Next == nil {
		t.Fatal("CPU 0 should steal from CPU 1's queue")
	}
}

func TestExaminesOnlyLocalQueue(t *testing.T) {
	env := newEnv(4, 40)
	s := New(env)
	for i := 0; i < 40; i++ {
		tk := mkTask(env, i, 20, 10)
		tk.EverRan = true
		tk.Processor = i % 4
		s.AddToRunqueue(tk)
	}
	res := s.Schedule(0, idlePrev())
	if res.Examined > 10 {
		t.Fatalf("examined %d, want ~10 (one queue of 40/4)", res.Examined)
	}
}

func TestExhaustedLocalRecalculates(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 0)
	b := mkTask(env, 2, 10, 0)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)
	res := s.Schedule(0, idlePrev())
	if res.Recalcs != 1 {
		t.Fatalf("recalcs = %d, want 1", res.Recalcs)
	}
	if res.Next == nil {
		t.Fatal("must pick a task after recalculation")
	}
}

func TestPerCPUMarker(t *testing.T) {
	if !New(newEnv(2, 0)).PerCPU() {
		t.Fatal("mq must advertise per-CPU queues")
	}
}

func TestRunsFullWorkload(t *testing.T) {
	m := kernel.NewMachine(kernel.Config{
		CPUs: 4, SMP: true, Seed: 23,
		NewScheduler: func(env *sched.Env) sched.Scheduler { return New(env) },
		MaxCycles:    600 * kernel.DefaultHz,
	})
	b := volano.Build(m, volano.Config{Rooms: 2, UsersPerRoom: 4, MessagesPerUser: 4})
	res := b.Run()
	if res.Deliveries != b.ExpectedDeliveries() {
		t.Fatalf("deliveries %d != %d under mq scheduler", res.Deliveries, b.ExpectedDeliveries())
	}
	if m.Stats().SchedCalls == 0 {
		t.Fatal("no scheduling recorded")
	}
}

func TestYieldAlternatesWithinQueue(t *testing.T) {
	env := newEnv(1, 2)
	s := New(env)
	a := mkTask(env, 1, 20, 10)
	b := mkTask(env, 2, 20, 10)
	s.AddToRunqueue(a)
	s.AddToRunqueue(b)
	res := s.Schedule(0, idlePrev())
	first := res.Next
	first.HasCPU = true
	first.Processor = 0
	first.EverRan = true
	first.Yielded = true
	res2 := s.Schedule(0, first)
	if res2.Next == first {
		t.Fatal("yielded task must lose to its queue peer")
	}
}

// checkInvariants validates the per-queue counters against the lists.
func (s *Sched) checkInvariants(t *testing.T) {
	t.Helper()
	for q := range s.queues {
		if s.queues[q].Len() != s.counts[q] {
			t.Fatalf("queue %d: len %d, count %d", q, s.queues[q].Len(), s.counts[q])
		}
	}
}

func TestRandomOpsKeepCountsConsistent(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		rng := sim.NewRNG(seed)
		env := newEnv(1+rng.Intn(4), 16)
		s := New(env)
		pool := make([]*task.Task, 16)
		for i := range pool {
			pool[i] = mkTask(env, i, 1+rng.Intn(40), rng.Intn(41))
		}
		for _, op := range ops {
			tk := pool[int(op)%len(pool)]
			switch int(op) % 4 {
			case 0:
				if !tk.OnRunqueue() && !tk.HasCPU {
					s.AddToRunqueue(tk)
				}
			case 1:
				if tk.OnRunqueue() {
					s.DelFromRunqueue(tk)
				}
			case 2:
				if tk.OnRunqueue() {
					if op%2 == 0 {
						s.MoveFirstRunqueue(tk)
					} else {
						s.MoveLastRunqueue(tk)
					}
				}
			case 3:
				cpu := rng.Intn(env.NCPU)
				res := s.Schedule(cpu, idlePrev())
				if res.Next != nil {
					res.Next.HasCPU = true
					res.Next.Processor = cpu
					res.Next.EverRan = true
					// Immediately return it to keep churn going.
					res.Next.HasCPU = false
					s.AddToRunqueue(res.Next)
				}
			}
			total := 0
			for q := range s.queues {
				if s.queues[q].Len() != s.counts[q] {
					return false
				}
				total += s.counts[q]
			}
			if total != s.Runnable() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStealRebalancesLoad(t *testing.T) {
	env := newEnv(2, 8)
	s := New(env)
	// Pile all the work onto CPU 1's queue.
	for i := 0; i < 8; i++ {
		tk := mkTask(env, i, 20, 10)
		tk.EverRan = true
		tk.Processor = 1
		s.AddToRunqueue(tk)
	}
	s.checkInvariants(t)
	// CPU 0 steals repeatedly; each stolen task then homes to CPU 0.
	for i := 0; i < 4; i++ {
		res := s.Schedule(0, idlePrev())
		if res.Next == nil {
			t.Fatalf("steal %d failed with %d tasks queued", i, s.Runnable())
		}
		res.Next.HasCPU = true
		res.Next.Processor = 0
		res.Next.EverRan = true
		res.Next.HasCPU = false
		s.AddToRunqueue(res.Next)
		s.checkInvariants(t)
	}
	if s.QueueLen(0) == 0 {
		t.Fatal("stolen tasks should now home on CPU 0")
	}
}
