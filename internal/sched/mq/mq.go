// Package mq implements the second alternative design from the paper's
// future work (§8): "perhaps a multi-priority-queue solution would be more
// beneficial to help the scheduler scale to multiple processors well."
//
// Each processor owns a private run queue protected by its own lock (the
// kernel detects the PerCPU marker and splits the global run-queue lock),
// eliminating the cross-CPU contention that melts the stock scheduler at
// four processors. A woken task is filed on the queue of the CPU it last
// ran on; a CPU whose queue is empty steals the best task from the longest
// queue. This is the direction Linux ultimately took in the 2.5 O(1)
// scheduler and everything after it.
package mq

import (
	"elsc/internal/klist"
	"elsc/internal/sched"
	"elsc/internal/task"
)

// Config selects mq variants for ablation studies.
type Config struct {
	// RecalcOnLocalExhaustion restores the pre-fix behaviour that the
	// scenario fuzzer caught at seed 586: recalculate counters as soon as
	// the local queue holds only exhausted tasks, without first stealing
	// a remote task that still has quantum. Under it a never-run task can
	// starve forever behind freshly recharged affinity-bonused
	// neighbours. Kept so the watchdog tests can replay the bug.
	RecalcOnLocalExhaustion bool
}

// Sched is the per-CPU multi-queue scheduler. Create with New.
type Sched struct {
	env    *sched.Env
	cfg    Config
	queues []*klist.Head
	counts []int
}

// New returns a multi-queue scheduler bound to env.
func New(env *sched.Env) *Sched {
	return NewWithConfig(env, Config{})
}

// NewWithConfig returns a multi-queue scheduler with explicit variant
// selection.
func NewWithConfig(env *sched.Env, cfg Config) *Sched {
	s := &Sched{env: env, cfg: cfg}
	s.queues = make([]*klist.Head, env.NCPU)
	s.counts = make([]int, env.NCPU)
	for i := range s.queues {
		s.queues[i] = klist.NewHead()
	}
	return s
}

// Name implements sched.Scheduler.
func (s *Sched) Name() string { return "mq" }

// PerCPU marks the policy as using per-CPU run-queue locks.
func (s *Sched) PerCPU() bool { return true }

// homeOf picks the queue for t: its last CPU, or the least-loaded online
// queue for a task that has never run. Offline CPUs' queues are drained at
// hotplug and must stay empty, so they are never a home.
func (s *Sched) homeOf(t *task.Task) int {
	if last := t.Processor % len(s.queues); t.EverRan && t.AllowedOn(last) && s.env.CPUOnline(last) {
		return last
	}
	best := -1
	for i, c := range s.counts {
		if !t.AllowedOn(i) || !s.env.CPUOnline(i) {
			continue
		}
		if best < 0 || c < s.counts[best] {
			best = i
		}
	}
	if best < 0 {
		// Inconsistent mask (or it names only offline CPUs): fall back to
		// the first online queue rather than lose the task.
		for i := range s.counts {
			if s.env.CPUOnline(i) {
				return i
			}
		}
		best = 0
	}
	return best
}

// AddToRunqueue files t at the front of its home queue.
func (s *Sched) AddToRunqueue(t *task.Task) {
	if t.IsIdle {
		panic("mq: idle task on run queue")
	}
	if t.OnRunqueue() {
		return
	}
	t.SyncCounter(s.env.Epoch)
	home := s.homeOf(t)
	s.queues[home].PushFront(&t.RunList)
	s.counts[home]++
	t.QIndex = home
}

// DelFromRunqueue unlinks t from its queue.
func (s *Sched) DelFromRunqueue(t *task.Task) {
	if !t.OnRunqueue() {
		return
	}
	s.queues[t.QIndex].Remove(&t.RunList)
	s.counts[t.QIndex]--
}

// MoveFirstRunqueue moves t to its queue's front.
func (s *Sched) MoveFirstRunqueue(t *task.Task) {
	if t.OnRunqueue() {
		s.queues[t.QIndex].MoveFront(&t.RunList)
	}
}

// MoveLastRunqueue moves t to its queue's back.
func (s *Sched) MoveLastRunqueue(t *task.Task) {
	if t.OnRunqueue() {
		s.queues[t.QIndex].MoveBack(&t.RunList)
	}
}

// Runnable returns the number of queued tasks.
func (s *Sched) Runnable() int {
	n := 0
	for _, c := range s.counts {
		n += c
	}
	return n
}

// OnRunqueue reports whether t is filed in some queue.
func (s *Sched) OnRunqueue(t *task.Task) bool { return t.OnRunqueue() }

// QueueLen returns queue q's length, for tests.
func (s *Sched) QueueLen(q int) int { return s.counts[q] }

// ExportRunnable implements sched.Scheduler. Drain order is per-CPU queue
// 0..n-1, each front to back.
func (s *Sched) ExportRunnable() []*task.Task {
	out := make([]*task.Task, 0, s.Runnable())
	for q := range s.queues {
		for {
			n := s.queues[q].First()
			if n == nil {
				break
			}
			t := task.FromNode(n)
			s.DelFromRunqueue(t)
			sched.ResetQueueState(t)
			out = append(out, t)
		}
	}
	return out
}

// DrainCPU implements sched.Scheduler: empty the offlined CPU's private
// queue so its tasks can be re-filed on surviving queues.
func (s *Sched) DrainCPU(cpu int, out []*task.Task) []*task.Task {
	for {
		n := s.queues[cpu].First()
		if n == nil {
			break
		}
		t := task.FromNode(n)
		s.DelFromRunqueue(t)
		sched.ResetQueueState(t)
		out = append(out, t)
	}
	return out
}

// Schedule scans only this CPU's queue — O(n/ncpu) — and steals when it
// is empty.
func (s *Sched) Schedule(cpu int, prev *task.Task) sched.Result {
	env := s.env
	res := sched.Result{Cycles: env.Cost.ScheduleBase}

	yielded := false
	if !prev.IsIdle {
		yielded = prev.Yielded
		prev.Yielded = false
		if prev.Policy == task.RR && prev.Counter(env.Epoch) == 0 {
			prev.SetCounter(env.Epoch, prev.Priority)
		}
		if prev.Runnable() && !prev.OnRunqueue() {
			s.AddToRunqueue(prev)
			res.Cycles += env.Cost.AddRunqueue
		}
	}

	for attempt := 0; ; attempt++ {
		best, bestG, sawZero := s.scanQueue(cpu, cpu, prev, yielded, &res)
		if best == nil && s.counts[cpu] == 0 {
			// Empty local queue: steal from the longest queue.
			victim := -1
			for i, c := range s.counts {
				if i == cpu || c == 0 {
					continue
				}
				if victim < 0 || c > s.counts[victim] {
					victim = i
				}
			}
			if victim >= 0 {
				res.Cycles += env.Cost.LockOp // victim queue's lock
				best, bestG, _ = s.scanQueue(victim, cpu, prev, yielded, &res)
			}
		}
		if best == nil && sawZero && attempt == 0 {
			// The local queue holds only exhausted tasks. The stock
			// scheduler recalculates counters only when NO runnable task
			// in the system has quantum left; with private queues that
			// global condition must be checked explicitly. Recalculating
			// on local exhaustion alone recharges tasks on busy remote
			// queues too, and a never-run task — its counter capped at
			// the 2*prio-1 fixed point — loses to freshly recharged
			// affinity-bonused neighbours forever (scenario fuzzer,
			// seed 586). Steal the best remote task that still has
			// quantum; recalculate only if there is none anywhere.
			// (Config.RecalcOnLocalExhaustion skips the steal sweep to
			// replay the bug for the watchdog tests.)
			if !s.cfg.RecalcOnLocalExhaustion {
				for q := range s.queues {
					if q == cpu || s.counts[q] == 0 {
						continue
					}
					res.Cycles += env.Cost.LockOp // remote queue's lock
					b, g, _ := s.scanQueue(q, cpu, prev, yielded, &res)
					if b != nil && g > bestG {
						best, bestG = b, g
					}
				}
			}
			if best == nil {
				env.Epoch.Bump()
				res.Recalcs++
				res.Cycles += uint64(env.NTasks()) * env.Cost.RecalcPerTask
				continue
			}
		}
		if best == nil && yielded && prev.Runnable() && prev.OnRunqueue() {
			best = prev
		}
		if best != nil {
			s.DelFromRunqueue(best)
			res.Cycles += env.Cost.DelRunqueue
			res.Next = best
		}
		return res
	}
}

// scanQueue evaluates queue q's tasks for execution on cpu.
func (s *Sched) scanQueue(q, cpu int, prev *task.Task, yielded bool, res *sched.Result) (*task.Task, int, bool) {
	env := s.env
	var best *task.Task
	bestG := 0
	sawZero := false
	s.queues[q].ForEach(func(n *klist.Node) bool {
		t := task.FromNode(n)
		res.Examined++
		if (t.HasCPU && t.Processor != cpu) || !t.AllowedOn(cpu) {
			res.Cycles += env.Cost.Touch(env.NCPU)
			return true
		}
		if t == prev && yielded {
			res.Cycles += env.Cost.Touch(env.NCPU)
			return true
		}
		res.Cycles += env.Cost.Evaluate(env.NCPU)
		g := sched.Goodness(env.Epoch, t, cpu, prev.MM)
		if g == 0 {
			sawZero = true
			return true
		}
		if g > bestG {
			bestG = g
			best = t
		}
		return true
	})
	return best, bestG, sawZero
}
