package sched

import (
	"testing"
	"testing/quick"

	"elsc/internal/task"
)

func mkTask(id int, prio, counter int, ep *task.Epoch) *task.Task {
	t := task.New(id, "t", nil, ep)
	t.Priority = prio
	t.SetCounter(ep, counter)
	return t
}

func TestGoodnessZeroCounter(t *testing.T) {
	ep := &task.Epoch{}
	tk := mkTask(1, 20, 0, ep)
	if g := Goodness(ep, tk, 0, nil); g != 0 {
		t.Fatalf("goodness of exhausted task = %d, want 0", g)
	}
}

func TestGoodnessCounterPlusPriority(t *testing.T) {
	ep := &task.Epoch{}
	tk := mkTask(1, 20, 13, ep)
	if g := Goodness(ep, tk, 0, nil); g != 33 {
		t.Fatalf("goodness = %d, want counter+priority = 33", g)
	}
}

func TestGoodnessMMBonus(t *testing.T) {
	ep := &task.Epoch{}
	mm := &task.MM{ID: 1}
	tk := mkTask(1, 20, 10, ep)
	tk.MM = mm
	base := Goodness(ep, tk, 0, nil)
	with := Goodness(ep, tk, 0, mm)
	if with-base != MMBonus {
		t.Fatalf("mm bonus = %d, want %d", with-base, MMBonus)
	}
}

func TestGoodnessNilMMNoBonus(t *testing.T) {
	// Two kernel threads with nil MM must not get the shared-mm bonus.
	ep := &task.Epoch{}
	tk := mkTask(1, 20, 10, ep)
	if g := Goodness(ep, tk, 0, nil); g != 30 {
		t.Fatalf("goodness = %d, want 30 (no bonus for nil mm)", g)
	}
}

func TestGoodnessAffinityBonus(t *testing.T) {
	ep := &task.Epoch{}
	tk := mkTask(1, 20, 10, ep)
	tk.EverRan = true
	tk.Processor = 2
	onAffine := Goodness(ep, tk, 2, nil)
	onOther := Goodness(ep, tk, 1, nil)
	if onAffine-onOther != AffinityBonus {
		t.Fatalf("affinity bonus = %d, want %d", onAffine-onOther, AffinityBonus)
	}
}

func TestGoodnessNoAffinityBeforeFirstRun(t *testing.T) {
	ep := &task.Epoch{}
	tk := mkTask(1, 20, 10, ep)
	// Processor zero-value is 0; a never-run task must not look affine
	// to CPU 0.
	if g := Goodness(ep, tk, 0, nil); g != 30 {
		t.Fatalf("goodness = %d, want 30 (no affinity before first run)", g)
	}
}

func TestGoodnessRealTime(t *testing.T) {
	ep := &task.Epoch{}
	rt := task.NewRT(1, "rt", task.FIFO, 37, ep)
	if g := Goodness(ep, rt, 0, nil); g != RTBase+37 {
		t.Fatalf("rt goodness = %d, want %d", g, RTBase+37)
	}
}

func TestRTAlwaysBeatsRegular(t *testing.T) {
	// "Real time tasks are always run before regular tasks" — even a
	// zero rt_priority RT task outscores the best possible regular task.
	ep := &task.Epoch{}
	rt := task.NewRT(1, "rt", task.RR, 0, ep)
	best := mkTask(2, task.MaxPriority, 2*task.MaxPriority, ep)
	best.MM = &task.MM{}
	best.EverRan = true
	best.Processor = 0
	if Goodness(ep, rt, 0, best.MM) <= Goodness(ep, best, 0, best.MM) {
		t.Fatal("an RT task must always outscore a SCHED_OTHER task")
	}
}

func TestGoodnessBoundsQuick(t *testing.T) {
	// For SCHED_OTHER: 0 <= goodness <= 2*prio + prio + 16.
	f := func(prio8, counter8 uint8, mmMatch, affine bool) bool {
		prio := int(prio8%task.MaxPriority) + 1
		ep := &task.Epoch{}
		tk := mkTask(1, prio, int(counter8)%(2*prio+1), ep)
		var prevMM *task.MM
		if mmMatch {
			tk.MM = &task.MM{ID: 9}
			prevMM = tk.MM
		}
		if affine {
			tk.EverRan = true
			tk.Processor = 3
		}
		g := Goodness(ep, tk, 3, prevMM)
		if tk.Counter(ep) == 0 {
			return g == 0
		}
		return g >= 1 && g <= 3*prio+AffinityBonus+MMBonus
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGoodnessMonotoneInCounter(t *testing.T) {
	f := func(prio8, c8 uint8) bool {
		prio := int(prio8%task.MaxPriority) + 1
		c := int(c8) % (2 * prio)
		ep := &task.Epoch{}
		a := mkTask(1, prio, c, ep)
		b := mkTask(2, prio, c+1, ep)
		return Goodness(ep, b, 0, nil) > Goodness(ep, a, 0, nil) || c == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	c := DefaultCostModel()
	if c.ScheduleBase == 0 || c.ExamineCost == 0 || c.GoodnessCost == 0 {
		t.Fatal("cost model has zero hot-path costs")
	}
	if c.ExamineTotal() != c.ExamineCost+c.GoodnessCost {
		t.Fatal("ExamineTotal mismatch")
	}
	if c.MMSwitch <= c.ContextSwitch/2 {
		t.Fatal("mm switch should be a significant cost")
	}
}

func TestNewEnv(t *testing.T) {
	env := NewEnv(4, true, nil)
	if env.NCPU != 4 || !env.SMP {
		t.Fatal("env topology wrong")
	}
	if env.Epoch == nil {
		t.Fatal("env must have an epoch")
	}
	if env.NTasks() != 0 {
		t.Fatal("nil ntasks should default to zero")
	}
	env2 := NewEnv(1, false, func() int { return 42 })
	if env2.NTasks() != 42 {
		t.Fatal("ntasks not wired")
	}
}
