package conformance

// Hot policy switching conformance: every ordered pair of registered
// policies is driven into a messy mid-run state (running tasks, blocked
// tasks, real-time tasks, pinned tasks, expired/zero-section residents)
// and then swapped, emulating kernel.Machine.SwitchPolicy's exact
// handoff sequence. The invariants are the ones the fuzzer checks on
// whole machines, isolated to the policy layer so a failure names the
// policy pair directly:
//
//   - the queued-task multiset is preserved across the swap — no task
//     lost, none duplicated;
//   - the predecessor is empty afterwards;
//   - blocked tasks whose scheduler-private state was normalized still
//     integrate when they wake under the successor;
//   - every surviving task is eventually scheduled by the successor.

import (
	"fmt"
	"testing"

	"elsc/internal/experiments"
	"elsc/internal/sched"
	"elsc/internal/task"
)

// swapSpec is one machine shape the pair matrix runs on.
type swapSpec struct {
	label   string
	ncpu    int
	domains int // 0 = flat
}

var swapSpecs = []swapSpec{
	{label: "8P", ncpu: 8},
	{label: "32P-NUMA", ncpu: 32, domains: 4},
}

// kernelSwap performs the policy-layer half of Machine.SwitchPolicy: it
// detaches the running tasks from old, drains it, normalizes every live
// task, imports into a fresh successor, and hands running tasks back to a
// NoteRunning successor. It returns the exported set in drain order.
func kernelSwap(t *testing.T, h *harness, succ sched.Scheduler, blocked []*task.Task) []*task.Task {
	t.Helper()
	old := h.s
	var running []*task.Task
	for _, cur := range h.current {
		if cur != nil {
			running = append(running, cur)
		}
	}
	for _, tk := range running {
		old.DelFromRunqueue(tk)
	}
	want := old.Runnable()
	exported := old.ExportRunnable()
	if len(exported) != want {
		t.Fatalf("%s exported %d tasks, Runnable said %d", old.Name(), len(exported), want)
	}
	if old.Runnable() != 0 {
		t.Fatalf("%s still reports %d runnable after export", old.Name(), old.Runnable())
	}
	for _, tk := range exported {
		if old.OnRunqueue(tk) && !tk.HasCPU {
			t.Fatalf("%s still tracks exported task %v", old.Name(), tk)
		}
	}
	for _, tk := range running {
		sched.ResetQueueState(tk)
	}
	for _, tk := range blocked {
		sched.ResetQueueState(tk)
	}
	for _, tk := range exported {
		succ.AddToRunqueue(tk)
	}
	if _, ok := succ.(runningNoter); ok {
		for _, tk := range running {
			succ.AddToRunqueue(tk)
		}
	}
	if got := succ.Runnable(); got != len(exported) {
		t.Fatalf("%s imported %d runnable, want %d", succ.Name(), got, len(exported))
	}
	for _, tk := range exported {
		if !succ.OnRunqueue(tk) {
			t.Fatalf("%s dropped imported task %v", succ.Name(), tk)
		}
	}
	h.s = succ
	return exported
}

// churn drives the harness for rounds schedule() calls per CPU with a
// deterministic block/yield/wake pattern, returning the currently blocked
// tasks. Tasks end up spread across every internal structure a policy
// has: per-CPU queues, expired arrays, the zero section, heaps.
func churn(h *harness, ncpu, rounds int, blocked *[]*task.Task) {
	step := 0
	for r := 0; r < rounds; r++ {
		for cpu := 0; cpu < ncpu; cpu++ {
			step++
			next := h.schedule(cpu)
			if next == nil {
				continue
			}
			switch step % 5 {
			case 0:
				h.block(cpu)
				*blocked = append(*blocked, next)
			case 2:
				next.Yielded = true
			case 3:
				// Burn quantum so recalc/expiry paths trigger.
				next.DrainRun(1)
			}
			// Wake one blocked task every few steps.
			if step%7 == 0 && len(*blocked) > 0 {
				wake := (*blocked)[0]
				*blocked = (*blocked)[1:]
				wake.State = task.Running
				h.s.AddToRunqueue(wake)
			}
		}
	}
}

// TestBlockedUnderCFSWakesCleanAfterSwap is the stale-tag audit for the
// vruntime policy (the heapsched silent-drop class from the policy-switch
// work): a task that blocks under cfs keeps a heap-index QStamp and a
// home-CPU QIndex that mean nothing to any successor, plus a VRuntime
// denominated in its old queue's virtual clock. The swap path must
// normalize the queue tags (sched.ResetQueueState) so the wake under
// every successor — including cfs itself, whose placement clamp bounds
// the stale virtual clock — files and eventually schedules the task.
func TestBlockedUnderCFSWakesCleanAfterSwap(t *testing.T) {
	for _, to := range experiments.Policies {
		to := to
		t.Run("cfs-to-"+to, func(t *testing.T) {
			t.Parallel()
			const ncpu = 8
			n := 3 * ncpu
			env := sched.NewEnv(ncpu, true, func() int { return n })
			s := experiments.Factory("cfs")(env)

			tasks := make([]*task.Task, 0, n)
			for i := 0; i < n; i++ {
				tk := mkTask(env, i+1, 1+(i*3)%40, 2+i%12)
				tasks = append(tasks, tk)
				s.AddToRunqueue(tk)
			}

			// Churn so queued tasks acquire nonzero heap positions and
			// advanced vruntimes, then block whatever is running.
			h := newHarness(s, ncpu)
			var blocked []*task.Task
			churn(h, ncpu, 6, &blocked)
			for cpu := 0; cpu < ncpu; cpu++ {
				if h.current[cpu] != nil {
					tk := h.current[cpu]
					h.block(cpu)
					h.schedule(cpu) // retire the blocked task from current
					blocked = append(blocked, tk)
				}
			}
			// A task blocked in churn's last round can still be current
			// when the loop above re-blocks it — dedupe before waking,
			// or the second wake sees the first wake's successor tags.
			seen := map[*task.Task]bool{}
			uniq := blocked[:0]
			for _, tk := range blocked {
				if !seen[tk] {
					seen[tk] = true
					uniq = append(uniq, tk)
				}
			}
			blocked = uniq
			if len(blocked) == 0 {
				t.Fatal("churn left no blocked tasks to audit")
			}

			succ := experiments.Factory(to)(env)
			kernelSwap(t, h, succ, blocked)

			for _, tk := range blocked {
				if tk.QIndex != 0 || tk.QZero || tk.QStamp != 0 {
					t.Fatalf("blocked task %v carries stale queue tags across the swap: QIndex=%d QZero=%v QStamp=%d",
						tk, tk.QIndex, tk.QZero, tk.QStamp)
				}
				tk.State = task.Running
				succ.AddToRunqueue(tk)
				if !succ.OnRunqueue(tk) {
					t.Fatalf("%s dropped task %v woken from a cfs-era block", to, tk)
				}
			}

			// Every woken task must actually be schedulable under the
			// successor, not just counted.
			picked := map[*task.Task]bool{}
			blockedLeft := func() bool {
				for _, tk := range blocked {
					if !picked[tk] {
						return true
					}
				}
				return false
			}
			for left := 0; left < 20*n && blockedLeft(); left++ {
				for cpu := 0; cpu < ncpu; cpu++ {
					if next := h.schedule(cpu); next != nil {
						picked[next] = true
						h.block(cpu)
						h.schedule(cpu)
					}
				}
				for _, tk := range tasks {
					if !tk.Runnable() && !picked[tk] {
						tk.State = task.Running
						succ.AddToRunqueue(tk)
					}
				}
			}
			for _, tk := range blocked {
				if !picked[tk] {
					t.Fatalf("task %v woken after cfs swap never scheduled by %s", tk, to)
				}
			}
		})
	}
}

func TestSwapPreservesQueuedMultisetAllPairs(t *testing.T) {
	for _, spec := range swapSpecs {
		for _, from := range experiments.Policies {
			for _, to := range experiments.Policies {
				spec, from, to := spec, from, to
				t.Run(fmt.Sprintf("%s/%s-to-%s", spec.label, from, to), func(t *testing.T) {
					t.Parallel()
					n := 3 * spec.ncpu
					env := sched.NewEnv(spec.ncpu, true, func() int { return n })
					if spec.domains > 1 {
						env.Topo = sched.UniformTopology(spec.ncpu, spec.domains)
					}
					s := experiments.Factory(from)(env)

					tasks := make([]*task.Task, 0, n)
					for i := 0; i < n; i++ {
						var tk *task.Task
						switch {
						case i%11 == 10:
							tk = task.NewRT(i+1, fmt.Sprintf("rt%d", i), task.FIFO, 1+i%99, env.Epoch)
						default:
							tk = mkTask(env, i+1, 1+(i*3)%40, 2+i%12)
						}
						if i%7 == 6 {
							tk.CPUsAllowed = 1 << uint(i%spec.ncpu)
						}
						tasks = append(tasks, tk)
						s.AddToRunqueue(tk)
					}

					h := newHarness(s, spec.ncpu)
					var blocked []*task.Task
					churn(h, spec.ncpu, 6, &blocked)

					// What the kernel would consider queued right now:
					// runnable, tracked, and not holding a CPU.
					expected := map[*task.Task]bool{}
					for _, tk := range tasks {
						if tk.Runnable() && !tk.HasCPU && s.OnRunqueue(tk) {
							expected[tk] = true
						}
					}

					succ := experiments.Factory(to)(env)
					exported := kernelSwap(t, h, succ, blocked)

					seen := map[*task.Task]bool{}
					for _, tk := range exported {
						if seen[tk] {
							t.Fatalf("task %v exported twice", tk)
						}
						seen[tk] = true
						if !expected[tk] {
							t.Fatalf("task %v exported but was not queued", tk)
						}
					}
					if len(seen) != len(expected) {
						t.Fatalf("exported %d tasks, %d were queued", len(seen), len(expected))
					}

					// Wake everything that was blocked: normalized state
					// must integrate cleanly into the successor.
					for _, tk := range blocked {
						tk.State = task.Running
						succ.AddToRunqueue(tk)
						if !succ.OnRunqueue(tk) {
							t.Fatalf("%s dropped woken task %v after swap", to, tk)
						}
					}

					// The successor must eventually schedule every task.
					picked := map[*task.Task]bool{}
					for _, cur := range h.current {
						if cur != nil {
							picked[cur] = true
						}
					}
					for left := 0; left < 20*n && len(picked) < len(tasks); left++ {
						for cpu := 0; cpu < spec.ncpu; cpu++ {
							if next := h.schedule(cpu); next != nil {
								picked[next] = true
								h.block(cpu)
								h.schedule(cpu)
							}
						}
						// Re-wake what we just blocked so nothing is starved
						// out of the census.
						for _, tk := range tasks {
							if !tk.Runnable() && !picked[tk] {
								tk.State = task.Running
								succ.AddToRunqueue(tk)
							}
						}
					}
					for i, tk := range tasks {
						if !picked[tk] {
							t.Fatalf("task %d never scheduled by %s after swap", i, to)
						}
					}
				})
			}
		}
	}
}
