// Package conformance holds the cross-scheduler invariant suite: every
// scheduling policy in the repository — the stock 2.3.99 scheduler, ELSC,
// and the three future-work designs (heap, mq, o1) — is run table-driven
// through the same sched.Scheduler contract checks. The paper's design
// goal 1 ("Do not change current interfaces") is what makes the policies
// drop-in replacements; this suite is what keeps them that way as the
// lineup grows.
//
// The suite emulates the kernel's calling conventions exactly: Schedule
// is invoked with the previous task still marked HasCPU, the HasCPU flip
// happens after Schedule returns, and policies implementing NoteRunning
// (the stock scheduler keeps running tasks on the queue) are notified of
// the flips, as kernel.reschedule does.
package conformance

import (
	"fmt"
	"testing"

	"elsc/internal/experiments"
	"elsc/internal/sched"
	"elsc/internal/task"
	"elsc/internal/workload"
	"elsc/internal/workload/volano"
)

// forEach runs fn once per registered policy as a subtest. The policy
// list and factories come from the experiments registry, so a scheduler
// added there is automatically held to this contract.
func forEach(t *testing.T, ncpu int, ntasks int, fn func(t *testing.T, s sched.Scheduler, env *sched.Env)) {
	t.Helper()
	for _, name := range experiments.Policies {
		name := name
		t.Run(name, func(t *testing.T) {
			env := sched.NewEnv(ncpu, ncpu > 1, func() int { return ntasks })
			fn(t, experiments.Factory(name)(env), env)
		})
	}
}

func mkTask(env *sched.Env, id, prio, counter int) *task.Task {
	t := task.New(id, fmt.Sprintf("t%d", id), nil, env.Epoch)
	t.Priority = prio
	t.SetCounter(env.Epoch, counter)
	return t
}

func mkIdle(cpu int) *task.Task {
	t := task.New(-(cpu + 1), fmt.Sprintf("idle/%d", cpu), nil, nil)
	t.IsIdle = true
	t.Processor = cpu
	return t
}

// runningNoter mirrors the kernel's interface for policies that keep
// running tasks on the run queue.
type runningNoter interface {
	NoteRunning(t *task.Task, running bool)
}

// harness drives one scheduler exactly as kernel.reschedule does,
// tracking which task each CPU is running.
type harness struct {
	s       sched.Scheduler
	idles   []*task.Task
	current []*task.Task
}

func newHarness(s sched.Scheduler, ncpu int) *harness {
	h := &harness{s: s, idles: make([]*task.Task, ncpu), current: make([]*task.Task, ncpu)}
	for i := range h.idles {
		h.idles[i] = mkIdle(i)
	}
	return h
}

// schedule performs one kernel-faithful schedule() on cpu and returns the
// chosen task (nil for idle).
func (h *harness) schedule(cpu int) *task.Task {
	prev := h.current[cpu]
	prevTask := h.idles[cpu]
	if prev != nil {
		prevTask = prev
	}
	h.current[cpu] = nil
	res := h.s.Schedule(cpu, prevTask)
	noter, _ := h.s.(runningNoter)
	if prev != nil {
		if noter != nil && prev.OnRunqueue() {
			noter.NoteRunning(prev, false)
		}
		prev.HasCPU = false
	}
	if next := res.Next; next != nil {
		next.HasCPU = true
		next.Processor = cpu
		next.EverRan = true
		if noter != nil && next.OnRunqueue() {
			noter.NoteRunning(next, true)
		}
		h.current[cpu] = next
	}
	return res.Next
}

// block marks cpu's current task no longer runnable; the next schedule()
// on that CPU dequeues it, as the kernel does inside schedule().
func (h *harness) block(cpu int) {
	if h.current[cpu] != nil {
		h.current[cpu].State = task.Interruptible
	}
}

func TestAddDelNoLossNoDuplication(t *testing.T) {
	const n = 12
	forEach(t, 1, n, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		tasks := make([]*task.Task, n)
		for i := range tasks {
			tasks[i] = mkTask(env, i+1, 1+(i*3)%40, 5+i)
			s.AddToRunqueue(tasks[i])
			if !s.OnRunqueue(tasks[i]) {
				t.Fatalf("task %d not on run queue after add", i)
			}
		}
		if got := s.Runnable(); got != n {
			t.Fatalf("Runnable = %d after %d adds, want %d", got, n, n)
		}
		// Double add must be idempotent — a task can never be queued twice.
		for _, tk := range tasks {
			s.AddToRunqueue(tk)
		}
		if got := s.Runnable(); got != n {
			t.Fatalf("Runnable = %d after double adds, want %d", got, n)
		}
		// Delete half, re-add, delete all: nothing lost, nothing left.
		for i := 0; i < n; i += 2 {
			s.DelFromRunqueue(tasks[i])
			if s.OnRunqueue(tasks[i]) {
				t.Fatalf("task %d still on run queue after del", i)
			}
		}
		if got := s.Runnable(); got != n/2 {
			t.Fatalf("Runnable = %d after deleting half, want %d", got, n/2)
		}
		for i := 0; i < n; i += 2 {
			s.AddToRunqueue(tasks[i])
		}
		for _, tk := range tasks {
			s.DelFromRunqueue(tk)
			s.DelFromRunqueue(tk) // double delete must be a no-op
		}
		if got := s.Runnable(); got != 0 {
			t.Fatalf("Runnable = %d after deleting all, want 0", got)
		}
	})
}

func TestEveryTaskScheduledExactlyOnce(t *testing.T) {
	const n = 16
	forEach(t, 1, n, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		tasks := make([]*task.Task, n)
		for i := range tasks {
			tasks[i] = mkTask(env, i+1, 1+(i*7)%40, 4+i%10)
			s.AddToRunqueue(tasks[i])
		}
		h := newHarness(s, 1)
		picked := map[*task.Task]int{}
		for i := 0; i <= n; i++ {
			next := h.schedule(0)
			if next == nil {
				break
			}
			picked[next]++
			h.block(0) // task runs once, then blocks
		}
		for i, tk := range tasks {
			if picked[tk] != 1 {
				t.Fatalf("task %d scheduled %d times, want exactly once", i, picked[tk])
			}
		}
		if len(picked) != n {
			t.Fatalf("%d distinct tasks scheduled, want %d", len(picked), n)
		}
	})
}

func TestBlockedTaskLeavesQueue(t *testing.T) {
	forEach(t, 1, 2, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		a := mkTask(env, 1, 20, 10)
		b := mkTask(env, 2, 20, 10)
		s.AddToRunqueue(a)
		s.AddToRunqueue(b)
		h := newHarness(s, 1)
		first := h.schedule(0)
		if first == nil {
			t.Fatal("nothing scheduled")
		}
		h.block(0)
		second := h.schedule(0)
		if second == first || second == nil {
			t.Fatalf("after blocking, picked %v", second)
		}
		if s.OnRunqueue(first) {
			t.Fatal("blocked task still on the run queue")
		}
	})
}

func TestAffinityMaskRespected(t *testing.T) {
	forEach(t, 2, 4, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		pinned := make([]*task.Task, 4)
		for i := range pinned {
			pinned[i] = mkTask(env, i+1, 20, 10)
			pinned[i].CPUsAllowed = 1 << 1 // CPU 1 only
			s.AddToRunqueue(pinned[i])
		}
		h := newHarness(s, 2)
		if got := h.schedule(0); got != nil {
			t.Fatalf("CPU 0 scheduled %v despite every task being pinned to CPU 1", got)
		}
		if got := h.schedule(1); got == nil {
			t.Fatal("CPU 1 found nothing although four tasks are pinned to it")
		}
	})
}

func TestAffinitySplitAcrossCPUs(t *testing.T) {
	forEach(t, 2, 2, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		a := mkTask(env, 1, 20, 10)
		a.CPUsAllowed = 1 << 0
		b := mkTask(env, 2, 20, 10)
		b.CPUsAllowed = 1 << 1
		s.AddToRunqueue(a)
		s.AddToRunqueue(b)
		h := newHarness(s, 2)
		if got := h.schedule(0); got != a {
			t.Fatalf("CPU 0 ran %v, want its pinned task", got)
		}
		if got := h.schedule(1); got != b {
			t.Fatalf("CPU 1 ran %v, want its pinned task", got)
		}
	})
}

func TestRealTimeAlwaysBeatsTimesharing(t *testing.T) {
	forEach(t, 1, 2, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		// The best possible SCHED_OTHER task: max priority, full quantum,
		// cache-affine to the scheduling CPU.
		best := mkTask(env, 1, task.MaxPriority, 2*task.MaxPriority)
		best.EverRan = true
		best.Processor = 0
		// The weakest possible real-time task.
		rt := task.NewRT(2, "rt", task.FIFO, task.MinRTPriority, env.Epoch)
		s.AddToRunqueue(best)
		s.AddToRunqueue(rt)
		h := newHarness(s, 1)
		if got := h.schedule(0); got != rt {
			t.Fatalf("scheduled %v, want the real-time task first", got)
		}
	})
}

func TestHigherRTPriorityWins(t *testing.T) {
	forEach(t, 1, 2, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		lo := task.NewRT(1, "rt10", task.FIFO, 10, env.Epoch)
		hi := task.NewRT(2, "rt90", task.FIFO, 90, env.Epoch)
		s.AddToRunqueue(lo)
		s.AddToRunqueue(hi)
		h := newHarness(s, 1)
		if got := h.schedule(0); got != hi {
			t.Fatalf("scheduled %v, want rt_priority 90 before 10", got)
		}
	})
}

func TestMoveFirstWinsTie(t *testing.T) {
	forEach(t, 1, 2, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		a := mkTask(env, 1, 20, 10)
		b := mkTask(env, 2, 20, 10)
		s.AddToRunqueue(a)
		s.AddToRunqueue(b) // added last: b currently leads the tie
		s.MoveFirstRunqueue(a)
		h := newHarness(s, 1)
		if got := h.schedule(0); got != a {
			t.Fatalf("scheduled %v, want the MoveFirst task to win the tie", got)
		}
	})
}

func TestMoveLastLosesTie(t *testing.T) {
	forEach(t, 1, 2, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		a := mkTask(env, 1, 20, 10)
		b := mkTask(env, 2, 20, 10)
		s.AddToRunqueue(a)
		s.AddToRunqueue(b) // b leads the tie...
		s.MoveLastRunqueue(b)
		h := newHarness(s, 1)
		if got := h.schedule(0); got != a {
			t.Fatalf("scheduled %v, want the MoveLast task to lose the tie", got)
		}
	})
}

func TestMoveOnUnqueuedTaskIsNoop(t *testing.T) {
	forEach(t, 1, 1, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		a := mkTask(env, 1, 20, 10)
		s.MoveFirstRunqueue(a)
		s.MoveLastRunqueue(a)
		if s.Runnable() != 0 || s.OnRunqueue(a) {
			t.Fatal("move on an unqueued task must not enqueue it")
		}
	})
}

func TestYieldBitConsumed(t *testing.T) {
	forEach(t, 1, 2, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		a := mkTask(env, 1, 20, 10)
		b := mkTask(env, 2, 20, 10)
		s.AddToRunqueue(a)
		s.AddToRunqueue(b)
		h := newHarness(s, 1)
		first := h.schedule(0)
		if first == nil {
			t.Fatal("nothing scheduled")
		}
		first.Yielded = true
		next := h.schedule(0)
		if first.Yielded {
			t.Fatal("schedule() must consume the SCHED_YIELD bit")
		}
		if next != a && next != b {
			t.Fatalf("scheduled %v after yield, want a runnable task", next)
		}
		// Neither task may be lost across the yield.
		queued := 0
		for _, tk := range []*task.Task{a, b} {
			if s.OnRunqueue(tk) || tk == next {
				queued++
			}
		}
		if queued != 2 {
			t.Fatalf("%d of 2 tasks tracked after yield, want both", queued)
		}
	})
}

func TestLoneYielderIsRerun(t *testing.T) {
	forEach(t, 1, 1, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		a := mkTask(env, 1, 20, 10)
		s.AddToRunqueue(a)
		h := newHarness(s, 1)
		if got := h.schedule(0); got != a {
			t.Fatal("lone task not scheduled")
		}
		a.Yielded = true
		if got := h.schedule(0); got != a {
			t.Fatalf("lone yielding task must be re-run, got %v", got)
		}
	})
}

func TestEmptyQueueSchedulesIdle(t *testing.T) {
	forEach(t, 1, 0, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		h := newHarness(s, 1)
		if got := h.schedule(0); got != nil {
			t.Fatalf("empty queue scheduled %v, want idle", got)
		}
		if s.Runnable() != 0 {
			t.Fatal("Runnable nonzero on an empty scheduler")
		}
	})
}

// TestMultiCPUNoDoubleRun drives two CPUs over a shared task set and
// checks a task is never running on both at once and none disappears.
func TestMultiCPUNoDoubleRun(t *testing.T) {
	const n = 8
	forEach(t, 2, n, func(t *testing.T, s sched.Scheduler, env *sched.Env) {
		tasks := make([]*task.Task, n)
		for i := range tasks {
			tasks[i] = mkTask(env, i+1, 20, 10)
			s.AddToRunqueue(tasks[i])
		}
		h := newHarness(s, 2)
		for round := 0; round < 50; round++ {
			for cpu := 0; cpu < 2; cpu++ {
				h.schedule(cpu)
				if h.current[0] != nil && h.current[0] == h.current[1] {
					t.Fatalf("round %d: task %v running on both CPUs", round, h.current[0])
				}
			}
			// Account for every task: queued or running, never both,
			// never neither.
			for i, tk := range tasks {
				queued := s.OnRunqueue(tk) && !tk.HasCPU
				running := tk.HasCPU
				if !queued && !running {
					// ELSC's manual dequeue keeps OnRunqueue true for
					// the running task; for all policies a task must be
					// somewhere.
					t.Fatalf("round %d: task %d neither queued nor running", round, i)
				}
			}
		}
	})
}

// TestNUMATopologyHarnessContract drives every policy through the harness
// on each cache-domain machine — the 32-CPU/4-domain spec and the
// 64-CPU/8-domain spec that stresses the two-level balancing hierarchy:
// the topology must change where work lands, never whether it lands.
// Every task is scheduled exactly once and none is lost, exactly as on
// the flat machines above.
func TestNUMATopologyHarnessContract(t *testing.T) {
	for _, spec := range experiments.NUMASpecs {
		ncpu, ndom := spec.CPUs, spec.Domains
		n := 2 * ncpu
		for _, name := range experiments.Policies {
			name := name
			t.Run(fmt.Sprintf("%s/%s", spec.Label, name), func(t *testing.T) {
				env := sched.NewEnv(ncpu, true, func() int { return n })
				env.Topo = sched.UniformTopology(ncpu, ndom)
				s := experiments.Factory(name)(env)
				tasks := make([]*task.Task, n)
				for i := range tasks {
					tasks[i] = mkTask(env, i+1, 1+(i*5)%40, 4+i%12)
					s.AddToRunqueue(tasks[i])
				}
				h := newHarness(s, ncpu)
				picked := map[*task.Task]int{}
				for left := n; left > 0; {
					progressed := false
					for cpu := 0; cpu < ncpu && left > 0; cpu++ {
						next := h.schedule(cpu)
						if next == nil {
							continue
						}
						progressed = true
						picked[next]++
						h.block(cpu)
						h.schedule(cpu) // dequeue the blocked task
						left--
					}
					if !progressed {
						t.Fatalf("no CPU could schedule with %d tasks outstanding", left)
					}
				}
				for i, tk := range tasks {
					if picked[tk] != 1 {
						t.Fatalf("task %d scheduled %d times, want exactly once", i, picked[tk])
					}
				}
			})
		}
	}
}

// TestNUMAMachineSpecAllPolicies runs a short VolanoMark on each NUMA
// machine spec (32P/4-domain and 64P/8-domain) for every registered
// policy: messages must flow and no room may starve on the domained
// machine, the same bar the flat smoke test sets. This is what keeps a
// future policy honest about topology.
func TestNUMAMachineSpecAllPolicies(t *testing.T) {
	const (
		rooms    = 2
		users    = 4
		messages = 2
	)
	want := uint64(rooms * users * users * messages)
	for _, spec := range experiments.NUMASpecs {
		for _, name := range experiments.Policies {
			spec, name := spec, name
			t.Run(fmt.Sprintf("%s/%s", spec.Label, name), func(t *testing.T) {
				t.Parallel()
				sc := experiments.Scale{Messages: messages, Seed: 5, HorizonSeconds: 600, TicklessOff: ticklessOff()}
				m := experiments.NewMachine(spec, name, sc)
				res := volano.Build(m, volano.Config{
					Rooms: rooms, UsersPerRoom: users, MessagesPerUser: messages,
				}).Run()
				if res.Deliveries != want {
					t.Fatalf("deliveries = %d, want %d (a room starved on the NUMA spec)",
						res.Deliveries, want)
				}
				if res.Throughput <= 0 {
					t.Fatalf("throughput = %v, want > 0", res.Throughput)
				}
				if n := m.Stats().IdleTickRescues; n != 0 {
					t.Fatalf("idle_tick_rescues = %d, want 0: a queued task sat on an idle CPU with no kick in flight", n)
				}
			})
		}
	}
}

// TestNUMAMachineSpecRegistryWorkloads runs the two new registry
// workloads (db, wakestorm) on the 64P/8-domain spec under every policy:
// the deepest hierarchy must not lose a transaction or a wake-up.
func TestNUMAMachineSpecRegistryWorkloads(t *testing.T) {
	spec := experiments.SpecByLabel("64P-NUMA")
	sc := experiments.Scale{Messages: 2, Seed: 5, HorizonSeconds: 600, Quick: true, TicklessOff: ticklessOff()}
	for _, load := range []string{workload.DB, workload.WakeStorm} {
		for _, name := range experiments.Policies {
			load, name := load, name
			t.Run(fmt.Sprintf("%s/%s", load, name), func(t *testing.T) {
				t.Parallel()
				r := experiments.RunWorkloadCell(spec, name, load, sc)
				if !r.Result.Complete {
					t.Fatalf("%s did not complete on the 64P/8-domain machine", r.Key())
				}
				if r.Result.Ops == 0 {
					t.Fatalf("%s performed no operations", r.Key())
				}
				if n := r.Stats.IdleTickRescues; n != 0 {
					t.Fatalf("%s: idle_tick_rescues = %d, want 0: a queued task sat on an idle CPU with no kick in flight", r.Key(), n)
				}
			})
		}
	}
}
