package conformance

// CPU hotplug conformance: every registered policy, on both the flat 8P
// and the 32P-NUMA machine, survives a staggered offline→online cycle of
// three CPUs while an oversubscribed mixed workload runs. This is the
// machine-level counterpart of the policy-layer swap matrix: the machine
// (not a harness emulation) performs the preempt/drain/re-route
// sequence, and the invariants are observable end to end:
//
//   - the task multiset is conserved at every transition
//     (experiments.AuditCensus at the injection points);
//   - no task is ever dispatched onto an offline CPU (a Trace hook sees
//     every schedule() decision);
//   - each cycled CPU dispatches work again after it returns;
//   - the workload completes, and the armed watchdog stays silent;
//   - a task pinned solely to a dying CPU widens per cpuset-fallback
//     semantics, makes progress while its CPU is down, and finishes on
//     its own CPU after the re-pin.

import (
	"fmt"
	"testing"

	"elsc/internal/experiments"
	"elsc/internal/kernel"
	"elsc/internal/sim"
)

// hotplugSpecs mirrors swapSpecs: the flat 8P machine and the 32P
// four-domain NUMA machine, resolved through the experiments registry so
// the shapes stay in sync with the sweep.
var hotplugSpecs = []string{"8P", "32P-NUMA"}

// mixedProg is ~60 steps of 200k-cycle compute, with every third task
// interleaving short sleeps so wakeups race the hotplug transitions.
func mixedProg(i int) kernel.Program {
	n := 0
	return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		n++
		if n > 60 {
			return kernel.Exit{}
		}
		if i%3 == 0 && n%7 == 0 {
			return kernel.Sleep{Cycles: 200_000}
		}
		return kernel.Compute{Cycles: 200_000}
	})
}

// hog is a pure compute loop: steps segments of c cycles each.
func hog(steps int, c uint64) kernel.Program {
	n := 0
	return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		n++
		if n > steps {
			return kernel.Exit{}
		}
		return kernel.Compute{Cycles: c}
	})
}

// TestHotplugCycleConformance runs the scripted offline→online storm on
// every policy × machine shape.
func TestHotplugCycleConformance(t *testing.T) {
	for _, label := range hotplugSpecs {
		for _, policy := range experiments.Policies {
			label, policy := label, policy
			t.Run(fmt.Sprintf("%s/%s", policy, label), func(t *testing.T) {
				t.Parallel()
				spec := experiments.SpecByLabel(label)
				cycled := []int{1, spec.CPUs / 2, spec.CPUs - 1}
				onlineAt := make(map[int]sim.Time)
				lastDispatch := make(map[int]sim.Time)

				var m *kernel.Machine
				cfg := kernel.Config{
					CPUs: spec.CPUs, SMP: spec.SMP, Topology: spec.Topology(),
					Seed: 42, NewScheduler: experiments.Factory(policy),
					MaxCycles: 600 * kernel.DefaultHz, TicklessOff: ticklessOff(),
					Trace: func(ev kernel.TraceEvent) {
						if ev.Next == nil {
							return
						}
						if !m.CPUIsOnline(ev.CPU) {
							t.Errorf("dispatch of %v on offline cpu%d at t=%d",
								ev.Next, ev.CPU, ev.Now)
						}
						lastDispatch[ev.CPU] = ev.Now
					},
					Watchdog: &kernel.WatchdogConfig{
						StarveQuanta: experiments.MaxWatchdogStarveQuanta(),
						OnViolation: func(v kernel.WatchdogViolation) {
							t.Errorf("watchdog fired on a healthy hotplug run: %s", v)
						},
					},
				}
				m = kernel.NewMachine(cfg)
				for i := 0; i < 3*spec.CPUs; i++ {
					m.Spawn(fmt.Sprintf("w%d", i), nil, mixedProg(i))
				}

				audit := func(when string) {
					if err := experiments.AuditCensus(m); err != nil {
						t.Errorf("census after %s: %v", when, err)
					}
				}
				for i, cpu := range cycled {
					cpu := cpu
					m.Engine().At(sim.Time(5_000_000+uint64(i)*1_000_000), "conf-offline",
						func(now sim.Time) {
							if err := m.OfflineCPU(cpu); err != nil {
								t.Errorf("offline cpu%d: %v", cpu, err)
							}
							audit(fmt.Sprintf("offline cpu%d", cpu))
						})
					m.Engine().At(sim.Time(20_000_000+uint64(i)*1_000_000), "conf-online",
						func(now sim.Time) {
							if err := m.OnlineCPU(cpu); err != nil {
								t.Errorf("online cpu%d: %v", cpu, err)
							}
							onlineAt[cpu] = now
							audit(fmt.Sprintf("online cpu%d", cpu))
						})
				}

				m.Run(func() bool { return m.Alive() == 0 })
				if m.Alive() != 0 {
					t.Fatalf("%d tasks still alive at the horizon", m.Alive())
				}
				for _, cpu := range cycled {
					if lastDispatch[cpu] <= onlineAt[cpu] {
						t.Errorf("cpu%d never dispatched after coming back at t=%d (last t=%d)",
							cpu, onlineAt[cpu], lastDispatch[cpu])
					}
				}
				if s := m.Stats(); s.CPUOfflines != 3 || s.CPUOnlines != 3 {
					t.Errorf("transition counters %d/%d, want 3/3", s.CPUOfflines, s.CPUOnlines)
				}
				audit("completion")
			})
		}
	}
}

// TestHotplugPinnedFallbackConformance: on every policy, a task affined
// solely to CPU 2 of an 8P machine keeps making progress while that CPU
// is down (cpuset fallback widens it to the survivors) and, once the CPU
// returns and the original mask is restored, finishes on CPU 2.
func TestHotplugPinnedFallbackConformance(t *testing.T) {
	for _, policy := range experiments.Policies {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			m := kernel.NewMachine(kernel.Config{
				CPUs: 8, SMP: true, Seed: 42,
				NewScheduler: experiments.Factory(policy),
				MaxCycles:    600 * kernel.DefaultHz,
				TicklessOff:  ticklessOff(),
			})
			pinned := m.Spawn("pinned", nil, hog(1200, 1_000_000)) // ~300 ticks of work
			m.SetAffinity(pinned, 1<<2)
			for i := 0; i < 8; i++ {
				m.Spawn(fmt.Sprintf("bg%d", i), nil, hog(400, 1_000_000))
			}
			m.Run(func() bool { return pinned.Task.UserCycles > 0 })

			if err := m.OfflineCPU(2); err != nil {
				t.Fatal(err)
			}
			if pinned.Task.CPUsAllowed != 0 {
				t.Fatalf("cpuset fallback not applied: mask %#x", pinned.Task.CPUsAllowed)
			}
			// Progress window longer than a full default quantum: another
			// task may hold a survivor until its quantum expires before the
			// widened task gets a turn.
			before := pinned.Task.UserCycles
			target := m.Now() + sim.Time(45*kernel.DefaultTickCycles)
			m.Run(func() bool { return m.Now() >= target })
			if pinned.Task.UserCycles <= before {
				t.Fatal("pinned task made no progress under cpuset fallback")
			}

			if err := m.OnlineCPU(2); err != nil {
				t.Fatal(err)
			}
			if pinned.Task.CPUsAllowed != 1<<2 {
				t.Fatalf("affinity not restored at online: mask %#x", pinned.Task.CPUsAllowed)
			}
			m.Run(func() bool { return pinned.Exited() })
			if !pinned.Exited() {
				t.Fatal("pinned task never finished")
			}
			if pinned.Task.Processor != 2 {
				t.Fatalf("re-pinned task finished on CPU %d, want 2", pinned.Task.Processor)
			}
			// The affinity restore must deliver a real kick to CPU 2 —
			// under tickless idle there is no tick left to rescue a task
			// stranded on a parked CPU's queue.
			if n := m.Stats().IdleTickRescues; n != 0 {
				t.Fatalf("idle_tick_rescues = %d, want 0", n)
			}
		})
	}
}
