package conformance

import (
	"flag"
	"fmt"
	"os"
	"testing"
)

// -tickless selects the NO_HZ idle mode for every machine the suite
// builds: "on" (the default, matching production) parks an idle CPU's
// tick chain; "off" keeps the seed's always-on chain. CI runs the whole
// package under each mode — tickless is an event-elision optimization,
// so every invariant in this suite must hold identically both ways.
var ticklessMode = flag.String("tickless", "on",
	`NO_HZ idle mode for every machine the suite builds ("on" or "off")`)

// ticklessOff reports whether the suite was asked to run the ablation
// arm. Threaded into every kernel.Config and experiments.Scale the
// tests construct.
func ticklessOff() bool { return *ticklessMode == "off" }

func TestMain(m *testing.M) {
	flag.Parse()
	if *ticklessMode != "on" && *ticklessMode != "off" {
		fmt.Fprintf(os.Stderr, "conformance: -tickless=%q, want \"on\" or \"off\"\n", *ticklessMode)
		os.Exit(2)
	}
	os.Exit(m.Run())
}
