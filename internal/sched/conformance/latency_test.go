package conformance

import (
	"fmt"
	"math"
	"testing"

	"elsc/internal/experiments"
	"elsc/internal/task"
	"elsc/internal/workload"
)

// The cross-policy latency invariant suite. Where the contract tests
// above pin *what* gets scheduled, these pin *when*: wakeup-to-run
// latency under load, the axis PR 3's matrix exposed as the widest gap
// between policies. Both invariants run the registry workloads at a
// fixed seed on every spec in latencySpecs for every registered policy,
// so a new policy inherits them (at the forgiving default budget) the
// moment it joins experiments.Policies.

// latencySpecs are the machines the invariants run on: the flat 8P spec
// and both NUMA hierarchies.
var latencySpecs = []string{"8P", "32P-NUMA", "64P-NUMA"}

// latencyScale fixes the invariant runs: quick shapes, seed 42, enough
// wakes for a stable tail.
func latencyScale() experiments.Scale {
	return experiments.Scale{Messages: 10, Seed: 42, HorizonSeconds: 600, Quick: true, TicklessOff: ticklessOff()}
}

// hogQuantumUS is one full quantum of a default-priority hog in
// microseconds: counter recharges to Priority ticks of 10 ms.
const hogQuantumUS = task.DefaultPriority * 10_000

// The per-policy budgets for invariant (a) — the worst observed
// wakeup-to-run latency of a blocked-then-woken probe, as a fraction of a
// default hog's full quantum — live in the experiments capability table
// (experiments.Caps): the invariant every policy must meet is two full
// quanta, and policies whose designs promise better are held to it. The
// stock scanner and the heap preempt via goodness within a few scheduler
// hops; o1's interactivity machinery (sleep_avg bonus + TASK_PREEMPTS_CURR
// + tick preemption) pins the probe to microseconds. ELSC and mq have no
// latency story at equal static priorities (their probes can wait out a
// hog quantum on one queue), so they carry the base budget.
func latencyBudget(policy string) float64 {
	return experiments.LatencyBudget(policy)
}

// TestLatencyInvariantProbeBeatsHogQuanta is invariant (a): on every
// spec, a blocked-then-woken probe at the same static priority as the
// hogs runs before any hog completes two full quanta — scaled down per
// the capability table for policies that promise better.
func TestLatencyInvariantProbeBeatsHogQuanta(t *testing.T) {
	for _, label := range latencySpecs {
		for _, policy := range experiments.Policies {
			label, policy := label, policy
			t.Run(fmt.Sprintf("%s/%s", label, policy), func(t *testing.T) {
				t.Parallel()
				r := experiments.RunWorkloadCell(
					experiments.SpecByLabel(label), policy, workload.Latency, latencyScale())
				if !r.Result.Complete || r.Result.Ops == 0 {
					t.Fatalf("latency run incomplete (ops=%d)", r.Result.Ops)
				}
				maxUS, ok := r.Result.Extra("max_us")
				if !ok {
					t.Fatal("latency result lost its max_us extra")
				}
				budget := latencyBudget(policy) * hogQuantumUS
				if maxUS >= budget {
					t.Fatalf("worst wakeup-to-run %.1fus exceeds the %s budget of %.0fus (%.3g hog quanta)",
						maxUS, policy, budget, latencyBudget(policy))
				}
			})
		}
	}
}

// TestLatencyInvariantWakeStormTail is invariant (b): on every spec, the
// wake-storm percentiles are finite, positive, and monotone
// (p50 <= p99 <= max), and no wake-up is lost — the reported sample
// count is exactly waiters x storms.
func TestLatencyInvariantWakeStormTail(t *testing.T) {
	for _, label := range latencySpecs {
		for _, policy := range experiments.Policies {
			label, policy := label, policy
			t.Run(fmt.Sprintf("%s/%s", label, policy), func(t *testing.T) {
				t.Parallel()
				sc := latencyScale()
				r := experiments.RunWorkloadCell(
					experiments.SpecByLabel(label), policy, workload.WakeStorm, sc)
				if !r.Result.Complete {
					t.Fatal("wake storm did not complete")
				}
				waiters, _ := r.Result.Extra("waiters")
				storms, _ := r.Result.Extra("storms")
				if want := uint64(waiters * storms); r.Result.Ops != want {
					t.Fatalf("lost wake-ups: %d samples, want %d (%v waiters x %v storms)",
						r.Result.Ops, want, waiters, storms)
				}
				p50, _ := r.Result.Extra("p50_us")
				p99, _ := r.Result.Extra("p99_us")
				maxUS, _ := r.Result.Extra("max_us")
				for name, v := range map[string]float64{"p50_us": p50, "p99_us": p99, "max_us": maxUS} {
					if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
						t.Fatalf("%s = %v, want finite and positive", name, v)
					}
				}
				if !(p50 <= p99 && p99 <= maxUS) {
					t.Fatalf("percentiles not monotone: p50=%.1f p99=%.1f max=%.1f", p50, p99, maxUS)
				}
			})
		}
	}
}
