package sched

import "testing"

func TestFlatTopologyOneDomain(t *testing.T) {
	topo := FlatTopology(8)
	if topo.NumCPU() != 8 || topo.NumDomains() != 1 {
		t.Fatalf("flat topology = %s, want 8cpu/1dom", topo)
	}
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if !topo.SameDomain(a, b) {
				t.Fatalf("flat topology separates CPUs %d and %d", a, b)
			}
		}
	}
	if len(topo.DomainCPUs(0)) != 8 {
		t.Fatalf("domain 0 holds %d CPUs, want all 8", len(topo.DomainCPUs(0)))
	}
}

func TestUniformTopologyEvenSplit(t *testing.T) {
	topo := UniformTopology(32, 4)
	if topo.NumDomains() != 4 {
		t.Fatalf("domains = %d, want 4", topo.NumDomains())
	}
	for d := 0; d < 4; d++ {
		cpus := topo.DomainCPUs(d)
		if len(cpus) != 8 {
			t.Fatalf("domain %d holds %d CPUs, want 8", d, len(cpus))
		}
		for _, c := range cpus {
			if topo.DomainOf(c) != d {
				t.Fatalf("CPU %d maps to domain %d, listed under %d", c, topo.DomainOf(c), d)
			}
		}
	}
	// Contiguous blocks: 0-7, 8-15, 16-23, 24-31.
	if topo.DomainOf(7) != 0 || topo.DomainOf(8) != 1 || topo.DomainOf(31) != 3 {
		t.Fatalf("blocks not contiguous: dom(7)=%d dom(8)=%d dom(31)=%d",
			topo.DomainOf(7), topo.DomainOf(8), topo.DomainOf(31))
	}
	if topo.SameDomain(7, 8) {
		t.Fatal("CPUs 7 and 8 must sit in different domains")
	}
	if !topo.SameDomain(8, 15) {
		t.Fatal("CPUs 8 and 15 must share a domain")
	}
}

func TestUniformTopologyUnevenSplit(t *testing.T) {
	// 10 CPUs over 3 domains: 4+3+3, every CPU covered exactly once.
	topo := UniformTopology(10, 3)
	sizes := []int{}
	total := 0
	for d := 0; d < topo.NumDomains(); d++ {
		n := len(topo.DomainCPUs(d))
		sizes = append(sizes, n)
		total += n
	}
	if total != 10 {
		t.Fatalf("domains cover %d CPUs, want 10", total)
	}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("split = %v, want [4 3 3]", sizes)
	}
}

func TestUniformTopologyPanicsOnBadShape(t *testing.T) {
	for _, bad := range []struct{ ncpu, dom int }{{0, 1}, {4, 0}, {4, 5}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("UniformTopology(%d, %d) did not panic", bad.ncpu, bad.dom)
				}
			}()
			UniformTopology(bad.ncpu, bad.dom)
		}()
	}
}

func TestNewEnvDefaultsToFlatTopology(t *testing.T) {
	env := NewEnv(4, true, nil)
	if env.Topo == nil {
		t.Fatal("NewEnv left Topo nil")
	}
	if env.Topo.NumCPU() != 4 || env.Topo.NumDomains() != 1 {
		t.Fatalf("default topology = %s, want 4cpu/1dom", env.Topo)
	}
}
