package ipc

import (
	"testing"
	"testing/quick"

	"elsc/internal/kernel"
	"elsc/internal/sim"
)

// TestQueueAgainstFIFOModel drives a queue with a randomized mix of
// producers and consumers on a randomized machine and checks the whole
// history against a simple FIFO model: per-sender order preserved, nothing
// lost, nothing duplicated, capacity never exceeded.
func TestQueueAgainstFIFOModel(t *testing.T) {
	f := func(seed int64, capRaw, producersRaw, perRaw uint8, latencyOn bool) bool {
		capacity := int(capRaw % 6)          // 0 (unbounded) .. 5
		producers := int(producersRaw%4) + 1 // 1..4
		per := int(perRaw%12) + 1            // 1..12 messages each
		cpus := 1 + int(uint(seed)%3)        // 1..3 CPUs

		m := newMachine(cpus, seed%2 == 0)
		q := NewQueue("model", capacity)
		if latencyOn {
			q.DeliverLatency = 40_000
		}

		type rec struct{ from, seq int }
		var got []rec
		maxLen := 0

		for pid := 0; pid < producers; pid++ {
			pid := pid
			n := 0
			m.Spawn("prod", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
				if q.Len() > maxLen {
					maxLen = q.Len()
				}
				if n >= per {
					return kernel.Exit{}
				}
				n++
				return q.Send(300, Msg{From: pid, Seq: n})
			}))
		}
		total := producers * per
		var cur Msg
		recvd := 0
		consumed := false
		m.Spawn("cons", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
			if consumed {
				got = append(got, rec{cur.From, cur.Seq})
			}
			if recvd >= total {
				return kernel.Exit{}
			}
			recvd++
			consumed = true
			return q.Recv(300, &cur)
		}))
		m.Run(func() bool { return m.Alive() == 0 })

		if len(got) != total {
			return false
		}
		// Per-sender FIFO and no duplicates.
		lastSeq := make(map[int]int)
		for _, r := range got {
			if r.seq != lastSeq[r.from]+1 {
				return false
			}
			lastSeq[r.from] = r.seq
		}
		// Capacity respected (buffered portion only; in-flight counted
		// separately by the queue itself).
		if capacity > 0 && maxLen > capacity {
			return false
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestYieldMutexNeverDoubleOwns drives the mutex with random lock/unlock
// sequences from many tasks and asserts single ownership throughout.
func TestYieldMutexNeverDoubleOwns(t *testing.T) {
	f := func(seed int64, workersRaw, roundsRaw uint8) bool {
		workers := int(workersRaw%5) + 2
		rounds := int(roundsRaw%8) + 2
		m := newMachine(2, true)
		mu := NewYieldMutex("m", 0)
		rng := sim.NewRNG(seed)

		violated := false
		inside := 0
		for w := 0; w < workers; w++ {
			hold := rng.Range(500, 5000)
			var got bool
			n, state := 0, 0
			m.Spawn("w", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
				for {
					switch state {
					case 0:
						if n >= rounds {
							return kernel.Exit{}
						}
						state = 1
						got = false
						return mu.TryLock(&got)
					case 1:
						if !got {
							state = 5
							return kernel.Yield{}
						}
						inside++
						if inside > 1 {
							violated = true
						}
						state = 2
						return kernel.Compute{Cycles: hold}
					case 2:
						inside--
						n++
						state = 0
						return mu.Unlock()
					case 5: // after a failed spin, suspend
						state = 6
						return mu.LockBlocking()
					case 6:
						inside++
						if inside > 1 {
							violated = true
						}
						state = 2
						continue
					}
				}
			}))
		}
		m.Run(func() bool { return m.Alive() == 0 || violated })
		return !violated && !mu.Locked()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
