package ipc

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sim"
)

func TestDeliverLatencyDelaysVisibility(t *testing.T) {
	m := newMachine(1, true)
	q := NewQueue("lat", 0)
	q.DeliverLatency = 100_000

	var sentAt, gotAt sim.Time
	var msg Msg
	step := 0
	p := m.Spawn("p", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		step++
		switch step {
		case 1:
			a := q.Send(100, Msg{Seq: 1})
			return a
		case 2:
			sentAt = p.M.Now()
			return q.Recv(100, &msg)
		case 3:
			gotAt = p.M.Now()
			return kernel.Exit{}
		}
		return nil
	}))
	m.Run(func() bool { return p.Exited() })
	if msg.Seq != 1 {
		t.Fatal("message lost")
	}
	if gotAt-sentAt < 90_000 {
		t.Fatalf("delivery took %d cycles, want >= ~100000", gotAt-sentAt)
	}
}

func TestDeliverLatencyCountsAgainstCapacity(t *testing.T) {
	m := newMachine(1, true)
	q := NewQueue("lat", 2)
	q.DeliverLatency = 1_000_000 // long flight

	sent := 0
	blockedAtThird := false
	p := m.Spawn("p", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if sent >= 3 {
			return kernel.Exit{}
		}
		sent++
		a := q.Send(100, Msg{Seq: sent})
		return a
	}))
	// A late consumer drains the queue; until then the third send must
	// block because two messages are still in flight.
	var cur Msg
	recvd := 0
	started := false
	c := m.Spawn("c", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if !started {
			started = true
			return kernel.Sleep{Cycles: 2_000_000}
		}
		if recvd >= 3 {
			return kernel.Exit{}
		}
		recvd++
		return q.Recv(100, &cur)
	}))
	m.Engine().After(500_000, "check", func(sim.Time) {
		blockedAtThird = p.Blocked() && sent == 3
	})
	m.Run(func() bool { return p.Exited() && c.Exited() })
	if !blockedAtThird {
		t.Fatal("third send should have blocked on in-flight capacity")
	}
	if !p.Exited() {
		t.Fatal("sender should complete once the consumer drains")
	}
}

func TestDeliverLatencyPreservesFIFO(t *testing.T) {
	m := newMachine(1, true)
	q := NewQueue("lat", 0)
	q.DeliverLatency = 50_000

	sent := 0
	producer := m.Spawn("prod", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if sent >= 10 {
			return kernel.Exit{}
		}
		sent++
		return q.Send(100, Msg{Seq: sent})
	}))
	var got []int
	var cur Msg
	recvd := 0
	consumer := m.Spawn("cons", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if recvd > 0 {
			got = append(got, cur.Seq)
		}
		if recvd >= 10 {
			return kernel.Exit{}
		}
		recvd++
		return q.Recv(100, &cur)
	}))
	m.Run(func() bool { return producer.Exited() && consumer.Exited() })
	for i, seq := range got {
		if seq != i+1 {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestSerialGateDelaysContendedOps(t *testing.T) {
	m := newMachine(2, true)
	serial := m.NewSerialResource("bkl")
	q1 := NewQueue("a", 0)
	q2 := NewQueue("b", 0)
	for _, q := range []*Queue{q1, q2} {
		q.Serial = serial
		q.SerialHold = 50_000
	}
	// Two tasks on two CPUs hammer different queues through the same
	// serialized resource: contention must appear.
	mk := func(q *Queue) kernel.Program {
		n := 0
		return kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
			if n >= 20 {
				return kernel.Exit{}
			}
			n++
			return q.Send(100, Msg{Seq: n})
		})
	}
	m.Spawn("s1", nil, mk(q1))
	m.Spawn("s2", nil, mk(q2))
	m.Run(func() bool { return m.Alive() == 0 })
	if serial.Contended() == 0 {
		t.Fatal("no contention on the serialized resource")
	}
	if serial.SpinCycles() == 0 {
		t.Fatal("no spin cycles recorded")
	}
}

func TestInjectDeliversWithoutTask(t *testing.T) {
	m := newMachine(1, true)
	q := NewQueue("inj", 8)
	var got Msg
	recvd := false
	p := m.Spawn("cons", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if recvd {
			return kernel.Exit{}
		}
		recvd = true
		return q.Recv(100, &got)
	}))
	m.Engine().After(50_000, "inject", func(sim.Time) {
		q.Inject(m, Msg{Payload: 77})
	})
	m.Run(func() bool { return p.Exited() })
	if got.Payload != 77 {
		t.Fatalf("payload = %d, want 77", got.Payload)
	}
}
