package ipc

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/sched/vanilla"
)

func newMachine(cpus int, useELSC bool) *kernel.Machine {
	factory := func(env *sched.Env) sched.Scheduler { return vanilla.New(env) }
	if useELSC {
		factory = func(env *sched.Env) sched.Scheduler { return elsc.New(env) }
	}
	return kernel.NewMachine(kernel.Config{
		CPUs:         cpus,
		SMP:          cpus > 1,
		Seed:         7,
		NewScheduler: factory,
		MaxCycles:    20 * kernel.DefaultHz,
	})
}

func TestQueueFIFOOrder(t *testing.T) {
	m := newMachine(1, true)
	q := NewQueue("q", 0)
	const n = 20

	var got []Msg
	i := 0
	producer := m.Spawn("prod", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if i >= n {
			return kernel.Exit{}
		}
		i++
		return q.Send(500, Msg{From: 1, Seq: i})
	}))
	var cur Msg
	recvd := 0
	consumer := m.Spawn("cons", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if recvd > 0 {
			got = append(got, cur)
		}
		if recvd >= n {
			return kernel.Exit{}
		}
		recvd++
		return q.Recv(500, &cur)
	}))
	m.Run(func() bool { return producer.Exited() && consumer.Exited() })

	if len(got) != n {
		t.Fatalf("received %d messages, want %d", len(got), n)
	}
	for i, msg := range got {
		if msg.Seq != i+1 {
			t.Fatalf("out of order: got seq %d at position %d", msg.Seq, i)
		}
	}
	if q.Sent() != n || q.Delivered() != n {
		t.Fatalf("sent/delivered = %d/%d, want %d/%d", q.Sent(), q.Delivered(), n, n)
	}
}

func TestBoundedQueueBlocksSender(t *testing.T) {
	m := newMachine(1, true)
	q := NewQueue("q", 2)
	sent := 0
	slowRecvd := 0
	var cur Msg

	producer := m.Spawn("prod", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if sent >= 6 {
			return kernel.Exit{}
		}
		sent++
		return q.Send(500, Msg{Seq: sent})
	}))
	step := 0
	consumer := m.Spawn("cons", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		step++
		if step%2 == 1 {
			// Slow consumer: think between receives.
			return kernel.Sleep{Cycles: 100_000}
		}
		if slowRecvd >= 6 {
			return kernel.Exit{}
		}
		slowRecvd++
		return q.Recv(500, &cur)
	}))
	m.Run(func() bool { return producer.Exited() && consumer.Exited() })
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
	if sent != 6 || slowRecvd < 6 {
		t.Fatalf("sent=%d recvd=%d", sent, slowRecvd)
	}
}

func TestQueueCapacityNeverExceeded(t *testing.T) {
	m := newMachine(2, false)
	q := NewQueue("q", 3)
	maxSeen := 0
	sent := 0
	producer := m.Spawn("prod", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if q.Len() > maxSeen {
			maxSeen = q.Len()
		}
		if sent >= 40 {
			return kernel.Exit{}
		}
		sent++
		return q.Send(300, Msg{Seq: sent})
	}))
	var cur Msg
	recvd := 0
	consumer := m.Spawn("cons", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if q.Len() > maxSeen {
			maxSeen = q.Len()
		}
		if recvd >= 40 {
			return kernel.Exit{}
		}
		recvd++
		return q.Recv(300, &cur)
	}))
	m.Run(func() bool { return producer.Exited() && consumer.Exited() })
	if maxSeen > 3 {
		t.Fatalf("queue length reached %d, capacity 3", maxSeen)
	}
}

func TestManyProducersOneConsumer(t *testing.T) {
	m := newMachine(2, true)
	q := NewQueue("q", 8)
	const producers = 5
	const per = 10
	for pid := 0; pid < producers; pid++ {
		pid := pid
		n := 0
		m.Spawn("prod", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
			if n >= per {
				return kernel.Exit{}
			}
			n++
			return q.Send(400, Msg{From: pid, Seq: n})
		}))
	}
	var cur Msg
	perSender := make(map[int]int)
	recvd := 0
	consumer := m.Spawn("cons", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		if recvd > 0 {
			// Per-sender FIFO: seq must increase by one.
			if cur.Seq != perSender[cur.From]+1 {
				t.Errorf("sender %d: got seq %d after %d", cur.From, cur.Seq, perSender[cur.From])
			}
			perSender[cur.From] = cur.Seq
		}
		if recvd >= producers*per {
			return kernel.Exit{}
		}
		recvd++
		return q.Recv(400, &cur)
	}))
	m.Run(func() bool { return consumer.Exited() })
	if recvd != producers*per {
		t.Fatalf("received %d, want %d", recvd, producers*per)
	}
}

func TestSockPairDirections(t *testing.T) {
	m := newMachine(1, true)
	sp := NewSockPair("conn", 4)
	var fromClient, fromServer Msg
	step := 0
	client := m.Spawn("client", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		step++
		switch step {
		case 1:
			return sp.ClientToServer.Send(500, Msg{Payload: 111})
		case 2:
			return sp.ServerToClient.Recv(500, &fromServer)
		}
		return nil
	}))
	sstep := 0
	server := m.Spawn("server", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		sstep++
		switch sstep {
		case 1:
			return sp.ClientToServer.Recv(500, &fromClient)
		case 2:
			return sp.ServerToClient.Send(500, Msg{Payload: fromClient.Payload * 2})
		}
		return nil
	}))
	m.Run(func() bool { return client.Exited() && server.Exited() })
	if fromClient.Payload != 111 {
		t.Fatalf("server got %d, want 111", fromClient.Payload)
	}
	if fromServer.Payload != 222 {
		t.Fatalf("client got %d, want 222", fromServer.Payload)
	}
}

func TestYieldMutexMutualExclusion(t *testing.T) {
	m := newMachine(2, false)
	mu := NewYieldMutex("lock", 0)
	inside := 0
	maxInside := 0
	const workers = 4
	const rounds = 10
	for w := 0; w < workers; w++ {
		var got bool
		n := 0
		state := 0
		m.Spawn("locker", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
			for {
				switch state {
				case 0: // try lock
					if n >= rounds {
						return kernel.Exit{}
					}
					state = 1
					got = false
					return mu.TryLock(&got)
				case 1:
					if !got {
						state = 0
						return kernel.Yield{}
					}
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					state = 2
					return kernel.Compute{Cycles: 2000}
				case 2:
					inside--
					n++
					state = 0
					return mu.Unlock()
				}
			}
		}))
	}
	m.Run(func() bool { return m.Alive() == 0 })
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated: %d tasks inside", maxInside)
	}
	if mu.Acquisitions() != workers*rounds {
		t.Fatalf("acquisitions = %d, want %d", mu.Acquisitions(), workers*rounds)
	}
}

func TestYieldMutexContentionYields(t *testing.T) {
	// Contended yield-locks must generate sys_sched_yield traffic — the
	// paper's stress mechanism.
	m := newMachine(1, false)
	mu := NewYieldMutex("lock", 0)
	for w := 0; w < 3; w++ {
		var got bool
		n := 0
		state := 0
		m.Spawn("locker", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
			for {
				switch state {
				case 0:
					if n >= 20 {
						return kernel.Exit{}
					}
					state = 1
					got = false
					return mu.TryLock(&got)
				case 1:
					if !got {
						state = 0
						return kernel.Yield{}
					}
					state = 2
					// Hold across a block: guarantees contention.
					return kernel.Sleep{Cycles: 5000}
				case 2:
					n++
					state = 0
					return mu.Unlock()
				}
			}
		}))
	}
	m.Run(func() bool { return m.Alive() == 0 })
	if mu.Spins() == 0 {
		t.Fatal("no lock contention spins")
	}
	if m.Stats().YieldCalls == 0 {
		t.Fatal("no yields recorded")
	}
}

func TestUnlockByNonOwnerPanics(t *testing.T) {
	m := newMachine(1, true)
	mu := NewYieldMutex("lock", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("unlock by non-owner should panic")
		}
	}()
	p := m.Spawn("bad", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		return mu.Unlock()
	}))
	m.Run(func() bool { return p.Exited() })
}

func TestSendFuncDefersPayload(t *testing.T) {
	m := newMachine(1, true)
	q := NewQueue("q", 0)
	val := int64(0)
	step := 0
	var got Msg
	p := m.Spawn("p", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		step++
		switch step {
		case 1:
			a := q.SendFunc(100, func() Msg { return Msg{Payload: val} })
			val = 42 // mutated before the syscall completes
			return a
		case 2:
			return q.Recv(100, &got)
		}
		return nil
	}))
	m.Run(func() bool { return p.Exited() })
	if got.Payload != 42 {
		t.Fatalf("payload = %d, want 42 (computed at completion)", got.Payload)
	}
}
