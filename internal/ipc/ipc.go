// Package ipc provides blocking inter-task communication on top of the
// kernel substrate: bounded and unbounded FIFO message queues (which stand
// in for the loopback socket connections VolanoMark uses), and a
// yield-spinning mutex that models the user-level locking of IBM's JDK
// 1.1.7 — the behavior that makes VolanoMark hammer sys_sched_yield and,
// on the stock scheduler, detonate the counter-recalculation loop
// (Figure 2).
package ipc

import (
	"elsc/internal/kernel"
	"elsc/internal/sim"
)

// Msg is one message in flight. Payload identity is up to the workload.
type Msg struct {
	From    int   // sender's connection/user id
	Seq     int   // sender-local sequence number
	Payload int64 // opaque
}

// Queue is a FIFO of messages with blocking Recv and (for bounded queues)
// blocking Send. Cap == 0 means unbounded. It stands in for one direction
// of a socket: the paper's loopback VolanoMark runs put four threads on
// each connection precisely because Java lacked non-blocking I/O.
type Queue struct {
	Name string
	Cap  int

	// Serial, when set, serializes every operation on this queue
	// through a machine-global resource for SerialHold cycles — the
	// 2.3.x-era big-kernel-lock behavior of the socket path. Loopback
	// sockets should share one SerialResource; cheap in-process queues
	// may use a smaller hold or none.
	Serial     *kernel.SerialResource
	SerialHold uint64

	// DeliverLatency delays a sent message's visibility to receivers,
	// modeling 2.3.x loopback delivery through netif_rx and the
	// net bottom-half: data written to a loopback socket is readable on
	// a later softirq run, not instantly. These gaps are where the
	// benchmark's spin-pollers end up yielding as the only runnable
	// task — the paper's recalculation trigger.
	DeliverLatency uint64

	buf       []Msg
	inFlight  int
	readers   *kernel.WaitQueue
	writers   *kernel.WaitQueue
	delivered uint64
	sent      uint64
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue(name string, capacity int) *Queue {
	return &Queue{
		Name:    name,
		Cap:     capacity,
		readers: kernel.NewWaitQueue(name + ".readers"),
		writers: kernel.NewWaitQueue(name + ".writers"),
	}
}

// Len returns the number of queued messages.
func (q *Queue) Len() int { return len(q.buf) }

// Sent returns the number of successful Send completions.
func (q *Queue) Sent() uint64 { return q.sent }

// Delivered returns the number of successful Recv completions.
func (q *Queue) Delivered() uint64 { return q.delivered }

// full reports whether a bounded queue has no room, counting in-flight
// (sent but not yet delivered) messages against the capacity.
func (q *Queue) full() bool { return q.Cap > 0 && len(q.buf)+q.inFlight >= q.Cap }

// deposit makes m visible to receivers now or after the delivery latency.
func (q *Queue) deposit(p *kernel.Proc, m Msg) {
	if q.DeliverLatency == 0 {
		q.buf = append(q.buf, m)
		p.M.WakeOne(q.readers)
		return
	}
	q.inFlight++
	p.M.Engine().After(q.DeliverLatency, q.Name+".deliver", func(sim.Time) {
		q.inFlight--
		q.buf = append(q.buf, m)
		p.M.WakeOne(q.readers)
	})
}

// serialGate reserves the queue's serialized resource once per syscall
// instance. It returns a non-nil delay outcome when the caller must spin
// for its turn first.
func (q *Queue) serialGate(now sim.Time, reserved *bool) (kernel.Outcome, bool) {
	if q.Serial == nil || *reserved {
		return kernel.Outcome{}, false
	}
	*reserved = true
	if wait := q.Serial.Reserve(now, q.SerialHold); wait > 0 {
		return kernel.DelayFor(wait), true
	}
	return kernel.Outcome{}, false
}

// Send returns a syscall action that enqueues m, blocking while the queue
// is full. cost is the simulated in-kernel work of the write path
// (socket buffer copy, protocol processing).
func (q *Queue) Send(cost uint64, m Msg) kernel.Action {
	reserved := false
	return kernel.Syscall{
		Name: q.Name + ".send",
		Cost: cost,
		Fn: func(p *kernel.Proc, now sim.Time) kernel.Outcome {
			if out, wait := q.serialGate(now, &reserved); wait {
				return out
			}
			if q.full() {
				return kernel.BlockOn(q.writers)
			}
			q.sent++
			q.deposit(p, m)
			return kernel.Done()
		},
	}
}

// SendFunc is like Send but computes the message at completion time, for
// messages whose content depends on state mutated by earlier actions.
func (q *Queue) SendFunc(cost uint64, f func() Msg) kernel.Action {
	reserved := false
	return kernel.Syscall{
		Name: q.Name + ".send",
		Cost: cost,
		Fn: func(p *kernel.Proc, now sim.Time) kernel.Outcome {
			if out, wait := q.serialGate(now, &reserved); wait {
				return out
			}
			if q.full() {
				return kernel.BlockOn(q.writers)
			}
			q.sent++
			q.deposit(p, f())
			return kernel.Done()
		},
	}
}

// Recv returns a syscall action that dequeues the oldest message into out,
// blocking while the queue is empty.
func (q *Queue) Recv(cost uint64, out *Msg) kernel.Action {
	reserved := false
	return kernel.Syscall{
		Name: q.Name + ".recv",
		Cost: cost,
		Fn: func(p *kernel.Proc, now sim.Time) kernel.Outcome {
			if o, wait := q.serialGate(now, &reserved); wait {
				return o
			}
			if len(q.buf) == 0 {
				return kernel.BlockOn(q.readers)
			}
			*out = q.buf[0]
			copy(q.buf, q.buf[1:])
			q.buf = q.buf[:len(q.buf)-1]
			q.delivered++
			if q.Cap > 0 {
				p.M.WakeOne(q.writers)
			}
			return kernel.Done()
		},
	}
}

// TryRecv returns a syscall action that polls the queue without blocking:
// *got reports whether a message was dequeued into out. Combined with
// Yield, this models the adaptive spin-then-block receive of a 1999-era
// JVM thread library, whose lonely yields are what drive the stock
// scheduler's recalculation storm (paper Figure 2).
func (q *Queue) TryRecv(cost uint64, out *Msg, got *bool) kernel.Action {
	reserved := false
	return kernel.Syscall{
		Name: q.Name + ".tryrecv",
		Cost: cost,
		Fn: func(p *kernel.Proc, now sim.Time) kernel.Outcome {
			if o, wait := q.serialGate(now, &reserved); wait {
				return o
			}
			if len(q.buf) == 0 {
				*got = false
				return kernel.Done()
			}
			*out = q.buf[0]
			copy(q.buf, q.buf[1:])
			q.buf = q.buf[:len(q.buf)-1]
			q.delivered++
			*got = true
			if q.Cap > 0 {
				p.M.WakeOne(q.writers)
			}
			return kernel.Done()
		},
	}
}

// Inject deposits a message from outside any simulated task — e.g. an
// open-loop arrival process modeled as plain engine events — and wakes one
// reader. It bypasses capacity checks; callers enforce their own backlog
// policy.
func (q *Queue) Inject(m *kernel.Machine, msg Msg) {
	q.sent++
	q.buf = append(q.buf, msg)
	m.WakeOne(q.readers)
}

// WakeAllReaders releases every reader blocked on the queue, for shutdown
// paths where no more messages will arrive.
func (q *Queue) WakeAllReaders(m *kernel.Machine) {
	m.WakeAll(q.readers)
}

// SockPair is a bidirectional loopback connection: two bounded queues, one
// per direction, like the socket VolanoMark opens per simulated chat user.
type SockPair struct {
	// ClientToServer carries client writes; ServerToClient carries
	// server writes.
	ClientToServer *Queue
	ServerToClient *Queue
}

// NewSockPair builds a loopback connection with the given per-direction
// buffer capacity in messages.
func NewSockPair(name string, capacity int) *SockPair {
	return &SockPair{
		ClientToServer: NewQueue(name+".c2s", capacity),
		ServerToClient: NewQueue(name+".s2c", capacity),
	}
}

// YieldMutex is a user-space lock that spins by calling sys_sched_yield
// before suspending, as IBM JDK 1.1.7's monitors did. Contention on such
// locks floods the scheduler with yielding tasks — the paper's §4 stress
// mechanism. Spinning must be bounded (TryLock callers yield a few times,
// then fall back to LockBlocking); an unbounded yield loop would starve a
// lock holder that a table scheduler has filed in a lower list.
type YieldMutex struct {
	Name    string
	owner   *kernel.Proc
	waiters *kernel.WaitQueue
	spins   uint64
	acqs    uint64
	blocked uint64
	tryFee  uint64
}

// NewYieldMutex returns an unlocked mutex. tryCost is the simulated cost
// of one lock attempt (a compare-and-swap plus bookkeeping).
func NewYieldMutex(name string, tryCost uint64) *YieldMutex {
	if tryCost == 0 {
		tryCost = 120
	}
	return &YieldMutex{
		Name:    name,
		tryFee:  tryCost,
		waiters: kernel.NewWaitQueue(name + ".waiters"),
	}
}

// Locked reports whether the mutex is held.
func (mu *YieldMutex) Locked() bool { return mu.owner != nil }

// Spins returns how many failed attempts (each followed by a yield) have
// occurred.
func (mu *YieldMutex) Spins() uint64 { return mu.spins }

// Acquisitions returns the number of successful lock acquisitions.
func (mu *YieldMutex) Acquisitions() uint64 { return mu.acqs }

// TryLock attempts the lock once; *got reports success.
func (mu *YieldMutex) TryLock(got *bool) kernel.Action {
	return kernel.Syscall{
		Name: mu.Name + ".trylock",
		Cost: mu.tryFee,
		Fn: func(p *kernel.Proc, now sim.Time) kernel.Outcome {
			if mu.owner == nil {
				mu.owner = p
				mu.acqs++
				*got = true
			} else {
				mu.spins++
				*got = false
			}
			return kernel.Done()
		},
	}
}

// LockBlocking acquires the lock, suspending the caller until it is
// available — the JVM monitor's post-spin fallback. The kernel's syscall
// retry loop re-checks the condition after every wake.
func (mu *YieldMutex) LockBlocking() kernel.Action {
	return kernel.Syscall{
		Name: mu.Name + ".lock",
		Cost: mu.tryFee,
		Fn: func(p *kernel.Proc, now sim.Time) kernel.Outcome {
			if mu.owner == nil {
				mu.owner = p
				mu.acqs++
				return kernel.Done()
			}
			mu.blocked++
			return kernel.BlockOn(mu.waiters)
		},
	}
}

// BlockedAcquires returns how many acquisitions had to suspend.
func (mu *YieldMutex) BlockedAcquires() uint64 { return mu.blocked }

// Unlock releases the lock and wakes one suspended waiter. It panics if
// the caller does not hold it, which in a deterministic simulation
// indicates a workload bug.
func (mu *YieldMutex) Unlock() kernel.Action {
	return kernel.Syscall{
		Name: mu.Name + ".unlock",
		Cost: mu.tryFee / 2,
		Fn: func(p *kernel.Proc, now sim.Time) kernel.Outcome {
			if mu.owner != p {
				panic("ipc: unlock of a mutex not held by caller")
			}
			mu.owner = nil
			p.M.WakeOne(mu.waiters)
			return kernel.Done()
		},
	}
}
