// Package ipc provides blocking inter-task communication on top of the
// kernel substrate: bounded and unbounded FIFO message queues (which stand
// in for the loopback socket connections VolanoMark uses), and a
// yield-spinning mutex that models the user-level locking of IBM's JDK
// 1.1.7 — the behavior that makes VolanoMark hammer sys_sched_yield and,
// on the stock scheduler, detonate the counter-recalculation loop
// (Figure 2).
package ipc

import (
	"elsc/internal/kernel"
	"elsc/internal/sim"
)

// Msg is one message in flight. Payload identity is up to the workload.
type Msg struct {
	From    int   // sender's connection/user id
	Seq     int   // sender-local sequence number
	Payload int64 // opaque
}

// Queue is a FIFO of messages with blocking Recv and (for bounded queues)
// blocking Send. Cap == 0 means unbounded. It stands in for one direction
// of a socket: the paper's loopback VolanoMark runs put four threads on
// each connection precisely because Java lacked non-blocking I/O.
type Queue struct {
	Name string
	Cap  int

	// Serial, when set, serializes every operation on this queue
	// through a machine-global resource for SerialHold cycles — the
	// 2.3.x-era big-kernel-lock behavior of the socket path. Loopback
	// sockets should share one SerialResource; cheap in-process queues
	// may use a smaller hold or none.
	Serial     *kernel.SerialResource
	SerialHold uint64

	// DeliverLatency delays a sent message's visibility to receivers,
	// modeling 2.3.x loopback delivery through netif_rx and the
	// net bottom-half: data written to a loopback socket is readable on
	// a later softirq run, not instantly. These gaps are where the
	// benchmark's spin-pollers end up yielding as the only runnable
	// task — the paper's recalculation trigger.
	DeliverLatency uint64

	buf       []Msg
	pending   []Msg
	readers   *kernel.WaitQueue
	writers   *kernel.WaitQueue
	delivered uint64
	sent      uint64

	// Prebound, closure-free syscall machinery: op names are concatenated
	// once here instead of per call, and each op re-arms its own scratch
	// Syscall — safe because the kernel copies the action into the proc
	// the moment it is consumed, and a program hands its action straight
	// back from Step. deliverName/deliverFn are the single prebound
	// delivery handler replacing a per-message closure; mach is the
	// machine it wakes on, captured at first deposit.
	deliverName string
	deliverFn   func(sim.Time)
	mach        *kernel.Machine
	sendSC      kernel.Syscall
	recvSC      kernel.Syscall
	trySC       kernel.Syscall
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue(name string, capacity int) *Queue {
	q := &Queue{
		Name:        name,
		Cap:         capacity,
		readers:     kernel.NewWaitQueue(name + ".readers"),
		writers:     kernel.NewWaitQueue(name + ".writers"),
		deliverName: name + ".deliver",
	}
	q.sendSC = kernel.Syscall{Name: name + ".send", Exec: execSend, Obj: q}
	q.recvSC = kernel.Syscall{Name: name + ".recv", Exec: execRecv, Obj: q}
	q.trySC = kernel.Syscall{Name: name + ".tryrecv", Exec: execTryRecv, Obj: q}
	q.deliverFn = q.deliverOne
	return q
}

// Len returns the number of queued messages.
func (q *Queue) Len() int { return len(q.buf) }

// Sent returns the number of successful Send completions.
func (q *Queue) Sent() uint64 { return q.sent }

// Delivered returns the number of successful Recv completions.
func (q *Queue) Delivered() uint64 { return q.delivered }

// full reports whether a bounded queue has no room, counting in-flight
// (sent but not yet delivered) messages against the capacity.
func (q *Queue) full() bool { return q.Cap > 0 && len(q.buf)+len(q.pending) >= q.Cap }

// deposit makes m visible to receivers now or after the delivery latency.
// Delayed messages sit in the pending FIFO and one prebound handler moves
// the head across per delivery event; the latency is a per-queue constant,
// so event order matches deposit order and the FIFO discipline holds.
func (q *Queue) deposit(p *kernel.Proc, m Msg) {
	if q.DeliverLatency == 0 {
		q.buf = append(q.buf, m)
		p.M.WakeOne(q.readers)
		return
	}
	q.mach = p.M
	q.pending = append(q.pending, m)
	p.M.Engine().After(q.DeliverLatency, q.deliverName, q.deliverFn)
}

// deliverOne is the delivery-event handler: the oldest pending message
// becomes visible and one reader wakes.
func (q *Queue) deliverOne(sim.Time) {
	m := q.pending[0]
	copy(q.pending, q.pending[1:])
	q.pending = q.pending[:len(q.pending)-1]
	q.buf = append(q.buf, m)
	q.mach.WakeOne(q.readers)
}

// serialGate reserves the queue's serialized resource once per syscall
// instance. It returns a non-nil delay outcome when the caller must spin
// for its turn first.
func (q *Queue) serialGate(now sim.Time, reserved *bool) (kernel.Outcome, bool) {
	if q.Serial == nil || *reserved {
		return kernel.Outcome{}, false
	}
	*reserved = true
	if wait := q.Serial.Reserve(now, q.SerialHold); wait > 0 {
		return kernel.DelayFor(wait), true
	}
	return kernel.Outcome{}, false
}

// Send returns a syscall action that enqueues m, blocking while the queue
// is full. cost is the simulated in-kernel work of the write path
// (socket buffer copy, protocol processing). The action re-arms the
// queue's scratch Syscall, so it must be returned from the program's Step
// directly (which every workload does), not stashed across calls.
func (q *Queue) Send(cost uint64, m Msg) kernel.Action {
	sc := &q.sendSC
	sc.Cost = cost
	sc.Args = [3]int64{int64(m.From), int64(m.Seq), m.Payload}
	sc.Ptr = nil
	sc.Reserved = false
	return sc
}

// SendFunc is like Send but computes the message at completion time, for
// messages whose content depends on state mutated by earlier actions.
func (q *Queue) SendFunc(cost uint64, f func() Msg) kernel.Action {
	sc := &q.sendSC
	sc.Cost = cost
	sc.Ptr = f
	sc.Reserved = false
	return sc
}

// execSend is the static effect behind Send and SendFunc: Ptr carries a
// deferred message constructor when set, Args the literal message fields
// otherwise.
func execSend(sc *kernel.Syscall, p *kernel.Proc, now sim.Time) kernel.Outcome {
	q := sc.Obj.(*Queue)
	if out, wait := q.serialGate(now, &sc.Reserved); wait {
		return out
	}
	if q.full() {
		return kernel.BlockOn(q.writers)
	}
	q.sent++
	if sc.Ptr != nil {
		q.deposit(p, sc.Ptr.(func() Msg)())
	} else {
		q.deposit(p, Msg{From: int(sc.Args[0]), Seq: int(sc.Args[1]), Payload: sc.Args[2]})
	}
	return kernel.Done()
}

// Recv returns a syscall action that dequeues the oldest message into out,
// blocking while the queue is empty.
func (q *Queue) Recv(cost uint64, out *Msg) kernel.Action {
	sc := &q.recvSC
	sc.Cost = cost
	sc.Ptr = out
	sc.Reserved = false
	return sc
}

// execRecv is the static effect behind Recv; Ptr is the destination.
func execRecv(sc *kernel.Syscall, p *kernel.Proc, now sim.Time) kernel.Outcome {
	q := sc.Obj.(*Queue)
	if o, wait := q.serialGate(now, &sc.Reserved); wait {
		return o
	}
	if len(q.buf) == 0 {
		return kernel.BlockOn(q.readers)
	}
	*sc.Ptr.(*Msg) = q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf = q.buf[:len(q.buf)-1]
	q.delivered++
	if q.Cap > 0 {
		p.M.WakeOne(q.writers)
	}
	return kernel.Done()
}

// TryRecv returns a syscall action that polls the queue without blocking:
// *got reports whether a message was dequeued into out. Combined with
// Yield, this models the adaptive spin-then-block receive of a 1999-era
// JVM thread library, whose lonely yields are what drive the stock
// scheduler's recalculation storm (paper Figure 2).
func (q *Queue) TryRecv(cost uint64, out *Msg, got *bool) kernel.Action {
	sc := &q.trySC
	sc.Cost = cost
	sc.Ptr = out
	sc.Flag = got
	sc.Reserved = false
	return sc
}

// execTryRecv is the static effect behind TryRecv; Ptr is the destination
// and Flag reports whether anything was dequeued.
func execTryRecv(sc *kernel.Syscall, p *kernel.Proc, now sim.Time) kernel.Outcome {
	q := sc.Obj.(*Queue)
	if o, wait := q.serialGate(now, &sc.Reserved); wait {
		return o
	}
	if len(q.buf) == 0 {
		*sc.Flag = false
		return kernel.Done()
	}
	*sc.Ptr.(*Msg) = q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf = q.buf[:len(q.buf)-1]
	q.delivered++
	*sc.Flag = true
	if q.Cap > 0 {
		p.M.WakeOne(q.writers)
	}
	return kernel.Done()
}

// Inject deposits a message from outside any simulated task — e.g. an
// open-loop arrival process modeled as plain engine events — and wakes one
// reader. It bypasses capacity checks; callers enforce their own backlog
// policy.
func (q *Queue) Inject(m *kernel.Machine, msg Msg) {
	q.sent++
	q.buf = append(q.buf, msg)
	m.WakeOne(q.readers)
}

// WakeAllReaders releases every reader blocked on the queue, for shutdown
// paths where no more messages will arrive.
func (q *Queue) WakeAllReaders(m *kernel.Machine) {
	m.WakeAll(q.readers)
}

// SockPair is a bidirectional loopback connection: two bounded queues, one
// per direction, like the socket VolanoMark opens per simulated chat user.
type SockPair struct {
	// ClientToServer carries client writes; ServerToClient carries
	// server writes.
	ClientToServer *Queue
	ServerToClient *Queue
}

// NewSockPair builds a loopback connection with the given per-direction
// buffer capacity in messages.
func NewSockPair(name string, capacity int) *SockPair {
	return &SockPair{
		ClientToServer: NewQueue(name+".c2s", capacity),
		ServerToClient: NewQueue(name+".s2c", capacity),
	}
}

// YieldMutex is a user-space lock that spins by calling sys_sched_yield
// before suspending, as IBM JDK 1.1.7's monitors did. Contention on such
// locks floods the scheduler with yielding tasks — the paper's §4 stress
// mechanism. Spinning must be bounded (TryLock callers yield a few times,
// then fall back to LockBlocking); an unbounded yield loop would starve a
// lock holder that a table scheduler has filed in a lower list.
type YieldMutex struct {
	Name    string
	owner   *kernel.Proc
	waiters *kernel.WaitQueue
	spins   uint64
	acqs    uint64
	blocked uint64
	tryFee  uint64

	// Scratch Syscalls, prebound like the Queue ops: the cost of every
	// mutex op is fixed at construction, so only output pointers re-arm.
	trySC    kernel.Syscall
	lockSC   kernel.Syscall
	unlockSC kernel.Syscall
}

// NewYieldMutex returns an unlocked mutex. tryCost is the simulated cost
// of one lock attempt (a compare-and-swap plus bookkeeping).
func NewYieldMutex(name string, tryCost uint64) *YieldMutex {
	if tryCost == 0 {
		tryCost = 120
	}
	mu := &YieldMutex{
		Name:    name,
		tryFee:  tryCost,
		waiters: kernel.NewWaitQueue(name + ".waiters"),
	}
	mu.trySC = kernel.Syscall{Name: name + ".trylock", Cost: tryCost, Exec: execTryLock, Obj: mu}
	mu.lockSC = kernel.Syscall{Name: name + ".lock", Cost: tryCost, Exec: execLock, Obj: mu}
	mu.unlockSC = kernel.Syscall{Name: name + ".unlock", Cost: tryCost / 2, Exec: execUnlock, Obj: mu}
	return mu
}

// Locked reports whether the mutex is held.
func (mu *YieldMutex) Locked() bool { return mu.owner != nil }

// Spins returns how many failed attempts (each followed by a yield) have
// occurred.
func (mu *YieldMutex) Spins() uint64 { return mu.spins }

// Acquisitions returns the number of successful lock acquisitions.
func (mu *YieldMutex) Acquisitions() uint64 { return mu.acqs }

// TryLock attempts the lock once; *got reports success.
func (mu *YieldMutex) TryLock(got *bool) kernel.Action {
	sc := &mu.trySC
	sc.Flag = got
	return sc
}

func execTryLock(sc *kernel.Syscall, p *kernel.Proc, now sim.Time) kernel.Outcome {
	mu := sc.Obj.(*YieldMutex)
	if mu.owner == nil {
		mu.owner = p
		mu.acqs++
		*sc.Flag = true
	} else {
		mu.spins++
		*sc.Flag = false
	}
	return kernel.Done()
}

// LockBlocking acquires the lock, suspending the caller until it is
// available — the JVM monitor's post-spin fallback. The kernel's syscall
// retry loop re-checks the condition after every wake.
func (mu *YieldMutex) LockBlocking() kernel.Action {
	return &mu.lockSC
}

func execLock(sc *kernel.Syscall, p *kernel.Proc, now sim.Time) kernel.Outcome {
	mu := sc.Obj.(*YieldMutex)
	if mu.owner == nil {
		mu.owner = p
		mu.acqs++
		return kernel.Done()
	}
	mu.blocked++
	return kernel.BlockOn(mu.waiters)
}

// BlockedAcquires returns how many acquisitions had to suspend.
func (mu *YieldMutex) BlockedAcquires() uint64 { return mu.blocked }

// Unlock releases the lock and wakes one suspended waiter. It panics if
// the caller does not hold it, which in a deterministic simulation
// indicates a workload bug.
func (mu *YieldMutex) Unlock() kernel.Action {
	return &mu.unlockSC
}

func execUnlock(sc *kernel.Syscall, p *kernel.Proc, now sim.Time) kernel.Outcome {
	mu := sc.Obj.(*YieldMutex)
	if mu.owner != p {
		panic("ipc: unlock of a mutex not held by caller")
	}
	mu.owner = nil
	p.M.WakeOne(mu.waiters)
	return kernel.Done()
}
