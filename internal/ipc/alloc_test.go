package ipc

import (
	"testing"

	"elsc/internal/kernel"
	"elsc/internal/sim"
)

// TestSteadyStateQueueOpsAllocFree asserts the prebound-syscall contract:
// once the machine, queues, and buffers are warm, a steady-state IPC
// workload — blocking sends and receives (one direction with delivery
// latency), TryRecv polling with yields, and a yield-mutex cycle — runs
// entire tick periods without touching the allocator. This is the ~90% of
// remaining steady-state allocations the PR 5 heap profile attributed to
// the per-call Send/Recv/TryRecv closures.
func TestSteadyStateQueueOpsAllocFree(t *testing.T) {
	m := newMachine(2, false)
	ping := NewQueue("ping", 4)
	pong := NewQueue("pong", 4)
	pong.DeliverLatency = 5_000
	mu := NewYieldMutex("mu", 0)

	step := 0
	var echo Msg
	m.Spawn("client", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		step++
		if step%2 == 1 {
			return ping.Send(400, Msg{From: 1, Seq: step})
		}
		return pong.Recv(400, &echo)
	}))
	sstep := 0
	var req Msg
	m.Spawn("server", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		sstep++
		if sstep%2 == 1 {
			return ping.Recv(400, &req)
		}
		return pong.Send(400, Msg{From: 2, Seq: req.Seq})
	}))
	loop := NewQueue("loop", 0)
	lstep := 0
	var got bool
	var polled Msg
	var pollHit bool
	m.Spawn("locker", nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
		lstep++
		switch lstep % 4 {
		case 1:
			return mu.TryLock(&got)
		case 2:
			if !got {
				return kernel.Yield{}
			}
			return mu.Unlock()
		case 3:
			return loop.Send(200, Msg{From: 3, Seq: lstep})
		default:
			return loop.TryRecv(200, &polled, &pollHit)
		}
	}))

	// Warm: buffers reach steady capacity, the engine freelist fills, and
	// every scratch Syscall has been armed at least once.
	var target sim.Time
	stop := func() bool { return m.Now() >= target }
	target = m.Now() + sim.Time(50*kernel.DefaultTickCycles)
	m.Run(stop)

	runTick := func() {
		target = m.Now() + sim.Time(kernel.DefaultTickCycles)
		m.Run(stop)
	}
	allocs := testing.AllocsPerRun(20, runTick)
	if allocs != 0 {
		t.Fatalf("steady-state IPC tick allocates %.1f objects, want 0", allocs)
	}
	if ping.Delivered() == 0 || pong.Delivered() == 0 || mu.Acquisitions() == 0 {
		t.Fatalf("workload idle: ping=%d pong=%d acqs=%d",
			ping.Delivered(), pong.Delivered(), mu.Acquisitions())
	}
}
