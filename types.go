package elsc

import (
	"elsc/internal/ipc"
	"elsc/internal/kernel"
	"elsc/internal/stats"
	"elsc/internal/task"
)

// Re-exported building blocks for writing custom workloads against the
// simulator. A Program yields one Action at a time; the kernel executes
// actions on simulated CPUs under the configured scheduler.

// Program is the behavior of a simulated task.
type Program = kernel.Program

// ProgramFunc adapts a function to Program.
type ProgramFunc = kernel.ProgramFunc

// Proc is the kernel-side handle passed to Program.Step.
type Proc = kernel.Proc

// Action is one step of task behavior.
type Action = kernel.Action

// Compute burns CPU cycles.
type Compute = kernel.Compute

// Syscall crosses into the kernel and may block.
type Syscall = kernel.Syscall

// Yield is sys_sched_yield.
type Yield = kernel.Yield

// Sleep blocks for a fixed virtual duration.
type Sleep = kernel.Sleep

// Exit terminates the task.
type Exit = kernel.Exit

// Outcome is a Syscall effect's result.
type Outcome = kernel.Outcome

// WaitQueue blocks and wakes tasks.
type WaitQueue = kernel.WaitQueue

// NewWaitQueue returns an empty wait queue.
func NewWaitQueue(name string) *WaitQueue { return kernel.NewWaitQueue(name) }

// Done completes a syscall.
func Done() Outcome { return kernel.Done() }

// BlockOn suspends the calling task on wq.
func BlockOn(wq *WaitQueue) Outcome { return kernel.BlockOn(wq) }

// AddressSpace is a shared mm; tasks in the same space get the goodness
// memory-map bonus and cheaper context switches.
type AddressSpace = task.MM

// Msg is a message carried by IPC queues.
type Msg = ipc.Msg

// Queue is a blocking FIFO message queue (a loopback socket stand-in).
type Queue = ipc.Queue

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue(name string, capacity int) *Queue { return ipc.NewQueue(name, capacity) }

// SockPair is a bidirectional loopback connection.
type SockPair = ipc.SockPair

// NewSockPair builds a loopback connection.
func NewSockPair(name string, capacity int) *SockPair { return ipc.NewSockPair(name, capacity) }

// YieldMutex is the JVM-style spin-then-suspend user lock whose yields
// stress the scheduler.
type YieldMutex = ipc.YieldMutex

// NewYieldMutex returns an unlocked mutex.
func NewYieldMutex(name string, tryCost uint64) *YieldMutex {
	return ipc.NewYieldMutex(name, tryCost)
}

// Stats is the machine-wide scheduler instrumentation.
type Stats = kernel.Stats

// WatchdogConfig arms the starvation/lockup watchdog (MachineConfig.Watchdog).
type WatchdogConfig = kernel.WatchdogConfig

// WatchdogViolation is one liveness violation the watchdog detected.
type WatchdogViolation = kernel.WatchdogViolation

// WatchdogKind classifies a violation.
type WatchdogKind = kernel.WatchdogKind

// The watchdog's violation kinds.
const (
	// WatchdogStarvation: a runnable task queued past its policy-scaled
	// wait threshold without being dispatched.
	WatchdogStarvation = kernel.WatchdogStarvation
	// WatchdogLostWakeup: a runnable task that is neither queued nor on a
	// CPU — it fell out of the scheduler entirely.
	WatchdogLostWakeup = kernel.WatchdogLostWakeup
	// WatchdogCPUStall: an online CPU whose timer chain stopped firing.
	WatchdogCPUStall = kernel.WatchdogCPUStall
)

// Table renders aligned text tables for experiment output.
type Table = stats.Table

// Hz is the simulated clock rate: 400 MHz, a Pentium II-class machine.
const Hz = kernel.DefaultHz
