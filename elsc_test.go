package elsc_test

import (
	"strings"
	"testing"

	"elsc"
	"elsc/internal/experiments"
)

func TestQuickstartFlow(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 2, SMP: true, Scheduler: elsc.ELSC, Seed: 7})
	res := m.RunVolanoMark(elsc.VolanoConfig{Rooms: 1, UsersPerRoom: 4, MessagesPerUser: 3})
	if res.Deliveries == 0 || res.Throughput <= 0 {
		t.Fatalf("benchmark produced nothing: %+v", res)
	}
	if m.SchedulerName() != "elsc" {
		t.Fatalf("scheduler = %q", m.SchedulerName())
	}
	if !strings.Contains(m.ProcStat(), "sched_calls") {
		t.Fatal("procstat missing counters")
	}
	if m.Stats().SchedCalls == 0 {
		t.Fatal("no schedule() calls recorded")
	}
}

func TestAllSchedulerKinds(t *testing.T) {
	for _, policy := range experiments.Policies {
		kind := elsc.SchedulerKind(policy)
		m := elsc.NewMachine(elsc.MachineConfig{CPUs: 2, SMP: true, Scheduler: kind, Seed: 3})
		res := m.RunVolanoMark(elsc.VolanoConfig{Rooms: 1, UsersPerRoom: 4, MessagesPerUser: 2})
		want := uint64(1 * 4 * 4 * 2)
		if res.Deliveries != want {
			t.Fatalf("%s: deliveries %d, want %d", kind, res.Deliveries, want)
		}
	}
}

func TestSpawnCustomProgram(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 1, Seed: 1})
	n := 0
	tk := m.Spawn("custom", nil, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		if n >= 3 {
			return elsc.Exit{}
		}
		n++
		return elsc.Compute{Cycles: 1000}
	}))
	m.RunUntilAllExit()
	if !tk.Exited() {
		t.Fatal("task did not exit")
	}
	if tk.UserCycles() != 3000 {
		t.Fatalf("user cycles = %d, want 3000", tk.UserCycles())
	}
}

func TestCustomIPCWorkload(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 1, Seed: 1})
	q := elsc.NewQueue("pipe", 4)
	var got elsc.Msg
	prodDone, consDone := false, false
	sent := 0
	m.Spawn("producer", nil, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		if sent >= 5 {
			prodDone = true
			return elsc.Exit{}
		}
		sent++
		return q.Send(500, elsc.Msg{Seq: sent})
	}))
	recvd := 0
	m.Spawn("consumer", nil, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		if recvd >= 5 {
			consDone = true
			return elsc.Exit{}
		}
		recvd++
		return q.Recv(500, &got)
	}))
	m.Run(func() bool { return prodDone && consDone })
	if got.Seq != 5 {
		t.Fatalf("last message seq = %d, want 5", got.Seq)
	}
}

func TestRealTimeSpawn(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 1, Seed: 1})
	reg := m.Spawn("reg", nil, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		return elsc.Exit{}
	}))
	n := 0
	rt := m.SpawnRT("rt", elsc.FIFO, 50, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		if n >= 2 {
			return elsc.Exit{}
		}
		n++
		return elsc.Compute{Cycles: 500}
	}))
	m.RunUntilAllExit()
	if !rt.Exited() || !reg.Exited() {
		t.Fatal("tasks did not finish")
	}
}

func TestKernelBuildWorkload(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 2, SMP: true, Seed: 2})
	res := m.RunKernelBuild(elsc.KernelBuildConfig{Units: 12, MeanCompile: 2_000_000, MeanIO: 50_000})
	if res.Seconds <= 0 || res.Formatted == "" {
		t.Fatalf("bad build result: %+v", res)
	}
}

func TestWebServerWorkload(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 2, SMP: true, Scheduler: elsc.Vanilla, Seed: 2})
	res := m.RunWebServer(elsc.WebServerConfig{Workers: 6, Requests: 100})
	if res.Served == 0 {
		t.Fatal("no requests served")
	}
}

func TestELSCConfigKnobs(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{
		CPUs:      1,
		Scheduler: elsc.ELSC,
		ELSC:      &elsc.ELSCConfig{SearchLimit: 2, TableSize: 40},
		Seed:      4,
	})
	res := m.RunVolanoMark(elsc.VolanoConfig{Rooms: 1, UsersPerRoom: 4, MessagesPerUser: 2})
	if res.Deliveries == 0 {
		t.Fatal("configured ELSC ran nothing")
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{})
	if m.SchedulerName() != "elsc" {
		t.Fatalf("default scheduler = %q, want elsc", m.SchedulerName())
	}
}

func TestSetPriority(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 1, Seed: 1})
	busy := 0
	tk := m.Spawn("w", nil, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		if busy >= 2 {
			return elsc.Exit{}
		}
		busy++
		return elsc.Compute{Cycles: 100}
	}))
	m.SetPriority(tk, 40)
	m.RunUntilAllExit()
	if !tk.Exited() {
		t.Fatal("task did not run after priority change")
	}
}

func TestDeterminismAcrossMachines(t *testing.T) {
	run := func() float64 {
		m := elsc.NewMachine(elsc.MachineConfig{CPUs: 4, SMP: true, Scheduler: elsc.Vanilla, Seed: 11})
		return m.RunVolanoMark(elsc.VolanoConfig{Rooms: 2, UsersPerRoom: 4, MessagesPerUser: 3}).Throughput
	}
	if run() != run() {
		t.Fatal("same seed produced different throughput")
	}
}

func TestFacadeAffinityAndPolicy(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 2, SMP: true, Seed: 6})
	n := 0
	tk := m.Spawn("pinned", nil, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		if n >= 10 {
			return elsc.Exit{}
		}
		n++
		return elsc.Compute{Cycles: 50_000}
	}))
	m.SetAffinity(tk, 1<<1)
	m.SetPolicy(tk, elsc.RR, 30)
	m.RunUntilAllExit()
	if !tk.Exited() {
		t.Fatal("task did not finish")
	}
	if tk.Migrations() != 0 {
		t.Fatal("pinned task migrated")
	}
}

func TestFacadePS(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 1, Seed: 6})
	done := false
	m.Spawn("visible-task", nil, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		if done {
			return elsc.Exit{}
		}
		done = true
		return elsc.Compute{Cycles: 1000}
	}))
	m.RunUntilAllExit()
	if !strings.Contains(m.PS(), "visible-task") {
		t.Fatal("PS missing the spawned task")
	}
}

func TestFacadeHotplugAndWatchdog(t *testing.T) {
	var violations []elsc.WatchdogViolation
	m := elsc.NewMachine(elsc.MachineConfig{
		CPUs: 4, SMP: true, Scheduler: elsc.O1, Seed: 9,
		Watchdog: &elsc.WatchdogConfig{
			OnViolation: func(v elsc.WatchdogViolation) { violations = append(violations, v) },
		},
	})
	if err := m.OfflineCPU(2); err != nil {
		t.Fatal(err)
	}
	if m.CPUIsOnline(2) || m.OnlineCount() != 3 {
		t.Fatalf("online state wrong after offline: cpu2=%v count=%d",
			m.CPUIsOnline(2), m.OnlineCount())
	}
	if err := m.OfflineCPU(2); err != elsc.ErrCPUOffline {
		t.Fatalf("double offline: err = %v, want ErrCPUOffline", err)
	}
	res := m.RunVolanoMark(elsc.VolanoConfig{Rooms: 1, UsersPerRoom: 4, MessagesPerUser: 3})
	if res.Deliveries == 0 {
		t.Fatal("three survivors delivered nothing")
	}
	if err := m.OnlineCPU(2); err != nil {
		t.Fatal(err)
	}
	if m.OnlineCount() != 4 {
		t.Fatalf("online count = %d after online, want 4", m.OnlineCount())
	}
	if len(violations) != 0 {
		t.Fatalf("watchdog fired on a healthy run: %s", violations[0])
	}
	if !strings.Contains(m.ProcStat(), "watchdog_starvations 0") {
		t.Fatal("armed watchdog's counters missing from procstat")
	}
	if !strings.Contains(m.ProcStat(), "cpu_offlines 1") {
		t.Fatal("hotplug transition missing from procstat")
	}
}
