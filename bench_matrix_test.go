// BenchmarkMatrixSweep measures the harness itself: wall-clock per full
// quick-scale 8P policy x workload cell set, the unit of work every
// bench-regeneration and matrix PR pays over and over. The serial variant
// is the engine-speed headline tracked in BENCH_wallclock.json; the
// parallel variant exercises the worker pool (on a multi-core host it
// should scale near-linearly, since cells are independent simulations).
package elsc_test

import (
	"fmt"
	"runtime"
	"testing"

	"elsc/internal/experiments"
	"elsc/internal/workload"
)

// matrixSweepCells runs the full quick-scale 8P cell set once.
func matrixSweepCells(b *testing.B, parallel int) {
	b.Helper()
	sc := experiments.QuickScale()
	sc.Parallel = parallel
	spec := []experiments.MachineSpec{experiments.SpecByLabel("8P")}
	for i := 0; i < b.N; i++ {
		runs := experiments.RunWorkloadMatrix(experiments.Policies, spec, workload.Names(), sc)
		if len(runs) != len(experiments.Policies)*len(workload.Names()) {
			b.Fatalf("matrix returned %d cells", len(runs))
		}
	}
}

func BenchmarkMatrixSweep(b *testing.B) {
	b.Run("serial", func(b *testing.B) { matrixSweepCells(b, 1) })
	procs := runtime.GOMAXPROCS(0)
	b.Run(fmt.Sprintf("parallel%d", procs), func(b *testing.B) { matrixSweepCells(b, procs) })
}
