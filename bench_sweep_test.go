package elsc_test

import (
	"encoding/json"
	"os"
	"testing"
)

// benchSweepSchema mirrors cmd/sweep's output schema. The committed
// BENCH_sweep.json tracks the perf trajectory across PRs; this test keeps
// the file parseable and the per-workload section populated, and CI reruns
// it against a freshly generated file after a one-cell sweep.
type benchSweepSchema struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Tables     []struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	} `json:"tables"`
	Workloads []struct {
		Workload   string             `json:"workload"`
		Policy     string             `json:"policy"`
		Spec       string             `json:"spec"`
		Throughput float64            `json:"throughput"`
		Unit       string             `json:"unit"`
		Complete   bool               `json:"complete"`
		Extras     map[string]float64 `json:"extras"`

		// The interactivity/wake-placement observability fields added
		// with the sleep_avg work. The kernel-side counters are present
		// on every entry (pointers so a stale file fails loudly);
		// bonus_levels appears on entries whose policy tracks an
		// estimator (o1) and must then span the full -5..+5 range.
		WakeIdlePlacements  *uint64  `json:"wake_idle_placements"`
		TimesliceRotations  *uint64  `json:"timeslice_rotations"`
		BonusLevels         []uint64 `json:"bonus_levels"`
		InteractiveRequeues uint64   `json:"interactive_requeues"`
	} `json:"workloads"`
}

func TestBenchSweepJSONSchema(t *testing.T) {
	raw, err := os.ReadFile("BENCH_sweep.json")
	if err != nil {
		t.Fatalf("reading BENCH_sweep.json: %v (regenerate with: go run ./cmd/sweep -quick -json)", err)
	}
	var got benchSweepSchema
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("BENCH_sweep.json does not parse: %v", err)
	}
	if len(got.Tables) == 0 {
		t.Fatal("BENCH_sweep.json has no tables")
	}
	for _, tab := range got.Tables {
		if tab.Title == "" || len(tab.Headers) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("malformed table %+v", tab)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Headers) {
				t.Fatalf("table %q: row width %d != header width %d",
					tab.Title, len(row), len(tab.Headers))
			}
		}
	}
	if len(got.Workloads) == 0 {
		t.Fatal("BENCH_sweep.json has no per-workload entries; run sweep with -exp matrix (or all) and -json")
	}
	for _, w := range got.Workloads {
		if w.Workload == "" || w.Policy == "" || w.Spec == "" || w.Unit == "" {
			t.Fatalf("workload entry missing identity fields: %+v", w)
		}
		if w.Throughput <= 0 {
			t.Fatalf("workload entry %s-%s-%s has non-positive throughput",
				w.Workload, w.Policy, w.Spec)
		}
		if w.WakeIdlePlacements == nil || w.TimesliceRotations == nil {
			t.Fatalf("workload entry %s-%s-%s missing wake_idle_placements/timeslice_rotations; regenerate with: go run ./cmd/sweep -quick -exp matrix -json",
				w.Workload, w.Policy, w.Spec)
		}
		if w.Policy == "o1" && len(w.BonusLevels) != 11 {
			t.Fatalf("o1 entry %s-%s has bonus_levels of length %d, want the full -5..+5 span (11)",
				w.Workload, w.Spec, len(w.BonusLevels))
		}
	}
}
