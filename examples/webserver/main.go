// Webserver: the paper's future-work question (§8) through the public
// API — run an Apache-style workload under the stock and ELSC schedulers
// and compare throughput and latency.
package main

import (
	"fmt"

	"elsc"
)

func main() {
	fmt.Println("Apache-style workload, 2 CPUs, 64 workers, open-loop arrivals")
	fmt.Println()
	fmt.Printf("%-8s %10s %14s %14s\n", "sched", "req/s", "mean lat (ms)", "max lat (ms)")
	for _, kind := range []elsc.SchedulerKind{elsc.Vanilla, elsc.ELSC} {
		m := elsc.NewMachine(elsc.MachineConfig{
			CPUs:      2,
			SMP:       true,
			Scheduler: kind,
			Seed:      42,
		})
		res := m.RunWebServer(elsc.WebServerConfig{
			Workers:  64,
			Requests: 8000,
		})
		fmt.Printf("%-8s %10.0f %14.2f %14.2f\n",
			kind, res.Throughput, res.MeanLatMS, res.MaxLatMS)
	}
	fmt.Println()
	fmt.Println("The paper asked whether ELSC would raise throughput or cut latency")
	fmt.Println("here. With one task per request and no yield storms, the scheduler")
	fmt.Println("is a small cost either way — the gains are far smaller than")
	fmt.Println("VolanoMark's, mostly visible in tail latency under load spikes.")
}
