// Chatserver: build a custom multithreaded server scenario directly
// against the public API — tasks, blocking queues, and a JVM-style
// yield-spinning lock — rather than using the canned VolanoMark workload.
// It is a miniature of the paper's §4 stress pattern: producers feed a
// shared dispatch queue; a pool of handler threads contend on a user-level
// lock to update shared state, then acknowledge on per-producer queues.
package main

import (
	"fmt"

	"elsc"
)

const (
	producers        = 8
	handlers         = 16
	requestsPerProd  = 50
	handleCost       = 25_000
	userLockHoldCost = 6_000
)

func main() {
	for _, kind := range []elsc.SchedulerKind{elsc.Vanilla, elsc.ELSC} {
		run(kind)
	}
}

func run(kind elsc.SchedulerKind) {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 2, SMP: true, Scheduler: kind, Seed: 7})
	srv := m.NewAddressSpace("server")
	cli := m.NewAddressSpace("clients")

	dispatch := elsc.NewQueue("dispatch", 32)
	mu := elsc.NewYieldMutex("state-lock", 0)
	acks := make([]*elsc.Queue, producers)
	for i := range acks {
		acks[i] = elsc.NewQueue(fmt.Sprintf("ack%d", i), 0)
	}

	// Producers: send a request, wait for its ack, repeat.
	for i := 0; i < producers; i++ {
		i := i
		sent, phase := 0, 0
		var ack elsc.Msg
		m.Spawn(fmt.Sprintf("producer%d", i), cli, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
			switch phase {
			case 0:
				if sent >= requestsPerProd {
					return elsc.Exit{}
				}
				sent++
				phase = 1
				return dispatch.Send(2_000, elsc.Msg{From: i, Seq: sent})
			default:
				phase = 0
				return acks[i].Recv(1_000, &ack)
			}
		}))
	}

	// Handlers: take a request, lock shared state JVM-style (try,
	// yield, retry, then suspend), do the work, ack.
	handled := 0
	for h := 0; h < handlers; h++ {
		var req elsc.Msg
		var got bool
		phase, tries := 0, 0
		m.Spawn(fmt.Sprintf("handler%d", h), srv, elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
			for {
				switch phase {
				case 0: // wait for work
					if handled >= producers*requestsPerProd {
						return elsc.Exit{}
					}
					phase = 1
					return dispatch.Recv(2_000, &req)
				case 1: // lock with bounded yield-spinning
					if tries >= 3 {
						phase = 3
						return mu.LockBlocking()
					}
					tries++
					phase = 2
					got = false
					return mu.TryLock(&got)
				case 2:
					if !got {
						phase = 1
						return elsc.Yield{}
					}
					phase = 3
					continue
				case 3: // critical section
					phase = 4
					return elsc.Compute{Cycles: userLockHoldCost}
				case 4: // unlock, then the real work
					phase = 5
					return mu.Unlock()
				case 5:
					phase = 6
					return elsc.Compute{Cycles: handleCost}
				case 6: // acknowledge
					handled++
					tries = 0
					phase = 0
					return acks[req.From].Send(1_000, elsc.Msg{})
				}
			}
		}))
	}

	m.Run(func() bool { return handled >= producers*requestsPerProd })
	s := m.Stats()
	fmt.Printf("%-8s handled %d requests in %.3f s | sched calls %6d | %5.0f cyc/call | %4.1f examined | %d recalcs | %d yields\n",
		kind, handled, m.Seconds(), s.SchedCalls, s.CyclesPerSchedule(),
		s.ExaminedPerSchedule(), s.Recalcs, s.YieldCalls)
}
