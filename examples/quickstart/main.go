// Quickstart: build a 4-processor machine running the ELSC scheduler, run
// a 10-room VolanoMark, and print the paper's headline statistics.
package main

import (
	"fmt"

	"elsc"
)

func main() {
	m := elsc.NewMachine(elsc.MachineConfig{
		CPUs:      4,
		SMP:       true,
		Scheduler: elsc.ELSC,
		Seed:      42,
	})

	res := m.RunVolanoMark(elsc.VolanoConfig{
		Rooms:           10,
		UsersPerRoom:    20,
		MessagesPerUser: 30,
	})

	fmt.Printf("VolanoMark on %s: %d threads, %d deliveries in %.2f virtual seconds\n",
		m.SchedulerName(), res.Threads, res.Deliveries, res.Seconds)
	fmt.Printf("throughput: %.0f messages/second\n\n", res.Throughput)

	s := m.Stats()
	fmt.Printf("schedule() was called %d times\n", s.SchedCalls)
	fmt.Printf("mean cost: %.0f cycles and %.1f tasks examined per call\n",
		s.CyclesPerSchedule(), s.ExaminedPerSchedule())
	fmt.Printf("counter recalculations: %d\n", s.Recalcs)
	fmt.Printf("cross-CPU migrations: %d\n", s.Migrations)
}
