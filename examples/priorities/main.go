// Priorities: demonstrate the scheduling policy surface of the simulated
// kernel — SCHED_OTHER priorities and both real-time classes — and verify
// the paper's invariant that "real time tasks are always run before
// regular tasks if they are runnable".
package main

import (
	"fmt"

	"elsc"
)

func cpuHog(total uint64) (elsc.Program, *uint64) {
	burned := new(uint64)
	return elsc.ProgramFunc(func(p *elsc.Proc) elsc.Action {
		if *burned >= total {
			return elsc.Exit{}
		}
		*burned += 1_000_000
		return elsc.Compute{Cycles: 1_000_000}
	}), burned
}

func main() {
	m := elsc.NewMachine(elsc.MachineConfig{CPUs: 1, Scheduler: elsc.ELSC, Seed: 9})

	const workEach = 400_000_000 // one virtual second of work each

	hiProg, _ := cpuHog(workEach)
	hi := m.Spawn("nice-hi", nil, hiProg)
	m.SetPriority(hi, 35)

	loProg, _ := cpuHog(workEach)
	lo := m.Spawn("nice-lo", nil, loProg)
	m.SetPriority(lo, 8)

	rtProg, _ := cpuHog(workEach / 4)
	rt := m.SpawnRT("rt-fifo", elsc.FIFO, 50, rtProg)

	// Run until the real-time task finishes: the regular tasks should
	// have gotten almost nothing.
	m.Run(func() bool { return rt.Exited() })
	fmt.Println("at RT completion:")
	fmt.Printf("  rt-fifo  user cycles: %12d (done)\n", rt.UserCycles())
	fmt.Printf("  nice-hi  user cycles: %12d\n", hi.UserCycles())
	fmt.Printf("  nice-lo  user cycles: %12d\n", lo.UserCycles())

	// Now let the two timesharing tasks compete and sample the split
	// while both still want CPU: the priority-35 task earns its quanta
	// in proportion to its priority (roughly 35:8).
	m.Run(func() bool { return hi.Exited() || lo.Exited() })
	total := hi.UserCycles() + lo.UserCycles()
	fmt.Println("\nwhile both timesharing tasks compete for one CPU:")
	fmt.Printf("  nice-hi share: %.0f%% (priority 35)\n",
		100*float64(hi.UserCycles())/float64(total))
	fmt.Printf("  nice-lo share: %.0f%% (priority 8)\n",
		100*float64(lo.UserCycles())/float64(total))

	m.RunUntilAllExit()
	fmt.Printf("\nall done after %.2f virtual seconds, %d schedule() calls\n",
		m.Seconds(), m.Stats().SchedCalls)
}
