// Command schedtrace runs a small scenario and prints every schedule()
// decision: which task was running, which was chosen, how many tasks the
// scheduler examined, and what it cost. A teaching and debugging tool for
// comparing the stock scan against ELSC's table search side by side. With
// -domains and -sched o1 it also renders the balancer's per-CPU steal
// counters grouped by cache domain, splitting in-domain from cross-domain
// moves.
//
// With -hotplug it hot-unplugs a CPU mid-run and brings it back,
// printing the transitions inline with the schedule() stream, and with
// -watchdog it arms the starvation/lockup watchdog so any liveness
// violation prints at its virtual timestamp.
//
// Usage:
//
//	schedtrace -sched reg -tasks 6 -n 40
//	schedtrace -sched elsc -tasks 6 -n 40
//	schedtrace -sched o1 -cpus 8 -domains 2 -tasks 32 -n 0
//	schedtrace -sched o1 -cpus 4 -tasks 16 -hotplug 2 -watchdog -n 0
package main

import (
	"flag"
	"fmt"

	"elsc/internal/experiments"
	"elsc/internal/kernel"
	"elsc/internal/sched"
	"elsc/internal/sched/elsc"
	"elsc/internal/sim"
	"elsc/internal/stats"
)

func main() {
	var (
		schedName = flag.String("sched", "elsc", "scheduler: reg, elsc, heap, mq, o1, cfs")
		cpus      = flag.Int("cpus", 1, "number of processors")
		domains   = flag.Int("domains", 1, "cache domains (NUMA-style topology when > 1)")
		tasks     = flag.Int("tasks", 6, "interactive tasks to simulate")
		n         = flag.Int("n", 40, "decisions to print (0 = trace nothing, stats only)")
		seed      = flag.Int64("seed", 42, "simulation seed")
		showTable = flag.Bool("table", false, "dump the ELSC table (Figure 1b view) at the end")
		hotplug   = flag.Int("hotplug", -1, "CPU to hot-unplug at t=500k cycles and re-plug at t=1.5M (-1 = none)")
		watchdog  = flag.Bool("watchdog", false, "arm the starvation/lockup watchdog; violations print inline")
	)
	flag.Parse()

	var topo *sched.Topology
	if *domains > 1 {
		topo = sched.UniformTopology(*cpus, *domains)
	}
	printed := 0
	var m *kernel.Machine
	cfg := kernel.Config{
		CPUs:         *cpus,
		SMP:          *cpus > 1,
		Topology:     topo,
		Seed:         *seed,
		NewScheduler: experiments.Factory(*schedName),
		MaxCycles:    100 * kernel.DefaultHz,
		Trace: func(ev kernel.TraceEvent) {
			if printed >= *n {
				return
			}
			printed++
			next := "idle"
			if ev.Next != nil {
				next = ev.Next.String()
			}
			extra := ""
			if ev.Recalcs > 0 {
				extra = fmt.Sprintf("  RECALC x%d", ev.Recalcs)
			}
			if ev.Spin > 0 {
				extra += fmt.Sprintf("  spin=%d", ev.Spin)
			}
			fmt.Printf("t=%-12d cpu%d  %-18s -> %-18s examined=%-3d cycles=%-6d%s\n",
				ev.Now, ev.CPU, ev.Prev.String(), next, ev.Examined, ev.Cycles, extra)
		},
	}
	if *watchdog {
		cfg.Watchdog = &kernel.WatchdogConfig{
			OnViolation: func(v kernel.WatchdogViolation) {
				fmt.Printf("t=%-12d WATCHDOG %s\n", v.Now, v)
			},
		}
	}
	m = kernel.NewMachine(cfg)
	if *hotplug >= 0 {
		if *hotplug >= *cpus {
			fmt.Printf("-hotplug %d: no such CPU on a %d-processor machine\n", *hotplug, *cpus)
			return
		}
		cpu := *hotplug
		m.Engine().At(500_000, "trace-offline", func(now sim.Time) {
			if err := m.OfflineCPU(cpu); err != nil {
				fmt.Printf("t=%-12d cpu%d  OFFLINE refused: %v\n", now, cpu, err)
				return
			}
			fmt.Printf("t=%-12d cpu%d  OFFLINE (tasks drained to survivors)\n", now, cpu)
		})
		m.Engine().At(1_500_000, "trace-online", func(now sim.Time) {
			if err := m.OnlineCPU(cpu); err != nil {
				fmt.Printf("t=%-12d cpu%d  ONLINE refused: %v\n", now, cpu, err)
				return
			}
			fmt.Printf("t=%-12d cpu%d  ONLINE (tick re-armed, affinities restored)\n", now, cpu)
		})
	}

	for i := 0; i < *tasks; i++ {
		steps := 0
		rng := m.RNG().Fork()
		m.Spawn(fmt.Sprintf("worker%d", i), nil, kernel.ProgramFunc(func(p *kernel.Proc) kernel.Action {
			if steps >= 30 {
				return kernel.Exit{}
			}
			steps++
			switch steps % 3 {
			case 0:
				return kernel.Yield{}
			case 1:
				return kernel.Compute{Cycles: rng.Range(10_000, 80_000)}
			default:
				return kernel.Sleep{Cycles: rng.Range(20_000, 100_000)}
			}
		}))
	}
	m.Run(func() bool { return (*n > 0 && printed >= *n) || m.Alive() == 0 })

	s := m.Stats()
	fmt.Printf("\n%s totals: %d schedule() calls, %.0f cycles/call, %.1f examined/call, %d recalcs\n",
		m.Scheduler().Name(), s.SchedCalls, s.CyclesPerSchedule(), s.ExaminedPerSchedule(), s.Recalcs)
	if s.Migrations > 0 || s.CrossDomainMigrations > 0 {
		fmt.Printf("migrations: %d (%d cross-domain)\n", s.Migrations, s.CrossDomainMigrations)
	}
	// The steal and bonus sections render only for policies that track
	// the counters: a policy without PerCPUSteals support (reg, elsc,
	// heap, mq) gets no steals section rather than an empty table, and
	// likewise for the interactivity estimator's bonus distribution.
	if ps, ok := m.Scheduler().(perCPUStealer); ok && *cpus > 1 {
		fmt.Println()
		fmt.Print(stealTable(m.Scheduler().Name(), ps.PerCPUSteals(), m.Env().Topo).Render())
	}
	if bs, ok := m.Scheduler().(bonusStatser); ok {
		fmt.Println()
		fmt.Print(bonusTable(bs).Render())
	}
	// Hotplug and watchdog sections follow the same conditional-section
	// rule as steals and bonus: a run with no CPU transitions gets no
	// hotplug table, and an unarmed run gets no watchdog line — existing
	// invocations render byte-identically.
	if s.CPUOfflines > 0 || s.CPUOnlines > 0 {
		fmt.Println()
		fmt.Print(hotplugTable(m.CPUStats()).Render())
	}
	if s.WatchdogEnabled {
		fmt.Printf("\nwatchdog: %d starvations, %d lost wakeups, %d cpu stalls\n",
			s.WatchdogStarvations, s.WatchdogLostWakeups, s.WatchdogCPUStalls)
	}
	// Tickless section, same conditional-section rule: renders only when
	// some idle CPU actually parked its tick chain (ticks_skipped counts
	// the firings the always-on chain would have paid for; a nonzero
	// rescue count means the audited error path fired — see Stats).
	if s.TicksSkipped > 0 || s.IdleTickRescues > 0 {
		fmt.Printf("\ntickless: %d idle ticks skipped, %d rescues\n",
			s.TicksSkipped, s.IdleTickRescues)
		fmt.Println()
		fmt.Print(ticklessTable(m.CPUStats()).Render())
	}
	if *showTable {
		if es, ok := m.Scheduler().(*elsc.Sched); ok {
			fmt.Println()
			fmt.Print(es.Dump())
		} else {
			fmt.Println("(-table requires -sched elsc)")
		}
	}
}

// perCPUStealer is implemented by policies whose balancer tracks per-CPU
// steal counters (o1, cfs); policies without it get no steals section.
type perCPUStealer interface {
	PerCPUSteals() []sched.CPUSteals
}

// bonusStatser is implemented by policies with an interactivity
// estimator whose observable counters schedtrace can render (o1).
type bonusStatser interface {
	BonusLevels() []uint64
	InteractiveRequeues() uint64
}

// stealTable renders a domain-split balancer's per-CPU steal counters
// grouped by cache domain: how many tasks each CPU's steal/pull paths
// moved onto it from inside its own domain versus across the
// interconnect, with a subtotal row per domain and a machine total.
func stealTable(name string, perCPU []sched.CPUSteals, topo *sched.Topology) *stats.Table {
	t := stats.NewTable(name+" balancer steals (by stealing CPU)",
		"CPU", "domain", "in-domain", "cross-domain")
	if topo == nil {
		topo = sched.FlatTopology(len(perCPU))
	}
	var totalIn, totalCross uint64
	for d := 0; d < topo.NumDomains(); d++ {
		var domIn, domCross uint64
		for _, cpu := range topo.DomainCPUs(d) {
			st := perCPU[cpu]
			t.AddRow(cpu, d, st.Intra, st.Cross)
			domIn += st.Intra
			domCross += st.Cross
		}
		if topo.NumDomains() > 1 {
			t.AddRow(fmt.Sprintf("dom%d", d), d, domIn, domCross)
		}
		totalIn += domIn
		totalCross += domCross
	}
	t.AddRow("total", "-", totalIn, totalCross)
	return t
}

// hotplugTable renders the per-CPU hotplug history: final state, how
// many times each processor was unplugged, and its total offline time.
func hotplugTable(perCPU []kernel.CPUStat) *stats.Table {
	t := stats.NewTable("cpu hotplug transitions",
		"CPU", "state", "offlines", "offline-cycles")
	for _, c := range perCPU {
		state := "online"
		if !c.Online {
			state = "offline"
		}
		t.AddRow(c.CPU, state, c.Offlines, c.OfflineCycles)
	}
	return t
}

// ticklessTable renders the per-CPU NO_HZ residency: how much of each
// processor's idle time passed with the tick chain parked.
func ticklessTable(perCPU []kernel.CPUStat) *stats.Table {
	t := stats.NewTable("tickless idle residency",
		"CPU", "idle-cycles", "tickless-cycles", "tickless-%")
	for _, c := range perCPU {
		pct := 0.0
		if c.IdleCycles > 0 {
			pct = 100 * float64(c.TicklessCycles) / float64(c.IdleCycles)
		}
		t.AddRow(c.CPU, c.IdleCycles, c.TicklessCycles, fmt.Sprintf("%.1f%%", pct))
	}
	return t
}

// bonusTable renders the interactivity estimator's observable output:
// how many enqueues landed at each dynamic-priority bonus (-5 = a pure
// hog, +5 = a task that sleeps most of the time), plus the active-array
// requeues the interactive classification granted.
func bonusTable(bs bonusStatser) *stats.Table {
	levels := bs.BonusLevels()
	t := stats.NewTable("o1 interactivity: enqueues by sleep_avg bonus",
		"bonus", "enqueues")
	span := len(levels)
	for i, n := range levels {
		t.AddRow(fmt.Sprintf("%+d", i-span/2), n)
	}
	t.AddRow("requeues", bs.InteractiveRequeues())
	return t
}
