// Command websim runs the paper's future-work Apache experiment (§8):
// an open-loop web workload under each scheduler, reporting throughput
// and latency so the paper's question — does ELSC help more with
// throughput or latency here? — can be answered with data.
package main

import (
	"flag"
	"fmt"

	"elsc/internal/experiments"
	"elsc/internal/workload/webserver"
)

func main() {
	var (
		spec     = flag.String("machine", "2P", "machine spec: UP, 1P, 2P, 4P")
		workers  = flag.Int("workers", 64, "httpd worker processes")
		requests = flag.Int("requests", 20000, "requests to serve")
		period   = flag.Uint64("arrival", 40_000, "mean cycles between arrivals")
		seed     = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	sc.Seed = *seed
	tab := experiments.WebserverWith(experiments.SpecByLabel(*spec), webserver.Config{
		Workers:       *workers,
		Requests:      *requests,
		ArrivalPeriod: *period,
	}, sc)
	fmt.Print(tab.Render())
}
