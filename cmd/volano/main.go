// Command volano runs a single VolanoMark simulation and prints the
// throughput plus the scheduler statistics the paper collected through
// procfs.
//
// Usage:
//
//	volano -sched elsc -cpus 4 -smp -rooms 10 -messages 100 -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"elsc/internal/experiments"
	"elsc/internal/kernel"
	"elsc/internal/workload/volano"
)

func main() {
	var (
		schedName = flag.String("sched", "elsc", "scheduler: reg, elsc, heap, mq")
		cpus      = flag.Int("cpus", 1, "number of processors")
		smp       = flag.Bool("smp", false, "SMP kernel build (1 CPU without this is the paper's UP)")
		rooms     = flag.Int("rooms", 10, "chat rooms (paper sweeps 5,10,15,20)")
		users     = flag.Int("users", 20, "users per room")
		messages  = flag.Int("messages", 100, "messages per user")
		seed      = flag.Int64("seed", 42, "simulation seed")
		horizon   = flag.Uint64("horizon", 3000, "virtual-seconds safety limit")
		showStats = flag.Bool("stats", false, "dump /proc-style scheduler statistics")
		showPS    = flag.Bool("ps", false, "dump a ps-style table of the top tasks")
	)
	flag.Parse()

	m := kernel.NewMachine(kernel.Config{
		CPUs:         *cpus,
		SMP:          *smp || *cpus > 1,
		Seed:         *seed,
		NewScheduler: experiments.Factory(*schedName),
		MaxCycles:    *horizon * kernel.DefaultHz,
	})
	b := volano.Build(m, volano.Config{
		Rooms:           *rooms,
		UsersPerRoom:    *users,
		MessagesPerUser: *messages,
	})
	fmt.Printf("VolanoMark: %d rooms x %d users x %d messages = %d threads, %d expected deliveries\n",
		*rooms, *users, *messages, b.Threads(), b.ExpectedDeliveries())

	res := b.Run()
	if res.Deliveries != b.ExpectedDeliveries() {
		fmt.Fprintf(os.Stderr, "warning: run hit the horizon with %d/%d deliveries\n",
			res.Deliveries, b.ExpectedDeliveries())
	}
	s := m.Stats()
	fmt.Printf("scheduler:           %s\n", m.Scheduler().Name())
	fmt.Printf("virtual time:        %.2f s\n", res.Seconds)
	fmt.Printf("throughput:          %.0f messages/second\n", res.Throughput)
	fmt.Printf("schedule() calls:    %d\n", s.SchedCalls)
	fmt.Printf("cycles per schedule: %.0f\n", s.CyclesPerSchedule())
	fmt.Printf("examined per call:   %.1f\n", s.ExaminedPerSchedule())
	fmt.Printf("recalc loop entries: %d\n", s.Recalcs)
	fmt.Printf("migrations:          %d\n", s.Migrations)
	fmt.Printf("sched share of kernel: %.1f%%\n", 100*s.SchedulerShareOfKernel())
	if *showStats {
		fmt.Println("--- /proc/schedstat ---")
		fmt.Print(s.Registry().Render())
	}
	if *showPS {
		fmt.Println("--- ps (top 25 by CPU) ---")
		lines := strings.SplitN(m.PS(), "\n", 27)
		if len(lines) > 26 {
			lines = lines[:26]
		}
		fmt.Println(strings.Join(lines, "\n"))
	}
}
