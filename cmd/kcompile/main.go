// Command kcompile reproduces the paper's Table 2: the time to complete a
// simulated kernel compile (make -j4) under the stock and ELSC schedulers
// on UP and 2P machines. Unlike sweep's registry-driven Table 2, this tool
// exposes the build's own knobs (tree size, -j parallelism).
package main

import (
	"flag"
	"fmt"

	"elsc/internal/experiments"
	"elsc/internal/workload/kbuild"
)

func main() {
	var (
		units = flag.Int("units", 320, "compilation units")
		jobs  = flag.Int("jobs", 4, "make -j parallelism")
		seed  = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	sc.Seed = *seed
	cfg := kbuild.Config{Units: *units, Jobs: *jobs}
	tab := experiments.Table2With(sc, cfg)
	fmt.Print(tab.Render())
	fmt.Println("\nPaper's measurements: Current-UP 6:41.41, ELSC-UP 6:38.68, Current-2P 3:40.38, ELSC-2P 3:40.36.")
	fmt.Println("The claim under test is equality within noise, with a slight ELSC edge on UP.")
}
