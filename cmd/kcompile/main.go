// Command kcompile reproduces the paper's Table 2: the time to complete a
// simulated kernel compile (make -j4) under the stock and ELSC schedulers
// on UP and 2P machines.
package main

import (
	"flag"
	"fmt"

	"elsc/internal/experiments"
	"elsc/internal/workload/kbuild"
)

func main() {
	var (
		units = flag.Int("units", 320, "compilation units")
		jobs  = flag.Int("jobs", 4, "make -j parallelism")
		seed  = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	sc.Seed = *seed
	tab := experiments.Table2(sc, kbuild.Config{Units: *units, Jobs: *jobs})
	fmt.Print(tab.Render())
	fmt.Println("\nPaper's measurements: Current-UP 6:41.41, ELSC-UP 6:38.68, Current-2P 3:40.38, ELSC-2P 3:40.36.")
	fmt.Println("The claim under test is equality within noise, with a slight ELSC edge on UP.")
}
