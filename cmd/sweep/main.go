// Command sweep regenerates every table and figure from the paper's
// evaluation section, plus the future-work comparisons and this
// reproduction's ablation studies.
//
// Usage:
//
//	sweep                 # everything at paper scale (takes a few minutes)
//	sweep -exp fig3       # one experiment
//	sweep -quick          # reduced scale for a fast look
//	sweep -exp numa -json # domain tables + machine-readable BENCH_sweep.json
//
// Experiments: table2, fig2, fig3, fig4, fig5, fig6, profile, alt, web,
// lock, numa, ablate, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"elsc/internal/experiments"
	"elsc/internal/stats"
	"elsc/internal/workload/kbuild"
	"elsc/internal/workload/webserver"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (table2 fig2 fig3 fig4 fig5 fig6 profile alt web latency lock numa ablate all)")
		quick    = flag.Bool("quick", false, "reduced message counts for a fast pass")
		messages = flag.Int("messages", 0, "override messages per user")
		seed     = flag.Int64("seed", 42, "simulation seed")
		parallel = flag.Int("parallel", 0, "concurrent runs (default GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "also write every table to "+jsonPath)
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	if *quick {
		sc = experiments.QuickScale()
		sc.Messages = 30
	}
	if *messages > 0 {
		sc.Messages = *messages
	}
	sc.Seed = *seed
	sc.Parallel = *parallel

	want := func(name string) bool { return *exp == "all" || *exp == name }
	t0 := time.Now()

	// The VolanoMark matrix feeds figures 2-6 and the profile table.
	var runs []experiments.VolanoRun
	needMatrix := want("fig2") || want("fig3") || want("fig4") || want("fig5") ||
		want("fig6") || want("profile")
	if needMatrix {
		fmt.Fprintf(os.Stderr, "running VolanoMark matrix (%d messages/user, rooms %v)...\n",
			sc.Messages, experiments.PaperRooms)
		runs = experiments.RunVolanoMatrix(
			[]string{experiments.Reg, experiments.ELSC},
			experiments.PaperSpecs, experiments.PaperRooms, sc)
	}

	var tables []*stats.Table
	section := func(t *stats.Table) {
		tables = append(tables, t)
		fmt.Println(t.Render())
	}

	if want("table2") {
		kcfg := kbuild.Config{}
		if *quick {
			kcfg = kbuild.Config{Units: 48, MeanCompile: 40_000_000}
		}
		section(experiments.Table2(sc, kcfg))
	}
	if want("fig2") {
		section(experiments.Fig2(runs, 10))
	}
	if want("fig3") {
		section(experiments.Fig3(runs, experiments.PaperRooms))
	}
	if want("fig4") {
		section(experiments.Fig4(runs, 5, 20))
	}
	if want("fig5") {
		section(experiments.Fig5(runs, 10))
	}
	if want("fig6") {
		section(experiments.Fig6(runs, 10))
	}
	if want("profile") {
		section(experiments.Profile(runs, experiments.PaperRooms))
	}
	if want("alt") {
		section(experiments.AltSchedulers(experiments.SpecByLabel("4P"), 10, sc))
	}
	if want("web") {
		wcfg := webserver.Config{}
		if *quick {
			wcfg = webserver.Config{Requests: 4000}
		}
		section(experiments.Webserver(experiments.SpecByLabel("2P"), wcfg, sc))
	}
	if want("lock") {
		// The lock-wait headline, scaled past the paper's hardware: the
		// global-lock policies collapse as CPUs double, the per-CPU-lock
		// ones do not.
		for _, label := range []string{"8P", "16P", "32P"} {
			section(experiments.LockContention(experiments.SpecByLabel(label), 10, sc))
		}
	}
	if want("numa") {
		spec := experiments.SpecByLabel("32P-NUMA")
		section(experiments.Numa(spec, 10, sc))
		// Marginal load (3 rooms on 32 CPUs) keeps the steal path hot —
		// the regime where domain awareness pays.
		section(experiments.AblateTopology(spec, 3, sc))
	}
	if want("latency") {
		section(experiments.WakeLatency(experiments.SpecByLabel("UP"),
			[]int{4, 16, 64, 256}, sc))
	}
	if want("ablate") {
		section(experiments.AblateSearchLimit(experiments.SpecByLabel("4P"), 10,
			[]int{1, 3, 7, 15, 40}, sc))
		section(experiments.AblateTableSize(experiments.SpecByLabel("1P"), 10,
			[]int{15, 30, 60}, sc))
		section(experiments.AblateUPShortcut(10, sc))
	}

	known := false
	for _, name := range strings.Fields("table2 fig2 fig3 fig4 fig5 fig6 profile alt web latency lock numa ablate all") {
		if *exp == name {
			known = true
			break
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonOut {
		if err := writeJSON(jsonPath, *exp, *quick, sc, tables); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d tables to %s\n", len(tables), jsonPath)
	}
	fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(t0).Seconds())
}

// jsonPath is where -json drops the machine-readable results, so the
// perf trajectory can be tracked across PRs.
const jsonPath = "BENCH_sweep.json"

// sweepJSON is the file schema: enough run metadata to reproduce the
// numbers, plus every rendered table.
type sweepJSON struct {
	Experiment string         `json:"experiment"`
	Quick      bool           `json:"quick"`
	Seed       int64          `json:"seed"`
	Messages   int            `json:"messages_per_user"`
	Horizon    uint64         `json:"horizon_seconds"`
	Tables     []*stats.Table `json:"tables"`
}

func writeJSON(path, exp string, quick bool, sc experiments.Scale, tables []*stats.Table) error {
	out, err := json.MarshalIndent(sweepJSON{
		Experiment: exp,
		Quick:      quick,
		Seed:       sc.Seed,
		Messages:   sc.Messages,
		Horizon:    sc.HorizonSeconds,
		Tables:     tables,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
