// Command sweep regenerates every table and figure from the paper's
// evaluation section, plus the future-work comparisons and this
// reproduction's ablation studies, and drives the policy x workload x
// machine matrix over the unified workload registry.
//
// Usage:
//
//	sweep                 # everything at paper scale (takes a few minutes)
//	sweep -exp fig3       # one experiment
//	sweep -quick          # reduced scale for a fast look
//	sweep -exp numa -json # domain tables + machine-readable BENCH_sweep.json
//	sweep -exp matrix -specs 8P -loads db,volano -policies o1,elsc
//	sweep -exp fuzz -seed 500 -fuzzn 32   # scenario fuzzer batch
//
// Experiments: table2, fig2, fig3, fig4, fig5, fig6, profile, alt, web,
// latency, lock, numa, matrix, wakestorm, interactive, ablate, scaling,
// fuzz, all. fuzz runs only when named: it prints one trace line per
// scenario rather than a paper table. scaling re-runs the workload
// matrix at worker-pool sizes 1/2/4/GOMAXPROCS, checks every rung's
// simulated results are identical to the serial rung's, and reports
// measured speedup and ns-per-event per rung.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"elsc/internal/experiments"
	"elsc/internal/kernel"
	"elsc/internal/stats"
	"elsc/internal/workload"
)

// main delegates to run so deferred cleanup — stopping the CPU profile,
// writing the heap profile — still happens on error exits (os.Exit would
// skip the defers and leave a truncated profile).
func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment to run (table2 fig2 fig3 fig4 fig5 fig6 profile alt web latency lock numa matrix wakestorm interactive ablate scaling fuzz all)")
		fuzzN      = flag.Int("fuzzn", 16, "scenarios for -exp fuzz (seeds seed..seed+n-1)")
		fuzzHot    = flag.Bool("fuzzhotplug", true, "keep hotplug storms in -exp fuzz scenarios (false strips them, for A/B isolation)")
		wdTrace    = flag.Bool("wdtrace", false, "print each watchdog violation as it fires during -exp fuzz")
		quick      = flag.Bool("quick", false, "reduced message counts for a fast pass")
		messages   = flag.Int("messages", 0, "override messages per user")
		seed       = flag.Int64("seed", 42, "simulation seed")
		parallel   = flag.Int("parallel", 0, "concurrent runs (default GOMAXPROCS)")
		jsonOut    = flag.Bool("json", false, "also write every table to "+jsonPath)
		policies   = flag.String("policies", "", "comma-separated policy filter for the matrix experiments (default: non-baseline policies; retired baselines like mq run only when named)")
		loads      = flag.String("loads", "", "comma-separated workload filter for the matrix experiments (default all registered)")
		specs      = flag.String("specs", "", "comma-separated machine specs for the matrix experiment (default 8P,32P-NUMA)")
		tickless   = flag.String("tickless", "on", "tickless idle mode: on (NO_HZ, the default) or off (re-arm every idle tick; ablation)")
		rungs      = flag.String("rungs", "", "comma-separated worker-pool widths for -exp scaling, e.g. 1,2,4 (default 1,2,4,GOMAXPROCS)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile at sweep end to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *cpuprofile, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "starting CPU profile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "creating %s: %v\n", path, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "writing heap profile: %v\n", err)
			}
		}()
	}

	sc := experiments.DefaultScale()
	if *quick {
		sc = experiments.QuickScale()
		sc.Messages = 30
	}
	if *messages > 0 {
		sc.Messages = *messages
	}
	sc.Seed = *seed
	sc.Parallel = *parallel
	switch *tickless {
	case "on":
	case "off":
		sc.TicklessOff = true
	default:
		fmt.Fprintf(os.Stderr, "unknown -tickless mode %q (want on or off)\n", *tickless)
		return 2
	}
	scalingRungs, err := parseRungs(*rungs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// The default matrix set excludes retired baselines (experiments.Caps);
	// naming one in -policies still runs it.
	matrixPolicies := splitList(*policies, experiments.DefaultPolicies(), experiments.Policies)
	matrixLoads := splitList(*loads, workload.Names(), workload.Names())
	matrixSpecs := specList(*specs, []string{"8P", "32P-NUMA"})

	want := func(name string) bool { return *exp == "all" || *exp == name }
	t0 := time.Now()

	// The VolanoMark matrix feeds figures 2-6 and the profile table.
	var runs []experiments.VolanoRun
	needMatrix := want("fig2") || want("fig3") || want("fig4") || want("fig5") ||
		want("fig6") || want("profile")
	if needMatrix {
		fmt.Fprintf(os.Stderr, "running VolanoMark matrix (%d messages/user, rooms %v)...\n",
			sc.Messages, experiments.PaperRooms)
		runs = experiments.RunVolanoMatrix(
			[]string{experiments.Reg, experiments.ELSC},
			experiments.PaperSpecs, experiments.PaperRooms, sc)
	}

	var tables []*stats.Table
	var workloadRuns []experiments.WorkloadRun
	section := func(t *stats.Table) {
		tables = append(tables, t)
		fmt.Println(t.Render())
	}

	if want("table2") {
		section(experiments.Table2(sc))
	}
	if want("fig2") {
		section(experiments.Fig2(runs, 10))
	}
	if want("fig3") {
		section(experiments.Fig3(runs, experiments.PaperRooms))
	}
	if want("fig4") {
		section(experiments.Fig4(runs, 5, 20))
	}
	if want("fig5") {
		section(experiments.Fig5(runs, 10))
	}
	if want("fig6") {
		section(experiments.Fig6(runs, 10))
	}
	if want("profile") {
		section(experiments.Profile(runs, experiments.PaperRooms))
	}
	if want("alt") {
		section(experiments.AltSchedulers(experiments.SpecByLabel("4P"), 10, sc))
	}
	if want("web") {
		section(experiments.Webserver(experiments.SpecByLabel("2P"), sc))
	}
	if want("lock") {
		// The lock-wait headline, scaled past the paper's hardware: the
		// global-lock policies collapse as CPUs double, the per-CPU-lock
		// ones do not.
		for _, label := range []string{"8P", "16P", "32P"} {
			section(experiments.LockContention(experiments.SpecByLabel(label), 10, sc))
		}
	}
	if want("numa") {
		for _, spec := range experiments.NUMASpecs {
			section(experiments.Numa(spec, 10, sc))
		}
		// Marginal load (3 rooms on 32 CPUs) keeps the steal path hot —
		// the regime where domain awareness pays.
		section(experiments.AblateTopology(experiments.SpecByLabel("32P-NUMA"), 3, sc))
	}
	if want("matrix") {
		fmt.Fprintf(os.Stderr, "running workload matrix (%d policies x %d workloads x %v)...\n",
			len(matrixPolicies), len(matrixLoads), labelsOf(matrixSpecs))
		mruns := experiments.RunWorkloadMatrix(matrixPolicies, matrixSpecs, matrixLoads, sc)
		workloadRuns = append(workloadRuns, mruns...)
		for _, spec := range matrixSpecs {
			section(experiments.MatrixTable(mruns, spec, matrixPolicies, matrixLoads))
		}
	}
	if want("wakestorm") {
		spec := experiments.SpecByLabel("32P-NUMA")
		// Under -exp all the matrix block usually just ran these exact
		// cells; reuse them rather than re-running and duplicating the
		// JSON entries.
		sruns := filterRuns(workloadRuns, spec.Label, workload.WakeStorm, matrixPolicies)
		if len(sruns) != len(matrixPolicies) {
			sruns = experiments.RunWorkloadMatrix(matrixPolicies, []experiments.MachineSpec{spec},
				[]string{workload.WakeStorm}, sc)
			workloadRuns = append(workloadRuns, sruns...)
		}
		section(experiments.WorkloadDetail(sruns, spec, matrixPolicies, workload.WakeStorm))
	}
	if want("interactive") {
		// The interactivity ablation: the same o1 scheduler with and
		// without the sleep_avg machinery and SD_WAKE_IDLE placement, on
		// the spec where PR 3 exposed the latency collapse.
		section(experiments.AblateInteractivity(experiments.SpecByLabel("32P-NUMA"), sc))
	}
	if want("latency") {
		section(experiments.WakeLatency(experiments.SpecByLabel("UP"),
			[]int{4, 16, 64, 256}, sc))
	}
	if want("ablate") {
		section(experiments.AblateSearchLimit(experiments.SpecByLabel("4P"), 10,
			[]int{1, 3, 7, 15, 40}, sc))
		section(experiments.AblateTableSize(experiments.SpecByLabel("1P"), 10,
			[]int{15, 30, 60}, sc))
		section(experiments.AblateUPShortcut(10, sc))
	}
	var scalingLevels []experiments.ScalingLevel
	if want("scaling") {
		effectiveRungs := scalingRungs
		if effectiveRungs == nil {
			effectiveRungs = experiments.ScalingRungs()
		} else {
			effectiveRungs = experiments.NormalizeRungs(effectiveRungs)
		}
		fmt.Fprintf(os.Stderr, "running parallel-scaling sweep (rungs %v, %d cells/rung)...\n",
			effectiveRungs, len(matrixPolicies)*len(matrixLoads)*len(matrixSpecs))
		levels, sruns, err := experiments.RunScalingSweep(matrixPolicies, matrixSpecs, matrixLoads, sc, effectiveRungs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		scalingLevels = levels
		// Rendered but kept out of the JSON tables: the rung timings are
		// host wall-clock, and BENCH_sweep.json must stay byte-identical
		// for a seed. The machine-readable copy goes to
		// BENCH_wallclock.json with the other host-dependent numbers.
		fmt.Println(experiments.ScalingTable(levels, strings.Join(labelsOf(matrixSpecs), ",")).Render())
		// When scaling runs alone its serial rung doubles as the matrix
		// cells for the JSON outputs; under -exp all the matrix block
		// already recorded the identical cells.
		if len(workloadRuns) == 0 {
			workloadRuns = append(workloadRuns, sruns...)
		}
	}

	if *exp == "fuzz" {
		// The whole-machine scenario fuzzer, outside `go test -fuzz`: one
		// deterministic scenario per seed, each audited for task
		// conservation across hot policy swaps, churn, and fork storms.
		// Any FAIL line is a complete reproduction — rerun with that seed.
		fmt.Fprintf(os.Stderr, "running %d fuzz scenarios (seeds %d..%d)...\n",
			*fuzzN, *seed, *seed+int64(*fuzzN)-1)
		failed := 0
		for i := 0; i < *fuzzN; i++ {
			s := experiments.GenScenario(*seed + int64(i))
			if *policies != "" {
				// A -policies filter pins each scenario's starting policy
				// to the filtered set (round-robin), so CI can aim the
				// fuzz budget at one policy; swap targets still draw
				// from the whole registry.
				s.Policy = matrixPolicies[i%len(matrixPolicies)]
			}
			if !*fuzzHot {
				s.Hotplugs = nil
			}
			var opts experiments.ScenarioOpts
			if *wdTrace {
				opts.OnViolation = func(v kernel.WatchdogViolation) {
					fmt.Printf("     watchdog: %s\n", v)
				}
			}
			rep, err := experiments.RunScenarioOpts(s, opts)
			if err != nil {
				failed++
				fmt.Printf("FAIL %v\n", err)
				continue
			}
			fmt.Printf("ok   %s (migrated=%d forked=%d offlined=%d onlined=%d %.2fs virtual)\n",
				s, rep.Migrated, rep.Forked, rep.Offlined, rep.Onlined, rep.Result.Seconds)
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "%d of %d scenarios violated an invariant\n", failed, *fuzzN)
			return 1
		}
	}

	known := false
	for _, name := range strings.Fields("table2 fig2 fig3 fig4 fig5 fig6 profile alt web latency lock numa matrix wakestorm interactive ablate scaling fuzz all") {
		if *exp == name {
			known = true
			break
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}
	if *jsonOut {
		if err := writeJSON(jsonPath, *exp, *quick, sc, tables, workloadRuns); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", jsonPath, err)
			return 1
		}
		if err := writeWallclockJSON(wallclockPath, *exp, *quick, sc, time.Since(t0), workloadRuns, scalingLevels); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", wallclockPath, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %d tables and %d workload entries to %s (+wall-clock to %s)\n",
			len(tables), len(workloadRuns), jsonPath, wallclockPath)
	}
	fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(t0).Seconds())
	return 0
}

// resolveList parses a comma-separated flag, defaulting to def and
// validating each entry against the registered set (which may be wider
// than the default — retired baselines are valid but not default). An
// unknown entry returns an error naming the registered set.
func resolveList(flagVal string, def, all []string) ([]string, error) {
	if flagVal == "" {
		return def, nil
	}
	var out []string
	for _, name := range strings.Split(flagVal, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, known := range all {
			if name == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown name %q (registered: %s)", name, strings.Join(all, " "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return def, nil
	}
	return out, nil
}

// splitList is resolveList with the command-line exit policy: an unknown
// name is a usage error (exit 2), diagnosed on stderr.
func splitList(flagVal string, def, all []string) []string {
	out, err := resolveList(flagVal, def, all)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return out
}

// parseRungs parses the -rungs flag: a comma-separated list of positive
// worker-pool widths, or nil when unset (the ScalingRungs default).
// Normalization (serial baseline, sort, dedup) happens downstream.
func parseRungs(flagVal string) ([]int, error) {
	if flagVal == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(flagVal, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad -rungs width %q (want a positive integer)", s)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// filterRuns returns the cells of runs matching one spec and workload,
// covering exactly the given policies in order — or nil if any policy's
// cell is missing.
func filterRuns(runs []experiments.WorkloadRun, specLabel, load string, policies []string) []experiments.WorkloadRun {
	var out []experiments.WorkloadRun
	for _, p := range policies {
		found := false
		for _, r := range runs {
			if r.Policy == p && r.Spec.Label == specLabel && r.Load == load {
				out = append(out, r)
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return out
}

// specList resolves a comma-separated machine-spec filter, validating
// each label against the registered specs with the same diagnostic (and
// exit status) as splitList — a typo must fail loudly, not panic.
func specList(flagVal string, def []string) []experiments.MachineSpec {
	labels := splitList(flagVal, def, experiments.SpecLabels())
	var out []experiments.MachineSpec
	for _, l := range labels {
		out = append(out, experiments.SpecByLabel(l))
	}
	return out
}

func labelsOf(specs []experiments.MachineSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Label
	}
	return out
}

// jsonPath is where -json drops the machine-readable results, so the
// perf trajectory can be tracked across PRs.
const jsonPath = "BENCH_sweep.json"

// workloadEntry is one matrix cell in the JSON schema: the registry's
// common result flattened for machine consumers, plus the run identity.
type workloadEntry struct {
	Workload   string             `json:"workload"`
	Policy     string             `json:"policy"`
	Spec       string             `json:"spec"`
	Throughput float64            `json:"throughput"`
	Unit       string             `json:"unit"`
	Ops        uint64             `json:"ops"`
	Seconds    float64            `json:"seconds"`
	Complete   bool               `json:"complete"`
	Extras     map[string]float64 `json:"extras,omitempty"`

	// Scheduler-side observability for the run: SD_WAKE_IDLE placements
	// and TIMESLICE_GRANULARITY rotations the kernel performed, and — for
	// policies with an interactivity estimator (o1) — the enqueue counts
	// by dynamic-priority bonus (-5..+5) and active-array requeues.
	WakeIdlePlacements  uint64   `json:"wake_idle_placements"`
	TimesliceRotations  uint64   `json:"timeslice_rotations"`
	TickPreemptions     uint64   `json:"tick_preemptions"`
	BonusLevels         []uint64 `json:"bonus_levels,omitempty"`
	InteractiveRequeues uint64   `json:"interactive_requeues,omitempty"`
}

// sweepJSON is the file schema: enough run metadata to reproduce the
// numbers, every rendered table, and one entry per workload-matrix cell.
type sweepJSON struct {
	Experiment string          `json:"experiment"`
	Quick      bool            `json:"quick"`
	Seed       int64           `json:"seed"`
	Messages   int             `json:"messages_per_user"`
	Horizon    uint64          `json:"horizon_seconds"`
	Tables     []*stats.Table  `json:"tables"`
	Workloads  []workloadEntry `json:"workloads,omitempty"`
}

// wallclockPath is where -json drops the harness-speed numbers. Unlike
// BENCH_sweep.json — virtual-time results, byte-identical for a seed —
// this file records host wall-clock per matrix cell, so engine-speed
// regressions become visible across PRs (numbers vary with the host; the
// committed file tracks the CI-class container the repo is grown on).
const wallclockPath = "BENCH_wallclock.json"

// wallclockCell is one matrix cell's harness cost. events splits into
// events_wheel (dispatched from the timer wheel's O(1) fast path) and
// events_heap (the min-heap fallback), so the wheel's hit rate is
// visible per workload across PRs. ticks_skipped counts idle tick
// firings the NO_HZ parking elided — events the always-on chain would
// have paid for.
type wallclockCell struct {
	Workload     string  `json:"workload"`
	Policy       string  `json:"policy"`
	Spec         string  `json:"spec"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"` // engine events dispatched in the cell
	EventsWheel  uint64  `json:"events_wheel"`
	EventsHeap   uint64  `json:"events_heap"`
	TicksSkipped uint64  `json:"ticks_skipped"`
}

// wallclockJSON is the BENCH_wallclock.json schema. Scaling and
// ParallelSpeedup are filled when the scaling experiment ran (-exp
// scaling or all): one entry per worker-pool rung, and the top rung's
// measured speedup over serial.
type wallclockJSON struct {
	Experiment      string                     `json:"experiment"`
	Quick           bool                       `json:"quick"`
	Seed            int64                      `json:"seed"`
	Parallel        int                        `json:"parallel"`
	GoMaxProcs      int                        `json:"gomaxprocs"`
	TotalSeconds    float64                    `json:"total_seconds"`
	ParallelSpeedup float64                    `json:"parallel_speedup,omitempty"`
	Scaling         []experiments.ScalingLevel `json:"scaling,omitempty"`
	Cells           []wallclockCell            `json:"cells"`
}

func writeWallclockJSON(path, exp string, quick bool, sc experiments.Scale, total time.Duration, wruns []experiments.WorkloadRun, scaling []experiments.ScalingLevel) error {
	cells := make([]wallclockCell, 0, len(wruns))
	for _, r := range wruns {
		cells = append(cells, wallclockCell{
			Workload:     r.Load,
			Policy:       r.Policy,
			Spec:         r.Spec.Label,
			WallMS:       float64(r.WallNS) / 1e6,
			Events:       r.Stats.EventsFired,
			EventsWheel:  r.Stats.EventsWheel,
			EventsHeap:   r.Stats.EventsHeap,
			TicksSkipped: r.Stats.TicksSkipped,
		})
	}
	out, err := json.MarshalIndent(wallclockJSON{
		Experiment:      exp,
		Quick:           quick,
		Seed:            sc.Seed,
		Parallel:        sc.Workers(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		TotalSeconds:    total.Seconds(),
		ParallelSpeedup: experiments.ParallelSpeedup(scaling),
		Scaling:         scaling,
		Cells:           cells,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func writeJSON(path, exp string, quick bool, sc experiments.Scale, tables []*stats.Table, wruns []experiments.WorkloadRun) error {
	entries := make([]workloadEntry, 0, len(wruns))
	for _, r := range wruns {
		e := workloadEntry{
			Workload:   r.Load,
			Policy:     r.Policy,
			Spec:       r.Spec.Label,
			Throughput: r.Result.Throughput,
			Unit:       r.Result.Unit,
			Ops:        r.Result.Ops,
			Seconds:    r.Result.Seconds,
			Complete:   r.Result.Complete,

			WakeIdlePlacements: r.Stats.WakeIdlePlacements,
			TimesliceRotations: r.Stats.TimesliceRotations,
			TickPreemptions:    r.Stats.TickPreemptions,
		}
		if r.HasBonus {
			e.BonusLevels = r.BonusLevels
			e.InteractiveRequeues = r.InteractiveRequeues
		}
		if len(r.Result.Extras) > 0 {
			e.Extras = make(map[string]float64, len(r.Result.Extras))
			for _, m := range r.Result.Extras {
				e.Extras[m.Name] = m.Value
			}
		}
		entries = append(entries, e)
	}
	out, err := json.MarshalIndent(sweepJSON{
		Experiment: exp,
		Quick:      quick,
		Seed:       sc.Seed,
		Messages:   sc.Messages,
		Horizon:    sc.HorizonSeconds,
		Tables:     tables,
		Workloads:  entries,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
