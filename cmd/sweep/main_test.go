package main

import (
	"errors"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"

	"elsc/internal/experiments"
)

func TestResolveListDefaultsAndFilters(t *testing.T) {
	def := experiments.DefaultPolicies()
	all := experiments.Policies

	got, err := resolveList("", def, all)
	if err != nil || !reflect.DeepEqual(got, def) {
		t.Fatalf("empty flag = %v, %v; want the default set %v", got, err, def)
	}

	// Retired baselines are valid by name even though they are not
	// default, and whitespace/empty entries are tolerated.
	got, err = resolveList(" mq , cfs ,", def, all)
	if err != nil || !reflect.DeepEqual(got, []string{"mq", "cfs"}) {
		t.Fatalf("filter = %v, %v; want [mq cfs]", got, err)
	}
}

func TestResolveListUnknownName(t *testing.T) {
	_, err := resolveList("typo", experiments.DefaultPolicies(), experiments.Policies)
	if err == nil {
		t.Fatal("unknown policy name resolved without error")
	}
	want := `unknown name "typo" (registered: ` + strings.Join(experiments.Policies, " ") + `)`
	if err.Error() != want {
		t.Fatalf("diagnostic = %q, want %q", err, want)
	}
}

// TestSpecListTypoExits2 pins the command-line behavior of `-specs typo`:
// the same exit-2 + registered-list diagnostic as `-policies typo`, not
// the SpecByLabel panic specList used to hit. The test re-executes
// itself so os.Exit(2) lands in a child process.
func TestSpecListTypoExits2(t *testing.T) {
	if os.Getenv("SWEEP_SPECLIST_TYPO") == "1" {
		specList("typo", []string{"8P"})
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestSpecListTypoExits2$")
	cmd.Env = append(os.Environ(), "SWEEP_SPECLIST_TYPO=1")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("child succeeded on -specs typo; output:\n%s", out)
	}
	if ee.ExitCode() != 2 {
		t.Fatalf("child exited %d, want 2; output:\n%s", ee.ExitCode(), out)
	}
	want := `unknown name "typo" (registered: ` + strings.Join(experiments.SpecLabels(), " ") + `)`
	if !strings.Contains(string(out), want) {
		t.Fatalf("child diagnostic missing %q; output:\n%s", want, out)
	}
}

func TestSpecListResolvesLabels(t *testing.T) {
	specs := specList("8P,32P-NUMA", nil)
	if len(specs) != 2 || specs[0].Label != "8P" || specs[1].Label != "32P-NUMA" {
		t.Fatalf("specList = %v, want the 8P and 32P-NUMA specs", specs)
	}
}
