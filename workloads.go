package elsc

import (
	"elsc/internal/workload/kbuild"
	"elsc/internal/workload/volano"
	"elsc/internal/workload/webserver"
)

// VolanoConfig sizes a VolanoMark run (paper §4/§6): Rooms chat rooms of
// UsersPerRoom users, each sending MessagesPerUser messages that the
// server broadcasts to the whole room over loopback connections carrying
// four threads each.
type VolanoConfig = volano.Config

// VolanoResult is a VolanoMark measurement; Throughput is the paper's
// messages-per-second metric.
type VolanoResult = volano.Result

// RunVolanoMark builds and runs the chat benchmark on the machine.
func (m *Machine) RunVolanoMark(cfg VolanoConfig) VolanoResult {
	return volano.Build(m.m, cfg).Run()
}

// KernelBuildConfig sizes the Table 2 light-load control experiment: a
// make -j4 kernel compile.
type KernelBuildConfig = kbuild.Config

// KernelBuildResult is a compile-time measurement.
type KernelBuildResult = kbuild.Result

// RunKernelBuild builds and runs the compile workload on the machine.
func (m *Machine) RunKernelBuild(cfg KernelBuildConfig) KernelBuildResult {
	return kbuild.New(m.m, cfg).Run()
}

// WebServerConfig sizes the §8 future-work Apache-style workload.
type WebServerConfig = webserver.Config

// WebServerResult reports webserver throughput and latency.
type WebServerResult = webserver.Result

// RunWebServer builds and runs the web workload on the machine.
func (m *Machine) RunWebServer(cfg WebServerConfig) WebServerResult {
	return webserver.New(m.m, cfg).Run()
}
