package elsc

import (
	"elsc/internal/workload"
	"elsc/internal/workload/db"
	"elsc/internal/workload/kbuild"
	"elsc/internal/workload/latency"
	"elsc/internal/workload/volano"
	"elsc/internal/workload/webserver"
)

// The workload layer has two entry points, mirroring the scheduler layer:
// the registry runs any workload by name with uniform sizing knobs
// (RunWorkload — what the sweep matrix and the determinism suite use),
// and the per-workload methods below take each benchmark's full Config
// for bespoke shapes.

// WorkloadParams sizes a registry-run workload: Work is the per-actor
// operation count, Quick selects the reduced shape, ScalableStack the
// post-2.3 network costs.
type WorkloadParams = workload.Params

// WorkloadResult is the registry's common measurement: throughput in a
// workload-declared unit, a completion flag, and ordered extras.
type WorkloadResult = workload.Result

// Workloads returns the registered workload names, in registry order:
// volano, kbuild, webserver, latency, db, wakestorm.
func Workloads() []string { return workload.Names() }

// DescribeWorkloads renders a one-line-per-workload listing.
func DescribeWorkloads() string { return workload.Describe() }

// RunWorkload builds and runs any registered workload by name on the
// machine, returning the common result. Unknown names panic; use
// Workloads for the valid set.
func (m *Machine) RunWorkload(name string, p WorkloadParams) WorkloadResult {
	return workload.Build(name, m.m, p).Run()
}

// VolanoConfig sizes a VolanoMark run (paper §4/§6): Rooms chat rooms of
// UsersPerRoom users, each sending MessagesPerUser messages that the
// server broadcasts to the whole room over loopback connections carrying
// four threads each.
type VolanoConfig = volano.Config

// VolanoResult is a VolanoMark measurement; Throughput is the paper's
// messages-per-second metric.
type VolanoResult = volano.Result

// RunVolanoMark builds and runs the chat benchmark on the machine.
func (m *Machine) RunVolanoMark(cfg VolanoConfig) VolanoResult {
	return volano.Build(m.m, cfg).Run()
}

// KernelBuildConfig sizes the Table 2 light-load control experiment: a
// make -j4 kernel compile.
type KernelBuildConfig = kbuild.Config

// KernelBuildResult is a compile-time measurement.
type KernelBuildResult = kbuild.Result

// RunKernelBuild builds and runs the compile workload on the machine.
func (m *Machine) RunKernelBuild(cfg KernelBuildConfig) KernelBuildResult {
	return kbuild.New(m.m, cfg).Run()
}

// WebServerConfig sizes the §8 future-work Apache-style workload.
type WebServerConfig = webserver.Config

// WebServerResult reports webserver throughput and latency.
type WebServerResult = webserver.Result

// RunWebServer builds and runs the web workload on the machine.
func (m *Machine) RunWebServer(cfg WebServerConfig) WebServerResult {
	return webserver.New(m.m, cfg).Run()
}

// LatencyConfig sizes the steady-state wake-to-dispatch latency probes.
type LatencyConfig = latency.Config

// LatencyResult reports wake-to-dispatch latency statistics.
type LatencyResult = latency.Result

// RunLatencyProbe builds and runs the latency-probe workload.
func (m *Machine) RunLatencyProbe(cfg LatencyConfig) LatencyResult {
	return latency.New(m.m, cfg).Run()
}

// DatabaseConfig sizes the syscall-heavy OLTP workload: client
// connections running short transactions over shared lock stripes, a
// serialized buffer pool, and a write-ahead log with background
// checkpoint writers.
type DatabaseConfig = db.Config

// DatabaseResult reports transaction throughput, commit-latency
// percentiles, and lock/WAL contention.
type DatabaseResult = db.Result

// RunDatabase builds and runs the OLTP workload on the machine.
func (m *Machine) RunDatabase(cfg DatabaseConfig) DatabaseResult {
	return db.New(m.m, cfg).Run()
}

// WakeStormConfig sizes the bursty mass-wakeup workload: a herd of
// waiters parked on one wait queue, released together, measuring
// wakeup-to-run tail latency.
type WakeStormConfig = latency.StormConfig

// WakeStormResult reports per-storm wakeup-to-run latency percentiles.
type WakeStormResult = latency.StormResult

// RunWakeStorm builds and runs the wake-storm workload on the machine.
func (m *Machine) RunWakeStorm(cfg WakeStormConfig) WakeStormResult {
	return latency.NewStorm(m.m, cfg).Run()
}
